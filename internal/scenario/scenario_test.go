package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// bulkSpec builds a minimal one-run scenario: a bulk transfer over the
// direct link, stopping when the sink completes.
func bulkSpec(bytes int, events []Event) (*Spec, *Bulk) {
	wl := &Bulk{Bytes: bytes}
	run := &RunSpec{
		Label:    "bulk",
		Topology: Direct{Link: netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}},
		Workload: wl,
		Settle:   time.Millisecond,
		Events:   events,
		Probes: []Probe{
			Scalar("done_s", func(rt *Run) float64 { return rt.Sim.Now().Seconds() }),
			Scalar("rcv_bytes", func(rt *Run) float64 { return float64(wl.Sink.Received) }),
		},
		Stop: Stop{Horizon: 30 * time.Second, Poll: 10 * time.Millisecond, Until: wl.Done},
	}
	return &Spec{
		Name:  "test-bulk",
		Title: "engine test",
		Desc:  "bulk over a direct link",
		Runs:  []*RunSpec{run},
		Render: func(res *stats.Result, runs []*Run) {
			res.Section("done")
			res.Printf("received %d bytes\n", wl.Sink.Received)
		},
	}, wl
}

func TestExecuteRunsSpecEndToEnd(t *testing.T) {
	sp, wl := bulkSpec(256<<10, nil)
	res := Execute(sp, 1)
	if !wl.Sink.Done {
		t.Fatal("bulk transfer did not complete")
	}
	if got := res.Scalars["rcv_bytes"]; got < 256<<10 {
		t.Fatalf("rcv_bytes = %v", got)
	}
	if res.Scalars["done_s"] <= 0 || res.Scalars["done_s"] > 30 {
		t.Fatalf("done_s = %v", res.Scalars["done_s"])
	}
	for _, want := range []string{"engine test", "== done ==", "received"} {
		if !strings.Contains(res.Report, want) {
			t.Fatalf("report missing %q:\n%s", want, res.Report)
		}
	}
}

func TestExecuteDeterministicPerSeed(t *testing.T) {
	runit := func() *stats.Result {
		sp, _ := bulkSpec(128<<10, nil)
		return Execute(sp, 3)
	}
	a, b := runit(), runit()
	if a.Report != b.Report {
		t.Fatal("same-seed runs produced different reports")
	}
	if a.Scalars["done_s"] != b.Scalars["done_s"] {
		t.Fatalf("done_s diverged: %v vs %v", a.Scalars["done_s"], b.Scalars["done_s"])
	}
}

func TestEventsFire(t *testing.T) {
	// Black out the wire before the handshake can finish: the transfer
	// must never complete within the horizon.
	ev := SetLossAt(2*time.Millisecond, "wire", 1.0)
	wl := &Bulk{Bytes: 64 << 10}
	run := &RunSpec{
		Label:    "blackout",
		Topology: Direct{Link: netem.LinkConfig{RateBps: 50e6, Delay: 20 * time.Millisecond}},
		Workload: wl,
		Settle:   time.Millisecond,
		Events:   []Event{ev},
		Stop:     Stop{Horizon: 2 * time.Second, Poll: 50 * time.Millisecond, Until: wl.Done},
	}
	Execute(&Spec{Name: "test-blackout", Runs: []*RunSpec{run}}, 1)
	if wl.Sink.Done {
		t.Fatal("transfer completed through a fully lossy link")
	}
}

func TestLossRampBuildsSteps(t *testing.T) {
	evs := LossRamp("path0", time.Second, 500*time.Millisecond, 0.1, 0.2, 0.3)
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[1].At != 1500*time.Millisecond || evs[2].At != 2*time.Second {
		t.Fatalf("ramp times wrong: %v %v", evs[1].At, evs[2].At)
	}
}

func TestFlapIfaceTargetsClientAndHost(t *testing.T) {
	w := sim.NewWorld(1, 1)
	net := Star{
		Clients: 3, Ifaces: 2,
		Access:     netem.LinkConfig{RateBps: 10e6, Delay: time.Millisecond},
		Bottleneck: netem.LinkConfig{RateBps: 100e6, Delay: time.Millisecond},
	}.Build(w, 1).normalize()
	rt := &Run{Net: net}
	up := func(client, addrIdx int) bool {
		ep := net.Clients[client]
		return ep.Host.Iface(ep.Addrs[addrIdx]).Up()
	}

	// The old signature still flaps the FIRST client.
	evs := FlapIface(time.Second, time.Second, 1)
	evs[0].Do(rt)
	if up(0, 1) || !up(1, 1) || !up(2, 1) {
		t.Fatal("FlapIface touched the wrong client interface")
	}
	evs[1].Do(rt)
	if !up(0, 1) {
		t.Fatal("FlapIface did not restore the interface")
	}

	// Indexed: only client 2's interface 0 goes down.
	evs = FlapClientIface(time.Second, time.Second, 2, 0)
	evs[0].Do(rt)
	if up(2, 0) || !up(0, 0) || !up(1, 0) {
		t.Fatal("FlapClientIface targeted the wrong device")
	}
	evs[1].Do(rt)
	if !up(2, 0) {
		t.Fatal("FlapClientIface did not restore the interface")
	}

	// Named: Star names its clients c0, c1, ...
	evs = FlapHostIface(time.Second, time.Second, "c1", 1)
	evs[0].Do(rt)
	if up(1, 1) || !up(0, 1) {
		t.Fatal("FlapHostIface targeted the wrong host")
	}
	evs[1].Do(rt)
	if !up(1, 1) {
		t.Fatal("FlapHostIface did not restore the interface")
	}

	// Out-of-range indices and unknown names are scenario bugs.
	for _, fn := range []func(){
		func() { FlapClientIface(0, 0, 9, 0)[0].Do(rt) },
		func() { FlapHostIface(0, 0, "nope", 0)[0].Do(rt) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad flap target did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestStopTailCapsAtHorizon(t *testing.T) {
	wl := &Bulk{Bytes: 32 << 10}
	run := &RunSpec{
		Label:    "tail",
		Topology: Direct{Link: netem.LinkConfig{RateBps: 100e6, Delay: time.Millisecond}},
		Workload: wl,
		Settle:   time.Millisecond,
		Stop: Stop{
			Horizon: 5 * time.Second,
			Poll:    10 * time.Millisecond,
			Until:   wl.Done,
			Tail:    time.Hour, // must clamp to the horizon
		},
	}
	res := stats.NewResult("tail")
	rt := execOne(run, 1, res)
	if now := rt.Sim.Now().Seconds(); now > 5.0 {
		t.Fatalf("tail ran past the horizon: now=%vs", now)
	}
}

func TestMultiRunSeedOffsets(t *testing.T) {
	mk := func(off int64) (*RunSpec, *Bulk) {
		wl := &Bulk{Bytes: 32 << 10}
		return &RunSpec{
			Label:      "r",
			SeedOffset: off,
			Topology:   Direct{Link: netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}},
			Workload:   wl,
			Settle:     time.Millisecond,
			Stop:       Stop{Horizon: 10 * time.Second, Poll: 10 * time.Millisecond, Until: wl.Done},
		}, wl
	}
	r0, _ := mk(0)
	r1, _ := mk(1000)
	sp := &Spec{Name: "test-offsets", Runs: []*RunSpec{r0, r1}}
	var seeds []int64
	sp.Render = func(_ *stats.Result, runs []*Run) {
		for _, rt := range runs {
			seeds = append(seeds, rt.Seed)
		}
	}
	Execute(sp, 7)
	if len(seeds) != 2 || seeds[0] != 7 || seeds[1] != 1007 {
		t.Fatalf("run seeds = %v, want [7 1007]", seeds)
	}
}
