package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// A Manifest is the on-disk declarative form of one experiment: the
// scenario to run, its typed parameters, the seeds/shards/trace settings,
// and (optionally) sweep axes — everything `mpexp run`/`sweep` would
// otherwise take as flags, as one reviewable, committable JSON file.
//
// Manifests load through the exact same typed-Params validation as `-set`
// flags: unknown scenarios, unknown parameter keys, and unparseable
// values die in Validate with the same errors `scenario.Build` raises on
// the command line, so a manifest cannot drift from what the registry
// accepts. Parameter values may be written as JSON strings, numbers, or
// booleans; numbers keep their literal spelling (0.30 stays "0.30"), so
// a manifest-driven run is byte-identical to the equivalent flag-driven
// one.
type Manifest struct {
	// Name labels the run (workspace run directories derive their ids
	// from it). Empty: LoadManifest fills it from the file's base name,
	// otherwise it defaults to the scenario name.
	Name string `json:"name,omitempty"`
	// Scenario is the registered scenario to run (required).
	Scenario string `json:"scenario"`
	// Params are the scenario's key=value knobs — exactly what `-set`
	// carries. The reserved keys "trace", "trace_cap", "shards", and
	// "metrics" must use the dedicated manifest fields instead.
	Params map[string]string `json:"params,omitempty"`

	// Seed is the base simulation seed (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// Seeds is the number of independent seeds (0 = 1).
	Seeds int `json:"seeds,omitempty"`
	// Shards is the worker-loop count per simulation (0 = 1; results are
	// bit-identical at any count).
	Shards int `json:"shards,omitempty"`

	// Trace records an event trace. In a workspace run the trace file
	// lands in the run (or sweep-cell) directory; outside one, TraceFile
	// names it. Tracing is single-seed and single-shard.
	Trace bool `json:"trace,omitempty"`
	// TraceFile overrides where the trace is written (empty = decided by
	// the runner: the workspace cell directory, or in-memory analysis
	// only). Setting it implies Trace.
	TraceFile string `json:"trace_file,omitempty"`
	// TraceCap bounds each trace ring shard (0 = default).
	TraceCap int `json:"trace_cap,omitempty"`

	// Metrics records runtime metrics. In a workspace run the metrics.json
	// lands in the run (or sweep-cell) directory; outside one, MetricsFile
	// names it. Metrics are per-run and single-seed (the object pools are
	// process-wide, so concurrent seeds would bleed into each other's
	// counters), but work at any shard count.
	Metrics bool `json:"metrics,omitempty"`
	// MetricsFile overrides where metrics.json is written (empty = decided
	// by the runner: the workspace cell directory, or report-only). Setting
	// it implies Metrics.
	MetricsFile string `json:"metrics_file,omitempty"`

	// Sweep, when present, crosses the scenario over schedulers ×
	// controllers × parameter axes; each cell runs Seeds seeds.
	Sweep *ManifestSweep `json:"sweep,omitempty"`
}

// ManifestSweep declares the sweep axes of a manifest.
type ManifestSweep struct {
	Schedulers  []string       `json:"schedulers,omitempty"`
	Controllers []string       `json:"controllers,omitempty"`
	Vary        []ManifestAxis `json:"vary,omitempty"`
}

// ManifestAxis is one parameter sweep dimension. Axes are an ordered
// list (not a JSON object) so the cell enumeration order — and with it
// cell ids and trace suffixes — is explicit in the file.
type ManifestAxis struct {
	Key    string   `json:"key"`
	Values []string `json:"values"`
}

// reservedParamKeys are manifest fields that must not be smuggled in as
// scenario parameters: the dedicated fields exist so the workspace can
// resolve them (trace file placement, shard plumbing) uniformly.
var reservedParamKeys = []string{"trace", "trace_cap", "shards", "metrics"}

// manifestJSON mirrors Manifest for decoding: params and axis values
// accept JSON strings, numbers, and booleans, normalised to the string
// forms Params parses. Unknown top-level fields are rejected so a typo
// ("shard" for "shards") cannot silently change what runs.
type manifestJSON struct {
	Name        string               `json:"name"`
	Scenario    string               `json:"scenario"`
	Params      map[string]flexValue `json:"params"`
	Seed        int64                `json:"seed"`
	Seeds       int                  `json:"seeds"`
	Shards      int                  `json:"shards"`
	Trace       bool                 `json:"trace"`
	TraceFile   string               `json:"trace_file"`
	TraceCap    int                  `json:"trace_cap"`
	Metrics     bool                 `json:"metrics"`
	MetricsFile string               `json:"metrics_file"`
	Sweep       *manifestSweepJSON   `json:"sweep"`
}

type manifestSweepJSON struct {
	Schedulers []string           `json:"schedulers"`
	Ctls       []string           `json:"controllers"`
	Vary       []manifestAxisJSON `json:"vary"`
}

type manifestAxisJSON struct {
	Key    string      `json:"key"`
	Values []flexValue `json:"values"`
}

// flexValue is a scalar parameter value: JSON string, number, or bool.
// Numbers keep their literal text (json.Number), so "loss": 0.30 reaches
// the typed Params as the string "0.30" — the same bytes `-set loss=0.30`
// would carry.
type flexValue struct {
	s string
}

func (v *flexValue) UnmarshalJSON(buf []byte) error {
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case string:
		v.s = x
	case json.Number:
		v.s = x.String()
	case bool:
		v.s = fmt.Sprintf("%v", x)
	default:
		return fmt.Errorf("parameter value %s: want a JSON string, number, or boolean", buf)
	}
	return nil
}

// ParseManifest decodes manifest JSON. Decoding is strict — unknown
// fields anywhere in the document are errors — but semantic validation
// (registered scenario, parameter keys/values) happens in Validate, so
// callers can distinguish "not a manifest" from "a manifest that asks
// for something invalid".
func ParseManifest(buf []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	mj := &manifestJSON{}
	if err := dec.Decode(mj); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	// A trailing second document is a malformed file, not extra config.
	if dec.More() {
		return nil, fmt.Errorf("manifest: trailing data after the JSON document")
	}
	m := &Manifest{
		Name:        mj.Name,
		Scenario:    mj.Scenario,
		Seed:        mj.Seed,
		Seeds:       mj.Seeds,
		Shards:      mj.Shards,
		Trace:       mj.Trace || mj.TraceFile != "",
		TraceFile:   mj.TraceFile,
		TraceCap:    mj.TraceCap,
		Metrics:     mj.Metrics || mj.MetricsFile != "",
		MetricsFile: mj.MetricsFile,
	}
	if len(mj.Params) > 0 {
		m.Params = make(map[string]string, len(mj.Params))
		for k, v := range mj.Params {
			m.Params[k] = v.s
		}
	}
	if mj.Sweep != nil {
		ms := &ManifestSweep{
			Schedulers:  mj.Sweep.Schedulers,
			Controllers: mj.Sweep.Ctls,
		}
		for _, ax := range mj.Sweep.Vary {
			vals := make([]string, len(ax.Values))
			for i, v := range ax.Values {
				vals[i] = v.s
			}
			ms.Vary = append(ms.Vary, ManifestAxis{Key: ax.Key, Values: vals})
		}
		m.Sweep = ms
	}
	return m, nil
}

// LoadManifest reads and parses a manifest file. A missing Name defaults
// to the file's base name without its extension ("fig2a-smoke.json" →
// "fig2a-smoke").
func LoadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	m, err := ParseManifest(buf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Name == "" {
		base := filepath.Base(path)
		m.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return m, nil
}

// RunName returns the label workspace run directories derive their ids
// from: Name, falling back to the scenario.
func (m *Manifest) RunName() string {
	if m.Name != "" {
		return m.Name
	}
	return m.Scenario
}

// BuildParams converts the manifest into the Params a single run hands
// to Build: the params map plus the shards field. Trace keys are NOT
// set here — the runner decides the trace file placement (workspace
// cell directory vs TraceFile) and arms it via TraceParams.
func (m *Manifest) BuildParams() *Params {
	p := NewParams(m.Params)
	if m.Shards != 0 {
		p.Set("shards", fmt.Sprintf("%d", m.Shards))
	}
	return p
}

// TraceParams arms tracing on p per the manifest, writing the binary
// trace to file ("" = record and analyse in memory only).
func (m *Manifest) TraceParams(p *Params, file string) {
	if !m.Trace {
		return
	}
	p.Set("trace", file)
	if m.TraceCap != 0 {
		p.Set("trace_cap", fmt.Sprintf("%d", m.TraceCap))
	}
}

// MetricsParams arms metrics recording on p per the manifest, writing
// metrics.json to file ("" = fold into the report only).
func (m *Manifest) MetricsParams(p *Params, file string) {
	if !m.Metrics {
		return
	}
	p.Set("metrics", file)
}

// SweepConfig converts a sweep manifest into the SweepConfig Sweep
// executes. Parallel bounds concurrent seeds per cell (0 = GOMAXPROCS).
// The caller owns TraceFile/OnCell wiring.
func (m *Manifest) SweepConfig(parallel int) SweepConfig {
	cfg := SweepConfig{
		Scenario: m.Scenario,
		Base:     m.BuildParams(),
		Seeds:    m.Seeds,
		BaseSeed: m.BaseSeed(),
		Parallel: parallel,
	}
	if m.Sweep != nil {
		cfg.Schedulers = m.Sweep.Schedulers
		cfg.Controllers = m.Sweep.Controllers
		for _, ax := range m.Sweep.Vary {
			cfg.Axes = append(cfg.Axes, Axis{Key: ax.Key, Values: ax.Values})
		}
	}
	return cfg
}

// BaseSeed returns the effective base seed (manifest zero = seed 1, the
// same default as the CLI's -seed flag).
func (m *Manifest) BaseSeed() int64 {
	if m.Seed == 0 {
		return 1
	}
	return m.Seed
}

// EffectiveSeeds returns the effective seed count (minimum 1).
func (m *Manifest) EffectiveSeeds() int {
	if m.Seeds <= 0 {
		return 1
	}
	return m.Seeds
}

// Validate checks the manifest against the live registry by building
// every run it would start — the single-run spec, or every sweep cell —
// through the same Build path `-set` flags take. It returns the first
// error: unknown scenario, unknown parameter key, bad value, shard/trace
// conflicts, malformed axes.
func (m *Manifest) Validate() error {
	if m.Scenario == "" {
		return fmt.Errorf("manifest %s: missing required field \"scenario\"", m.RunName())
	}
	for _, k := range reservedParamKeys {
		if _, clash := m.Params[k]; clash {
			return fmt.Errorf("manifest %s: parameter %q is reserved; use the top-level %q field", m.RunName(), k, k)
		}
	}
	if m.Seed < 0 {
		return fmt.Errorf("manifest %s: seed %d: must be non-negative", m.RunName(), m.Seed)
	}
	if m.Seeds < 0 {
		return fmt.Errorf("manifest %s: seeds %d: must be non-negative", m.RunName(), m.Seeds)
	}
	if m.Trace {
		if m.EffectiveSeeds() > 1 {
			return fmt.Errorf("manifest %s: trace with %d seeds would write one trace from every seed concurrently; use one seed per traced run", m.RunName(), m.EffectiveSeeds())
		}
		if m.Shards > 1 {
			return fmt.Errorf("manifest %s: tracing is single-shard only (got shards=%d)", m.RunName(), m.Shards)
		}
	}
	if m.Metrics && m.EffectiveSeeds() > 1 {
		return fmt.Errorf("manifest %s: metrics with %d seeds would mix the process-wide pool counters across concurrent seeds; use one seed per metered run", m.RunName(), m.EffectiveSeeds())
	}
	if m.Sweep == nil {
		p := m.BuildParams()
		m.TraceParams(p, m.TraceFile)
		m.MetricsParams(p, m.MetricsFile)
		_, err := Build(m.Scenario, p)
		return err
	}
	for _, ax := range m.Sweep.Vary {
		if ax.Key == "" || len(ax.Values) == 0 {
			return fmt.Errorf("manifest %s: sweep axis %q has no values", m.RunName(), ax.Key)
		}
	}
	// Validate every cell exactly as Sweep would, without running any:
	// enumerate the cross product and Build each cell's params.
	cfg := m.SweepConfig(0)
	axes := make([]Axis, 0, 2+len(cfg.Axes))
	if len(cfg.Schedulers) > 0 {
		axes = append(axes, Axis{Key: "sched", Values: cfg.Schedulers})
	}
	if len(cfg.Controllers) > 0 {
		axes = append(axes, Axis{Key: "policy", Values: cfg.Controllers})
	}
	axes = append(axes, cfg.Axes...)
	for _, overrides := range crossProduct(axes) {
		p := cfg.Base.Clone()
		for _, kv := range overrides {
			k, v, _ := strings.Cut(kv, "=")
			p.Set(k, v)
		}
		m.TraceParams(p, m.TraceFile)
		m.MetricsParams(p, m.MetricsFile)
		if _, err := Build(m.Scenario, p); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot renders the resolved manifest — every field explicit, params
// sorted — as the manifest.json a workspace run directory stores. It is
// deterministic for a given manifest, so two identical runs snapshot
// byte-identically.
func (m *Manifest) Snapshot() ([]byte, error) {
	// Copy with defaults resolved, so the snapshot records what actually
	// ran rather than what the author omitted.
	c := *m
	c.Name = m.RunName()
	c.Seed = m.BaseSeed()
	c.Seeds = m.EffectiveSeeds()
	if len(c.Params) > 0 {
		// Maps marshal with sorted keys; copy so the snapshot cannot
		// alias the live manifest.
		params := make(map[string]string, len(c.Params))
		for k, v := range c.Params {
			params[k] = v
		}
		c.Params = params
	}
	buf, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest %s: snapshot: %w", m.RunName(), err)
	}
	return append(buf, '\n'), nil
}

// CellIDs enumerates the sweep's cell identifiers in execution order
// (empty for a non-sweep manifest) — the names of the per-cell
// directories a workspace run produces.
func (m *Manifest) CellIDs() []string {
	if m.Sweep == nil {
		return nil
	}
	axes := make([]Axis, 0, 2+len(m.Sweep.Vary))
	if len(m.Sweep.Schedulers) > 0 {
		axes = append(axes, Axis{Key: "sched", Values: m.Sweep.Schedulers})
	}
	if len(m.Sweep.Controllers) > 0 {
		axes = append(axes, Axis{Key: "policy", Values: m.Sweep.Controllers})
	}
	for _, ax := range m.Sweep.Vary {
		axes = append(axes, Axis{Key: ax.Key, Values: ax.Values})
	}
	var ids []string
	for _, overrides := range crossProduct(axes) {
		ids = append(ids, CellID(overrides))
	}
	return ids
}
