package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/stats"
)

// Axis is one sweep dimension: a parameter key and the values it walks.
type Axis struct {
	Key    string
	Values []string
}

// SweepConfig crosses a scenario over schedulers × controllers × any
// parameter axes, running every cell across Seeds independent seeds on
// the shared multi-seed runner.
type SweepConfig struct {
	Scenario string
	// Base parameters applied to every cell (nil = none).
	Base *Params
	// Schedulers and Controllers are the two conventional axes, mapped
	// onto the "sched" and "policy" parameters. Empty = the scenario's
	// default (one cell on that dimension).
	Schedulers  []string
	Controllers []string
	// Axes are additional parameter dimensions (e.g. loss=0.1,0.3).
	Axes []Axis

	Seeds    int
	BaseSeed int64
	Parallel int
	// OnCell observes each finished cell (progress output).
	OnCell func(c *Cell)
	// TraceFile, when non-nil, names each cell's trace file from its
	// CellID (an experiment workspace points it into the cell's run
	// directory); it overrides the trace suffixing derived from a
	// "trace" key in Base. Returning "" leaves the cell untraced.
	TraceFile func(cellID string) string
	// MetricsFile, when non-nil, names each cell's metrics.json the same
	// way; it overrides the metrics suffixing derived from a "metrics"
	// key in Base. Returning "" leaves the cell unmetered.
	MetricsFile func(cellID string) string
}

// Cell is one point of the cross product.
type Cell struct {
	Label     string
	ID        string   // filesystem-safe identifier (CellID of Overrides)
	Overrides []string // "key=value" in axis order
	Multi     *runner.Multi
}

// CellID derives the canonical filesystem-safe identifier of a sweep
// cell from its axis overrides ("key=value" in axis order). It is THE
// one place cell naming happens: per-cell trace-file suffixes and
// workspace cell directories both derive from it, so the two can never
// skew. The empty cell (a sweep with no axes) is "defaults".
func CellID(overrides []string) string {
	if len(overrides) == 0 {
		return "defaults"
	}
	return sanitizeLabel(strings.Join(overrides, "_"))
}

// SweepResult collects every cell of one sweep.
type SweepResult struct {
	Scenario string
	Config   SweepConfig
	Cells    []*Cell
}

// Sweep executes the cross product. Cells run sequentially (each cell
// parallelises across its seeds); the first invalid cell aborts with an
// error before any simulation runs.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	axes := make([]Axis, 0, 2+len(cfg.Axes))
	if len(cfg.Schedulers) > 0 {
		axes = append(axes, Axis{Key: "sched", Values: cfg.Schedulers})
	}
	if len(cfg.Controllers) > 0 {
		axes = append(axes, Axis{Key: "policy", Values: cfg.Controllers})
	}
	axes = append(axes, cfg.Axes...)
	for _, ax := range axes {
		if ax.Key == "" || len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: sweep axis %q has no values", ax.Key)
		}
	}

	cells := crossProduct(axes)
	sr := &SweepResult{Scenario: cfg.Scenario, Config: cfg}
	// A trace file in the base parameters fans out per cell (suffixed
	// with the cell label) so sequential cells cannot overwrite each
	// other; within a cell the seeds run concurrently, so a traced
	// sweep must stay single-seed (bare `trace` — no file — is safe at
	// any seed count).
	traceFile := cfg.Base.Clone().Str("trace", "")
	if traceFile != "" && cfg.Seeds > 1 {
		return nil, fmt.Errorf("scenario: trace=%s with %d seeds would write one file from every seed concurrently; use one seed per traced sweep", traceFile, cfg.Seeds)
	}
	if cfg.TraceFile != nil && cfg.Seeds > 1 {
		return nil, fmt.Errorf("scenario: per-cell trace files with %d seeds would write one file from every seed concurrently; use one seed per traced sweep", cfg.Seeds)
	}
	// Metrics are per-run but the object pools are process-wide, so
	// concurrent seeds would bleed into each other's pool deltas: a
	// metered sweep must stay single-seed, file or not.
	metered := cfg.Base.Clone().Has("metrics") || cfg.MetricsFile != nil
	if metered && cfg.Seeds > 1 {
		return nil, fmt.Errorf("scenario: metrics with %d seeds would mix the process-wide pool counters across concurrent seeds; use one seed per metered sweep", cfg.Seeds)
	}
	metricsFile := cfg.Base.Clone().Str("metrics", "")
	// Validate every cell before simulating anything.
	params := make([]*Params, len(cells))
	for i, overrides := range cells {
		p := cfg.Base.Clone()
		for _, kv := range overrides {
			k, v, _ := strings.Cut(kv, "=")
			p.Set(k, v)
		}
		switch {
		case cfg.TraceFile != nil:
			if f := cfg.TraceFile(CellID(overrides)); f != "" {
				p.Set("trace", f)
			}
		case traceFile != "" && len(cells) > 1:
			p.Set("trace", traceFile+"."+CellID(overrides))
		}
		switch {
		case cfg.MetricsFile != nil:
			if f := cfg.MetricsFile(CellID(overrides)); f != "" {
				p.Set("metrics", f)
			}
		case metricsFile != "" && len(cells) > 1:
			p.Set("metrics", metricsFile+"."+CellID(overrides))
		}
		if _, err := Build(cfg.Scenario, p.Clone()); err != nil {
			return nil, err
		}
		params[i] = p
	}
	for i, overrides := range cells {
		label := strings.Join(overrides, " ")
		if label == "" {
			label = "(defaults)"
		}
		m := runner.Run(cfg.Scenario+" "+label, runner.Config{
			Seeds:    cfg.Seeds,
			BaseSeed: cfg.BaseSeed,
			Parallel: cfg.Parallel,
		}, Job(cfg.Scenario, params[i]))
		cell := &Cell{Label: label, ID: CellID(overrides), Overrides: overrides, Multi: m}
		sr.Cells = append(sr.Cells, cell)
		if cfg.OnCell != nil {
			cfg.OnCell(cell)
		}
	}
	return sr, nil
}

// crossProduct enumerates the cells in deterministic order: the first
// axis varies slowest.
func crossProduct(axes []Axis) [][]string {
	cells := [][]string{nil}
	for _, ax := range axes {
		var next [][]string
		for _, base := range cells {
			for _, v := range ax.Values {
				cell := append(append([]string(nil), base...), ax.Key+"="+v)
				next = append(next, cell)
			}
		}
		cells = next
	}
	return cells
}

// Report renders the sweep: one scalar-summary block per cell, then a
// cross-cell comparison table over the scalars every cell shares.
func (sr *SweepResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "===== sweep: %s × %d cells × %d seeds =====\n",
		sr.Scenario, len(sr.Cells), sr.Config.Seeds)

	// Aggregate each cell once; the scalars present in every cell feed
	// the comparison table.
	summaries := make([]map[string]*stats.Sample, len(sr.Cells))
	shared := map[string]int{}
	for i, c := range sr.Cells {
		summaries[i] = c.Multi.ScalarSummary()
		for k := range summaries[i] {
			shared[k]++
		}
	}
	var keys []string
	for k, n := range shared {
		if n == len(sr.Cells) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	for i, c := range sr.Cells {
		fmt.Fprintf(&b, "\n-- %s --\n", c.Label)
		for _, k := range keys {
			fmt.Fprintf(&b, "   %-32s mean %12.4f\n", k, summaries[i][k].Mean())
		}
		if failed := c.Multi.Failed(); len(failed) > 0 {
			fmt.Fprintf(&b, "   FAILED seeds: %d (first: %v)\n", len(failed), failed[0].Err)
		}
	}

	if len(keys) > 0 && len(sr.Cells) > 1 {
		fmt.Fprintf(&b, "\n== cell comparison (means over %d seeds) ==\n", sr.Config.Seeds)
		width := 0
		for _, c := range sr.Cells {
			if len(c.Label) > width {
				width = len(c.Label)
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "%s:\n", k)
			for i, c := range sr.Cells {
				fmt.Fprintf(&b, "   %-*s %12.4f\n", width, c.Label, summaries[i][k].Mean())
			}
		}
	}
	return b.String()
}
