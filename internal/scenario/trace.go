package scenario

import (
	"sort"
	"strings"

	"repro/internal/trace"
)

// TraceSpec turns on event tracing for one run: the engine builds a
// trace.Tracer, gives every host its own shard (the fabric shares
// "net"), and wires the client stack, the server endpoint, and every
// named link into it. File, when non-empty, is where the run's binary
// trace lands; Cap bounds each shard's ring (0 = trace.DefaultShardCap).
type TraceSpec struct {
	File string
	Cap  int
}

// EnableTrace arms tracing on every run of a spec and appends the trace
// probe that folds the analysis summaries into the Result and writes
// the trace file. Multi-run specs write one file per run, suffixed with
// the run's label; file "" records and analyses without writing a file.
// Build calls this for the `trace=`/`trace_cap=` parameters every
// registered scenario accepts, so any scenario (and any sweep cell) can
// produce forensic output without per-scenario wiring.
func EnableTrace(sp *Spec, file string, cap int) {
	multi := len(sp.Runs) > 1
	for _, rs := range sp.Runs {
		f := file
		prefix := "trace_"
		if multi && rs.Label != "" {
			if f != "" {
				f += "." + sanitizeLabel(rs.Label)
			}
			prefix = sanitizeLabel(rs.Label) + "_trace_"
		}
		rs.Trace = &TraceSpec{File: f, Cap: cap}
		rs.Probes = append(rs.Probes, traceProbe(f, prefix))
	}
}

// sanitizeLabel makes a run label safe as a filename suffix.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, label)
}

// traceProbe is the Trace probe kind: Collect snapshots the run's
// tracer, folds the mptcptrace-style summaries (byte split, reinjection
// and duplicate accounting, handover gaps, pooled RTT distribution)
// into the Result as scalars and samples — never into the Report text,
// so traced reports stay byte-identical to untraced goldens — and
// writes the binary trace file for `mpexp report`.
func traceProbe(file, prefix string) Probe {
	return Probe{
		Name: "trace",
		Collect: func(rt *Run) {
			if rt.Tracer == nil {
				return
			}
			data := rt.Tracer.Snapshot()
			trace.Analyze(data).FoldInto(rt.Result, prefix)
			if file != "" {
				if err := data.WriteFile(file); err != nil {
					panic(err) // the runner reports this as the seed's failure
				}
			}
		},
	}
}

// TraceShard returns the named shard of the run's tracer, or nil when
// the run is untraced — safe to hand straight to mptcp/smapp/netem
// SetTrace/Config fields, whose nil means "off". Workloads that own
// their stacks (FanOut) use it to opt their per-client hosts in.
func (rt *Run) TraceShard(name string) *trace.Shard {
	return rt.Tracer.Shard(name)
}

// wireTrace attaches the run's freshly built topology to the tracer:
// every named link's two directions record into the shared "net" shard,
// in sorted name order so entity ids are deterministic.
func (rt *Run) wireTrace() {
	tr := rt.Tracer
	if tr == nil {
		return
	}
	sh := tr.Shard("net")
	names := make([]string, 0, len(rt.Net.Links))
	for name := range rt.Net.Links {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := rt.Net.Links[name]
		d.AB.SetTrace(sh, tr.Register(trace.EntLink, 0, d.AB.Name()))
		d.BA.SetTrace(sh, tr.Register(trace.EntLink, 0, d.BA.Name()))
	}
}
