package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
)

func init() {
	// A sweepable scenario: one bulk run whose completion time depends on
	// the link rate parameter.
	Register("test-sweep-bulk", "test-only sweepable bulk", func(p *Params) (*Spec, error) {
		rate := p.Float("rate_mbps", 50)
		sched := p.Str("sched", "")
		wl := &Bulk{Bytes: 256 << 10}
		return &Spec{
			Name: "test-sweep-bulk",
			Runs: []*RunSpec{{
				Label:    "bulk",
				Topology: Direct{Link: netem.LinkConfig{RateBps: rate * 1e6, Delay: 2 * time.Millisecond}},
				Workload: wl,
				Sched:    sched,
				Settle:   time.Millisecond,
				Probes: []Probe{
					Scalar("done_s", func(rt *Run) float64 { return rt.Sim.Now().Seconds() }),
				},
				Stop: Stop{Horizon: 30 * time.Second, Poll: 10 * time.Millisecond, Until: wl.Done},
			}},
		}, nil
	})
}

func TestSweepCrossesAxes(t *testing.T) {
	sr, err := Sweep(SweepConfig{
		Scenario:   "test-sweep-bulk",
		Schedulers: []string{"lowest-rtt", "round-robin"},
		Axes:       []Axis{{Key: "rate_mbps", Values: []string{"10", "100"}}},
		Seeds:      2,
		BaseSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(sr.Cells))
	}
	// First axis varies slowest: lowest-rtt cells first.
	if !strings.Contains(sr.Cells[0].Label, "sched=lowest-rtt") ||
		!strings.Contains(sr.Cells[0].Label, "rate_mbps=10") {
		t.Fatalf("cell order wrong: %q", sr.Cells[0].Label)
	}
	for _, c := range sr.Cells {
		if failed := c.Multi.Failed(); len(failed) != 0 {
			t.Fatalf("cell %s failed: %v", c.Label, failed[0].Err)
		}
		if c.Multi.ScalarSummary()["done_s"].N() != 2 {
			t.Fatalf("cell %s did not aggregate 2 seeds", c.Label)
		}
	}
	// The slow link must finish later than the fast one, per scheduler.
	slow := sr.Cells[0].Multi.ScalarSummary()["done_s"].Mean()
	fast := sr.Cells[1].Multi.ScalarSummary()["done_s"].Mean()
	if slow <= fast {
		t.Fatalf("10 Mbps (%.3fs) should be slower than 100 Mbps (%.3fs)", slow, fast)
	}
	rep := sr.Report()
	for _, want := range []string{"sweep: test-sweep-bulk", "cell comparison", "done_s"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSweepRejectsInvalidCellUpFront(t *testing.T) {
	if _, err := Sweep(SweepConfig{
		Scenario: "test-sweep-bulk",
		Axes:     []Axis{{Key: "rate_mbps", Values: []string{"10", "oops"}}},
		Seeds:    1,
	}); err == nil {
		t.Fatal("expected the malformed cell to be rejected before running")
	}
	if _, err := Sweep(SweepConfig{Scenario: "nosuch", Seeds: 1}); err == nil {
		t.Fatal("expected unknown scenario error")
	}
}
