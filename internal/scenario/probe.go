package scenario

import (
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// Probe declaratively selects what a run collects into the Result: Arm
// installs hooks right after the workload dialed (trace callbacks,
// counters); Collect runs once the simulation stopped and writes samples,
// series, or scalars. Either hook may be nil.
type Probe struct {
	Name    string
	Arm     func(rt *Run)
	Collect func(rt *Run)
}

// Scalar is a probe recording one headline number after the run.
func Scalar(key string, fn func(rt *Run) float64) Probe {
	return Probe{Name: key, Collect: func(rt *Run) {
		rt.Result.Scalars[key] = fn(rt)
	}}
}

// SampleInto is a probe filling the named distribution after the run.
// The sample is shared across runs of the spec, so per-trial runs can
// accumulate into one curve.
func SampleInto(curve string, fn func(rt *Run, s *stats.Sample)) Probe {
	return Probe{Name: curve, Collect: func(rt *Run) {
		fn(rt, rt.Result.Sample(curve))
	}}
}

// PushTrace records the per-subflow data-sequence trace of Fig. 2a:
// every push through a subflow sourced at the client's BackupAddrIdx-th
// address lands in the Backup series, everything else in Primary, and the
// first backup push is remembered — the moment the smart controller's
// switch became effective (a natural Stop.Until condition).
type PushTrace struct {
	Primary, Backup *stats.Series
	// FirstBackup is when the backup subflow first carried data (-1 =
	// never).
	FirstBackup sim.Time
	// BackupAddrIdx selects which client address marks the backup path.
	BackupAddrIdx int
}

// NewPushTrace builds the trace with the conventional series names.
func NewPushTrace(backupAddrIdx int) *PushTrace {
	return &PushTrace{
		Primary:       &stats.Series{Name: "primary"},
		Backup:        &stats.Series{Name: "backup"},
		FirstBackup:   -1,
		BackupAddrIdx: backupAddrIdx,
	}
}

// Probe wires the trace into a run: Arm installs the connection's
// TracePush hook, Collect appends both series to the result.
func (p *PushTrace) Probe() Probe {
	return Probe{
		Name: "push-trace",
		Arm: func(rt *Run) {
			split := rt.Net.Client().Addrs[p.BackupAddrIdx]
			cclk := rt.ClientClock(0) // TracePush fires on the client's loop
			rt.Conn.TracePush = func(sf *tcp.Subflow, rel uint64, ln int, re bool) {
				t := cclk.Now()
				tr := p.Primary
				if sf.Tuple().SrcIP == split {
					tr = p.Backup
					if p.FirstBackup < 0 {
						p.FirstBackup = t
					}
				}
				label := ""
				if re {
					label = "reinject"
				}
				tr.Append(t.Seconds(), float64(rel+uint64(ln)), label)
			}
		},
		Collect: func(rt *Run) {
			rt.Result.Series = append(rt.Result.Series, p.Primary, p.Backup)
		},
	}
}
