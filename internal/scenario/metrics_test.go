package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netem"
)

// metricsTestSpec is a tiny two-path bulk spec for exercising the
// metrics wiring without the experiments package.
func metricsTestSpec(shards int) *Spec {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	wl := &Bulk{Bytes: 64 << 10, CloseWhenDone: true}
	return &Spec{Name: "metrics-test", Runs: []*RunSpec{{
		Topology: TwoPath{P0: p, P1: p},
		Workload: wl,
		Shards:   shards,
		Settle:   time.Millisecond,
		Stop:     Stop{Horizon: 5 * time.Second, Poll: 50 * time.Millisecond, Until: wl.Done},
	}}}
}

// runMetered executes the spec with metrics exported to a file and
// returns the decoded snapshot.
func runMetered(t *testing.T, shards int) *metrics.Snapshot {
	t.Helper()
	file := filepath.Join(t.TempDir(), "metrics.json")
	sp := metricsTestSpec(shards)
	EnableMetrics(sp, file)
	Execute(sp, 1)
	buf, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func encode(t *testing.T, s *metrics.Snapshot) []byte {
	t.Helper()
	buf, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestMetricsRepeatedRunsCanonicalIdentical pins per-run determinism:
// the exported metrics.json of two identical runs is byte-identical once
// the wall-clock-tagged metrics are dropped (Canonical).
func TestMetricsRepeatedRunsCanonicalIdentical(t *testing.T) {
	a, b := runMetered(t, 1), runMetered(t, 1)
	if m := a.Get("pool_seg_gets"); m == nil || m.Value == 0 {
		t.Fatalf("metered run recorded no segment pool traffic: %v", a.Text())
	}
	if !bytes.Equal(encode(t, a.Canonical()), encode(t, b.Canonical())) {
		t.Fatalf("repeated runs diverged:\n--- a:\n%s--- b:\n%s",
			a.Canonical().Text(), b.Canonical().Text())
	}
}

// TestMetricsPortableAcrossShardCounts pins cross-layout determinism:
// after dropping wall-clock AND layout-tagged metrics (plus the
// per-shard breakdowns), the same seed exports identical snapshots at
// any shard count — sharding changes where work runs, never what the
// simulation does.
func TestMetricsPortableAcrossShardCounts(t *testing.T) {
	base := runMetered(t, 1)
	want := encode(t, base.Portable())
	for _, n := range []int{2, 8} {
		s := runMetered(t, n)
		if got := encode(t, s.Portable()); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d portable snapshot diverged from shards=1:\n--- 1:\n%s--- %d:\n%s",
				n, base.Portable().Text(), n, s.Portable().Text())
		}
		// The full snapshot still carries the per-shard breakdown.
		if m := s.Get("sim_events"); m == nil || len(m.Shards) != n {
			t.Fatalf("shards=%d: sim_events per-shard breakdown missing: %+v", n, m)
		}
	}
}
