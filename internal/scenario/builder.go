package scenario

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Builder is the free-form declarative topology: named hosts, routers and
// middleboxes joined by named duplex links with per-link netem.LinkConfig,
// plus static routes. Link directions are resolved automatically from
// which side of a link a node sits on, so specs never spell out AB/BA.
//
// Build order is fixed — nodes, links, interfaces, routes — and every
// inconsistency (unknown node, iface on a link the host does not touch)
// panics: topologies are static data, so any error is a spec bug.
type Builder struct {
	Desc string

	Hosts       []HostSpec
	Routers     []RouterSpec
	Middleboxes []MiddleboxSpec
	Links       []LinkSpec
	Routes      []RouteSpec

	// ClientHosts name the hosts exposed as Net.Clients, in order; their
	// endpoint addresses are the declared interfaces in order. Server
	// names the server host; ServerAddr its address (defaults to the
	// server's first interface address).
	ClientHosts []string
	Server      string
	ServerAddr  netip.Addr
}

// HostSpec declares a host and its interfaces. Each interface attaches to
// the named link; the outbound direction is inferred from the link's
// endpoints. Group is the host's placement group for sharded worlds; a
// spec leaving every node in group 0 cannot be partitioned and is
// rejected when run with more than one shard.
type HostSpec struct {
	Name   string
	Group  int
	Ifaces []IfaceSpec
}

// IfaceSpec is one host interface.
type IfaceSpec struct {
	Name string
	Addr netip.Addr
	Link string
}

// RouterSpec declares a flow-hashing router.
type RouterSpec struct {
	Name  string
	Group int
	// HashSeed seeds the ECMP flow hash; zero derives it from the run
	// seed.
	HashSeed uint64
}

// MiddleboxSpec declares a stateful middlebox with an idle timeout.
type MiddleboxSpec struct {
	Name   string
	Group  int
	Idle   time.Duration
	Expiry netem.ExpiryPolicy
}

// LinkSpec declares a duplex link between two named nodes. The forward
// (AB) direction is A→B, so list the client-side node first to keep the
// loss-event convention.
type LinkSpec struct {
	Name string
	A, B string
	Cfg  netem.LinkConfig
}

// RouteSpec installs a static route at a router or middlebox: traffic to
// Dst leaves Node over the listed links (several links ECMP-balance).
type RouteSpec struct {
	Node  string
	Dst   netip.Addr
	Links []string
}

// Build implements Topology.
func (b Builder) Build(f sim.Fabric, seed int64) *Net {
	n := &Net{Links: make(map[string]*netem.Duplex)}

	type node struct {
		n    netem.Node
		host *netem.Host
		add  func(dst netip.Addr, links ...*netem.Link)
	}
	nodes := make(map[string]node)
	declare := func(name string, nd node) {
		if name == "" {
			panic("scenario: Builder node with empty name")
		}
		if _, dup := nodes[name]; dup {
			panic(fmt.Sprintf("scenario: Builder node %q declared twice", name))
		}
		nodes[name] = nd
	}
	for _, h := range b.Hosts {
		host := netem.NewHost(f.HostClock(h.Group, h.Name), h.Name)
		declare(h.Name, node{n: host, host: host})
	}
	for _, r := range b.Routers {
		hs := r.HashSeed
		if hs == 0 {
			hs = uint64(seed)
		}
		rt := netem.NewRouter(f.HostClock(r.Group, r.Name), r.Name, hs)
		declare(r.Name, node{n: rt, add: rt.AddRoute})
	}
	for _, m := range b.Middleboxes {
		mb := netem.NewMiddlebox(f.HostClock(m.Group, m.Name), m.Name, m.Idle, m.Expiry)
		// A middlebox routes each destination over exactly one link.
		add := func(dst netip.Addr, links ...*netem.Link) {
			if len(links) != 1 {
				panic(fmt.Sprintf("scenario: Builder middlebox route to %s needs exactly one link, got %d", dst, len(links)))
			}
			mb.AddRoute(dst, links[0])
		}
		declare(m.Name, node{n: mb, add: add})
		if n.NAT == nil {
			n.NAT = mb
		}
	}

	get := func(name, what string) node {
		nd, ok := nodes[name]
		if !ok {
			panic(fmt.Sprintf("scenario: Builder %s references unknown node %q", what, name))
		}
		return nd
	}
	type ends struct{ a, b string }
	sides := make(map[string]ends)
	for _, l := range b.Links {
		if _, dup := n.Links[l.Name]; dup {
			panic(fmt.Sprintf("scenario: Builder link %q declared twice", l.Name))
		}
		d := netem.NewDuplex(l.Name, get(l.A, "link").n, get(l.B, "link").n, l.Cfg)
		n.Links[l.Name] = d
		sides[l.Name] = ends{a: l.A, b: l.B}
	}
	// outbound returns the directed half of a named link leaving `from`.
	outbound := func(from, link string) *netem.Link {
		d, ok := n.Links[link]
		if !ok {
			panic(fmt.Sprintf("scenario: Builder references unknown link %q", link))
		}
		switch from {
		case sides[link].a:
			return d.AB
		case sides[link].b:
			return d.BA
		}
		panic(fmt.Sprintf("scenario: node %q is not an endpoint of link %q", from, link))
	}

	for _, h := range b.Hosts {
		host := nodes[h.Name].host
		for _, i := range h.Ifaces {
			host.AddIface(i.Name, i.Addr, outbound(h.Name, i.Link))
		}
	}
	for _, r := range b.Routes {
		nd := get(r.Node, "route")
		if nd.add == nil {
			panic(fmt.Sprintf("scenario: Builder route at %q, which is a host (hosts route by interface)", r.Node))
		}
		var links []*netem.Link
		for _, l := range r.Links {
			links = append(links, outbound(r.Node, l))
		}
		nd.add(r.Dst, links...)
	}

	srv := get(b.Server, "server")
	if srv.host == nil {
		panic(fmt.Sprintf("scenario: Builder server %q is not a host", b.Server))
	}
	n.Server = srv.host
	n.ServerAddr = b.ServerAddr
	if n.ServerAddr == (netip.Addr{}) {
		if addrs := srv.host.Addrs(); len(addrs) > 0 {
			n.ServerAddr = addrs[0]
		}
	}
	for _, name := range b.ClientHosts {
		cl := get(name, "client")
		if cl.host == nil {
			panic(fmt.Sprintf("scenario: Builder client %q is not a host", name))
		}
		n.Clients = append(n.Clients, Endpoint{Host: cl.host, Addrs: cl.host.Addrs()})
	}
	return n
}

// Describe implements Topology.
func (b Builder) Describe() string {
	if b.Desc != "" {
		return b.Desc
	}
	return fmt.Sprintf("custom topology (%d hosts, %d links)", len(b.Hosts), len(b.Links))
}
