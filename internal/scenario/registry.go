package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mptcp"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// Factory builds a scenario spec from parameters. It is called once per
// seed (spec runs hold per-run workload state), so it must be cheap and
// must not retain p.
type Factory func(p *Params) (*Spec, error)

// Info describes a registered scenario for listings.
type Info struct {
	Name string
	Desc string
}

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
	descs     map[string]string
	params    map[string][]ParamDoc
}{factories: make(map[string]Factory), descs: make(map[string]string),
	params: make(map[string][]ParamDoc)}

// Register makes a scenario available by name to `mpexp run`/`sweep`/
// `list` and to Build. It panics on an empty name or a duplicate
// registration — both are programming errors, caught at init time.
func Register(name, desc string, f Factory) {
	if name == "" || f == nil {
		panic("scenario: Register with empty name or nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("scenario: %q registered twice", name))
	}
	registry.factories[name] = f
	registry.descs[name] = desc
}

// ParamDoc documents one typed parameter a scenario consumes, for
// listings (`mpexp list` prints them under the scenario) and for
// authoring manifests against the live registry (`mpexp list -json`).
// Type and Default are optional metadata: Type names the Params getter
// that reads the key ("int", "float", "bool", "string", "duration",
// "list"), Default is the value used when the key is absent.
type ParamDoc struct {
	Key     string `json:"key"`
	Type    string `json:"type,omitempty"`
	Default string `json:"default,omitempty"`
	Desc    string `json:"doc"`
}

// CommonParamDocs documents the parameters Build consumes for every
// registered scenario, so listings and manifest authors see the full
// accepted key set, not just the per-scenario ones.
func CommonParamDocs() []ParamDoc {
	return []ParamDoc{
		{Key: "sched", Type: "string", Desc: "registered packet scheduler (default: the scenario's)"},
		{Key: "policy", Type: "string", Desc: "registered subflow controller (default: the scenario's)"},
		{Key: "smoke", Type: "bool", Default: "false", Desc: "reduced sizes/durations for CI smoke runs"},
		{Key: "trace", Type: "string", Desc: "record an event trace (bare = in-memory only, value = file path)"},
		{Key: "trace_cap", Type: "int", Default: "0", Desc: "trace ring capacity per shard (0 = default)"},
		{Key: "metrics", Type: "string", Desc: "record runtime metrics (bare = report only, value = metrics.json path)"},
		{Key: "shards", Type: "int", Default: "1", Desc: "worker event loops per run (results identical at any count)"},
	}
}

// RegisterParams attaches parameter documentation to an already
// registered scenario. Registering docs for an unknown scenario is a
// programming error (the same init should Register first), caught at
// init time like a duplicate Register.
func RegisterParams(name string, docs ...ParamDoc) {
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.factories[name]; !ok {
		panic(fmt.Sprintf("scenario: RegisterParams for unregistered scenario %q", name))
	}
	registry.params[name] = append(registry.params[name], docs...)
}

// ParamDocs returns the documented parameters of a scenario (nil when
// the scenario registered none).
func ParamDocs(name string) []ParamDoc {
	registry.RLock()
	defer registry.RUnlock()
	return append([]ParamDoc(nil), registry.params[name]...)
}

// Lookup resolves a scenario name. Unknown names list what is registered.
func Lookup(name string) (Factory, error) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.factories[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (registered: %s)",
			name, strings.Join(namesLocked(), ", "))
	}
	return f, nil
}

// Names lists every registered scenario, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry.factories))
	for n := range registry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scenarios lists every registered scenario with its description, sorted
// by name.
func Scenarios() []Info {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Info, 0, len(registry.factories))
	for _, n := range namesLocked() {
		out = append(out, Info{Name: n, Desc: registry.descs[n]})
	}
	return out
}

// Build resolves a name and instantiates its spec, rejecting parameters
// that failed to parse or were never consumed by the factory, and
// validating every run's scheduler and policy against their registries —
// so typos die here, before a single simulation (or a whole sweep cell's
// seed fan-out) runs.
func Build(name string, p *Params) (*Spec, error) {
	f, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if p == nil {
		p = NewParams(nil)
	}
	sp, err := f(p)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	// Every registered scenario accepts the tracing knobs: `trace=FILE`
	// writes the binary event trace for `mpexp report` (bare `trace`
	// records and summarises without a file), `trace_cap=N` bounds each
	// ring shard. Handled here so no factory needs trace-specific code.
	// Both keys are consumed unconditionally so `trace_cap` alone never
	// trips the unknown-parameter check.
	traceFile, traceCap := p.Str("trace", ""), p.Int("trace_cap", 0)
	if p.Has("trace") {
		EnableTrace(sp, traceFile, traceCap)
	}
	// `metrics=FILE` records runtime metrics and writes the metrics.json
	// snapshot (bare `metrics` records and renders without a file).
	// Handled here so no factory needs metrics-specific code.
	metricsFile := p.Str("metrics", "")
	if p.Has("metrics") {
		EnableMetrics(sp, metricsFile)
	}
	// `shards=N` shards every run of the scenario across N worker event
	// loops (results are bit-identical at any N). Consumed here so no
	// factory needs shard-specific code. Tracing assumes one loop, so the
	// combination is rejected rather than silently corrupting traces.
	if shards := p.Int("shards", 0); shards != 0 {
		if shards < 0 {
			return nil, fmt.Errorf("scenario %s: shards=%d: must be positive", name, shards)
		}
		if shards > 1 && p.Has("trace") {
			return nil, fmt.Errorf("scenario %s: tracing is single-shard only (got shards=%d)", name, shards)
		}
		for _, rs := range sp.Runs {
			rs.Shards = shards
		}
	}
	if err := p.Err(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	if unused := p.Unused(); len(unused) > 0 {
		return nil, fmt.Errorf("scenario %s: unknown parameter(s): %s", name, strings.Join(unused, ", "))
	}
	for _, rs := range sp.Runs {
		if _, err := mptcp.LookupScheduler(rs.Sched); err != nil {
			return nil, fmt.Errorf("scenario %s: run %s: %w", name, rs.Label, err)
		}
		if rs.Policy == KernelPolicy {
			if _, owns := rs.Workload.(StackOwner); !owns {
				return nil, fmt.Errorf("scenario %s: run %s: policy %q is a fan-out sweep cell, not a registered controller",
					name, rs.Label, KernelPolicy)
			}
			continue
		}
		if rs.Policy != "" {
			if _, err := smapp.LookupController(rs.Policy); err != nil {
				return nil, fmt.Errorf("scenario %s: run %s: %w", name, rs.Label, err)
			}
		}
	}
	return sp, nil
}

// Job returns a per-seed job for the multi-seed runner: each seed builds
// a fresh spec from a clone of p (specs hold per-run workload state) and
// executes it. The caller should Build once up front to surface parameter
// errors before fanning out; inside the job they panic, which the runner
// reports as that seed's failure.
func Job(name string, p *Params) func(seed int64) *stats.Result {
	return func(seed int64) *stats.Result {
		sp, err := Build(name, p.Clone())
		if err != nil {
			panic(err)
		}
		return Execute(sp, seed)
	}
}
