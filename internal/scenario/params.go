package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Params carries the string key=value knobs a scenario factory reads —
// the wire format of `mpexp run <scenario> -set key=val` and of sweep
// axes. Typed getters record which keys were consumed and which values
// failed to parse, so Build can reject typos ("unknown parameter") and
// bad values with one error instead of silently ignoring them.
//
// Two keys are conventions shared by every scenario: "smoke" (reduced
// durations/sizes for CI smoke runs) and "sched"/"policy" (the packet
// scheduler and subflow controller, set by the CLI's -sched/-controller).
type Params struct {
	vals map[string]string
	used map[string]bool
	err  error
}

// NewParams wraps a key=value map (nil = empty).
func NewParams(vals map[string]string) *Params {
	p := &Params{vals: make(map[string]string, len(vals)), used: make(map[string]bool)}
	for k, v := range vals {
		p.vals[k] = v
	}
	return p
}

// ParseSets builds Params from "key=value" strings. A bare "key" (no
// '=') stores the empty value, which Bool treats as true — so boolean
// knobs can be set flag-style (`-set baseline`); a mistyped bare key is
// still caught by the unused-key check in Build.
func ParseSets(kvs []string) (*Params, error) {
	p := NewParams(nil)
	for _, kv := range kvs {
		k, v, _ := strings.Cut(kv, "=")
		if k == "" {
			return nil, fmt.Errorf("scenario: malformed parameter %q (want key=value)", kv)
		}
		p.vals[k] = v
	}
	return p, nil
}

// Set stores one value.
func (p *Params) Set(key, val string) { p.vals[key] = val }

// Map returns a copy of the stored key=value pairs — the resolved
// parameter set a workspace records in its manifest snapshot.
func (p *Params) Map() map[string]string {
	if p == nil {
		return nil
	}
	out := make(map[string]string, len(p.vals))
	for k, v := range p.vals {
		out[k] = v
	}
	return out
}

// Clone copies the values into a fresh Params with clean bookkeeping, so
// concurrent per-seed factory calls never share state.
func (p *Params) Clone() *Params {
	if p == nil {
		return NewParams(nil)
	}
	return NewParams(p.vals)
}

func (p *Params) lookup(key string) (string, bool) {
	p.used[key] = true
	v, ok := p.vals[key]
	return v, ok
}

func (p *Params) fail(key, val string, err error) {
	if p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: %v", key, val, err)
	}
}

// Has reports whether the key was set at all (marking it consumed), for
// knobs where a bare `-set key` and `key=value` both mean "on" but the
// empty value is meaningful (the trace parameter: bare = record without
// writing a file).
func (p *Params) Has(key string) bool {
	_, ok := p.lookup(key)
	return ok
}

// Str returns a string parameter.
func (p *Params) Str(key, def string) string {
	if v, ok := p.lookup(key); ok {
		return v
	}
	return def
}

// Bool returns a boolean parameter ("true"/"false"/"1"/"0"; a bare
// `-set smoke` style empty value counts as true).
func (p *Params) Bool(key string, def bool) bool {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	if v == "" {
		return true
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return b
}

// Int returns an integer parameter.
func (p *Params) Int(key string, def int) int {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return n
}

// Float returns a float parameter.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return f
}

// Duration returns a duration parameter in Go syntax ("1s", "200ms").
func (p *Params) Duration(key string, def time.Duration) time.Duration {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		p.fail(key, v, err)
		return def
	}
	return d
}

// Floats returns a comma-separated float-list parameter.
func (p *Params) Floats(key string, def []float64) []float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	if v == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(v, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			p.fail(key, v, err)
			return def
		}
		out = append(out, f)
	}
	return out
}

// Strings returns a comma-separated string-list parameter.
func (p *Params) Strings(key string, def []string) []string {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	if v == "" {
		return nil
	}
	parts := strings.Split(v, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Err reports the first value that failed to parse.
func (p *Params) Err() error { return p.err }

// Unused lists keys that were set but never read by the factory — almost
// always a typo the caller wants rejected.
func (p *Params) Unused() []string {
	var out []string
	for k := range p.vals {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
