package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
)

// testSpecFactory registers a tiny parameterised scenario under a
// test-only name.
func testSpecFactory(p *Params) (*Spec, error) {
	bytes := p.Int("bytes", 64<<10)
	sched := p.Str("sched", "")
	wl := &Bulk{Bytes: bytes}
	return &Spec{
		Name: "test-registry-bulk",
		Runs: []*RunSpec{{
			Label:    "bulk",
			Topology: Direct{Link: netem.LinkConfig{RateBps: 50e6, Delay: 2 * time.Millisecond}},
			Workload: wl,
			Sched:    sched,
			Settle:   time.Millisecond,
			Probes:   []Probe{Scalar("bytes", func(*Run) float64 { return float64(bytes) })},
			Stop:     Stop{Horizon: 10 * time.Second, Poll: 10 * time.Millisecond, Until: wl.Done},
		}},
	}, nil
}

func init() {
	Register("test-registry-bulk", "test-only bulk scenario", testSpecFactory)
}

func TestRegistryLookupAndNames(t *testing.T) {
	if _, err := Lookup("test-registry-bulk"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nosuch"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown lookup error = %v", err)
	}
	found := false
	for _, in := range Scenarios() {
		if in.Name == "test-registry-bulk" && in.Desc != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("Scenarios() missing the registered entry or its description")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register("test-registry-bulk", "", testSpecFactory) })
	mustPanic("empty name", func() { Register("", "", testSpecFactory) })
	mustPanic("nil factory", func() { Register("x", "", nil) })
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build("test-registry-bulk", NewParams(map[string]string{"bogus": "1"})); err == nil ||
		!strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown param error = %v", err)
	}
	if _, err := Build("test-registry-bulk", NewParams(map[string]string{"bytes": "NaNa"})); err == nil {
		t.Fatal("expected parse error for bytes=NaNa")
	}
	if _, err := Build("test-registry-bulk", NewParams(map[string]string{"bytes": "1024"})); err != nil {
		t.Fatal(err)
	}
}

func TestJobBuildsFreshSpecPerSeed(t *testing.T) {
	job := Job("test-registry-bulk", NewParams(map[string]string{"bytes": "32768"}))
	a := job(1)
	b := job(2)
	if a.Scalars["bytes"] != 32768 || b.Scalars["bytes"] != 32768 {
		t.Fatalf("params not applied: %v / %v", a.Scalars["bytes"], b.Scalars["bytes"])
	}
	if a.Report != job(1).Report {
		t.Fatal("same seed through Job diverged")
	}
}
