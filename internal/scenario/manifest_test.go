package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
)

func init() {
	Register("test-manifest-bulk", "test-only manifest scenario", func(p *Params) (*Spec, error) {
		b := p.Int("bytes", 64<<10)
		rate := p.Float("rate", 50e6)
		sched := p.Str("sched", "")
		p.Str("policy", "")
		p.Bool("smoke", false)
		wl := &Bulk{Bytes: b}
		return &Spec{
			Name: "test-manifest-bulk",
			Runs: []*RunSpec{{
				Label:    "bulk",
				Topology: Direct{Link: netem.LinkConfig{RateBps: rate, Delay: 2 * time.Millisecond}},
				Workload: wl,
				Sched:    sched,
				Settle:   time.Millisecond,
				Probes:   []Probe{Scalar("bytes", func(*Run) float64 { return float64(b) })},
				Stop:     Stop{Horizon: 10 * time.Second, Poll: 10 * time.Millisecond, Until: wl.Done},
			}},
		}, nil
	})
}

// Parameter values written as JSON numbers and booleans reach the typed
// Params as strings with the literal spelling preserved — the exact
// bytes `-set` would carry.
func TestParseManifestValueForms(t *testing.T) {
	m, err := ParseManifest([]byte(`{
		"scenario": "test-manifest-bulk",
		"params": {"rate": 0.30, "bytes": 1024, "smoke": true, "sched": "lowest-rtt"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"rate": "0.30", "bytes": "1024", "smoke": "true", "sched": "lowest-rtt",
	}
	for k, v := range want {
		if m.Params[k] != v {
			t.Errorf("params[%q] = %q, want %q", k, m.Params[k], v)
		}
	}
}

// Setting trace_file implies trace; sweep axes keep file order.
func TestParseManifestTraceAndSweep(t *testing.T) {
	m, err := ParseManifest([]byte(`{
		"scenario": "test-manifest-bulk",
		"trace_file": "/tmp/x.trace",
		"sweep": {
			"schedulers": ["lowest-rtt", "round-robin"],
			"vary": [
				{"key": "bytes", "values": [1024, 2048]},
				{"key": "rate", "values": ["25e6"]}
			]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Trace || m.TraceFile != "/tmp/x.trace" {
		t.Fatalf("trace_file did not imply Trace: %+v", m)
	}
	if len(m.Sweep.Vary) != 2 || m.Sweep.Vary[0].Key != "bytes" || m.Sweep.Vary[1].Key != "rate" {
		t.Fatalf("vary axes out of order: %+v", m.Sweep.Vary)
	}
	if got := m.Sweep.Vary[0].Values; got[0] != "1024" || got[1] != "2048" {
		t.Fatalf("numeric axis values = %v", got)
	}
}

func TestParseManifestRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown top-level field", `{"scenario": "x", "shard": 4}`, "shard"},
		{"unknown sweep field", `{"scenario": "x", "sweep": {"contollers": ["a"]}}`, "contollers"},
		{"trailing data", `{"scenario": "x"} {"scenario": "y"}`, "trailing"},
		{"array param value", `{"scenario": "x", "params": {"bytes": [1, 2]}}`, "string, number, or boolean"},
		{"object axis value", `{"scenario": "x", "sweep": {"vary": [{"key": "k", "values": [{}]}]}}`, "string, number, or boolean"},
		{"not json", `scenario: x`, "manifest"},
	}
	for _, tc := range cases {
		if _, err := ParseManifest([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestLoadManifestNameDefault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "my-exp.json")
	if err := os.WriteFile(path, []byte(`{"scenario": "test-manifest-bulk"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "my-exp" || m.RunName() != "my-exp" {
		t.Fatalf("Name = %q, want my-exp", m.Name)
	}
}

// The rejection table: every way a manifest can ask for something the
// registry (or the trace/shard rules) forbids, each dying in Validate
// with the same error class the CLI raises.
func TestManifestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		m       *Manifest
		wantErr string
	}{
		{"missing scenario", &Manifest{}, "missing required field"},
		{"unknown scenario", &Manifest{Scenario: "nosuch"}, "unknown scenario"},
		{"reserved trace param", &Manifest{Scenario: "test-manifest-bulk",
			Params: map[string]string{"trace": "f"}}, "reserved"},
		{"reserved shards param", &Manifest{Scenario: "test-manifest-bulk",
			Params: map[string]string{"shards": "4"}}, "reserved"},
		{"reserved trace_cap param", &Manifest{Scenario: "test-manifest-bulk",
			Params: map[string]string{"trace_cap": "9"}}, "reserved"},
		{"negative seed", &Manifest{Scenario: "test-manifest-bulk", Seed: -1}, "non-negative"},
		{"negative seeds", &Manifest{Scenario: "test-manifest-bulk", Seeds: -2}, "non-negative"},
		{"trace with multiple seeds", &Manifest{Scenario: "test-manifest-bulk",
			Trace: true, Seeds: 4}, "seeds"},
		{"trace with shards", &Manifest{Scenario: "test-manifest-bulk",
			Trace: true, Shards: 4}, "single-shard"},
		{"unknown param key", &Manifest{Scenario: "test-manifest-bulk",
			Params: map[string]string{"bites": "1"}}, "bites"},
		{"bad param value", &Manifest{Scenario: "test-manifest-bulk",
			Params: map[string]string{"bytes": "many"}}, "bytes"},
		{"malformed sweep axis", &Manifest{Scenario: "test-manifest-bulk",
			Sweep: &ManifestSweep{Vary: []ManifestAxis{{Key: "bytes"}}}}, "no values"},
		{"bad value in one sweep cell", &Manifest{Scenario: "test-manifest-bulk",
			Sweep: &ManifestSweep{Vary: []ManifestAxis{{Key: "bytes", Values: []string{"1024", "nope"}}}}}, "bytes"},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestManifestValidateOK(t *testing.T) {
	m := &Manifest{
		Scenario: "test-manifest-bulk",
		Params:   map[string]string{"bytes": "1024", "rate": "25e6"},
		Seeds:    3,
		Shards:   2,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	sweep := &Manifest{
		Scenario: "test-manifest-bulk",
		Sweep: &ManifestSweep{
			Schedulers: []string{"lowest-rtt", "round-robin"},
			Vary:       []ManifestAxis{{Key: "bytes", Values: []string{"1024", "2048"}}},
		},
	}
	if err := sweep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCellID(t *testing.T) {
	if got := CellID(nil); got != "defaults" {
		t.Fatalf("CellID(nil) = %q", got)
	}
	got := CellID([]string{"policy=fullmesh", "loss=0.3"})
	if strings.ContainsAny(got, " /") || got == "" {
		t.Fatalf("CellID not filesystem-safe: %q", got)
	}
	if got != CellID([]string{"policy=fullmesh", "loss=0.3"}) {
		t.Fatal("CellID not deterministic")
	}
}

// Cell ids enumerate schedulers × controllers × vary, first axis slowest
// — the directory names a workspace sweep run will create.
func TestManifestCellIDs(t *testing.T) {
	m := &Manifest{
		Scenario: "test-manifest-bulk",
		Sweep: &ManifestSweep{
			Controllers: []string{"a", "b"},
			Vary:        []ManifestAxis{{Key: "bytes", Values: []string{"1", "2"}}},
		},
	}
	ids := m.CellIDs()
	want := []string{
		CellID([]string{"policy=a", "bytes=1"}),
		CellID([]string{"policy=a", "bytes=2"}),
		CellID([]string{"policy=b", "bytes=1"}),
		CellID([]string{"policy=b", "bytes=2"}),
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d cell ids, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, ids[i], want[i])
		}
	}
	if (&Manifest{Scenario: "test-manifest-bulk"}).CellIDs() != nil {
		t.Fatal("non-sweep manifest should have no cell ids")
	}
}

// Snapshots resolve defaults and render deterministically, so two runs
// of the same manifest store byte-identical manifest.json files.
func TestManifestSnapshot(t *testing.T) {
	m := &Manifest{Scenario: "test-manifest-bulk", Params: map[string]string{"bytes": "1024"}}
	a, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot not deterministic")
	}
	s := string(a)
	for _, want := range []string{`"seed": 1`, `"seeds": 1`, `"name": "test-manifest-bulk"`} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing resolved default %q:\n%s", want, s)
		}
	}
}

// BuildParams carries params + shards but never trace keys; TraceParams
// arms them separately with the runner-chosen file.
func TestManifestBuildAndTraceParams(t *testing.T) {
	m := &Manifest{
		Scenario: "test-manifest-bulk",
		Params:   map[string]string{"bytes": "1024"},
		Shards:   4,
		Trace:    true,
		TraceCap: 99,
	}
	p := m.BuildParams()
	if p.Has("trace") || p.Has("trace_cap") {
		t.Fatal("BuildParams must not arm tracing")
	}
	if got := p.Clone().Int("shards", 0); got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}
	m.TraceParams(p, "/tmp/t")
	if got := p.Clone().Str("trace", ""); got != "/tmp/t" {
		t.Fatalf("trace = %q", got)
	}
	if got := p.Clone().Int("trace_cap", 0); got != 99 {
		t.Fatalf("trace_cap = %d", got)
	}
	// Untraced manifests leave params untouched.
	p2 := (&Manifest{Scenario: "x"}).BuildParams()
	(&Manifest{Scenario: "x"}).TraceParams(p2, "/tmp/t")
	if p2.Has("trace") {
		t.Fatal("TraceParams armed tracing on an untraced manifest")
	}
}
