package scenario

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Topology builds the emulated network for one scenario run. The fabric
// hands out per-entity clocks — a bare *sim.Simulator keeps everything on
// one event loop, a sharded *sim.World spreads host groups across worker
// loops — and the seed is the run's simulation seed, for topologies whose
// shape depends on it (the ECMP hash, the scale aggregation router).
type Topology interface {
	Build(f sim.Fabric, seed int64) *Net
	Describe() string
}

// Endpoint is one client host of a built topology with its interface
// addresses in attachment order. The address list is captured at build
// time, so Addrs stays stable even while an interface is down.
type Endpoint struct {
	Host  *netem.Host
	Addrs []netip.Addr
}

// Net is the uniform view a built topology exposes to workloads, probes,
// and events: the server hosts, one or more client endpoints, and the
// named links that events (loss ramps, degradations) manipulate.
type Net struct {
	// Server and ServerAddr are the first (usually only) server; the
	// engine mirrors them with Servers/ServerAddrs, so topologies fill
	// whichever form is natural.
	Server     *netem.Host
	ServerAddr netip.Addr
	// Servers lists every server host (the multi-server scale topology);
	// Servers[0] == Server.
	Servers     []*netem.Host
	ServerAddrs []netip.Addr

	Clients []Endpoint
	// Links holds every named duplex link. By convention the forward
	// (client→server) direction is AB.
	Links map[string]*netem.Duplex
	// NAT is the stateful middlebox, when the topology has one (§4.1).
	NAT *netem.Middlebox
	// PathIndex reports which fabric path a subflow's 4-tuple maps to —
	// ground truth for load-balancing analyses (ECMP only, else nil).
	PathIndex func(srcPort, dstPort uint16) int
}

// normalize mirrors the single-server convenience fields and the Servers
// slice into each other, whichever the topology filled.
func (n *Net) normalize() *Net {
	if len(n.Servers) == 0 && n.Server != nil {
		n.Servers = []*netem.Host{n.Server}
		n.ServerAddrs = []netip.Addr{n.ServerAddr}
	}
	if n.Server == nil && len(n.Servers) > 0 {
		n.Server = n.Servers[0]
		n.ServerAddr = n.ServerAddrs[0]
	}
	return n
}

// Client returns the first (usually only) client endpoint.
func (n *Net) Client() Endpoint {
	return n.ClientAt(0)
}

// ClientAt returns the i-th client endpoint; an out-of-range index is a
// scenario bug.
func (n *Net) ClientAt(i int) Endpoint {
	if i < 0 || i >= len(n.Clients) {
		panic(fmt.Sprintf("scenario: topology has no client %d (have %d)", i, len(n.Clients)))
	}
	return n.Clients[i]
}

// ClientNamed returns the client endpoint whose host carries the given
// name; an unknown name is a scenario bug.
func (n *Net) ClientNamed(name string) Endpoint {
	for _, ep := range n.Clients {
		if ep.Host.Name() == name {
			return ep
		}
	}
	panic(fmt.Sprintf("scenario: topology has no client host %q", name))
}

// Link returns a named link; unknown names are a scenario bug.
func (n *Net) Link(name string) *netem.Duplex {
	l, ok := n.Links[name]
	if !ok {
		panic(fmt.Sprintf("scenario: topology has no link %q", name))
	}
	return l
}

// TwoPath is the multihomed-client topology of §4.2/§4.3: two independent
// client paths ("path0", "path1") joined at a router, a fat trunk
// ("trunk") to the server.
type TwoPath struct {
	P0, P1 netem.LinkConfig
}

// Build implements Topology.
func (t TwoPath) Build(f sim.Fabric, _ int64) *Net {
	tp := topo.NewTwoPath(f, t.P0, t.P1)
	return &Net{
		Server:     tp.Server,
		ServerAddr: tp.ServerAddr,
		Clients:    []Endpoint{{Host: tp.Client, Addrs: tp.ClientAddrs[:]}},
		Links: map[string]*netem.Duplex{
			"path0": tp.Path[0], "path1": tp.Path[1], "trunk": tp.Trunk,
		},
	}
}

// Describe implements Topology.
func (t TwoPath) Describe() string { return "two-path multihomed client (§4.2/§4.3)" }

// ECMP is the §4.4 fabric: N parallel paths between two routers that
// load-balance flows by hashing the 4-tuple. A zero HashSeed derives the
// hash from the run seed, standing in for the unpredictable per-router
// hashing of real networks.
type ECMP struct {
	Paths    []netem.LinkConfig
	HashSeed uint64
}

// Build implements Topology.
func (t ECMP) Build(f sim.Fabric, seed int64) *Net {
	hs := t.HashSeed
	if hs == 0 {
		hs = uint64(seed)
	}
	tp := topo.NewECMP(f, t.Paths, hs)
	links := make(map[string]*netem.Duplex, len(tp.Paths))
	for i, d := range tp.Paths {
		links[fmt.Sprintf("path%d", i)] = d
	}
	return &Net{
		Server:     tp.Server,
		ServerAddr: tp.ServerAddr,
		Clients:    []Endpoint{{Host: tp.Client, Addrs: []netip.Addr{tp.ClientAddr}}},
		Links:      links,
		PathIndex:  tp.PathIndexOf,
	}
}

// Describe implements Topology.
func (t ECMP) Describe() string {
	return fmt.Sprintf("%d-path ECMP fabric (§4.4)", len(t.Paths))
}

// Proc models per-packet host processing jitter: a fixed base cost plus
// exponential jitter with the given mean (the dominant term of the
// sub-millisecond delays in the §4.5 lab measurement).
type Proc struct {
	Base   time.Duration
	Jitter time.Duration
}

func (p Proc) model(c sim.Clock) func() time.Duration {
	rng := c.Rand()
	return func() time.Duration {
		return p.Base + time.Duration(rng.ExpFloat64()*float64(p.Jitter))
	}
}

// Direct is the §4.5 lab setup: two hosts on one duplex link ("wire"),
// with optional per-host processing-delay models.
type Direct struct {
	Link                   netem.LinkConfig
	ClientProc, ServerProc Proc
}

// Build implements Topology.
func (t Direct) Build(f sim.Fabric, _ int64) *Net {
	tp := topo.NewDirect(f, t.Link)
	// The jitter draws come from each host's own random stream, so they
	// are identical at any shard count.
	if t.ClientProc != (Proc{}) {
		tp.Client.SetProcDelay(t.ClientProc.model(tp.Client.Clock()))
	}
	if t.ServerProc != (Proc{}) {
		tp.Server.SetProcDelay(t.ServerProc.model(tp.Server.Clock()))
	}
	return &Net{
		Server:     tp.Server,
		ServerAddr: tp.ServerAddr,
		Clients:    []Endpoint{{Host: tp.Client, Addrs: []netip.Addr{tp.ClientAddr}}},
		Links:      map[string]*netem.Duplex{"wire": tp.Link},
	}
}

// Describe implements Topology.
func (t Direct) Describe() string { return "direct lab link (§4.5)" }

// NATPath is the §4.1 topology: a multihomed client whose two paths
// traverse a stateful middlebox with an idle timeout.
type NATPath struct {
	P0, P1 netem.LinkConfig
	Idle   time.Duration
	Expiry netem.ExpiryPolicy
}

// Build implements Topology.
func (t NATPath) Build(f sim.Fabric, _ int64) *Net {
	tp := topo.NewNATPath(f, t.P0, t.P1, t.Idle, t.Expiry)
	return &Net{
		Server:     tp.Server,
		ServerAddr: tp.ServerAddr,
		Clients:    []Endpoint{{Host: tp.Client, Addrs: tp.ClientAddrs[:]}},
		Links: map[string]*netem.Duplex{
			"path0": tp.Path[0], "path1": tp.Path[1], "trunk": tp.Trunk,
		},
		NAT: tp.NAT,
	}
}

// Describe implements Topology.
func (t NATPath) Describe() string { return "NAT-traversing two-path client (§4.1)" }

// Star is the scale topology: N multihomed client hosts, every interface
// on its own access link into one aggregation router, and per-server
// bottleneck links ("bottleneck", "bottleneck1", ...) to Servers server
// hosts. The aggregation router hashes with the run seed.
//
// Host groups split the star for sharded worlds: the aggregation router
// is group 0, server k group 1+k, and client i group Servers+1+i — so a
// 4-shard world interleaves clients round-robin over the shards while the
// access- and bottleneck-link delays bound the lookahead.
type Star struct {
	Clients    int
	Ifaces     int // interfaces (→ subflows via full-mesh) per client
	Servers    int // server hosts sharing the aggregation router (0 = 1)
	Access     netem.LinkConfig
	Bottleneck netem.LinkConfig
}

// Build implements Topology.
func (t Star) Build(f sim.Fabric, seed int64) *Net {
	nsrv := t.Servers
	if nsrv < 1 {
		nsrv = 1
	}
	agg := netem.NewRouter(f.HostClock(0, "agg"), "agg", uint64(seed))
	n := &Net{Links: make(map[string]*netem.Duplex)}
	for k := 0; k < nsrv; k++ {
		name, lname := "server", "bottleneck"
		if k > 0 {
			name = fmt.Sprintf("server%d", k)
			lname = fmt.Sprintf("bottleneck%d", k)
		}
		srv := netem.NewHost(f.HostClock(1+k, name), name)
		addr := netip.AddrFrom4([4]byte{10, 255, 0, byte(1 + k)})
		trunk := netem.NewDuplex(lname, agg, srv, t.Bottleneck)
		srv.AddIface("eth0", addr, trunk.BA)
		agg.AddRoute(addr, trunk.AB)
		n.Links[lname] = trunk
		n.Servers = append(n.Servers, srv)
		n.ServerAddrs = append(n.ServerAddrs, addr)
	}
	for i := 0; i < t.Clients; i++ {
		cname := fmt.Sprintf("c%d", i)
		h := netem.NewHost(f.HostClock(1+nsrv+i, cname), cname)
		ep := Endpoint{Host: h}
		for j := 0; j < t.Ifaces; j++ {
			addr := netip.AddrFrom4([4]byte{10, byte(1 + i/200), byte(1 + i%200), byte(1 + j)})
			d := netem.NewDuplex(fmt.Sprintf("acc%d.%d", i, j), h, agg, t.Access)
			h.AddIface(fmt.Sprintf("if%d", j), addr, d.AB)
			agg.AddRoute(addr, d.BA)
			ep.Addrs = append(ep.Addrs, addr)
		}
		n.Clients = append(n.Clients, ep)
	}
	return n
}

// Describe implements Topology.
func (t Star) Describe() string {
	return fmt.Sprintf("%d clients × %d interfaces behind one bottleneck", t.Clients, t.Ifaces)
}

// Custom wraps a hand-built topology as a Topology, for shapes the
// declarative Builder cannot express.
type Custom struct {
	Desc    string
	BuildFn func(f sim.Fabric, seed int64) *Net
}

// Build implements Topology.
func (t Custom) Build(f sim.Fabric, seed int64) *Net { return t.BuildFn(f, seed) }

// Describe implements Topology.
func (t Custom) Describe() string { return t.Desc }
