package scenario

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/stats"
)

var (
	bClient1 = netip.MustParseAddr("10.1.0.1")
	bClient2 = netip.MustParseAddr("10.2.0.1")
	bServer  = netip.MustParseAddr("10.99.0.1")
)

// builderTwoPathNAT declares, purely as data, the §4.1-style shape: a
// multihomed client whose two paths traverse a NAT middlebox before a
// trunk to the server.
func builderTwoPathNAT() Builder {
	link := netem.LinkConfig{RateBps: 20e6, Delay: 10 * time.Millisecond}
	trunk := netem.LinkConfig{RateBps: 1e9, Delay: 100 * time.Microsecond}
	return Builder{
		Desc: "two paths through a NAT",
		Hosts: []HostSpec{
			{Name: "client", Ifaces: []IfaceSpec{
				{Name: "if0", Addr: bClient1, Link: "p0"},
				{Name: "if1", Addr: bClient2, Link: "p1"},
			}},
			{Name: "server", Ifaces: []IfaceSpec{
				{Name: "eth0", Addr: bServer, Link: "trunk"},
			}},
		},
		Middleboxes: []MiddleboxSpec{
			{Name: "nat", Idle: 60 * time.Second, Expiry: netem.ExpiryRST},
		},
		Links: []LinkSpec{
			{Name: "p0", A: "client", B: "nat", Cfg: link},
			{Name: "p1", A: "client", B: "nat", Cfg: link},
			{Name: "trunk", A: "nat", B: "server", Cfg: trunk},
		},
		Routes: []RouteSpec{
			{Node: "nat", Dst: bClient1, Links: []string{"p0"}},
			{Node: "nat", Dst: bClient2, Links: []string{"p1"}},
			{Node: "nat", Dst: bServer, Links: []string{"trunk"}},
		},
		ClientHosts: []string{"client"},
		Server:      "server",
	}
}

func TestBuilderTopologyCarriesTraffic(t *testing.T) {
	wl := &Bulk{Bytes: 256 << 10}
	run := &RunSpec{
		Label:    "builder",
		Topology: builderTwoPathNAT(),
		Workload: wl,
		Policy:   "fullmesh",
		Settle:   time.Millisecond,
		Stop:     Stop{Horizon: 30 * time.Second, Poll: 50 * time.Millisecond, Until: wl.Done},
	}
	sp := &Spec{Name: "test-builder", Runs: []*RunSpec{run}}
	var rt *Run
	sp.Render = func(_ *stats.Result, runs []*Run) { rt = runs[0] }
	Execute(sp, 1)
	if !wl.Sink.Done {
		t.Fatal("bulk transfer through the built topology did not complete")
	}
	if rt.Net.NAT == nil {
		t.Fatal("Net.NAT not populated from the middlebox spec")
	}
	if got := len(rt.Net.Client().Addrs); got != 2 {
		t.Fatalf("client endpoint has %d addrs, want 2", got)
	}
	// The fullmesh policy must have brought up a subflow on each path.
	if got := len(rt.Conn.Subflows()); got < 2 {
		t.Fatalf("expected ≥2 subflows via fullmesh over the built topology, got %d", got)
	}
	// Named links are addressable for events.
	if rt.Net.Link("p0") == nil || rt.Net.Link("trunk") == nil {
		t.Fatal("named links missing")
	}
}

func TestBuilderLossRampStallsTransfer(t *testing.T) {
	wl := &Bulk{Bytes: 4 << 20}
	run := &RunSpec{
		Label:    "builder-ramp",
		Topology: builderTwoPathNAT(),
		Workload: wl,
		Policy:   "fullmesh",
		Settle:   time.Millisecond,
		// Ramp both paths to a blackout early on.
		Events: append(
			LossRamp("p0", 100*time.Millisecond, 100*time.Millisecond, 0.5, 1.0),
			LossRamp("p1", 100*time.Millisecond, 100*time.Millisecond, 0.5, 1.0)...),
		Stop: Stop{Horizon: 5 * time.Second, Poll: 50 * time.Millisecond, Until: wl.Done},
	}
	Execute(&Spec{Name: "test-builder-ramp", Runs: []*RunSpec{run}}, 1)
	if wl.Sink.Done {
		t.Fatal("4 MB transfer completed despite the loss ramp to blackout")
	}
}

func TestBuilderPanicsOnSpecBugs(t *testing.T) {
	mustPanic := func(name string, b Builder) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		Execute(&Spec{Name: "x", Runs: []*RunSpec{{
			Label: "x", Topology: b, Workload: &Bulk{Bytes: 1},
			Stop: Stop{Horizon: time.Millisecond},
		}}}, 1)
	}
	b := builderTwoPathNAT()
	b.Links[0].A = "nosuch"
	mustPanic("unknown link endpoint", b)

	b = builderTwoPathNAT()
	b.Hosts[0].Ifaces[0].Link = "trunk" // client is not an endpoint of trunk
	mustPanic("iface on unrelated link", b)

	b = builderTwoPathNAT()
	b.Server = "nat" // not a host
	mustPanic("server not a host", b)
}
