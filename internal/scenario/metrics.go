package scenario

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// MetricsSpec turns on runtime metrics for one run: the engine builds a
// shard-aware metrics.Registry, hands every stack live nil-safe handles
// bound to its host's shard slot, and the metrics probe harvests the
// simulator/pool/link counters at collect time. File, when non-empty, is
// where the run's metrics.json lands.
type MetricsSpec struct {
	File string
}

// EnableMetrics arms metrics on every run of a spec and appends the
// metrics probe that folds the registry snapshot into the report and
// writes the metrics.json file. Multi-run specs write one file per run,
// suffixed with the run's label (the same convention as EnableTrace);
// file "" collects and renders without writing a file. Build calls this
// for the `metrics=` parameter every registered scenario accepts.
func EnableMetrics(sp *Spec, file string) {
	multi := len(sp.Runs) > 1
	for _, rs := range sp.Runs {
		f := file
		title := "Runtime metrics"
		if multi && rs.Label != "" {
			if f != "" {
				f += "." + sanitizeLabel(rs.Label)
			}
			title += " — " + rs.Label
		}
		rs.Metrics = &MetricsSpec{File: f}
		rs.Probes = append(rs.Probes, metricsProbe(f, title))
	}
}

// poolBaseline snapshots the process-wide pool counters at run start, so
// the probe can report per-run deltas. The pools are global (sync.Pool
// and shared free lists), which is also why `metrics=` refuses to run
// under the concurrent multi-seed runner: parallel seeds would bleed
// into each other's deltas.
type poolBaseline struct {
	segGets, segPuts, segNews       uint64
	pktGets, pktPuts, pktNews       uint64
	chunkGets, chunkPuts, chunkNews uint64
	wireGets, wirePuts, wireNews    uint64
}

func capturePools() poolBaseline {
	var b poolBaseline
	s := seg.Shared.Stats()
	b.segGets, b.segPuts, b.segNews = s.Gets, s.Puts, s.News
	b.pktGets, b.pktPuts, b.pktNews = netem.PacketPoolStats()
	b.chunkGets, b.chunkPuts, b.chunkNews = tcp.ChunkPoolStats()
	w := nlmsg.Wire.Stats()
	b.wireGets, b.wirePuts, b.wireNews = w.Gets, w.Puts, w.News
	return b
}

// MetricsOn reports whether the run records metrics.
func (rt *Run) MetricsOn() bool { return rt.Registry != nil }

// TCPMetrics builds the subflow-level metric bundle for a stack running
// on clock c's shard. With metrics off it returns the zero bundle (nil
// handles record nothing), so callers wire it unconditionally.
func (rt *Run) TCPMetrics(c sim.Clock) tcp.Metrics {
	r := rt.Registry
	if r == nil {
		return tcp.Metrics{}
	}
	slot := sim.ShardIndex(c)
	return tcp.Metrics{
		Retrans:     r.Counter("tcp_retrans_segs", slot),
		FastRetrans: r.Counter("tcp_fast_retrans", slot),
		RTOTimeouts: r.Counter("tcp_rto_timeouts", slot),
	}
}

// MPTCPMetrics builds the connection-level metric bundle for clock c's
// shard (zero bundle with metrics off).
func (rt *Run) MPTCPMetrics(c sim.Clock) mptcp.Metrics {
	r := rt.Registry
	if r == nil {
		return mptcp.Metrics{}
	}
	slot := sim.ShardIndex(c)
	return mptcp.Metrics{
		SchedPicks:     r.HistogramLinear("mptcp_sched_picks", 8, slot),
		ReinjectBytes:  r.Counter("mptcp_reinject_bytes", slot),
		DupBytes:       r.Counter("mptcp_dup_bytes", slot),
		ReassemblyOOHW: r.Gauge("mptcp_reassembly_oo_hw", slot),
	}
}

// CtlMetrics builds the control-plane metric bundle for clock c's shard
// (zero bundle with metrics off).
func (rt *Run) CtlMetrics(c sim.Clock) core.CtlMetrics {
	r := rt.Registry
	if r == nil {
		return core.CtlMetrics{}
	}
	slot := sim.ShardIndex(c)
	return core.CtlMetrics{
		EventsSent:      r.Counter("ctl_events_sent", slot),
		EventsMasked:    r.Counter("ctl_events_masked", slot),
		EventsCoalesced: r.Counter("ctl_events_coalesced", slot),
		EventsDropped:   r.Counter("ctl_events_dropped", slot),
		Flushes:         r.Counter("ctl_flushes", slot),
		Commands:        r.Counter("ctl_commands", slot),
		QueueHW:         r.Gauge("ctl_queue_hw", slot),
	}
}

// metricsProbe is the Metrics probe kind: Collect harvests the runtime
// counters the simulation accumulated outside the registry (simulator
// windows/barriers, pool traffic, link drops), renders the sorted text
// snapshot into the report under title, and writes metrics.json.
func metricsProbe(file, title string) Probe {
	return Probe{
		Name: "metrics",
		Collect: func(rt *Run) {
			r := rt.Registry
			if r == nil {
				return
			}
			rt.harvestRuntime()
			rt.harvestPools()
			rt.harvestLinks()
			snap := r.Snapshot()
			rt.Result.Section(title)
			rt.Result.Printf("%s", snap.Text())
			if file != "" {
				if err := snap.WriteFile(file); err != nil {
					panic(err) // the runner reports this as the seed's failure
				}
			}
		},
	}
}

// harvestRuntime folds the sim.World runtime counters into the registry.
// Window carving, barrier counts and cross-shard traffic describe HOW
// the simulation was executed, not what the model did: they are stable
// for a fixed shard count but change with it, hence the layout tag.
// Barrier wait/busy spans are host-speed wall time.
func (rt *Run) harvestRuntime() {
	w, ok := rt.Sim.(*sim.World)
	if !ok {
		return
	}
	r := rt.Registry
	st := w.RuntimeStats()
	for i, v := range st.ShardEvents {
		r.Counter("sim_events", i).Add(v)
	}
	r.Counter("sim_globals", 0).Add(st.Globals)
	r.Counter("sim_windows_interior", 0, metrics.TagLayout).Add(st.WindowsInterior)
	r.Counter("sim_windows_boundary", 0, metrics.TagLayout).Add(st.WindowsBoundary)
	r.Counter("sim_windows_idle", 0, metrics.TagLayout).Add(st.WindowsIdle)
	r.Counter("sim_barriers", 0, metrics.TagLayout).Add(st.Barriers)
	for i, v := range st.CrossSends {
		r.Counter("sim_cross_sends", i, metrics.TagLayout).Add(v)
	}
	for i, v := range st.BarrierWaitNs {
		r.Counter("sim_barrier_wait_ns", i, metrics.TagWall).Add(v)
	}
	for i, v := range st.BusyNs {
		r.Counter("sim_window_busy_ns", i, metrics.TagWall).Add(v)
	}
	for i := range st.EventPoolGets {
		r.Counter("pool_simevent_gets", i, metrics.TagLayout).Add(st.EventPoolGets[i])
		r.Counter("pool_simevent_puts", i, metrics.TagLayout).Add(st.EventPoolPuts[i])
		r.Counter("pool_simevent_news", i, metrics.TagLayout).Add(st.EventPoolNews[i])
	}
}

// harvestPools folds the per-run deltas of the process-wide object pools
// into the registry. Gets/puts are deterministic protocol behaviour;
// news (pool misses that heap-allocated) depend on GC timing, so they
// carry the wall tag.
func (rt *Run) harvestPools() {
	r := rt.Registry
	now := capturePools()
	b := rt.poolBase
	r.Counter("pool_seg_gets", 0).Add(now.segGets - b.segGets)
	r.Counter("pool_seg_puts", 0).Add(now.segPuts - b.segPuts)
	r.Counter("pool_seg_news", 0, metrics.TagWall).Add(now.segNews - b.segNews)
	r.Counter("pool_packet_gets", 0).Add(now.pktGets - b.pktGets)
	r.Counter("pool_packet_puts", 0).Add(now.pktPuts - b.pktPuts)
	r.Counter("pool_packet_news", 0, metrics.TagWall).Add(now.pktNews - b.pktNews)
	r.Counter("pool_chunk_gets", 0).Add(now.chunkGets - b.chunkGets)
	r.Counter("pool_chunk_puts", 0).Add(now.chunkPuts - b.chunkPuts)
	r.Counter("pool_chunk_news", 0, metrics.TagWall).Add(now.chunkNews - b.chunkNews)
	r.Counter("pool_wire_gets", 0).Add(now.wireGets - b.wireGets)
	r.Counter("pool_wire_puts", 0).Add(now.wirePuts - b.wirePuts)
	r.Counter("pool_wire_news", 0, metrics.TagWall).Add(now.wireNews - b.wireNews)
}

// harvestLinks sums every link's drop counters by cause. Totals over
// both directions of every duplex are topology-level behaviour,
// identical at any shard count.
func (rt *Run) harvestLinks() {
	r := rt.Registry
	var rand, queue, down, cut uint64
	for _, d := range rt.Net.Links {
		for _, l := range []*netem.Link{d.AB, d.BA} {
			s := l.Stats
			rand += s.LostRand
			queue += s.DropQueue
			down += s.DropDown
			cut += s.DropCut
		}
	}
	r.Counter("netem_drop_rand", 0).Add(rand)
	r.Counter("netem_drop_queue", 0).Add(queue)
	r.Counter("netem_drop_down", 0).Add(down)
	r.Counter("netem_drop_cut", 0).Add(cut)
}
