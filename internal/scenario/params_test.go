package scenario

import (
	"reflect"
	"testing"
	"time"
)

func TestParamsTypedGetters(t *testing.T) {
	p, err := ParseSets([]string{
		"s=hello", "b=true", "i=42", "f=0.25", "d=150ms",
		"fl=0.1,0.2, 0.3", "sl=a, b,c", "empty=",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Str("s", "x"); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if !p.Bool("b", false) {
		t.Error("Bool(b) = false")
	}
	if !p.Bool("empty", false) {
		t.Error("Bool(empty) should count as true (bare flag)")
	}
	if got := p.Int("i", 0); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := p.Float("f", 0); got != 0.25 {
		t.Errorf("Float = %v", got)
	}
	if got := p.Duration("d", 0); got != 150*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := p.Floats("fl", nil); !reflect.DeepEqual(got, []float64{0.1, 0.2, 0.3}) {
		t.Errorf("Floats = %v", got)
	}
	if got := p.Strings("sl", nil); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Strings = %v", got)
	}
	if got := p.Int("missing", 7); got != 7 {
		t.Errorf("missing default = %d", got)
	}
	if err := p.Err(); err != nil {
		t.Errorf("unexpected parse error: %v", err)
	}
	if unused := p.Unused(); len(unused) != 0 {
		t.Errorf("unused = %v", unused)
	}
}

func TestParamsBadValueAndUnused(t *testing.T) {
	p := NewParams(map[string]string{"n": "notanint", "typo": "1"})
	if got := p.Int("n", 3); got != 3 {
		t.Errorf("bad value should fall back to default, got %d", got)
	}
	if p.Err() == nil {
		t.Error("expected a parse error")
	}
	if unused := p.Unused(); len(unused) != 1 || unused[0] != "typo" {
		t.Errorf("Unused = %v", unused)
	}
}

func TestParamsCloneIsolation(t *testing.T) {
	p := NewParams(map[string]string{"k": "v"})
	c := p.Clone()
	c.Set("k", "other")
	c.Str("k", "")
	if got := p.Str("k", ""); got != "v" {
		t.Errorf("clone mutated the original: %q", got)
	}
	var nilP *Params
	if nilP.Clone() == nil {
		t.Error("Clone of nil should return a fresh Params")
	}
}

func TestParseSetsBareKeysAndMalformed(t *testing.T) {
	// A bare key is flag-style shorthand: empty value, Bool-true.
	p, err := ParseSets([]string{"smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Bool("smoke", false) {
		t.Error("bare key should read as a true boolean")
	}
	if _, err := ParseSets([]string{"=v"}); err == nil {
		t.Error("expected error for empty key")
	}
}
