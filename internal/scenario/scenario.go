// Package scenario is the declarative experiment layer above smapp, topo,
// and app: a scenario is data — a topology, a workload, a policy, probes,
// and a stop condition — not 150 lines of bespoke wiring. The engine
// (Execute) turns a Spec into a stats.Result through a fixed sequence
// that mirrors how every paper experiment was hand-written, so specs stay
// byte-compatible with the reports the golden tests pin:
//
//	build topology → client stack → server endpoint → workload.Server →
//	settle → workload.Client → arm probes → schedule events → run to the
//	stop condition → collect probes → render
//
// Specs are registered by name (Register) and parameterised by string
// key=value Params, which is what makes `mpexp run <scenario>` and the
// Sweep combinator possible: every scenario is runnable, listable, and
// sweepable without scenario-specific CLI code.
package scenario

import (
	"net/netip"
	"time"

	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Spec is one named scenario: a report header, one or more simulation
// runs, and a Render hook that turns the collected samples into the
// report's sections. Single-figure scenarios have one run; CDF figures
// (one run per curve or trial) and sweep matrices have many.
type Spec struct {
	Name  string
	Title string // report header title ("" = no header)
	Desc  string // header description

	Runs []*RunSpec

	// Render appends the report sections after every run completed. It
	// sees the shared Result plus the per-run contexts (for workload
	// state, wall-clock timings, and controller introspection).
	Render func(res *stats.Result, runs []*Run)
}

// RunSpec describes one simulation run declaratively.
type RunSpec struct {
	// Label identifies the run in reports and sweep cells.
	Label string
	// SeedOffset is added to the scenario seed for this run, so repeated
	// trials within one spec draw independent randomness (Fig. 2c spaces
	// trials 1000 apart).
	SeedOffset int64

	Topology Topology
	Workload Workload

	// Sched is the registered packet scheduler ("" = lowest-rtt).
	Sched string
	// Policy is the registered subflow controller bound to the dialed
	// connection ("" = the nil policy / plain stack; KernelPolicy is
	// special-cased by the fan-out workload).
	Policy string
	// PolicyCfg parameterises the controller. Empty Addrs default to the
	// client host's interface addresses.
	PolicyCfg smapp.ControllerConfig
	// KernelPM, when non-nil, builds an in-kernel path manager replacing
	// the whole userspace control plane — the baselines the paper
	// compares against. Only the nil policy works on such a stack.
	KernelPM func() mptcp.PathManager
	// Stressed uses the CPU-stressed Netlink latency model of §4.5.
	Stressed bool

	// Shards is the number of worker event loops the run's simulation is
	// sharded across (0 or 1 = one loop). Results are bit-identical at
	// any shard count; topologies that fold onto a single shard reject
	// Shards > 1 at build time. Usually set by the `shards=` parameter.
	Shards int

	// Port is the server's listen port (0 = 80).
	Port uint16
	// Settle runs the simulation between Listen and the first dial, so
	// the listener exists before SYNs arrive (the paper runs use 1 ms).
	Settle time.Duration

	Events []Event
	Probes []Probe
	Stop   Stop

	// Trace, when non-nil, records the run's protocol/fabric events
	// into a per-run trace.Tracer (see EnableTrace; usually set by the
	// `trace=` parameter rather than by spec factories).
	Trace *TraceSpec
	// Metrics, when non-nil, records runtime metrics into a per-run
	// registry (see EnableMetrics; usually set by the `metrics=`
	// parameter rather than by spec factories).
	Metrics *MetricsSpec
}

// Event is a scheduled network change: a loss step, an interface flap, a
// middlebox reconfiguration.
type Event struct {
	At   time.Duration
	Name string
	Do   func(rt *Run)
}

// Stop declares when a run ends. Zero value: the workload drives the
// simulation itself (request/response loops). Horizon alone: run straight
// to the cutoff. With Until: poll every Poll until the condition holds or
// the horizon passes, then run Tail longer (capped at the horizon) so
// traces get their closing window.
type Stop struct {
	Horizon time.Duration
	Poll    time.Duration
	Until   func(rt *Run) bool
	Tail    time.Duration
}

func (st Stop) run(rt *Run) {
	if st.Horizon <= 0 {
		return
	}
	deadline := sim.Time(st.Horizon)
	if st.Until == nil {
		rt.Sim.RunUntil(deadline)
		return
	}
	poll := st.Poll
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for rt.Sim.Now() < deadline && !st.Until(rt) {
		rt.Sim.RunFor(poll)
	}
	rt.Sim.RunUntil(min(rt.Sim.Now().Add(st.Tail), deadline))
}

// Run is the live context of one executing RunSpec, handed to workloads,
// probes, events, stop conditions, and the final Render.
type Run struct {
	Spec *RunSpec
	Seed int64 // the run's simulator seed (scenario seed + offset)

	// Sim drives the simulation (a sim.World; one shard unless the spec
	// asks for more). Workload and probe callbacks that fire while the
	// simulation runs must not touch it — they read time and schedule
	// work through the host clocks (ClientClock/ServerClock) instead.
	Sim      sim.Runner
	Net      *Net
	Stack    *smapp.Stack // nil when the workload owns its stacks
	ServerEp *mptcp.Endpoint
	// ServerEps has one listening endpoint per Net.Servers entry;
	// ServerEps[0] == ServerEp.
	ServerEps []*mptcp.Endpoint
	Conn      *mptcp.Connection // last connection dialed through the stack
	Tracer    *trace.Tracer     // nil unless the run is traced
	// Registry holds the run's metrics (nil unless the run records them;
	// the bundle helpers in metrics.go treat nil as "record nothing").
	Registry *metrics.Registry
	poolBase poolBaseline // pool counters at run start (metrics runs only)

	Result *stats.Result
	Wall   time.Duration // wall-clock cost of the whole run
}

// ClientClock returns client i's host clock — the loop that owns the
// client's entities. Workload callbacks running inside the simulation
// read time and schedule follow-up work through it.
func (rt *Run) ClientClock(i int) sim.Clock { return rt.Net.Clients[i].Host.Clock() }

// ServerClock returns the (first) server's host clock.
func (rt *Run) ServerClock() sim.Clock { return rt.Net.Server.Clock() }

// Port returns the run's server port.
func (rt *Run) Port() uint16 {
	if rt.Spec.Port != 0 {
		return rt.Spec.Port
	}
	return 80
}

// Dial opens a policy-bound connection from laddr to the server and
// remembers it as rt.Conn. Dial errors panic: a scenario that cannot dial
// is broken, and the runner converts panics into per-seed errors.
func (rt *Run) Dial(laddr netip.Addr, cb mptcp.ConnCallbacks) *mptcp.Connection {
	conn, err := rt.Stack.Dial(laddr, rt.Net.ServerAddr, rt.Port(),
		rt.Spec.Policy, rt.Spec.PolicyCfg, cb)
	if err != nil {
		panic(err)
	}
	rt.Conn = conn
	return conn
}

// DialDefault dials from the first client's first address.
func (rt *Run) DialDefault(cb mptcp.ConnCallbacks) *mptcp.Connection {
	return rt.Dial(rt.Net.Client().Addrs[0], cb)
}

// Execute runs every RunSpec of a scenario at the given seed and returns
// the rendered result. It is deterministic: the same spec and seed always
// produce the same simulated bytes (wall-clock fields excepted).
func Execute(sp *Spec, seed int64) *stats.Result {
	res := stats.NewResult(sp.Name)
	if sp.Title != "" {
		res.Report = stats.Header(sp.Title, sp.Desc)
	}
	runs := make([]*Run, 0, len(sp.Runs))
	for _, rs := range sp.Runs {
		runs = append(runs, execOne(rs, seed, res))
	}
	if sp.Render != nil {
		sp.Render(res, runs)
	}
	return res
}

// execOne executes a single run following the fixed phase order the
// package doc describes.
func execOne(rs *RunSpec, baseSeed int64, res *stats.Result) *Run {
	start := time.Now()
	seed := baseSeed + rs.SeedOffset
	nsh := rs.Shards
	if nsh < 1 {
		nsh = 1
	}
	// Every run executes on a sim.World — one shard by default — so the
	// event order and per-entity random streams are identical at any
	// shard count: `shards=8` reproduces `shards=1` bit for bit.
	w := sim.NewWorld(seed, nsh)
	rt := &Run{Spec: rs, Seed: seed, Sim: w, Result: res}
	if rs.Trace != nil {
		rt.Tracer = trace.New(rs.Trace.Cap)
	}
	if rs.Metrics != nil {
		rt.Registry = metrics.New(nsh)
		// The live endpoint (mpexp -metrics-addr) scrapes whichever run
		// is current; metered runs are single-seed, so there is no race
		// for the slot.
		metrics.SetLive(rt.Registry)
		w.EnableBarrierTiming(true)
		rt.poolBase = capturePools()
	}
	rt.Net = rs.Topology.Build(w, seed).normalize()
	if err := w.Finalize(); err != nil {
		panic(err) // the runner reports this as the seed's failure
	}
	rt.wireTrace()

	if _, owns := rs.Workload.(StackOwner); !owns {
		cl := rt.Net.Client().Host
		csh := rt.TraceShard(cl.Name())
		cclk := cl.Clock()
		scfg := smapp.Config{
			MPTCP: mptcp.Config{
				Scheduler: rs.Sched,
				Trace:     csh,
				Metrics:   rt.MPTCPMetrics(cclk),
				TCP:       tcp.Config{Metrics: rt.TCPMetrics(cclk)},
			},
			Stressed:   rs.Stressed,
			Trace:      csh,
			CtlMetrics: rt.CtlMetrics(cclk),
		}
		if rs.KernelPM != nil {
			scfg.KernelPM = rs.KernelPM()
		}
		rt.Stack = smapp.New(cl, scfg)
	}
	for _, srv := range rt.Net.Servers {
		sclk := srv.Clock()
		ep := mptcp.NewEndpoint(srv,
			mptcp.Config{
				Scheduler: rs.Sched,
				Trace:     rt.TraceShard(srv.Name()),
				Metrics:   rt.MPTCPMetrics(sclk),
				TCP:       tcp.Config{Metrics: rt.TCPMetrics(sclk)},
			}, nil)
		rt.ServerEps = append(rt.ServerEps, ep)
	}
	rt.ServerEp = rt.ServerEps[0]
	rs.Workload.Server(rt)
	if rs.Settle > 0 {
		rt.Sim.RunFor(rs.Settle)
	}
	rs.Workload.Client(rt)
	for _, p := range rs.Probes {
		if p.Arm != nil {
			p.Arm(rt)
		}
	}
	for _, ev := range rs.Events {
		ev := ev
		// Interventions touch entities on arbitrary shards, so they run
		// as global events: all shards parked at the event's timestamp.
		rt.Sim.ScheduleGlobal(sim.Time(ev.At), ev.Name, func() { ev.Do(rt) })
	}
	rs.Stop.run(rt)
	for _, p := range rs.Probes {
		if p.Collect != nil {
			p.Collect(rt)
		}
	}
	rt.Wall = time.Since(start)
	return rt
}

// SetLossAt returns the "degrade" event the loss figures use: at t, set
// the forward (client→server) loss ratio of the named link — a netem
// qdisc on the degraded egress, as in the paper's Mininet setups.
func SetLossAt(at time.Duration, link string, loss float64) Event {
	return Event{At: at, Name: "degrade", Do: func(rt *Run) {
		rt.Net.Link(link).AB.SetLoss(loss)
	}}
}

// LossRamp returns one degrade event per step: the named link's forward
// loss walks through losses, starting at `start`, one step every `step`.
func LossRamp(link string, start, step time.Duration, losses ...float64) []Event {
	evs := make([]Event, 0, len(losses))
	for i, l := range losses {
		evs = append(evs, SetLossAt(start+time.Duration(i)*step, link, l))
	}
	return evs
}

// FlapIface takes the first client's addrIdx-th interface down at `at`
// and back up `dur` later — the §4.1 interface outage.
func FlapIface(at, dur time.Duration, addrIdx int) []Event {
	return FlapClientIface(at, dur, 0, addrIdx)
}

// FlapClientIface is FlapIface generalised to any client endpoint of the
// topology: client `client`'s addrIdx-th interface goes down at `at` and
// back up `dur` later. Fleet mobility schedules compile their WiFi↔LTE
// handovers down to this primitive, one flap per device.
func FlapClientIface(at, dur time.Duration, client, addrIdx int) []Event {
	set := func(up bool) func(rt *Run) {
		return func(rt *Run) {
			ep := rt.Net.ClientAt(client)
			ep.Host.SetIfaceUp(ep.Addrs[addrIdx], up)
		}
	}
	return []Event{
		{At: at, Name: "if.down", Do: set(false)},
		{At: at + dur, Name: "if.up", Do: set(true)},
	}
}

// FlapHostIface flaps the addrIdx-th interface of the named client host —
// for topologies addressed by host name (the declarative Builder) rather
// than client order.
func FlapHostIface(at, dur time.Duration, host string, addrIdx int) []Event {
	set := func(up bool) func(rt *Run) {
		return func(rt *Run) {
			ep := rt.Net.ClientNamed(host)
			ep.Host.SetIfaceUp(ep.Addrs[addrIdx], up)
		}
	}
	return []Event{
		{At: at, Name: "if.down", Do: set(false)},
		{At: at + dur, Name: "if.up", Do: set(true)},
	}
}
