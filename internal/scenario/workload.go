package scenario

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/app"
	"repro/internal/mptcp"
	"repro/internal/pm"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// Workload is the application pattern a scenario runs over Multipath TCP,
// abstracting the app package's Source/Sink/BlockStreamer/ReqResp pairs
// behind one interface. Server installs the receive side (a Listen on the
// run's server endpoint); Client dials through the run's policy-bound
// stack and drives the send side. A workload instance belongs to exactly
// one run — spec factories must build a fresh one per RunSpec.
type Workload interface {
	Describe() string
	Server(rt *Run)
	Client(rt *Run)
}

// StackOwner marks workloads that build their own client stacks (the
// fan-out workload, one stack per client host); the engine then skips the
// shared per-run client stack.
type StackOwner interface {
	OwnsStacks()
}

// Bulk transfers a fixed number of bytes from the client to the server as
// soon as the connection establishes (§4.2, §4.4).
type Bulk struct {
	Bytes         int
	CloseWhenDone bool
	// SinkExpect overrides the byte count the sink waits for (0 = Bytes).
	// Fig. 2a sets it effectively unbounded: the run observes a window of
	// an ongoing transfer rather than a completion.
	SinkExpect uint64

	Src  *app.Source
	Sink *app.Sink
}

// Describe implements Workload.
func (w *Bulk) Describe() string { return fmt.Sprintf("bulk transfer of %d bytes", w.Bytes) }

// Server implements Workload.
func (w *Bulk) Server(rt *Run) {
	expect := w.SinkExpect
	if expect == 0 {
		expect = uint64(w.Bytes)
	}
	w.Sink = app.NewSink(rt.ServerClock(), expect, nil)
	rt.ServerEp.Listen(rt.Port(), func(c *mptcp.Connection) { c.SetCallbacks(w.Sink.Callbacks()) })
}

// Client implements Workload.
func (w *Bulk) Client(rt *Run) {
	w.Src = app.NewSource(rt.ClientClock(0), w.Bytes, w.CloseWhenDone)
	rt.DialDefault(w.Src.Callbacks())
}

// Done reports whether the sink saw its expected bytes (a Stop.Until
// condition).
func (w *Bulk) Done(*Run) bool { return w.Sink != nil && w.Sink.Done }

// BlockStream is the §4.3 streaming workload: one BlockSize block per
// Period for Blocks blocks, with per-block delivery times measured at the
// receiver.
type BlockStream struct {
	Period    time.Duration
	BlockSize int
	Blocks    int

	Streamer *app.BlockStreamer
	Sink     *app.BlockSink
}

// Describe implements Workload.
func (w *BlockStream) Describe() string {
	return fmt.Sprintf("%d B block every %v, %d blocks", w.BlockSize, w.Period, w.Blocks)
}

// Server implements Workload.
func (w *BlockStream) Server(rt *Run) {
	w.Sink = app.NewBlockSink(rt.ServerClock(), w.BlockSize)
	rt.ServerEp.Listen(rt.Port(), func(c *mptcp.Connection) { c.SetCallbacks(w.Sink.Callbacks()) })
}

// Client implements Workload.
func (w *BlockStream) Client(rt *Run) {
	w.Streamer = app.NewBlockStreamer(rt.ClientClock(0), w.Period, w.BlockSize, w.Blocks)
	rt.DialDefault(w.Streamer.Callbacks())
}

// Delays returns the per-block delivery delays in seconds. Blocks never
// delivered within the horizon count as the horizon — they are the long
// tail the paper describes.
func (w *BlockStream) Delays(horizon time.Duration) *stats.Sample {
	delays := &stats.Sample{}
	for k, at := range w.Sink.CompletedAt {
		sent := w.Streamer.StartedAt.Add(time.Duration(k) * w.Period)
		delays.Add(time.Duration(at - sent).Seconds())
	}
	for k := len(w.Sink.CompletedAt); k < w.Blocks; k++ {
		sent := w.Streamer.StartedAt.Add(time.Duration(k) * w.Period)
		delays.Add((sim.Time(horizon) - sent).Seconds())
	}
	return delays
}

// OnOff is the §4.1 chat workload: one Size-byte message every Interval,
// Count times, over a single long-lived connection — long idle periods
// punctuated by bursts, the keepalive battle with NAT idle timeouts. The
// receiver records the arrival time of each message boundary.
type OnOff struct {
	Interval time.Duration
	Count    int
	Size     int

	Arrivals  []sim.Time
	SendTimes []sim.Time
}

// Describe implements Workload.
func (w *OnOff) Describe() string {
	return fmt.Sprintf("%d B message every %v, %d messages", w.Size, w.Interval, w.Count)
}

// Server implements Workload.
func (w *OnOff) Server(rt *Run) {
	msgBytes := uint64(w.Size)
	sclk := rt.ServerClock()
	rt.ServerEp.Listen(rt.Port(), func(c *mptcp.Connection) {
		c.SetCallbacks(mptcp.ConnCallbacks{
			OnData: func(_ *mptcp.Connection, total uint64) {
				for uint64(len(w.Arrivals)+1)*msgBytes <= total {
					w.Arrivals = append(w.Arrivals, sclk.Now())
				}
			},
		})
	})
}

// Client implements Workload.
func (w *OnOff) Client(rt *Run) {
	conn := rt.DialDefault(mptcp.ConnCallbacks{})
	cclk := rt.ClientClock(0)
	for i := 0; i < w.Count; i++ {
		at := sim.Time(w.Interval) * sim.Time(i+1)
		cclk.Schedule(at, "chat.msg", func() {
			w.SendTimes = append(w.SendTimes, cclk.Now())
			conn.Write(w.Size)
		})
	}
}

// ReqResp is the §4.5 workload: Requests consecutive HTTP/1.0-style
// exchanges, one fresh connection per request (ReqSize request bytes up,
// RespSize response bytes down, then close). It drives the simulation
// itself — request k+1 only starts once request k finished — so runs
// using it leave Stop zero. Per request it samples the delay between the
// SYN carrying MP_CAPABLE and the SYN carrying MP_JOIN.
type ReqResp struct {
	Requests int
	ReqSize  uint64
	RespSize int

	Srv *app.ReqRespServer
	// Delays holds the CAPA→JOIN delay of every request, in milliseconds.
	Delays *stats.Sample
}

// Describe implements Workload.
func (w *ReqResp) Describe() string {
	return fmt.Sprintf("%d consecutive %d KB GETs", w.Requests, w.RespSize>>10)
}

// Server implements Workload.
func (w *ReqResp) Server(rt *Run) {
	w.Srv = app.NewReqRespServer(w.ReqSize, w.RespSize)
	rt.ServerEp.Listen(rt.Port(), w.Srv.Accept)
}

// Client implements Workload.
func (w *ReqResp) Client(rt *Run) {
	w.Delays = &stats.Sample{}
	for i := 0; i < w.Requests; i++ {
		respDone := false
		conn := rt.DialDefault(mptcp.ConnCallbacks{
			OnEstablished: func(c *mptcp.Connection) { c.Write(int(w.ReqSize)) },
			OnData: func(c *mptcp.Connection, total uint64) {
				if total >= uint64(w.RespSize) {
					respDone = true
				}
			},
			OnPeerClose: func(c *mptcp.Connection) { c.Close() },
		})
		// Sample the CAPA→JOIN delay as soon as the join subflow exists
		// (the connection tears down right after the response).
		sampled := false
		for j := 0; j < 1000 && !sampled && !conn.Closed(); j++ {
			rt.Sim.RunFor(100 * time.Microsecond)
			if len(conn.Subflows()) >= 2 {
				if d, ok := CapaJoinDelay(conn); ok {
					w.Delays.Add(d.Seconds() * 1000) // ms
					sampled = true
				}
			}
		}
		// Run the request to completion (HTTP/1.0: one conn per GET).
		for !respDone && !conn.Closed() {
			rt.Sim.RunFor(10 * time.Millisecond)
		}
		conn.Abort()
		rt.Sim.RunFor(time.Millisecond)
	}
}

// CapaJoinDelay extracts the SYN(MP_CAPABLE)→SYN(MP_JOIN) delay from a
// connection's subflows.
func CapaJoinDelay(c *mptcp.Connection) (time.Duration, bool) {
	var initial, join *tcp.Subflow
	for _, sf := range c.Subflows() {
		if sf.Tuple() == c.InitialTuple() {
			initial = sf
		} else if join == nil || sf.SynSentAt() < join.SynSentAt() {
			join = sf
		}
	}
	if initial == nil || join == nil {
		return 0, false
	}
	return time.Duration(join.SynSentAt() - initial.SynSentAt()), true
}

// KernelPolicy names the in-kernel baseline cell of fan-out sweeps: a
// plain endpoint with the kernel full-mesh path manager and no userspace
// control plane at all (not a registered smapp controller).
const KernelPolicy = "kernel"

// FanOut is the N-connections stress workload: every client endpoint of
// the topology dials the server once and streams Bytes, with a 10 µs
// stagger so the SYN burst is concurrent but not pathologically
// phase-locked. It owns its stacks — one per client host — because the
// run's policy decides their shape: KernelPolicy builds plain kernel
// endpoints, any registered name builds a smapp stack per client with
// that controller bound.
type FanOut struct {
	Bytes int

	// CompletedAt[i] is when client i's transfer finished (-1 = never);
	// DialAt[i] is when it dialed.
	CompletedAt []sim.Time
	DialAt      []sim.Time
}

// OwnsStacks implements StackOwner.
func (w *FanOut) OwnsStacks() {}

// Describe implements Workload.
func (w *FanOut) Describe() string {
	return fmt.Sprintf("connection fan-out, %d KB per client", w.Bytes>>10)
}

// Server implements Workload: one sink per accepted connection, matched
// back to its client by the initial subflow's address. Every server
// endpoint listens (clients spread over them round-robin), and each sink
// lives on its own server's clock, so completions recorded on different
// shards never share state.
func (w *FanOut) Server(rt *Run) {
	n := len(rt.Net.Clients)
	w.CompletedAt = make([]sim.Time, n)
	for i := range w.CompletedAt {
		w.CompletedAt[i] = -1
	}
	clientIdx := make(map[netip.Addr]int, n)
	for i, cl := range rt.Net.Clients {
		clientIdx[cl.Addrs[0]] = i
	}
	for si, ep := range rt.ServerEps {
		sclk := rt.Net.Servers[si].Clock()
		ep.Listen(rt.Port(), func(c *mptcp.Connection) {
			idx, ok := clientIdx[c.InitialTuple().DstIP]
			if !ok {
				return
			}
			sink := app.NewSink(sclk, uint64(w.Bytes), nil)
			sink.OnComplete = func() { w.CompletedAt[idx] = sclk.Now() }
			c.SetCallbacks(sink.Callbacks())
		})
	}
}

// Client implements Workload. Each client dials through its own host
// clock (its shard), targeting the servers round-robin when the topology
// has several.
func (w *FanOut) Client(rt *Run) {
	w.DialAt = make([]sim.Time, len(rt.Net.Clients))
	for i := range rt.Net.Clients {
		cl := rt.Net.Clients[i]
		cclk := cl.Host.Clock()
		src := app.NewSource(cclk, w.Bytes, true)
		dst := rt.Net.ServerAddrs[i%len(rt.Net.ServerAddrs)]
		at := sim.Millisecond + sim.Time(i)*10*sim.Microsecond
		w.DialAt[i] = at
		// Per-client hosts record into their own trace shards (nil when
		// the run is untraced — SetTrace/Config treat nil as off).
		csh := rt.TraceShard(cl.Host.Name())
		// Metric handles bind to the client's shard slot (zero bundles
		// when the run records no metrics).
		mcfg := mptcp.Config{
			Scheduler: rt.Spec.Sched,
			Trace:     csh,
			Metrics:   rt.MPTCPMetrics(cclk),
			TCP:       tcp.Config{Metrics: rt.TCPMetrics(cclk)},
		}
		switch rt.Spec.Policy {
		case KernelPolicy:
			ep := mptcp.NewEndpoint(cl.Host, mcfg, pm.NewFullMesh())
			cclk.Schedule(at, "scale.dial", func() {
				if _, err := ep.Connect(cl.Addrs[0], dst, rt.Port(), src.Callbacks()); err != nil {
					panic(err)
				}
			})
		default:
			st := smapp.New(cl.Host, smapp.Config{
				MPTCP:      mcfg,
				Trace:      csh,
				CtlMetrics: rt.CtlMetrics(cclk),
			})
			pcfg := rt.Spec.PolicyCfg
			if len(pcfg.Addrs) == 0 {
				pcfg.Addrs = cl.Addrs
			}
			cclk.Schedule(at, "scale.dial", func() {
				if _, err := st.Dial(cl.Addrs[0], dst, rt.Port(), rt.Spec.Policy, pcfg, src.Callbacks()); err != nil {
					panic(err)
				}
			})
		}
	}
}

// Completed counts the clients whose transfer finished.
func (w *FanOut) Completed() int {
	n := 0
	for _, at := range w.CompletedAt {
		if at >= 0 {
			n++
		}
	}
	return n
}
