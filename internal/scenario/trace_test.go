package scenario

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/trace"
)

// traceTestSpec is a tiny two-path bulk spec for exercising the trace
// wiring without the experiments package.
func traceTestSpec(runs int) *Spec {
	sp := &Spec{Name: "trace-test"}
	for i := 0; i < runs; i++ {
		p := netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
		wl := &Bulk{Bytes: 64 << 10, CloseWhenDone: true}
		sp.Runs = append(sp.Runs, &RunSpec{
			Label:    []string{"alpha", "beta/gamma"}[i%2],
			Topology: TwoPath{P0: p, P1: p},
			Workload: wl,
			Settle:   time.Millisecond,
			Stop:     Stop{Horizon: 5 * time.Second, Poll: 50 * time.Millisecond, Until: wl.Done},
		})
	}
	return sp
}

func TestEnableTraceSingleRunWritesFile(t *testing.T) {
	file := filepath.Join(t.TempDir(), "run.trace")
	sp := traceTestSpec(1)
	EnableTrace(sp, file, 1<<10)
	res := Execute(sp, 1)

	d, err := trace.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) == 0 || len(d.Entities) == 0 {
		t.Fatal("trace file is empty")
	}
	if res.Scalars["trace_records"] != float64(len(d.Records)) {
		t.Fatalf("trace_records scalar %v does not match file records %d",
			res.Scalars["trace_records"], len(d.Records))
	}
	if _, ok := res.Samples["trace_rtt_ms"]; !ok {
		t.Fatal("trace probe did not pool the RTT sample")
	}
}

func TestEnableTraceMultiRunSuffixesFiles(t *testing.T) {
	base := filepath.Join(t.TempDir(), "multi.trace")
	sp := traceTestSpec(2)
	EnableTrace(sp, base, 1<<10)
	res := Execute(sp, 1)

	for _, suffix := range []string{".alpha", ".beta-gamma"} {
		if _, err := trace.ReadFile(base + suffix); err != nil {
			t.Fatalf("per-run trace file missing: %v", err)
		}
	}
	// Scalars are label-prefixed so the runs do not clobber each other.
	if _, ok := res.Scalars["alpha_trace_records"]; !ok {
		t.Fatalf("missing label-prefixed scalar; have %v", res.Scalars)
	}
	if _, ok := res.Scalars["beta-gamma_trace_records"]; !ok {
		t.Fatalf("missing sanitized label-prefixed scalar; have %v", res.Scalars)
	}
}

func TestUntracedRunHasNoTracer(t *testing.T) {
	sp := traceTestSpec(1)
	var seen *Run
	sp.Runs[0].Probes = append(sp.Runs[0].Probes, Probe{
		Name:    "grab",
		Collect: func(rt *Run) { seen = rt },
	})
	Execute(sp, 1)
	if seen == nil {
		t.Fatal("probe never ran")
	}
	if seen.Tracer != nil {
		t.Fatal("untraced run built a tracer")
	}
	if seen.TraceShard("anything") != nil {
		t.Fatal("TraceShard must be nil for untraced runs")
	}
}

// TestSweepTracePerCell pins the clobbering guards: a traced sweep
// suffixes the file per cell, and a traced multi-seed sweep is rejected
// up front (concurrent seeds would race on one file).
func TestSweepTracePerCell(t *testing.T) {
	Register("trace-sweep-test", "test scenario", func(p *Params) (*Spec, error) {
		p.Str("knob", "a") // consume the axis key
		return traceTestSpec(1), nil
	})
	base := filepath.Join(t.TempDir(), "sweep.trace")
	p := NewParams(map[string]string{"trace": base})
	sr, err := Sweep(SweepConfig{
		Scenario: "trace-sweep-test",
		Base:     p,
		Axes:     []Axis{{Key: "knob", Values: []string{"a", "b"}}},
		Seeds:    1,
		BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sr.Cells))
	}
	for _, suffix := range []string{".knob-a", ".knob-b"} {
		if _, err := trace.ReadFile(base + suffix); err != nil {
			t.Fatalf("per-cell trace file missing: %v", err)
		}
	}
	if _, err := Sweep(SweepConfig{
		Scenario: "trace-sweep-test",
		Base:     p,
		Axes:     []Axis{{Key: "knob", Values: []string{"a"}}},
		Seeds:    4,
		BaseSeed: 1,
	}); err == nil {
		t.Fatal("traced multi-seed sweep must be rejected")
	}
}

func TestParamsHas(t *testing.T) {
	p := NewParams(map[string]string{"trace": ""})
	if !p.Has("trace") {
		t.Fatal("Has must see the bare key")
	}
	if p.Has("other") {
		t.Fatal("Has invented a key")
	}
	if unused := p.Unused(); len(unused) != 0 {
		t.Fatalf("Has must mark the key consumed; unused = %v", unused)
	}
}
