package topo

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/seg"
	"repro/internal/sim"
)

// echo is a node recording what reached it.
type echo struct {
	name string
	got  []*netem.Packet
}

func (e *echo) Input(p *netem.Packet) { e.got = append(e.got, p) }
func (e *echo) Name() string          { return e.name }

func pkt(src, dst seg.FourTuple) *netem.Packet {
	return netem.NewPacket(&seg.Segment{Tuple: src, Flags: seg.ACK, PayloadLen: 100})
}

func TestTwoPathConnectivity(t *testing.T) {
	s := sim.New(1)
	cfg := netem.LinkConfig{RateBps: 10e6, Delay: 5 * time.Millisecond}
	n := NewTwoPath(s, cfg, cfg)
	var clientGot, serverGot int
	n.Client.SetHandler(func(*netem.Packet) { clientGot++ })
	n.Server.SetHandler(func(*netem.Packet) { serverGot++ })

	// Client → server from both interfaces.
	for _, src := range n.ClientAddrs {
		n.Client.Send(netem.NewPacket(&seg.Segment{
			Tuple: seg.FourTuple{SrcIP: src, DstIP: n.ServerAddr, SrcPort: 1, DstPort: 2},
			Flags: seg.ACK, PayloadLen: 10,
		}))
	}
	// Server → client, both destinations.
	for _, dst := range n.ClientAddrs {
		n.Server.Send(netem.NewPacket(&seg.Segment{
			Tuple: seg.FourTuple{SrcIP: n.ServerAddr, DstIP: dst, SrcPort: 2, DstPort: 1},
			Flags: seg.ACK, PayloadLen: 10,
		}))
	}
	s.Run()
	if serverGot != 2 || clientGot != 2 {
		t.Fatalf("connectivity: server=%d client=%d", serverGot, clientGot)
	}
	// Return traffic to each client address used its own path.
	if n.Path[0].BA.Stats.Sent != 1 || n.Path[1].BA.Stats.Sent != 1 {
		t.Fatalf("return routing: path0=%d path1=%d",
			n.Path[0].BA.Stats.Sent, n.Path[1].BA.Stats.Sent)
	}
}

func TestECMPSymmetryAndCoverage(t *testing.T) {
	s := sim.New(2)
	var cfgs []netem.LinkConfig
	for i := 0; i < 4; i++ {
		cfgs = append(cfgs, netem.LinkConfig{RateBps: 8e6, Delay: 10 * time.Millisecond})
	}
	n := NewECMP(s, cfgs, 9)
	var serverGot, clientGot int
	n.Client.SetHandler(func(*netem.Packet) { clientGot++ })
	n.Server.SetHandler(func(*netem.Packet) { serverGot++ })

	// Many flows: forward and return packets of the same flow must use
	// the same physical path, and all four paths must see traffic.
	for port := uint16(10000); port < 10200; port++ {
		fwd := seg.FourTuple{SrcIP: n.ClientAddr, DstIP: n.ServerAddr, SrcPort: port, DstPort: 80}
		// Spaced out so bursts do not overflow the access-link queue.
		s.Schedule(sim.Time(port-10000)*sim.Millisecond, "inject", func() {
			n.Client.Send(netem.NewPacket(&seg.Segment{Tuple: fwd, Flags: seg.ACK, PayloadLen: 10}))
			n.Server.Send(netem.NewPacket(&seg.Segment{Tuple: fwd.Reverse(), Flags: seg.ACK, PayloadLen: 10}))
		})
	}
	s.Run()
	if serverGot != 200 || clientGot != 200 {
		t.Fatalf("connectivity: server=%d client=%d", serverGot, clientGot)
	}
	for i, d := range n.Paths {
		if d.AB.Stats.Sent != d.BA.Stats.Sent {
			t.Fatalf("path %d asymmetric: fwd=%d rev=%d", i, d.AB.Stats.Sent, d.BA.Stats.Sent)
		}
		if d.AB.Stats.Sent == 0 {
			t.Fatalf("path %d unused by 200 flows", i)
		}
	}
	// PathIndexOf agrees with itself and spans all paths.
	seen := map[int]bool{}
	for port := uint16(10000); port < 10200; port++ {
		idx := n.PathIndexOf(port, 80)
		if idx != n.PathIndexOf(port, 80) {
			t.Fatal("PathIndexOf unstable")
		}
		seen[idx] = true
	}
	if len(seen) != 4 {
		t.Fatalf("PathIndexOf covered %d paths", len(seen))
	}
}

func TestDirectLatency(t *testing.T) {
	s := sim.New(3)
	n := NewDirect(s, netem.LinkConfig{RateBps: 1e9, Delay: 20 * time.Microsecond})
	var at sim.Time
	n.Server.SetHandler(func(*netem.Packet) { at = s.Now() })
	n.Client.Send(netem.NewPacket(&seg.Segment{
		Tuple: seg.FourTuple{SrcIP: n.ClientAddr, DstIP: n.ServerAddr, SrcPort: 1, DstPort: 2},
		Flags: seg.ACK,
	}))
	s.Run()
	// 60-byte frame at 1 Gbps serialises in 0.48 µs + 20 µs propagation.
	if at < 20*sim.Microsecond || at > 22*sim.Microsecond {
		t.Fatalf("delivery at %v", at)
	}
}

func TestNATPathEnforcesTimeout(t *testing.T) {
	s := sim.New(4)
	cfg := netem.LinkConfig{RateBps: 10e6, Delay: 5 * time.Millisecond}
	n := NewNATPath(s, cfg, cfg, 100*time.Second, netem.ExpiryDrop)
	got := 0
	n.Server.SetHandler(func(*netem.Packet) { got++ })
	ft := seg.FourTuple{SrcIP: n.ClientAddrs[0], DstIP: n.ServerAddr, SrcPort: 5, DstPort: 80}
	n.Client.Send(netem.NewPacket(&seg.Segment{Tuple: ft, Flags: seg.SYN}))
	s.Run()
	if got != 1 {
		t.Fatalf("SYN not forwarded: %d", got)
	}
	s.RunFor(200 * time.Second) // silence beyond the timeout
	n.Client.Send(netem.NewPacket(&seg.Segment{Tuple: ft, Flags: seg.ACK, PayloadLen: 10}))
	s.Run()
	if got != 1 {
		t.Fatal("expired NAT state passed traffic")
	}
	if n.NAT.Stats.Expired != 1 {
		t.Fatalf("expiries = %d", n.NAT.Stats.Expired)
	}
}
