// Package topo builds the emulated topologies of the paper's Mininet
// experiments: the two-path multihomed-client setup of §4.2/§4.3, the
// four-path ECMP fabric of §4.4, the direct 1 Gbps lab link of §4.5
// (Fig. 3), and the NAT-traversing long-lived-connection path of §4.1.
package topo

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netem"
	"repro/internal/seg"
	"repro/internal/sim"
)

// Addresses used across topologies.
var (
	ClientAddr1 = netip.MustParseAddr("10.1.0.1") // e.g. WiFi
	ClientAddr2 = netip.MustParseAddr("10.2.0.1") // e.g. cellular
	ServerAddr  = netip.MustParseAddr("10.99.0.1")
)

// bareSim reports the fabric as a *sim.Simulator when it is one, so the
// topology structs can keep their convenience Sim field for direct
// single-loop construction (tests, examples). Under a sharded sim.World
// the field is nil and callers drive the world instead.
func bareSim(f sim.Fabric) *sim.Simulator {
	s, _ := f.(*sim.Simulator)
	return s
}

// TwoPath is a multihomed client reaching a server over two independent
// paths (the smartphone WiFi+cellular scenario):
//
//	client if1 ── path[0] ──┐
//	                        ├── router ── trunk ── server
//	client if2 ── path[1] ──┘
type TwoPath struct {
	Sim    *sim.Simulator
	Client *netem.Host
	Server *netem.Host
	Router *netem.Router
	Path   [2]*netem.Duplex // client ↔ router, one per interface
	Trunk  *netem.Duplex    // router ↔ server

	ClientAddrs [2]netip.Addr
	ServerAddr  netip.Addr
}

// NewTwoPath builds the two-path topology. p0 and p1 configure the two
// client paths; the trunk is provisioned fat (1 Gbps, 0.1 ms) so the paths
// are the bottleneck, like the Mininet setups in the paper.
//
// The client lives in host group 1 and the router/server side in group 0,
// so a sharded world splits the topology at the access paths (whose
// propagation delays bound the lookahead). Passing a bare *sim.Simulator
// keeps everything on one loop, as before.
func NewTwoPath(f sim.Fabric, p0, p1 netem.LinkConfig) *TwoPath {
	t := &TwoPath{
		Sim:         bareSim(f),
		Client:      netem.NewHost(f.HostClock(1, "client"), "client"),
		Server:      netem.NewHost(f.HostClock(0, "server"), "server"),
		ClientAddrs: [2]netip.Addr{ClientAddr1, ClientAddr2},
		ServerAddr:  ServerAddr,
	}
	t.Router = netem.NewRouter(f.HostClock(0, "router"), "router", 1)
	t.Path[0] = netem.NewDuplex("path0", t.Client, t.Router, p0)
	t.Path[1] = netem.NewDuplex("path1", t.Client, t.Router, p1)
	t.Trunk = netem.NewDuplex("trunk", t.Router, t.Server, netem.LinkConfig{
		RateBps: 1e9, Delay: 100 * time.Microsecond,
	})
	t.Client.AddIface("if0", ClientAddr1, t.Path[0].AB)
	t.Client.AddIface("if1", ClientAddr2, t.Path[1].AB)
	t.Server.AddIface("eth0", ServerAddr, t.Trunk.BA)
	t.Router.AddRoute(ClientAddr1, t.Path[0].BA)
	t.Router.AddRoute(ClientAddr2, t.Path[1].BA)
	t.Router.AddRoute(ServerAddr, t.Trunk.AB)
	return t
}

// ECMP is the §4.4 fabric: single-homed client and server attached to two
// routers that load-balance flows over N parallel paths by hashing the
// 4-tuple:
//
//	client ── access ── R1 ══ paths[0..n-1] ══ R2 ── access ── server
type ECMP struct {
	Sim    *sim.Simulator
	Client *netem.Host
	Server *netem.Host
	R1, R2 *netem.Router
	Paths  []*netem.Duplex

	ClientAddr netip.Addr
	ServerAddr netip.Addr

	hashSeed uint64
}

// NewECMP builds the fabric with the given per-path configurations (the
// paper uses four paths of 8 Mbps with 10/20/30/40 ms delay). hashSeed
// varies the ECMP hash function between trials, standing in for the
// unpredictable per-router hashing of real networks.
func NewECMP(f sim.Fabric, paths []netem.LinkConfig, hashSeed uint64) *ECMP {
	t := &ECMP{
		Sim:        bareSim(f),
		Client:     netem.NewHost(f.HostClock(1, "client"), "client"),
		Server:     netem.NewHost(f.HostClock(0, "server"), "server"),
		ClientAddr: ClientAddr1,
		ServerAddr: ServerAddr,
		hashSeed:   hashSeed,
	}
	// Both routers share the hash seed; with the canonicalised flow hash
	// this yields symmetric forward/return paths per subflow.
	t.R1 = netem.NewRouter(f.HostClock(0, "r1"), "r1", hashSeed)
	t.R2 = netem.NewRouter(f.HostClock(0, "r2"), "r2", hashSeed)
	access := netem.LinkConfig{RateBps: 1e9, Delay: 100 * time.Microsecond}
	accC := netem.NewDuplex("accessC", t.Client, t.R1, access)
	accS := netem.NewDuplex("accessS", t.R2, t.Server, access)
	t.Client.AddIface("eth0", t.ClientAddr, accC.AB)
	t.Server.AddIface("eth0", t.ServerAddr, accS.BA)

	var fwd, rev []*netem.Link
	for i, cfg := range paths {
		d := netem.NewDuplex(fmt.Sprintf("path%d", i), t.R1, t.R2, cfg)
		t.Paths = append(t.Paths, d)
		fwd = append(fwd, d.AB)
		rev = append(rev, d.BA)
	}
	t.R1.AddRoute(t.ServerAddr, fwd...)
	t.R1.AddRoute(t.ClientAddr, accC.BA)
	t.R2.AddRoute(t.ClientAddr, rev...)
	t.R2.AddRoute(t.ServerAddr, accS.AB)
	return t
}

// PathIndexOf reports which ECMP path a subflow's 4-tuple maps to (ground
// truth for the Fig. 2c analysis).
func (t *ECMP) PathIndexOf(srcPort, dstPort uint16) int {
	ft := seg.FourTuple{SrcIP: t.ClientAddr, DstIP: t.ServerAddr, SrcPort: srcPort, DstPort: dstPort}
	return int(netem.FlowHash(ft, t.hashSeed) % uint64(len(t.Paths)))
}

// Direct is the §4.5 lab setup: two hosts on one duplex link.
type Direct struct {
	Sim    *sim.Simulator
	Client *netem.Host
	Server *netem.Host
	Link   *netem.Duplex

	ClientAddr netip.Addr
	ServerAddr netip.Addr
}

// NewDirect connects two hosts back to back (client in group 0, server in
// group 1 so even this minimal topology can split across two shards when
// the wire has a propagation delay).
func NewDirect(f sim.Fabric, cfg netem.LinkConfig) *Direct {
	t := &Direct{
		Sim:        bareSim(f),
		Client:     netem.NewHost(f.HostClock(0, "client"), "client"),
		Server:     netem.NewHost(f.HostClock(1, "server"), "server"),
		ClientAddr: ClientAddr1,
		ServerAddr: ServerAddr,
	}
	t.Link = netem.NewDuplex("wire", t.Client, t.Server, cfg)
	t.Client.AddIface("eth0", t.ClientAddr, t.Link.AB)
	t.Server.AddIface("eth0", t.ServerAddr, t.Link.BA)
	return t
}

// NATPath is the §4.1 scenario: a multihomed client whose paths traverse a
// stateful middlebox with an idle timeout before reaching the server.
//
//	client if0 ── path[0] ──┐
//	                        ├── NAT ── trunk ── server
//	client if1 ── path[1] ──┘
type NATPath struct {
	Sim    *sim.Simulator
	Client *netem.Host
	Server *netem.Host
	NAT    *netem.Middlebox
	Path   [2]*netem.Duplex
	Trunk  *netem.Duplex

	ClientAddrs [2]netip.Addr
	ServerAddr  netip.Addr
}

// NewNATPath builds the NAT topology with the given idle timeout and expiry
// policy.
func NewNATPath(f sim.Fabric, p0, p1 netem.LinkConfig, idle time.Duration, policy netem.ExpiryPolicy) *NATPath {
	t := &NATPath{
		Sim:         bareSim(f),
		Client:      netem.NewHost(f.HostClock(1, "client"), "client"),
		Server:      netem.NewHost(f.HostClock(0, "server"), "server"),
		ClientAddrs: [2]netip.Addr{ClientAddr1, ClientAddr2},
		ServerAddr:  ServerAddr,
	}
	t.NAT = netem.NewMiddlebox(f.HostClock(0, "nat"), "nat", idle, policy)
	t.Path[0] = netem.NewDuplex("path0", t.Client, t.NAT, p0)
	t.Path[1] = netem.NewDuplex("path1", t.Client, t.NAT, p1)
	t.Trunk = netem.NewDuplex("trunk", t.NAT, t.Server, netem.LinkConfig{
		RateBps: 1e9, Delay: 100 * time.Microsecond,
	})
	t.Client.AddIface("if0", ClientAddr1, t.Path[0].AB)
	t.Client.AddIface("if1", ClientAddr2, t.Path[1].AB)
	t.Server.AddIface("eth0", ServerAddr, t.Trunk.BA)
	t.NAT.AddRoute(ClientAddr1, t.Path[0].BA)
	t.NAT.AddRoute(ClientAddr2, t.Path[1].BA)
	t.NAT.AddRoute(ServerAddr, t.Trunk.AB)
	return t
}
