// Package app provides the simulated applications the paper's experiments
// run over Multipath TCP: bulk file transfers (§4.4), the fixed-rate block
// streamer (§4.3), and an HTTP/1.0-like request/response server (§4.5).
// Applications interact with connections purely through the public
// mptcp.ConnCallbacks API plus Write/Close — exactly the socket-level view
// a real application has.
package app

import (
	"time"

	"repro/internal/mptcp"
	"repro/internal/sim"
)

// Source writes a fixed number of bytes as soon as the connection
// establishes, then (optionally) closes its end.
type Source struct {
	Size          int
	CloseWhenDone bool
	StartedAt     sim.Time
	clock         sim.Clock
}

// NewSource builds a bulk sender.
func NewSource(clock sim.Clock, size int, closeWhenDone bool) *Source {
	return &Source{Size: size, CloseWhenDone: closeWhenDone, clock: clock}
}

// Callbacks wires the source into a connection.
func (s *Source) Callbacks() mptcp.ConnCallbacks {
	return mptcp.ConnCallbacks{
		OnEstablished: func(c *mptcp.Connection) {
			s.StartedAt = s.clock.Now()
			c.Write(s.Size)
			if s.CloseWhenDone {
				c.Close()
			}
		},
	}
}

// Sink counts received bytes and records when an expected total arrived.
type Sink struct {
	Expected    uint64
	Received    uint64
	CompletedAt sim.Time
	Done        bool
	OnComplete  func()
	clock       sim.Clock
}

// NewSink builds a receiver expecting the given byte count.
func NewSink(clock sim.Clock, expected uint64, onComplete func()) *Sink {
	return &Sink{Expected: expected, OnComplete: onComplete, clock: clock}
}

// Callbacks wires the sink into a connection (typically installed in the
// listener's accept function).
func (s *Sink) Callbacks() mptcp.ConnCallbacks {
	return mptcp.ConnCallbacks{
		OnData: func(c *mptcp.Connection, total uint64) {
			s.Received = total
			if !s.Done && total >= s.Expected {
				s.Done = true
				s.CompletedAt = s.clock.Now()
				if s.OnComplete != nil {
					s.OnComplete()
				}
			}
		},
		OnPeerClose: func(c *mptcp.Connection) { c.Close() },
	}
}

// BlockStreamer is the §4.3 application: it writes one BlockSize block per
// Period, starting at connection establishment, for NumBlocks blocks.
type BlockStreamer struct {
	Period    time.Duration
	BlockSize int
	NumBlocks int
	StartedAt sim.Time

	clock  sim.Clock
	sent   int
	ticker *sim.Ticker
}

// NewBlockStreamer builds the paper's streaming app (64 KB per second).
func NewBlockStreamer(clock sim.Clock, period time.Duration, blockSize, numBlocks int) *BlockStreamer {
	return &BlockStreamer{Period: period, BlockSize: blockSize, NumBlocks: numBlocks, clock: clock}
}

// Callbacks wires the streamer into a connection.
func (b *BlockStreamer) Callbacks() mptcp.ConnCallbacks {
	return mptcp.ConnCallbacks{
		OnEstablished: func(c *mptcp.Connection) {
			b.StartedAt = b.clock.Now()
			// First block goes out immediately; the rest on the ticker.
			c.Write(b.BlockSize)
			b.sent = 1
			if b.NumBlocks <= 1 {
				return
			}
			b.ticker = sim.NewTicker(b.clock, b.Period, "app.block", func() {
				if b.sent >= b.NumBlocks || c.Closed() {
					b.ticker.Stop()
					return
				}
				c.Write(b.BlockSize)
				b.sent++
			})
		},
	}
}

// Sent reports how many blocks have been written so far.
func (b *BlockStreamer) Sent() int { return b.sent }

// BlockSink measures per-block delivery times at the receiver: block k
// (0-based) is complete when BlockSize*(k+1) contiguous bytes are in.
type BlockSink struct {
	BlockSize   int
	CompletedAt []sim.Time
	clock       sim.Clock
}

// NewBlockSink builds the receiver-side block clock.
func NewBlockSink(clock sim.Clock, blockSize int) *BlockSink {
	return &BlockSink{BlockSize: blockSize, clock: clock}
}

// Callbacks wires the sink into a connection.
func (b *BlockSink) Callbacks() mptcp.ConnCallbacks {
	return mptcp.ConnCallbacks{
		OnData: func(c *mptcp.Connection, total uint64) {
			for uint64(len(b.CompletedAt)+1)*uint64(b.BlockSize) <= total {
				b.CompletedAt = append(b.CompletedAt, b.clock.Now())
			}
		},
	}
}

// ReqRespServer is the §4.5 server: for each accepted connection it waits
// for ReqSize request bytes, writes RespSize response bytes, and closes —
// an HTTP/1.0-like exchange (lighttpd serving a 512 KB file in the paper).
type ReqRespServer struct {
	ReqSize  uint64
	RespSize int
	Served   int
}

// NewReqRespServer builds the server.
func NewReqRespServer(reqSize uint64, respSize int) *ReqRespServer {
	return &ReqRespServer{ReqSize: reqSize, RespSize: respSize}
}

// Accept is the listener callback.
func (s *ReqRespServer) Accept(c *mptcp.Connection) {
	responded := false
	c.SetCallbacks(mptcp.ConnCallbacks{
		OnData: func(c *mptcp.Connection, total uint64) {
			if !responded && total >= s.ReqSize {
				responded = true
				s.Served++
				c.Write(s.RespSize)
				c.Close()
			}
		},
		OnPeerClose: func(c *mptcp.Connection) {
			if !responded {
				c.Close()
			}
		},
	})
}
