package app

import (
	"testing"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
)

func rig(t *testing.T, seed int64) (*topo.TwoPath, *mptcp.Endpoint, *mptcp.Endpoint) {
	t.Helper()
	cfg := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	n := topo.NewTwoPath(sim.New(seed), cfg, cfg)
	cep := mptcp.NewEndpoint(n.Client, mptcp.Config{}, nil)
	sep := mptcp.NewEndpoint(n.Server, mptcp.Config{}, nil)
	return n, cep, sep
}

func TestSourceSink(t *testing.T) {
	n, cep, sep := rig(t, 1)
	done := false
	sink := NewSink(n.Sim, 1<<20, func() { done = true })
	sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := NewSource(n.Sim, 1<<20, true)
	if _, err := cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, src.Callbacks()); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if !done || !sink.Done {
		t.Fatal("transfer incomplete")
	}
	if sink.Received != 1<<20 {
		t.Fatalf("received %d", sink.Received)
	}
	if sink.CompletedAt <= src.StartedAt {
		t.Fatal("completion before start")
	}
	// 1 MiB over 50 Mbps ≈ 0.17s + RTTs; sanity bound.
	if sink.CompletedAt.Seconds() > 2 {
		t.Fatalf("transfer too slow: %v", sink.CompletedAt)
	}
}

func TestBlockStreamerCadence(t *testing.T) {
	n, cep, sep := rig(t, 2)
	bsink := NewBlockSink(n.Sim, 64<<10)
	sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(bsink.Callbacks()) })
	streamer := NewBlockStreamer(n.Sim, time.Second, 64<<10, 10)
	if _, err := cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, streamer.Callbacks()); err != nil {
		t.Fatal(err)
	}
	n.Sim.RunUntil(15 * sim.Second)
	if streamer.Sent() != 10 {
		t.Fatalf("sent %d blocks", streamer.Sent())
	}
	if len(bsink.CompletedAt) != 10 {
		t.Fatalf("completed %d blocks", len(bsink.CompletedAt))
	}
	// On a clean 50 Mbps path each 64 KB block lands well within 100 ms
	// of its send time (paper: "delivered within 100 msec").
	for k, at := range bsink.CompletedAt {
		sent := streamer.StartedAt.Add(time.Duration(k) * time.Second)
		delay := time.Duration(at - sent)
		if delay <= 0 || delay > 100*time.Millisecond {
			t.Fatalf("block %d delay = %v", k, delay)
		}
	}
}

func TestReqRespServer(t *testing.T) {
	n, cep, sep := rig(t, 3)
	srv := NewReqRespServer(400, 512<<10)
	sep.Listen(80, srv.Accept)
	var got uint64
	var closed bool
	conn, err := cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, mptcp.ConnCallbacks{
		OnEstablished: func(c *mptcp.Connection) { c.Write(400) },
		OnData:        func(_ *mptcp.Connection, total uint64) { got = total },
		OnPeerClose:   func(c *mptcp.Connection) { c.Close() },
		OnClosed:      func(*mptcp.Connection) { closed = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if got != 512<<10 {
		t.Fatalf("response bytes = %d", got)
	}
	if srv.Served != 1 {
		t.Fatalf("served = %d", srv.Served)
	}
	if !closed || !conn.Closed() {
		t.Fatal("HTTP/1.0-style close did not complete")
	}
}

func TestSinkWithoutExpectation(t *testing.T) {
	n, cep, sep := rig(t, 4)
	sink := NewSink(n.Sim, 500, nil) // no completion callback
	sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := NewSource(n.Sim, 500, false)
	cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, src.Callbacks())
	n.Sim.Run()
	if !sink.Done || sink.Received != 500 {
		t.Fatalf("sink state: %+v", sink)
	}
}
