package core

import (
	"net/netip"
	"time"

	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/sim"
)

// Clock abstracts time for subflow controllers so the same controller code
// runs on the virtual clock (experiments) and the wall clock (cmd/smappd).
type Clock interface {
	// Now reports time since an arbitrary epoch.
	Now() time.Duration
	// After schedules fn once after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// SimClock adapts a discrete-event simulation clock to Clock.
type SimClock struct{ S sim.Clock }

// Now implements Clock.
func (c SimClock) Now() time.Duration { return time.Duration(c.S.Now()) }

// After implements Clock.
func (c SimClock) After(d time.Duration, fn func()) func() {
	ev := c.S.After(d, "controller.timer", fn)
	return func() { c.S.Cancel(ev) }
}

// Callbacks holds the event handlers a subflow controller registers. Only
// non-nil handlers cause a kernel-side subscription, so a controller pays
// the Netlink crossing only for events it cares about.
//
// Ownership: the *Event a handler receives is the library's reused decode
// scratch — valid only until the handler returns. A handler that buffers
// the event must copy the struct (it is a plain value; `c := *ev` is a
// deep copy, Event holds no references into the wire buffer).
type Callbacks struct {
	Created        func(ev *nlmsg.Event)
	Established    func(ev *nlmsg.Event)
	Closed         func(ev *nlmsg.Event)
	SubEstablished func(ev *nlmsg.Event)
	SubClosed      func(ev *nlmsg.Event)
	AddAddr        func(ev *nlmsg.Event)
	RemAddr        func(ev *nlmsg.Event)
	Timeout        func(ev *nlmsg.Event)
	LocalAddrUp    func(ev *nlmsg.Event)
	LocalAddrDown  func(ev *nlmsg.Event)
}

// mask derives the subscription mask from the registered handlers.
func (cb *Callbacks) mask() nlmsg.EventMask {
	var m nlmsg.EventMask
	set := func(c nlmsg.Cmd, fn func(*nlmsg.Event)) {
		if fn != nil {
			m |= nlmsg.MaskOf(c)
		}
	}
	set(nlmsg.EvCreated, cb.Created)
	set(nlmsg.EvEstablished, cb.Established)
	set(nlmsg.EvClosed, cb.Closed)
	set(nlmsg.EvSubEstablished, cb.SubEstablished)
	set(nlmsg.EvSubClosed, cb.SubClosed)
	set(nlmsg.EvAddAddr, cb.AddAddr)
	set(nlmsg.EvRemAddr, cb.RemAddr)
	set(nlmsg.EvTimeout, cb.Timeout)
	set(nlmsg.EvLocalAddrUp, cb.LocalAddrUp)
	set(nlmsg.EvLocalAddrDown, cb.LocalAddrDown)
	return m
}

// Dispatch invokes the handler registered for the event's kind, if any.
// Both the Library itself and per-connection views built on top of it
// (internal/smapp) route decoded events through this one switch.
func (cb *Callbacks) Dispatch(ev *nlmsg.Event) {
	var fn func(*nlmsg.Event)
	switch ev.Kind {
	case nlmsg.EvCreated:
		fn = cb.Created
	case nlmsg.EvEstablished:
		fn = cb.Established
	case nlmsg.EvClosed:
		fn = cb.Closed
	case nlmsg.EvSubEstablished:
		fn = cb.SubEstablished
	case nlmsg.EvSubClosed:
		fn = cb.SubClosed
	case nlmsg.EvAddAddr:
		fn = cb.AddAddr
	case nlmsg.EvRemAddr:
		fn = cb.RemAddr
	case nlmsg.EvTimeout:
		fn = cb.Timeout
	case nlmsg.EvLocalAddrUp:
		fn = cb.LocalAddrUp
	case nlmsg.EvLocalAddrDown:
		fn = cb.LocalAddrDown
	}
	if fn != nil {
		fn(ev)
	}
}

// Lib is the PM-library surface subflow controllers program against.
// *Library implements it directly (the paper's single-controller mode);
// internal/smapp implements it with a per-connection view so one library
// can host an independent policy per connection.
type Lib interface {
	// Register installs the controller's event callbacks.
	Register(cbs Callbacks, done func(errno uint32))
	// CreateSubflow opens a subflow from an arbitrary 4-tuple.
	CreateSubflow(token uint32, ft seg.FourTuple, backup bool, done func(errno uint32))
	// RemoveSubflow removes (RSTs) an established subflow.
	RemoveSubflow(token uint32, ft seg.FourTuple, done func(errno uint32))
	// SetBackup changes a subflow's backup priority (MP_PRIO).
	SetBackup(token uint32, ft seg.FourTuple, backup bool, done func(errno uint32))
	// AnnounceAddr advertises a local address (ADD_ADDR).
	AnnounceAddr(token uint32, addr netip.Addr, port uint16, done func(errno uint32))
	// GetInfo retrieves the TCP_INFO-like snapshot of a connection.
	GetInfo(token uint32, done func(info *nlmsg.ConnInfo))
	// After schedules controller work on the controller clock.
	After(d time.Duration, fn func()) (cancel func())
	// Clock exposes the controller clock.
	Clock() Clock
}

// LibStats counts library activity.
type LibStats struct {
	EventsReceived  uint64
	CommandsSent    uint64
	RepliesMatched  uint64
	RepliesOrphaned uint64
	ParseErrors     uint64
}

// Library is the userspace PM library: it owns the controller side of the
// transport, decodes events into callbacks, and provides the command API.
// Subflow controllers are written purely against this type — they never
// touch Netlink bytes, mirroring the paper's libpathmanager.
type Library struct {
	clock    Clock
	toKernel Pipe
	cbs      Callbacks
	pid      uint32
	nextSeq  uint32
	pending  map[uint32]func(*nlmsg.Message)

	// Scratch for in-place frame decoding: attr views alias the wire
	// buffer and the Event is reused per message, so callbacks must copy
	// anything they keep past their return (see Callbacks).
	msgScratch nlmsg.Message
	evScratch  nlmsg.Event

	Stats LibStats
}

// NewLibrary attaches a library to the controller end of a transport.
func NewLibrary(tr *Transport, clock Clock, pid uint32) *Library {
	l := &Library{
		clock:    clock,
		toKernel: tr.ToKernel,
		pid:      pid,
		pending:  make(map[uint32]func(*nlmsg.Message)),
	}
	tr.ToUser.SetReceiver(l.OnMessage)
	return l
}

// Clock exposes the controller clock (for probe timers).
func (l *Library) Clock() Clock { return l.clock }

// Register installs the controller's callbacks and subscribes to exactly
// the events it handles. done (optional) runs when the kernel acknowledges
// the subscription.
func (l *Library) Register(cbs Callbacks, done func(errno uint32)) {
	l.cbs = cbs
	cmd := &nlmsg.Command{Kind: nlmsg.CmdSubscribe, Pid: l.pid, Mask: cbs.mask()}
	l.sendCmd(cmd, func(m *nlmsg.Message) {
		if done == nil {
			return
		}
		errno, err := nlmsg.ParseAck(m)
		if err != nil {
			errno = errnoEINVAL
		}
		done(errno)
	})
}

// CreateSubflow asks the kernel to open a subflow for the connection
// identified by token, from an arbitrary 4-tuple (SrcPort 0 lets the
// kernel pick an ephemeral port). done (optional) receives the errno.
func (l *Library) CreateSubflow(token uint32, ft seg.FourTuple, backup bool, done func(errno uint32)) {
	l.sendAcked(&nlmsg.Command{Kind: nlmsg.CmdCreateSubflow, Pid: l.pid, Token: token, Tuple: ft, Backup: backup}, done)
}

// RemoveSubflow asks the kernel to remove (RST) an established subflow.
func (l *Library) RemoveSubflow(token uint32, ft seg.FourTuple, done func(errno uint32)) {
	l.sendAcked(&nlmsg.Command{Kind: nlmsg.CmdRemoveSubflow, Pid: l.pid, Token: token, Tuple: ft}, done)
}

// SetBackup changes a subflow's backup priority (MP_PRIO).
func (l *Library) SetBackup(token uint32, ft seg.FourTuple, backup bool, done func(errno uint32)) {
	l.sendAcked(&nlmsg.Command{Kind: nlmsg.CmdSetBackup, Pid: l.pid, Token: token, Tuple: ft, Backup: backup}, done)
}

// AnnounceAddr advertises a local address on the connection (ADD_ADDR).
func (l *Library) AnnounceAddr(token uint32, addr netip.Addr, port uint16, done func(errno uint32)) {
	l.sendAcked(&nlmsg.Command{Kind: nlmsg.CmdAnnounceAddr, Pid: l.pid, Token: token,
		Addr: addr, Port: port}, done)
}

// GetInfo retrieves the TCP_INFO-like snapshot of a connection and its
// subflows. done receives nil if the connection is gone.
func (l *Library) GetInfo(token uint32, done func(info *nlmsg.ConnInfo)) {
	l.sendCmd(&nlmsg.Command{Kind: nlmsg.CmdGetInfo, Pid: l.pid, Token: token}, func(m *nlmsg.Message) {
		if m.Cmd != nlmsg.ReplyInfo {
			done(nil)
			return
		}
		info, err := nlmsg.ParseInfo(m)
		if err != nil {
			l.Stats.ParseErrors++
			done(nil)
			return
		}
		done(info)
	})
}

// After schedules controller work on the controller clock.
func (l *Library) After(d time.Duration, fn func()) (cancel func()) {
	return l.clock.After(d, fn)
}

func (l *Library) sendAcked(cmd *nlmsg.Command, done func(uint32)) {
	l.sendCmd(cmd, func(m *nlmsg.Message) {
		if done == nil {
			return
		}
		errno, err := nlmsg.ParseAck(m)
		if err != nil {
			errno = errnoEINVAL
		}
		done(errno)
	})
}

func (l *Library) sendCmd(cmd *nlmsg.Command, reply func(*nlmsg.Message)) {
	l.nextSeq++
	cmd.Seq = l.nextSeq
	if reply != nil {
		l.pending[cmd.Seq] = reply
	}
	l.Stats.CommandsSent++
	l.toKernel.Send(cmd.AppendMarshal(nlmsg.Wire.Get()))
}

// OnMessage is the transport receiver: it decodes every message in the
// delivered frame (coalesced kernels batch several per crossing) and
// dispatches each. Exposed so socket-based owners can pump it directly.
// The frame is only borrowed — everything is decoded in place, so neither
// reply callbacks nor event handlers may retain what they are handed.
func (l *Library) OnMessage(b []byte) {
	for off := 0; off < len(b); {
		n, err := nlmsg.UnmarshalInto(b[off:], &l.msgScratch)
		if err != nil {
			l.Stats.ParseErrors++
			return
		}
		off += n
		l.dispatch(&l.msgScratch)
	}
}

func (l *Library) dispatch(m *nlmsg.Message) {
	switch m.Cmd {
	case nlmsg.ReplyAck, nlmsg.ReplyInfo:
		if fn, ok := l.pending[m.Seq]; ok {
			delete(l.pending, m.Seq)
			l.Stats.RepliesMatched++
			fn(m)
		} else {
			l.Stats.RepliesOrphaned++
		}
		return
	}
	if err := nlmsg.ParseEventInto(m, &l.evScratch); err != nil {
		l.Stats.ParseErrors++
		return
	}
	l.Stats.EventsReceived++
	l.cbs.Dispatch(&l.evScratch)
}
