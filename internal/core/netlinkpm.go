package core

import (
	"net/netip"
	"time"

	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// NetlinkPM is the kernel-side Netlink path manager: it implements the
// in-kernel path-manager interface (mptcp.PathManager) and forwards every
// hook as a Netlink event to the userspace subflow controller, subject to
// the controller's subscription mask. Inbound command messages are decoded
// and executed against the owning connections.
//
// As in the paper, the kernel keeps no policy: all decisions live in the
// controller. The kernel part only needs the token→connection table it
// already maintains for MP_JOIN processing.
type NetlinkPM struct {
	mptcp.NopPM
	sim   sim.Clock
	tr    *Transport
	conns map[uint32]*mptcp.Connection
	mask  nlmsg.EventMask
	pid   uint32

	// Coalescing state (SetCoalescing). With flushEvery 0 — the default —
	// every event goes out immediately in its own frame; otherwise events
	// queue per flush window and leave as one pooled multi-message frame.
	flushEvery time.Duration
	queueCap   int
	queue      []nlmsg.Event
	flushArmed bool
	flushFn    func()

	// Scratch for in-place command decoding; safe because frames are
	// handled one at a time on the kernel host's shard.
	msgScratch nlmsg.Message
	cmdScratch nlmsg.Command

	// Stats counters.
	EventsSent      uint64
	EventsMasked    uint64
	EventsCoalesced uint64
	EventsDropped   uint64
	Flushes         uint64
	CommandsRun     uint64
	QueueHighWater  uint64 // max pending events observed in the coalescing queue

	// Live metric handles (SetMetrics); all-nil records nothing.
	m CtlMetrics
}

// CtlMetrics bundles live metric handles for the control plane. Handles
// must be bound to the slot of the shard the kernel host runs on.
type CtlMetrics struct {
	EventsSent      *metrics.Counter
	EventsMasked    *metrics.Counter
	EventsCoalesced *metrics.Counter
	EventsDropped   *metrics.Counter
	Flushes         *metrics.Counter
	Commands        *metrics.Counter
	QueueHW         *metrics.Gauge
}

// SetMetrics installs live metric handles mirroring the public counters.
func (pm *NetlinkPM) SetMetrics(m CtlMetrics) { pm.m = m }

// DefaultCtlQueue is the per-subscriber event queue bound used when
// SetCoalescing is given a non-positive queue size.
const DefaultCtlQueue = 128

// NewNetlinkPM creates the kernel part and attaches it to the transport's
// command pipe. Pass the returned value as the PathManager when building
// the mptcp.Endpoint.
//
// Until the first CmdSubscribe arrives the mask is MaskAll: a controller
// that registers concurrently with early connections must not miss their
// created/estab events (the subscribe command and the first events race
// through the two pipe directions; FIFO per direction keeps everything
// ordered once delivered).
func NewNetlinkPM(c sim.Clock, tr *Transport) *NetlinkPM {
	pm := &NetlinkPM{sim: c, tr: tr, conns: make(map[uint32]*mptcp.Connection), mask: nlmsg.MaskAll}
	tr.ToKernel.SetReceiver(pm.handleCommand)
	return pm
}

// Name implements mptcp.PathManager.
func (pm *NetlinkPM) Name() string { return "netlink" }

// SetCoalescing switches event delivery to batched mode: events emitted
// within window of each other leave as one pooled multi-message frame (one
// transport crossing), superseded events coalesce away, and the pending
// queue is bounded at queueCap (≤0 means DefaultCtlQueue) with drop-oldest
// backpressure. window 0 restores the default immediate one-frame-per-event
// delivery — which is also what every golden experiment runs, since
// batching changes how many latency draws the transport makes.
func (pm *NetlinkPM) SetCoalescing(window time.Duration, queueCap int) {
	pm.flushEvery = window
	if queueCap <= 0 {
		queueCap = DefaultCtlQueue
	}
	pm.queueCap = queueCap
	if pm.flushFn == nil {
		pm.flushFn = pm.flush
	}
}

// send encodes and emits an event if the controller subscribed to it.
func (pm *NetlinkPM) send(e *nlmsg.Event) {
	if !pm.mask.Has(e.Kind) {
		pm.EventsMasked++
		pm.m.EventsMasked.Inc()
		return
	}
	e.At = time.Duration(pm.sim.Now())
	if pm.flushEvery > 0 {
		pm.enqueue(e)
		return
	}
	pm.EventsSent++
	pm.m.EventsSent.Inc()
	pm.tr.ToUser.Send(e.AppendMarshal(nlmsg.Wire.Get(), 0, pm.pid))
}

// enqueue adds an event to the pending window, cancelling pairs that a
// subscriber delivered-in-one-batch could never observe anyway:
//
//   - sub_estab then sub_closed of the same subflow — the subflow came and
//     went inside one window, invisible churn;
//   - created (plus anything else for that token) then closed — the whole
//     connection came and went;
//   - local addr up/down flip-flops of the same address.
//
// Coalescing only ever removes strictly-older events of the same scope, so
// per-scope ordering of what remains is preserved.
func (pm *NetlinkPM) enqueue(e *nlmsg.Event) {
	switch e.Kind {
	case nlmsg.EvSubClosed:
		if i := pm.findQueuedSub(nlmsg.EvSubEstablished, e.Token, e.Tuple); i >= 0 {
			pm.removeQueued(i)
			pm.EventsCoalesced += 2
			pm.m.EventsCoalesced.Add(2)
			return
		}
	case nlmsg.EvClosed:
		if e.Token != 0 {
			sawCreated := false
			n := 0
			for i := range pm.queue {
				if pm.queue[i].Token == e.Token {
					if pm.queue[i].Kind == nlmsg.EvCreated {
						sawCreated = true
					}
					pm.EventsCoalesced++
					pm.m.EventsCoalesced.Inc()
					continue
				}
				pm.queue[n] = pm.queue[i]
				n++
			}
			pm.queue = pm.queue[:n]
			if sawCreated {
				pm.EventsCoalesced++
				pm.m.EventsCoalesced.Inc()
				return
			}
		}
	case nlmsg.EvLocalAddrUp:
		if i := pm.findQueuedAddr(nlmsg.EvLocalAddrDown, e.Addr); i >= 0 {
			pm.removeQueued(i)
			pm.EventsCoalesced += 2
			pm.m.EventsCoalesced.Add(2)
			return
		}
	case nlmsg.EvLocalAddrDown:
		if i := pm.findQueuedAddr(nlmsg.EvLocalAddrUp, e.Addr); i >= 0 {
			pm.removeQueued(i)
			pm.EventsCoalesced += 2
			pm.m.EventsCoalesced.Add(2)
			return
		}
	}
	if len(pm.queue) >= pm.queueCap {
		copy(pm.queue, pm.queue[1:])
		pm.queue = pm.queue[:len(pm.queue)-1]
		pm.EventsDropped++
		pm.m.EventsDropped.Inc()
	}
	pm.queue = append(pm.queue, *e)
	if n := uint64(len(pm.queue)); n > pm.QueueHighWater {
		pm.QueueHighWater = n
	}
	pm.m.QueueHW.SetMax(uint64(len(pm.queue)))
	if !pm.flushArmed {
		pm.flushArmed = true
		pm.sim.Schedule(pm.sim.Now().Add(pm.flushEvery), "netlink.flush", pm.flushFn)
	}
}

func (pm *NetlinkPM) findQueuedSub(kind nlmsg.Cmd, token uint32, ft seg.FourTuple) int {
	for i := range pm.queue {
		if pm.queue[i].Kind == kind && pm.queue[i].Token == token && pm.queue[i].Tuple == ft {
			return i
		}
	}
	return -1
}

func (pm *NetlinkPM) findQueuedAddr(kind nlmsg.Cmd, addr netip.Addr) int {
	for i := range pm.queue {
		if pm.queue[i].Kind == kind && pm.queue[i].Addr == addr {
			return i
		}
	}
	return -1
}

func (pm *NetlinkPM) removeQueued(i int) {
	copy(pm.queue[i:], pm.queue[i+1:])
	pm.queue = pm.queue[:len(pm.queue)-1]
}

// flush marshals the whole pending window into one pooled frame and sends
// it as a single transport crossing. Event timestamps keep their emission
// time (set in send), so decision-latency measurements see queueing delay.
func (pm *NetlinkPM) flush() {
	pm.flushArmed = false
	if len(pm.queue) == 0 {
		return
	}
	buf := nlmsg.Wire.Get()
	for i := range pm.queue {
		buf = pm.queue[i].AppendMarshal(buf, 0, pm.pid)
	}
	pm.EventsSent += uint64(len(pm.queue))
	pm.Flushes++
	pm.m.EventsSent.Add(uint64(len(pm.queue)))
	pm.m.Flushes.Inc()
	pm.queue = pm.queue[:0]
	pm.tr.ToUser.Send(buf)
}

// ConnCreated implements mptcp.PathManager.
func (pm *NetlinkPM) ConnCreated(c *mptcp.Connection) {
	pm.conns[c.Token()] = c
	pm.send(&nlmsg.Event{Kind: nlmsg.EvCreated, Token: c.Token(), Tuple: c.InitialTuple(), HasTuple: true})
}

// ConnEstablished implements mptcp.PathManager.
func (pm *NetlinkPM) ConnEstablished(c *mptcp.Connection) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvEstablished, Token: c.Token(), Tuple: c.InitialTuple(), HasTuple: true})
}

// ConnClosed implements mptcp.PathManager.
func (pm *NetlinkPM) ConnClosed(c *mptcp.Connection) {
	delete(pm.conns, c.Token())
	pm.send(&nlmsg.Event{Kind: nlmsg.EvClosed, Token: c.Token()})
}

// SubflowEstablished implements mptcp.PathManager.
func (pm *NetlinkPM) SubflowEstablished(c *mptcp.Connection, sf *tcp.Subflow) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvSubEstablished, Token: c.Token(), Tuple: sf.Tuple(), HasTuple: true})
}

// SubflowClosed implements mptcp.PathManager.
func (pm *NetlinkPM) SubflowClosed(c *mptcp.Connection, sf *tcp.Subflow, reason tcp.Errno) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvSubClosed, Token: c.Token(), Tuple: sf.Tuple(), HasTuple: true,
		Errno: uint32(reason)})
}

// AddrAnnounced implements mptcp.PathManager.
func (pm *NetlinkPM) AddrAnnounced(c *mptcp.Connection, id uint8, addr netip.Addr, port uint16) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvAddAddr, Token: c.Token(), AddrID: id, Addr: addr, Port: port})
}

// AddrRemoved implements mptcp.PathManager.
func (pm *NetlinkPM) AddrRemoved(c *mptcp.Connection, id uint8) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvRemAddr, Token: c.Token(), AddrID: id})
}

// Timeout implements mptcp.PathManager.
func (pm *NetlinkPM) Timeout(c *mptcp.Connection, sf *tcp.Subflow, rto time.Duration, backoffs int) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: c.Token(), Tuple: sf.Tuple(), HasTuple: true,
		RTO: rto, Backoffs: uint32(backoffs)})
}

// LocalAddrUp implements mptcp.PathManager.
func (pm *NetlinkPM) LocalAddrUp(addr netip.Addr) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvLocalAddrUp, Addr: addr})
}

// LocalAddrDown implements mptcp.PathManager.
func (pm *NetlinkPM) LocalAddrDown(addr netip.Addr) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvLocalAddrDown, Addr: addr})
}

// --- Command execution ---

// Errno values for command acks (beyond tcp's).
const (
	errnoOK     = 0
	errnoNOENT  = 2  // no such connection/subflow
	errnoEINVAL = 22 // malformed command
)

// handleCommand decodes every message in the delivered frame in place
// (commands may be batched the same way events are) and executes each.
func (pm *NetlinkPM) handleCommand(b []byte) {
	for off := 0; off < len(b); {
		n, err := nlmsg.UnmarshalInto(b[off:], &pm.msgScratch)
		if err != nil {
			return // a real kernel would NACK; a short message has no seq to ack
		}
		off += n
		pm.runCommand(&pm.msgScratch)
	}
}

func (pm *NetlinkPM) runCommand(m *nlmsg.Message) {
	if err := nlmsg.ParseCommandInto(m, &pm.cmdScratch); err != nil {
		pm.ack(m.Seq, m.Pid, errnoEINVAL)
		return
	}
	cmd := &pm.cmdScratch
	pm.CommandsRun++
	pm.m.Commands.Inc()
	switch cmd.Kind {
	case nlmsg.CmdSubscribe:
		pm.mask = cmd.Mask
		pm.pid = cmd.Pid
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	case nlmsg.CmdCreateSubflow:
		c, ok := pm.conns[cmd.Token]
		if !ok {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		_, err := c.OpenSubflow(cmd.Tuple.SrcIP, cmd.Tuple.SrcPort, cmd.Tuple.DstIP, cmd.Tuple.DstPort, cmd.Backup)
		pm.ack(cmd.Seq, cmd.Pid, errnoOf(err))

	case nlmsg.CmdRemoveSubflow:
		c, sf := pm.findSubflow(cmd.Token, cmd.Tuple)
		if sf == nil {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		c.CloseSubflow(sf, true)
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	case nlmsg.CmdSetBackup:
		c, sf := pm.findSubflow(cmd.Token, cmd.Tuple)
		if sf == nil {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		c.SetBackup(sf, cmd.Backup)
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	case nlmsg.CmdGetInfo:
		c, ok := pm.conns[cmd.Token]
		if !ok {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		pm.tr.ToUser.Send(nlmsg.MarshalInfo(WireInfo(c), cmd.Seq, cmd.Pid))

	case nlmsg.CmdAnnounceAddr:
		c, ok := pm.conns[cmd.Token]
		if !ok {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		c.AnnounceAddr(cmd.Addr, cmd.Port)
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	default:
		pm.ack(cmd.Seq, cmd.Pid, errnoEINVAL)
	}
}

func (pm *NetlinkPM) ack(seq, pid uint32, errno uint32) {
	pm.tr.ToUser.Send(nlmsg.AppendAck(nlmsg.Wire.Get(), errno, seq, pid))
}

func (pm *NetlinkPM) findSubflow(token uint32, ft seg.FourTuple) (*mptcp.Connection, *tcp.Subflow) {
	c, ok := pm.conns[token]
	if !ok {
		return nil, nil
	}
	for _, sf := range c.Subflows() {
		if sf.Tuple() == ft {
			return c, sf
		}
	}
	return c, nil
}

func errnoOf(err error) uint32 {
	switch e := err.(type) {
	case nil:
		return errnoOK
	case tcp.Errno:
		return uint32(e)
	default:
		return errnoEINVAL
	}
}

// WireInfo converts an mptcp snapshot to the wire schema — the exact view
// a controller receives from CmdGetInfo. internal/smapp uses it to merge
// the application-side and Netlink-side snapshots into one.
func WireInfo(c *mptcp.Connection) *nlmsg.ConnInfo {
	in := c.Info()
	out := &nlmsg.ConnInfo{
		Token:    in.Token,
		SndUna:   in.SndUna,
		AppNxt:   in.AppNxt,
		RcvBytes: in.RcvBytes,
	}
	for _, sf := range in.Subflows {
		out.Subflows = append(out.Subflows, nlmsg.SubflowInfo{
			Tuple:      sf.Tuple,
			State:      uint32(sf.State),
			Backup:     sf.Backup,
			Cwnd:       uint32(sf.Cwnd),
			SRTT:       sf.SRTT,
			RTO:        sf.RTO,
			Backoffs:   uint32(sf.Backoffs),
			PacingRate: uint64(sf.PacingRate),
			Flight:     uint32(sf.Flight),
		})
	}
	return out
}
