package core

import (
	"net/netip"
	"time"

	"repro/internal/mptcp"
	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// NetlinkPM is the kernel-side Netlink path manager: it implements the
// in-kernel path-manager interface (mptcp.PathManager) and forwards every
// hook as a Netlink event to the userspace subflow controller, subject to
// the controller's subscription mask. Inbound command messages are decoded
// and executed against the owning connections.
//
// As in the paper, the kernel keeps no policy: all decisions live in the
// controller. The kernel part only needs the token→connection table it
// already maintains for MP_JOIN processing.
type NetlinkPM struct {
	mptcp.NopPM
	sim   sim.Clock
	tr    *Transport
	conns map[uint32]*mptcp.Connection
	mask  nlmsg.EventMask
	pid   uint32

	// Stats counters.
	EventsSent   uint64
	EventsMasked uint64
	CommandsRun  uint64
}

// NewNetlinkPM creates the kernel part and attaches it to the transport's
// command pipe. Pass the returned value as the PathManager when building
// the mptcp.Endpoint.
//
// Until the first CmdSubscribe arrives the mask is MaskAll: a controller
// that registers concurrently with early connections must not miss their
// created/estab events (the subscribe command and the first events race
// through the two pipe directions; FIFO per direction keeps everything
// ordered once delivered).
func NewNetlinkPM(c sim.Clock, tr *Transport) *NetlinkPM {
	pm := &NetlinkPM{sim: c, tr: tr, conns: make(map[uint32]*mptcp.Connection), mask: nlmsg.MaskAll}
	tr.ToKernel.SetReceiver(pm.handleCommand)
	return pm
}

// Name implements mptcp.PathManager.
func (pm *NetlinkPM) Name() string { return "netlink" }

// send encodes and emits an event if the controller subscribed to it.
func (pm *NetlinkPM) send(e *nlmsg.Event) {
	if !pm.mask.Has(e.Kind) {
		pm.EventsMasked++
		return
	}
	e.At = time.Duration(pm.sim.Now())
	pm.EventsSent++
	pm.tr.ToUser.Send(e.Marshal(0, pm.pid))
}

// ConnCreated implements mptcp.PathManager.
func (pm *NetlinkPM) ConnCreated(c *mptcp.Connection) {
	pm.conns[c.Token()] = c
	pm.send(&nlmsg.Event{Kind: nlmsg.EvCreated, Token: c.Token(), Tuple: c.InitialTuple(), HasTuple: true})
}

// ConnEstablished implements mptcp.PathManager.
func (pm *NetlinkPM) ConnEstablished(c *mptcp.Connection) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvEstablished, Token: c.Token(), Tuple: c.InitialTuple(), HasTuple: true})
}

// ConnClosed implements mptcp.PathManager.
func (pm *NetlinkPM) ConnClosed(c *mptcp.Connection) {
	delete(pm.conns, c.Token())
	pm.send(&nlmsg.Event{Kind: nlmsg.EvClosed, Token: c.Token()})
}

// SubflowEstablished implements mptcp.PathManager.
func (pm *NetlinkPM) SubflowEstablished(c *mptcp.Connection, sf *tcp.Subflow) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvSubEstablished, Token: c.Token(), Tuple: sf.Tuple(), HasTuple: true})
}

// SubflowClosed implements mptcp.PathManager.
func (pm *NetlinkPM) SubflowClosed(c *mptcp.Connection, sf *tcp.Subflow, reason tcp.Errno) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvSubClosed, Token: c.Token(), Tuple: sf.Tuple(), HasTuple: true,
		Errno: uint32(reason)})
}

// AddrAnnounced implements mptcp.PathManager.
func (pm *NetlinkPM) AddrAnnounced(c *mptcp.Connection, id uint8, addr netip.Addr, port uint16) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvAddAddr, Token: c.Token(), AddrID: id, Addr: addr, Port: port})
}

// AddrRemoved implements mptcp.PathManager.
func (pm *NetlinkPM) AddrRemoved(c *mptcp.Connection, id uint8) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvRemAddr, Token: c.Token(), AddrID: id})
}

// Timeout implements mptcp.PathManager.
func (pm *NetlinkPM) Timeout(c *mptcp.Connection, sf *tcp.Subflow, rto time.Duration, backoffs int) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: c.Token(), Tuple: sf.Tuple(), HasTuple: true,
		RTO: rto, Backoffs: uint32(backoffs)})
}

// LocalAddrUp implements mptcp.PathManager.
func (pm *NetlinkPM) LocalAddrUp(addr netip.Addr) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvLocalAddrUp, Addr: addr})
}

// LocalAddrDown implements mptcp.PathManager.
func (pm *NetlinkPM) LocalAddrDown(addr netip.Addr) {
	pm.send(&nlmsg.Event{Kind: nlmsg.EvLocalAddrDown, Addr: addr})
}

// --- Command execution ---

// Errno values for command acks (beyond tcp's).
const (
	errnoOK     = 0
	errnoNOENT  = 2  // no such connection/subflow
	errnoEINVAL = 22 // malformed command
)

func (pm *NetlinkPM) handleCommand(b []byte) {
	m, _, err := nlmsg.Unmarshal(b)
	if err != nil {
		return // a real kernel would NACK; a short message has no seq to ack
	}
	cmd, err := nlmsg.ParseCommand(m)
	if err != nil {
		pm.ack(m.Seq, m.Pid, errnoEINVAL)
		return
	}
	pm.CommandsRun++
	switch cmd.Kind {
	case nlmsg.CmdSubscribe:
		pm.mask = cmd.Mask
		pm.pid = cmd.Pid
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	case nlmsg.CmdCreateSubflow:
		c, ok := pm.conns[cmd.Token]
		if !ok {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		_, err := c.OpenSubflow(cmd.Tuple.SrcIP, cmd.Tuple.SrcPort, cmd.Tuple.DstIP, cmd.Tuple.DstPort, cmd.Backup)
		pm.ack(cmd.Seq, cmd.Pid, errnoOf(err))

	case nlmsg.CmdRemoveSubflow:
		c, sf := pm.findSubflow(cmd.Token, cmd.Tuple)
		if sf == nil {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		c.CloseSubflow(sf, true)
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	case nlmsg.CmdSetBackup:
		c, sf := pm.findSubflow(cmd.Token, cmd.Tuple)
		if sf == nil {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		c.SetBackup(sf, cmd.Backup)
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	case nlmsg.CmdGetInfo:
		c, ok := pm.conns[cmd.Token]
		if !ok {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		pm.tr.ToUser.Send(nlmsg.MarshalInfo(WireInfo(c), cmd.Seq, cmd.Pid))

	case nlmsg.CmdAnnounceAddr:
		c, ok := pm.conns[cmd.Token]
		if !ok {
			pm.ack(cmd.Seq, cmd.Pid, errnoNOENT)
			return
		}
		c.AnnounceAddr(cmd.Addr, cmd.Port)
		pm.ack(cmd.Seq, cmd.Pid, errnoOK)

	default:
		pm.ack(cmd.Seq, cmd.Pid, errnoEINVAL)
	}
}

func (pm *NetlinkPM) ack(seq, pid uint32, errno uint32) {
	pm.tr.ToUser.Send(nlmsg.MarshalAck(errno, seq, pid))
}

func (pm *NetlinkPM) findSubflow(token uint32, ft seg.FourTuple) (*mptcp.Connection, *tcp.Subflow) {
	c, ok := pm.conns[token]
	if !ok {
		return nil, nil
	}
	for _, sf := range c.Subflows() {
		if sf.Tuple() == ft {
			return c, sf
		}
	}
	return c, nil
}

func errnoOf(err error) uint32 {
	switch e := err.(type) {
	case nil:
		return errnoOK
	case tcp.Errno:
		return uint32(e)
	default:
		return errnoEINVAL
	}
}

// WireInfo converts an mptcp snapshot to the wire schema — the exact view
// a controller receives from CmdGetInfo. internal/smapp uses it to merge
// the application-side and Netlink-side snapshots into one.
func WireInfo(c *mptcp.Connection) *nlmsg.ConnInfo {
	in := c.Info()
	out := &nlmsg.ConnInfo{
		Token:    in.Token,
		SndUna:   in.SndUna,
		AppNxt:   in.AppNxt,
		RcvBytes: in.RcvBytes,
	}
	for _, sf := range in.Subflows {
		out.Subflows = append(out.Subflows, nlmsg.SubflowInfo{
			Tuple:      sf.Tuple,
			State:      uint32(sf.State),
			Backup:     sf.Backup,
			Cwnd:       uint32(sf.Cwnd),
			SRTT:       sf.SRTT,
			RTO:        sf.RTO,
			Backoffs:   uint32(sf.Backoffs),
			PacingRate: uint64(sf.PacingRate),
			Flight:     uint32(sf.Flight),
		})
	}
	return out
}
