package core

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/topo"
)

// world wires a two-path topology where the CLIENT runs the Netlink PM,
// with a library attached over a simulated transport.
type world struct {
	net    *topo.TwoPath
	tr     *Transport
	pm     *NetlinkPM
	lib    *Library
	cep    *mptcp.Endpoint
	sep    *mptcp.Endpoint
	client *mptcp.Connection
	server *mptcp.Connection
	rcv    uint64
	events []*nlmsg.Event
}

func newWorld(t *testing.T, seed int64, cbs Callbacks) *world {
	t.Helper()
	w := &world{}
	cfg := netem.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond}
	w.net = topo.NewTwoPath(sim.New(seed), cfg, cfg)
	w.tr = NewSimTransport(w.net.Sim)
	w.pm = NewNetlinkPM(w.net.Sim, w.tr)
	w.lib = NewLibrary(w.tr, SimClock{w.net.Sim}, 1)
	w.lib.Register(cbs, nil)
	w.cep = mptcp.NewEndpoint(w.net.Client, mptcp.Config{}, w.pm)
	w.sep = mptcp.NewEndpoint(w.net.Server, mptcp.Config{}, nil)
	w.sep.Listen(80, func(c *mptcp.Connection) { w.server = c })
	return w
}

func (w *world) connect(t *testing.T) {
	t.Helper()
	var err error
	w.client, err = w.cep.Connect(w.net.ClientAddrs[0], w.net.ServerAddr, 80,
		mptcp.ConnCallbacks{OnData: func(_ *mptcp.Connection, n uint64) { w.rcv = n }})
	if err != nil {
		t.Fatal(err)
	}
}

// record returns callbacks appending every event to w.events. The library
// hands out its reused decode scratch, so retained events must be copied.
func (w *world) record() Callbacks {
	rec := func(ev *nlmsg.Event) { c := *ev; w.events = append(w.events, &c) }
	return Callbacks{
		Created: rec, Established: rec, Closed: rec,
		SubEstablished: rec, SubClosed: rec,
		AddAddr: rec, RemAddr: rec, Timeout: rec,
		LocalAddrUp: rec, LocalAddrDown: rec,
	}
}

func (w *world) kinds() []nlmsg.Cmd {
	var out []nlmsg.Cmd
	for _, e := range w.events {
		out = append(out, e.Kind)
	}
	return out
}

func TestEventFlow(t *testing.T) {
	w := &world{}
	cfg := netem.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond}
	w.net = topo.NewTwoPath(sim.New(1), cfg, cfg)
	w.tr = NewSimTransport(w.net.Sim)
	w.pm = NewNetlinkPM(w.net.Sim, w.tr)
	w.lib = NewLibrary(w.tr, SimClock{w.net.Sim}, 1)
	w.lib.Register(w.record(), nil)
	w.cep = mptcp.NewEndpoint(w.net.Client, mptcp.Config{}, w.pm)
	w.sep = mptcp.NewEndpoint(w.net.Server, mptcp.Config{}, nil)
	w.sep.Listen(80, func(c *mptcp.Connection) { w.server = c })
	w.net.Sim.RunFor(time.Millisecond) // let the subscription land
	w.connect(t)
	w.net.Sim.Run()

	kinds := w.kinds()
	want := []nlmsg.Cmd{nlmsg.EvCreated, nlmsg.EvEstablished, nlmsg.EvSubEstablished}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	ev := w.events[0]
	if ev.Token != w.client.Token() || !ev.HasTuple {
		t.Fatalf("created event = %+v", ev)
	}
	// The event timestamp is kernel-side; delivery adds transport latency.
	if ev.At == 0 {
		t.Fatal("event missing timestamp")
	}
}

func TestSubscriptionMaskFilters(t *testing.T) {
	// Subscribe only to timeout events: creation events must be masked.
	w := newWorld(t, 2, Callbacks{Timeout: func(*nlmsg.Event) {}})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	if w.pm.EventsSent != 0 {
		t.Fatalf("kernel sent %d events despite mask", w.pm.EventsSent)
	}
	if w.pm.EventsMasked == 0 {
		t.Fatal("no events were masked")
	}
}

func TestCreateSubflowCommand(t *testing.T) {
	w := newWorld(t, 3, Callbacks{})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	var errno uint32 = 999
	ft := seg.FourTuple{SrcIP: w.net.ClientAddrs[1], DstIP: w.net.ServerAddr, SrcPort: 0, DstPort: 80}
	w.lib.CreateSubflow(w.client.Token(), ft, false, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != 0 {
		t.Fatalf("create errno = %d", errno)
	}
	if len(w.client.Subflows()) != 2 {
		t.Fatalf("subflows = %d", len(w.client.Subflows()))
	}
	// Unknown token → ENOENT.
	w.lib.CreateSubflow(0xdead, ft, false, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != errnoNOENT {
		t.Fatalf("bogus-token errno = %d, want ENOENT", errno)
	}
	// Down interface → ENETUNREACH (101).
	w.net.Client.SetIfaceUp(w.net.ClientAddrs[1], false)
	ft2 := ft
	ft2.SrcPort = 0
	w.lib.CreateSubflow(w.client.Token(), ft2, false, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != 101 {
		t.Fatalf("down-iface errno = %d, want 101", errno)
	}
}

func TestRemoveSubflowCommand(t *testing.T) {
	var closed []*nlmsg.Event
	w := newWorld(t, 4, Callbacks{SubClosed: func(e *nlmsg.Event) { c := *e; closed = append(closed, &c) }})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	ft := w.client.Subflows()[0].Tuple()
	var errno uint32 = 999
	w.lib.RemoveSubflow(w.client.Token(), ft, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != 0 {
		t.Fatalf("remove errno = %d", errno)
	}
	if len(w.client.Subflows()) != 0 {
		t.Fatal("subflow survived removal")
	}
	if len(closed) != 1 || closed[0].Errno != 103 { // ECONNABORTED
		t.Fatalf("sub_closed events = %+v", closed)
	}
	// Removing it again → ENOENT.
	w.lib.RemoveSubflow(w.client.Token(), ft, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != errnoNOENT {
		t.Fatalf("double-remove errno = %d", errno)
	}
}

func TestGetInfoCommand(t *testing.T) {
	w := newWorld(t, 5, Callbacks{})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	w.client.Write(100_000)
	w.net.Sim.Run()
	var info *nlmsg.ConnInfo
	w.lib.GetInfo(w.client.Token(), func(i *nlmsg.ConnInfo) { info = i })
	w.net.Sim.Run()
	if info == nil {
		t.Fatal("no info reply")
	}
	if info.Token != w.client.Token() || info.SndUna != 100_000 || info.AppNxt != 100_000 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Subflows) != 1 {
		t.Fatalf("info subflows = %d", len(info.Subflows))
	}
	sf := info.Subflows[0]
	if sf.SRTT <= 0 || sf.Cwnd == 0 || sf.PacingRate == 0 {
		t.Fatalf("subflow info = %+v", sf)
	}
	// Unknown token → nil.
	called := false
	w.lib.GetInfo(12345, func(i *nlmsg.ConnInfo) { called = true; info = i })
	w.net.Sim.Run()
	if !called || info != nil {
		t.Fatalf("bogus get-info: called=%v info=%v", called, info)
	}
}

func TestSetBackupCommand(t *testing.T) {
	w := newWorld(t, 6, Callbacks{})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	ft := w.client.Subflows()[0].Tuple()
	var errno uint32 = 999
	w.lib.SetBackup(w.client.Token(), ft, true, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != 0 {
		t.Fatalf("set-backup errno = %d", errno)
	}
	if !w.client.Subflows()[0].Backup() {
		t.Fatal("backup flag not set")
	}
	if !w.server.Subflows()[0].Backup() {
		t.Fatal("MP_PRIO not propagated to the peer")
	}
}

func TestTimeoutEventsOverNetlink(t *testing.T) {
	var timeouts []*nlmsg.Event
	w := newWorld(t, 7, Callbacks{Timeout: func(e *nlmsg.Event) { c := *e; timeouts = append(timeouts, &c) }})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	w.net.Path[0].SetLoss(1.0)
	w.client.Write(5000)
	w.net.Sim.RunFor(10 * time.Second)
	if len(timeouts) < 3 {
		t.Fatalf("timeout events = %d", len(timeouts))
	}
	for i := 1; i < len(timeouts); i++ {
		if timeouts[i].RTO < timeouts[i-1].RTO {
			t.Fatalf("RTO not growing: %v", timeouts)
		}
		if timeouts[i].Backoffs != timeouts[i-1].Backoffs+1 {
			t.Fatalf("backoff counts not consecutive")
		}
	}
}

func TestAnnounceAddrCommand(t *testing.T) {
	w := newWorld(t, 8, Callbacks{})
	w.net.Sim.RunFor(time.Millisecond)
	w.connect(t)
	w.net.Sim.Run()
	var errno uint32 = 999
	w.lib.AnnounceAddr(w.client.Token(), w.net.ClientAddrs[1], 0, func(e uint32) { errno = e })
	w.net.Sim.Run()
	if errno != 0 {
		t.Fatalf("announce errno = %d", errno)
	}
	if len(w.server.PeerAddrs()) != 1 {
		t.Fatal("ADD_ADDR not delivered")
	}
}

func TestLocalAddrEventsOverNetlink(t *testing.T) {
	var ups, downs []*nlmsg.Event
	w := newWorld(t, 9, Callbacks{
		LocalAddrUp:   func(e *nlmsg.Event) { c := *e; ups = append(ups, &c) },
		LocalAddrDown: func(e *nlmsg.Event) { c := *e; downs = append(downs, &c) },
	})
	w.net.Sim.RunFor(time.Millisecond)
	w.net.Client.SetIfaceUp(w.net.ClientAddrs[1], false)
	w.net.Client.SetIfaceUp(w.net.ClientAddrs[1], true)
	w.net.Sim.Run()
	if len(downs) != 1 || len(ups) != 1 {
		t.Fatalf("addr events: up=%d down=%d", len(ups), len(downs))
	}
	if downs[0].Addr != w.net.ClientAddrs[1] {
		t.Fatalf("down addr = %v", downs[0].Addr)
	}
}

func TestNetlinkLatencyIsMicroseconds(t *testing.T) {
	// The simulated transport should cost ~10µs one way: measure the gap
	// between kernel-side event timestamp and controller delivery time.
	s := sim.New(10)
	tr := NewSimTransport(s)
	var sent, recv []sim.Time
	tr.ToUser.SetReceiver(func(b []byte) { recv = append(recv, s.Now()) })
	for i := 0; i < 1000; i++ {
		s.After(time.Duration(i)*time.Millisecond, "emit", func() {
			sent = append(sent, s.Now())
			tr.ToUser.Send([]byte{0})
		})
	}
	s.Run()
	var total time.Duration
	for i := range sent {
		total += time.Duration(recv[i] - sent[i])
	}
	mean := total / time.Duration(len(sent))
	if mean < 8*time.Microsecond || mean > 16*time.Microsecond {
		t.Fatalf("mean one-way latency = %v, want ≈11.5µs", mean)
	}
}

func TestSimPipeFIFO(t *testing.T) {
	s := sim.New(11)
	p := NewSimPipe(s, LatencyModel(s.Rand(), time.Microsecond, 50*time.Microsecond))
	var got []byte
	p.SetReceiver(func(b []byte) { got = append(got, b[0]) })
	for i := 0; i < 50; i++ {
		p.Send([]byte{byte(i)})
	}
	s.Run()
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("pipe reordered messages: %v", got)
		}
	}
	if p.Delivered != 50 {
		t.Fatalf("delivered = %d", p.Delivered)
	}
}

func TestSocketPipeFraming(t *testing.T) {
	// Messages written through a SocketPipe and read back with
	// ReadMessages survive framing over a byte stream.
	var buf bytes.Buffer
	p := NewSocketPipe(&buf)
	var msgs [][]byte
	for i := 0; i < 10; i++ {
		ev := &nlmsg.Event{Kind: nlmsg.EvTimeout, Token: uint32(i), RTO: time.Duration(i) * time.Second}
		b := ev.Marshal(uint32(i), 1)
		// Send transfers ownership of b (it is recycled into nlmsg.Wire),
		// so keep an independent copy for the comparison below.
		msgs = append(msgs, append([]byte(nil), b...))
		p.Send(b)
	}
	count := 0
	err := ReadMessages(&buf, func(b []byte) {
		if !bytes.Equal(b, msgs[count]) {
			t.Fatalf("message %d corrupted", count)
		}
		count++
	})
	if err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("ReadMessages err = %v", err)
	}
	if count != 10 {
		t.Fatalf("read %d messages", count)
	}
}

func TestLibraryIgnoresGarbage(t *testing.T) {
	s := sim.New(12)
	tr := NewSimTransport(s)
	lib := NewLibrary(tr, SimClock{s}, 1)
	lib.OnMessage([]byte{1, 2, 3})
	if lib.Stats.ParseErrors != 1 {
		t.Fatal("garbage not counted")
	}
	// Orphaned reply (no pending seq).
	lib.OnMessage(nlmsg.MarshalAck(0, 999, 1))
	if lib.Stats.RepliesOrphaned != 1 {
		t.Fatal("orphan reply not counted")
	}
}

// ctlWorld wires just a transport, PM and recording library — no network —
// for driving the coalescing machinery with synthetic events.
type ctlWorld struct {
	s      *sim.Simulator
	tr     *Transport
	pm     *NetlinkPM
	lib    *Library
	events []nlmsg.Event
}

func newCtlWorld(t *testing.T, seed int64) *ctlWorld {
	t.Helper()
	w := &ctlWorld{s: sim.New(seed)}
	w.tr = NewSimTransport(w.s)
	w.pm = NewNetlinkPM(w.s, w.tr)
	w.lib = NewLibrary(w.tr, SimClock{w.s}, 1)
	rec := func(ev *nlmsg.Event) { w.events = append(w.events, *ev) }
	w.lib.Register(Callbacks{
		Created: rec, Established: rec, Closed: rec,
		SubEstablished: rec, SubClosed: rec,
		AddAddr: rec, RemAddr: rec, Timeout: rec,
		LocalAddrUp: rec, LocalAddrDown: rec,
	}, nil)
	w.s.RunFor(time.Millisecond) // let the subscription land
	return w
}

func TestCoalescedFlushBatchesFrames(t *testing.T) {
	w := newCtlWorld(t, 20)
	w.pm.SetCoalescing(500*time.Microsecond, 8)
	framesBefore := w.tr.ToUser.(*SimPipe).Delivered
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: 1, RTO: time.Second})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: 2, RTO: time.Second})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: 3, RTO: time.Second})
	w.s.Run()
	if got := w.tr.ToUser.(*SimPipe).Delivered - framesBefore; got != 1 {
		t.Fatalf("3 events crossed in %d frames, want 1", got)
	}
	if w.pm.Flushes != 1 || w.pm.EventsSent != 3 {
		t.Fatalf("flushes=%d sent=%d, want 1/3", w.pm.Flushes, w.pm.EventsSent)
	}
	if len(w.events) != 3 {
		t.Fatalf("delivered %d events, want 3", len(w.events))
	}
	for i, ev := range w.events {
		if ev.Token != uint32(i+1) {
			t.Fatalf("event order broken: %+v", w.events)
		}
	}
	// A second window must re-arm the flush timer.
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: 4, RTO: time.Second})
	w.s.Run()
	if w.pm.Flushes != 2 || len(w.events) != 4 {
		t.Fatalf("second window: flushes=%d events=%d", w.pm.Flushes, len(w.events))
	}
}

func TestCoalescingCancelsSupersededPairs(t *testing.T) {
	w := newCtlWorld(t, 21)
	w.pm.SetCoalescing(time.Millisecond, 32)
	ft := seg.FourTuple{SrcPort: 1, DstPort: 2}
	// Subflow came and went inside one window: both events vanish.
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvSubEstablished, Token: 7, Tuple: ft, HasTuple: true})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvSubClosed, Token: 7, Tuple: ft, HasTuple: true, Errno: 103})
	// Whole connection came and went: created+estab+closed all vanish.
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvCreated, Token: 8})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvEstablished, Token: 8})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvClosed, Token: 8})
	// Addr flapped down and back inside one window: both vanish.
	addr := netip.MustParseAddr("10.0.0.1")
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvLocalAddrDown, Addr: addr})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvLocalAddrUp, Addr: addr})
	// A survivor, to prove unrelated events pass through untouched.
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: 9, RTO: time.Second})
	w.s.Run()
	if len(w.events) != 1 || w.events[0].Kind != nlmsg.EvTimeout || w.events[0].Token != 9 {
		t.Fatalf("delivered = %+v, want just the timeout", w.events)
	}
	if w.pm.EventsCoalesced != 7 {
		t.Fatalf("coalesced = %d, want 7", w.pm.EventsCoalesced)
	}
	if w.pm.EventsSent != 1 {
		t.Fatalf("sent = %d, want 1", w.pm.EventsSent)
	}
}

func TestCoalescingClosedWithoutCreatedStillDelivered(t *testing.T) {
	// The connection existed before the window opened: closed must still
	// reach the subscriber even though it swallows queued same-token events.
	w := newCtlWorld(t, 22)
	w.pm.SetCoalescing(time.Millisecond, 32)
	ft := seg.FourTuple{SrcPort: 3, DstPort: 4}
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvSubEstablished, Token: 5, Tuple: ft, HasTuple: true})
	w.pm.send(&nlmsg.Event{Kind: nlmsg.EvClosed, Token: 5})
	w.s.Run()
	if len(w.events) != 1 || w.events[0].Kind != nlmsg.EvClosed {
		t.Fatalf("delivered = %+v, want just closed", w.events)
	}
	if w.pm.EventsCoalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (the queued sub_estab)", w.pm.EventsCoalesced)
	}
}

func TestBackpressureDropsOldest(t *testing.T) {
	w := newCtlWorld(t, 23)
	w.pm.SetCoalescing(time.Millisecond, 4)
	for i := 1; i <= 6; i++ {
		w.pm.send(&nlmsg.Event{Kind: nlmsg.EvTimeout, Token: uint32(i), RTO: time.Second})
	}
	w.s.Run()
	if w.pm.EventsDropped != 2 {
		t.Fatalf("dropped = %d, want 2", w.pm.EventsDropped)
	}
	if len(w.events) != 4 {
		t.Fatalf("delivered %d events, want 4", len(w.events))
	}
	for i, ev := range w.events {
		if ev.Token != uint32(i+3) { // oldest two (1, 2) were dropped
			t.Fatalf("survivors = %+v, want tokens 3..6", w.events)
		}
	}
}

func TestLibraryTimer(t *testing.T) {
	s := sim.New(13)
	tr := NewSimTransport(s)
	lib := NewLibrary(tr, SimClock{s}, 1)
	fired := 0
	lib.After(100*time.Millisecond, func() { fired++ })
	cancel := lib.After(200*time.Millisecond, func() { fired++ })
	cancel()
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (one cancelled)", fired)
	}
	if lib.Clock().Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v", lib.Clock().Now())
	}
}
