// Package core implements the paper's contribution (§3): the separation of
// the Multipath TCP control plane from its data plane.
//
// Three pieces cooperate, exactly as in the paper's Figure 1:
//
//   - NetlinkPM, the kernel-side path manager (~1100 LoC of C in the
//     paper): it plugs into the in-kernel path-manager interface
//     (mptcp.PathManager) and re-exposes it as Netlink event messages,
//     while accepting command messages that create/remove subflows, change
//     backup priorities and retrieve TCP_INFO-like state;
//   - Library, the userspace PM library (~1900 LoC of C in the paper):
//     it hides all Netlink handling behind callbacks and command methods,
//     and is what subflow controllers (internal/controller) link against;
//   - Transport, the message channel between them. The SimTransport adds a
//     calibrated per-message latency (the cost of crossing the
//     kernel/userspace boundary, measured in Fig. 3 as ≈23 µs per
//     event+command round trip); the SocketTransport carries the very same
//     bytes over a real OS pipe or socket for cmd/smappd.
package core

import (
	"encoding/binary"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/nlmsg"
	"repro/internal/sim"
)

// Pipe is one direction of the Netlink channel: ordered, reliable,
// message-oriented (possibly several concatenated messages per send —
// netlink frames are self-delimiting).
type Pipe interface {
	// Send enqueues one marshalled Netlink frame toward the other side.
	// Ownership of b transfers to the pipe: the pipe recycles it into
	// nlmsg.Wire once the receiver returns, so the sender must not touch
	// b afterwards and the receiver must not retain it (or anything
	// parsed in place from it) past the callback.
	Send(b []byte)
	// SetReceiver installs the handler invoked for each delivered frame.
	SetReceiver(fn func(b []byte))
}

// Transport bundles the two directions of the kernel↔controller channel.
type Transport struct {
	ToUser   Pipe // kernel → controller (events, replies)
	ToKernel Pipe // controller → kernel (commands)
}

// SimPipe delivers messages on the virtual clock after a modelled latency,
// preserving order (later sends never overtake earlier ones).
type SimPipe struct {
	sim       sim.Clock
	latency   func() time.Duration
	recv      func([]byte)
	lastDue   sim.Time
	Delivered uint64
}

// NewSimPipe creates a pipe whose per-message delay is drawn from latency.
func NewSimPipe(c sim.Clock, latency func() time.Duration) *SimPipe {
	return &SimPipe{sim: c, latency: latency}
}

// Send implements Pipe.
func (p *SimPipe) Send(b []byte) {
	due := p.sim.Now().Add(p.latency())
	if due < p.lastDue {
		due = p.lastDue // FIFO even with jittery latency draws
	}
	p.lastDue = due
	p.sim.Schedule(due, "netlink.deliver", func() {
		p.Delivered++
		if p.recv != nil {
			p.recv(b)
		}
		nlmsg.Wire.Put(b) // receiver returned; the frame is dead
	})
}

// SetReceiver implements Pipe.
func (p *SimPipe) SetReceiver(fn func([]byte)) { p.recv = fn }

// LatencyModel builds a per-message latency generator: a fixed base cost
// plus exponentially distributed jitter, drawn from the simulation RNG.
// The defaults below are calibrated so one event+command round trip costs
// ≈23 µs on average (the Fig. 3 result) on an unloaded host.
func LatencyModel(rng *rand.Rand, base, jitterMean time.Duration) func() time.Duration {
	return func() time.Duration {
		j := time.Duration(rng.ExpFloat64() * float64(jitterMean))
		return base + j
	}
}

// Default Netlink crossing costs (one way).
const (
	// DefaultNetlinkBase is the fixed cost of one kernel↔user crossing.
	DefaultNetlinkBase = 8 * time.Microsecond
	// DefaultNetlinkJitter is the mean of the exponential jitter
	// (scheduler wakeup variance).
	DefaultNetlinkJitter = 3500 * time.Nanosecond
	// StressedNetlinkBase / StressedNetlinkJitter model the paper's
	// CPU-stressed client, where the measured penalty stays below 37 µs.
	StressedNetlinkBase   = 12 * time.Microsecond
	StressedNetlinkJitter = 6 * time.Microsecond
)

// NewSimTransport builds the standard simulated transport with the default
// (unloaded-host) latency model.
func NewSimTransport(c sim.Clock) *Transport {
	lat := LatencyModel(c.Rand(), DefaultNetlinkBase, DefaultNetlinkJitter)
	return &Transport{
		ToUser:   NewSimPipe(c, lat),
		ToKernel: NewSimPipe(c, lat),
	}
}

// NewStressedSimTransport models the CPU-stressed host of §4.5.
func NewStressedSimTransport(c sim.Clock) *Transport {
	lat := LatencyModel(c.Rand(), StressedNetlinkBase, StressedNetlinkJitter)
	return &Transport{
		ToUser:   NewSimPipe(c, lat),
		ToKernel: NewSimPipe(c, lat),
	}
}

// SocketPipe carries the same Netlink bytes over a real byte stream (an OS
// pipe, a Unix socket, a TCP connection). Messages are self-delimiting:
// the nlmsghdr length field frames them. Used by cmd/smappd to run the
// subflow controller across a genuine process boundary.
type SocketPipe struct {
	w  io.Writer
	mu sync.Mutex
}

// NewSocketPipe wraps a writer for sending.
func NewSocketPipe(w io.Writer) *SocketPipe { return &SocketPipe{w: w} }

// Send implements Pipe (synchronous write; callers serialise). The write
// finishes before return, so the frame is recycled immediately.
func (p *SocketPipe) Send(b []byte) {
	p.mu.Lock()
	p.w.Write(b)
	p.mu.Unlock()
	nlmsg.Wire.Put(b)
}

// SetReceiver is a no-op on SocketPipe: reading is pull-based via
// ReadMessages, because the owner decides which goroutine pumps.
func (p *SocketPipe) SetReceiver(fn func([]byte)) {}

// ReadMessages reads framed Netlink messages from r and hands each to fn
// until read error or EOF. It returns the terminating error (io.EOF on
// clean close). Frames come from and return to nlmsg.Wire, so fn must
// not retain the bytes (or in-place parses of them) past its return —
// the same ownership rule every Pipe receiver already lives under.
func ReadMessages(r io.Reader, fn func([]byte)) error {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return err
		}
		total := binary.LittleEndian.Uint32(hdr[:])
		if total < 20 || total > 1<<20 {
			return io.ErrUnexpectedEOF
		}
		buf := nlmsg.Wire.Get()
		if cap(buf) < int(total) {
			buf = make([]byte, total)
		} else {
			buf = buf[:total]
		}
		copy(buf, hdr[:])
		if _, err := io.ReadFull(r, buf[4:]); err != nil {
			nlmsg.Wire.Put(buf)
			return err
		}
		fn(buf)
		nlmsg.Wire.Put(buf)
	}
}
