package runner_test

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// syntheticJob builds a result whose values depend only on the seed,
// through the same deterministic RNG path real experiments use.
func syntheticJob(seed int64) *experiments.Result {
	s := sim.New(seed)
	res := &experiments.Result{
		Name:    "synthetic",
		Samples: map[string]*stats.Sample{},
		Scalars: map[string]float64{},
	}
	res.Scalars["seed"] = float64(seed)
	res.Scalars["draw"] = s.Rand().Float64()
	obs := &stats.Sample{}
	for i := 0; i < 10; i++ {
		obs.Add(s.Rand().NormFloat64())
	}
	res.Samples["obs"] = obs
	return res
}

// scalarsBySeed flattens a run into seed → scalars for comparison.
func scalarsBySeed(m *runner.Multi) map[int64]map[string]float64 {
	out := make(map[int64]map[string]float64)
	for _, sr := range m.PerSeed {
		if sr.Err != nil {
			continue
		}
		out[sr.Seed] = sr.Result.Scalars
	}
	return out
}

// TestDeterminismAcrossParallelism is the runner's core guarantee: the
// same seed set run with 1 worker and with 8 workers yields bit-identical
// per-seed scalars — the pool changes wall-clock interleaving only, never
// the virtual timeline.
func TestDeterminismAcrossParallelism(t *testing.T) {
	for name, job := range map[string]runner.Job{
		"synthetic": syntheticJob,
		"fig2b": func(seed int64) *experiments.Result {
			cfg := experiments.DefaultFig2b()
			cfg.Seed = seed
			cfg.Blocks = 8
			cfg.LossLevels = []float64{0.30} // trim to keep the test quick
			return experiments.Fig2b(cfg)
		},
	} {
		t.Run(name, func(t *testing.T) {
			serial := runner.Run(name, runner.Config{Seeds: 6, BaseSeed: 10, Parallel: 1}, job)
			parallel := runner.Run(name, runner.Config{Seeds: 6, BaseSeed: 10, Parallel: 8}, job)
			if !reflect.DeepEqual(scalarsBySeed(serial), scalarsBySeed(parallel)) {
				t.Fatalf("per-seed scalars differ between parallel 1 and 8:\n%v\nvs\n%v",
					scalarsBySeed(serial), scalarsBySeed(parallel))
			}
			// Raw per-seed observations must match bit for bit too.
			for i := range serial.PerSeed {
				a := serial.PerSeed[i].Result.Samples
				b := parallel.PerSeed[i].Result.Samples
				for k := range a {
					if !reflect.DeepEqual(a[k].Values(), b[k].Values()) {
						t.Fatalf("seed %d sample %q differs", serial.PerSeed[i].Seed, k)
					}
				}
			}
		})
	}
}

// TestSeedOrdering checks results land ordered by seed regardless of the
// completion order the pool produces.
func TestSeedOrdering(t *testing.T) {
	m := runner.Run("order", runner.Config{Seeds: 32, BaseSeed: 100, Parallel: 8}, syntheticJob)
	if len(m.PerSeed) != 32 {
		t.Fatalf("got %d results", len(m.PerSeed))
	}
	for i, sr := range m.PerSeed {
		if sr.Seed != 100+int64(i) {
			t.Fatalf("slot %d holds seed %d", i, sr.Seed)
		}
		if got := sr.Result.Scalars["seed"]; got != float64(sr.Seed) {
			t.Fatalf("slot %d holds result for seed %g", i, got)
		}
	}
}

// TestPanicIsolation: one exploding seed becomes an error; the rest of
// the sweep completes.
func TestPanicIsolation(t *testing.T) {
	m := runner.Run("boom", runner.Config{Seeds: 8, BaseSeed: 1, Parallel: 4}, func(seed int64) *experiments.Result {
		if seed == 5 {
			panic(fmt.Sprintf("seed %d exploded", seed))
		}
		return syntheticJob(seed)
	})
	failed := m.Failed()
	if len(failed) != 1 || failed[0].Seed != 5 {
		t.Fatalf("failed = %+v, want exactly seed 5", failed)
	}
	ok := 0
	for _, sr := range m.PerSeed {
		if sr.Err == nil && sr.Result != nil {
			ok++
		}
	}
	if ok != 7 {
		t.Fatalf("%d seeds succeeded, want 7", ok)
	}
	// The aggregate must simply skip the failed seed.
	if n := m.ScalarSummary()["seed"].N(); n != 7 {
		t.Fatalf("aggregate over %d seeds, want 7", n)
	}
}

// TestAggregation checks the scalar summary and sample pooling math.
func TestAggregation(t *testing.T) {
	m := runner.Run("agg", runner.Config{Seeds: 4, BaseSeed: 1, Parallel: 2}, func(seed int64) *experiments.Result {
		res := &experiments.Result{
			Name:    "agg",
			Samples: map[string]*stats.Sample{"d": {}},
			Scalars: map[string]float64{"x": float64(seed)},
		}
		res.Samples["d"].Add(float64(seed), float64(seed)+0.5)
		return res
	})
	x := m.ScalarSummary()["x"]
	if x.N() != 4 || math.Abs(x.Mean()-2.5) > 1e-12 || x.Min() != 1 || x.Max() != 4 {
		t.Fatalf("scalar summary wrong: %s", x.Summary(""))
	}
	d := m.MergedSamples()["d"]
	if d.N() != 8 {
		t.Fatalf("pooled %d observations, want 8", d.N())
	}
	rep := m.Report()
	for _, want := range []string{"agg × 4 seeds", "scalars across seeds", "pooled distributions"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestDefaults: zero config means one seed, and an explicit base of 0 is
// honoured — a multi-seed run must include the exact seed a single run
// used, never a silently rebased one.
func TestDefaults(t *testing.T) {
	m := runner.Run("def", runner.Config{}, syntheticJob)
	if len(m.PerSeed) != 1 || m.PerSeed[0].Seed != 0 {
		t.Fatalf("defaults ran %+v", m.PerSeed)
	}
	m = runner.Run("zero-base", runner.Config{Seeds: 3, BaseSeed: 0}, syntheticJob)
	for i, sr := range m.PerSeed {
		if sr.Seed != int64(i) {
			t.Fatalf("slot %d ran seed %d, want %d", i, sr.Seed, i)
		}
	}
}
