// Package runner is the concurrent multi-seed experiment harness: it fans
// N independent seeds of one experiment across a bounded pool of worker
// goroutines and aggregates the per-seed results into distributions.
//
// Determinism is preserved per seed because every job builds its own
// sim.Simulator from its seed and shares nothing with the other seeds —
// the worker pool only changes wall-clock interleaving, never the virtual
// timeline. Running the same seed set with Parallel=1 or Parallel=8 yields
// bit-identical per-seed scalars (internal/runner tests enforce this).
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Job runs one experiment for one seed and returns its result. It must be
// self-contained: build the simulator from the seed, touch no shared
// mutable state. Jobs run concurrently on the pool's workers.
type Job func(seed int64) *stats.Result

// Config sizes a multi-seed run.
type Config struct {
	// Seeds is the number of independent seeds; <=0 means 1.
	Seeds int
	// BaseSeed is the first seed; seed i runs with BaseSeed+i. Zero is a
	// valid base (it is honoured, not rebased, so a multi-seed run always
	// includes the exact seed a single run used).
	BaseSeed int64
	// Parallel bounds concurrently running seeds; <=0 means GOMAXPROCS.
	Parallel int
	// OnDone, when non-nil, observes each finished seed (for progress
	// output). It is called from worker goroutines and must be
	// goroutine-safe.
	OnDone func(sr SeedResult)
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Parallel > c.Seeds {
		c.Parallel = c.Seeds
	}
	return c
}

// SeedResult is the outcome of one seed.
type SeedResult struct {
	Seed   int64
	Result *stats.Result // nil when Err != nil
	Err    error         // non-nil when the job panicked
}

// Multi collects every seed of one experiment run.
type Multi struct {
	Name    string
	Config  Config
	PerSeed []SeedResult // ordered by seed, not by completion
}

// Run executes cfg.Seeds seeds of job on cfg.Parallel workers and returns
// the collected results ordered by seed. A panicking seed is captured as
// that seed's Err; the remaining seeds still run.
func Run(name string, cfg Config, job Job) *Multi {
	cfg = cfg.withDefaults()
	out := make([]SeedResult, cfg.Seeds)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Seeds {
					return
				}
				out[i] = runOne(cfg.BaseSeed+int64(i), job)
				if cfg.OnDone != nil {
					cfg.OnDone(out[i])
				}
			}
		}()
	}
	wg.Wait()
	return &Multi{Name: name, Config: cfg, PerSeed: out}
}

// runOne executes a single seed, converting a panic into an error so one
// broken seed cannot take down the whole sweep.
func runOne(seed int64, job Job) (sr SeedResult) {
	sr.Seed = seed
	defer func() {
		if r := recover(); r != nil {
			sr.Result = nil
			sr.Err = fmt.Errorf("seed %d panicked: %v", seed, r)
		}
	}()
	sr.Result = job(seed)
	return sr
}

// Failed lists the seeds whose jobs returned an error.
func (m *Multi) Failed() []SeedResult {
	var out []SeedResult
	for _, sr := range m.PerSeed {
		if sr.Err != nil {
			out = append(out, sr)
		}
	}
	return out
}
