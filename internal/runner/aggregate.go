package runner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// ScalarSummary gathers each headline scalar across every successful seed
// into one stats.Sample per key — the distribution the aggregate report
// summarises as mean/median/p90/min/max.
func (m *Multi) ScalarSummary() map[string]*stats.Sample {
	out := make(map[string]*stats.Sample)
	for _, sr := range m.PerSeed {
		if sr.Err != nil || sr.Result == nil {
			continue
		}
		for k, v := range sr.Result.Scalars {
			s, ok := out[k]
			if !ok {
				s = &stats.Sample{}
				out[k] = s
			}
			s.Add(v)
		}
	}
	return out
}

// WallKeys unions the wall-clock scalar tags of every successful seed
// (stats.Result.MarkWallClock), sorted — what SummaryData.Wall stores.
func (m *Multi) WallKeys() []string {
	set := make(map[string]struct{})
	for _, sr := range m.PerSeed {
		if sr.Err != nil || sr.Result == nil {
			continue
		}
		for _, k := range sr.Result.WallKeys() {
			set[k] = struct{}{}
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MergedSamples pools each named raw distribution across every successful
// seed, so a figure's CDF can be drawn over all seeds' observations
// instead of a single run's.
func (m *Multi) MergedSamples() map[string]*stats.Sample {
	out := make(map[string]*stats.Sample)
	for _, sr := range m.PerSeed {
		if sr.Err != nil || sr.Result == nil {
			continue
		}
		for name, s := range sr.Result.Samples {
			merged, ok := out[name]
			if !ok {
				merged = &stats.Sample{}
				out[name] = merged
			}
			merged.Add(s.Values()...)
		}
	}
	return out
}

// Report renders the aggregate view: run shape, the pooled CDFs of every
// raw distribution, one summary row per headline scalar, and any failed
// seeds.
func (m *Multi) Report() string {
	var b strings.Builder
	ok := 0
	for _, sr := range m.PerSeed {
		if sr.Err == nil {
			ok++
		}
	}
	fmt.Fprintf(&b, "\n===== %s × %d seeds (base %d, parallel %d) =====\n",
		m.Name, m.Config.Seeds, m.Config.BaseSeed, m.Config.Parallel)

	if merged := m.MergedSamples(); len(merged) > 0 {
		fmt.Fprintf(&b, "\n== pooled distributions over %d seeds ==\n", ok)
		b.WriteString(stats.RenderCDFs(64, 16, merged))
	}

	summary := m.ScalarSummary()
	keys := make([]string, 0, len(summary))
	width := len("scalar")
	for k := range summary {
		keys = append(keys, k)
		if len(k) > width {
			width = len(k)
		}
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "\n== scalars across seeds ==\n")
	fmt.Fprintf(&b, "%-*s %5s %10s %10s %10s %10s %10s\n",
		width, "scalar", "n", "mean", "median", "p90", "min", "max")
	for _, k := range keys {
		s := summary[k]
		fmt.Fprintf(&b, "%-*s %5d %10.4g %10.4g %10.4g %10.4g %10.4g\n",
			width, k, s.N(), s.Mean(), s.Median(), s.Quantile(0.9), s.Min(), s.Max())
	}

	if failed := m.Failed(); len(failed) > 0 {
		fmt.Fprintf(&b, "\n== failed seeds ==\n")
		for _, sr := range failed {
			fmt.Fprintf(&b, "seed %d: %v\n", sr.Seed, sr.Err)
		}
	}
	return b.String()
}
