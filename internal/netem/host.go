package netem

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/sim"
)

// Iface is one host network interface: an address bound to an outgoing
// link. Interfaces can be brought up and down at runtime, which is how the
// experiments emulate WiFi/cellular attachment changes.
type Iface struct {
	IfName string
	Addr   netip.Addr
	link   *Link
	up     bool
}

// Up reports whether the interface is administratively up.
func (i *Iface) Up() bool { return i.up }

// Link exposes the interface's outgoing link (for tests and experiments
// that change loss rates mid-run).
func (i *Iface) Link() *Link { return i.link }

// HostStats counts host-level traffic.
type HostStats struct {
	Delivered uint64 // packets handed to the protocol handler
	SentPkts  uint64
	NoRoute   uint64 // sends with no matching up interface
}

// Host is a (possibly multi-homed) end host. A protocol stack attaches via
// SetHandler; address up/down transitions are observable via WatchAddrs,
// which is the substrate for the paper's new_local_addr / del_local_addr
// events.
type Host struct {
	clock     sim.Clock
	name      string
	ifaces    []*Iface
	handler   func(*Packet)
	procDelay func() time.Duration
	watchers  []func(addr netip.Addr, up bool)

	procName string    // preallocated event name for the proc-delay model
	procFn   func(any) // preallocated event callback carrying the packet

	Stats HostStats
}

// NewHost creates a host with no interfaces, scheduling on c (a bare
// *sim.Simulator or a per-shard clock issued by a sim.Fabric).
func NewHost(c sim.Clock, name string) *Host {
	h := &Host{clock: c, name: name}
	h.procName = "host.proc:" + name
	h.procFn = func(a any) {
		pkt := a.(*Packet)
		h.Stats.Delivered++
		h.handler(pkt)
	}
	return h
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// Clock implements Node: the host's scheduling clock. Protocol stacks
// attached to the host must schedule through it so their work stays on the
// host's shard.
func (h *Host) Clock() sim.Clock { return h.clock }

// SetHandler installs the protocol stack receiving inbound packets.
func (h *Host) SetHandler(fn func(*Packet)) { h.handler = fn }

// SetProcDelay installs a per-packet processing-delay model (for example
// lognormal µs-scale jitter in the Fig. 3 experiment). nil disables it.
func (h *Host) SetProcDelay(fn func() time.Duration) { h.procDelay = fn }

// AddIface attaches an address whose egress is the given link and brings it
// up. It returns the interface for later state changes.
func (h *Host) AddIface(ifName string, addr netip.Addr, link *Link) *Iface {
	i := &Iface{IfName: ifName, Addr: addr, link: link, up: true}
	h.ifaces = append(h.ifaces, i)
	return i
}

// Iface looks an interface up by address.
func (h *Host) Iface(addr netip.Addr) *Iface {
	for _, i := range h.ifaces {
		if i.Addr == addr {
			return i
		}
	}
	return nil
}

// Ifaces lists all interfaces in attachment order.
func (h *Host) Ifaces() []*Iface { return h.ifaces }

// Addrs lists the addresses of all up interfaces, in attachment order.
func (h *Host) Addrs() []netip.Addr {
	var out []netip.Addr
	for _, i := range h.ifaces {
		if i.up {
			out = append(out, i.Addr)
		}
	}
	return out
}

// SetIfaceUp changes an interface's state and notifies watchers on
// transitions. Unknown addresses panic: it is always a topology bug.
func (h *Host) SetIfaceUp(addr netip.Addr, up bool) {
	i := h.Iface(addr)
	if i == nil {
		panic(fmt.Sprintf("netem: host %s has no interface %s", h.name, addr))
	}
	if i.up == up {
		return
	}
	i.up = up
	for _, w := range h.watchers {
		w(addr, up)
	}
}

// WatchAddrs registers a callback invoked on every interface up/down
// transition.
func (h *Host) WatchAddrs(fn func(addr netip.Addr, up bool)) {
	h.watchers = append(h.watchers, fn)
}

// Send routes a packet out the interface owning pkt.Src, taking ownership
// of it. Packets with no up interface for their source address are counted
// and dropped, like a kernel with no route.
func (h *Host) Send(pkt *Packet) {
	i := h.Iface(pkt.Src)
	if i == nil || !i.up || i.link == nil {
		h.Stats.NoRoute++
		pkt.Release()
		return
	}
	h.Stats.SentPkts++
	i.link.Send(pkt)
}

// Input implements Node: deliver to the protocol handler, after the
// processing-delay model if one is installed. Ownership of the packet
// passes to the handler (which retires it once handled); a host without a
// handler drops and retires it.
func (h *Host) Input(pkt *Packet) {
	if h.handler == nil {
		pkt.Release()
		return
	}
	if h.procDelay != nil {
		d := h.procDelay()
		if d > 0 {
			h.clock.AfterArg(d, h.procName, h.procFn, pkt)
			return
		}
	}
	h.Stats.Delivered++
	h.handler(pkt)
}
