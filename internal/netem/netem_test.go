package netem

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
)

var (
	ipA = netip.MustParseAddr("10.0.0.1")
	ipB = netip.MustParseAddr("10.0.1.1")
	ipC = netip.MustParseAddr("10.0.2.1")
)

// sink collects delivered packets with timestamps.
type sink struct {
	name string
	sim  *sim.Simulator
	got  []*Packet
	at   []sim.Time
}

func (s *sink) Input(p *Packet) {
	s.got = append(s.got, p)
	s.at = append(s.at, s.sim.Now())
}
func (s *sink) Name() string     { return s.name }
func (s *sink) Clock() sim.Clock { return s.sim }

func mkpkt(src, dst netip.Addr, payload int) *Packet {
	return NewPacket(&seg.Segment{
		Tuple:      seg.FourTuple{SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: 80},
		Flags:      seg.ACK,
		PayloadLen: payload,
	})
}

func TestLinkTiming(t *testing.T) {
	s := sim.New(1)
	dst := &sink{name: "dst", sim: s}
	// 8 Mbps, 10 ms delay: a 1000-byte packet serialises in 1 ms.
	l := NewLink(s, "l", dst, LinkConfig{RateBps: 8e6, Delay: 10 * time.Millisecond})
	pkt := mkpkt(ipA, ipB, 1000-20-ipOverhead)
	if pkt.Size != 1000 {
		t.Fatalf("pkt.Size = %d, want 1000", pkt.Size)
	}
	l.Send(pkt)
	l.Send(mkpkt(ipA, ipB, 1000-20-ipOverhead)) // queued behind the first
	s.Run()
	if len(dst.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(dst.got))
	}
	if dst.at[0] != 11*sim.Millisecond {
		t.Fatalf("first delivery at %v, want 11ms", dst.at[0])
	}
	if dst.at[1] != 12*sim.Millisecond {
		t.Fatalf("second delivery at %v, want 12ms (serialisation back-to-back)", dst.at[1])
	}
	if l.Stats.Sent != 2 || l.Stats.Bytes != 2000 {
		t.Fatalf("stats = %+v", l.Stats)
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	s := sim.New(1)
	dst := &sink{name: "dst", sim: s}
	l := NewLink(s, "l", dst, LinkConfig{Delay: 5 * time.Millisecond})
	l.Send(mkpkt(ipA, ipB, 100))
	s.Run()
	if dst.at[0] != 5*sim.Millisecond {
		t.Fatalf("delivery at %v, want exactly the propagation delay", dst.at[0])
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	s := sim.New(1)
	dst := &sink{name: "dst", sim: s}
	l := NewLink(s, "l", dst, LinkConfig{RateBps: 8e6, QueueCap: 5})
	for i := 0; i < 10; i++ {
		l.Send(mkpkt(ipA, ipB, 1000))
	}
	s.Run()
	if len(dst.got) != 5 {
		t.Fatalf("delivered %d, want 5", len(dst.got))
	}
	if l.Stats.DropQueue != 5 {
		t.Fatalf("queue drops = %d, want 5", l.Stats.DropQueue)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	s := sim.New(1)
	dst := &sink{name: "dst", sim: s}
	l := NewLink(s, "l", dst, LinkConfig{RateBps: 8e6, QueueCap: 5})
	// Send 5, let them serialise, send 5 more: all 10 must arrive.
	for i := 0; i < 5; i++ {
		l.Send(mkpkt(ipA, ipB, 1000))
	}
	s.RunFor(time.Second)
	for i := 0; i < 5; i++ {
		l.Send(mkpkt(ipA, ipB, 1000))
	}
	s.Run()
	if len(dst.got) != 10 || l.Stats.DropQueue != 0 {
		t.Fatalf("delivered %d (drops %d), want 10 (0)", len(dst.got), l.Stats.DropQueue)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	s := sim.New(42)
	dst := &sink{name: "dst", sim: s}
	l := NewLink(s, "l", dst, LinkConfig{Loss: 0.3, QueueCap: 100000})
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(mkpkt(ipA, ipB, 100))
	}
	s.Run()
	lossFrac := float64(l.Stats.LostRand) / n
	if lossFrac < 0.27 || lossFrac > 0.33 {
		t.Fatalf("observed loss %f, want ≈0.30", lossFrac)
	}
	if int(l.Stats.Sent)+int(l.Stats.LostRand) != n {
		t.Fatalf("sent+lost = %d, want %d", l.Stats.Sent+l.Stats.LostRand, n)
	}
}

func TestLinkDown(t *testing.T) {
	s := sim.New(1)
	dst := &sink{name: "dst", sim: s}
	l := NewLink(s, "l", dst, LinkConfig{})
	l.SetUp(false)
	l.Send(mkpkt(ipA, ipB, 100))
	s.Run()
	if len(dst.got) != 0 || l.Stats.DropDown != 1 {
		t.Fatalf("down link passed traffic: %+v", l.Stats)
	}
	l.SetUp(true)
	l.Send(mkpkt(ipA, ipB, 100))
	s.Run()
	if len(dst.got) != 1 {
		t.Fatal("restored link did not pass traffic")
	}
}

func TestLinkCutInFlight(t *testing.T) {
	s := sim.New(1)
	dst := &sink{name: "dst", sim: s}
	l := NewLink(s, "l", dst, LinkConfig{Delay: 10 * time.Millisecond})
	l.Send(mkpkt(ipA, ipB, 100))
	s.RunFor(5 * time.Millisecond)
	l.SetUp(false)
	s.Run()
	if len(dst.got) != 0 {
		t.Fatal("packet survived a link cut while in flight")
	}
}

func TestHostRoutingAndWatchers(t *testing.T) {
	s := sim.New(1)
	peer := &sink{name: "peer", sim: s}
	h := NewHost(s, "h")
	l1 := NewLink(s, "l1", peer, LinkConfig{})
	l2 := NewLink(s, "l2", peer, LinkConfig{})
	h.AddIface("eth0", ipA, l1)
	h.AddIface("eth1", ipB, l2)

	var events []string
	h.WatchAddrs(func(a netip.Addr, up bool) {
		if up {
			events = append(events, "up:"+a.String())
		} else {
			events = append(events, "down:"+a.String())
		}
	})

	h.Send(mkpkt(ipA, ipC, 10))
	h.Send(mkpkt(ipB, ipC, 10))
	s.Run()
	if l1.Stats.Sent != 1 || l2.Stats.Sent != 1 {
		t.Fatalf("packets not routed by source address: l1=%d l2=%d", l1.Stats.Sent, l2.Stats.Sent)
	}

	h.Send(mkpkt(ipC, ipA, 10)) // no such interface
	if h.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", h.Stats.NoRoute)
	}

	h.SetIfaceUp(ipA, false)
	h.SetIfaceUp(ipA, false) // no duplicate event
	h.Send(mkpkt(ipA, ipC, 10))
	if h.Stats.NoRoute != 2 {
		t.Fatal("down interface still routes")
	}
	h.SetIfaceUp(ipA, true)
	if len(events) != 2 || events[0] != "down:10.0.0.1" || events[1] != "up:10.0.0.1" {
		t.Fatalf("watcher events = %v", events)
	}
	if got := h.Addrs(); len(got) != 2 {
		t.Fatalf("Addrs = %v", got)
	}
	h.SetIfaceUp(ipB, false)
	if got := h.Addrs(); len(got) != 1 || got[0] != ipA {
		t.Fatalf("Addrs after down = %v", got)
	}
}

func TestHostHandlerAndProcDelay(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, "h")
	var at []sim.Time
	h.SetHandler(func(p *Packet) { at = append(at, s.Now()) })
	h.SetProcDelay(func() time.Duration { return 25 * time.Microsecond })
	h.Input(mkpkt(ipC, ipA, 10))
	s.Run()
	if len(at) != 1 || at[0] != 25*sim.Microsecond {
		t.Fatalf("handler at %v, want 25µs", at)
	}
	if h.Stats.Delivered != 1 {
		t.Fatalf("Delivered = %d", h.Stats.Delivered)
	}
}

func TestRouterECMP(t *testing.T) {
	s := sim.New(1)
	r := NewRouter(s, "r", 7)
	sinks := make([]*sink, 4)
	links := make([]*Link, 4)
	for i := range sinks {
		sinks[i] = &sink{name: "s", sim: s}
		links[i] = NewLink(s, "l", sinks[i], LinkConfig{})
	}
	r.AddRoute(ipB, links...)

	// Many flows with different source ports must spread over the group,
	// and each flow must stick to one path.
	counts := make([]int, 4)
	for port := 0; port < 400; port++ {
		p := NewPacket(&seg.Segment{
			Tuple: seg.FourTuple{SrcIP: ipA, DstIP: ipB, SrcPort: uint16(10000 + port), DstPort: 80},
			Flags: seg.ACK,
		})
		idx := r.PathFor(ipB, p)
		counts[idx]++
		for k := 0; k < 3; k++ {
			if r.PathFor(ipB, p) != idx {
				t.Fatal("ECMP not per-flow stable")
			}
		}
		r.Input(p)
	}
	s.Run()
	for i, c := range counts {
		if c < 50 {
			t.Fatalf("path %d got only %d of 400 flows: skewed hash %v", i, c, counts)
		}
		if int(links[i].Stats.Sent) != c {
			t.Fatalf("link %d sent %d, PathFor predicted %d", i, links[i].Stats.Sent, c)
		}
	}
}

func TestRouterSymmetricPaths(t *testing.T) {
	s := sim.New(1)
	r := NewRouter(s, "r", 9)
	links := make([]*Link, 4)
	for i := range links {
		links[i] = NewLink(s, "l", &sink{name: "s", sim: s}, LinkConfig{})
	}
	r.AddRoute(ipB, links...)
	r.AddRoute(ipA, links...)
	ft := seg.FourTuple{SrcIP: ipA, DstIP: ipB, SrcPort: 5555, DstPort: 80}
	fwd := NewPacket(&seg.Segment{Tuple: ft, Flags: seg.ACK})
	rev := NewPacket(&seg.Segment{Tuple: ft.Reverse(), Flags: seg.ACK})
	if r.PathFor(ipB, fwd) != r.PathFor(ipA, rev) {
		t.Fatal("forward and reverse directions hash to different paths")
	}
}

func TestRouterDefaultAndNoRoute(t *testing.T) {
	s := sim.New(1)
	r := NewRouter(s, "r", 0)
	dst := &sink{name: "dst", sim: s}
	r.Input(mkpkt(ipA, ipB, 10))
	if r.Stats.NoRoute != 1 {
		t.Fatal("missing route not counted")
	}
	if r.PathFor(ipB, mkpkt(ipA, ipB, 1)) != -1 {
		t.Fatal("PathFor on no route should be -1")
	}
	r.SetDefault(NewLink(s, "l", dst, LinkConfig{}))
	r.Input(mkpkt(ipA, ipB, 10))
	s.Run()
	if len(dst.got) != 1 {
		t.Fatal("default route unused")
	}
}

func TestMiddleboxIdleExpiry(t *testing.T) {
	s := sim.New(1)
	a := &sink{name: "a", sim: s}
	b := &sink{name: "b", sim: s}
	m := NewMiddlebox(s, "nat", 180*time.Second, ExpiryDrop)
	m.AddRoute(ipA, NewLink(s, "toA", a, LinkConfig{}))
	m.AddRoute(ipB, NewLink(s, "toB", b, LinkConfig{}))

	syn := NewPacket(&seg.Segment{Tuple: seg.FourTuple{SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2}, Flags: seg.SYN})
	m.Input(syn)
	s.Run()
	if len(b.got) != 1 {
		t.Fatal("SYN not forwarded")
	}
	if m.FlowCount() != 1 {
		t.Fatalf("FlowCount = %d", m.FlowCount())
	}

	// Activity within the timeout refreshes state — traffic passes.
	s.RunFor(100 * time.Second)
	m.Input(mkpktTuple(ipA, ipB, 1, 2))
	s.RunFor(100 * time.Second)
	m.Input(mkpktTuple(ipB, ipA, 2, 1)) // reverse direction refreshes too
	s.Run()
	if len(b.got) != 2 || len(a.got) != 1 {
		t.Fatalf("mid-flow refresh failed: a=%d b=%d", len(a.got), len(b.got))
	}

	// Silence past the timeout: next packet is eaten.
	s.RunFor(200 * time.Second)
	m.Input(mkpktTuple(ipA, ipB, 1, 2))
	s.Run()
	if len(b.got) != 2 {
		t.Fatal("packet traversed expired NAT state")
	}
	if m.Stats.Expired != 1 {
		t.Fatalf("Expired = %d", m.Stats.Expired)
	}
	if m.FlowCount() != 0 {
		t.Fatalf("FlowCount after expiry = %d", m.FlowCount())
	}

	// A fresh SYN reinstalls state.
	m.Input(syn)
	s.Run()
	if len(b.got) != 3 {
		t.Fatal("re-SYN did not reinstall state")
	}
}

func TestMiddleboxRSTPolicy(t *testing.T) {
	s := sim.New(1)
	a := &sink{name: "a", sim: s}
	b := &sink{name: "b", sim: s}
	m := NewMiddlebox(s, "fw", 10*time.Second, ExpiryRST)
	m.AddRoute(ipA, NewLink(s, "toA", a, LinkConfig{}))
	m.AddRoute(ipB, NewLink(s, "toB", b, LinkConfig{}))
	m.Input(NewPacket(&seg.Segment{Tuple: seg.FourTuple{SrcIP: ipA, DstIP: ipB, SrcPort: 1, DstPort: 2}, Flags: seg.SYN}))
	s.RunFor(60 * time.Second)
	m.Input(mkpktTuple(ipA, ipB, 1, 2))
	s.Run()
	if m.Stats.RSTInjected != 1 {
		t.Fatalf("RSTInjected = %d, want 1", m.Stats.RSTInjected)
	}
	// The RST goes back to the sender (host A).
	last := a.got[len(a.got)-1]
	if !last.Seg.Is(seg.RST) {
		t.Fatalf("host A got %v, want RST", last.Seg)
	}
	if last.Seg.Tuple.SrcPort != 2 || last.Seg.Tuple.DstPort != 1 {
		t.Fatalf("RST tuple not reversed: %v", last.Seg.Tuple)
	}
}

func mkpktTuple(src, dst netip.Addr, sp, dp uint16) *Packet {
	return NewPacket(&seg.Segment{
		Tuple: seg.FourTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp},
		Flags: seg.ACK, PayloadLen: 10,
	})
}

// Property: FlowHash is direction-symmetric and deterministic, and distinct
// seeds give (almost always) different assignments over many tuples.
func TestQuickFlowHashSymmetry(t *testing.T) {
	f := func(sp, dp uint16, seed uint64) bool {
		ft := seg.FourTuple{SrcIP: ipA, DstIP: ipB, SrcPort: sp, DstPort: dp}
		return FlowHash(ft, seed) == FlowHash(ft.Reverse(), seed) &&
			FlowHash(ft, seed) == FlowHash(ft, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplex(t *testing.T) {
	s := sim.New(1)
	a := &sink{name: "a", sim: s}
	b := &sink{name: "b", sim: s}
	d := NewDuplex("d", a, b, LinkConfig{Delay: time.Millisecond})
	d.AB.Send(mkpkt(ipA, ipB, 10))
	d.BA.Send(mkpkt(ipB, ipA, 10))
	s.Run()
	if len(a.got) != 1 || len(b.got) != 1 {
		t.Fatal("duplex halves misrouted")
	}
	d.SetLoss(1.0)
	d.AB.Send(mkpkt(ipA, ipB, 10))
	s.Run()
	if len(b.got) != 1 {
		t.Fatal("SetLoss(1.0) did not drop")
	}
	d.SetUp(false)
	if d.AB.Up() || d.BA.Up() {
		t.Fatal("SetUp(false) incomplete")
	}
}
