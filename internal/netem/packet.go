// Package netem emulates the network substrate the paper's Mininet
// experiments run on: rate/delay/loss links with drop-tail queues, ECMP
// routers hashing the TCP 4-tuple, multi-homed hosts whose interfaces can go
// up and down at runtime, and a stateful middlebox with idle timeouts (the
// NAT/firewall of §4.1). Everything runs on a sim.Simulator virtual clock,
// so topologies are deterministic and seedable.
package netem

import (
	"hash/fnv"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/seg"
	"repro/internal/sim"
)

// ipOverhead approximates per-packet IP+link framing bytes added on top of
// the TCP wire image when computing serialisation times.
const ipOverhead = 40

// Packet is one IP datagram carrying a TCP segment. The sending stack
// transfers ownership of both the shell and the segment into the network
// with Send; whichever node drops or consumes the packet Releases it (see
// DESIGN.md "Segment ownership"), so the steady-state forwarding path
// performs no heap allocation.
type Packet struct {
	Src, Dst netip.Addr
	Seg      *seg.Segment
	Size     int // total wire bytes incl. IP overhead
}

// packetPool recycles packet shells across all simulations (sync.Pool is
// safe under the concurrent multi-seed runner).
var packetPool = sync.Pool{New: func() any {
	packetPoolNews.Add(1)
	return new(Packet)
}}

// Packet-shell pool traffic, process-wide like the pool itself. Atomics
// keep them safe under the concurrent multi-seed runner without adding
// allocation to the forwarding path.
var packetPoolGets, packetPoolPuts, packetPoolNews atomic.Uint64

// PacketPoolStats snapshots the packet-shell pool counters: shells
// handed out, shells retired, and Gets that heap-allocated (News is
// GC-dependent, so treat it as a wall-clock-class value).
func PacketPoolStats() (gets, puts, news uint64) {
	return packetPoolGets.Load(), packetPoolPuts.Load(), packetPoolNews.Load()
}

// NewPacket wraps a segment, computing the wire size. The shell comes
// from a pool; ownership of s transfers to the packet.
func NewPacket(s *seg.Segment) *Packet {
	packetPoolGets.Add(1)
	p := packetPool.Get().(*Packet)
	p.Src = s.Tuple.SrcIP
	p.Dst = s.Tuple.DstIP
	p.Seg = s
	p.Size = s.WireSize() + ipOverhead
	return p
}

// Release retires the packet shell — and its segment, if still attached —
// to their pools. A consumer that keeps the segment (the receiving
// endpoint) detaches it by nilling p.Seg first. p must not be used after
// Release.
func (p *Packet) Release() {
	if p == nil {
		return
	}
	if p.Seg != nil {
		seg.Shared.Put(p.Seg)
		p.Seg = nil
	}
	p.Src, p.Dst = netip.Addr{}, netip.Addr{}
	p.Size = 0
	packetPoolPuts.Add(1)
	packetPool.Put(p)
}

// Node is anything that can receive packets: hosts, routers, middleboxes.
type Node interface {
	// Input delivers a packet to the node at the current virtual time.
	Input(pkt *Packet)
	// Name identifies the node in traces.
	Name() string
	// Clock is the node's scheduling clock; under a sharded world it pins
	// the node (and everything it owns) to one shard's event loop.
	Clock() sim.Clock
}

// FlowHash hashes a 4-tuple for ECMP path selection. The tuple is
// canonicalised (both directions of a flow hash identically) so forward and
// return traffic of a subflow take the same emulated path, matching the
// symmetric-path Mininet topologies in the paper. The seed lets different
// routers (or different experiment trials) use independent hash functions.
func FlowHash(ft seg.FourTuple, seed uint64) uint64 {
	a := addrPort{ft.SrcIP, ft.SrcPort}
	b := addrPort{ft.DstIP, ft.DstPort}
	if b.less(a) {
		a, b = b, a
	}
	h := fnv.New64a()
	var sb [8]byte
	for i := 0; i < 8; i++ {
		sb[i] = byte(seed >> (8 * i))
	}
	h.Write(sb[:])
	writeAddrPort(h, a)
	writeAddrPort(h, b)
	return h.Sum64()
}

type addrPort struct {
	ip   netip.Addr
	port uint16
}

func (x addrPort) less(y addrPort) bool {
	if c := x.ip.Compare(y.ip); c != 0 {
		return c < 0
	}
	return x.port < y.port
}

func writeAddrPort(h interface{ Write([]byte) (int, error) }, ap addrPort) {
	h.Write(ap.ip.AsSlice())
	h.Write([]byte{byte(ap.port >> 8), byte(ap.port)})
}
