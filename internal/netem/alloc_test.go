package netem

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// TestLinkDeliveryAllocFree pins the tentpole property: once pools are
// warm, pushing a pooled segment through host→link→host (serialisation +
// propagation events included) performs no heap allocation. A regression
// here means a make([]byte)/closure/Event allocation crept back into the
// per-packet path.
func TestLinkDeliveryAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	s := sim.New(1)
	src := netip.MustParseAddr("10.0.0.1")
	dstAddr := netip.MustParseAddr("10.0.0.2")

	rx := NewHost(s, "rx")
	delivered := 0
	rx.SetHandler(func(p *Packet) {
		delivered++
		p.Release() // consume: retire segment + shell
	})
	tx := NewHost(s, "tx")
	wire := NewLink(s, "wire", rx, LinkConfig{RateBps: 1e9, Delay: time.Millisecond})
	tx.AddIface("eth0", src, wire)

	send := func() {
		sg := seg.Shared.Get()
		sg.Tuple = seg.FourTuple{SrcIP: src, DstIP: dstAddr, SrcPort: 1000, DstPort: 80}
		sg.Seq, sg.Ack = 5, 6
		sg.Flags = seg.ACK | seg.PSH
		sg.Window = 1 << 20
		sg.PayloadLen = 1380
		d := sg.ScratchDSS()
		d.HasMap, d.DataSeq, d.MapLen = true, 99, 1380
		tx.Send(NewPacket(sg))
		s.RunFor(5 * time.Millisecond) // drain serialisation + delivery
	}

	// Warm the segment/packet/event pools.
	for i := 0; i < 128; i++ {
		send()
	}
	before := delivered
	avg := testing.AllocsPerRun(2000, send)
	if delivered <= before {
		t.Fatal("packets were not delivered")
	}
	if avg > 0.05 {
		t.Fatalf("in-memory link delivery allocates %.2f allocs/op, want ~0", avg)
	}
}

// TestLinkDeliveryAllocFreeTraced repeats the alloc-free delivery check
// with a trace recorder attached to the link: the enqueue/deliver hooks
// must be stores into the preallocated ring, adding zero allocations to
// the per-packet path.
func TestLinkDeliveryAllocFreeTraced(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	s := sim.New(1)
	src := netip.MustParseAddr("10.0.0.1")
	dstAddr := netip.MustParseAddr("10.0.0.2")

	rx := NewHost(s, "rx")
	delivered := 0
	rx.SetHandler(func(p *Packet) {
		delivered++
		p.Release()
	})
	tx := NewHost(s, "tx")
	wire := NewLink(s, "wire", rx, LinkConfig{RateBps: 1e9, Delay: time.Millisecond})
	tr := trace.New(1 << 10)
	wire.SetTrace(tr.Shard("net"), tr.Register(trace.EntLink, 0, wire.Name()))
	tx.AddIface("eth0", src, wire)

	send := func() {
		sg := seg.Shared.Get()
		sg.Tuple = seg.FourTuple{SrcIP: src, DstIP: dstAddr, SrcPort: 1000, DstPort: 80}
		sg.Flags = seg.ACK | seg.PSH
		sg.PayloadLen = 1380
		tx.Send(NewPacket(sg))
		s.RunFor(5 * time.Millisecond)
	}
	for i := 0; i < 128; i++ {
		send()
	}
	before := delivered
	avg := testing.AllocsPerRun(2000, send)
	if delivered <= before {
		t.Fatal("packets were not delivered")
	}
	if tr.Shard("net").Len() == 0 {
		t.Fatal("nothing was recorded")
	}
	if avg > 0.05 {
		t.Fatalf("traced link delivery allocates %.2f allocs/op, want ~0", avg)
	}
}

// TestDropsRecyclePackets checks the other half of the ownership contract:
// packets dropped inside the fabric (link down, queue overflow, random
// loss, no route) are retired to the pools rather than leaked, so lossy
// runs stay allocation-free too.
func TestDropsRecyclePackets(t *testing.T) {
	s := sim.New(1)
	src := netip.MustParseAddr("10.0.0.1")
	rx := NewHost(s, "rx")
	rx.SetHandler(func(p *Packet) { p.Release() })
	wire := NewLink(s, "wire", rx, LinkConfig{RateBps: 1e9, Delay: time.Millisecond, Loss: 1.0})

	gets0 := seg.Shared.Stats()
	for i := 0; i < 50; i++ {
		sg := seg.Shared.Get()
		sg.Tuple = seg.FourTuple{SrcIP: src, DstIP: src, SrcPort: 1, DstPort: 2}
		wire.Send(NewPacket(sg))
		s.RunFor(5 * time.Millisecond)
	}
	st := seg.Shared.Stats()
	if puts := st.Puts - gets0.Puts; puts < 50 {
		t.Fatalf("only %d of 50 dropped segments were retired to the pool", puts)
	}
	if wire.Stats.LostRand != 50 {
		t.Fatalf("expected 50 random losses, got %d", wire.Stats.LostRand)
	}
}
