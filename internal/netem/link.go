package netem

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// LinkStats counts traffic through one unidirectional link. The fields
// are split by which end of the link owns them: Sent/Bytes/DropCut are
// written at delivery time (the destination's shard under a sharded
// world), everything else at enqueue time (the source's shard), so the
// two sides never write the same word concurrently.
type LinkStats struct {
	Sent      uint64 // packets delivered to the far end
	Bytes     uint64 // bytes delivered
	LostRand  uint64 // packets dropped by the random-loss model
	DropQueue uint64 // packets dropped because the queue was full
	DropDown  uint64 // packets dropped at enqueue because the link was down
	DropCut   uint64 // packets cut in flight by the link going down
}

// Link is a unidirectional link with a serialisation rate, propagation
// delay, Bernoulli random loss, and a drop-tail queue bounded in packets.
// A duplex link is simply a pair. Loss and up/down state can change while
// the simulation runs (the experiments in §4.2/§4.3 raise the loss ratio
// mid-transfer).
type Link struct {
	clock    sim.Clock // the source side's loop: owns the transmitter state
	dstClock sim.Clock // the destination node's loop: owns delivery
	name     string
	dst      Node
	rate     float64 // bits per second; 0 means infinite
	delay    time.Duration
	loss     float64 // probability in [0,1]
	qcap     int     // max queued packets awaiting serialisation
	up       bool    // reconfigured only at barriers (globals) or while paused

	busyUntil sim.Time // when the transmitter frees up
	queued    int      // packets scheduled but not yet serialised

	// Preallocated event callbacks and names: every packet schedules two
	// events (serialisation-done, delivery), and reusing one func value and
	// one name string per link keeps the per-packet path allocation-free.
	serName, dlvName string
	serFn, dlvFn     func(any)

	// Trace recording (nil shard = off): enqueue/drop/deliver events
	// for the per-link utilisation and drop analysis.
	tsh *trace.Shard
	tid uint32

	Stats LinkStats
}

// LinkConfig bundles the constructor parameters for a Link.
type LinkConfig struct {
	RateBps  float64       // serialisation rate in bits/s (0 = infinite)
	Delay    time.Duration // one-way propagation delay
	Loss     float64       // Bernoulli loss probability
	QueueCap int           // drop-tail queue capacity in packets (0 = default 100)
}

// DefaultQueueCap is the drop-tail queue depth used when LinkConfig leaves
// QueueCap zero. 100 packets matches Mininet's default TXQueueLen.
const DefaultQueueCap = 100

// NewLink creates a link delivering to dst. c is the clock of the node
// the link transmits from: the link derives its own clock (and random
// stream) on the same event loop. When source and destination live on
// different shards of a sim.World, the link registers itself as a
// cross-shard crossing whose propagation delay bounds the world's
// conservative lookahead.
func NewLink(c sim.Clock, name string, dst Node, cfg LinkConfig) *Link {
	qcap := cfg.QueueCap
	if qcap == 0 {
		qcap = DefaultQueueCap
	}
	l := &Link{
		clock:    c.Derive("link:" + name),
		dstClock: dst.Clock(),
		name:     name,
		dst:      dst,
		rate:     cfg.RateBps,
		delay:    cfg.Delay,
		loss:     cfg.Loss,
		qcap:     qcap,
		up:       true,
	}
	if w := sim.WorldOf(l.clock); w != nil {
		w.Crossing(name, l.clock, l.dstClock, cfg.Delay)
	}
	l.serName = "link.serialized:" + name
	l.dlvName = "link.deliver:" + name
	l.serFn = func(any) { l.queued-- }
	l.dlvFn = func(a any) {
		// Runs on the destination's loop; it may only touch
		// delivery-owned state (Sent/Bytes/DropCut, the packet, dst).
		pkt := a.(*Packet)
		if !l.up { // cut while in flight
			l.Stats.DropCut++
			l.trace(trace.KLinkDrop, pkt.Size, trace.DropDown)
			pkt.Release()
			return
		}
		l.Stats.Sent++
		l.Stats.Bytes += uint64(pkt.Size)
		l.trace(trace.KLinkDlv, pkt.Size, 0)
		l.dst.Input(pkt)
	}
	return l
}

// SetTrace binds the link to a trace shard under the given entity id
// (nil shard = tracing off).
func (l *Link) SetTrace(sh *trace.Shard, id uint32) {
	l.tsh = sh
	l.tid = id
}

// trace records one link event; a nil-guarded store, no allocation.
// Tracing is only enabled on single-shard runs, where both link clocks
// read the same loop time.
func (l *Link) trace(k trace.Kind, size int, flag uint8) {
	if l.tsh == nil {
		return
	}
	l.tsh.Rec(l.clock.Now(), k, l.tid, 0, uint32(size), 0, flag)
}

// Name identifies the link in traces.
func (l *Link) Name() string { return l.name }

// Dst reports the node this link delivers to.
func (l *Link) Dst() Node { return l.dst }

// Delay reports the configured propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// SetLoss changes the random loss probability, effective immediately.
func (l *Link) SetLoss(p float64) { l.loss = p }

// Loss reports the current loss probability.
func (l *Link) Loss() float64 { return l.loss }

// SetUp raises or cuts the link. While down every packet is dropped.
func (l *Link) SetUp(up bool) { l.up = up }

// Up reports whether the link is passing traffic.
func (l *Link) Up() bool { return l.up }

// Send enqueues a packet for transmission, taking ownership of it. Drops
// (queue overflow, random loss, link down) are silent, as on a real wire;
// counters record them and the packet is retired to the pool.
func (l *Link) Send(pkt *Packet) {
	if !l.up {
		l.Stats.DropDown++
		l.trace(trace.KLinkDrop, pkt.Size, trace.DropDown)
		pkt.Release()
		return
	}
	if l.queued >= l.qcap {
		l.Stats.DropQueue++
		l.trace(trace.KLinkDrop, pkt.Size, trace.DropQueue)
		pkt.Release()
		return
	}
	l.trace(trace.KLinkEnq, pkt.Size, 0)
	// The loss draw happens at enqueue time; one draw per packet.
	lost := l.loss > 0 && l.clock.Rand().Float64() < l.loss

	now := l.clock.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	var ser time.Duration
	if l.rate > 0 {
		ser = time.Duration(float64(pkt.Size*8) / l.rate * float64(time.Second))
	}
	l.busyUntil = start.Add(ser)
	l.queued++
	deliverAt := l.busyUntil.Add(l.delay)
	l.clock.ScheduleArg(l.busyUntil, l.serName, l.serFn, nil)
	if lost {
		l.Stats.LostRand++
		l.trace(trace.KLinkDrop, pkt.Size, trace.DropLoss)
		pkt.Release()
		return
	}
	// Delivery runs on the destination's loop; SendTo posts it through
	// the cross-shard mailbox when that loop is another shard.
	l.clock.SendTo(l.dstClock, deliverAt, l.dlvName, l.dlvFn, pkt)
}

// Duplex is a bidirectional link: two independent unidirectional halves
// with (usually) identical configuration.
type Duplex struct {
	AB *Link // a → b
	BA *Link // b → a
}

// NewDuplex wires two nodes together with symmetric characteristics. Each
// half schedules on its transmitting node's clock, so the pair straddles a
// shard boundary cleanly when a and b live on different shards.
func NewDuplex(name string, a, b Node, cfg LinkConfig) *Duplex {
	return &Duplex{
		AB: NewLink(a.Clock(), fmt.Sprintf("%s:%s->%s", name, a.Name(), b.Name()), b, cfg),
		BA: NewLink(b.Clock(), fmt.Sprintf("%s:%s->%s", name, b.Name(), a.Name()), a, cfg),
	}
}

// SetLoss sets the loss probability on both directions.
func (d *Duplex) SetLoss(p float64) {
	d.AB.SetLoss(p)
	d.BA.SetLoss(p)
}

// SetUp raises or cuts both directions.
func (d *Duplex) SetUp(up bool) {
	d.AB.SetUp(up)
	d.BA.SetUp(up)
}
