package netem

import (
	"net/netip"

	"repro/internal/sim"
)

// RouterStats counts router activity.
type RouterStats struct {
	Forwarded uint64
	NoRoute   uint64
}

// Router forwards packets by destination address. A destination may map to
// several parallel links — an ECMP group — in which case the router picks
// one by hashing the canonicalised TCP 4-tuple, exactly like the flow-level
// load balancers of §4.4: subflows with different source ports land on
// different (but per-flow stable) paths.
type Router struct {
	clock    sim.Clock
	name     string
	routes   map[netip.Addr][]*Link
	fallback []*Link
	hashSeed uint64

	Stats RouterStats
}

// NewRouter creates an empty router. hashSeed perturbs the ECMP hash so
// distinct trials explore different subflow→path assignments, as different
// random source ports would on real hardware.
func NewRouter(c sim.Clock, name string, hashSeed uint64) *Router {
	return &Router{clock: c, name: name, routes: make(map[netip.Addr][]*Link), hashSeed: hashSeed}
}

// Name implements Node.
func (r *Router) Name() string { return r.name }

// Clock implements Node.
func (r *Router) Clock() sim.Clock { return r.clock }

// AddRoute appends links to the ECMP group for dst.
func (r *Router) AddRoute(dst netip.Addr, links ...*Link) {
	r.routes[dst] = append(r.routes[dst], links...)
}

// SetDefault installs the fallback ECMP group used when no specific route
// matches.
func (r *Router) SetDefault(links ...*Link) { r.fallback = links }

// PathFor reports which ECMP index a tuple hashes to for dst (for tests and
// experiment ground truth). It returns -1 when no route exists.
func (r *Router) PathFor(dst netip.Addr, pkt *Packet) int {
	links := r.routes[dst]
	if links == nil {
		links = r.fallback
	}
	switch {
	case len(links) == 0:
		return -1
	case len(links) == 1:
		return 0
	default:
		return int(FlowHash(pkt.Seg.Tuple, r.hashSeed) % uint64(len(links)))
	}
}

// Input implements Node: forward the packet (ownership passes to the
// egress link; unroutable packets are retired).
func (r *Router) Input(pkt *Packet) {
	links := r.routes[pkt.Dst]
	if links == nil {
		links = r.fallback
	}
	if len(links) == 0 {
		r.Stats.NoRoute++
		pkt.Release()
		return
	}
	idx := 0
	if len(links) > 1 {
		idx = int(FlowHash(pkt.Seg.Tuple, r.hashSeed) % uint64(len(links)))
	}
	r.Stats.Forwarded++
	links[idx].Send(pkt)
}
