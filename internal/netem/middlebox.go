package netem

import (
	"net/netip"
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
)

// ExpiryPolicy selects what a Middlebox does with packets of a flow whose
// state it has expired.
type ExpiryPolicy int

// Expiry policies observed in deployed NATs/firewalls (Hätönen et al.,
// cited as [9] in the paper): most devices silently drop, some answer RST.
const (
	ExpiryDrop ExpiryPolicy = iota
	ExpiryRST
)

// MiddleboxStats counts middlebox activity.
type MiddleboxStats struct {
	Forwarded   uint64
	Expired     uint64 // packets hitting expired state
	RSTInjected uint64
	FlowsSeen   uint64
}

// Middlebox is a transparent stateful NAT/firewall: it forwards packets by
// destination, tracks per-flow state keyed by the canonicalised 4-tuple,
// and expires state after an idle timeout. §4.1 of the paper is about
// keeping long-lived connections alive through exactly this device: many
// deployed boxes expire idle state after a few hundred seconds even though
// the IETF recommends ≥ 2h04m.
type Middlebox struct {
	clock       sim.Clock
	name        string
	routes      map[netip.Addr]*Link
	idleTimeout time.Duration
	policy      ExpiryPolicy
	flows       map[flowKey]sim.Time // last activity

	Stats MiddleboxStats
}

type flowKey struct {
	a, b addrPort
}

func canonicalKey(ft seg.FourTuple) flowKey {
	a := addrPort{ft.SrcIP, ft.SrcPort}
	b := addrPort{ft.DstIP, ft.DstPort}
	if b.less(a) {
		a, b = b, a
	}
	return flowKey{a, b}
}

// NewMiddlebox creates a middlebox with the given idle timeout and expiry
// policy.
func NewMiddlebox(c sim.Clock, name string, idle time.Duration, policy ExpiryPolicy) *Middlebox {
	return &Middlebox{
		clock:       c,
		name:        name,
		routes:      make(map[netip.Addr]*Link),
		idleTimeout: idle,
		policy:      policy,
		flows:       make(map[flowKey]sim.Time),
	}
}

// Name implements Node.
func (m *Middlebox) Name() string { return m.name }

// Clock implements Node.
func (m *Middlebox) Clock() sim.Clock { return m.clock }

// AddRoute wires the egress link for a destination address.
func (m *Middlebox) AddRoute(dst netip.Addr, l *Link) { m.routes[dst] = l }

// FlowCount reports the number of live (unexpired as of now) flow entries.
func (m *Middlebox) FlowCount() int {
	n := 0
	for _, last := range m.flows {
		if m.clock.Now()-last <= sim.Time(m.idleTimeout) {
			n++
		}
	}
	return n
}

// Input implements Node.
func (m *Middlebox) Input(pkt *Packet) {
	key := canonicalKey(pkt.Seg.Tuple)
	now := m.clock.Now()
	last, known := m.flows[key]
	switch {
	case pkt.Seg.Is(seg.SYN):
		// New flow attempts (re)install state.
		if !known {
			m.Stats.FlowsSeen++
		}
		m.flows[key] = now
	case known && now-last <= sim.Time(m.idleTimeout):
		m.flows[key] = now // refresh
	default:
		// Expired or never-seen mid-flow packet.
		m.Stats.Expired++
		delete(m.flows, key)
		if m.policy == ExpiryRST {
			m.injectRST(pkt)
		}
		pkt.Release()
		return
	}
	m.forward(pkt)
}

func (m *Middlebox) forward(pkt *Packet) {
	l := m.routes[pkt.Dst]
	if l == nil {
		pkt.Release()
		return
	}
	m.Stats.Forwarded++
	l.Send(pkt)
}

// injectRST answers the sender of pkt with a RST, as some firewalls do for
// flows they no longer track. pkt is only read; the caller still owns it.
func (m *Middlebox) injectRST(pkt *Packet) {
	rst := seg.Shared.Get()
	rst.Tuple = pkt.Seg.Tuple.Reverse()
	rst.Seq = pkt.Seg.Ack
	rst.Ack = pkt.Seg.SeqEnd()
	rst.Flags = seg.RST | seg.ACK
	back := NewPacket(rst)
	if l := m.routes[back.Dst]; l != nil {
		m.Stats.RSTInjected++
		l.Send(back)
	} else {
		back.Release()
	}
}
