package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testutil"
)

func TestRingDropsOldest(t *testing.T) {
	tr := New(4)
	sh := tr.Shard("h")
	for i := 0; i < 10; i++ {
		sh.Rec(sim.Time(i), KSend, 1, uint64(i), 1, 0, 0)
	}
	if got := sh.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := sh.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	d := tr.Snapshot()
	if len(d.Records) != 4 {
		t.Fatalf("snapshot records = %d, want 4", len(d.Records))
	}
	for i, r := range d.Records {
		if want := uint64(6 + i); r.Seq != want {
			t.Fatalf("record %d seq = %d, want %d (oldest must be dropped first)", i, r.Seq, want)
		}
	}
	if d.Dropped != 6 {
		t.Fatalf("snapshot dropped = %d, want 6", d.Dropped)
	}
}

func TestSnapshotMergesShardsInTimeOrder(t *testing.T) {
	tr := New(16)
	a, b := tr.Shard("a"), tr.Shard("b")
	b.Rec(2, KSend, 1, 20, 0, 0, 0)
	a.Rec(1, KSend, 1, 10, 0, 0, 0)
	a.Rec(3, KSend, 1, 30, 0, 0, 0)
	b.Rec(3, KSend, 1, 31, 0, 0, 0) // tie: shard a (created first) wins
	d := tr.Snapshot()
	var got []uint64
	for _, r := range d.Records {
		got = append(got, r.Seq)
	}
	want := []uint64{10, 20, 30, 31}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sh := tr.Shard("x")
	if sh != nil {
		t.Fatal("nil tracer must hand out nil shards")
	}
	sh.Rec(0, KSend, 1, 0, 0, 0, 0) // must not panic
	if id := tr.Register(EntConn, 0, "c"); id != 0 {
		t.Fatalf("nil Register = %d, want 0", id)
	}
	if sh.Tracer() != nil || sh.Len() != 0 || sh.Dropped() != 0 || sh.Name() != "" {
		t.Fatal("nil shard accessors must be zero")
	}
}

// TestRecAllocFree pins the recorder's core property: appending into a
// warm ring performs no heap allocation, full or not.
func TestRecAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	tr := New(1 << 10)
	sh := tr.Shard("h")
	var at sim.Time
	avg := testing.AllocsPerRun(10000, func() {
		at++
		sh.Rec(at, KSend, 1, uint64(at), 1380, 7, FRetrans)
	})
	if avg != 0 {
		t.Fatalf("Rec allocates %.2f allocs/op, want 0", avg)
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := New(8)
	c := tr.Register(EntConn, 0, "host/conn-1")
	f := tr.Register(EntFlow, c, "host/10.0.0.1:1->10.0.0.2:80")
	l := tr.Register(EntLink, 0, "wire:a->b")
	sh := tr.Shard("host")
	sh.Rec(10, KPick, f, 0, 1380, 0, 0)
	sh.Rec(20, KReassm, c, 0, 1380, 1380, FAdvance)
	tr.Shard("net").Rec(15, KLinkDlv, l, 0, 1420, 0, 0)
	d := tr.Snapshot()

	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Entities, d.Entities) {
		t.Fatalf("entities diverged:\n got %+v\nwant %+v", got.Entities, d.Entities)
	}
	if !reflect.DeepEqual(got.Records, d.Records) {
		t.Fatalf("records diverged:\n got %+v\nwant %+v", got.Records, d.Records)
	}
	if !reflect.DeepEqual(got.Shards, d.Shards) {
		t.Fatalf("shards diverged:\n got %+v\nwant %+v", got.Shards, d.Shards)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("Read accepted garbage")
	}
}

func TestIvalsDuplicateAccounting(t *testing.T) {
	var s ivals
	if dup := s.add(0, 100); dup != 0 {
		t.Fatalf("first add dup = %d, want 0", dup)
	}
	if dup := s.add(50, 150); dup != 50 {
		t.Fatalf("overlap dup = %d, want 50", dup)
	}
	if dup := s.add(200, 300); dup != 0 {
		t.Fatalf("disjoint dup = %d, want 0", dup)
	}
	if dup := s.add(0, 300); dup != 250 {
		t.Fatalf("spanning dup = %d, want 250 (150 + 100 covered)", dup)
	}
	if dup := s.add(10, 20); dup != 10 {
		t.Fatalf("contained dup = %d, want 10", dup)
	}
}

// TestAnalyzeHandoverAndSplit drives the analyzer with a hand-built
// trace: two subflows, a switch between them, a reinjection, and a
// receiver-side duplicate.
func TestAnalyzeHandoverAndSplit(t *testing.T) {
	tr := New(64)
	conn := tr.Register(EntConn, 0, "c/conn-1")
	f0 := tr.Register(EntFlow, conn, "c/primary")
	f1 := tr.Register(EntFlow, conn, "c/backup")
	rconn := tr.Register(EntConn, 0, "s/conn-2")
	sh := tr.Shard("c")
	ssh := tr.Shard("s")

	sh.Rec(1*sim.Second, KPick, f0, 0, 1000, 0, 0)
	sh.Rec(2*sim.Second, KPick, f0, 1000, 1000, 0, 0)
	// 3 s of silence, then the switch: handover gap 3 s.
	sh.Rec(5*sim.Second, KPick, f1, 1000, 1000, 0, FReinject)
	sh.Rec(6*sim.Second, KPick, f1, 2000, 1000, 0, 0)
	// Receiver sees the reinjected range twice.
	ssh.Rec(5500*sim.Millisecond, KReassm, rconn, 0, 2000, 2000, FAdvance)
	ssh.Rec(6*sim.Second, KReassm, rconn, 1000, 1000, 2000, 0)
	ssh.Rec(7*sim.Second, KReassm, rconn, 2000, 1000, 3000, FAdvance)

	a := Analyze(tr.Snapshot())
	if len(a.Conns) != 2 {
		t.Fatalf("conns = %d, want 2", len(a.Conns))
	}
	c := a.Conns[0]
	if c.SchedBytes != 3000 || c.ReinjBytes != 1000 {
		t.Fatalf("sched/reinj = %d/%d, want 3000/1000", c.SchedBytes, c.ReinjBytes)
	}
	if len(c.Handovers) != 1 || c.Handovers[0].GapS != 3 {
		t.Fatalf("handovers = %+v, want one with 3s gap", c.Handovers)
	}
	if c.MaxGapS != 3 || c.MaxGapAtS != 5 {
		t.Fatalf("max gap = %gs at %gs, want 3s at 5s", c.MaxGapS, c.MaxGapAtS)
	}
	if len(c.Flows) != 2 || c.Flows[0].Bytes != 2000 || c.Flows[1].Bytes != 1000 || c.Flows[1].ReinjBytes != 1000 {
		t.Fatalf("flow split wrong: %+v %+v", c.Flows[0], c.Flows[1])
	}
	r := a.Conns[1]
	if r.RecvBytes != 3000 || r.DupRecvBytes != 1000 {
		t.Fatalf("recv/dup = %d/%d, want 3000/1000", r.RecvBytes, r.DupRecvBytes)
	}

	// FoldInto surfaces the same numbers as scalars without touching
	// the report text.
	res := stats.NewResult("x")
	res.Report = "pinned"
	a.FoldInto(res, "trace_")
	if res.Report != "pinned" {
		t.Fatal("FoldInto touched the report text")
	}
	if res.Scalars["trace_reinject_bytes"] != 1000 || res.Scalars["trace_dup_recv_bytes"] != 1000 ||
		res.Scalars["trace_max_gap_s"] != 3 || res.Scalars["trace_handovers"] != 1 {
		t.Fatalf("folded scalars wrong: %v", res.Scalars)
	}
}

// TestAnalyzeDeterministic pins that two analyses of the same data
// render byte-identical reports (sorted tables, no map iteration).
func TestAnalyzeDeterministic(t *testing.T) {
	tr := New(64)
	conn := tr.Register(EntConn, 0, "c/conn-1")
	f0 := tr.Register(EntFlow, conn, "c/f0")
	f1 := tr.Register(EntFlow, conn, "c/f1")
	lb := tr.Register(EntLink, 0, "b-link")
	la := tr.Register(EntLink, 0, "a-link")
	sh := tr.Shard("c")
	for i := 0; i < 20; i++ {
		f := f0
		if i%2 == 1 {
			f = f1
		}
		sh.Rec(sim.Time(i)*sim.Second, KPick, f, uint64(i)*100, 100, 0, 0)
		sh.Rec(sim.Time(i)*sim.Second, KLinkDlv, lb, 0, 140, 0, 0)
		sh.Rec(sim.Time(i)*sim.Second, KLinkDlv, la, 0, 140, 0, 0)
	}
	d := tr.Snapshot()
	r1, r2 := Analyze(d).Report(), Analyze(d).Report()
	if r1 != r2 {
		t.Fatalf("two analyses of the same data diverge:\n%s\n---\n%s", r1, r2)
	}
	a := Analyze(d)
	if a.Links[0].Name != "a-link" || a.Links[1].Name != "b-link" {
		t.Fatalf("links not sorted by name: %s, %s", a.Links[0].Name, a.Links[1].Name)
	}
}
