package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// JSON writes the analysis summary (per-connection, per-subflow, and
// per-link accounting plus the policy event log; raw series are CSV
// territory) as indented JSON.
func (a *Analysis) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteCSVs writes the raw series into dir (created if missing), one
// file per table:
//
//	flows.csv     per-subflow summary rows
//	links.csv     per-link counters and utilisation
//	seq.csv       scheduler placements: t vs relative end sequence
//	cc.csv        congestion series: t vs srtt_ms and cwnd_b
//	handovers.csv subflow switches with gap latency
//	policy.csv    smapp control-plane events
//
// All rows follow the analyzer's sorted table order, so repeated runs
// of the same trace produce identical files.
func (a *Analysis) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if err := write("flows.csv", func(w *os.File) error {
		fmt.Fprintln(w, "conn,flow,backup,bytes,reinj_bytes,dup_bytes,segs_sent,segs_retrans,segs_recvd,first_push_s,last_push_s,rtt_min_ms,rtt_avg_ms,rtt_max_ms,cwnd_max_b")
		for _, c := range a.Conns {
			for _, f := range c.Flows {
				fmt.Fprintf(w, "%s,%s,%t,%d,%d,%d,%d,%d,%d,%s,%s,%g,%g,%g,%d\n",
					csvQ(c.Name), csvQ(f.Name), f.Backup, f.Bytes, f.ReinjBytes, f.DupBytes,
					f.SegsSent, f.SegsRetrans, f.SegsRecvd,
					csvTime(f.FirstPushS), csvTime(f.LastPushS),
					f.RTTMinMs, f.RTTAvgMs, f.RTTMaxMs, f.CwndMax)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := write("links.csv", func(w *os.File) error {
		fmt.Fprintln(w, "link,enqueued,delivered,bytes,drop_queue,drop_loss,drop_down,util_mbps")
		for _, l := range a.Links {
			fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%g\n",
				csvQ(l.Name), l.Enqueued, l.Delivered, l.Bytes, l.DropQueue, l.DropLoss, l.DropDown, l.UtilMbps)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := write("seq.csv", func(w *os.File) error {
		fmt.Fprintln(w, "t_s,conn,flow,seq_end")
		for _, c := range a.Conns {
			for _, f := range c.Flows {
				for _, p := range f.SeqTrace {
					fmt.Fprintf(w, "%g,%s,%s,%.0f\n", p.T, csvQ(c.Name), csvQ(f.Name), p.Y)
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := write("cc.csv", func(w *os.File) error {
		fmt.Fprintln(w, "t_s,conn,flow,srtt_ms,cwnd_b")
		for _, c := range a.Conns {
			for _, f := range c.Flows {
				for i := range f.RTT {
					fmt.Fprintf(w, "%g,%s,%s,%g,%.0f\n",
						f.RTT[i].T, csvQ(c.Name), csvQ(f.Name), f.RTT[i].Y, f.Cwnd[i].Y)
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := write("handovers.csv", func(w *os.File) error {
		fmt.Fprintln(w, "t_s,conn,from,to,gap_s")
		for _, c := range a.Conns {
			for _, h := range c.Handovers {
				fmt.Fprintf(w, "%g,%s,%s,%s,%g\n", h.AtS, csvQ(c.Name), csvQ(h.From), csvQ(h.To), h.GapS)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	return write("policy.csv", func(w *os.File) error {
		fmt.Fprintln(w, "t_s,policy,event,token")
		for _, p := range a.Policy {
			fmt.Fprintf(w, "%g,%s,%s,%08x\n", p.AtS, csvQ(p.Policy), p.Event, p.Token)
		}
		return nil
	})
}

// csvQ quotes a field if it contains a comma or quote (entity names
// carry 4-tuples and link names, which are comma-free today, but the
// writer should not silently corrupt if that changes).
func csvQ(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}

// csvTime renders a seconds value, with -1 (never) as an empty cell.
func csvTime(s float64) string {
	if s < 0 {
		return ""
	}
	return strconv.FormatFloat(s, 'g', -1, 64)
}
