package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/sim"
)

// The trace file format: a magic header, the entity table, the shard
// summaries, then the merged records as fixed 34-byte little-endian
// values. Everything is length-prefixed, nothing is compressed — the
// format is meant to be trivially re-readable by other tools.
//
//	magic   "MPTRACE1"                                  8 B
//	u32     entity count
//	entity  u32 id, u8 kind, u32 parent, u16 len, name
//	u32     shard count
//	shard   u64 records, u64 dropped, u16 len, name
//	u64     record count
//	record  i64 at, u64 seq, u64 aux, u32 ent, u32 len, u8 kind, u8 flag

var magic = [8]byte{'M', 'P', 'T', 'R', 'A', 'C', 'E', '1'}

const recordSize = 8 + 8 + 8 + 4 + 4 + 1 + 1

func putRecord(b []byte, r *Record) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], uint64(r.At))
	le.PutUint64(b[8:], r.Seq)
	le.PutUint64(b[16:], r.Aux)
	le.PutUint32(b[24:], r.Ent)
	le.PutUint32(b[28:], r.Len)
	b[32] = byte(r.Kind)
	b[33] = r.Flag
}

func getRecord(b []byte) Record {
	le := binary.LittleEndian
	return Record{
		At:   sim.Time(le.Uint64(b[0:])),
		Seq:  le.Uint64(b[8:]),
		Aux:  le.Uint64(b[16:]),
		Ent:  le.Uint32(b[24:]),
		Len:  le.Uint32(b[28:]),
		Kind: Kind(b[32]),
		Flag: b[33],
	}
}

// Encode streams the snapshot in the trace file format.
func (d *Data) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var scratch [recordSize]byte
	writeString := func(s string) error {
		le.PutUint16(scratch[:2], uint16(len(s)))
		if _, err := bw.Write(scratch[:2]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	le.PutUint32(scratch[:4], uint32(len(d.Entities)))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	for _, e := range d.Entities {
		le.PutUint32(scratch[0:], e.ID)
		scratch[4] = byte(e.Kind)
		le.PutUint32(scratch[5:], e.Parent)
		if _, err := bw.Write(scratch[:9]); err != nil {
			return err
		}
		if err := writeString(e.Name); err != nil {
			return err
		}
	}

	le.PutUint32(scratch[:4], uint32(len(d.Shards)))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return err
	}
	for _, sh := range d.Shards {
		le.PutUint64(scratch[0:], sh.Records)
		le.PutUint64(scratch[8:], sh.Dropped)
		if _, err := bw.Write(scratch[:16]); err != nil {
			return err
		}
		if err := writeString(sh.Name); err != nil {
			return err
		}
	}

	le.PutUint64(scratch[:8], uint64(len(d.Records)))
	if _, err := bw.Write(scratch[:8]); err != nil {
		return err
	}
	for i := range d.Records {
		putRecord(scratch[:], &d.Records[i])
		if _, err := bw.Write(scratch[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the snapshot to path.
func (d *Data) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a trace file stream back into a Data.
func Read(r io.Reader) (*Data, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var scratch [recordSize]byte
	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if [8]byte(scratch[:8]) != magic {
		return nil, fmt.Errorf("trace: not a trace file (bad magic %q)", scratch[:8])
	}
	readString := func() (string, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return "", err
		}
		b := make([]byte, le.Uint16(scratch[:2]))
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	d := &Data{}
	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, fmt.Errorf("trace: reading entity count: %w", err)
	}
	nEnts := int(le.Uint32(scratch[:4]))
	for i := 0; i < nEnts; i++ {
		if _, err := io.ReadFull(br, scratch[:9]); err != nil {
			return nil, fmt.Errorf("trace: reading entity %d: %w", i, err)
		}
		e := Entity{ID: le.Uint32(scratch[0:]), Kind: EntKind(scratch[4]), Parent: le.Uint32(scratch[5:])}
		var err error
		if e.Name, err = readString(); err != nil {
			return nil, fmt.Errorf("trace: reading entity %d name: %w", i, err)
		}
		d.Entities = append(d.Entities, e)
	}

	if _, err := io.ReadFull(br, scratch[:4]); err != nil {
		return nil, fmt.Errorf("trace: reading shard count: %w", err)
	}
	nShards := int(le.Uint32(scratch[:4]))
	for i := 0; i < nShards; i++ {
		if _, err := io.ReadFull(br, scratch[:16]); err != nil {
			return nil, fmt.Errorf("trace: reading shard %d: %w", i, err)
		}
		sh := ShardInfo{Records: le.Uint64(scratch[0:]), Dropped: le.Uint64(scratch[8:])}
		var err error
		if sh.Name, err = readString(); err != nil {
			return nil, fmt.Errorf("trace: reading shard %d name: %w", i, err)
		}
		d.Dropped += sh.Dropped
		d.Shards = append(d.Shards, sh)
	}

	if _, err := io.ReadFull(br, scratch[:8]); err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	nRecs := int(le.Uint64(scratch[:8]))
	// The count is untrusted input: cap the preallocation so a corrupt
	// header cannot panic makeslice or balloon memory — a truncated
	// stream still fails cleanly in the ReadFull below.
	d.Records = make([]Record, 0, min(nRecs, 1<<20))
	for i := 0; i < nRecs; i++ {
		if _, err := io.ReadFull(br, scratch[:recordSize]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d of %d: %w", i, nRecs, err)
		}
		d.Records = append(d.Records, getRecord(scratch[:]))
	}
	return d, nil
}

// ReadFile parses a trace file from disk.
func ReadFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
