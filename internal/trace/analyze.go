package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Point is one (time, value) sample of an exported series.
type Point struct {
	T float64 `json:"t"`
	Y float64 `json:"y"`
}

// Flow is the per-subflow analysis: the byte/sequence split the paper's
// Fig. 2a plots, plus segment, retransmission, and congestion series.
type Flow struct {
	ID   uint32 `json:"id"`
	Name string `json:"name"`

	// Scheduler placement (sender side, from KPick records).
	Bytes       uint64  `json:"bytes"`        // first-time scheduled payload bytes
	ReinjBytes  uint64  `json:"reinj_bytes"`  // bytes carried as reinjections
	DupBytes    uint64  `json:"dup_bytes"`    // redundant duplicate copies
	FirstPushS  float64 `json:"first_push_s"` // -1 = never carried data
	LastPushS   float64 `json:"last_push_s"`
	SegsSent    uint64  `json:"segs_sent"`
	SegsRetrans uint64  `json:"segs_retrans"`
	SegsRecvd   uint64  `json:"segs_recvd"`
	Backup      bool    `json:"backup"`
	ClosedErrno int64   `json:"closed_errno"` // -1 = still open at trace end

	// Congestion summaries (from KCC records).
	RTTMinMs float64 `json:"rtt_min_ms"`
	RTTAvgMs float64 `json:"rtt_avg_ms"`
	RTTMaxMs float64 `json:"rtt_max_ms"`
	CwndMax  uint64  `json:"cwnd_max_b"`

	// Raw series (CSV export; summarised above for JSON/text).
	SeqTrace []Point `json:"-"` // t vs end of placed range (relative bytes)
	RTT      []Point `json:"-"` // t vs SRTT ms
	Cwnd     []Point `json:"-"` // t vs cwnd bytes

	rttSum  float64
	buckets [splitBuckets]float64 // placed bytes per time bucket
}

// Handover is one scheduler switch between subflows: the gap is the
// silence between the last chunk placed on the previous subflow and the
// first chunk on the next — the paper's handover latency.
type Handover struct {
	AtS  float64 `json:"at_s"`
	From string  `json:"from"`
	To   string  `json:"to"`
	GapS float64 `json:"gap_s"`
}

// Conn is the per-connection analysis. Sender-side accounting (the
// scheduler split, reinjections, handovers) appears on the connection
// that placed the data; receiver-side accounting (in-order progress,
// duplicate bytes discarded by reassembly) on the connection that
// received it — each endpoint of a transfer shows one half, like the
// two directions of an mptcptrace run.
type Conn struct {
	ID    uint32  `json:"id"`
	Name  string  `json:"name"`
	Flows []*Flow `json:"flows"`

	SchedBytes    uint64 `json:"sched_bytes"`     // first-time scheduled
	ReinjBytes    uint64 `json:"reinj_bytes"`     // scheduled again elsewhere
	DupSchedBytes uint64 `json:"dup_sched_bytes"` // redundant copies placed
	RecvBytes     uint64 `json:"recv_bytes"`      // in-order frontier reached
	DupRecvBytes  uint64 `json:"dup_recv_bytes"`  // received again (discarded)

	Handovers []Handover `json:"handovers"`
	MaxGapS   float64    `json:"max_gap_s"`
	MaxGapAtS float64    `json:"max_gap_at_s"`

	flowByID   map[uint32]*Flow
	lastPick   *Flow
	lastPickAt sim.Time
	covered    ivals
}

// Link is the per-link analysis: deliveries, drops by cause, and
// utilisation over the link's active interval.
type Link struct {
	Name      string  `json:"name"`
	Enqueued  uint64  `json:"enqueued"`
	Delivered uint64  `json:"delivered"`
	Bytes     uint64  `json:"bytes"`
	DropQueue uint64  `json:"drop_queue"`
	DropLoss  uint64  `json:"drop_loss"`
	DropDown  uint64  `json:"drop_down"`
	UtilMbps  float64 `json:"util_mbps"` // delivered bits over first→last activity
	firstAt   sim.Time
	lastAt    sim.Time
	active    bool
}

// PolicyEvent is one smapp control-plane action.
type PolicyEvent struct {
	AtS    float64 `json:"at_s"`
	Policy string  `json:"policy"`
	Event  string  `json:"event"`
	Token  uint32  `json:"token"`
}

// Analysis is the full derived view of one trace.
type Analysis struct {
	Records int     `json:"records"`
	Dropped uint64  `json:"dropped"`
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`

	Conns  []*Conn       `json:"conns"`
	Links  []*Link       `json:"links"`
	Policy []PolicyEvent `json:"policy"`

	data *Data
}

// ivals is a minimal sorted, disjoint interval set used for the
// receiver-side duplicate-byte accounting (analysis time, not the
// recording hot path).
type ivals struct{ iv [][2]uint64 }

// add inserts [lo,hi) and returns how many of its bytes were already
// covered (the duplicate count).
func (s *ivals) add(lo, hi uint64) uint64 {
	if hi <= lo {
		return 0
	}
	var dup uint64
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i][1] >= lo })
	nlo, nhi := lo, hi
	j := i
	for ; j < len(s.iv) && s.iv[j][0] <= hi; j++ {
		olo, ohi := s.iv[j][0], s.iv[j][1]
		a, b := max(lo, olo), min(hi, ohi)
		if b > a {
			dup += b - a
		}
		nlo, nhi = min(nlo, olo), max(nhi, ohi)
	}
	s.iv = append(s.iv[:i], append([][2]uint64{{nlo, nhi}}, s.iv[j:]...)...)
	return dup
}

// Analyze derives the mptcptrace-style artifacts from a trace. All
// tables are sorted (connections and flows by registration id, links by
// name), so the same trace always yields the same report bytes.
func Analyze(d *Data) *Analysis {
	a := &Analysis{Records: len(d.Records), Dropped: d.Dropped, data: d}
	conns := make(map[uint32]*Conn)
	flows := make(map[uint32]*Flow)
	flowConn := make(map[uint32]*Conn)
	links := make(map[uint32]*Link)
	for _, e := range d.Entities {
		switch e.Kind {
		case EntConn:
			c := &Conn{ID: e.ID, Name: e.Name, flowByID: make(map[uint32]*Flow)}
			conns[e.ID] = c
			a.Conns = append(a.Conns, c)
		case EntLink:
			l := &Link{Name: e.Name}
			links[e.ID] = l
			a.Links = append(a.Links, l)
		}
	}
	for _, e := range d.Entities {
		if e.Kind != EntFlow {
			continue
		}
		f := &Flow{ID: e.ID, Name: e.Name, FirstPushS: -1, ClosedErrno: -1}
		flows[e.ID] = f
		if c := conns[e.Parent]; c != nil {
			c.Flows = append(c.Flows, f)
			c.flowByID[e.ID] = f
			flowConn[e.ID] = c
		}
	}

	if len(d.Records) > 0 {
		a.StartS = d.Records[0].At.Seconds()
		a.EndS = d.Records[len(d.Records)-1].At.Seconds()
	}

	for i := range d.Records {
		r := &d.Records[i]
		switch r.Kind {
		case KSend:
			if f := flows[r.Ent]; f != nil {
				f.SegsSent++
				if r.Flag&FRetrans != 0 {
					f.SegsRetrans++
				}
			}
		case KRecv:
			if f := flows[r.Ent]; f != nil {
				f.SegsRecvd++
			}
		case KCC:
			if f := flows[r.Ent]; f != nil {
				ms := time.Duration(r.Seq).Seconds() * 1000
				if len(f.RTT) == 0 || ms < f.RTTMinMs {
					f.RTTMinMs = ms
				}
				if ms > f.RTTMaxMs {
					f.RTTMaxMs = ms
				}
				f.rttSum += ms
				f.RTT = append(f.RTT, Point{T: r.At.Seconds(), Y: ms})
				if r.Aux > f.CwndMax {
					f.CwndMax = r.Aux
				}
				f.Cwnd = append(f.Cwnd, Point{T: r.At.Seconds(), Y: float64(r.Aux)})
			}
		case KPick:
			f := flows[r.Ent]
			if f == nil {
				break
			}
			t := r.At.Seconds()
			if f.FirstPushS < 0 {
				f.FirstPushS = t
			}
			f.LastPushS = t
			f.SeqTrace = append(f.SeqTrace, Point{T: t, Y: float64(r.Seq + uint64(r.Len))})
			if span := a.EndS - a.StartS; span > 0 {
				k := int(float64(splitBuckets) * (t - a.StartS) / span)
				if k >= splitBuckets {
					k = splitBuckets - 1
				}
				if k < 0 {
					k = 0
				}
				f.buckets[k] += float64(r.Len)
			}
			c := flowConn[r.Ent]
			switch {
			case r.Flag&FDup != 0:
				f.DupBytes += uint64(r.Len)
				if c != nil {
					c.DupSchedBytes += uint64(r.Len)
				}
			case r.Flag&FReinject != 0:
				f.ReinjBytes += uint64(r.Len)
				if c != nil {
					c.ReinjBytes += uint64(r.Len)
				}
			default:
				f.Bytes += uint64(r.Len)
				if c != nil {
					c.SchedBytes += uint64(r.Len)
				}
			}
			// Handover tracking: duplicate copies are deliberate
			// parallel placement, not a switch of the active subflow.
			if c != nil && r.Flag&FDup == 0 {
				if c.lastPick != nil && c.lastPick != f {
					gap := (r.At - c.lastPickAt).Seconds()
					c.Handovers = append(c.Handovers, Handover{
						AtS: t, From: c.lastPick.Name, To: f.Name, GapS: gap,
					})
					if gap > c.MaxGapS {
						c.MaxGapS, c.MaxGapAtS = gap, t
					}
				}
				c.lastPick, c.lastPickAt = f, r.At
			}
		case KReassm:
			if c := conns[r.Ent]; c != nil {
				c.DupRecvBytes += c.covered.add(r.Seq, r.Seq+uint64(r.Len))
				if r.Aux > c.RecvBytes {
					c.RecvBytes = r.Aux
				}
			}
		case KSubAdd:
			if f := flows[r.Ent]; f != nil {
				f.Backup = r.Flag&FBackup != 0
			}
		case KSubDel:
			if f := flows[r.Ent]; f != nil {
				f.ClosedErrno = int64(r.Aux)
			}
		case KLinkEnq:
			if l := links[r.Ent]; l != nil {
				l.Enqueued++
				l.touch(r.At)
			}
		case KLinkDrop:
			if l := links[r.Ent]; l != nil {
				switch r.Flag {
				case DropQueue:
					l.DropQueue++
				case DropLoss:
					l.DropLoss++
				case DropDown:
					l.DropDown++
				}
				l.touch(r.At)
			}
		case KLinkDlv:
			if l := links[r.Ent]; l != nil {
				l.Delivered++
				l.Bytes += uint64(r.Len)
				l.touch(r.At)
			}
		case KPolicyAttach, KPolicyDetach, KPolicyCmd:
			a.Policy = append(a.Policy, PolicyEvent{
				AtS:    r.At.Seconds(),
				Policy: d.EntityName(r.Ent),
				Event:  policyEventName(r),
				Token:  uint32(r.Seq),
			})
		}
	}

	for _, f := range flows {
		if n := len(f.RTT); n > 0 {
			f.RTTAvgMs = f.rttSum / float64(n)
		}
	}
	for _, l := range a.Links {
		if span := (l.lastAt - l.firstAt).Seconds(); span > 0 {
			l.UtilMbps = float64(l.Bytes*8) / span / 1e6
		}
	}

	sort.Slice(a.Conns, func(i, j int) bool { return a.Conns[i].ID < a.Conns[j].ID })
	for _, c := range a.Conns {
		sort.Slice(c.Flows, func(i, j int) bool { return c.Flows[i].ID < c.Flows[j].ID })
	}
	sort.Slice(a.Links, func(i, j int) bool { return a.Links[i].Name < a.Links[j].Name })
	return a
}

func (l *Link) touch(at sim.Time) {
	if !l.active || at < l.firstAt {
		l.firstAt = at
	}
	if !l.active || at > l.lastAt {
		l.lastAt = at
	}
	l.active = true
}

func policyEventName(r *Record) string {
	switch r.Kind {
	case KPolicyAttach:
		return "attach"
	case KPolicyDetach:
		return "detach"
	case KPolicyCmd:
		switch r.Flag {
		case CmdCreateSubflow:
			return "create-subflow"
		case CmdRemoveSubflow:
			return "remove-subflow"
		case CmdSetBackup:
			return "set-backup"
		case CmdAnnounceAddr:
			return "announce-addr"
		}
	}
	return "?"
}

// Active reports whether the connection saw any traffic worth printing.
func (c *Conn) Active() bool {
	return c.SchedBytes+c.ReinjBytes+c.DupSchedBytes+c.RecvBytes+c.DupRecvBytes > 0
}

// splitBuckets is the column count of the byte-split-over-time table.
const splitBuckets = 10

// FoldInto streams the trace's headline summaries into a stats.Result:
// scalars for the byte accounting and handover gaps, and the pooled RTT,
// handover-gap, and per-connection max-gap samples as distributions. The
// gap samples are the per-device aggregation fleet runs report: each
// device is one connection, so "conn_max_gap_s" is the distribution of
// worst handover outages across the fleet and "handover_gap_s" pools
// every individual switch. It never touches the Result's Report text,
// which is what keeps traced runs byte-identical to their goldens.
func (a *Analysis) FoldInto(res *stats.Result, prefix string) {
	res.Scalars[prefix+"records"] = float64(a.Records)
	res.Scalars[prefix+"dropped"] = float64(a.Dropped)
	var reinj, dupSched, dupRecv, handovers uint64
	maxGap := 0.0
	rtt := res.Sample(prefix + "rtt_ms")
	gaps := res.Sample(prefix + "handover_gap_s")
	connMax := res.Sample(prefix + "conn_max_gap_s")
	for _, c := range a.Conns {
		reinj += c.ReinjBytes
		dupSched += c.DupSchedBytes
		dupRecv += c.DupRecvBytes
		handovers += uint64(len(c.Handovers))
		if c.MaxGapS > maxGap {
			maxGap = c.MaxGapS
		}
		for _, h := range c.Handovers {
			gaps.Add(h.GapS)
		}
		if len(c.Handovers) > 0 {
			connMax.Add(c.MaxGapS)
		}
		for _, f := range c.Flows {
			for _, p := range f.RTT {
				rtt.Add(p.Y)
			}
		}
	}
	res.Scalars[prefix+"reinject_bytes"] = float64(reinj)
	res.Scalars[prefix+"dup_sched_bytes"] = float64(dupSched)
	res.Scalars[prefix+"dup_recv_bytes"] = float64(dupRecv)
	res.Scalars[prefix+"handovers"] = float64(handovers)
	res.Scalars[prefix+"max_gap_s"] = maxGap
	var dropQ uint64
	for _, l := range a.Links {
		dropQ += l.DropQueue
	}
	res.Scalars[prefix+"link_queue_drops"] = float64(dropQ)
}

// Report renders the analysis as the text `mpexp report` prints.
func (a *Analysis) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== trace summary ==\n")
	fmt.Fprintf(&b, "records=%d dropped=%d span=%.3fs..%.3fs\n", a.Records, a.Dropped, a.StartS, a.EndS)
	for _, sh := range a.data.Shards {
		fmt.Fprintf(&b, "  shard %-12s %8d records, %d dropped\n", sh.Name, sh.Records, sh.Dropped)
	}

	for _, c := range a.Conns {
		if !c.Active() {
			continue
		}
		fmt.Fprintf(&b, "\n== %s ==\n", c.Name)
		if c.SchedBytes+c.ReinjBytes+c.DupSchedBytes > 0 {
			a.connSendReport(&b, c)
		}
		if c.RecvBytes+c.DupRecvBytes > 0 {
			fmt.Fprintf(&b, "receiver: %d bytes in order, %d duplicate bytes discarded by reassembly\n",
				c.RecvBytes, c.DupRecvBytes)
		}
	}

	if len(a.Links) > 0 {
		fmt.Fprintf(&b, "\n== links ==\n")
		fmt.Fprintf(&b, "%-34s %8s %8s %12s %7s %7s %7s %9s\n",
			"link", "enq", "dlv", "bytes", "qdrop", "loss", "down", "util")
		for _, l := range a.Links {
			if l.Enqueued+l.Delivered+l.DropQueue+l.DropLoss+l.DropDown == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-34s %8d %8d %12d %7d %7d %7d %7.2fMb\n",
				l.Name, l.Enqueued, l.Delivered, l.Bytes, l.DropQueue, l.DropLoss, l.DropDown, l.UtilMbps)
		}
	}

	if len(a.Policy) > 0 {
		fmt.Fprintf(&b, "\n== policy events ==\n")
		for _, p := range a.Policy {
			fmt.Fprintf(&b, "t=%8.3fs %-14s %-15s token=%08x\n", p.AtS, p.Event, p.Policy, p.Token)
		}
	}
	return b.String()
}

// connSendReport renders the sender-side half: per-subflow split,
// split-over-time buckets, reinjection accounting, handovers, and the
// RTT/cwnd series summary.
func (a *Analysis) connSendReport(b *strings.Builder, c *Conn) {
	total := c.SchedBytes + c.ReinjBytes + c.DupSchedBytes
	fmt.Fprintf(b, "subflow byte split (%d bytes placed)\n", total)
	fmt.Fprintf(b, "  %-34s %5s %12s %6s %10s %8s %6s %9s %9s\n",
		"subflow", "flags", "bytes", "share", "reinj", "dup", "segs", "first(s)", "last(s)")
	for _, f := range c.Flows {
		carried := f.Bytes + f.ReinjBytes + f.DupBytes
		share := 0.0
		if total > 0 {
			share = 100 * float64(carried) / float64(total)
		}
		flags := "-"
		if f.Backup {
			flags = "B"
		}
		first, last := "-", "-"
		if f.FirstPushS >= 0 {
			first = fmt.Sprintf("%.3f", f.FirstPushS)
			last = fmt.Sprintf("%.3f", f.LastPushS)
		}
		fmt.Fprintf(b, "  %-34s %5s %12d %5.1f%% %10d %8d %6d %9s %9s\n",
			f.Name, flags, f.Bytes, share, f.ReinjBytes, f.DupBytes, f.SegsSent, first, last)
	}

	if buckets := a.splitOverTime(c); buckets != nil {
		fmt.Fprintf(b, "split over time (%% of bytes per %.2fs bucket)\n", (a.EndS-a.StartS)/splitBuckets)
		for i, f := range c.Flows {
			fmt.Fprintf(b, "  %-34s", f.Name)
			for _, cell := range buckets[i] {
				if cell < 0 {
					fmt.Fprintf(b, "    .")
				} else {
					fmt.Fprintf(b, " %3.0f%%", cell)
				}
			}
			fmt.Fprintf(b, "\n")
		}
	}

	if c.ReinjBytes > 0 || c.DupSchedBytes > 0 {
		fmt.Fprintf(b, "reinjected %d bytes (%.2f%% of placed), duplicated %d bytes\n",
			c.ReinjBytes, 100*float64(c.ReinjBytes)/float64(total), c.DupSchedBytes)
	}
	if n := len(c.Handovers); n > 0 {
		fmt.Fprintf(b, "handovers: %d subflow switches, max gap %.3fs (at t=%.3fs)\n",
			n, c.MaxGapS, c.MaxGapAtS)
	}
	for _, f := range c.Flows {
		if len(f.RTT) == 0 {
			continue
		}
		fmt.Fprintf(b, "  rtt/cwnd %-27s %4d samples, srtt %.1f/%.1f/%.1f ms (min/avg/max), cwnd max %d B\n",
			f.Name, len(f.RTT), f.RTTMinMs, f.RTTAvgMs, f.RTTMaxMs, f.CwndMax)
	}
}

// splitOverTime normalises the per-flow bucketed byte counts into each
// flow's share of that bucket's bytes in percent (-1 = the bucket saw
// no bytes at all). Returns nil when the span is degenerate.
func (a *Analysis) splitOverTime(c *Conn) [][]float64 {
	if a.EndS-a.StartS <= 0 || len(c.Flows) == 0 {
		return nil
	}
	per := make([][]float64, len(c.Flows))
	var totals [splitBuckets]float64
	for i, f := range c.Flows {
		per[i] = make([]float64, splitBuckets)
		copy(per[i], f.buckets[:])
		for k, v := range f.buckets {
			totals[k] += v
		}
	}
	for i := range per {
		for k := range per[i] {
			if totals[k] == 0 {
				per[i][k] = -1
			} else {
				per[i][k] = 100 * per[i][k] / totals[k]
			}
		}
	}
	return per
}
