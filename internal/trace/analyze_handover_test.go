package trace

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TestHandoverAttributionAcrossConcurrentFlows drives the analyzer with
// a fleet-shaped trace: many connections (one per device), each with a
// wifi and an lte subflow, their scheduler picks interleaved in time the
// way a multi-device run merges them. Handover gaps must be computed
// per connection — a pick on device 3 must never close or shorten a gap
// on device 0 — and redundant duplicate copies must not count as
// switches.
func TestHandoverAttributionAcrossConcurrentFlows(t *testing.T) {
	const devices = 4
	tr := New(256)
	type dev struct {
		conn, wifi, lte uint32
	}
	devs := make([]dev, devices)
	for k := range devs {
		c := tr.Register(EntConn, 0, fmt.Sprintf("d%d/conn", k))
		devs[k] = dev{
			conn: c,
			wifi: tr.Register(EntFlow, c, fmt.Sprintf("d%d/wifi", k)),
			lte:  tr.Register(EntFlow, c, fmt.Sprintf("d%d/lte", k)),
		}
	}
	// One extra device that never switches: no handovers at all.
	mono := tr.Register(EntConn, 0, "mono/conn")
	monoF := tr.Register(EntFlow, mono, "mono/wifi")
	sh := tr.Shard("net")

	// Build every device's pick times first, then append them in global
	// time order, so records from different devices interleave exactly
	// like a merged multi-shard snapshot.
	type pick struct {
		at   sim.Time
		flow uint32
		conn uint32
		seq  uint64
		flag uint8
	}
	var picks []pick
	for k, d := range devs {
		start := 1*sim.Second + sim.Time(k)*100*sim.Millisecond
		ho1 := start + sim.Time(k+1)*sim.Second // gap (k+1)s: wifi → lte
		ho2 := ho1 + 500*sim.Millisecond        // gap 0.5s: lte → wifi
		picks = append(picks,
			pick{at: start, flow: d.wifi, conn: d.conn, seq: 0},
			pick{at: ho1, flow: d.lte, conn: d.conn, seq: 1000},
			pick{at: ho2, flow: d.wifi, conn: d.conn, seq: 2000},
		)
	}
	// A redundant duplicate on device 0's lte flow between its two real
	// handovers: deliberate parallel placement, not a switch.
	picks = append(picks, pick{
		at: 1*sim.Second + 200*sim.Millisecond, flow: devs[0].lte,
		conn: devs[0].conn, seq: 0, flag: FDup,
	})
	for i := 0; i < 3; i++ {
		picks = append(picks, pick{
			at:   1*sim.Second + sim.Time(i)*700*sim.Millisecond,
			flow: monoF, conn: mono, seq: uint64(i) * 1000,
		})
	}
	for i := 1; i < len(picks); i++ {
		for j := i; j > 0 && picks[j].at < picks[j-1].at; j-- {
			picks[j], picks[j-1] = picks[j-1], picks[j]
		}
	}
	for _, p := range picks {
		sh.Rec(p.at, KPick, p.flow, p.seq, 1000, 0, p.flag)
	}

	a := Analyze(tr.Snapshot())
	if len(a.Conns) != devices+1 {
		t.Fatalf("conns = %d, want %d", len(a.Conns), devices+1)
	}
	for k := 0; k < devices; k++ {
		c := a.Conns[k]
		if len(c.Handovers) != 2 {
			t.Fatalf("device %d: %d handovers, want 2: %+v", k, len(c.Handovers), c.Handovers)
		}
		wantGap := float64(k + 1)
		if g := c.Handovers[0].GapS; g != wantGap {
			t.Errorf("device %d: first gap = %gs, want %gs (cross-device attribution?)", k, g, wantGap)
		}
		if g := c.Handovers[1].GapS; g != 0.5 {
			t.Errorf("device %d: second gap = %gs, want 0.5s", k, g)
		}
		if c.Handovers[0].From != fmt.Sprintf("d%d/wifi", k) || c.Handovers[0].To != fmt.Sprintf("d%d/lte", k) {
			t.Errorf("device %d: handover endpoints wrong: %+v", k, c.Handovers[0])
		}
		if c.MaxGapS != wantGap {
			t.Errorf("device %d: max gap = %gs, want %gs", k, c.MaxGapS, wantGap)
		}
		if c.DupSchedBytes != 0 && k != 0 {
			t.Errorf("device %d: stray dup bytes %d", k, c.DupSchedBytes)
		}
	}
	if c := a.Conns[devices]; len(c.Handovers) != 0 {
		t.Fatalf("single-flow device reported %d handovers", len(c.Handovers))
	}

	// FoldInto pools the per-device aggregation: every individual gap,
	// and the per-connection max-gap distribution (the fleet's "worst
	// outage per device" curve), excluding devices that never switched.
	res := stats.NewResult("x")
	a.FoldInto(res, "trace_")
	if res.Scalars["trace_handovers"] != float64(2*devices) {
		t.Fatalf("trace_handovers = %v, want %d", res.Scalars["trace_handovers"], 2*devices)
	}
	gaps := res.Samples["trace_handover_gap_s"]
	if gaps.N() != 2*devices {
		t.Fatalf("handover_gap_s has %d samples, want %d", gaps.N(), 2*devices)
	}
	connMax := res.Samples["trace_conn_max_gap_s"]
	if connMax.N() != devices {
		t.Fatalf("conn_max_gap_s has %d samples, want %d (mono device must be excluded)", connMax.N(), devices)
	}
	if connMax.Min() != 1 || connMax.Max() != float64(devices) {
		t.Fatalf("conn_max_gap_s range = [%g, %g], want [1, %d]", connMax.Min(), connMax.Max(), devices)
	}
	if res.Scalars["trace_max_gap_s"] != float64(devices) {
		t.Fatalf("trace_max_gap_s = %v, want %d", res.Scalars["trace_max_gap_s"], devices)
	}
}
