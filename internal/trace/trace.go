// Package trace is the observability subsystem of the reproduction: a
// zero-allocation event recorder plus an mptcptrace-style analysis layer.
//
// The paper justifies every SMAPP policy by analysing packet traces of
// MPTCP behaviour — subflow byte split, reinjections, handover gaps —
// so the simulator records the same raw material. Recording is designed
// to observe without perturbing:
//
//   - records are fixed-size binary values (no pointers, no strings)
//     written into per-host ring buffers ("shards") preallocated at
//     trace start, so the steady-state data path stays 0 allocs/op;
//   - a full ring drops the oldest record (the ring keeps the tail of
//     the run) and counts the drop;
//   - every API is nil-safe: a nil *Tracer or *Shard compiles the whole
//     instrumentation to a cheap branch, so untraced runs pay nothing;
//   - recording never consumes simulation randomness and never
//     schedules events, which is what keeps traced runs byte-identical
//     to untraced ones.
//
// Variable-size context (connection names, subflow tuples, link names)
// lives in an entity table populated at registration time — connection
// setup, not the per-segment path — and records refer to entities by
// integer id.
//
// A Tracer belongs to one simulation and, like the simulator itself, is
// not safe for concurrent use; the multi-seed runner gives every seed
// its own Tracer.
package trace

import (
	"sort"

	"repro/internal/sim"
)

// Kind discriminates trace records.
type Kind uint8

// Record kinds, grouped by the layer that emits them.
const (
	// KSend: tcp data segment transmitted. Ent=flow, Seq=subflow seq,
	// Len=payload bytes, Aux=absolute DSN, Flag&FRetrans set on
	// retransmission.
	KSend Kind = 1 + iota
	// KRecv: tcp segment received. Ent=flow, Seq=subflow seq,
	// Len=payload bytes, Aux=ack.
	KRecv
	// KCC: congestion state after an update. Ent=flow, Seq=SRTT in ns,
	// Len=bytes in flight, Aux=cwnd in bytes.
	KCC
	// KPick: the mptcp scheduler placed a chunk. Ent=flow, Seq=relative
	// data sequence, Len=chunk bytes, Flag: FReinject (queued again
	// after timeout/death), FDup (redundant copy).
	KPick
	// KReassm: DSS mapping processed by the receiver. Ent=conn,
	// Seq=relative data sequence, Len=mapping bytes, Aux=in-order
	// frontier (rcv.nxt) after processing, Flag&FAdvance when the
	// frontier moved.
	KReassm
	// KSubAdd: subflow established. Ent=flow, Flag&FBackup for backup
	// priority.
	KSubAdd
	// KSubDel: subflow closed. Ent=flow, Aux=errno.
	KSubDel
	// KLinkEnq: packet accepted into a link queue. Ent=link, Len=wire
	// bytes.
	KLinkEnq
	// KLinkDrop: packet dropped by the fabric. Ent=link, Len=wire
	// bytes, Flag=DropQueue/DropLoss/DropDown.
	KLinkDrop
	// KLinkDlv: packet delivered to the far end. Ent=link, Len=wire
	// bytes.
	KLinkDlv
	// KPolicyAttach: a smapp controller bound to a connection.
	// Ent=policy, Seq=connection token.
	KPolicyAttach
	// KPolicyDetach: the controller unbound (switch or close).
	// Ent=policy, Seq=connection token.
	KPolicyDetach
	// KPolicyCmd: the controller issued a path-manager command.
	// Ent=policy, Seq=connection token, Flag=Cmd*.
	KPolicyCmd
)

// String names the kind in reports and CSV output.
func (k Kind) String() string {
	switch k {
	case KSend:
		return "send"
	case KRecv:
		return "recv"
	case KCC:
		return "cc"
	case KPick:
		return "pick"
	case KReassm:
		return "reassm"
	case KSubAdd:
		return "sub-add"
	case KSubDel:
		return "sub-del"
	case KLinkEnq:
		return "enq"
	case KLinkDrop:
		return "drop"
	case KLinkDlv:
		return "deliver"
	case KPolicyAttach:
		return "attach"
	case KPolicyDetach:
		return "detach"
	case KPolicyCmd:
		return "command"
	}
	return "?"
}

// Flag bits (per kind; see the Kind constants).
const (
	FRetrans  uint8 = 1 << iota // KSend: retransmission
	FReinject                   // KPick: reinjected range
	FDup                        // KPick: redundant duplicate copy
	FAdvance                    // KReassm: in-order frontier moved
	FBackup                     // KSubAdd: backup priority
)

// KLinkDrop reasons.
const (
	DropQueue uint8 = 1 + iota // drop-tail queue overflow
	DropLoss                   // Bernoulli random loss
	DropDown                   // link administratively down
)

// KPolicyCmd commands.
const (
	CmdCreateSubflow uint8 = 1 + iota
	CmdRemoveSubflow
	CmdSetBackup
	CmdAnnounceAddr
)

// EntKind classifies entities.
type EntKind uint8

// Entity kinds.
const (
	EntConn EntKind = 1 + iota
	EntFlow
	EntLink
	EntPolicy
)

// String names the entity kind.
func (k EntKind) String() string {
	switch k {
	case EntConn:
		return "conn"
	case EntFlow:
		return "flow"
	case EntLink:
		return "link"
	case EntPolicy:
		return "policy"
	}
	return "?"
}

// Entity is one registered trace subject: a connection, a subflow, a
// link, or a policy binding. IDs start at 1; 0 means "none".
type Entity struct {
	ID     uint32
	Kind   EntKind
	Parent uint32 // owning entity (flow → conn); 0 = none
	Name   string
}

// Record is one fixed-size trace event. It contains no pointers, so a
// ring of records is a flat allocation the garbage collector never
// scans, and recording is a plain store.
type Record struct {
	At   sim.Time
	Seq  uint64
	Aux  uint64
	Ent  uint32
	Len  uint32
	Kind Kind
	Flag uint8
}

// DefaultShardCap is the per-shard ring capacity (records) when the
// Tracer is built with cap <= 0: 64Ki records × 40 B ≈ 2.6 MB per host.
const DefaultShardCap = 1 << 16

// Tracer owns the entity table and the per-host shards of one
// simulation run.
type Tracer struct {
	cap    int
	shards []*Shard
	byName map[string]*Shard
	ents   []Entity
}

// New builds a tracer whose shards hold perShardCap records each
// (<= 0 selects DefaultShardCap).
func New(perShardCap int) *Tracer {
	if perShardCap <= 0 {
		perShardCap = DefaultShardCap
	}
	return &Tracer{cap: perShardCap, byName: make(map[string]*Shard)}
}

// Shard returns the named shard, creating (and preallocating) it on
// first use. By convention each host records into its own shard and the
// fabric shares one ("net"). Nil-safe: a nil tracer returns nil, which
// every recording call treats as "tracing off".
func (t *Tracer) Shard(name string) *Shard {
	if t == nil {
		return nil
	}
	if sh, ok := t.byName[name]; ok {
		return sh
	}
	sh := &Shard{tr: t, name: name, ring: make([]Record, t.cap)}
	t.shards = append(t.shards, sh)
	t.byName[name] = sh
	return sh
}

// Register adds an entity and returns its id. parent links a flow to
// its connection (0 = none). Nil-safe: a nil tracer returns 0.
// Registration happens at connection/link setup time, never on the
// per-segment path, so it may allocate.
func (t *Tracer) Register(kind EntKind, parent uint32, name string) uint32 {
	if t == nil {
		return 0
	}
	id := uint32(len(t.ents) + 1)
	t.ents = append(t.ents, Entity{ID: id, Kind: kind, Parent: parent, Name: name})
	return id
}

// Entities returns the entity table (shared; callers must not mutate).
func (t *Tracer) Entities() []Entity {
	if t == nil {
		return nil
	}
	return t.ents
}

// Dropped sums the drop-oldest counters across shards.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, sh := range t.shards {
		n += sh.Dropped()
	}
	return n
}

// Shard is one preallocated ring of records. Records within a shard are
// naturally time-ordered (the simulation clock is monotonic); a full
// ring overwrites the oldest record and counts it as dropped.
type Shard struct {
	tr   *Tracer
	name string
	ring []Record
	n    uint64 // total records ever appended
}

// Name identifies the shard (by convention, the owning host).
func (sh *Shard) Name() string {
	if sh == nil {
		return ""
	}
	return sh.name
}

// Tracer returns the owning tracer (nil for a nil shard), so wiring
// code can register entities through the shard handle it was given.
func (sh *Shard) Tracer() *Tracer {
	if sh == nil {
		return nil
	}
	return sh.tr
}

// Rec appends one record. This is THE hot call: a nil receiver returns
// immediately (tracing off), and the enabled path is an index and a
// struct store into the preallocated ring — no allocation either way.
func (sh *Shard) Rec(at sim.Time, kind Kind, ent uint32, seq uint64, ln uint32, aux uint64, flag uint8) {
	if sh == nil {
		return
	}
	sh.ring[int(sh.n)%len(sh.ring)] = Record{
		At: at, Seq: seq, Aux: aux, Ent: ent, Len: ln, Kind: kind, Flag: flag,
	}
	sh.n++
}

// Len reports the records currently held (≤ cap).
func (sh *Shard) Len() int {
	if sh == nil {
		return 0
	}
	if sh.n < uint64(len(sh.ring)) {
		return int(sh.n)
	}
	return len(sh.ring)
}

// Dropped reports how many records the ring overwrote.
func (sh *Shard) Dropped() uint64 {
	if sh == nil {
		return 0
	}
	if sh.n <= uint64(len(sh.ring)) {
		return 0
	}
	return sh.n - uint64(len(sh.ring))
}

// records appends the shard's held records, oldest first, to dst.
func (sh *Shard) records(dst []Record) []Record {
	held := sh.Len()
	if held == 0 {
		return dst
	}
	start := int(sh.n) % len(sh.ring)
	if sh.n <= uint64(len(sh.ring)) {
		return append(dst, sh.ring[:held]...)
	}
	dst = append(dst, sh.ring[start:]...)
	return append(dst, sh.ring[:start]...)
}

// ShardInfo summarises one shard in a snapshot.
type ShardInfo struct {
	Name    string
	Records uint64 // total appended (including dropped)
	Dropped uint64
}

// Data is an immutable snapshot of a trace: the entity table plus every
// held record merged across shards in time order (ties resolved by
// shard creation order, which is deterministic). It is what the binary
// trace file stores and what the analyzer consumes.
type Data struct {
	Entities []Entity
	Records  []Record
	Dropped  uint64
	Shards   []ShardInfo
}

// Snapshot merges the shards into a Data. The tracer remains usable
// afterwards (snapshotting copies).
func (t *Tracer) Snapshot() *Data {
	if t == nil {
		return &Data{}
	}
	total := 0
	d := &Data{Entities: append([]Entity(nil), t.ents...)}
	for _, sh := range t.shards {
		total += sh.Len()
		d.Shards = append(d.Shards, ShardInfo{Name: sh.name, Records: sh.n, Dropped: sh.Dropped()})
		d.Dropped += sh.Dropped()
	}
	d.Records = make([]Record, 0, total)
	for _, sh := range t.shards {
		d.Records = sh.records(d.Records)
	}
	// Stable sort: within one timestamp, records keep shard order then
	// ring order, so the merged stream is deterministic per seed.
	sort.SliceStable(d.Records, func(i, j int) bool {
		return d.Records[i].At < d.Records[j].At
	})
	return d
}

// Entity resolves an id (nil for 0 or out of range).
func (d *Data) Entity(id uint32) *Entity {
	if id == 0 || int(id) > len(d.Entities) {
		return nil
	}
	return &d.Entities[id-1]
}

// EntityName resolves an id to its name ("?" when unknown).
func (d *Data) EntityName(id uint32) string {
	if e := d.Entity(id); e != nil {
		return e.Name
	}
	return "?"
}
