package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netem"
)

// Rangef is a [lo, hi) interval a device draws a float from.
type Rangef [2]float64

// Ranged is a [lo, hi) interval a device draws a duration from.
type Ranged [2]time.Duration

// LinkRange bounds the link quality one interface class of a profile can
// draw: serialisation rate, one-way delay, and residual loss.
type LinkRange struct {
	RateBps Rangef
	Delay   Ranged
	Loss    Rangef
}

func (lr LinkRange) draw(s *Stream) netem.LinkConfig {
	return netem.LinkConfig{
		RateBps: s.Range(lr.RateBps[0], lr.RateBps[1]),
		Delay:   s.Between(lr.Delay[0], lr.Delay[1]),
		Loss:    s.Range(lr.Loss[0], lr.Loss[1]),
	}
}

// Profile is one device class of the fleet: how good its two radios are
// and how it moves. A device drawn from a profile samples every range
// once at generation time, so the fleet is heterogeneous even within one
// profile.
type Profile struct {
	Name string
	Desc string

	// WiFi and LTE bound the two access links. WiFi is the primary
	// interface (devices dial over it); LTE is the fallback path.
	WiFi, LTE LinkRange

	// WiFiDwell is how long the device stays on WiFi before walking out
	// of coverage; LTEDwell is how long the WiFi outage lasts.
	WiFiDwell, LTEDwell Ranged

	// Leaving coverage is a fade, not a cliff: FadeSteps loss steps of
	// FadeStep each walk the WiFi link up to FadeLoss before the
	// interface finally drops — the signal-strength ramp §4.2 degrades
	// its primary path with.
	FadeSteps int
	FadeStep  time.Duration
	FadeLoss  float64

	// Background cross-traffic on the LTE path: every CrossEvery (drawn
	// per burst) the LTE loss jumps into CrossLoss for CrossDur, then
	// falls back to the drawn residual. A zero CrossEvery disables it.
	CrossEvery Ranged
	CrossLoss  Rangef
	CrossDur   Ranged
}

// profiles is the built-in device-class library. Rates/delays are
// loosely calibrated to the paper's testbed numbers (WiFi a few ms and
// tens of Mbps, LTE tens of ms); mobility cadences span parked laptops
// to vehicles so one mix exercises rare and constant handovers at once.
var profiles = map[string]*Profile{
	"commuter": {
		Name:      "commuter",
		Desc:      "walks between APs: regular handovers, mid WiFi, decent LTE",
		WiFi:      LinkRange{RateBps: Rangef{20e6, 40e6}, Delay: Ranged{8 * time.Millisecond, 15 * time.Millisecond}, Loss: Rangef{0.005, 0.01}},
		LTE:       LinkRange{RateBps: Rangef{10e6, 25e6}, Delay: Ranged{30 * time.Millisecond, 50 * time.Millisecond}, Loss: Rangef{0, 0.005}},
		WiFiDwell: Ranged{1500 * time.Millisecond, 4 * time.Second},
		LTEDwell:  Ranged{500 * time.Millisecond, 1500 * time.Millisecond},
		FadeSteps: 2, FadeStep: 150 * time.Millisecond, FadeLoss: 0.20,
		CrossEvery: Ranged{4 * time.Second, 8 * time.Second},
		CrossLoss:  Rangef{0.03, 0.08},
		CrossDur:   Ranged{300 * time.Millisecond, 800 * time.Millisecond},
	},
	"pedestrian": {
		Name:      "pedestrian",
		Desc:      "strolls: occasional handovers, good WiFi",
		WiFi:      LinkRange{RateBps: Rangef{30e6, 60e6}, Delay: Ranged{5 * time.Millisecond, 10 * time.Millisecond}, Loss: Rangef{0.002, 0.008}},
		LTE:       LinkRange{RateBps: Rangef{12e6, 28e6}, Delay: Ranged{28 * time.Millisecond, 45 * time.Millisecond}, Loss: Rangef{0, 0.004}},
		WiFiDwell: Ranged{3 * time.Second, 8 * time.Second},
		LTEDwell:  Ranged{400 * time.Millisecond, time.Second},
		FadeSteps: 2, FadeStep: 200 * time.Millisecond, FadeLoss: 0.15,
		CrossEvery: Ranged{6 * time.Second, 12 * time.Second},
		CrossLoss:  Rangef{0.02, 0.06},
		CrossDur:   Ranged{200 * time.Millisecond, 600 * time.Millisecond},
	},
	"office": {
		Name:      "office",
		Desc:      "parked on enterprise WiFi: handovers are rare and brief",
		WiFi:      LinkRange{RateBps: Rangef{80e6, 150e6}, Delay: Ranged{2 * time.Millisecond, 5 * time.Millisecond}, Loss: Rangef{0, 0.002}},
		LTE:       LinkRange{RateBps: Rangef{20e6, 40e6}, Delay: Ranged{25 * time.Millisecond, 40 * time.Millisecond}, Loss: Rangef{0, 0.003}},
		WiFiDwell: Ranged{10 * time.Second, 30 * time.Second},
		LTEDwell:  Ranged{300 * time.Millisecond, 800 * time.Millisecond},
		FadeSteps: 1, FadeStep: 100 * time.Millisecond, FadeLoss: 0.10,
	},
	"home": {
		Name:      "home",
		Desc:      "residential WiFi: stable with the odd microwave-oven burst",
		WiFi:      LinkRange{RateBps: Rangef{40e6, 80e6}, Delay: Ranged{3 * time.Millisecond, 8 * time.Millisecond}, Loss: Rangef{0.001, 0.005}},
		LTE:       LinkRange{RateBps: Rangef{8e6, 20e6}, Delay: Ranged{32 * time.Millisecond, 55 * time.Millisecond}, Loss: Rangef{0, 0.005}},
		WiFiDwell: Ranged{8 * time.Second, 20 * time.Second},
		LTEDwell:  Ranged{500 * time.Millisecond, 1200 * time.Millisecond},
		FadeSteps: 1, FadeStep: 150 * time.Millisecond, FadeLoss: 0.12,
		CrossEvery: Ranged{10 * time.Second, 20 * time.Second},
		CrossLoss:  Rangef{0.02, 0.05},
		CrossDur:   Ranged{300 * time.Millisecond, 700 * time.Millisecond},
	},
	"vehicular": {
		Name:      "vehicular",
		Desc:      "drives past APs: constant handovers, long LTE stretches",
		WiFi:      LinkRange{RateBps: Rangef{10e6, 25e6}, Delay: Ranged{10 * time.Millisecond, 20 * time.Millisecond}, Loss: Rangef{0.01, 0.03}},
		LTE:       LinkRange{RateBps: Rangef{15e6, 30e6}, Delay: Ranged{25 * time.Millisecond, 45 * time.Millisecond}, Loss: Rangef{0.005, 0.015}},
		WiFiDwell: Ranged{800 * time.Millisecond, 2 * time.Second},
		LTEDwell:  Ranged{time.Second, 3 * time.Second},
		FadeSteps: 2, FadeStep: 100 * time.Millisecond, FadeLoss: 0.30,
		CrossEvery: Ranged{3 * time.Second, 6 * time.Second},
		CrossLoss:  Rangef{0.05, 0.12},
		CrossDur:   Ranged{400 * time.Millisecond, time.Second},
	},
}

// ProfileNames lists the built-in profiles, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupProfile resolves a profile name.
func LookupProfile(name string) (*Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown profile %q (have: %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
	return p, nil
}

// MixEntry is one weighted component of a profile mix.
type MixEntry struct {
	Profile *Profile
	Weight  float64
}

// DefaultMix is the profile_mix every fleet scenario starts from: a city
// block's worth of device classes, weighted toward the mobile ones so
// the handover machinery gets exercised.
const DefaultMix = "commuter:3,pedestrian:2,vehicular:2,office:2,home:1"

// ParseMix parses "name:weight,name:weight,..." into mix entries. A bare
// "name" weighs 1. Weights must be positive.
func ParseMix(spec string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, ":")
		w := 1.0
		if hasW {
			var err error
			if w, err = strconv.ParseFloat(wstr, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("fleet: bad weight in mix entry %q", part)
			}
		}
		p, err := LookupProfile(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		mix = append(mix, MixEntry{Profile: p, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("fleet: empty profile mix %q", spec)
	}
	return mix, nil
}

// pick draws one profile from the mix, weight-proportionally.
func pick(mix []MixEntry, s *Stream) *Profile {
	total := 0.0
	for _, m := range mix {
		total += m.Weight
	}
	x := s.Float64() * total
	for _, m := range mix {
		if x -= m.Weight; x < 0 {
			return m.Profile
		}
	}
	return mix[len(mix)-1].Profile
}
