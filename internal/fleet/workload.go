package fleet

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/app"
	"repro/internal/mptcp"
	"repro/internal/pm"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/tcp"
)

// Load is the fleet workload: every device uploads Bytes to the servers
// (round-robin) while its mobility timeline flaps its radios underneath.
// Like the scale fan-out it owns its stacks — one per device, shaped by
// the run's policy (scenario.KernelPolicy builds plain kernel endpoints)
// — and on top it keeps the per-device accounting the fleet report needs
// WITHOUT tracing: bytes delivered, completion time, and the worst data
// stall (maximum inter-arrival gap seen at the server), which is the
// application-visible cost of a handover.
//
// All per-device slots are per-element slice writes: device i's sink
// runs on the shard of the server it dialed, and no two devices share a
// slot, so multi-shard runs stay race-free (the fan-out precedent).
type Load struct {
	Bytes int
	// Chunks > 1 paces the upload: Bytes splits into Chunks blocks, one
	// block per Period, so the transfer spans the mobility window
	// instead of finishing before the first handover. Chunks <= 1 sends
	// everything at establishment (the fan-out behaviour).
	Chunks int
	Period time.Duration

	// Per-device outcome, indexed by ordinal. CompletedAt is -1 when the
	// upload never finished; LastData is the final data arrival (-1 when
	// no data arrived at all); MaxGap is the worst gap between
	// consecutive data arrivals after the first.
	DialAt      []sim.Time
	CompletedAt []sim.Time
	LastData    []sim.Time
	MaxGap      []sim.Time
	Recv        []uint64
}

// OwnsStacks implements scenario.StackOwner.
func (w *Load) OwnsStacks() {}

// chunk returns the per-block size and the total the sinks wait for
// (the block size rounds up, so paced totals can exceed Bytes slightly).
func (w *Load) chunk() (size, total int) {
	if w.Chunks <= 1 {
		return w.Bytes, w.Bytes
	}
	size = (w.Bytes + w.Chunks - 1) / w.Chunks
	return size, size * w.Chunks
}

// Describe implements scenario.Workload.
func (w *Load) Describe() string {
	return fmt.Sprintf("fleet upload, %d KB per device", w.Bytes>>10)
}

// Server implements scenario.Workload: every server endpoint listens,
// each accepted connection is matched back to its device by the initial
// subflow's WiFi address, and its sink records the stall accounting on
// that server's clock.
func (w *Load) Server(rt *scenario.Run) {
	n := len(rt.Net.Clients)
	w.DialAt = make([]sim.Time, n)
	w.CompletedAt = make([]sim.Time, n)
	w.LastData = make([]sim.Time, n)
	w.MaxGap = make([]sim.Time, n)
	w.Recv = make([]uint64, n)
	for i := 0; i < n; i++ {
		w.CompletedAt[i] = -1
		w.LastData[i] = -1
	}
	devIdx := make(map[netip.Addr]int, n)
	for i, cl := range rt.Net.Clients {
		devIdx[cl.Addrs[0]] = i
	}
	for si, ep := range rt.ServerEps {
		sclk := rt.Net.Servers[si].Clock()
		ep.Listen(rt.Port(), func(c *mptcp.Connection) {
			idx, ok := devIdx[c.InitialTuple().DstIP]
			if !ok {
				return
			}
			_, total := w.chunk()
			sink := app.NewSink(sclk, uint64(total), nil)
			sink.OnComplete = func() { w.CompletedAt[idx] = sclk.Now() }
			inner := sink.Callbacks()
			cb := inner
			cb.OnData = func(c *mptcp.Connection, total uint64) {
				now := sclk.Now()
				if last := w.LastData[idx]; last >= 0 {
					if gap := now - last; gap > w.MaxGap[idx] {
						w.MaxGap[idx] = gap
					}
				}
				w.LastData[idx] = now
				w.Recv[idx] = total
				if inner.OnData != nil {
					inner.OnData(c, total)
				}
			}
			c.SetCallbacks(cb)
		})
	}
}

// Client implements scenario.Workload: each device dials from its WiFi
// address through its own stack on its own host clock (its shard), with
// the fan-out's 10 µs stagger.
func (w *Load) Client(rt *scenario.Run) {
	for i := range rt.Net.Clients {
		cl := rt.Net.Clients[i]
		cclk := cl.Host.Clock()
		var srcCb mptcp.ConnCallbacks
		if size, _ := w.chunk(); w.Chunks > 1 {
			srcCb = app.NewBlockStreamer(cclk, w.Period, size, w.Chunks).Callbacks()
		} else {
			srcCb = app.NewSource(cclk, size, true).Callbacks()
		}
		dst := rt.Net.ServerAddrs[i%len(rt.Net.ServerAddrs)]
		at := sim.Millisecond + sim.Time(i)*10*sim.Microsecond
		w.DialAt[i] = at
		csh := rt.TraceShard(cl.Host.Name())
		// Metric handles bind to the device's shard slot (zero bundles
		// when the run records no metrics).
		mcfg := mptcp.Config{
			Scheduler: rt.Spec.Sched,
			Trace:     csh,
			Metrics:   rt.MPTCPMetrics(cclk),
			TCP:       tcp.Config{Metrics: rt.TCPMetrics(cclk)},
		}
		switch rt.Spec.Policy {
		case scenario.KernelPolicy:
			ep := mptcp.NewEndpoint(cl.Host, mcfg, pm.NewFullMesh())
			cclk.Schedule(at, "fleet.dial", func() {
				if _, err := ep.Connect(cl.Addrs[0], dst, rt.Port(), srcCb); err != nil {
					panic(err)
				}
			})
		default:
			st := smapp.New(cl.Host, smapp.Config{
				MPTCP:      mcfg,
				Trace:      csh,
				CtlMetrics: rt.CtlMetrics(cclk),
			})
			pcfg := rt.Spec.PolicyCfg
			if len(pcfg.Addrs) == 0 {
				pcfg.Addrs = cl.Addrs
			}
			cclk.Schedule(at, "fleet.dial", func() {
				if _, err := st.Dial(cl.Addrs[0], dst, rt.Port(), rt.Spec.Policy, pcfg, srcCb); err != nil {
					panic(err)
				}
			})
		}
	}
}

// Completed counts devices whose upload finished.
func (w *Load) Completed() int {
	n := 0
	for _, at := range w.CompletedAt {
		if at >= 0 {
			n++
		}
	}
	return n
}

// Done is the Stop.Until condition: every device finished.
func (w *Load) Done(*scenario.Run) bool {
	return len(w.CompletedAt) > 0 && w.Completed() == len(w.CompletedAt)
}
