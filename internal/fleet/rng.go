// Package fleet generates deterministic fleet-scale mobility corpora: a
// population of heterogeneous devices (commuters, pedestrians, parked
// laptops, vehicles), each with its own WiFi/LTE link quality and its own
// WiFi↔LTE handover timeline, compiled down to the scenario layer's
// topology/event primitives. The whole corpus is a pure function of the
// device ordinal and the generation knobs — never of the simulation seed
// or the shard count — so a 10 000-device fleet is bit-identical whether
// it runs on one event loop or sixteen, and per-seed variety comes from
// the simulator's own random streams (loss draws, ECMP hashing), exactly
// like every other scenario in the repo.
package fleet

import "time"

// Stream is a splitmix64 generator. Each device owns one, seeded purely
// from its ordinal, so device 17's profile pick, link-quality draws, and
// mobility timeline never depend on how many other devices exist, which
// seed the run uses, or how the world is sharded. splitmix64 passes
// BigCrush, needs eight bytes of state, and — unlike math/rand — has a
// spec-fixed output sequence we control end to end.
type Stream struct {
	state uint64
}

// DeviceStream returns the generator for one device ordinal. The initial
// state is the ordinal run through one splitmix64 round (plus one so
// device 0 does not sit at the all-zero fixed point of the first mix).
func DeviceStream(ordinal int) *Stream {
	s := &Stream{state: uint64(ordinal) + 1}
	s.state = s.Uint64()
	return s
}

// Uint64 advances the stream (splitmix64: Steele, Lea & Flood 2014).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform draw in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + s.Float64()*(hi-lo)
}

// Between returns a uniform duration draw in [lo, hi).
func (s *Stream) Between(lo, hi time.Duration) time.Duration {
	return lo + time.Duration(s.Float64()*float64(hi-lo))
}
