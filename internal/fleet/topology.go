package fleet

import (
	"fmt"
	"net/netip"

	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Topology is the fleet's network: every device is a client host with a
// WiFi and an LTE interface, each on its own access link — with that
// device's drawn rate/delay/loss — into one aggregation router, and
// per-server bottleneck links to the server hosts, exactly the star
// convention the scale experiment uses.
//
// Host groups for sharded worlds follow the star layout: the aggregation
// router is group 0, server k group 1+k, device i group Servers+1+i, so
// devices interleave round-robin over the shards and the access-link
// delays bound the lookahead.
type Topology struct {
	Devices    []*Device
	Servers    int // server hosts behind the aggregation (0 = 1)
	Bottleneck netem.LinkConfig
}

// Build implements scenario.Topology. Device i's host is named "d<i>";
// its links are "wifi<i>" and "lte<i>"; Addrs[0] is the WiFi address the
// device dials from, Addrs[1] the LTE one.
func (t Topology) Build(f sim.Fabric, seed int64) *scenario.Net {
	nsrv := t.Servers
	if nsrv < 1 {
		nsrv = 1
	}
	agg := netem.NewRouter(f.HostClock(0, "agg"), "agg", uint64(seed))
	n := &scenario.Net{Links: make(map[string]*netem.Duplex)}
	for k := 0; k < nsrv; k++ {
		name, lname := "server", "bottleneck"
		if k > 0 {
			name = fmt.Sprintf("server%d", k)
			lname = fmt.Sprintf("bottleneck%d", k)
		}
		srv := netem.NewHost(f.HostClock(1+k, name), name)
		addr := netip.AddrFrom4([4]byte{10, 255, 0, byte(1 + k)})
		trunk := netem.NewDuplex(lname, agg, srv, t.Bottleneck)
		srv.AddIface("eth0", addr, trunk.BA)
		agg.AddRoute(addr, trunk.AB)
		n.Links[lname] = trunk
		n.Servers = append(n.Servers, srv)
		n.ServerAddrs = append(n.ServerAddrs, addr)
	}
	for _, d := range t.Devices {
		i := d.Ordinal
		cname := fmt.Sprintf("d%d", i)
		h := netem.NewHost(f.HostClock(1+nsrv+i, cname), cname)
		ep := scenario.Endpoint{Host: h}
		for j, iface := range []struct {
			name string
			cfg  netem.LinkConfig
		}{{d.WiFiLink(), d.WiFi}, {d.LTELink(), d.LTE}} {
			addr := netip.AddrFrom4([4]byte{10, byte(1 + i/200), byte(1 + i%200), byte(1 + j)})
			dx := netem.NewDuplex(iface.name, h, agg, iface.cfg)
			h.AddIface(iface.name, addr, dx.AB)
			agg.AddRoute(addr, dx.BA)
			n.Links[iface.name] = dx
			ep.Addrs = append(ep.Addrs, addr)
		}
		n.Clients = append(n.Clients, ep)
	}
	return n
}

// Describe implements scenario.Topology.
func (t Topology) Describe() string {
	return fmt.Sprintf("%d mobile devices (WiFi+LTE each) behind one aggregation", len(t.Devices))
}
