package fleet

import (
	"testing"
	"time"
)

func TestDeviceStreamDeterministic(t *testing.T) {
	a, b := DeviceStream(42), DeviceStream(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream 42 diverged at draw %d", i)
		}
	}
	if DeviceStream(0).Uint64() == DeviceStream(1).Uint64() {
		t.Fatal("adjacent ordinals produced the same first draw")
	}
	for i := 0; i < 1000; i++ {
		if f := DeviceStream(i).Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("commuter:3, office:1,home")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].Weight != 3 || mix[2].Weight != 1 {
		t.Fatalf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "nope:1", "commuter:0", "commuter:-1", "commuter:x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) did not fail", bad)
		}
	}
}

// genCfg is the test corpus configuration.
func genCfg(d time.Duration) GenConfig {
	mix, err := ParseMix(DefaultMix)
	if err != nil {
		panic(err)
	}
	return GenConfig{Mix: mix, Duration: d, HandoverRate: 1}
}

// TestOrdinalStableAcrossFleetSize is the corpus contract: device 7 is
// the SAME device — profile, link draws, full timeline — whether the
// fleet has 10 members or 1000. Without this, growing the fleet would
// silently re-randomise every existing device.
func TestOrdinalStableAcrossFleetSize(t *testing.T) {
	small, err := Generate(10, genCfg(12*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(1000, genCfg(12*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		a, b := small[i], big[i]
		if a.Profile.Name != b.Profile.Name || a.WiFi != b.WiFi || a.LTE != b.LTE {
			t.Fatalf("device %d draws changed with fleet size: %+v vs %+v", i, a, b)
		}
		if a.Handovers != b.Handovers || a.Offline != b.Offline {
			t.Fatalf("device %d timeline changed with fleet size", i)
		}
		ae, be := a.Events(), b.Events()
		if len(ae) != len(be) {
			t.Fatalf("device %d: %d vs %d events", i, len(ae), len(be))
		}
		for k := range ae {
			if ae[k].At != be[k].At || ae[k].Name != be[k].Name {
				t.Fatalf("device %d event %d: (%v,%s) vs (%v,%s)",
					i, k, ae[k].At, ae[k].Name, be[k].At, be[k].Name)
			}
		}
	}
}

func TestDrawsWithinProfileRanges(t *testing.T) {
	devs, err := Generate(500, genCfg(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range devs {
		p := d.Profile
		seen[p.Name] = true
		if d.WiFi.RateBps < p.WiFi.RateBps[0] || d.WiFi.RateBps >= p.WiFi.RateBps[1] {
			t.Fatalf("device %d wifi rate %v outside %v", d.Ordinal, d.WiFi.RateBps, p.WiFi.RateBps)
		}
		if d.LTE.Delay < p.LTE.Delay[0] || d.LTE.Delay >= p.LTE.Delay[1] {
			t.Fatalf("device %d lte delay %v outside %v", d.Ordinal, d.LTE.Delay, p.LTE.Delay)
		}
		if d.WiFi.Loss < p.WiFi.Loss[0] || d.WiFi.Loss >= p.WiFi.Loss[1] {
			t.Fatalf("device %d wifi loss %v outside %v", d.Ordinal, d.WiFi.Loss, p.WiFi.Loss)
		}
	}
	for _, name := range ProfileNames() {
		if !seen[name] {
			t.Errorf("500 devices from the default mix never drew profile %s", name)
		}
	}
}

func TestHandoverRateScalesMobility(t *testing.T) {
	count := func(rate float64) int {
		cfg := genCfg(20 * time.Second)
		cfg.HandoverRate = rate
		devs, err := Generate(200, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range devs {
			total += d.Handovers
		}
		return total
	}
	slow, fast := count(0.5), count(2)
	if fast <= slow {
		t.Fatalf("handover_rate=2 scheduled %d handovers, rate=0.5 %d; want more", fast, slow)
	}
	cfg := genCfg(time.Second)
	cfg.HandoverRate = 0
	if _, err := Generate(4, cfg); err == nil {
		t.Fatal("HandoverRate=0 did not fail")
	}
}

func TestTimelineRespectsFloorAndDuration(t *testing.T) {
	dur := 15 * time.Second
	devs, err := Generate(300, genCfg(dur))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		for _, ev := range d.Events() {
			if ev.At < firstHandoverFloor {
				t.Fatalf("device %d schedules %s at %v, before the dial floor", d.Ordinal, ev.Name, ev.At)
			}
		}
	}
	evs := CollectEvents(devs, dur)
	if len(evs) == 0 {
		t.Fatal("no events collected")
	}
	for _, ev := range evs {
		if ev.At > dur {
			t.Fatalf("CollectEvents kept %s at %v past the %v window", ev.Name, ev.At, dur)
		}
	}
}
