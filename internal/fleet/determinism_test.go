package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// runFleet builds and executes the registered fleet scenario with the
// given extra parameters at the given shard count (0 = engine default).
func runFleet(t *testing.T, name string, extra map[string]string, shards int) *stats.Result {
	t.Helper()
	p := scenario.NewParams(extra)
	if shards > 0 {
		p.Set("shards", strconv.Itoa(shards))
	}
	sp, err := scenario.Build(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return scenario.Execute(sp, 5)
}

func checkSame(t *testing.T, label string, a, b *stats.Result) {
	t.Helper()
	if a.Report != b.Report {
		t.Fatalf("%s: same-seed reports diverged\n--- first ---\n%s\n--- second ---\n%s",
			label, a.Report, b.Report)
	}
	for k, v := range a.Scalars {
		if strings.HasSuffix(k, "_wall_s") {
			continue
		}
		if b.Scalars[k] != v {
			t.Fatalf("%s: scalar %s diverged: %v vs %v", label, k, v, b.Scalars[k])
		}
	}
}

// TestFleetDeterminism1000Devices is the tentpole acceptance gate: a
// 1000-device corpus is bit-identical run to run and at every shard
// count — the per-ordinal splitmix64 streams keep the corpus itself
// seed- and shard-independent, and the sharded simulator keeps the
// execution so.
func TestFleetDeterminism1000Devices(t *testing.T) {
	params := map[string]string{
		"devices":  "1000",
		"kb":       "8",
		"duration": "3s",
	}
	a := runFleet(t, "fleet", params, 0)
	if a.Scalars["completed"] == 0 {
		t.Fatal("no device completed its upload")
	}
	if a.Scalars["handovers_scheduled"] == 0 {
		t.Fatal("corpus scheduled no handovers")
	}
	checkSame(t, "repeat", a, runFleet(t, "fleet", params, 0))
	for _, shards := range []int{1, 2, 8} {
		checkSame(t, fmt.Sprintf("shards=%d", shards), a,
			runFleet(t, "fleet", params, shards))
	}
}

// TestFleetSweepFullTableDeterministic runs the whole 5-controller ×
// 4-scheduler survival matrix (tiny corpus) and demands the same table
// twice and at 4 shards, with every cell present.
func TestFleetSweepFullTableDeterministic(t *testing.T) {
	params := map[string]string{
		"devices":  "4",
		"kb":       "16",
		"duration": "4s",
	}
	a := runFleet(t, "fleetsweep", params, 0)
	checkSame(t, "repeat", a, runFleet(t, "fleetsweep", params, 0))
	checkSame(t, "shards=4", a, runFleet(t, "fleetsweep", params, 4))
	cells := 0
	for k := range a.Scalars {
		if strings.HasSuffix(k, "_completed") {
			cells++
		}
	}
	if cells != 20 {
		t.Fatalf("survival matrix has %d cells, want 5 controllers x 4 schedulers = 20", cells)
	}
	for _, ctl := range []string{"backup", "fullmesh", "ndiffports", "refresh", "stream"} {
		if _, ok := a.Scalars[ctl+"/lowest-rtt_completed"]; !ok {
			t.Fatalf("survival matrix missing controller %s cells", ctl)
		}
		if !strings.Contains(a.Report, ctl) {
			t.Fatalf("survival table missing controller row %q:\n%s", ctl, a.Report)
		}
	}
}

// TestFleetRejectsBadParams pins the factory-level validation errors.
func TestFleetRejectsBadParams(t *testing.T) {
	for _, bad := range []map[string]string{
		{"profile_mix": "nope"},
		{"handover_rate": "0"},
		{"handover_rate": "-2"},
		{"devices": "0"},
		{"bogus_key": "1"},
	} {
		p := scenario.NewParams(bad)
		if _, err := scenario.Build("fleet", p); err == nil {
			t.Fatalf("fleet accepted %v", bad)
		}
	}
}
