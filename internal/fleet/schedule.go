package fleet

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/scenario"
)

// firstHandoverFloor is the earliest a device may start fading its WiFi:
// late enough that every staggered dial (1 ms + 10 µs per device) has
// completed its MP_CAPABLE handshake on the still-up primary interface.
const firstHandoverFloor = 300 * time.Millisecond

// Device is one generated fleet member: its drawn link qualities and its
// compiled mobility timeline. Everything here is a pure function of
// (ordinal, mix, handover rate, duration) — see the package doc.
type Device struct {
	Ordinal int
	Profile *Profile
	WiFi    netem.LinkConfig // drawn access-link quality, primary
	LTE     netem.LinkConfig // drawn access-link quality, fallback

	// Handovers is how many WiFi→LTE switches the timeline schedules
	// within the corpus duration; Offline is the summed WiFi downtime.
	Handovers int
	Offline   time.Duration

	events []scenario.Event
}

// WiFiLink and LTELink name the device's two access links in the built
// topology ("wifi<ordinal>", "lte<ordinal>").
func (d *Device) WiFiLink() string { return fmt.Sprintf("wifi%d", d.Ordinal) }
func (d *Device) LTELink() string  { return fmt.Sprintf("lte%d", d.Ordinal) }

// Events returns the device's compiled scenario events.
func (d *Device) Events() []scenario.Event { return d.events }

// GenConfig are the corpus-generation knobs shared by every device.
type GenConfig struct {
	Mix      []MixEntry
	Duration time.Duration // corpus window; events past it are dropped
	// HandoverRate scales mobility: dwell times divide by it, so 2.0
	// hands over twice as often and 0.5 half as often. Must be > 0.
	HandoverRate float64
}

// Generate draws the whole fleet: device i's profile, link qualities,
// and mobility timeline all come from DeviceStream(i), so the corpus is
// identical for any shard count, any seed, and any total device count
// (device 17 is the same device in a 20-device and a 10 000-device run).
func Generate(n int, cfg GenConfig) ([]*Device, error) {
	if cfg.HandoverRate <= 0 {
		return nil, fmt.Errorf("fleet: handover_rate %v: must be positive", cfg.HandoverRate)
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("fleet: empty profile mix")
	}
	devs := make([]*Device, n)
	for i := range devs {
		devs[i] = genDevice(i, cfg)
	}
	return devs, nil
}

// genDevice draws one device. The draw order is part of the format:
// profile, WiFi link, LTE link, then the handover timeline, then the
// cross-traffic timeline — changing it changes every corpus.
func genDevice(i int, cfg GenConfig) *Device {
	s := DeviceStream(i)
	p := pick(cfg.Mix, s)
	d := &Device{Ordinal: i, Profile: p, WiFi: p.WiFi.draw(s), LTE: p.LTE.draw(s)}

	rate := cfg.HandoverRate
	dwell := func(r Ranged) time.Duration {
		return time.Duration(float64(s.Between(r[0], r[1])) / rate)
	}
	fadeLead := time.Duration(p.FadeSteps) * p.FadeStep

	// Handover timeline: dwell on WiFi, fade, drop WiFi for an LTE
	// dwell, then come back with the residual loss restored.
	t := firstHandoverFloor + fadeLead + dwell(p.WiFiDwell)
	for t < cfg.Duration {
		for k := 1; k <= p.FadeSteps; k++ {
			frac := float64(k) / float64(p.FadeSteps)
			loss := d.WiFi.Loss + frac*(p.FadeLoss-d.WiFi.Loss)
			d.event(t-fadeLead+time.Duration(k-1)*p.FadeStep, "fleet.fade",
				setLinkLoss(d.WiFiLink(), loss))
		}
		out := dwell(p.LTEDwell)
		d.events = append(d.events, scenario.FlapClientIface(t, out, i, 0)...)
		d.event(t+out, "fleet.recover", setLinkLoss(d.WiFiLink(), d.WiFi.Loss))
		d.Handovers++
		d.Offline += out
		t += out + fadeLead + dwell(p.WiFiDwell)
	}

	// Cross-traffic bursts on the LTE path, independent cadence.
	if p.CrossEvery[1] > 0 {
		ct := s.Between(p.CrossEvery[0], p.CrossEvery[1])
		for ct < cfg.Duration {
			loss := s.Range(p.CrossLoss[0], p.CrossLoss[1])
			dur := s.Between(p.CrossDur[0], p.CrossDur[1])
			d.event(ct, "fleet.cross", setLinkLoss(d.LTELink(), loss))
			d.event(ct+dur, "fleet.calm", setLinkLoss(d.LTELink(), d.LTE.Loss))
			ct += dur + s.Between(p.CrossEvery[0], p.CrossEvery[1])
		}
	}
	return d
}

func (d *Device) event(at time.Duration, name string, do func(rt *scenario.Run)) {
	d.events = append(d.events, scenario.Event{At: at, Name: name, Do: do})
}

// setLinkLoss sets both directions of a named link to the given loss
// ratio — a radio fade degrades uplink and downlink alike, unlike the
// egress-qdisc loss steps of the paper figures.
func setLinkLoss(link string, loss float64) func(rt *scenario.Run) {
	return func(rt *scenario.Run) { rt.Net.Link(link).SetLoss(loss) }
}

// CollectEvents concatenates every device's timeline into one event list
// for a RunSpec, dropping events past the corpus duration (the stop
// horizon would never fire them anyway).
func CollectEvents(devs []*Device, duration time.Duration) []scenario.Event {
	var out []scenario.Event
	for _, d := range devs {
		for _, ev := range d.Events() {
			if ev.At <= duration {
				out = append(out, ev)
			}
		}
	}
	return out
}
