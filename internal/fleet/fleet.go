package fleet

import (
	"fmt"
	"time"

	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterises one fleet run.
type Config struct {
	Seed         int64
	Devices      int
	Servers      int           // server hosts, dialed round-robin (0 = 1)
	Bytes        int           // upload size per device
	Duration     time.Duration // corpus window / stop horizon
	Mix          string        // profile mix spec (see ParseMix)
	HandoverRate float64       // mobility multiplier (1 = profile cadence)
	Bottleneck   float64       // per-server bottleneck rate, bits/s
	Sched        string        // packet scheduler ("" = lowest-rtt)
	Policy       string        // subflow controller ("" = fullmesh)
}

// DefaultFleet is the paper-sized corpus: 64 mixed devices uploading
// 64 KB each through a 400 Mbps aggregation while they roam.
func DefaultFleet() Config {
	return Config{
		Seed:         1,
		Devices:      64,
		Bytes:        64 << 10,
		Duration:     20 * time.Second,
		Mix:          DefaultMix,
		HandoverRate: 1,
		Bottleneck:   400e6,
		Policy:       "fullmesh",
	}
}

func init() {
	scenario.Register("fleet",
		"fleet mobility corpus: N heterogeneous devices with per-device WiFi/LTE handover schedules",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultFleet()
			cfg.Devices = p.Int("devices", cfg.Devices)
			cfg.Servers = p.Int("servers", cfg.Servers)
			cfg.Bytes = p.Int("kb", cfg.Bytes>>10) << 10
			cfg.Duration = p.Duration("duration", cfg.Duration)
			cfg.Mix = p.Str("profile_mix", cfg.Mix)
			cfg.HandoverRate = p.Float("handover_rate", cfg.HandoverRate)
			cfg.Sched = p.Str("sched", cfg.Sched)
			cfg.Policy = p.Str("policy", cfg.Policy)
			if p.Bool("smoke", false) {
				cfg.Devices = 12
				cfg.Bytes = 32 << 10
				cfg.Duration = 6 * time.Second
			}
			return fleetSpec(cfg)
		})
	scenario.RegisterParams("fleet",
		scenario.ParamDoc{Key: "devices", Type: "int", Default: "64", Desc: "fleet size"},
		scenario.ParamDoc{Key: "profile_mix", Type: "string", Default: DefaultMix, Desc: "weighted device classes, e.g. commuter:3,office:1 (profiles: " + profileList() + ")"},
		scenario.ParamDoc{Key: "handover_rate", Type: "float", Default: "1", Desc: "mobility multiplier: 2 hands over twice as often"},
		scenario.ParamDoc{Key: "duration", Type: "duration", Default: "20s", Desc: "corpus window"},
		scenario.ParamDoc{Key: "kb", Type: "int", Default: "64", Desc: "upload per device in KB"},
		scenario.ParamDoc{Key: "servers", Type: "int", Default: "1", Desc: "server hosts behind the aggregation"},
	)
}

func profileList() string {
	out := ""
	for i, n := range ProfileNames() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// fleetSpec declares one fleet run: generate the corpus, build the star
// of per-device access links, upload under the mobility timeline, and
// reduce the per-device accounting to fleet-level percentiles. The
// percentile scalars come straight from the workload — no tracing — so
// multi-shard and multi-seed fleets stay legal; a traced single-shard
// run additionally gets the trace layer's handover-gap samples through
// the generic trace probe.
func fleetSpec(cfg Config) (*scenario.Spec, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("fleet: devices=%d: need at least one", cfg.Devices)
	}
	mix, err := ParseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	devs, err := Generate(cfg.Devices, GenConfig{
		Mix: mix, Duration: cfg.Duration, HandoverRate: cfg.HandoverRate,
	})
	if err != nil {
		return nil, err
	}
	wl := pacedLoad(cfg.Bytes, cfg.Duration)
	run := &scenario.RunSpec{
		Label: "fleet",
		Topology: Topology{
			Devices: devs,
			Servers: cfg.Servers,
			Bottleneck: netem.LinkConfig{
				RateBps: cfg.Bottleneck, Delay: 500 * time.Microsecond,
			},
		},
		Workload: wl,
		Sched:    cfg.Sched,
		Policy:   cfg.Policy,
		Events:   CollectEvents(devs, cfg.Duration),
		Stop: scenario.Stop{
			Horizon: cfg.Duration,
			Poll:    50 * time.Millisecond,
			Until:   wl.Done,
		},
	}
	return &scenario.Spec{
		Name:  "fleet",
		Title: "Fleet mobility corpus — per-device handover schedules at scale",
		Desc: fmt.Sprintf("%d devices (%s), %d KB up each, handover rate %gx, %v window",
			cfg.Devices, cfg.Mix, cfg.Bytes>>10, cfg.HandoverRate, cfg.Duration),
		Runs: []*scenario.RunSpec{run},
		Render: func(res *stats.Result, runs []*scenario.Run) {
			renderFleet(res, devs, wl, cfg, true)
		},
	}, nil
}

// pacedLoad builds the fleet workload paced over ~60% of the corpus
// window: 16 blocks per device, so every transfer is still in flight
// when the handover timelines start firing, and the remaining 40% is
// slack for stall recovery. An upload that would finish instantly tells
// the survival table nothing.
func pacedLoad(bytes int, duration time.Duration) *Load {
	const chunks = 16
	return &Load{
		Bytes:  bytes,
		Chunks: chunks,
		Period: duration * 6 / 10 / chunks,
	}
}

// fleetOutcome reduces one fleet run's per-device accounting to the
// report's distributions.
type fleetOutcome struct {
	completed int
	handovers int
	goodput   *stats.Sample // per-device delivered Mb/s
	stall     *stats.Sample // per-device worst data gap, seconds
}

func reduce(devs []*Device, wl *Load) fleetOutcome {
	o := fleetOutcome{goodput: &stats.Sample{}, stall: &stats.Sample{}}
	// A paced upload idles for one Period between blocks by design; only
	// the excess over that floor is a stall the network caused.
	var floor sim.Time
	if wl.Chunks > 1 {
		floor = sim.Time(wl.Period)
	}
	for i := range wl.CompletedAt {
		o.handovers += devs[i].Handovers
		end := wl.CompletedAt[i]
		if end >= 0 {
			o.completed++
		} else {
			end = wl.LastData[i]
		}
		if end > wl.DialAt[i] && wl.Recv[i] > 0 {
			o.goodput.Add(float64(wl.Recv[i]*8) / (end - wl.DialAt[i]).Seconds() / 1e6)
		} else {
			o.goodput.Add(0)
		}
		stall := wl.MaxGap[i] - floor
		if stall < 0 {
			stall = 0
		}
		o.stall.Add(stall.Seconds())
	}
	return o
}

// renderFleet writes the fleet sections and scalars. The samples land
// under stable names so multi-seed runs pool them across seeds.
func renderFleet(res *stats.Result, devs []*Device, wl *Load, cfg Config, sections bool) {
	o := reduce(devs, wl)
	res.Scalars["completed"] = float64(o.completed)
	res.Scalars["handovers_scheduled"] = float64(o.handovers)
	res.Scalars["gap_p50_s"] = o.stall.Median()
	res.Scalars["gap_p99_s"] = o.stall.Quantile(0.99)
	res.Scalars["gap_max_s"] = o.stall.Max()
	res.Scalars["goodput_p10_mbps"] = o.goodput.Quantile(0.10)
	res.Scalars["goodput_p50_mbps"] = o.goodput.Median()
	res.Scalars["goodput_p90_mbps"] = o.goodput.Quantile(0.90)
	res.Sample("device goodput (Mb/s)").Add(o.goodput.Values()...)
	res.Sample("device worst stall (s)").Add(o.stall.Values()...)
	if !sections {
		return
	}

	counts := map[string]int{}
	hos := map[string]int{}
	for _, d := range devs {
		counts[d.Profile.Name]++
		hos[d.Profile.Name] += d.Handovers
	}
	res.Section("profile mix")
	res.Printf("%-12s %7s %10s\n", "profile", "devices", "handovers")
	for _, name := range ProfileNames() {
		if counts[name] == 0 {
			continue
		}
		res.Printf("%-12s %7d %10d\n", name, counts[name], hos[name])
	}

	res.Section("fleet outcome")
	res.Printf("completed %d/%d uploads; %d handovers scheduled\n",
		o.completed, cfg.Devices, o.handovers)
	res.Printf("worst stall   p50 %6.3fs  p99 %6.3fs  max %6.3fs\n",
		o.stall.Median(), o.stall.Quantile(0.99), o.stall.Max())
	res.Printf("goodput       p10 %6.2f   p50 %6.2f   p90 %6.2f Mb/s\n",
		o.goodput.Quantile(0.10), o.goodput.Median(), o.goodput.Quantile(0.90))
}

// Fleet runs one fleet corpus (see fleetSpec) — the typed front door for
// tests and benchmarks.
func Fleet(cfg Config) *stats.Result {
	sp, err := fleetSpec(cfg)
	if err != nil {
		panic(err)
	}
	return scenario.Execute(sp, cfg.Seed)
}
