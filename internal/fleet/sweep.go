package fleet

import (
	"fmt"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// SweepConfig parameterises the policy-survival sweep: one identical
// fleet corpus per (controller, scheduler) cell, so the table isolates
// what the policy layer does under fleet-scale mobility.
type SweepConfig struct {
	Seed         int64
	Devices      int
	Bytes        int
	Duration     time.Duration
	Mix          string
	HandoverRate float64
	Bottleneck   float64
	Controllers  []string // swept policies; empty = every registered controller
	Schedulers   []string // swept schedulers; empty = every registered scheduler
}

// DefaultSweep is the sweep-sized corpus: smaller than the fleet default
// because it runs controllers × schedulers times.
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Seed:         1,
		Devices:      16,
		Bytes:        48 << 10,
		Duration:     10 * time.Second,
		Mix:          DefaultMix,
		HandoverRate: 1,
		Bottleneck:   400e6,
	}
}

func init() {
	scenario.Register("fleetsweep",
		"policy survival at fleet scale: the same mobility corpus per subflow controller x packet scheduler",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultSweep()
			cfg.Devices = p.Int("devices", cfg.Devices)
			cfg.Bytes = p.Int("kb", cfg.Bytes>>10) << 10
			cfg.Duration = p.Duration("duration", cfg.Duration)
			cfg.Mix = p.Str("profile_mix", cfg.Mix)
			cfg.HandoverRate = p.Float("handover_rate", cfg.HandoverRate)
			if c := p.Str("policy", ""); c != "" {
				cfg.Controllers = []string{c}
			}
			cfg.Controllers = p.Strings("controllers", cfg.Controllers)
			if s := p.Str("sched", ""); s != "" {
				cfg.Schedulers = []string{s}
			}
			cfg.Schedulers = p.Strings("schedulers", cfg.Schedulers)
			if p.Bool("smoke", false) {
				cfg.Devices = 6
				cfg.Bytes = 16 << 10
				cfg.Duration = 4 * time.Second
			}
			return sweepSpec(cfg)
		})
	scenario.RegisterParams("fleetsweep",
		scenario.ParamDoc{Key: "devices", Type: "int", Default: "16", Desc: "fleet size per cell"},
		scenario.ParamDoc{Key: "controllers", Type: "list", Desc: "swept subflow controllers (default: every registered one)"},
		scenario.ParamDoc{Key: "schedulers", Type: "list", Desc: "swept packet schedulers (default: every registered one)"},
		scenario.ParamDoc{Key: "profile_mix", Type: "string", Default: DefaultMix, Desc: "weighted device classes shared by every cell"},
		scenario.ParamDoc{Key: "handover_rate", Type: "float", Default: "1", Desc: "mobility multiplier shared by every cell"},
		scenario.ParamDoc{Key: "duration", Type: "duration", Default: "10s", Desc: "corpus window per cell"},
		scenario.ParamDoc{Key: "kb", Type: "int", Default: "48", Desc: "upload per device in KB"},
	)
}

// sweepSpec declares the survival matrix: the SAME generated corpus
// (device profiles, link draws, handover timelines) re-run per
// (controller, scheduler) cell on a fresh topology and workload, so the
// only difference between cells is the policy under test.
func sweepSpec(cfg SweepConfig) (*scenario.Spec, error) {
	ctls := cfg.Controllers
	if len(ctls) == 0 {
		ctls = smapp.ControllerNames()
	}
	scheds := cfg.Schedulers
	if len(scheds) == 0 {
		scheds = mptcp.SchedulerNames()
	}
	for _, name := range ctls {
		if _, err := smapp.LookupController(name); err != nil {
			return nil, err
		}
	}
	for _, name := range scheds {
		if _, err := mptcp.LookupScheduler(name); err != nil {
			return nil, err
		}
	}
	mix, err := ParseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}

	type cell struct {
		ctl, sched string
		devs       []*Device
		wl         *Load
	}
	var cells []*cell
	var runs []*scenario.RunSpec
	for _, ctl := range ctls {
		for _, sched := range scheds {
			// One corpus per cell: device ordinals regenerate the same
			// timelines, but each cell needs its own Device values since
			// topologies retain them.
			devs, err := Generate(cfg.Devices, GenConfig{
				Mix: mix, Duration: cfg.Duration, HandoverRate: cfg.HandoverRate,
			})
			if err != nil {
				return nil, err
			}
			wl := pacedLoad(cfg.Bytes, cfg.Duration)
			c := &cell{ctl: ctl, sched: sched, devs: devs, wl: wl}
			cells = append(cells, c)
			runs = append(runs, &scenario.RunSpec{
				Label:    ctl + "/" + sched,
				Topology: Topology{Devices: devs, Bottleneck: netem.LinkConfig{RateBps: cfg.Bottleneck, Delay: 500 * time.Microsecond}},
				Workload: wl,
				Sched:    sched,
				Policy:   ctl,
				Stop: scenario.Stop{
					Horizon: cfg.Duration,
					Poll:    50 * time.Millisecond,
					Until:   wl.Done,
				},
			})
		}
	}

	return &scenario.Spec{
		Name:  "fleetsweep",
		Title: "Fleet policy survival — which controller keeps a mobile fleet moving",
		Desc: fmt.Sprintf("%d devices (%s), %d KB up, handover rate %gx, %v window; %d controllers x %d schedulers",
			cfg.Devices, cfg.Mix, cfg.Bytes>>10, cfg.HandoverRate, cfg.Duration, len(ctls), len(scheds)),
		Runs: runs,
		Render: func(res *stats.Result, _ []*scenario.Run) {
			res.Section("policy survival matrix")
			res.Printf("%-12s %-12s %7s %10s %10s %12s\n",
				"controller", "scheduler", "done", "stall p50", "stall p99", "goodput p50")
			type rowStat struct {
				completed int
				gp50      float64
			}
			best := map[string]struct {
				ctl string
				rowStat
			}{}
			// The survival matrix is also emitted as a structured table
			// (one row per controller/scheduler cell), so workspace diffs
			// compare it table-by-table instead of scraping report text.
			tbl := res.Table("survival",
				"completed", "gap_p50_s", "gap_p99_s", "goodput_p50_mbps", "goodput_p10_mbps")
			for _, c := range cells {
				o := reduce(c.devs, c.wl)
				key := c.ctl + "/" + c.sched
				res.Scalars[key+"_completed"] = float64(o.completed)
				res.Scalars[key+"_gap_p50_s"] = o.stall.Median()
				res.Scalars[key+"_gap_p99_s"] = o.stall.Quantile(0.99)
				res.Scalars[key+"_goodput_p50_mbps"] = o.goodput.Median()
				res.Scalars[key+"_goodput_p10_mbps"] = o.goodput.Quantile(0.10)
				tbl.AddRow(key, float64(o.completed), o.stall.Median(), o.stall.Quantile(0.99),
					o.goodput.Median(), o.goodput.Quantile(0.10))
				res.Printf("%-12s %-12s %4d/%-2d %9.3fs %9.3fs %9.2fMb/s\n",
					c.ctl, c.sched, o.completed, cfg.Devices,
					o.stall.Median(), o.stall.Quantile(0.99), o.goodput.Median())
				r := rowStat{completed: o.completed, gp50: o.goodput.Median()}
				if b, ok := best[c.sched]; !ok || r.completed > b.completed ||
					(r.completed == b.completed && r.gp50 > b.gp50) {
					best[c.sched] = struct {
						ctl string
						rowStat
					}{c.ctl, r}
				}
			}
			res.Section("survivors (most completions, goodput tie-break)")
			for _, sched := range scheds {
				b := best[sched]
				res.Printf("%-12s -> %-12s (%d/%d done, p50 %.2f Mb/s)\n",
					sched, b.ctl, b.completed, cfg.Devices, b.gp50)
			}
		},
	}, nil
}

// Sweep runs the policy-survival matrix (see sweepSpec).
func Sweep(cfg SweepConfig) *stats.Result {
	sp, err := sweepSpec(cfg)
	if err != nil {
		panic(err)
	}
	return scenario.Execute(sp, cfg.Seed)
}
