package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// This file is the live introspection endpoint: the process's active
// registry (SetLive) exported as an expvar variable, a Prometheus text
// page, and the stock pprof handlers — so a long smappd or mpexp run
// can be profiled and scraped in flight. Scrapes during a running
// sharded world are best-effort reads of single-writer slots (atomic
// loads of plainly written values): monotone counters may lag a scrape
// by an increment, which is fine for observability.

var publishOnce sync.Once

// Publish registers the live registry's snapshot under the expvar name
// "metrics", visible at /debug/vars alongside memstats. Idempotent.
func Publish() {
	publishOnce.Do(func() {
		expvar.Publish("metrics", expvar.Func(func() any {
			return Live().Snapshot()
		}))
	})
}

// Handler returns the endpoint mux:
//
//	/metrics     Prometheus text exposition of the live registry
//	/metrics.txt sorted plain-text rendering (Snapshot.Text)
//	/debug/vars  expvar JSON (includes the "metrics" variable)
//	/debug/pprof the stock runtime profiles
func Handler() http.Handler {
	Publish()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeProm(w, Live().Snapshot())
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, Live().Snapshot().Text())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the endpoint on addr in a background goroutine and
// returns the bound address (useful with a ":0" addr). The listener
// stays up for the life of the process.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// writeProm renders the snapshot in the Prometheus text exposition
// format: merged value per metric, per-shard breakdown as a labelled
// family, histogram buckets as cumulative counts.
func writeProm(w http.ResponseWriter, s *Snapshot) {
	for i := range s.Metrics {
		m := &s.Metrics[i]
		name := promName(m.Name)
		switch m.Kind {
		case "histogram":
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum uint64
			for bi, c := range m.Buckets {
				cum += c
				le := fmt.Sprintf("%d", bi)
				if bi == len(m.Buckets)-1 {
					le = "+Inf"
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
			}
			fmt.Fprintf(w, "%s_count %d\n", name, m.Value)
		default:
			fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Kind)
			fmt.Fprintf(w, "%s %d\n", name, m.Value)
			if len(m.Shards) > 1 {
				for si, v := range m.Shards {
					fmt.Fprintf(w, "%s_shard{shard=\"%d\"} %d\n", name, si, v)
				}
			}
		}
	}
}

func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}
