// Package metrics is the runtime's zero-allocation metrics registry:
// counters, gauges, and fixed-bucket histograms with one storage slot per
// world shard. Handles are acquired once at wiring time (get-or-create,
// idempotent) and record with a plain single-writer increment into the
// caller's shard slot — no atomics, no locks, no allocation — which is
// safe because everything owned by a shard runs on that shard's event
// loop. Reads (Snapshot) merge the slots: counters and histograms sum,
// gauges take the max.
//
// Every handle is nil-safe: methods on a nil *Counter/*Gauge/*Histogram
// (what a nil *Registry hands out) cost exactly one branch, the same
// contract as trace.Rec. Instrumented code therefore records
// unconditionally and never checks whether metrics are enabled.
//
// Metrics carry tags that drive export policy (see snapshot.go):
//
//   - TagWall marks host-wall-clock-valued metrics (barrier wait times,
//     GC-dependent pool misses). They legitimately differ between two
//     identical runs, so diffs always skip them.
//   - TagLayout marks metrics that are deterministic at a fixed shard
//     count but depend on how the world was sharded (lookahead windows,
//     cross-shard sends). Same-shard-count diffs compare them exactly;
//     the cross-shard-count invariance check drops them (Portable).
package metrics

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Tags recognised by the export policy.
const (
	// TagWall marks a metric whose value depends on host wall-clock
	// speed or GC timing; diffs skip it.
	TagWall = "wall"
	// TagLayout marks a metric that is deterministic for a fixed shard
	// count but varies across shard counts.
	TagLayout = "layout"
)

// Kind discriminates metric behaviour.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// slot is one shard's storage cell, padded to a cache line so two shards
// incrementing adjacent slots never false-share.
type slot struct {
	v uint64
	_ [56]byte
}

// metric is the registry-side state of one named metric.
type metric struct {
	name    string
	kind    Kind
	tags    []string
	slots   []slot
	hist    [][]uint64 // per-slot buckets (histograms only)
	log2    bool       // histogram bucketing: log2 of the value vs linear
	buckets int
}

// Registry holds a run's metrics, one storage slot per shard. A nil
// Registry is the disabled state: every handle it returns is nil and
// every recording costs one branch.
type Registry struct {
	nslots int

	mu      sync.Mutex
	metrics map[string]*metric
}

// New creates a registry with nslots per-shard storage slots (at least 1).
func New(nslots int) *Registry {
	if nslots < 1 {
		nslots = 1
	}
	return &Registry{nslots: nslots, metrics: make(map[string]*metric)}
}

// Slots reports the number of per-shard slots (0 on a nil registry).
func (r *Registry) Slots() int {
	if r == nil {
		return 0
	}
	return r.nslots
}

// get returns the named metric, creating it on first use and verifying
// the kind on later lookups. Tags and bucket shape are fixed by the
// first caller.
func (r *Registry) get(name string, kind Kind, buckets int, log2 bool, tags []string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{
		name:    name,
		kind:    kind,
		tags:    append([]string(nil), tags...),
		slots:   make([]slot, r.nslots),
		log2:    log2,
		buckets: buckets,
	}
	if kind == KindHistogram {
		m.hist = make([][]uint64, r.nslots)
		for i := range m.hist {
			m.hist[i] = make([]uint64, buckets)
		}
	}
	r.metrics[name] = m
	return m
}

func (r *Registry) slotCheck(slot int) int {
	if slot < 0 || slot >= r.nslots {
		panic(fmt.Sprintf("metrics: slot %d out of range [0,%d)", slot, r.nslots))
	}
	return slot
}

// Counter is a monotonically increasing count. Merge across slots: sum.
type Counter struct{ p *uint64 }

// Inc adds one. Nil-safe: a disabled counter costs one branch.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	*c.p++
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	*c.p += n
}

// Counter returns the slot-th handle of the named counter, creating the
// metric on first use. Returns nil (the disabled handle) on a nil
// registry.
func (r *Registry) Counter(name string, slot int, tags ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.get(name, KindCounter, 0, false, tags)
	return &Counter{p: &m.slots[r.slotCheck(slot)].v}
}

// Gauge is a level that merges across slots by maximum — the natural
// semantics for high-water marks, the registry's main gauge use.
type Gauge struct{ p *uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	*g.p = v
}

// SetMax raises the gauge to v if v is larger. Nil-safe.
func (g *Gauge) SetMax(v uint64) {
	if g == nil {
		return
	}
	if v > *g.p {
		*g.p = v
	}
}

// Gauge returns the slot-th handle of the named gauge.
func (r *Registry) Gauge(name string, slot int, tags ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.get(name, KindGauge, 0, false, tags)
	return &Gauge{p: &m.slots[r.slotCheck(slot)].v}
}

// Histogram is a fixed-bucket distribution. Values at or beyond the last
// bucket clamp into it. Merge across slots: per-bucket sum.
type Histogram struct {
	b    []uint64
	log2 bool
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := int(v)
	if h.log2 {
		i = bits.Len64(v) // 0 → bucket 0, [2^k, 2^k+1) → bucket k+1
	}
	if i >= len(h.b) {
		i = len(h.b) - 1
	}
	h.b[i]++
}

// HistogramLinear returns the slot-th handle of a linear histogram with
// the given bucket count: value v lands in bucket min(v, buckets-1).
// Right for small ordinal domains like per-subflow scheduler picks.
func (r *Registry) HistogramLinear(name string, buckets, slot int, tags ...string) *Histogram {
	return r.histogram(name, buckets, slot, false, tags)
}

// HistogramLog2 returns the slot-th handle of a log2 histogram: value v
// lands in bucket min(bits.Len64(v), buckets-1), i.e. bucket k covers
// [2^(k-1), 2^k). Right for wide ranges like nanosecond durations.
func (r *Registry) HistogramLog2(name string, buckets, slot int, tags ...string) *Histogram {
	return r.histogram(name, buckets, slot, true, tags)
}

func (r *Registry) histogram(name string, buckets, slot int, log2 bool, tags []string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets < 1 {
		panic("metrics: histogram needs at least one bucket")
	}
	m := r.get(name, KindHistogram, buckets, log2, tags)
	if m.buckets != buckets || m.log2 != log2 {
		panic(fmt.Sprintf("metrics: %s bucket shape mismatch", name))
	}
	return &Histogram{b: m.hist[r.slotCheck(slot)], log2: log2}
}

// live is the most recently activated registry, for the process-wide
// introspection endpoint (see serve.go): scenario runs and daemons call
// SetLive when they build their registry, and the endpoint snapshots
// whatever is live at scrape time.
var live atomic.Pointer[Registry]

// SetLive installs r as the process's live registry (nil clears it).
func SetLive(r *Registry) { live.Store(r) }

// Live reports the process's live registry (nil when none is active).
func Live() *Registry { return live.Load() }
