package metrics

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/testutil"
)

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", 0)
	g := r.Gauge("y", 0)
	h := r.HistogramLinear("z", 4, 0)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles")
	}
	// All recording paths must be no-ops, not panics.
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.SetMax(9)
	h.Observe(2)
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatalf("nil registry snapshot: %+v", s.Metrics)
	}
	if r.Slots() != 0 {
		t.Fatalf("nil registry Slots = %d", r.Slots())
	}
}

func TestCounterMergeAcrossSlots(t *testing.T) {
	r := New(3)
	a := r.Counter("events", 0)
	b := r.Counter("events", 2)
	a.Add(5)
	b.Inc()
	m := r.Snapshot().Get("events")
	if m == nil || m.Value != 6 {
		t.Fatalf("merged counter = %+v, want 6", m)
	}
	if len(m.Shards) != 3 || m.Shards[0] != 5 || m.Shards[1] != 0 || m.Shards[2] != 1 {
		t.Fatalf("per-shard breakdown = %v", m.Shards)
	}
}

func TestGaugeMergesByMax(t *testing.T) {
	r := New(2)
	r.Gauge("hw", 0).SetMax(10)
	r.Gauge("hw", 1).SetMax(4)
	g := r.Gauge("hw", 0)
	g.SetMax(7) // below current 10: no change
	if m := r.Snapshot().Get("hw"); m.Value != 10 {
		t.Fatalf("gauge merge = %d, want 10", m.Value)
	}
	g.Set(2)
	if m := r.Snapshot().Get("hw"); m.Value != 4 {
		t.Fatalf("gauge merge after Set = %d, want 4 (slot 1 max)", m.Value)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(2)
	lin := r.HistogramLinear("picks", 4, 0)
	for _, v := range []uint64{0, 1, 1, 3, 99} { // 99 clamps into the last bucket
		lin.Observe(v)
	}
	r.HistogramLinear("picks", 4, 1).Observe(2)
	m := r.Snapshot().Get("picks")
	want := []uint64{1, 2, 1, 2}
	if m.Value != 6 {
		t.Fatalf("histogram total = %d, want 6", m.Value)
	}
	for i, w := range want {
		if m.Buckets[i] != w {
			t.Fatalf("buckets = %v, want %v", m.Buckets, want)
		}
	}
	if len(m.Shards) != 2 || m.Shards[0] != 5 || m.Shards[1] != 1 {
		t.Fatalf("histogram per-shard totals = %v", m.Shards)
	}

	log := r.HistogramLog2("ns", 8, 0)
	log.Observe(0)    // bucket 0
	log.Observe(1)    // bucket 1
	log.Observe(3)    // bucket 2
	log.Observe(1024) // bucket 7 (clamped from 11)
	lm := r.Snapshot().Get("ns")
	if lm.Buckets[0] != 1 || lm.Buckets[1] != 1 || lm.Buckets[2] != 1 || lm.Buckets[7] != 1 {
		t.Fatalf("log2 buckets = %v", lm.Buckets)
	}
}

func TestHandlesAreIdempotent(t *testing.T) {
	r := New(1)
	r.Counter("c", 0, TagWall).Inc()
	r.Counter("c", 0).Inc() // same metric; first caller's tags stick
	m := r.Snapshot().Get("c")
	if m.Value != 2 || !m.Has(TagWall) {
		t.Fatalf("idempotent get: %+v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch must panic")
		}
	}()
	r.Gauge("c", 0)
}

func TestSnapshotDeterministicAndFiltered(t *testing.T) {
	build := func() *Registry {
		r := New(2)
		r.Counter("b_wall", 0, TagWall).Add(3)
		r.Counter("a_plain", 1).Add(1)
		r.Counter("c_layout", 0, TagLayout).Add(9)
		r.Gauge("d_hw", 1).Set(4)
		return r
	}
	e1, err := build().Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := build().Snapshot().Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatalf("snapshot encoding not deterministic:\n%s\nvs\n%s", e1, e2)
	}

	s := build().Snapshot()
	can := s.Canonical()
	if can.Get("b_wall") != nil {
		t.Fatalf("Canonical kept a wall metric")
	}
	if can.Get("c_layout") == nil || len(can.Get("c_layout").Shards) != 2 {
		t.Fatalf("Canonical must keep layout metrics and shard arrays: %+v", can)
	}
	port := s.Portable()
	if port.Get("c_layout") != nil || port.Get("b_wall") != nil {
		t.Fatalf("Portable kept a wall/layout metric")
	}
	if m := port.Get("a_plain"); m == nil || m.Shards != nil {
		t.Fatalf("Portable must drop per-shard arrays: %+v", m)
	}

	dec, err := Decode(e1)
	if err != nil {
		t.Fatal(err)
	}
	re, _ := dec.Encode()
	if !bytes.Equal(e1, re) {
		t.Fatalf("decode/encode round trip drifted")
	}
}

func TestTextRendering(t *testing.T) {
	r := New(1)
	r.Counter("zz", 0).Add(2)
	r.Gauge("aa", 0, TagWall).Set(7)
	txt := r.Snapshot().Text()
	if !strings.Contains(txt, "aa") || !strings.Contains(txt, "zz") {
		t.Fatalf("text rendering missing metrics:\n%s", txt)
	}
	if strings.Index(txt, "aa") > strings.Index(txt, "zz") {
		t.Fatalf("text rendering not sorted:\n%s", txt)
	}
	if !strings.Contains(txt, "(gauge)") || !strings.Contains(txt, "[wall]") {
		t.Fatalf("text rendering missing kind/tags:\n%s", txt)
	}
}

func TestServeEndpoint(t *testing.T) {
	r := New(2)
	r.Counter("sim_events", 0).Add(11)
	r.Counter("sim_events", 1).Add(4)
	r.HistogramLinear("picks", 3, 0).Observe(1)
	SetLive(r)
	defer SetLive(nil)
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf, _ := io.ReadAll(resp.Body)
		return string(buf)
	}
	prom := get("/metrics")
	if !strings.Contains(prom, "sim_events 15") || !strings.Contains(prom, `sim_events_shard{shard="0"} 11`) {
		t.Fatalf("prom exposition:\n%s", prom)
	}
	if !strings.Contains(prom, "picks_count 1") {
		t.Fatalf("prom histogram:\n%s", prom)
	}
	if !strings.Contains(get("/metrics.txt"), "sim_events") {
		t.Fatalf("text endpoint missing metrics")
	}
	if !strings.Contains(get("/debug/vars"), `"metrics"`) {
		t.Fatalf("expvar endpoint missing the metrics variable")
	}
}

func TestRecordingDoesNotAllocate(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race")
	}
	r := New(4)
	c := r.Counter("c", 3)
	g := r.Gauge("g", 1)
	h := r.HistogramLog2("h", 16, 2)
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.SetMax(9)
		h.Observe(1 << 20)
		nilC.Inc()
	}); n != 0 {
		t.Fatalf("recording allocates %v per run, want 0", n)
	}
}
