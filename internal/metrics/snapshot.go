package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Metric is one exported metric: the merged value, the per-shard
// breakdown (when the registry has more than one slot), and the merged
// histogram buckets.
type Metric struct {
	Name string   `json:"name"`
	Kind string   `json:"kind"`
	Tags []string `json:"tags,omitempty"`
	// Value is the slot merge: sum for counters and histograms (total
	// observations), max for gauges.
	Value uint64 `json:"value"`
	// Shards is the per-slot breakdown, present when the registry has
	// more than one slot.
	Shards []uint64 `json:"shards,omitempty"`
	// Buckets are the merged histogram buckets.
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Snapshot is a read-time merge of a registry, sorted by metric name.
// Its JSON encoding is deterministic, so two identical runs produce
// byte-identical snapshots once wall-clock-tagged metrics are dropped
// (Canonical).
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot merges the registry's slots into an exportable view. Slot
// values are read with atomic loads so a live endpoint scraping a
// running world never sees torn values; a between-runs snapshot (the
// metrics.json export) sees exact ones.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		out := Metric{Name: m.name, Kind: m.kind.String()}
		if len(m.tags) > 0 {
			out.Tags = append([]string(nil), m.tags...)
			sort.Strings(out.Tags)
		}
		per := make([]uint64, len(m.slots))
		for i := range m.slots {
			per[i] = atomic.LoadUint64(&m.slots[i].v)
		}
		switch m.kind {
		case KindGauge:
			for _, v := range per {
				if v > out.Value {
					out.Value = v
				}
			}
		case KindHistogram:
			out.Buckets = make([]uint64, m.buckets)
			for si := range m.hist {
				var total uint64
				for bi, c := range m.hist[si] {
					out.Buckets[bi] += c
					total += c
				}
				per[si] = total
			}
			for _, v := range per {
				out.Value += v
			}
		default:
			for _, v := range per {
				out.Value += v
			}
		}
		if len(per) > 1 {
			out.Shards = per
		}
		s.Metrics = append(s.Metrics, out)
	}
	return s
}

// Has reports whether the metric carries the tag.
func (m *Metric) Has(tag string) bool {
	for _, t := range m.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Get returns the named metric of the snapshot, or nil.
func (s *Snapshot) Get(name string) *Metric {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// Canonical returns a copy without wall-clock-tagged metrics: the
// deterministic view, byte-identical across repeated runs of the same
// configuration (including the shard count).
func (s *Snapshot) Canonical() *Snapshot {
	return s.filter(func(m *Metric) *Metric {
		if m.Has(TagWall) {
			return nil
		}
		return m
	})
}

// Portable returns Canonical further stripped of layout-tagged metrics
// and per-shard breakdowns: the view that is byte-identical across
// shard counts, not just across repeated runs.
func (s *Snapshot) Portable() *Snapshot {
	return s.filter(func(m *Metric) *Metric {
		if m.Has(TagWall) || m.Has(TagLayout) {
			return nil
		}
		c := *m
		c.Shards = nil
		return &c
	})
}

func (s *Snapshot) filter(f func(*Metric) *Metric) *Snapshot {
	out := &Snapshot{}
	for i := range s.Metrics {
		if m := f(&s.Metrics[i]); m != nil {
			out.Metrics = append(out.Metrics, *m)
		}
	}
	return out
}

// Encode renders the snapshot as deterministic indented JSON with a
// trailing newline — the metrics.json format.
func (s *Snapshot) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// WriteFile writes the encoded snapshot to path — the metrics.json
// artifact a workspace run directory stores.
func (s *Snapshot) WriteFile(path string) error {
	buf, err := s.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}

// Decode parses a metrics.json artifact.
func Decode(buf []byte) (*Snapshot, error) {
	s := &Snapshot{}
	if err := json.Unmarshal(buf, s); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return s, nil
}

// Text renders the snapshot as sorted aligned text, one metric per
// line: value, kind, name, tags, and the per-shard breakdown.
func (s *Snapshot) Text() string {
	var b strings.Builder
	width := 0
	for i := range s.Metrics {
		if n := len(s.Metrics[i].Name); n > width {
			width = n
		}
	}
	for i := range s.Metrics {
		m := &s.Metrics[i]
		fmt.Fprintf(&b, "%-*s %14d", width, m.Name, m.Value)
		if m.Kind != "counter" {
			fmt.Fprintf(&b, " (%s)", m.Kind)
		}
		if len(m.Tags) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(m.Tags, ","))
		}
		if len(m.Shards) > 1 {
			fmt.Fprintf(&b, " shards=%v", m.Shards)
		}
		if len(m.Buckets) > 0 {
			fmt.Fprintf(&b, " buckets=%v", m.Buckets)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
