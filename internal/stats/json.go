package stats

import (
	"encoding/json"
	"fmt"
)

// This file is the stable on-disk encoding of experiment results: the
// `result.json` (one simulation run) and `summary.json` (multi-seed
// aggregate) files an experiment workspace stores per run directory.
// The encoding is deterministic for a given Result — encoding/json sorts
// map keys, slices keep insertion order, and float64 values render with
// Go's shortest round-trippable representation — so two runs of the same
// scenario at the same seed produce byte-identical files, and `mpexp
// diff` can compare run directories scalar-by-scalar with confidence
// that any byte difference is a real numeric difference.

// ResultData is the serializable form of one Result. Samples flatten to
// their raw observations (insertion order); the rendered report text is
// NOT part of the encoding — the workspace stores it separately as
// report.txt, keeping result.json purely numeric.
type ResultData struct {
	Name    string               `json:"name"`
	Scalars map[string]float64   `json:"scalars,omitempty"`
	Samples map[string][]float64 `json:"samples,omitempty"`
	Series  []SeriesData         `json:"series,omitempty"`
	Tables  map[string]*Table    `json:"tables,omitempty"`
	// Wall lists scalar keys tagged wall-clock-valued (MarkWallClock):
	// host-speed-dependent numbers diff tools must not compare.
	Wall []string `json:"wall_clock,omitempty"`
}

// SeriesData is the serializable form of one time series.
type SeriesData struct {
	Name   string    `json:"name"`
	T      []float64 `json:"t"`
	Y      []float64 `json:"y"`
	Labels []string  `json:"labels,omitempty"`
}

// Data converts a Result into its serializable form. The conversion
// copies slices, so mutating the Result afterwards does not alias the
// encoded data.
func (r *Result) Data() *ResultData {
	d := &ResultData{Name: r.Name, Wall: r.WallKeys()}
	if len(r.Scalars) > 0 {
		d.Scalars = make(map[string]float64, len(r.Scalars))
		for k, v := range r.Scalars {
			d.Scalars[k] = v
		}
	}
	if len(r.Samples) > 0 {
		d.Samples = make(map[string][]float64, len(r.Samples))
		for k, s := range r.Samples {
			d.Samples[k] = append([]float64(nil), s.Values()...)
		}
	}
	for _, s := range r.Series {
		sd := SeriesData{Name: s.Name,
			T: append([]float64(nil), s.T...),
			Y: append([]float64(nil), s.Y...)}
		for _, l := range s.Labels {
			if l != "" {
				sd.Labels = append([]string(nil), s.Labels...)
				break
			}
		}
		d.Series = append(d.Series, sd)
	}
	if len(r.Tables) > 0 {
		d.Tables = make(map[string]*Table, len(r.Tables))
		for k, t := range r.Tables {
			ct := &Table{
				Columns: append([]string(nil), t.Columns...),
				Keys:    append([]string(nil), t.Keys...),
			}
			for _, row := range t.Rows {
				ct.Rows = append(ct.Rows, append([]float64(nil), row...))
			}
			d.Tables[k] = ct
		}
	}
	return d
}

// Encode renders the data as indented JSON with a trailing newline —
// the exact bytes written to result.json.
func (d *ResultData) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("stats: encode result %q: %w", d.Name, err)
	}
	return append(buf, '\n'), nil
}

// DecodeResult parses result.json bytes back into ResultData.
func DecodeResult(buf []byte) (*ResultData, error) {
	d := &ResultData{}
	if err := json.Unmarshal(buf, d); err != nil {
		return nil, fmt.Errorf("stats: decode result: %w", err)
	}
	return d, nil
}

// ScalarStats is the per-key aggregate a multi-seed run stores: the same
// five-number summary the aggregate report prints.
type ScalarStats struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// SummarizeScalar reduces one cross-seed sample to its stored summary.
func SummarizeScalar(s *Sample) ScalarStats {
	return ScalarStats{
		N:      s.N(),
		Mean:   s.Mean(),
		Median: s.Median(),
		P90:    s.Quantile(0.9),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// SummaryData is the serializable aggregate of a multi-seed run — the
// summary.json a workspace run directory stores when seeds > 1 (a single
// seed stores the full ResultData instead).
type SummaryData struct {
	Name     string                 `json:"name"`
	Seeds    int                    `json:"seeds"`
	BaseSeed int64                  `json:"base_seed"`
	Failed   int                    `json:"failed,omitempty"`
	Scalars  map[string]ScalarStats `json:"scalars,omitempty"`
	// Wall lists scalar keys tagged wall-clock-valued across the seeds
	// (union of the per-seed MarkWallClock tags).
	Wall []string `json:"wall_clock,omitempty"`
}

// Encode renders the summary as indented JSON with a trailing newline.
func (d *SummaryData) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("stats: encode summary %q: %w", d.Name, err)
	}
	return append(buf, '\n'), nil
}

// DecodeSummary parses summary.json bytes back into SummaryData.
func DecodeSummary(buf []byte) (*SummaryData, error) {
	d := &SummaryData{}
	if err := json.Unmarshal(buf, d); err != nil {
		return nil, fmt.Errorf("stats: decode summary: %w", err)
	}
	return d, nil
}
