package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of one experiment or scenario run: a
// human-readable report plus the raw distributions, time series, and
// headline scalars it was rendered from. It lives here — below both the
// scenario layer and the multi-seed runner — so every layer shares one
// result type without import cycles.
type Result struct {
	Name    string
	Report  string             // human-readable text (tables, CDFs)
	Samples map[string]*Sample // raw distributions keyed by curve name
	Series  []*Series          // time series (Fig. 2a)
	Scalars map[string]float64 // headline numbers for quick checks
	Tables  map[string]*Table  // structured matrices (fleetsweep survival)

	wall map[string]struct{} // scalar keys whose values depend on host wall clock
}

// MarkWallClock tags scalar keys as wall-clock-valued: their values
// depend on host speed, not simulated behaviour, so `mpexp diff` reports
// them informationally instead of comparing them. The tags travel with
// the encoded result (ResultData.Wall).
func (r *Result) MarkWallClock(keys ...string) {
	if r.wall == nil {
		r.wall = make(map[string]struct{})
	}
	for _, k := range keys {
		r.wall[k] = struct{}{}
	}
}

// WallKeys lists the wall-clock-tagged scalar keys, sorted.
func (r *Result) WallKeys() []string {
	if len(r.wall) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.wall))
	for k := range r.wall {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewResult builds an empty result.
func NewResult(name string) *Result {
	return &Result{
		Name:    name,
		Samples: make(map[string]*Sample),
		Scalars: make(map[string]float64),
	}
}

// Table is a structured numeric matrix: named columns, one keyed row per
// entry (the fleetsweep survival matrix keys rows "controller/scheduler").
// Unlike report text it survives the JSON encoding machine-readably, so
// `mpexp diff` can compare sweeps table-by-table instead of scraping the
// rendered report.
type Table struct {
	Columns []string    `json:"columns"`
	Keys    []string    `json:"keys"`
	Rows    [][]float64 `json:"rows"`
}

// Table returns the named table, creating it on first use.
func (r *Result) Table(name string, columns ...string) *Table {
	t, ok := r.Tables[name]
	if !ok {
		t = &Table{Columns: columns}
		if r.Tables == nil {
			r.Tables = make(map[string]*Table)
		}
		r.Tables[name] = t
	}
	return t
}

// AddRow appends one keyed row. The value count must match the column
// count; a mismatch is a programming error in the emitting scenario.
func (t *Table) AddRow(key string, vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("stats: table row %q has %d values for %d columns",
			key, len(vals), len(t.Columns)))
	}
	t.Keys = append(t.Keys, key)
	t.Rows = append(t.Rows, vals)
}

// Row returns the row for key and whether it exists.
func (t *Table) Row(key string) ([]float64, bool) {
	for i, k := range t.Keys {
		if k == key {
			return t.Rows[i], true
		}
	}
	return nil, false
}

// Sample returns the named distribution, creating it on first use.
func (r *Result) Sample(name string) *Sample {
	s, ok := r.Samples[name]
	if !ok {
		s = &Sample{}
		r.Samples[name] = s
	}
	return s
}

// Printf appends formatted text to the report.
func (r *Result) Printf(format string, args ...any) {
	r.Report += fmt.Sprintf(format, args...)
}

// Section starts a named report section.
func (r *Result) Section(title string) {
	r.Printf("\n== %s ==\n", title)
}

// RenderCDFs appends the ASCII CDF plot of the named samples (missing
// names are skipped) to the report.
func (r *Result) RenderCDFs(names ...string) {
	sub := make(map[string]*Sample)
	for _, n := range names {
		if s, ok := r.Samples[n]; ok {
			sub[n] = s
		}
	}
	r.Report += RenderCDFs(64, 16, sub)
}

// Header renders the boxed title block that opens every report.
func Header(name, desc string) string {
	line := strings.Repeat("=", len(name)+4)
	return fmt.Sprintf("%s\n  %s\n%s\n%s\n", line, name, line, desc)
}
