package stats

import (
	"fmt"
	"strings"
)

// Result is the outcome of one experiment or scenario run: a
// human-readable report plus the raw distributions, time series, and
// headline scalars it was rendered from. It lives here — below both the
// scenario layer and the multi-seed runner — so every layer shares one
// result type without import cycles.
type Result struct {
	Name    string
	Report  string             // human-readable text (tables, CDFs)
	Samples map[string]*Sample // raw distributions keyed by curve name
	Series  []*Series          // time series (Fig. 2a)
	Scalars map[string]float64 // headline numbers for quick checks
}

// NewResult builds an empty result.
func NewResult(name string) *Result {
	return &Result{
		Name:    name,
		Samples: make(map[string]*Sample),
		Scalars: make(map[string]float64),
	}
}

// Sample returns the named distribution, creating it on first use.
func (r *Result) Sample(name string) *Sample {
	s, ok := r.Samples[name]
	if !ok {
		s = &Sample{}
		r.Samples[name] = s
	}
	return s
}

// Printf appends formatted text to the report.
func (r *Result) Printf(format string, args ...any) {
	r.Report += fmt.Sprintf(format, args...)
}

// Section starts a named report section.
func (r *Result) Section(title string) {
	r.Printf("\n== %s ==\n", title)
}

// RenderCDFs appends the ASCII CDF plot of the named samples (missing
// names are skipped) to the report.
func (r *Result) RenderCDFs(names ...string) {
	sub := make(map[string]*Sample)
	for _, n := range names {
		if s, ok := r.Samples[n]; ok {
			sub[n] = s
		}
	}
	r.Report += RenderCDFs(64, 16, sub)
}

// Header renders the boxed title block that opens every report.
func Header(name, desc string) string {
	line := strings.Repeat("=", len(name)+4)
	return fmt.Sprintf("%s\n  %s\n%s\n%s\n", line, name, line, desc)
}
