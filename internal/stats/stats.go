// Package stats provides the small statistics toolkit the experiment
// harness uses to reproduce the paper's figures: empirical CDFs (Figs. 2b,
// 2c, 3), quantiles, summaries, and time series (Fig. 2a), plus ASCII
// rendering for terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is an accumulating collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends observations.
func (s *Sample) Add(xs ...float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// N reports the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the observations in insertion order.
func (s *Sample) Values() []float64 { return s.xs }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean reports the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev reports the sample standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Min reports the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[0]
}

// Max reports the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[len(s.xs)-1]
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	s.sort()
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median reports the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CDFAt reports the empirical CDF value at x.
func (s *Sample) CDFAt(x float64) float64 {
	s.sort()
	if len(s.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.xs, x)
	for i < len(s.xs) && s.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the full empirical distribution as (value, probability)
// steps — the series the paper's CDF figures plot.
func (s *Sample) CDF() []CDFPoint {
	s.sort()
	out := make([]CDFPoint, len(s.xs))
	for i, x := range s.xs {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s.xs))}
	}
	return out
}

// Summary formats n/mean/median/p90/min/max on one line.
func (s *Sample) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.4g%s median=%.4g%s p90=%.4g%s min=%.4g%s max=%.4g%s",
		s.N(), s.Mean(), unit, s.Median(), unit, s.Quantile(0.9), unit,
		s.Min(), unit, s.Max(), unit)
}

// Series is a time-ordered sequence of (t, y[, label]) points (the Fig. 2a
// sequence-number trace).
type Series struct {
	Name   string
	T      []float64
	Y      []float64
	Labels []string
}

// Append adds one point with an optional label.
func (s *Series) Append(t, y float64, label string) {
	s.T = append(s.T, t)
	s.Y = append(s.Y, y)
	s.Labels = append(s.Labels, label)
}

// RenderCDFs draws several CDFs as an ASCII plot, x from min to max across
// the samples.
func RenderCDFs(width, height int, samples map[string]*Sample) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 15
	}
	var lo, hi float64
	first := true
	for _, s := range samples {
		if s.N() == 0 {
			continue
		}
		if first || s.Min() < lo {
			lo = s.Min()
		}
		if first || s.Max() > hi {
			hi = s.Max()
		}
		first = false
	}
	if first || hi <= lo {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for si, name := range names {
		s := samples[name]
		if s.N() == 0 {
			continue
		}
		mark := marks[si%len(marks)]
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			p := s.CDFAt(x)
			row := height - 1 - int(p*float64(height-1)+0.5)
			if row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	for i, row := range grid {
		p := 1.0 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", p, string(row))
	}
	fmt.Fprintf(&b, "     %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "      %-*.4g%*.4g\n", width/2, lo, width/2, hi)
	for si, name := range names {
		fmt.Fprintf(&b, "      [%c] %s  %s\n", marks[si%len(marks)], name, samples[name].Summary(""))
	}
	return b.String()
}

// Histogram renders value counts in fixed-width buckets (used for quick
// terminal inspection of samples).
func Histogram(s *Sample, buckets int) string {
	if s.N() == 0 || buckets <= 0 {
		return "(no data)\n"
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, buckets)
	for _, x := range s.Values() {
		i := int(float64(buckets) * (x - lo) / (hi - lo))
		if i >= buckets {
			i = buckets - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bl := lo + (hi-lo)*float64(i)/float64(buckets)
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&b, "%10.4g |%-40s %d\n", bl, bar, c)
	}
	return b.String()
}
