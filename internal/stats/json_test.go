package stats

import (
	"bytes"
	"strings"
	"testing"
)

func sampleResult() *Result {
	r := NewResult("json-test")
	r.Report = "this text must NOT reach result.json"
	r.Scalars["goodput_mbps"] = 37.5
	r.Scalars["stalls"] = 2
	r.Sample("rtt_ms").Add(10, 12, 11, 40)
	s := &Series{Name: "cwnd"}
	s.Append(0, 10, "")
	s.Append(1, 20, "loss")
	r.Series = append(r.Series, s)
	tbl := r.Table("survival", "completed", "gap_p50_s")
	tbl.AddRow("fullmesh/lowest-rtt", 16, 0.2)
	tbl.AddRow("backup/lowest-rtt", 14, 0.5)
	return r
}

func TestResultDataRoundTrip(t *testing.T) {
	d := sampleResult().Data()
	buf, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf, []byte("\n")) {
		t.Fatal("encoded result must end with a newline")
	}
	if strings.Contains(string(buf), "NOT reach") {
		t.Fatal("report text leaked into result.json")
	}
	got, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "json-test" || got.Scalars["goodput_mbps"] != 37.5 {
		t.Fatalf("round-trip lost scalars: %+v", got)
	}
	if len(got.Samples["rtt_ms"]) != 4 || got.Samples["rtt_ms"][3] != 40 {
		t.Fatalf("round-trip lost sample observations: %v", got.Samples["rtt_ms"])
	}
	if len(got.Series) != 1 || got.Series[0].Labels[1] != "loss" {
		t.Fatalf("round-trip lost series labels: %+v", got.Series)
	}
	tbl, ok := got.Tables["survival"]
	if !ok || len(tbl.Rows) != 2 {
		t.Fatalf("round-trip lost table: %+v", got.Tables)
	}
	if row, ok := tbl.Row("backup/lowest-rtt"); !ok || row[1] != 0.5 {
		t.Fatalf("table row lookup after round-trip: %v %v", row, ok)
	}
}

// The whole point of the encoding: two Data()+Encode() passes over the
// same Result produce identical bytes, so `mpexp diff` can trust that a
// byte difference is a numeric difference.
func TestResultEncodeDeterministic(t *testing.T) {
	r := sampleResult()
	a, err := r.Data().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Data().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

// Data() deep-copies: mutating the Result afterwards must not change an
// already-taken snapshot.
func TestResultDataCopies(t *testing.T) {
	r := sampleResult()
	d := r.Data()
	r.Sample("rtt_ms").Add(999)
	r.Table("survival").AddRow("extra/row", 0, 0)
	if len(d.Samples["rtt_ms"]) != 4 {
		t.Fatal("Data() aliases the live sample slice")
	}
	if len(d.Tables["survival"].Rows) != 2 {
		t.Fatal("Data() aliases the live table")
	}
}

func TestTableAddRowPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with wrong value count must panic")
		}
	}()
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("k", 1)
}

func TestSummaryDataRoundTrip(t *testing.T) {
	s := &Sample{}
	s.Add(1, 2, 3, 4, 5)
	d := &SummaryData{
		Name:     "agg",
		Seeds:    5,
		BaseSeed: 7,
		Failed:   1,
		Scalars:  map[string]ScalarStats{"goodput": SummarizeScalar(s)},
	}
	buf, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seeds != 5 || got.BaseSeed != 7 || got.Failed != 1 {
		t.Fatalf("round-trip lost run shape: %+v", got)
	}
	st := got.Scalars["goodput"]
	if st.N != 5 || st.Mean != 3 || st.Median != 3 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("round-trip lost stats: %+v", st)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, b2) {
		t.Fatal("summary re-encode not byte-identical")
	}
}
