package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleOf(xs ...float64) *Sample {
	s := &Sample{}
	s.Add(xs...)
	return s
}

func TestBasicMoments(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5)
	if s.Mean() != 3 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("stddev = %f", s.Stddev())
	}
	if s.N() != 5 {
		t.Fatalf("n = %d", s.N())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	s := &Sample{}
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample not zero-valued")
	}
	if s.CDFAt(1) != 0 {
		t.Fatal("empty CDF nonzero")
	}
	if len(s.CDF()) != 0 {
		t.Fatal("empty CDF has points")
	}
}

func TestQuantiles(t *testing.T) {
	s := sampleOf(10, 20, 30, 40)
	if s.Quantile(0) != 10 || s.Quantile(1) != 40 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := s.Median(); got != 25 {
		t.Fatalf("median = %f, want 25 (interpolated)", got)
	}
	if got := s.Quantile(1.0 / 3); got != 20 {
		t.Fatalf("q33 = %f, want 20", got)
	}
}

func TestCDFAt(t *testing.T) {
	s := sampleOf(1, 2, 2, 3)
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.CDFAt(c.x); got != c.want {
			t.Fatalf("CDFAt(%f) = %f, want %f", c.x, got, c.want)
		}
	}
}

func TestCDFSeries(t *testing.T) {
	s := sampleOf(3, 1, 2)
	pts := s.CDF()
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 1 || pts[2].X != 3 {
		t.Fatal("CDF not sorted")
	}
	if pts[2].P != 1.0 {
		t.Fatalf("final P = %f", pts[2].P)
	}
}

func TestUnsortedAfterAdd(t *testing.T) {
	s := sampleOf(5, 1)
	_ = s.Min() // forces sort
	s.Add(0)
	if s.Min() != 0 {
		t.Fatal("Add after sort not re-sorted")
	}
}

func TestSeries(t *testing.T) {
	var ser Series
	ser.Append(0, 1, "a")
	ser.Append(1, 2, "b")
	if len(ser.T) != 2 || ser.Labels[1] != "b" {
		t.Fatalf("series = %+v", ser)
	}
}

func TestRenderCDFs(t *testing.T) {
	out := RenderCDFs(40, 10, map[string]*Sample{
		"fast": sampleOf(1, 1.1, 1.2, 1.3),
		"slow": sampleOf(2, 2.5, 3, 4),
	})
	if !strings.Contains(out, "fast") || !strings.Contains(out, "slow") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00") {
		t.Fatalf("axis missing:\n%s", out)
	}
	if RenderCDFs(40, 10, map[string]*Sample{"e": {}}) != "(no data)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram(sampleOf(1, 1, 1, 5), 4)
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars:\n%s", out)
	}
	if Histogram(&Sample{}, 4) != "(no data)\n" {
		t.Fatal("empty histogram wrong")
	}
}

func TestSummary(t *testing.T) {
	got := sampleOf(1, 2, 3).Summary("s")
	if !strings.Contains(got, "n=3") || !strings.Contains(got, "mean=2s") {
		t.Fatalf("summary = %q", got)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, q1, q2 float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		s := sampleOf(xs...)
		q1 = math.Mod(math.Abs(q1), 1)
		q2 = math.Mod(math.Abs(q2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDFAt is a valid CDF — monotone, 0 before min, 1 at max.
func TestQuickCDFValid(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		s := sampleOf(xs...)
		if math.IsInf(s.Max()-s.Min(), 0) {
			return true // range overflow; interpolation below meaningless
		}
		if s.CDFAt(math.Nextafter(s.Min(), math.Inf(-1))) != 0 || s.CDFAt(s.Max()) != 1 {
			return false
		}
		prev := -1.0
		for i := 0; i <= 20; i++ {
			x := s.Min() + (s.Max()-s.Min())*float64(i)/20
			p := s.CDFAt(x)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}
