package pm

import (
	"repro/internal/mptcp"
)

// NDiffPorts is the kernel ndiffports path manager: immediately after the
// connection is established it opens n-1 additional subflows over the same
// address pair, each from a fresh random source port, hoping ECMP hashes
// them onto distinct paths (§2, §4.4; Raiciu et al., SIGCOMM'11).
type NDiffPorts struct {
	mptcp.NopPM
	// N is the total number of subflows per connection (including the
	// initial one). The paper's Fig. 2c uses 5.
	N int
}

// NewNDiffPorts returns an ndiffports manager creating n subflows total.
func NewNDiffPorts(n int) *NDiffPorts { return &NDiffPorts{N: n} }

// Name implements mptcp.PathManager.
func (*NDiffPorts) Name() string { return "ndiffports" }

// ConnEstablished implements mptcp.PathManager.
func (p *NDiffPorts) ConnEstablished(c *mptcp.Connection) {
	if !c.IsClient() {
		return
	}
	init := c.InitialTuple()
	for i := 1; i < p.N; i++ {
		// Port 0 draws a fresh random ephemeral port, which is what makes
		// the flows hash differently under ECMP.
		if _, err := c.OpenSubflow(init.SrcIP, 0, init.DstIP, init.DstPort, false); err != nil {
			return
		}
	}
}
