// Package pm implements the two subflow-creation strategies shipped in the
// Linux Multipath TCP kernel — the paper's in-kernel baselines ("only three
// path managers have been implemented in the kernel in several years"):
//
//   - full-mesh: one subflow per (local address × remote address) pair,
//     created eagerly and maintained as interfaces come and go (§2);
//   - ndiffports: n subflows over the same address pair with different
//     source ports, aimed at ECMP-load-balanced datacenters (§2, §4.4).
//
// Both plug into the in-kernel path-manager interface (mptcp.PathManager),
// the same seam the userspace Netlink path manager (internal/core) uses.
package pm

import (
	"net/netip"
	"sort"

	"repro/internal/mptcp"
)

// FullMesh is the kernel full-mesh path manager: as soon as a connection is
// established (and whenever a local interface comes up or the peer
// announces an address), it creates one subflow for every local×remote
// address pair. Only the client creates subflows, because the server is
// typically behind a NAT or firewall (§2).
//
// Connections are kept in creation order, not in a map: interface events
// fan out to every connection, and iterating a map would open subflows
// (and draw their random ports) in a different order each run, breaking
// per-seed determinism.
type FullMesh struct {
	mptcp.NopPM
	conns []*mptcp.Connection
}

// NewFullMesh returns a full-mesh path manager.
func NewFullMesh() *FullMesh {
	return &FullMesh{}
}

// Name implements mptcp.PathManager.
func (*FullMesh) Name() string { return "fullmesh" }

// ConnCreated implements mptcp.PathManager.
func (f *FullMesh) ConnCreated(c *mptcp.Connection) { f.conns = append(f.conns, c) }

// ConnClosed implements mptcp.PathManager.
func (f *FullMesh) ConnClosed(c *mptcp.Connection) {
	for i, oc := range f.conns {
		if oc == c {
			f.conns = append(f.conns[:i], f.conns[i+1:]...)
			return
		}
	}
}

// ConnEstablished implements mptcp.PathManager.
func (f *FullMesh) ConnEstablished(c *mptcp.Connection) { f.mesh(c) }

// AddrAnnounced implements mptcp.PathManager: a new remote address extends
// the mesh.
func (f *FullMesh) AddrAnnounced(c *mptcp.Connection, id uint8, addr netip.Addr, port uint16) {
	f.mesh(c)
}

// LocalAddrUp implements mptcp.PathManager: a new local interface extends
// the mesh of every connection.
func (f *FullMesh) LocalAddrUp(addr netip.Addr) {
	for _, c := range append([]*mptcp.Connection(nil), f.conns...) {
		f.mesh(c)
	}
}

// LocalAddrDown implements mptcp.PathManager: subflows bound to the lost
// interface are removed immediately, like the kernel implementation.
func (f *FullMesh) LocalAddrDown(addr netip.Addr) {
	for _, c := range append([]*mptcp.Connection(nil), f.conns...) {
		// Subflows returns a defensive copy, so closing while iterating
		// cannot invalidate the range.
		for _, sf := range c.Subflows() {
			if sf.Tuple().SrcIP == addr {
				c.CloseSubflow(sf, true)
			}
		}
	}
}

// mesh creates any missing (local × remote) subflow. Remote addresses are
// the initial destination plus everything the peer announced.
func (f *FullMesh) mesh(c *mptcp.Connection) {
	if !c.IsClient() || !c.Established() {
		return
	}
	type rmt struct {
		addr netip.Addr
		port uint16
	}
	init := c.InitialTuple()
	remotes := []rmt{{init.DstIP, init.DstPort}}
	// PeerAddrs is a map; walk it by sorted address ID so subflows (and
	// their random source ports) are opened in the same order every run.
	peers := c.PeerAddrs()
	ids := make([]int, 0, len(peers))
	for id := range peers {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		ap := peers[uint8(id)]
		port := ap.Port()
		if port == 0 {
			port = init.DstPort
		}
		remotes = append(remotes, rmt{ap.Addr(), port})
	}
	used := make(map[[2]netip.Addr]bool)
	for _, sf := range c.Subflows() {
		t := sf.Tuple()
		used[[2]netip.Addr{t.SrcIP, t.DstIP}] = true
	}
	for _, laddr := range c.Endpoint().Host().Addrs() {
		for _, r := range remotes {
			key := [2]netip.Addr{laddr, r.addr}
			if used[key] {
				continue
			}
			if _, err := c.OpenSubflow(laddr, 0, r.addr, r.port, false); err == nil {
				used[key] = true
			}
		}
	}
}
