package pm

import (
	"testing"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
)

func twoPathRig(t *testing.T, seed int64, p mptcp.PathManager) (*topo.TwoPath, *mptcp.Connection, *mptcp.Endpoint) {
	t.Helper()
	cfg := netem.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond}
	n := topo.NewTwoPath(sim.New(seed), cfg, cfg)
	cep := mptcp.NewEndpoint(n.Client, mptcp.Config{}, p)
	sep := mptcp.NewEndpoint(n.Server, mptcp.Config{}, nil)
	sep.Listen(80, func(*mptcp.Connection) {})
	c, err := cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, mptcp.ConnCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	return n, c, cep
}

func TestFullMeshCreatesSubflowPerInterface(t *testing.T) {
	n, c, _ := twoPathRig(t, 1, NewFullMesh())
	n.Sim.Run()
	if got := len(c.Subflows()); got != 2 {
		t.Fatalf("subflows = %d, want 2 (one per interface)", got)
	}
	srcs := map[string]bool{}
	for _, sf := range c.Subflows() {
		srcs[sf.Tuple().SrcIP.String()] = true
		if !sf.Established() {
			t.Fatalf("subflow %v not established", sf.Tuple())
		}
	}
	if len(srcs) != 2 {
		t.Fatalf("subflows share a source address: %v", srcs)
	}
}

func TestFullMeshServerSidePassive(t *testing.T) {
	// The server's full-mesh PM must NOT create subflows (clients are
	// behind NATs; only the client side creates).
	cfg := netem.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond}
	n := topo.NewTwoPath(sim.New(2), cfg, cfg)
	cep := mptcp.NewEndpoint(n.Client, mptcp.Config{}, nil) // no client PM
	sep := mptcp.NewEndpoint(n.Server, mptcp.Config{}, NewFullMesh())
	var sconn *mptcp.Connection
	sep.Listen(80, func(c *mptcp.Connection) { sconn = c })
	cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, mptcp.ConnCallbacks{})
	n.Sim.Run()
	if sconn == nil {
		t.Fatal("no server connection")
	}
	if got := len(sconn.Subflows()); got != 1 {
		t.Fatalf("server created subflows: %d", got)
	}
}

func TestFullMeshInterfaceFlap(t *testing.T) {
	n, c, _ := twoPathRig(t, 3, NewFullMesh())
	n.Sim.Run()
	if len(c.Subflows()) != 2 {
		t.Fatalf("initial mesh = %d", len(c.Subflows()))
	}
	// Interface 1 goes down: its subflow is removed at once.
	n.Client.SetIfaceUp(n.ClientAddrs[1], false)
	n.Sim.Run()
	if got := len(c.Subflows()); got != 1 {
		t.Fatalf("subflows after if-down = %d, want 1", got)
	}
	// Interface returns: the mesh is rebuilt.
	n.Client.SetIfaceUp(n.ClientAddrs[1], true)
	n.Sim.Run()
	if got := len(c.Subflows()); got != 2 {
		t.Fatalf("subflows after if-up = %d, want 2", got)
	}
}

func TestFullMeshReactsToAddAddr(t *testing.T) {
	// Give the server a second address; when it announces it, the client
	// full-mesh extends to 2 local × 2 remote = 4 subflows.
	cfg := netem.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond}
	n := topo.NewTwoPath(sim.New(4), cfg, cfg)
	serverAddr2 := topo.ServerAddr.Next()
	n.Server.AddIface("eth1", serverAddr2, n.Trunk.BA)
	n.Router.AddRoute(serverAddr2, n.Trunk.AB)

	cep := mptcp.NewEndpoint(n.Client, mptcp.Config{}, NewFullMesh())
	sep := mptcp.NewEndpoint(n.Server, mptcp.Config{}, nil)
	var sconn *mptcp.Connection
	sep.Listen(80, func(c *mptcp.Connection) { sconn = c })
	c, err := cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, mptcp.ConnCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	sconn.AnnounceAddr(serverAddr2, 80)
	n.Sim.Run()
	if got := len(c.Subflows()); got != 4 {
		t.Fatalf("mesh after ADD_ADDR = %d, want 4", got)
	}
}

func TestNDiffPortsCreatesNSubflows(t *testing.T) {
	n, c, _ := twoPathRig(t, 5, NewNDiffPorts(5))
	n.Sim.Run()
	if got := len(c.Subflows()); got != 5 {
		t.Fatalf("subflows = %d, want 5", got)
	}
	// All share the address pair but use distinct source ports.
	ports := map[uint16]bool{}
	for _, sf := range c.Subflows() {
		tp := sf.Tuple()
		if tp.SrcIP != n.ClientAddrs[0] || tp.DstIP != n.ServerAddr {
			t.Fatalf("ndiffports strayed off the initial address pair: %v", tp)
		}
		ports[tp.SrcPort] = true
	}
	if len(ports) != 5 {
		t.Fatalf("source ports not distinct: %v", ports)
	}
}

func TestNDiffPortsServerPassive(t *testing.T) {
	cfg := netem.LinkConfig{RateBps: 100e6, Delay: 10 * time.Millisecond}
	n := topo.NewTwoPath(sim.New(6), cfg, cfg)
	cep := mptcp.NewEndpoint(n.Client, mptcp.Config{}, nil)
	sep := mptcp.NewEndpoint(n.Server, mptcp.Config{}, NewNDiffPorts(4))
	var sconn *mptcp.Connection
	sep.Listen(80, func(c *mptcp.Connection) { sconn = c })
	cep.Connect(n.ClientAddrs[0], n.ServerAddr, 80, mptcp.ConnCallbacks{})
	n.Sim.Run()
	if len(sconn.Subflows()) != 1 {
		t.Fatalf("server ndiffports created subflows: %d", len(sconn.Subflows()))
	}
}
