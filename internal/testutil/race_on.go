//go:build race

package testutil

// RaceEnabled is true when the race detector is compiled in.
const RaceEnabled = true
