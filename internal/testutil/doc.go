// Package testutil holds tiny helpers shared by tests. RaceEnabled lets
// testing.AllocsPerRun regression tests skip under -race, whose
// instrumentation changes allocation behaviour (e.g. it defeats the
// append+make no-copy optimisation).
package testutil
