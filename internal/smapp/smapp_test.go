package smapp

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/controller"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// rig is a two-path world with a smapp stack on the client and a plain
// endpoint on the server.
type rig struct {
	net *topo.TwoPath
	st  *Stack
	sep *mptcp.Endpoint
}

func newRig(seed int64, link netem.LinkConfig, cfg Config) *rig {
	r := &rig{net: topo.NewTwoPath(sim.New(seed), link, link)}
	r.st = New(r.net.Client, cfg)
	r.sep = mptcp.NewEndpoint(r.net.Server, mptcp.Config{}, nil)
	r.net.Sim.RunFor(time.Millisecond)
	return r
}

func TestDialBindsPolicyPerConnection(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	r := newRig(1, p, Config{})
	r.sep.Listen(80, nil)
	conn, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"fullmesh", ControllerConfig{}, mptcp.ConnCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	if got := len(conn.Subflows()); got != 2 {
		t.Fatalf("fullmesh policy built %d subflows, want 2", got)
	}
	if r.st.PolicyName(conn) != "fullmesh" {
		t.Fatalf("policy = %q", r.st.PolicyName(conn))
	}
	if _, ok := r.st.Controller(conn).(*controller.FullMesh); !ok {
		t.Fatalf("controller = %T", r.st.Controller(conn))
	}
	if r.st.Stats.PoliciesAttached != 1 {
		t.Fatalf("attached = %d", r.st.Stats.PoliciesAttached)
	}
}

func TestDialDefaultsAddrsFromHost(t *testing.T) {
	// No Addrs in the config: the stack must fill in the host's
	// interfaces, so "fullmesh" still meshes both paths.
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	r := newRig(2, p, Config{})
	r.sep.Listen(80, nil)
	conn, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"fullmesh", ControllerConfig{}, mptcp.ConnCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	addrs := map[string]bool{}
	for _, sf := range conn.Subflows() {
		addrs[sf.Tuple().SrcIP.String()] = true
	}
	if len(addrs) != 2 {
		t.Fatalf("mesh covers %d local addresses, want 2", len(addrs))
	}
}

func TestDialErrors(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	r := newRig(3, p, Config{})
	if _, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"no-such", ControllerConfig{}, mptcp.ConnCallbacks{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// A bad config must fail the Dial, before any connection exists.
	if _, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"refresh", ControllerConfig{Subflows: 1}, mptcp.ConnCallbacks{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if got := len(r.st.Endpoint.Conns()); got != 0 {
		t.Fatalf("failed dials leaked %d connections", got)
	}
}

func TestKernelPMStackRejectsPolicies(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	r := newRig(4, p, Config{KernelPM: mptcp.NopPM{}})
	if _, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"fullmesh", ControllerConfig{}, mptcp.ConnCallbacks{}); err == nil {
		t.Fatal("policy accepted on a stack with no userspace control plane")
	}
	r.sep.Listen(80, nil)
	if _, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"", ControllerConfig{}, mptcp.ConnCallbacks{}); err != nil {
		t.Fatalf("nil policy must work: %v", err)
	}
}

func TestListenBindsPolicyPerAcceptedConnection(t *testing.T) {
	// The policy runs on the SERVER side here: ndiffports opens extra
	// subflows back to the client. The created event fires at SYN time,
	// before the accept callback can bind — the stack must buffer and
	// replay it.
	p := netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	net := topo.NewTwoPath(sim.New(5), p, p)
	sst := New(net.Server, Config{})
	cep := mptcp.NewEndpoint(net.Client, mptcp.Config{}, nil)
	var server *mptcp.Connection
	if err := sst.Listen(80, "ndiffports", ControllerConfig{Subflows: 3},
		func(c *mptcp.Connection) { server = c }); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunFor(time.Millisecond)
	if _, err := cep.Connect(net.ClientAddrs[0], net.ServerAddr, 80, mptcp.ConnCallbacks{}); err != nil {
		t.Fatal(err)
	}
	net.Sim.Run()
	if server == nil {
		t.Fatal("no connection accepted")
	}
	if got := len(server.Subflows()); got != 3 {
		t.Fatalf("server-side ndiffports built %d subflows, want 3", got)
	}
	if sst.PolicyName(server) != "ndiffports" {
		t.Fatalf("policy = %q", sst.PolicyName(server))
	}
	if sst.Stats.EventsBuffered == 0 {
		t.Fatal("created event should have been buffered until the accept bound the policy")
	}
}

func TestListenRejectsBadConfigUpFront(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	r := newRig(6, p, Config{})
	if err := r.st.Listen(80, "backup", ControllerConfig{Addrs: r.net.ClientAddrs[:1]}, nil); err == nil {
		t.Fatal("invalid config accepted by Listen")
	}
}

// TestSwitchPolicyMidTransfer is the facade's headline capability: a bulk
// transfer starts under fullmesh (both interfaces hot), switches to the
// break-before-make backup policy mid-flight, and must end with the
// transfer complete over the backup interface, the byte accounting
// consistent, and the detached fullmesh provably inert.
func TestSwitchPolicyMidTransfer(t *testing.T) {
	const total = 10 << 20
	p := netem.LinkConfig{RateBps: 8e6, Delay: 15 * time.Millisecond}
	r := newRig(7, p, Config{})
	sink := app.NewSink(r.net.Sim, total, nil)
	r.sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := app.NewSource(r.net.Sim, total, false)
	conn, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"fullmesh", ControllerConfig{}, src.Callbacks())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: fullmesh builds the two-subflow mesh.
	r.net.Sim.RunUntil(sim.Second)
	if got := len(conn.Subflows()); got != 2 {
		t.Fatalf("mesh = %d subflows before the switch, want 2", got)
	}
	oldCtl := r.st.Controller(conn).(*controller.FullMesh)

	// Phase 2: switch to backup at t=1s and cool the second radio down.
	if err := r.st.SwitchPolicy(conn, "backup", ControllerConfig{Threshold: time.Second}); err != nil {
		t.Fatal(err)
	}
	if r.st.PolicyName(conn) != "backup" {
		t.Fatalf("policy = %q after switch", r.st.PolicyName(conn))
	}
	if r.st.Stats.PoliciesSwitched != 1 {
		t.Fatalf("switched = %d", r.st.Stats.PoliciesSwitched)
	}
	for _, sf := range conn.Subflows() {
		if sf.Tuple().SrcIP == r.net.ClientAddrs[1] {
			conn.CloseSubflow(sf, true)
		}
	}
	// The detached fullmesh must NOT re-establish the killed subflow
	// (its retry timer was 1 s; give it 3).
	r.net.Sim.RunUntil(4 * sim.Second)
	if got := len(conn.Subflows()); got != 1 {
		t.Fatalf("detached fullmesh still acting: %d subflows", got)
	}
	if oldCtl.Stats.Reestablishments != 0 {
		t.Fatalf("detached fullmesh re-established %d subflows", oldCtl.Stats.Reestablishments)
	}

	// Phase 3: the primary degrades; the NEW policy must do the
	// break-before-make switch within seconds.
	r.net.Path[0].SetLoss(0.9)
	r.net.Sim.RunUntil(60 * sim.Second)

	bctl := r.st.Controller(conn).(*controller.Backup)
	if bctl.Stats.Switches != 1 {
		t.Fatalf("backup switches = %d, want 1", bctl.Stats.Switches)
	}
	if !sink.Done {
		t.Fatalf("transfer incomplete: %d / %d bytes", sink.Received, uint64(total))
	}
	for _, sf := range conn.Subflows() {
		if sf.Tuple().SrcIP != r.net.ClientAddrs[1] {
			t.Fatalf("surviving subflow on %v, want the backup interface", sf.Tuple().SrcIP)
		}
	}
	// Byte accounting stayed consistent across the policy swap: all
	// written bytes were delivered and acknowledged, and nothing was
	// double-counted as fresh data.
	info := r.st.Info(conn)
	if info.Stats.BytesWritten != total || sink.Received != total {
		t.Fatalf("accounting: written=%d received=%d want %d",
			info.Stats.BytesWritten, sink.Received, uint64(total))
	}
	if info.SndUna != total {
		t.Fatalf("snd_una=%d after completion, want %d", info.SndUna, uint64(total))
	}
	if info.Stats.BytesScheduled != total {
		t.Fatalf("scheduled=%d bytes as fresh data, want exactly %d", info.Stats.BytesScheduled, uint64(total))
	}
}

func TestSwitchPolicyToNilDetaches(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	r := newRig(8, p, Config{})
	r.sep.Listen(80, nil)
	conn, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"fullmesh", ControllerConfig{}, mptcp.ConnCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	if err := r.st.SwitchPolicy(conn, "", ControllerConfig{}); err != nil {
		t.Fatal(err)
	}
	if r.st.PolicyName(conn) != "" || r.st.Controller(conn) != nil {
		t.Fatal("nil-policy switch left a binding behind")
	}
	// Kill a subflow: with no policy bound, nobody rebuilds it.
	conn.CloseSubflow(conn.Subflows()[1], true)
	r.net.Sim.RunFor(5 * time.Second)
	if got := len(conn.Subflows()); got != 1 {
		t.Fatalf("subflows = %d after nil-policy switch, want 1", got)
	}
}

func TestInfoMergesAppAndWireViews(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	r := newRig(9, p, Config{})
	sink := app.NewSink(r.net.Sim, 1<<20, nil)
	r.sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := app.NewSource(r.net.Sim, 1<<20, false)
	conn, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
		"fullmesh", ControllerConfig{}, src.Callbacks())
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.RunUntil(5 * sim.Second)

	info := r.st.Info(conn)
	if info.Policy != "fullmesh" {
		t.Fatalf("policy = %q", info.Policy)
	}
	if len(info.Wire) != len(info.Subflows) || len(info.Wire) == 0 {
		t.Fatalf("wire view has %d subflows, app view %d", len(info.Wire), len(info.Subflows))
	}
	for i := range info.Wire {
		if info.Wire[i].Tuple != info.Subflows[i].Tuple {
			t.Fatalf("subflow %d: wire tuple %v != app tuple %v", i, info.Wire[i].Tuple, info.Subflows[i].Tuple)
		}
		if info.Subflows[i].State == tcp.StateEstablished && info.Wire[i].SRTT <= 0 {
			t.Fatalf("subflow %d: wire SRTT not populated", i)
		}
	}
	if info.SndUna != info.Stats.BytesWritten || info.SndUna != 1<<20 {
		t.Fatalf("app-side counters inconsistent: snd_una=%d written=%d", info.SndUna, info.Stats.BytesWritten)
	}
}

// TestDeterministicAcrossRuns guards the facade's event fan-out: two
// identically seeded runs must behave bit-identically even with policies
// bound on several connections (map-ordered dispatch would diverge).
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		p := netem.LinkConfig{RateBps: 20e6, Delay: 10 * time.Millisecond}
		r := newRig(42, p, Config{})
		sink := app.NewSink(r.net.Sim, 4<<20, nil)
		r.sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
		var conns []*mptcp.Connection
		for i := 0; i < 3; i++ {
			src := app.NewSource(r.net.Sim, 1<<20, false)
			c, err := r.st.Dial(r.net.ClientAddrs[0], r.net.ServerAddr, 80,
				"fullmesh", ControllerConfig{}, src.Callbacks())
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, c)
		}
		// An interface flap fans local-addr events out to every binding.
		r.net.Sim.Schedule(sim.Second, "flap", func() {
			r.net.Client.SetIfaceUp(r.net.ClientAddrs[1], false)
		})
		r.net.Sim.Schedule(2*sim.Second, "unflap", func() {
			r.net.Client.SetIfaceUp(r.net.ClientAddrs[1], true)
		})
		r.net.Sim.RunUntil(20 * sim.Second)
		var pushed uint64
		for _, c := range conns {
			pushed += c.Stats().ChunksPushed
		}
		return pushed, r.st.Stats.EventsDispatched
	}
	p1, e1 := run()
	p2, e2 := run()
	if p1 != p2 || e1 != e2 {
		t.Fatalf("identical seeds diverged: pushed %d/%d, events %d/%d", p1, p2, e1, e2)
	}
}
