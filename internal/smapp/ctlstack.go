package smapp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
)

// ControllerStack is the controller-process half of the paper's split
// deployment: a PM library over a caller-provided transport (typically a
// Unix socket to the kernel half, see cmd/smappd) plus a policy picked
// from the same registry the in-process Stack uses. In this mode one
// controller manages every connection of the remote kernel — the classic
// libpathmanager arrangement — so policies attach directly to the real
// library and subscribe with their own event masks.
type ControllerStack struct {
	Lib *core.Library
	ctl controller.Controller
}

// NewControllerStack attaches a library to the controller end of tr,
// ticking on the given clock (WallClock for real processes, core.SimClock
// in tests).
func NewControllerStack(tr *core.Transport, clock core.Clock, pid uint32) *ControllerStack {
	if pid == 0 {
		pid = 1
	}
	return &ControllerStack{Lib: core.NewLibrary(tr, clock, pid)}
}

// Use instantiates the named policy and attaches it to the library,
// detaching any previously attached one first (its timers would otherwise
// keep issuing commands under the replacement). The nil policy is
// rejected: a controller process exists to run one.
func (cs *ControllerStack) Use(policy string, cfg ControllerConfig) (controller.Controller, error) {
	factory, err := LookupController(policy)
	if err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("smapp: a controller stack needs a concrete policy (have: %v)", ControllerNames())
	}
	ctl, err := factory(cfg)
	if err != nil {
		return nil, err
	}
	if cs.ctl != nil {
		cs.ctl.Detach()
	}
	ctl.Attach(cs.Lib)
	cs.ctl = ctl
	return ctl, nil
}

// Controller reports the attached policy (nil before Use).
func (cs *ControllerStack) Controller() controller.Controller { return cs.ctl }

// WallClock adapts the wall clock to core.Clock for controller processes.
// Timer callbacks are serialised with the socket event pump through Mu,
// so controller code stays single-threaded exactly as on the sim clock.
type WallClock struct {
	start time.Time
	mu    *sync.Mutex
}

// NewWallClock starts a wall clock whose timer callbacks lock mu.
func NewWallClock(mu *sync.Mutex) WallClock {
	return WallClock{start: time.Now(), mu: mu}
}

// Now implements core.Clock.
func (c WallClock) Now() time.Duration { return time.Since(c.start) }

// After implements core.Clock.
func (c WallClock) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		fn()
	})
	return func() { t.Stop() }
}
