package smapp

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/controller"
	"repro/internal/topo"
)

// TestControllerRegistryTable drives every registered factory through
// valid and invalid configs, mirroring the scheduler-registry tests in
// internal/mptcp/sched_test.go.
func TestControllerRegistryTable(t *testing.T) {
	two := []netip.Addr{topo.ClientAddr1, topo.ClientAddr2}
	cases := []struct {
		policy   string
		cfg      ControllerConfig
		wantErr  bool
		wantName string // Controller.Name() of the built instance
	}{
		{"fullmesh", ControllerConfig{Addrs: two}, false, "user-fullmesh"},
		{"fullmesh", ControllerConfig{Addrs: two[:1]}, false, "user-fullmesh"},
		{"fullmesh", ControllerConfig{}, true, ""},
		{"backup", ControllerConfig{Addrs: two}, false, "smart-backup"},
		{"backup", ControllerConfig{Addrs: two[:1]}, true, ""},
		{"backup", ControllerConfig{}, true, ""},
		{"stream", ControllerConfig{Addrs: two}, false, "smart-stream"},
		{"stream", ControllerConfig{Addrs: two[:1]}, true, ""},
		{"refresh", ControllerConfig{Subflows: 5}, false, "refresh"},
		{"refresh", ControllerConfig{}, false, "refresh"}, // defaults to the paper's 5
		{"refresh", ControllerConfig{Subflows: 1}, true, ""},
		{"ndiffports", ControllerConfig{Subflows: 3}, false, "user-ndiffports"},
		{"ndiffports", ControllerConfig{}, false, "user-ndiffports"}, // defaults to 2
		{"ndiffports", ControllerConfig{Subflows: -1}, true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.policy, func(t *testing.T) {
			factory, err := LookupController(tc.policy)
			if err != nil {
				t.Fatal(err)
			}
			ctl, err := factory(tc.cfg)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("config %+v accepted, want error", tc.cfg)
				}
				return
			}
			if err != nil {
				t.Fatalf("config %+v rejected: %v", tc.cfg, err)
			}
			if ctl.Name() != tc.wantName {
				t.Fatalf("built %q, want %q", ctl.Name(), tc.wantName)
			}
		})
	}
}

func TestControllerConfigKnobsApply(t *testing.T) {
	two := []netip.Addr{topo.ClientAddr1, topo.ClientAddr2}
	factory, _ := LookupController("backup")
	ctl, err := factory(ControllerConfig{Addrs: two, Threshold: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if b := ctl.(*controller.Backup); b.Threshold != 2*time.Second || b.BackupAddr != two[1] {
		t.Fatalf("backup knobs not applied: %+v", b)
	}

	factory, _ = LookupController("stream")
	ctl, err = factory(ControllerConfig{
		Addrs: two, Period: 2 * time.Second, BlockSize: 32 << 10,
		Probe: 250 * time.Millisecond, Threshold: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := ctl.(*controller.Stream)
	if s.Period != 2*time.Second || s.BlockSize != 32<<10 || s.MinProgress != 16<<10 ||
		s.CheckAfter != 250*time.Millisecond || s.RTOLimit != 3*time.Second {
		t.Fatalf("stream knobs not applied: %+v", s)
	}
}

func TestLookupControllerUnknown(t *testing.T) {
	_, err := LookupController("no-such-policy")
	if err == nil {
		t.Fatal("unknown controller accepted")
	}
	// The error must list what IS registered, so typos are self-serving.
	for _, name := range ControllerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

func TestLookupControllerNilPolicy(t *testing.T) {
	f, err := LookupController("")
	if err != nil || f != nil {
		t.Fatalf("the empty name must resolve to the nil policy, got (%v, %v)", f, err)
	}
}

func TestControllerNamesCoverThePaper(t *testing.T) {
	names := ControllerNames()
	for _, want := range []string{"backup", "fullmesh", "ndiffports", "refresh", "stream"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("paper controller %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRegisterControllerPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	dummy := func(ControllerConfig) (controller.Controller, error) { return nil, nil }
	mustPanic("duplicate registration", func() { RegisterController("fullmesh", dummy) })
	mustPanic("empty name", func() { RegisterController("", dummy) })
	mustPanic("nil factory", func() { RegisterController("x", nil) })
}
