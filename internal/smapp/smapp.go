// Package smapp is the paper's "smart application" layer: a socket-level
// facade over the split control plane of internal/core. An application
// builds one Stack per host, then dials or listens with a *named policy*
// — the registered subflow controllers of §4 — without ever touching the
// transport, the Netlink PM, the library, or controller wiring:
//
//	st := smapp.New(host, smapp.Config{})
//	conn, err := st.Dial(laddr, raddr, 80, "fullmesh", smapp.ControllerConfig{}, cbs)
//
// Unlike the raw library (one controller per process, as in the paper's C
// implementation), the Stack multiplexes: each connection gets its own
// controller instance behind a per-connection library view, policies can
// differ across connections of one host, and a live connection can swap
// its policy mid-transfer (SwitchPolicy). Info merges the application-side
// mptcp snapshot with the Netlink-side wire view into one type.
package smapp

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/trace"
)

// Config tunes a Stack.
type Config struct {
	// MPTCP configures the endpoint (scheduler, TCP knobs, coupling).
	MPTCP mptcp.Config
	// KernelPM, when non-nil, replaces the whole userspace control plane
	// with an in-kernel path manager (internal/pm) or mptcp.NopPM: no
	// transport, no library, no policies — the baselines the paper
	// compares against. Only the nil policy works on such a stack.
	KernelPM mptcp.PathManager
	// Stressed uses the CPU-stressed Netlink latency model of §4.5.
	Stressed bool
	// Transport overrides the kernel↔controller channel (nil = the
	// simulated Netlink transport with the default latency model).
	Transport *core.Transport
	// Clock overrides the controller clock (nil = the sim clock).
	Clock core.Clock
	// Pid is the Netlink port id of the library (0 = 1).
	Pid uint32
	// CtlFlush, when positive, batches kernel events per flush window into
	// one pooled multi-message frame with coalescing of superseded events
	// (core.NetlinkPM.SetCoalescing). Zero keeps the default immediate
	// one-frame-per-event delivery — which every golden experiment relies
	// on, since batching changes the transport's latency-draw sequence.
	CtlFlush time.Duration
	// CtlQueue bounds the pending-event queue in coalesced mode (≤0 =
	// core.DefaultCtlQueue); overflow drops the oldest queued event.
	CtlQueue int
	// Trace, when non-nil, records policy bindings, switches, and every
	// controller command into this shard (the kernel-side protocol
	// events ride on MPTCP.Trace, usually the same shard).
	Trace *trace.Shard
	// CtlMetrics carries live control-plane metric handles for the
	// kernel-side Netlink PM; the zero value records nothing. Data-plane
	// handles ride on MPTCP.Metrics / MPTCP.TCP.Metrics.
	CtlMetrics core.CtlMetrics
}

// StackStats counts facade activity.
type StackStats struct {
	PoliciesAttached uint64 // controllers bound via Dial/Listen/SwitchPolicy
	PoliciesSwitched uint64 // mid-connection policy swaps
	EventsDispatched uint64 // events routed to a bound controller
	EventsBuffered   uint64 // events held for a not-yet-bound token
	EventsDropped    uint64 // events with no binding and a full buffer
}

// maxPending bounds the per-token event buffer for connections whose
// policy binds after their first events (server-side accepts).
const maxPending = 64

// Stack bundles everything one host needs to run smart MPTCP-enabled
// applications: endpoint, transport, kernel-side Netlink PM, userspace
// library, and the per-connection policy mux.
type Stack struct {
	Host      *netem.Host
	Endpoint  *mptcp.Endpoint
	Transport *core.Transport // nil on a KernelPM stack
	PM        *core.NetlinkPM // nil on a KernelPM stack
	Lib       *core.Library   // nil on a KernelPM or kernel-half stack

	bindings map[uint32]*binding
	order    []uint32 // binding tokens in attach order (deterministic fan-out)
	pending  map[uint32][]*nlmsg.Event

	tsh *trace.Shard // policy-event recording (nil = off)

	Stats StackStats
}

// binding ties one connection token to its controller instance.
type binding struct {
	policy string
	ctl    controller.Controller
	host   *policyHost
	tid    uint32 // trace entity of this binding (0 = untraced)
}

// New builds the full in-process stack for a host: simulated Netlink
// transport (or the stressed/custom one), kernel-side PM, userspace
// library on the sim clock, and the MPTCP endpoint — the paper's Figure 1
// in one constructor.
func New(host *netem.Host, cfg Config) *Stack {
	st := &Stack{
		Host:     host,
		bindings: make(map[uint32]*binding),
		pending:  make(map[uint32][]*nlmsg.Event),
		tsh:      cfg.Trace,
	}
	if cfg.KernelPM != nil {
		st.Endpoint = mptcp.NewEndpoint(host, cfg.MPTCP, cfg.KernelPM)
		return st
	}
	s := host.Clock()
	tr := cfg.Transport
	if tr == nil {
		if cfg.Stressed {
			tr = core.NewStressedSimTransport(s)
		} else {
			tr = core.NewSimTransport(s)
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = core.SimClock{S: s}
	}
	pid := cfg.Pid
	if pid == 0 {
		pid = 1
	}
	st.Transport = tr
	st.PM = core.NewNetlinkPM(s, tr)
	st.PM.SetMetrics(cfg.CtlMetrics)
	if cfg.CtlFlush > 0 {
		st.PM.SetCoalescing(cfg.CtlFlush, cfg.CtlQueue)
	}
	st.Lib = core.NewLibrary(tr, clock, pid)
	// One subscription covers every policy the stack will ever host; the
	// mux below fans events out per connection.
	st.Lib.Register(core.Callbacks{
		Created:        st.route,
		Established:    st.route,
		Closed:         st.route,
		SubEstablished: st.route,
		SubClosed:      st.route,
		AddAddr:        st.route,
		RemAddr:        st.route,
		Timeout:        st.route,
		LocalAddrUp:    st.route,
		LocalAddrDown:  st.route,
	}, nil)
	st.Endpoint = mptcp.NewEndpoint(host, cfg.MPTCP, st.PM)
	return st
}

// NewKernel builds the kernel half alone over a caller-provided transport:
// Netlink PM plus endpoint, with the library living in another process
// (see cmd/smappd and ControllerStack). Only the nil policy works locally.
func NewKernel(host *netem.Host, tr *core.Transport, cfg mptcp.Config) *Stack {
	st := &Stack{
		Host:      host,
		Transport: tr,
		bindings:  make(map[uint32]*binding),
		pending:   make(map[uint32][]*nlmsg.Event),
	}
	st.PM = core.NewNetlinkPM(host.Clock(), tr)
	st.Endpoint = mptcp.NewEndpoint(host, cfg, st.PM)
	return st
}

// Dial opens a Multipath TCP connection managed by the named policy. The
// empty policy runs the plain stack; any registered name binds a fresh
// controller instance to just this connection. Empty pcfg.Addrs default
// to the host's interface addresses.
func (st *Stack) Dial(laddr, raddr netip.Addr, rport uint16, policy string, pcfg ControllerConfig, cb mptcp.ConnCallbacks) (*mptcp.Connection, error) {
	ctl, err := st.buildController(policy, &pcfg)
	if err != nil {
		return nil, err
	}
	conn, err := st.Endpoint.Connect(laddr, raddr, rport, cb)
	if err != nil {
		return nil, err
	}
	if ctl != nil {
		// The created event is still crossing the transport; binding now
		// guarantees the controller sees it.
		st.bind(conn.Token(), policy, ctl)
	}
	return conn, nil
}

// Listen accepts connections on a local port, binding a fresh instance of
// the named policy to each accepted connection before accept runs. Events
// that raced ahead of the accept (the created event fires at SYN time)
// are buffered per token and replayed on bind.
func (st *Stack) Listen(port uint16, policy string, pcfg ControllerConfig, accept func(*mptcp.Connection)) error {
	factory, err := st.checkPolicy(policy)
	if err != nil {
		return err
	}
	if factory != nil {
		st.fillDefaults(&pcfg)
		// Validate once up front so a bad config fails the Listen call,
		// not every accept.
		if _, err := factory(pcfg); err != nil {
			return err
		}
	}
	st.Endpoint.Listen(port, func(c *mptcp.Connection) {
		if factory != nil {
			if ctl, err := factory(pcfg); err == nil {
				st.bind(c.Token(), policy, ctl)
			}
		}
		if accept != nil {
			accept(c)
		}
	})
	return nil
}

// SwitchPolicy swaps a live connection's controller mid-transfer: the old
// controller's timers are cancelled and its state dropped (Detach), and
// the connection's current subflow state is replayed to the new one as
// synthetic created/established/sub-established events, so it starts from
// an accurate view rather than an empty one. The empty policy detaches
// without a replacement.
func (st *Stack) SwitchPolicy(conn *mptcp.Connection, policy string, pcfg ControllerConfig) error {
	if conn.Closed() {
		return fmt.Errorf("smapp: cannot switch policy on a closed connection")
	}
	ctl, err := st.buildController(policy, &pcfg)
	if err != nil {
		return err
	}
	token := conn.Token()
	if old := st.bindings[token]; old != nil {
		old.ctl.Detach()
		st.unbind(token)
		st.Stats.PoliciesSwitched++
	}
	if ctl == nil {
		return nil
	}
	st.bind(token, policy, ctl)
	st.replay(conn)
	return nil
}

// Controller reports the controller instance bound to a connection (nil
// when the connection runs the nil policy).
func (st *Stack) Controller(conn *mptcp.Connection) controller.Controller {
	if b := st.bindings[conn.Token()]; b != nil {
		return b.ctl
	}
	return nil
}

// PolicyName reports the policy bound to a connection ("" = none).
func (st *Stack) PolicyName(conn *mptcp.Connection) string {
	if b := st.bindings[conn.Token()]; b != nil {
		return b.policy
	}
	return ""
}

// Info is the unified introspection snapshot: the application-side mptcp
// view, the bound policy, and the Netlink-side wire view (what a remote
// controller would see from get_info) — one type for apps and experiments.
type Info struct {
	mptcp.Info
	// Policy is the bound controller's registry name ("" = nil policy).
	Policy string
	// Wire is the Netlink-schema subflow view, index-aligned with
	// Subflows.
	Wire []nlmsg.SubflowInfo
	// Ctl is the stack-wide control-plane delivery picture (all zeros on a
	// KernelPM stack, which has no Netlink path).
	Ctl CtlStats
}

// CtlStats surfaces the kernel-side event delivery counters, so an
// application can see whether its controller fan-out is keeping up:
// Coalesced events were superseded inside one flush window (benign churn),
// Dropped events fell off a full queue (the controller was outrun).
type CtlStats struct {
	EventsSent      uint64
	EventsMasked    uint64
	EventsCoalesced uint64
	EventsDropped   uint64
	Flushes         uint64
	QueueHW         uint64 // coalescing-queue high-water mark
}

// Info snapshots a connection through the facade.
func (st *Stack) Info(conn *mptcp.Connection) Info {
	in := Info{Info: conn.Info(), Policy: st.PolicyName(conn)}
	if w := core.WireInfo(conn); w != nil {
		in.Wire = w.Subflows
	}
	if st.PM != nil {
		in.Ctl = CtlStats{
			EventsSent:      st.PM.EventsSent,
			EventsMasked:    st.PM.EventsMasked,
			EventsCoalesced: st.PM.EventsCoalesced,
			EventsDropped:   st.PM.EventsDropped,
			Flushes:         st.PM.Flushes,
			QueueHW:         st.PM.QueueHighWater,
		}
	}
	return in
}

// --- policy plumbing ---

// checkPolicy resolves a policy name and verifies this stack can host it.
func (st *Stack) checkPolicy(policy string) (ControllerFactory, error) {
	factory, err := LookupController(policy)
	if err != nil {
		return nil, err
	}
	if factory != nil && st.Lib == nil {
		return nil, fmt.Errorf("smapp: stack has no userspace control plane; policy %q needs one (only the nil policy works here)", policy)
	}
	return factory, nil
}

// buildController resolves, defaults and instantiates a policy (nil for
// the nil policy).
func (st *Stack) buildController(policy string, pcfg *ControllerConfig) (controller.Controller, error) {
	factory, err := st.checkPolicy(policy)
	if err != nil || factory == nil {
		return nil, err
	}
	st.fillDefaults(pcfg)
	return factory(*pcfg)
}

// fillDefaults completes a ControllerConfig from the host: controllers
// that need the local address set get the host's interfaces unless the
// caller chose explicitly.
func (st *Stack) fillDefaults(pcfg *ControllerConfig) {
	if len(pcfg.Addrs) == 0 {
		pcfg.Addrs = st.Host.Addrs()
	}
}

func (st *Stack) bind(token uint32, policy string, ctl controller.Controller) {
	h := &policyHost{st: st}
	b := &binding{policy: policy, ctl: ctl, host: h}
	if st.tsh != nil {
		b.tid = st.tsh.Tracer().Register(trace.EntPolicy, 0, st.Host.Name()+"/"+policy)
		h.tid = b.tid
		st.tsh.Rec(st.Host.Clock().Now(), trace.KPolicyAttach, b.tid, uint64(token), 0, 0, 0)
	}
	ctl.Attach(h)
	st.bindings[token] = b
	st.order = append(st.order, token)
	st.Stats.PoliciesAttached++
	for _, ev := range st.pending[token] {
		st.Stats.EventsDispatched++
		h.cbs.Dispatch(ev)
	}
	delete(st.pending, token)
}

func (st *Stack) unbind(token uint32) {
	if b := st.bindings[token]; b != nil && b.tid != 0 {
		st.tsh.Rec(st.Host.Clock().Now(), trace.KPolicyDetach, b.tid, uint64(token), 0, 0, 0)
	}
	delete(st.bindings, token)
	for i, t := range st.order {
		if t == token {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// route is the mux: global events fan out to every bound controller in
// attach order (map iteration would break determinism); token events go
// to the owning binding, or into the per-token buffer until one appears.
func (st *Stack) route(ev *nlmsg.Event) {
	switch ev.Kind {
	case nlmsg.EvLocalAddrUp, nlmsg.EvLocalAddrDown:
		for _, token := range append([]uint32(nil), st.order...) {
			if b := st.bindings[token]; b != nil {
				st.Stats.EventsDispatched++
				b.host.cbs.Dispatch(ev)
			}
		}
		return
	}
	b := st.bindings[ev.Token]
	if b == nil {
		if ev.Kind == nlmsg.EvClosed {
			delete(st.pending, ev.Token) // nothing will ever bind this token
			return
		}
		if len(st.pending[ev.Token]) >= maxPending {
			st.Stats.EventsDropped++
			return
		}
		// ev is the library's reused decode scratch — buffer a copy.
		c := *ev
		st.pending[ev.Token] = append(st.pending[ev.Token], &c)
		st.Stats.EventsBuffered++
		return
	}
	st.Stats.EventsDispatched++
	b.host.cbs.Dispatch(ev)
	if ev.Kind == nlmsg.EvClosed {
		st.unbind(ev.Token)
	}
}

// replay synthesises the connection's current state for a freshly bound
// controller: created (initial tuple), established, and one
// sub-established per live established subflow — the same event sequence
// the controller would have seen had it been attached from the start.
func (st *Stack) replay(conn *mptcp.Connection) {
	b := st.bindings[conn.Token()]
	if b == nil {
		return
	}
	now := st.Lib.Clock().Now()
	deliver := func(ev *nlmsg.Event) {
		ev.At = now
		st.Stats.EventsDispatched++
		b.host.cbs.Dispatch(ev)
	}
	deliver(&nlmsg.Event{Kind: nlmsg.EvCreated, Token: conn.Token(),
		Tuple: conn.InitialTuple(), HasTuple: true})
	if !conn.Established() {
		return
	}
	deliver(&nlmsg.Event{Kind: nlmsg.EvEstablished, Token: conn.Token(),
		Tuple: conn.InitialTuple(), HasTuple: true})
	for _, sf := range conn.Subflows() {
		if sf.Established() {
			deliver(&nlmsg.Event{Kind: nlmsg.EvSubEstablished, Token: conn.Token(),
				Tuple: sf.Tuple(), HasTuple: true})
		}
	}
}

// policyHost is the per-connection core.Lib view handed to a controller:
// Register captures the callbacks into the mux instead of issuing a
// kernel subscription per controller (the stack subscribed once for all),
// and every command passes through to the shared library.
type policyHost struct {
	st  *Stack
	cbs core.Callbacks
	tid uint32 // trace entity of the binding (0 = untraced)
}

// traceCmd records one controller command against the binding's policy
// entity (a nil-guarded store; untraced stacks pay a branch).
func (h *policyHost) traceCmd(cmd uint8, token uint32) {
	if h.tid == 0 {
		return
	}
	h.st.tsh.Rec(h.st.Host.Clock().Now(), trace.KPolicyCmd, h.tid, uint64(token), 0, 0, cmd)
}

// Register implements core.Lib.
func (h *policyHost) Register(cbs core.Callbacks, done func(errno uint32)) {
	h.cbs = cbs
	if done != nil {
		done(0) // the stack's subscription already covers every event
	}
}

// CreateSubflow implements core.Lib.
func (h *policyHost) CreateSubflow(token uint32, ft seg.FourTuple, backup bool, done func(errno uint32)) {
	h.traceCmd(trace.CmdCreateSubflow, token)
	h.st.Lib.CreateSubflow(token, ft, backup, done)
}

// RemoveSubflow implements core.Lib.
func (h *policyHost) RemoveSubflow(token uint32, ft seg.FourTuple, done func(errno uint32)) {
	h.traceCmd(trace.CmdRemoveSubflow, token)
	h.st.Lib.RemoveSubflow(token, ft, done)
}

// SetBackup implements core.Lib.
func (h *policyHost) SetBackup(token uint32, ft seg.FourTuple, backup bool, done func(errno uint32)) {
	h.traceCmd(trace.CmdSetBackup, token)
	h.st.Lib.SetBackup(token, ft, backup, done)
}

// AnnounceAddr implements core.Lib.
func (h *policyHost) AnnounceAddr(token uint32, addr netip.Addr, port uint16, done func(errno uint32)) {
	h.traceCmd(trace.CmdAnnounceAddr, token)
	h.st.Lib.AnnounceAddr(token, addr, port, done)
}

// GetInfo implements core.Lib.
func (h *policyHost) GetInfo(token uint32, done func(info *nlmsg.ConnInfo)) {
	h.st.Lib.GetInfo(token, done)
}

// After implements core.Lib.
func (h *policyHost) After(d time.Duration, fn func()) (cancel func()) {
	return h.st.Lib.After(d, fn)
}

// Clock implements core.Lib.
func (h *policyHost) Clock() core.Clock { return h.st.Lib.Clock() }
