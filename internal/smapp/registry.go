package smapp

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/controller"
)

// ControllerConfig is the uniform knob set every controller factory takes:
// local addresses, subflow counts and thresholds. Factories read only the
// fields that make sense for their policy and validate the rest, so one
// config type parameterises all five paper controllers (and any policy
// registered later).
type ControllerConfig struct {
	// Addrs are the host's local addresses. Addrs[0] is the primary
	// interface; Addrs[1], when present, is the backup / second one
	// (backup and stream require it). Stack.Dial and Stack.Listen fill in
	// the host's interface addresses when left empty.
	Addrs []netip.Addr
	// Subflows is the concurrent-subflow target (refresh, ndiffports).
	// Zero picks the policy's paper default.
	Subflows int
	// Threshold is the RTO value past which a subflow counts as dead:
	// the backup controller's switch threshold and the stream
	// controller's kill limit. Zero keeps the paper's 1 s.
	Threshold time.Duration
	// Period is the block cadence of the streaming workload (stream).
	Period time.Duration
	// BlockSize is the bytes per block (stream); the mid-block progress
	// requirement derives as BlockSize/2, as in §4.3.
	BlockSize int
	// Probe is the intra-block probe point (stream). Zero keeps 500 ms.
	Probe time.Duration
}

// ControllerFactory builds a fresh controller instance for one attachment.
// Factories validate cfg and must not retain it.
type ControllerFactory func(cfg ControllerConfig) (controller.Controller, error)

var ctlRegistry = struct {
	sync.RWMutex
	factories map[string]ControllerFactory
	descs     map[string]string
}{factories: make(map[string]ControllerFactory), descs: make(map[string]string)}

// RegisterController makes a subflow-controller policy available by name
// to Stack.Dial/Listen/SwitchPolicy, cmd/mpexp -controller, and the
// ctlsweep experiment. It panics on an empty name or a duplicate
// registration — both are programming errors, caught at init time.
func RegisterController(name string, f ControllerFactory) {
	RegisterControllerDesc(name, "", f)
}

// RegisterControllerDesc registers a controller with a one-line
// description for listings (`mpexp list`).
func RegisterControllerDesc(name, desc string, f ControllerFactory) {
	if name == "" || f == nil {
		panic("smapp: RegisterController with empty name or nil factory")
	}
	ctlRegistry.Lock()
	defer ctlRegistry.Unlock()
	if _, dup := ctlRegistry.factories[name]; dup {
		panic(fmt.Sprintf("smapp: controller %q registered twice", name))
	}
	ctlRegistry.factories[name] = f
	ctlRegistry.descs[name] = desc
}

// ControllerInfo describes a registered controller for listings.
type ControllerInfo struct {
	Name string
	Desc string
}

// Controllers lists every registered controller with its description,
// sorted by name.
func Controllers() []ControllerInfo {
	ctlRegistry.RLock()
	defer ctlRegistry.RUnlock()
	out := make([]ControllerInfo, 0, len(ctlRegistry.factories))
	for _, n := range controllerNamesLocked() {
		out = append(out, ControllerInfo{Name: n, Desc: ctlRegistry.descs[n]})
	}
	return out
}

// LookupController resolves a policy name. The empty name is the nil
// policy — valid, returning a nil factory: the connection runs with no
// userspace controller at all (the "plain stack" baseline the experiments
// compare against). Unknown names list what is registered.
func LookupController(name string) (ControllerFactory, error) {
	if name == "" {
		return nil, nil
	}
	ctlRegistry.RLock()
	defer ctlRegistry.RUnlock()
	f, ok := ctlRegistry.factories[name]
	if !ok {
		return nil, fmt.Errorf("smapp: unknown controller %q (registered: %s)",
			name, strings.Join(controllerNamesLocked(), ", "))
	}
	return f, nil
}

// ControllerNames lists every registered controller policy, sorted.
func ControllerNames() []string {
	ctlRegistry.RLock()
	defer ctlRegistry.RUnlock()
	return controllerNamesLocked()
}

func controllerNamesLocked() []string {
	names := make([]string, 0, len(ctlRegistry.factories))
	for n := range ctlRegistry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// The five paper controllers self-register under their §4 names.
func init() {
	RegisterControllerDesc("fullmesh",
		"§4.1: keep a subflow over every local interface, re-establishing with error-specific backoff",
		func(cfg ControllerConfig) (controller.Controller, error) {
			if len(cfg.Addrs) == 0 {
				return nil, fmt.Errorf("smapp: fullmesh needs at least one local address")
			}
			return controller.NewFullMesh(cfg.Addrs), nil
		})
	RegisterControllerDesc("backup",
		"§4.2: create the backup subflow only when the primary's RTO crosses the threshold",
		func(cfg ControllerConfig) (controller.Controller, error) {
			if len(cfg.Addrs) < 2 {
				return nil, fmt.Errorf("smapp: backup needs a second (backup) local address, got %d", len(cfg.Addrs))
			}
			b := controller.NewBackup(cfg.Addrs[1])
			if cfg.Threshold > 0 {
				b.Threshold = cfg.Threshold
			}
			return b, nil
		})
	RegisterControllerDesc("stream",
		"§4.3: kill and replace subflows that stall a block past the intra-block probe point",
		func(cfg ControllerConfig) (controller.Controller, error) {
			if len(cfg.Addrs) < 2 {
				return nil, fmt.Errorf("smapp: stream needs a second local address, got %d", len(cfg.Addrs))
			}
			s := controller.NewStream(cfg.Addrs[1])
			if cfg.Period > 0 {
				s.Period = cfg.Period
			}
			if cfg.BlockSize > 0 {
				s.BlockSize = uint64(cfg.BlockSize)
				s.MinProgress = uint64(cfg.BlockSize) / 2
			}
			if cfg.Probe > 0 {
				s.CheckAfter = cfg.Probe
			}
			if cfg.Threshold > 0 {
				s.RTOLimit = cfg.Threshold
			}
			return s, nil
		})
	RegisterControllerDesc("refresh",
		"§4.4: replace the slowest subflow until all ECMP paths carry traffic",
		func(cfg ControllerConfig) (controller.Controller, error) {
			n := cfg.Subflows
			if n == 0 {
				n = 5 // Fig. 2c
			}
			if n < 2 {
				return nil, fmt.Errorf("smapp: refresh needs at least 2 subflows to compare, got %d", n)
			}
			return controller.NewRefresh(n), nil
		})
	RegisterControllerDesc("ndiffports",
		"§4.5: open N subflows over the same address pair on distinct ports",
		func(cfg ControllerConfig) (controller.Controller, error) {
			n := cfg.Subflows
			if n == 0 {
				n = 2 // Fig. 3
			}
			if n < 1 {
				return nil, fmt.Errorf("smapp: ndiffports needs a positive subflow count, got %d", n)
			}
			return controller.NewNDiffPorts(n), nil
		})
}
