package mptcp

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// recPM records every path-manager event.
type recPM struct {
	NopPM
	created, estab, connClosed int
	subEstab                   []*tcp.Subflow
	subClosed                  map[*tcp.Subflow]tcp.Errno
	timeouts                   int
	lastRTO                    time.Duration
	addrUp, addrDown           []netip.Addr
	announced                  []netip.Addr
	removedIDs                 []uint8
	onConnEstab                func(c *Connection)
	onTimeout                  func(c *Connection, sf *tcp.Subflow, rto time.Duration, n int)
	onSubClosed                func(c *Connection, sf *tcp.Subflow, reason tcp.Errno)
}

func newRecPM() *recPM { return &recPM{subClosed: make(map[*tcp.Subflow]tcp.Errno)} }

func (p *recPM) Name() string              { return "recorder" }
func (p *recPM) ConnCreated(c *Connection) { p.created++ }
func (p *recPM) ConnEstablished(c *Connection) {
	p.estab++
	if p.onConnEstab != nil {
		p.onConnEstab(c)
	}
}
func (p *recPM) ConnClosed(c *Connection) { p.connClosed++ }
func (p *recPM) SubflowEstablished(c *Connection, sf *tcp.Subflow) {
	p.subEstab = append(p.subEstab, sf)
}
func (p *recPM) SubflowClosed(c *Connection, sf *tcp.Subflow, reason tcp.Errno) {
	p.subClosed[sf] = reason
	if p.onSubClosed != nil {
		p.onSubClosed(c, sf, reason)
	}
}
func (p *recPM) AddrAnnounced(c *Connection, id uint8, addr netip.Addr, port uint16) {
	p.announced = append(p.announced, addr)
}
func (p *recPM) AddrRemoved(c *Connection, id uint8) { p.removedIDs = append(p.removedIDs, id) }
func (p *recPM) Timeout(c *Connection, sf *tcp.Subflow, rto time.Duration, n int) {
	p.timeouts++
	p.lastRTO = rto
	if p.onTimeout != nil {
		p.onTimeout(c, sf, rto, n)
	}
}
func (p *recPM) LocalAddrUp(a netip.Addr)   { p.addrUp = append(p.addrUp, a) }
func (p *recPM) LocalAddrDown(a netip.Addr) { p.addrDown = append(p.addrDown, a) }

// rig is a two-path topology with endpoints, a listener on :80, and a
// client connection.
type rig struct {
	t        *testing.T
	net      *topo.TwoPath
	cpm, spm *recPM
	cep, sep *Endpoint
	client   *Connection
	server   *Connection
	rcvTotal uint64
	sndUna   uint64
	peerFin  bool
	closed   int
}

func newRig(t *testing.T, seed int64, p0, p1 netem.LinkConfig, cfg Config) *rig {
	t.Helper()
	r := &rig{t: t, cpm: newRecPM(), spm: newRecPM()}
	r.net = topo.NewTwoPath(sim.New(seed), p0, p1)
	r.cep = NewEndpoint(r.net.Client, cfg, r.cpm)
	r.sep = NewEndpoint(r.net.Server, cfg, r.spm)
	r.sep.Listen(80, func(c *Connection) {
		r.server = c
		c.cb = ConnCallbacks{
			OnData:      func(_ *Connection, total uint64) { r.rcvTotal = total },
			OnPeerClose: func(c *Connection) { r.peerFin = true; c.Close() },
			OnClosed:    func(*Connection) { r.closed++ },
		}
	})
	var err error
	r.client, err = r.cep.Connect(r.net.ClientAddrs[0], r.net.ServerAddr, 80, ConnCallbacks{
		OnDataAck: func(_ *Connection, una uint64) { r.sndUna = una },
		OnClosed:  func(*Connection) { r.closed++ },
	})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return r
}

func fastPaths() (netem.LinkConfig, netem.LinkConfig) {
	return netem.LinkConfig{RateBps: 100e6, Delay: 5 * time.Millisecond},
		netem.LinkConfig{RateBps: 100e6, Delay: 15 * time.Millisecond}
}

func TestConnectionEstablish(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 1, p0, p1, Config{})
	r.net.Sim.Run()
	if !r.client.Established() || r.server == nil || !r.server.Established() {
		t.Fatal("handshake failed")
	}
	if r.cpm.created != 1 || r.cpm.estab != 1 || r.spm.created != 1 || r.spm.estab != 1 {
		t.Fatalf("PM events: c=%+v s=%+v", r.cpm, r.spm)
	}
	if len(r.cpm.subEstab) != 1 {
		t.Fatalf("client sub_estab = %d, want 1 (initial)", len(r.cpm.subEstab))
	}
	if r.client.Token() == r.server.Token() {
		t.Fatal("tokens collide")
	}
	// Keys crossed correctly: each side's remote token is the peer's.
	if r.client.remoteToken != r.server.token || r.server.remoteToken != r.client.token {
		t.Fatal("token exchange broken")
	}
}

func TestSinglePathTransfer(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 2, p0, p1, Config{})
	r.net.Sim.Run()
	const total = 1 << 20
	r.client.Write(total)
	r.net.Sim.Run()
	if r.rcvTotal != total {
		t.Fatalf("received %d, want %d", r.rcvTotal, total)
	}
	if r.sndUna != total {
		t.Fatalf("snd_una = %d, want %d", r.sndUna, total)
	}
	if r.client.SndUna() != total {
		t.Fatalf("SndUna() = %d", r.client.SndUna())
	}
}

func TestSecondSubflowJoin(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 3, p0, p1, Config{})
	r.net.Sim.Run()
	sf2, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	if err != nil {
		t.Fatalf("OpenSubflow: %v", err)
	}
	r.net.Sim.Run()
	if !sf2.Established() {
		t.Fatal("join failed")
	}
	if len(r.client.Subflows()) != 2 || len(r.server.Subflows()) != 2 {
		t.Fatalf("subflows %d/%d", len(r.client.Subflows()), len(r.server.Subflows()))
	}
	if len(r.spm.subEstab) != 2 {
		t.Fatalf("server sub_estab events = %d", len(r.spm.subEstab))
	}
	// Data spreads over both subflows (100 MB >> one path's BDP).
	r.client.Write(5 << 20)
	r.net.Sim.Run()
	if r.rcvTotal != 5<<20 {
		t.Fatalf("received %d", r.rcvTotal)
	}
	for _, sf := range r.client.Subflows() {
		if sf.Info().Stats.BytesSent == 0 {
			t.Fatalf("subflow %v carried no data", sf.Tuple())
		}
	}
}

func TestJoinUnknownTokenGetsRST(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 4, p0, p1, Config{})
	r.net.Sim.Run()
	// A second client endpoint guesses a token.
	rogueHost := r.net.Client // reuse host: craft a join from addr2 with a bogus token
	_ = rogueHost
	before := r.sep.RSTSent
	// Build a fake MP_JOIN SYN via a raw subflow-less send.
	c := r.client
	bad, err := c.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the connection's remote token before the SYN goes out is not
	// possible (options are built at transmit); instead verify the
	// no-listener port case:
	_ = bad
	c2, err := r.cep.Connect(r.net.ClientAddrs[0], r.net.ServerAddr, 9999, ConnCallbacks{})
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	if r.sep.RSTSent <= before {
		t.Fatal("no RST for SYN to closed port")
	}
	if len(c2.Subflows()) != 0 {
		t.Fatal("refused connection retained subflow")
	}
}

func TestLowestRTTPrefersFasterPath(t *testing.T) {
	p0, p1 := fastPaths() // 5ms vs 15ms
	r := newRig(t, 5, p0, p1, Config{})
	r.net.Sim.Run()
	r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	r.net.Sim.Run()
	// Small trickle: each write fits entirely in the fast subflow's cwnd.
	for i := 0; i < 20; i++ {
		r.client.Write(1000)
		r.net.Sim.RunFor(200 * time.Millisecond)
	}
	var fast, slow *tcp.Subflow
	for _, sf := range r.client.Subflows() {
		if sf.Tuple().SrcIP == r.net.ClientAddrs[0] {
			fast = sf
		} else {
			slow = sf
		}
	}
	if fast.Info().Stats.BytesSent == 0 {
		t.Fatal("fast path unused")
	}
	if slow.Info().Stats.BytesSent != 0 {
		t.Fatalf("lowest-RTT scheduler sent %d bytes on the slow path under light load",
			slow.Info().Stats.BytesSent)
	}
}

func TestBackupSubflowIdleUntilNeeded(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 6, p0, p1, Config{})
	r.net.Sim.Run()
	backup, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, true)
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	if !backup.Backup() {
		t.Fatal("backup flag lost")
	}
	// Server side learned the backup flag from the MP_JOIN B-flag.
	for _, sf := range r.server.Subflows() {
		if sf.Tuple().DstIP == r.net.ClientAddrs[1] && !sf.Backup() {
			t.Fatal("server did not mark joined subflow as backup")
		}
	}
	r.client.Write(2 << 20)
	r.net.Sim.Run()
	if backup.Info().Stats.BytesSent != 0 {
		t.Fatal("backup subflow carried data while the primary was alive")
	}
	if r.rcvTotal != 2<<20 {
		t.Fatalf("received %d", r.rcvTotal)
	}
	// Kill the primary: traffic must move to the backup.
	var primary *tcp.Subflow
	for _, sf := range r.client.Subflows() {
		if !sf.Backup() {
			primary = sf
		}
	}
	r.client.CloseSubflow(primary, true)
	r.client.Write(1 << 20)
	r.net.Sim.Run()
	if r.rcvTotal != 3<<20 {
		t.Fatalf("received %d after failover, want all", r.rcvTotal)
	}
	if backup.Info().Stats.BytesSent == 0 {
		t.Fatal("backup never used after primary death")
	}
}

func TestReinjectionAfterSubflowDeath(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 7, p0, p1, Config{TCP: tcp.Config{MaxBackoffs: 3}})
	r.net.Sim.Run()
	r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	r.net.Sim.Run()
	// Start a transfer, then black-hole path 0 mid-flight.
	r.client.Write(4 << 20)
	r.net.Sim.RunFor(50 * time.Millisecond)
	r.net.Path[0].SetLoss(1.0)
	r.net.Sim.Run()
	if r.rcvTotal != 4<<20 {
		t.Fatalf("received %d, want all data despite path death", r.rcvTotal)
	}
	if r.client.Stats().BytesReinjected == 0 {
		t.Fatal("no reinjection recorded")
	}
	// The dead subflow raised timeout events, then died with ETIMEDOUT.
	if r.cpm.timeouts == 0 {
		t.Fatal("no timeout events at the PM")
	}
	found := false
	for _, reason := range r.cpm.subClosed {
		if reason == tcp.ETIMEDOUT {
			found = true
		}
	}
	if !found {
		t.Fatalf("sub_closed reasons = %v, want ETIMEDOUT", r.cpm.subClosed)
	}
}

func TestMPPrioSignalsPeer(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 8, p0, p1, Config{})
	r.net.Sim.Run()
	sf := r.client.Subflows()[0]
	r.client.SetBackup(sf, true)
	r.net.Sim.Run()
	srv := r.server.Subflows()[0]
	if !srv.Backup() {
		t.Fatal("MP_PRIO did not set the peer's backup flag")
	}
	r.client.SetBackup(sf, false)
	r.net.Sim.Run()
	if srv.Backup() {
		t.Fatal("MP_PRIO clear did not propagate")
	}
}

func TestAddAddrAnnouncement(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 9, p0, p1, Config{})
	r.net.Sim.Run()
	r.client.AnnounceAddr(r.net.ClientAddrs[1], 0)
	r.net.Sim.Run()
	if len(r.spm.announced) != 1 || r.spm.announced[0] != r.net.ClientAddrs[1] {
		t.Fatalf("server add_addr events = %v", r.spm.announced)
	}
	if len(r.server.PeerAddrs()) != 1 {
		t.Fatalf("peer addrs = %v", r.server.PeerAddrs())
	}
	r.client.WithdrawAddr(r.net.ClientAddrs[1])
	r.net.Sim.Run()
	if len(r.spm.removedIDs) != 1 {
		t.Fatalf("rem_addr events = %v", r.spm.removedIDs)
	}
	if len(r.server.PeerAddrs()) != 0 {
		t.Fatal("address not withdrawn")
	}
}

func TestGracefulClose(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 10, p0, p1, Config{})
	r.net.Sim.Run()
	r.client.Write(100_000)
	r.client.Close()
	r.net.Sim.Run()
	if !r.peerFin {
		t.Fatal("server never saw the DATA_FIN")
	}
	if r.rcvTotal != 100_000 {
		t.Fatalf("received %d", r.rcvTotal)
	}
	if r.closed != 2 {
		t.Fatalf("closed callbacks = %d, want both ends", r.closed)
	}
	if !r.client.Closed() || !r.server.Closed() {
		t.Fatal("connections not closed")
	}
	if r.cpm.connClosed != 1 || r.spm.connClosed != 1 {
		t.Fatalf("PM closed events: %d/%d", r.cpm.connClosed, r.spm.connClosed)
	}
	if len(r.cep.Conns()) != 0 || len(r.sep.Conns()) != 0 {
		t.Fatal("endpoints retain closed connections")
	}
}

func TestAbortFastClose(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 11, p0, p1, Config{})
	r.net.Sim.Run()
	r.client.Write(10_000)
	r.net.Sim.Run()
	r.client.Abort()
	r.net.Sim.Run()
	if !r.client.Closed() {
		t.Fatal("client not closed after abort")
	}
	if !r.server.Closed() {
		t.Fatal("server did not act on MP_FASTCLOSE/RST")
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 12, p0, p1, Config{})
	r.net.Sim.Run()
	r.client.Close()
	if err := r.client.Write(10); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestOpenSubflowDownInterface(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 13, p0, p1, Config{})
	r.net.Sim.Run()
	r.net.Client.SetIfaceUp(r.net.ClientAddrs[1], false)
	if len(r.cpm.addrDown) != 1 {
		t.Fatalf("addr-down events = %v", r.cpm.addrDown)
	}
	_, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	if err != tcp.ENETUNREACH {
		t.Fatalf("err = %v, want ENETUNREACH", err)
	}
	r.net.Client.SetIfaceUp(r.net.ClientAddrs[1], true)
	if len(r.cpm.addrUp) != 1 {
		t.Fatalf("addr-up events = %v", r.cpm.addrUp)
	}
	if _, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false); err != nil {
		t.Fatalf("OpenSubflow after up: %v", err)
	}
}

func TestTimeoutEventRTOValues(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 14, p0, p1, Config{})
	r.net.Sim.Run()
	r.net.Path[0].SetLoss(1.0)
	r.client.Write(5000)
	r.net.Sim.RunFor(5 * time.Second)
	if r.cpm.timeouts < 3 {
		t.Fatalf("timeouts = %d", r.cpm.timeouts)
	}
	if r.cpm.lastRTO < time.Second {
		t.Fatalf("backed-off RTO = %v, want > 1s after several expiries", r.cpm.lastRTO)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 15, p0, p1, Config{})
	var serverGot, clientGot uint64
	r.sep.Listen(81, func(c *Connection) {
		c.cb = ConnCallbacks{OnData: func(_ *Connection, n uint64) {
			serverGot = n
			if n == 5000 {
				c.Write(100_000) // respond
			}
		}}
	})
	c2, err := r.cep.Connect(r.net.ClientAddrs[0], r.net.ServerAddr, 81, ConnCallbacks{
		OnData: func(_ *Connection, n uint64) { clientGot = n },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	c2.Write(5000)
	r.net.Sim.Run()
	if serverGot != 5000 || clientGot != 100_000 {
		t.Fatalf("server=%d client=%d", serverGot, clientGot)
	}
}

func TestCoupledLIALimitsAggregate(t *testing.T) {
	// Two subflows sharing one bottleneck: coupled CC should push the pair
	// to roughly a single flow's throughput, i.e. the transfer should not
	// be meaningfully faster than with one subflow, and cwnd growth in CA
	// should be bounded. We verify the transfer completes and that LIA's
	// alpha stays finite/sane.
	cfgLink := netem.LinkConfig{RateBps: 10e6, Delay: 20 * time.Millisecond, QueueCap: 50}
	r := newRig(t, 16, cfgLink, cfgLink, Config{Coupled: true})
	r.net.Sim.Run()
	r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	r.net.Sim.Run()
	r.client.Write(2 << 20)
	r.net.Sim.Run()
	if r.rcvTotal != 2<<20 {
		t.Fatalf("received %d", r.rcvTotal)
	}
	alpha, total := r.client.coupled.alpha()
	if total <= 0 || alpha < 0 {
		t.Fatalf("alpha=%f total=%d", alpha, total)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	p0 := netem.LinkConfig{RateBps: 100e6, Delay: 5 * time.Millisecond}
	p1 := netem.LinkConfig{RateBps: 100e6, Delay: 5 * time.Millisecond}
	cfg := Config{Scheduler: "round-robin"}
	r := newRig(t, 17, p0, p1, cfg)
	r.net.Sim.Run()
	r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	r.net.Sim.Run()
	r.client.Write(4 << 20)
	r.net.Sim.Run()
	if r.rcvTotal != 4<<20 {
		t.Fatalf("received %d", r.rcvTotal)
	}
	a := r.client.Subflows()[0].Info().Stats.BytesSent
	b := r.client.Subflows()[1].Info().Stats.BytesSent
	// Both subflows must carry a substantial share. Exact 50/50 is not
	// expected: the scheduler skips cwnd-limited subflows, so the subflow
	// that grows its window first attracts proportionally more chunks.
	ratio := float64(a) / float64(a+b)
	if ratio < 0.15 || ratio > 0.85 {
		t.Fatalf("round-robin split %d/%d too skewed", a, b)
	}
}

func TestConnInfoSnapshot(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 18, p0, p1, Config{})
	r.net.Sim.Run()
	r.client.Write(50_000)
	r.net.Sim.Run()
	in := r.client.Info()
	if !in.Established || in.Closed {
		t.Fatalf("info state: %+v", in)
	}
	if in.SndUna != 50_000 || in.AppNxt != 50_000 {
		t.Fatalf("seq info: una=%d app=%d", in.SndUna, in.AppNxt)
	}
	if len(in.Subflows) != 1 || in.Subflows[0].State != tcp.StateEstablished {
		t.Fatalf("subflow info: %+v", in.Subflows)
	}
	if in.Stats.BytesWritten != 50_000 {
		t.Fatalf("stats: %+v", in.Stats)
	}
}
