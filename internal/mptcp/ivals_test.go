package mptcp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIvalSetAddMerge(t *testing.T) {
	var s ivalSet64
	if !s.add(10, 20) {
		t.Fatal("fresh add not new")
	}
	if s.add(10, 20) {
		t.Fatal("duplicate add reported new")
	}
	if s.add(12, 18) {
		t.Fatal("covered add reported new")
	}
	s.add(30, 40)
	if len(s.ivs) != 2 {
		t.Fatalf("ivs = %v", s.ivs)
	}
	s.add(20, 30) // bridges the two (adjacency merges)
	if len(s.ivs) != 1 || s.ivs[0] != (ival64{10, 40}) {
		t.Fatalf("merge failed: %v", s.ivs)
	}
	if s.bytes() != 30 {
		t.Fatalf("bytes = %d", s.bytes())
	}
}

func TestIvalSetRemove(t *testing.T) {
	var s ivalSet64
	s.add(0, 100)
	s.remove(40, 60) // split
	if len(s.ivs) != 2 || !s.contains(0, 40) || !s.contains(60, 100) {
		t.Fatalf("split failed: %v", s.ivs)
	}
	if s.contains(30, 70) {
		t.Fatal("contains over a hole")
	}
	s.remove(0, 40)
	s.remove(60, 100)
	if !s.empty() {
		t.Fatalf("not empty: %v", s.ivs)
	}
	s.remove(0, 10) // removing from empty is a no-op
}

func TestIvalSetFirstOrdering(t *testing.T) {
	var s ivalSet64
	s.add(500, 600)
	s.add(100, 200)
	s.add(300, 400)
	iv, ok := s.first()
	if !ok || iv.lo != 100 {
		t.Fatalf("first = %v, %v", iv, ok)
	}
}

func TestIvalSetZeroLength(t *testing.T) {
	var s ivalSet64
	if s.add(5, 5) {
		t.Fatal("empty range added")
	}
	if !s.empty() {
		t.Fatal("set not empty")
	}
}

func TestReassemblyInOrder(t *testing.T) {
	var r reassembly
	if !r.receive(0, 100) || r.nxt != 100 {
		t.Fatalf("nxt = %d", r.nxt)
	}
	if r.receive(0, 100) {
		t.Fatal("duplicate advanced")
	}
	if !r.receive(50, 150) || r.nxt != 150 {
		t.Fatalf("partial overlap: nxt = %d", r.nxt)
	}
}

func TestReassemblyGapFill(t *testing.T) {
	var r reassembly
	if r.receive(100, 200) {
		t.Fatal("gap data advanced the frontier")
	}
	r.receive(300, 400)
	if !r.receive(0, 100) || r.nxt != 200 {
		t.Fatalf("nxt = %d, want 200", r.nxt)
	}
	if !r.receive(200, 300) || r.nxt != 400 {
		t.Fatalf("nxt = %d, want 400", r.nxt)
	}
	if !r.ooo.empty() {
		t.Fatalf("ooo residue: %v", r.ooo.ivs)
	}
}

// Property: any permutation of chunks (with arbitrary duplication) ends
// with the frontier at the stream end.
func TestQuickReassembly(t *testing.T) {
	f := func(seed int64, nChunks uint8, dups uint8) bool {
		n := int(nChunks%30) + 1
		rng := rand.New(rand.NewSource(seed))
		var r reassembly
		order := rng.Perm(n)
		// Duplicate a few random chunks.
		for d := 0; d < int(dups%5); d++ {
			order = append(order, rng.Intn(n))
		}
		for _, i := range order {
			r.receive(uint64(i*137), uint64((i+1)*137))
		}
		return r.nxt == uint64(n*137) && r.ooo.empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

// Property: an ivalSet64 built by random adds/removes stays sorted and
// disjoint.
func TestQuickIvalSetInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		var s ivalSet64
		for i, op := range ops {
			lo := uint64(op % 500)
			hi := lo + uint64(op%97) + 1
			if i%3 == 0 {
				s.remove(lo, hi)
			} else {
				s.add(lo, hi)
			}
			for j := 1; j < len(s.ivs); j++ {
				if s.ivs[j-1].hi >= s.ivs[j].lo {
					return false // overlapping or unsorted or adjacent-unmerged
				}
			}
			for _, iv := range s.ivs {
				if iv.lo >= iv.hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}
