package mptcp

import (
	"time"

	"repro/internal/tcp"
)

// Redundant duplicates every chunk on every subflow whose window is open,
// trading goodput for latency: the receiver keeps whichever copy lands
// first, so one lossy path no longer stalls the stream behind its
// (backed-off) RTO. This is the classic scheduler for latency-critical
// traffic (the §4.3 streaming workload) and the natural upper bound for
// any reinjection heuristic.
//
// RFC 6824 backup semantics still hold: backup subflows receive copies
// only when no regular subflow is established.
//
// The scheduler is per-connection and keeps a scratch slice so the
// per-chunk PickAll does not allocate; callers must consume the returned
// slice before the next PickAll.
type Redundant struct {
	buf []*tcp.Subflow
}

// Name implements Scheduler.
func (*Redundant) Name() string { return "redundant" }

// Pick implements Scheduler by returning the primary copy's subflow
// (lowest RTT among the usable set), so Redundant degrades gracefully if
// a caller ignores PickAll.
func (r *Redundant) Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow {
	all := r.PickAll(subflows, want)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

// PickAll implements MultiPicker: every usable subflow on the allowed
// priority tier, lowest RTT first (the first entry accounts for the
// bytes; the rest carry duplicates).
func (r *Redundant) PickAll(subflows []*tcp.Subflow, want int) []*tcp.Subflow {
	collect := func(backup bool) []*tcp.Subflow {
		out := r.buf[:0]
		for _, sf := range subflows {
			if usable(sf, backup, want) {
				out = append(out, sf)
			}
		}
		r.buf = out[:0]
		// Insertion sort by SRTT: n is the subflow count (single digits),
		// and stability keeps equal-RTT subflows in creation order.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && srttOf(out[j]) < srttOf(out[j-1]); j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	if out := collect(false); len(out) > 0 {
		return out
	}
	if !backupsAllowed(subflows) {
		return nil
	}
	return collect(true)
}

func srttOf(sf *tcp.Subflow) time.Duration { return sf.SRTT() }
