package mptcp

import (
	"fmt"
	"net/netip"

	"repro/internal/netem"
	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Config tunes an endpoint's Multipath TCP stack.
type Config struct {
	// TCP configures every subflow (MSS, initial window, RTO limits, ...).
	TCP tcp.Config
	// Scheduler names a registered packet scheduler (see
	// RegisterScheduler); empty means the kernel default, lowest-rtt.
	Scheduler string
	// NewScheduler builds the per-connection packet scheduler directly and
	// takes precedence over Scheduler when non-nil. rng is the owning
	// simulation's deterministic source.
	NewScheduler SchedulerFactory
	// Coupled enables LIA coupled congestion control (RFC 6356) across the
	// subflows of each connection instead of independent Reno.
	Coupled bool
	// Trace, when non-nil, records every connection's protocol events
	// (scheduler picks, reinjections, DSS reassembly, subflow churn,
	// per-subflow send/recv/RTT/cwnd) into this shard — by convention
	// the owning host's shard of a per-run trace.Tracer.
	Trace *trace.Shard
	// Metrics carries live connection-level metric handles; the zero
	// value records nothing. Subflow-level handles go in TCP.Metrics.
	Metrics Metrics
}

// Endpoint is the per-host Multipath TCP stack: it owns connections,
// demultiplexes inbound segments to subflows (including MP_JOIN token
// lookup), allocates ephemeral ports, and drives the attached PathManager.
type Endpoint struct {
	sim  sim.Clock
	host *netem.Host
	cfg  Config
	pm   PathManager

	listeners map[uint16]func(*Connection)
	tuples    map[seg.FourTuple]*tcp.Subflow
	tokens    map[uint32]*Connection
	conns     map[*Connection]struct{}
	addrIDs   map[netip.Addr]uint8
	usedPorts map[uint16]int

	// Stats counters.
	RSTSent     uint64
	JoinNoToken uint64
}

// NewEndpoint attaches a Multipath TCP stack to a host. pm may be nil, in
// which case the do-nothing path manager is used.
func NewEndpoint(host *netem.Host, cfg Config, pm PathManager) *Endpoint {
	if pm == nil {
		pm = NopPM{}
	}
	if cfg.NewScheduler == nil {
		f, err := LookupScheduler(cfg.Scheduler)
		if err != nil {
			panic(err) // misconfiguration; cmd/mpexp validates names up front
		}
		cfg.NewScheduler = f
	}
	ep := &Endpoint{
		sim:       host.Clock(),
		host:      host,
		cfg:       cfg,
		pm:        pm,
		listeners: make(map[uint16]func(*Connection)),
		tuples:    make(map[seg.FourTuple]*tcp.Subflow),
		tokens:    make(map[uint32]*Connection),
		conns:     make(map[*Connection]struct{}),
		addrIDs:   make(map[netip.Addr]uint8),
		usedPorts: make(map[uint16]int),
	}
	host.SetHandler(ep.input)
	host.WatchAddrs(func(addr netip.Addr, up bool) {
		if up {
			ep.pm.LocalAddrUp(addr)
		} else {
			ep.pm.LocalAddrDown(addr)
		}
	})
	return ep
}

// Clock exposes the host clock driving this endpoint.
func (ep *Endpoint) Clock() sim.Clock { return ep.sim }

// Host exposes the underlying netem host.
func (ep *Endpoint) Host() *netem.Host { return ep.host }

// PathManager reports the attached path manager.
func (ep *Endpoint) PathManager() PathManager { return ep.pm }

// Conns lists the endpoint's live connections (order unspecified).
func (ep *Endpoint) Conns() []*Connection {
	out := make([]*Connection, 0, len(ep.conns))
	for c := range ep.conns {
		out = append(out, c)
	}
	return out
}

// Listen accepts MP_CAPABLE connections on a local port; accept runs when a
// connection's handshake completes.
func (ep *Endpoint) Listen(port uint16, accept func(*Connection)) {
	ep.listeners[port] = accept
}

// Connect opens a Multipath TCP connection: the initial subflow goes from
// laddr (which must be a local interface address) to raddr:rport. cb may be
// the zero value.
func (ep *Endpoint) Connect(laddr, raddr netip.Addr, rport uint16, cb ConnCallbacks) (*Connection, error) {
	iface := ep.host.Iface(laddr)
	if iface == nil || !iface.Up() {
		return nil, tcp.ENETUNREACH
	}
	tuple := seg.FourTuple{SrcIP: laddr, DstIP: raddr, SrcPort: ep.allocPort(), DstPort: rport}
	c := ep.newConn(true, tuple, cb)
	sf := c.newSubflow(tuple, &sfMeta{isInitial: true, localAddrID: ep.addrID(laddr)})
	ep.pm.ConnCreated(c)
	sf.Connect()
	return c, nil
}

// newConn builds a Connection with a fresh, collision-free key.
func (ep *Endpoint) newConn(isClient bool, initial seg.FourTuple, cb ConnCallbacks) *Connection {
	var key uint64
	var token uint32
	for {
		key = seg.NewKey(ep.sim.Rand())
		token = seg.Token(key)
		if _, dup := ep.tokens[token]; !dup && key != 0 {
			break
		}
	}
	c := &Connection{
		ep:           ep,
		isClient:     isClient,
		sched:        ep.cfg.NewScheduler(ep.sim.Rand()),
		cb:           cb,
		mss:          ep.cfg.TCP.MSS,
		localKey:     key,
		token:        token,
		localIDSN:    seg.IDSN(key),
		initialTuple: initial,
		meta:         make(map[*tcp.Subflow]*sfMeta),
		remoteAddrs:  make(map[uint8]netip.AddrPort),
	}
	if c.mss == 0 {
		c.mss = 1380 // mirror tcp.Config default
	}
	if ep.cfg.Coupled {
		c.coupled = newCoupledGroup(c.mss, ep.cfg.TCP.InitialWindow)
	}
	if sh := ep.cfg.Trace; sh != nil {
		c.tsh = sh
		c.tid = sh.Tracer().Register(trace.EntConn, 0,
			fmt.Sprintf("%s/conn-%08x", ep.host.Name(), token))
	}
	ep.tokens[token] = c
	ep.conns[c] = struct{}{}
	return c
}

// removeConn forgets a fully closed connection.
func (ep *Endpoint) removeConn(c *Connection) {
	delete(ep.tokens, c.token)
	delete(ep.conns, c)
}

// input demultiplexes an inbound packet. The endpoint owns the packet: it
// retires the shell immediately and the segment once handling finishes,
// closing the pooled segment lifecycle (sender Get → wire → receiver Put).
func (ep *Endpoint) input(pkt *netem.Packet) {
	sg := pkt.Seg
	pkt.Seg = nil
	pkt.Release()
	ep.handleSegment(sg)
	seg.Shared.Put(sg)
}

// handleSegment routes one inbound segment, which is owned by the caller
// and must not be retained by anything downstream.
func (ep *Endpoint) handleSegment(sg *seg.Segment) {
	key := sg.Tuple.Reverse() // local-perspective tuple
	if sf, ok := ep.tuples[key]; ok {
		sf.HandleSegment(sg)
		return
	}
	if sg.Is(seg.SYN) && !sg.Is(seg.ACK) {
		if j := sg.MPJoin(); j != nil {
			// Joins are acceptable as soon as both keys are known (the
			// Linux server registers the token at SYN_RCVD time), so a
			// join racing ahead of the initial third ACK still succeeds.
			c, ok := ep.tokens[j.Token]
			if !ok || c.remoteKey == 0 {
				ep.JoinNoToken++
				ep.sendRST(sg)
				return
			}
			c.acceptJoin(key, sg)
			return
		}
		if sg.MPCapable() != nil {
			if accept, ok := ep.listeners[sg.Tuple.DstPort]; ok {
				c := ep.newConn(false, key, ConnCallbacks{})
				c.onAccept = accept
				sf := c.newSubflow(key, &sfMeta{isInitial: true, localAddrID: ep.addrID(key.SrcIP)})
				ep.pm.ConnCreated(c)
				sf.HandleSegment(sg)
				return
			}
		}
		ep.sendRST(sg)
		return
	}
	if !sg.Is(seg.RST) {
		ep.sendRST(sg)
	}
}

// sendRST answers a segment that matches no socket, like a kernel would.
func (ep *Endpoint) sendRST(cause *seg.Segment) {
	ep.RSTSent++
	rst := seg.Shared.Get()
	rst.Tuple = cause.Tuple.Reverse()
	rst.Seq = cause.Ack
	rst.Ack = cause.SeqEnd()
	rst.Flags = seg.RST | seg.ACK
	ep.host.Send(netem.NewPacket(rst))
}

// output transmits a subflow's segment through the host's routing. The
// subflow has already relinquished ownership (tcp.Output contract), so no
// defensive clone is needed: the segment travels by pointer end to end
// and the receiving endpoint retires it.
func (ep *Endpoint) output(s *seg.Segment) {
	ep.host.Send(netem.NewPacket(s))
}

// addrID returns the stable local address ID used in MPTCP options.
func (ep *Endpoint) addrID(addr netip.Addr) uint8 {
	if id, ok := ep.addrIDs[addr]; ok {
		return id
	}
	id := uint8(len(ep.addrIDs) + 1)
	if id == 0 {
		panic("mptcp: address ID space exhausted")
	}
	ep.addrIDs[addr] = id
	return id
}

// allocPort draws a random unused ephemeral port. Randomness matters: §4.4
// relies on random source ports hashing subflows onto different ECMP paths.
func (ep *Endpoint) allocPort() uint16 {
	for tries := 0; tries < 10000; tries++ {
		p := uint16(32768 + ep.sim.Rand().Intn(28232))
		if ep.usedPorts[p] == 0 {
			ep.usedPorts[p]++
			return p
		}
	}
	panic("mptcp: ephemeral ports exhausted")
}

// String describes the endpoint.
func (ep *Endpoint) String() string {
	return fmt.Sprintf("mptcp endpoint on %s (%d conns)", ep.host.Name(), len(ep.conns))
}
