package mptcp

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/seg"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// ConnCallbacks are the application-facing notifications of a connection.
// All fields are optional.
type ConnCallbacks struct {
	// OnEstablished fires when the MP_CAPABLE handshake completes.
	OnEstablished func(c *Connection)
	// OnData fires whenever the in-order received byte count advances;
	// total is the number of contiguous payload bytes received so far.
	OnData func(c *Connection, total uint64)
	// OnDataAck fires when the connection-level snd_una advances; una is
	// the number of payload bytes the peer has cumulatively acknowledged.
	OnDataAck func(c *Connection, una uint64)
	// OnPeerClose fires once when the peer's DATA_FIN has been received
	// in order (the stream from the peer is complete).
	OnPeerClose func(c *Connection)
	// OnClosed fires once when the connection is fully terminated.
	OnClosed func(c *Connection)
}

// ConnStats counts connection-level activity.
type ConnStats struct {
	BytesWritten    uint64
	BytesScheduled  uint64 // first-time scheduling only
	BytesReinjected uint64 // bytes queued again after a timeout/subflow death
	BytesDuplicated uint64 // redundant copies placed by a MultiPicker scheduler
	ChunksPushed    uint64
	SubflowsOpened  uint64 // locally initiated
	SubflowsClosed  uint64
}

// sfMeta is the per-subflow MPTCP state (join nonces, address IDs).
type sfMeta struct {
	isInitial   bool
	nonceLocal  uint32
	nonceRemote uint32
	localAddrID uint8
	reqBackup   bool
}

// Connection is one Multipath TCP connection: a set of subflows carrying a
// single bidirectional data stream with connection-level sequencing.
type Connection struct {
	ep       *Endpoint
	isClient bool
	sched    Scheduler
	cb       ConnCallbacks
	onAccept func(*Connection) // listener accept callback (server side)
	mss      int

	localKey, remoteKey   uint64
	token, remoteToken    uint32
	localIDSN, remoteIDSN uint64
	initialTuple          seg.FourTuple
	established           bool
	closed                bool
	subflows              []*tcp.Subflow
	meta                  map[*tcp.Subflow]*sfMeta
	coupled               *coupledGroup // non-nil when LIA coupling is on

	// Sender state, in relative data-sequence space (0 = first app byte).
	appNxt       uint64 // bytes written by the application
	schedNxt     uint64 // bytes handed to subflows at least once
	sndUna       uint64 // cumulative DATA_ACK from the peer
	finQueued    bool
	finScheduled bool
	finRel       uint64 // the DATA_FIN occupies [finRel, finRel+1)
	reinject     ivalSet64

	// Receiver state.
	rcv         reassembly
	peerFinSeen bool
	peerFinRel  uint64
	peerClosed  bool // OnPeerClose delivered

	remoteAddrs map[uint8]netip.AddrPort // peer announcements (ADD_ADDR)

	// TracePush, when set, observes every chunk handed to a subflow: the
	// Fig. 2a experiment uses it to plot data sequence vs time per subflow.
	TracePush func(sf *tcp.Subflow, rel uint64, ln int, reinjected bool)

	pickBuf []*tcp.Subflow // reused scheduler-target scratch (push)

	// Trace recording (nil shard = off); the connection registers one
	// trace entity per subflow and records scheduler picks, reassembly
	// progress, and subflow churn against them.
	tsh *trace.Shard
	tid uint32

	stats ConnStats
}

// --- Accessors ---

// Token reports the connection's local token (its identifier in path
// manager events, as in the Linux Netlink API).
func (c *Connection) Token() uint32 { return c.token }

// IsClient reports whether this end initiated the connection.
func (c *Connection) IsClient() bool { return c.isClient }

// Established reports whether the MP_CAPABLE handshake completed.
func (c *Connection) Established() bool { return c.established }

// Closed reports whether the connection has fully terminated.
func (c *Connection) Closed() bool { return c.closed }

// Endpoint reports the owning endpoint.
func (c *Connection) Endpoint() *Endpoint { return c.ep }

// InitialTuple reports the 4-tuple of the initial subflow (retained even
// after that subflow dies).
func (c *Connection) InitialTuple() seg.FourTuple { return c.initialTuple }

// Subflows lists the connection's live subflows in creation order. The
// returned slice is a defensive copy: callers (controllers, smapp.Info)
// may keep or reorder it without aliasing the connection's internal state,
// which mutates as subflows come and go.
func (c *Connection) Subflows() []*tcp.Subflow {
	if len(c.subflows) == 0 {
		return nil
	}
	return append([]*tcp.Subflow(nil), c.subflows...)
}

// SndUna reports connection-level cumulatively acknowledged payload bytes —
// the snd_una state variable §4.3's smart-stream controller polls.
func (c *Connection) SndUna() uint64 { return min64(c.sndUna, c.appNxt) }

// RcvBytes reports contiguous payload bytes received in order.
func (c *Connection) RcvBytes() uint64 {
	if c.peerFinSeen && c.rcv.nxt > c.peerFinRel {
		return c.peerFinRel
	}
	return c.rcv.nxt
}

// PeerAddrs lists the peer's advertised addresses by address ID.
func (c *Connection) PeerAddrs() map[uint8]netip.AddrPort {
	out := make(map[uint8]netip.AddrPort, len(c.remoteAddrs))
	for k, v := range c.remoteAddrs {
		out[k] = v
	}
	return out
}

// Stats returns a copy of the connection counters.
func (c *Connection) Stats() ConnStats { return c.stats }

// SetCallbacks installs the application callbacks. Server applications
// call this from the listener's accept function; it replaces any previous
// callbacks.
func (c *Connection) SetCallbacks(cb ConnCallbacks) { c.cb = cb }

// Scheduler reports the scheduler in use.
func (c *Connection) Scheduler() Scheduler { return c.sched }

// Info is a connection-level snapshot including all subflow snapshots —
// what the paper's get-info command returns.
type Info struct {
	Token       uint32
	IsClient    bool
	Established bool
	Closed      bool
	SndUna      uint64
	SchedNxt    uint64
	AppNxt      uint64
	RcvBytes    uint64
	Subflows    []tcp.Info
	Stats       ConnStats
}

// Info snapshots the connection.
func (c *Connection) Info() Info {
	in := Info{
		Token:       c.token,
		IsClient:    c.isClient,
		Established: c.established,
		Closed:      c.closed,
		SndUna:      c.SndUna(),
		SchedNxt:    c.schedNxt,
		AppNxt:      c.appNxt,
		RcvBytes:    c.RcvBytes(),
		Stats:       c.stats,
	}
	for _, sf := range c.subflows {
		in.Subflows = append(in.Subflows, sf.Info())
	}
	return in
}

// --- Sequence-space conversions ---

// relToAbs maps a relative sender data sequence to the wire DSN.
func (c *Connection) relToAbs(rel uint64) uint64 { return c.localIDSN + 1 + rel }

// absToRelLocal maps a wire DATA_ACK back to relative sender space.
func (c *Connection) absToRelLocal(abs uint64) uint64 { return abs - (c.localIDSN + 1) }

// absToRelRemote maps a wire DSN from the peer to relative receiver space.
func (c *Connection) absToRelRemote(abs uint64) uint64 { return abs - (c.remoteIDSN + 1) }

// --- Application API ---

// Write appends n payload bytes to the outgoing stream. (Payload contents
// are not materialised; the simulator tracks byte counts and sequence
// ranges, which is all the protocol machinery observes.)
func (c *Connection) Write(n int) error {
	if c.finQueued {
		return fmt.Errorf("mptcp: write after close")
	}
	if c.closed {
		return fmt.Errorf("mptcp: write on closed connection")
	}
	c.appNxt += uint64(n)
	c.stats.BytesWritten += uint64(n)
	c.push()
	return nil
}

// Close ends the outgoing stream gracefully: queued data drains, then a
// DATA_FIN. The connection terminates once both directions have closed and
// all subflows have finished.
func (c *Connection) Close() {
	if c.finQueued || c.closed {
		return
	}
	c.finQueued = true
	c.finRel = c.appNxt
	c.push()
	c.checkCloseProgress()
}

// Abort terminates the connection immediately: MP_FASTCLOSE to the peer and
// RST on every subflow.
func (c *Connection) Abort() {
	if c.closed {
		return
	}
	for _, sf := range c.subflows {
		if sf.Established() {
			sf.SendOptions(&seg.FastClose{ReceiverKey: c.remoteKey})
			break
		}
	}
	for _, sf := range append([]*tcp.Subflow(nil), c.subflows...) {
		sf.Abort(tcp.ECONNABORTED)
	}
	c.connClosed()
}

// --- Path-manager command API (the paper's commands) ---

// OpenSubflow establishes an additional subflow from the given local
// address and port (0 picks an ephemeral port) to the given remote address
// and port — the paper's create-subflow command, taking an arbitrary
// 4-tuple. backup requests RFC 6824 backup priority on the join.
func (c *Connection) OpenSubflow(laddr netip.Addr, lport uint16, raddr netip.Addr, rport uint16, backup bool) (*tcp.Subflow, error) {
	if !c.established {
		return nil, fmt.Errorf("mptcp: cannot join before the connection is established")
	}
	if c.closed {
		return nil, fmt.Errorf("mptcp: connection closed")
	}
	iface := c.ep.host.Iface(laddr)
	if iface == nil || !iface.Up() {
		return nil, tcp.ENETUNREACH
	}
	if lport == 0 {
		lport = c.ep.allocPort()
	}
	tuple := seg.FourTuple{SrcIP: laddr, DstIP: raddr, SrcPort: lport, DstPort: rport}
	if _, busy := c.ep.tuples[tuple]; busy {
		return nil, fmt.Errorf("mptcp: tuple %v already in use", tuple)
	}
	sf := c.newSubflow(tuple, &sfMeta{
		nonceLocal:  uint32(c.ep.sim.Rand().Int63()),
		localAddrID: c.ep.addrID(laddr),
		reqBackup:   backup,
	})
	sf.SetBackup(backup)
	c.stats.SubflowsOpened++
	sf.Connect()
	return sf, nil
}

// CloseSubflow removes a subflow — the paper's remove-subflow command,
// usable on any subflow, locally created or not. abort sends a RST
// immediately; otherwise the subflow closes gracefully after draining.
func (c *Connection) CloseSubflow(sf *tcp.Subflow, abort bool) {
	if abort {
		sf.Abort(tcp.ECONNABORTED)
	} else {
		sf.Close()
	}
}

// SetBackup changes a subflow's backup priority at runtime, signalling the
// peer with MP_PRIO.
func (c *Connection) SetBackup(sf *tcp.Subflow, backup bool) {
	sf.SetBackup(backup)
	sf.SendOptions(&seg.MPPrio{Backup: backup, HasAddrID: false})
	c.push() // priorities changed; the scheduler may now use other subflows
}

// AnnounceAddr advertises a local address (and optional port) to the peer
// with ADD_ADDR.
func (c *Connection) AnnounceAddr(addr netip.Addr, port uint16) {
	opt := &seg.AddAddr{AddrID: c.ep.addrID(addr), Addr: addr, Port: port, HasPort: port != 0}
	for _, sf := range c.subflows {
		if sf.Established() {
			sf.SendOptions(opt)
			return
		}
	}
}

// WithdrawAddr tells the peer a previously announced address is gone
// (REMOVE_ADDR).
func (c *Connection) WithdrawAddr(addr netip.Addr) {
	opt := &seg.RemoveAddr{AddrIDs: []uint8{c.ep.addrID(addr)}}
	for _, sf := range c.subflows {
		if sf.Established() {
			sf.SendOptions(opt)
			return
		}
	}
}

// --- Subflow construction ---

// newSubflow wires a tcp.Subflow into this connection and the endpoint's
// demux table.
func (c *Connection) newSubflow(tuple seg.FourTuple, m *sfMeta) *tcp.Subflow {
	cfg := c.ep.cfg.TCP
	if c.coupled != nil {
		cfg.NewCong = c.coupled.newCong
	}
	sf := tcp.NewSubflow(c.ep.sim, cfg, tuple, c.ep.output, c)
	if c.tsh != nil {
		sf.SetTrace(c.tsh, c.tsh.Tracer().Register(trace.EntFlow, c.tid,
			c.ep.host.Name()+"/"+tuple.String()))
	}
	if c.coupled != nil {
		c.coupled.bind(sf)
	}
	c.meta[sf] = m
	c.subflows = append(c.subflows, sf)
	c.ep.tuples[tuple] = sf
	return sf
}

// acceptJoin creates the passive subflow for an inbound MP_JOIN SYN.
func (c *Connection) acceptJoin(tuple seg.FourTuple, syn *seg.Segment) {
	sf := c.newSubflow(tuple, &sfMeta{
		nonceLocal:  uint32(c.ep.sim.Rand().Int63()),
		localAddrID: c.ep.addrID(tuple.SrcIP),
	})
	sf.HandleSegment(syn)
}

// subflowIndex reports sf's creation-order position (0 when unknown —
// a dying subflow may already be unlinked).
func (c *Connection) subflowIndex(sf *tcp.Subflow) int {
	for i, s := range c.subflows {
		if s == sf {
			return i
		}
	}
	return 0
}

// removeSubflow forgets a dead subflow.
func (c *Connection) removeSubflow(sf *tcp.Subflow) {
	for i, s := range c.subflows {
		if s == sf {
			c.subflows = append(c.subflows[:i], c.subflows[i+1:]...)
			break
		}
	}
	delete(c.meta, sf)
	delete(c.ep.tuples, sf.Tuple())
	if c.coupled != nil {
		c.coupled.unbind(sf)
	}
}

// --- Scheduling ---

// push hands pending data to subflows according to the scheduler:
// reinjected ranges first, then new data, then the DATA_FIN. A scheduler
// implementing MultiPicker may return several subflows per chunk; the
// first accounts for the bytes, the others carry redundant copies (the
// receiver's reassembly discards whichever lands second).
func (c *Connection) push() {
	if !c.established || c.closed {
		return
	}
	mp, _ := c.sched.(MultiPicker)
	for {
		rel, ln, isFin, fromRe := c.nextRange()
		if ln == 0 {
			break
		}
		// The scheduler sees the internal slice (it must not retain it);
		// targets reuse the connection's scratch buffer so the per-chunk
		// scheduling step does not allocate.
		targets := c.pickBuf[:0]
		if mp != nil {
			targets = append(targets, mp.PickAll(c.subflows, ln)...)
		} else if sf := c.sched.Pick(c.subflows, ln); sf != nil {
			targets = append(targets, sf)
		}
		c.pickBuf = targets[:0]
		if len(targets) == 0 {
			break
		}
		for i, sf := range targets {
			sf.Push(c.relToAbs(rel), ln, isFin)
			c.stats.ChunksPushed++
			if h := c.ep.cfg.Metrics.SchedPicks; h != nil {
				h.Observe(uint64(c.subflowIndex(sf)))
			}
			if i > 0 {
				c.stats.BytesDuplicated += uint64(ln)
				c.ep.cfg.Metrics.DupBytes.Add(uint64(ln))
			}
			if c.tsh != nil {
				var fl uint8
				if fromRe {
					fl |= trace.FReinject
				}
				if i > 0 {
					fl |= trace.FDup
				}
				c.tsh.Rec(c.ep.sim.Now(), trace.KPick, sf.TraceID(), rel, uint32(ln), 0, fl)
			}
			if c.TracePush != nil {
				// Redundant copies are first transmissions, not
				// reinjections; the flag reports reinjection only.
				c.TracePush(sf, rel, ln, fromRe)
			}
		}
		if fromRe {
			c.reinject.remove(rel, rel+uint64(ln))
			c.stats.BytesReinjected += uint64(ln)
			c.ep.cfg.Metrics.ReinjectBytes.Add(uint64(ln))
		} else if isFin {
			c.finScheduled = true
		} else {
			c.schedNxt = rel + uint64(ln)
			c.stats.BytesScheduled += uint64(ln)
		}
	}
}

// nextRange picks the next chunk to schedule.
func (c *Connection) nextRange() (rel uint64, ln int, isFin, fromReinject bool) {
	for {
		iv, ok := c.reinject.first()
		if !ok {
			break
		}
		if iv.hi <= c.sndUna {
			c.reinject.remove(iv.lo, iv.hi) // already acked meanwhile
			continue
		}
		lo := iv.lo
		if lo < c.sndUna {
			lo = c.sndUna
		}
		n := iv.hi - lo
		if n > uint64(c.mss) {
			n = uint64(c.mss)
		}
		fin := c.finQueued && lo+n == c.finRel+1
		return lo, int(n), fin, true
	}
	if c.schedNxt < c.appNxt {
		n := c.appNxt - c.schedNxt
		if n > uint64(c.mss) {
			n = uint64(c.mss)
		}
		return c.schedNxt, int(n), false, false
	}
	if c.finQueued && !c.finScheduled {
		return c.finRel, 1, true, false
	}
	return 0, 0, false, false
}

// reinjectSubflowData queues every not-yet-data-acked byte held by sf for
// transmission on other subflows (used when a subflow dies).
func (c *Connection) reinjectSubflowData(sf *tcp.Subflow) {
	for _, ch := range sf.UnackedChunks() {
		c.reinjectChunk(ch)
	}
}

// reinjectHead queues only the first unacknowledged chunk, which is what
// the kernel's retransmission-timer path reinjects. The rest of the sick
// subflow's queue stays committed to it, protected by its (backed-off)
// RTO — exactly the pathology the paper's §4.3 analysis describes: "the
// data is still retransmitted on the initial subflow... if at this point
// the scheduler decides to send some data on the underperforming subflow,
// this data is protected by an already very long RTO."
func (c *Connection) reinjectHead(sf *tcp.Subflow) {
	for _, ch := range sf.UnackedChunks() {
		lo := c.absToRelLocal(ch.DataSeq)
		if lo+uint64(ch.Len) <= c.sndUna {
			continue // already delivered via another subflow
		}
		c.reinjectChunk(ch)
		return
	}
}

func (c *Connection) reinjectChunk(ch *tcp.Chunk) {
	lo := c.absToRelLocal(ch.DataSeq)
	hi := lo + uint64(ch.Len)
	if hi <= c.sndUna {
		return
	}
	if lo < c.sndUna {
		lo = c.sndUna
	}
	c.reinject.add(lo, hi)
}

// --- tcp.Owner implementation ---

// HandshakeOptions implements tcp.Owner.
func (c *Connection) HandshakeOptions(sf *tcp.Subflow, st tcp.Stage) []seg.Option {
	m := c.meta[sf]
	if m.isInitial {
		switch st {
		case tcp.StageSYN:
			return []seg.Option{&seg.MPCapable{SenderKey: c.localKey}}
		case tcp.StageSYNACK:
			return []seg.Option{&seg.MPCapable{SenderKey: c.localKey}}
		case tcp.StageACK:
			return []seg.Option{&seg.MPCapable{SenderKey: c.localKey, ReceiverKey: c.remoteKey, HasReceiver: true}}
		}
		return nil
	}
	switch st {
	case tcp.StageSYN:
		return []seg.Option{&seg.MPJoin{
			Form: seg.JoinSYN, Token: c.remoteToken, Nonce: m.nonceLocal,
			AddrID: m.localAddrID, Backup: m.reqBackup,
		}}
	case tcp.StageSYNACK:
		return []seg.Option{&seg.MPJoin{
			Form:      seg.JoinSYNACK,
			TruncHMAC: seg.TruncatedJoinHMAC(c.localKey, c.remoteKey, m.nonceLocal, m.nonceRemote),
			Nonce:     m.nonceLocal,
			AddrID:    m.localAddrID,
		}}
	case tcp.StageACK:
		return []seg.Option{&seg.MPJoin{
			Form:     seg.JoinACK,
			FullHMAC: seg.JoinHMAC(c.localKey, c.remoteKey, m.nonceLocal, m.nonceRemote),
		}}
	}
	return nil
}

// HandshakeAccept implements tcp.Owner.
func (c *Connection) HandshakeAccept(sf *tcp.Subflow, s *seg.Segment, st tcp.Stage) tcp.Verdict {
	m := c.meta[sf]
	if m.isInitial {
		return c.acceptInitial(sf, s, st)
	}
	return c.acceptJoinStage(sf, m, s, st)
}

func (c *Connection) acceptInitial(sf *tcp.Subflow, s *seg.Segment, st tcp.Stage) tcp.Verdict {
	mpc := s.MPCapable()
	switch st {
	case tcp.StageSYN: // server side
		if mpc == nil {
			return tcp.Reject // no MPTCP fallback modelled
		}
		c.setRemoteKey(mpc.SenderKey)
		return tcp.Accept
	case tcp.StageSYNACK: // client side
		if mpc == nil {
			return tcp.Reject
		}
		c.setRemoteKey(mpc.SenderKey)
		return tcp.Accept
	case tcp.StageACK: // server side
		if mpc != nil {
			if !mpc.HasReceiver || mpc.SenderKey != c.remoteKey || mpc.ReceiverKey != c.localKey {
				return tcp.Reject
			}
			return tcp.Accept
		}
		// Third ACK lost but data with a valid DSS arrived: RFC 6824
		// treats that as implicit confirmation.
		if s.DSS() != nil {
			return tcp.Accept
		}
		return tcp.Ignore
	}
	return tcp.Reject
}

func (c *Connection) acceptJoinStage(sf *tcp.Subflow, m *sfMeta, s *seg.Segment, st tcp.Stage) tcp.Verdict {
	j := s.MPJoin()
	switch st {
	case tcp.StageSYN: // passive side: token already matched by the endpoint
		if j == nil || j.Form != seg.JoinSYN {
			return tcp.Reject
		}
		m.nonceRemote = j.Nonce
		sf.RemoteAddrID = j.AddrID
		if j.Backup {
			sf.SetBackup(true)
		}
		return tcp.Accept
	case tcp.StageSYNACK: // joining side: authenticate the peer
		if j == nil || j.Form != seg.JoinSYNACK {
			return tcp.Reject
		}
		m.nonceRemote = j.Nonce
		want := seg.TruncatedJoinHMAC(c.remoteKey, c.localKey, m.nonceRemote, m.nonceLocal)
		if j.TruncHMAC != want {
			return tcp.Reject
		}
		return tcp.Accept
	case tcp.StageACK: // passive side: authenticate the joiner
		if j == nil || j.Form != seg.JoinACK {
			return tcp.Ignore // wait for the HMAC-bearing ACK retransmission
		}
		want := seg.JoinHMAC(c.remoteKey, c.localKey, m.nonceRemote, m.nonceLocal)
		if j.FullHMAC != want {
			return tcp.Reject
		}
		return tcp.Accept
	}
	return tcp.Reject
}

// setRemoteKey installs the peer key and everything derived from it.
func (c *Connection) setRemoteKey(key uint64) {
	if c.remoteKey != 0 {
		return
	}
	c.remoteKey = key
	c.remoteToken = seg.Token(key)
	c.remoteIDSN = seg.IDSN(key)
}

// OnEstablished implements tcp.Owner.
func (c *Connection) OnEstablished(sf *tcp.Subflow) {
	m := c.meta[sf]
	if m.isInitial && !c.established {
		c.established = true
		c.ep.pm.ConnEstablished(c)
		if c.cb.OnEstablished != nil {
			c.cb.OnEstablished(c)
		}
		if c.onAccept != nil {
			c.onAccept(c)
		}
	}
	if c.tsh != nil {
		var fl uint8
		if sf.Backup() {
			fl = trace.FBackup
		}
		c.tsh.Rec(c.ep.sim.Now(), trace.KSubAdd, sf.TraceID(), 0, 0, 0, fl)
	}
	c.ep.pm.SubflowEstablished(c, sf)
	c.push()
}

// OnSegment implements tcp.Owner.
func (c *Connection) OnSegment(sf *tcp.Subflow, s *seg.Segment, hasNew bool) {
	for _, o := range s.Options {
		switch opt := o.(type) {
		case *seg.DSS:
			c.handleDSS(sf, s, opt, hasNew)
		case *seg.AddAddr:
			ap := netip.AddrPortFrom(opt.Addr, opt.Port)
			c.remoteAddrs[opt.AddrID] = ap
			c.ep.pm.AddrAnnounced(c, opt.AddrID, opt.Addr, opt.Port)
		case *seg.RemoveAddr:
			for _, id := range opt.AddrIDs {
				delete(c.remoteAddrs, id)
				c.ep.pm.AddrRemoved(c, id)
			}
		case *seg.MPPrio:
			sf.SetBackup(opt.Backup)
			c.push()
		case *seg.FastClose:
			if opt.ReceiverKey == c.localKey {
				for _, s := range append([]*tcp.Subflow(nil), c.subflows...) {
					s.Abort(tcp.ECONNRESET)
				}
				c.connClosed()
				return
			}
		}
	}
	c.checkCloseProgress()
}

func (c *Connection) handleDSS(sf *tcp.Subflow, s *seg.Segment, d *seg.DSS, hasNew bool) {
	if d.HasDataAck && c.established {
		rel := c.absToRelLocal(d.DataAck)
		limit := c.appNxt
		if c.finQueued {
			limit++
		}
		if rel > c.sndUna && rel <= limit {
			c.sndUna = rel
			c.reinject.remove(0, c.sndUna)
			if c.cb.OnDataAck != nil {
				c.cb.OnDataAck(c, c.SndUna())
			}
		}
	}
	if d.HasMap && hasNew {
		lo := c.absToRelRemote(d.DataSeq)
		hi := lo + uint64(d.MapLen)
		if d.DataFIN {
			c.peerFinSeen = true
			c.peerFinRel = hi - 1
		}
		advanced := c.rcv.receive(lo, hi)
		if g := c.ep.cfg.Metrics.ReassemblyOOHW; g != nil {
			g.SetMax(c.rcv.ooo.bytes())
		}
		if c.tsh != nil {
			var fl uint8
			if advanced {
				fl = trace.FAdvance
			}
			c.tsh.Rec(c.ep.sim.Now(), trace.KReassm, c.tid, lo, uint32(d.MapLen), c.rcv.nxt, fl)
		}
		if advanced {
			if c.cb.OnData != nil {
				c.cb.OnData(c, c.RcvBytes())
			}
			if c.peerFinSeen && c.rcv.nxt > c.peerFinRel && !c.peerClosed {
				c.peerClosed = true
				if c.cb.OnPeerClose != nil {
					c.cb.OnPeerClose(c)
				}
			}
		}
	}
}

// CurrentDataAck implements tcp.Owner.
func (c *Connection) CurrentDataAck() (uint64, bool) {
	if !c.established {
		return 0, false
	}
	return c.remoteIDSN + 1 + c.rcv.nxt, true
}

// OnAckAdvance implements tcp.Owner.
func (c *Connection) OnAckAdvance(sf *tcp.Subflow, acked []*tcp.Chunk) {
	c.push()
	c.checkCloseProgress()
}

// OnTimeout implements tcp.Owner: reinject the head-of-line data elsewhere
// (as the kernel's retransmit timer does), then surface the paper's
// timeout event to the path manager.
func (c *Connection) OnTimeout(sf *tcp.Subflow, rto time.Duration, backoffs int) {
	c.reinjectHead(sf)
	c.ep.pm.Timeout(c, sf, rto, backoffs)
	c.push()
}

// OnClosed implements tcp.Owner.
func (c *Connection) OnClosed(sf *tcp.Subflow, reason tcp.Errno) {
	c.tsh.Rec(c.ep.sim.Now(), trace.KSubDel, sf.TraceID(), 0, 0, uint64(int64(reason)), 0)
	c.reinjectSubflowData(sf)
	c.removeSubflow(sf)
	c.stats.SubflowsClosed++
	c.ep.pm.SubflowClosed(c, sf, reason)
	if !c.closed {
		c.push()
		c.maybeFullyClosed()
	}
}

// --- Close handling ---

// checkCloseProgress shuts subflows down once both directions' DATA_FINs
// are exchanged and acknowledged.
func (c *Connection) checkCloseProgress() {
	if c.closed || !c.finQueued || !c.peerFinSeen {
		return
	}
	finAcked := c.sndUna >= c.finRel+1
	peerFinConsumed := c.rcv.nxt >= c.peerFinRel+1
	if !finAcked || !peerFinConsumed {
		return
	}
	for _, sf := range append([]*tcp.Subflow(nil), c.subflows...) {
		sf.Close()
	}
	c.maybeFullyClosed()
}

// maybeFullyClosed finishes the connection once a close was requested and
// every subflow is gone.
func (c *Connection) maybeFullyClosed() {
	if c.closed || len(c.subflows) > 0 {
		return
	}
	if c.finQueued && c.peerFinSeen && c.sndUna >= c.finRel+1 && c.rcv.nxt >= c.peerFinRel+1 {
		c.connClosed()
	}
}

// connClosed tears the connection down exactly once.
func (c *Connection) connClosed() {
	if c.closed {
		return
	}
	c.closed = true
	c.ep.removeConn(c)
	c.ep.pm.ConnClosed(c)
	if c.cb.OnClosed != nil {
		c.cb.OnClosed(c)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
