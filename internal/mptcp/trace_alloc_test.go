package mptcp

import (
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/trace"
)

// TestTracedDataPathAllocFree pins the tracing tentpole: with a
// recorder attached to both endpoints, the steady-state seg→tcp→netem
// data path (write → schedule → transmit → deliver → ack) still
// performs zero heap allocations per operation. Entity registration
// happens at connection setup; after warm-up, recording is a store
// into the preallocated rings.
func TestTracedDataPathAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	p0, p1 := fastPaths()
	tr := trace.New(1 << 12)
	sh := tr.Shard("host")
	r := newRig(t, 1, p0, p1, Config{Trace: sh})
	r.net.Sim.Run()
	if !r.client.Established() {
		t.Fatal("handshake failed")
	}
	// Warm every pool on the path (segments, packets, chunks, events)
	// and wrap the trace ring at least once, so the measurement runs in
	// drop-oldest steady state.
	for i := 0; i < 1024; i++ {
		r.client.Write(1380)
		r.net.Sim.RunFor(20 * time.Millisecond)
	}
	before := r.rcvTotal
	avg := testing.AllocsPerRun(2000, func() {
		r.client.Write(1380)
		r.net.Sim.RunFor(20 * time.Millisecond)
	})
	if r.rcvTotal <= before {
		t.Fatal("no data was delivered during the measurement")
	}
	if sh.Dropped() == 0 {
		t.Fatal("ring never wrapped; the test did not exercise drop-oldest steady state")
	}
	if avg > 0.05 {
		t.Fatalf("traced data path allocates %.2f allocs/op, want ~0", avg)
	}
}

// TestTracedRunMatchesUntraced pins the observer property at the
// protocol level: the same seed with and without a recorder delivers
// byte-identical connection outcomes — tracing never perturbs the
// simulation.
func TestTracedRunMatchesUntraced(t *testing.T) {
	run := func(cfg Config) (uint64, ConnStats) {
		p0, p1 := fastPaths()
		r := newRig(t, 42, p0, p1, cfg)
		r.net.Sim.Run()
		r.net.Path[0].AB.SetLoss(0.2)
		r.client.Write(1 << 20)
		r.client.Close()
		r.net.Sim.RunFor(2 * time.Minute)
		return r.rcvTotal, r.client.Stats()
	}
	plainRcv, plainStats := run(Config{})
	tr := trace.New(1 << 10)
	tracedRcv, tracedStats := run(Config{Trace: tr.Shard("host")})
	if plainRcv != tracedRcv || plainStats != tracedStats {
		t.Fatalf("traced run diverged from untraced: rcv %d vs %d, stats %+v vs %+v",
			plainRcv, tracedRcv, plainStats, tracedStats)
	}
	if tr.Shard("host").Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
}
