package mptcp

import "repro/internal/metrics"

// Metrics bundles the live metric handles the connection layer records
// into. The zero value (all-nil handles) disables recording at the cost
// of one branch per event — the same contract as trace.Rec. Handles must
// be bound to the slot of the shard the owning host runs on (metrics
// slots are single-writer; see internal/metrics). Subflow-level handles
// ride separately in Config.TCP.Metrics.
type Metrics struct {
	// SchedPicks observes the creation-order index of the subflow each
	// scheduler pick lands on (a linear histogram: bucket 0 = initial
	// subflow, the last bucket absorbs any overflow).
	SchedPicks *metrics.Histogram
	// ReinjectBytes counts payload bytes queued again after a timeout or
	// subflow death and handed to another subflow.
	ReinjectBytes *metrics.Counter
	// DupBytes counts redundant copies placed by MultiPicker schedulers.
	DupBytes *metrics.Counter
	// ReassemblyOOHW tracks the high-water mark of bytes parked in the
	// receiver's out-of-order reassembly queue.
	ReassemblyOOHW *metrics.Gauge
}
