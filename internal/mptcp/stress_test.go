package mptcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
)

// TestQuickEndToEndIntegrity is the package's strongest property: under
// ARBITRARY per-path loss rates, delays and transfer sizes, every written
// byte is delivered exactly once, in order, or the connection's subflows
// die trying — the stream is never corrupted, duplicated into the app, or
// silently truncated while a path still works.
func TestQuickEndToEndIntegrity(t *testing.T) {
	f := func(seed int64, loss0, loss1 uint8, kb uint16, delayMs0, delayMs1 uint8) bool {
		l0 := float64(loss0%45) / 100 // 0–44 %
		l1 := float64(loss1%25) / 100 // 0–24 % (one path stays usable)
		size := (int(kb%512) + 8) << 10
		d0 := time.Duration(delayMs0%40+1) * time.Millisecond
		d1 := time.Duration(delayMs1%40+1) * time.Millisecond

		r := newRig(t, seed,
			netem.LinkConfig{RateBps: 20e6, Delay: d0},
			netem.LinkConfig{RateBps: 20e6, Delay: d1},
			Config{})
		r.net.Sim.Run()
		if r.client == nil || !r.client.Established() {
			return false
		}
		r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
		r.net.Sim.Run()
		r.net.Path[0].AB.SetLoss(l0)
		r.net.Path[1].AB.SetLoss(l1)
		r.client.Write(size)
		r.net.Sim.RunUntil(r.net.Sim.Now() + 10*60*1_000_000_000) // 10 min budget
		// Exactly size bytes, in order (rcvTotal is the contiguous
		// frontier — overshoot would mean duplication into the app).
		return r.rcvTotal == uint64(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSubflowChurn hammers the path-manager command API while a
// transfer runs: subflows are created and destroyed at random; the stream
// must still arrive complete as long as one subflow survives.
func TestChaosSubflowChurn(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 77, p0, p1, Config{})
	r.net.Sim.Run()
	const total = 8 << 20
	r.client.Write(total)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		at := r.net.Sim.Now().Add(time.Duration(i+1) * 100 * time.Millisecond)
		r.net.Sim.Schedule(at, "churn", func() {
			if r.client.Closed() {
				return
			}
			subs := r.client.Subflows()
			switch {
			case len(subs) < 2:
				r.client.OpenSubflow(r.net.ClientAddrs[rng.Intn(2)], 0, r.net.ServerAddr, 80, false)
			case rng.Intn(2) == 0:
				r.client.CloseSubflow(subs[rng.Intn(len(subs))], true)
			default:
				r.client.OpenSubflow(r.net.ClientAddrs[rng.Intn(2)], 0, r.net.ServerAddr, 80, false)
			}
		})
	}
	r.net.Sim.RunUntil(60 * 1_000_000_000)
	if r.rcvTotal != total {
		t.Fatalf("chaos lost data: %d / %d", r.rcvTotal, total)
	}
	if r.client.Stats().BytesReinjected == 0 {
		t.Fatal("churn without any reinjection — aborts did not strand data?")
	}
}

// TestSchedulerComparison runs the same two-path transfer under both
// schedulers as a sanity ablation: both must complete, and lowest-RTT must
// not lose to round-robin on asymmetric paths (it is the kernel default
// for a reason).
func TestSchedulerComparison(t *testing.T) {
	run := func(sched string) float64 {
		r := newRig(t, 55,
			netem.LinkConfig{RateBps: 20e6, Delay: 5 * time.Millisecond},
			netem.LinkConfig{RateBps: 20e6, Delay: 60 * time.Millisecond},
			Config{Scheduler: sched})
		r.net.Sim.Run()
		r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
		r.net.Sim.Run()
		r.client.Write(16 << 20)
		start := r.net.Sim.Now()
		for r.rcvTotal < 16<<20 && r.net.Sim.Now() < start+60*1_000_000_000 {
			r.net.Sim.RunFor(100 * time.Millisecond)
		}
		return (r.net.Sim.Now() - start).Seconds()
	}
	lrtt := run("lowest-rtt")
	rr := run("round-robin")
	if lrtt > 55 || rr > 55 {
		t.Fatalf("a scheduler failed to complete: lowest-rtt=%.1fs round-robin=%.1fs", lrtt, rr)
	}
	if lrtt > rr*1.5 {
		t.Fatalf("lowest-RTT (%.1fs) much worse than round-robin (%.1fs)", lrtt, rr)
	}
}

// TestBackupNeverUsedOnHealthyPath runs long enough for slow-start
// overshoot and recovery cycles: the backup subflow must stay cold the
// whole time (RFC 6824 semantics — not merely "prefer non-backup").
func TestBackupNeverUsedOnHealthyPath(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 66, p0, p1, Config{})
	r.net.Sim.Run()
	backup, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.client.Write(1 << 20)
		r.net.Sim.RunFor(2 * time.Second)
	}
	if backup.Info().Stats.BytesSent != 0 {
		t.Fatalf("backup carried %d bytes on a healthy primary", backup.Info().Stats.BytesSent)
	}
	if r.rcvTotal != 10<<20 {
		t.Fatalf("received %d", r.rcvTotal)
	}
}
