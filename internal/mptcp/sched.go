package mptcp

import (
	"time"

	"repro/internal/tcp"
)

// Scheduler decides which established subflow carries the next chunk of
// data. The kernel's default — and the one all the paper's experiments run
// — prefers the lowest-RTT subflow whose congestion window is open; backup
// subflows are used only when no regular subflow is usable (RFC 6824
// backup semantics).
//
// Schedulers are registered by name (see RegisterScheduler) so experiments
// can sweep every known policy; the built-ins are "lowest-rtt",
// "round-robin", "redundant" and "weighted-rtt".
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Pick returns the subflow to send on, or nil if none can take data
	// now. want is the chunk size the connection would like to place.
	Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow
}

// MultiPicker is an optional Scheduler extension for redundant policies:
// PickAll returns every subflow that should carry a copy of the chunk.
// The first subflow is the primary (it accounts for the bytes); the rest
// receive duplicates. An empty slice means nothing can be sent now.
type MultiPicker interface {
	PickAll(subflows []*tcp.Subflow, want int) []*tcp.Subflow
}

// usable reports whether sf can take a want-byte chunk right now on the
// given priority tier.
func usable(sf *tcp.Subflow, backup bool, want int) bool {
	return sf.Backup() == backup && sf.Established() && sf.AvailableCwnd() >= want
}

// backupsAllowed implements the RFC 6824 rule every scheduler shares:
// backup subflows may carry data only when no regular subflow is
// established. Regular subflows that are merely cwnd-limited but alive
// block the backups — the connection waits for them instead.
func backupsAllowed(subflows []*tcp.Subflow) bool {
	for _, sf := range subflows {
		if !sf.Backup() && sf.Established() {
			return false
		}
	}
	return true
}

// LowestRTT is the default Linux MPTCP scheduler: among subflows with an
// open congestion window, pick the one with the smallest smoothed RTT.
// Non-backup subflows always win over backup subflows.
type LowestRTT struct{}

// Name implements Scheduler.
func (LowestRTT) Name() string { return "lowest-rtt" }

// Pick implements Scheduler.
func (LowestRTT) Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow {
	pick := func(backup bool) *tcp.Subflow {
		var best *tcp.Subflow
		var bestRTT time.Duration
		for _, sf := range subflows {
			// The window must fit the whole chunk: allowing sub-MSS
			// crumbs fragments the stream into tiny segments (half the
			// link then carries headers), which no real stack does.
			if !usable(sf, backup, want) {
				continue
			}
			rtt := sf.SRTT()
			if best == nil || rtt < bestRTT {
				best, bestRTT = sf, rtt
			}
		}
		return best
	}
	if sf := pick(false); sf != nil {
		return sf
	}
	if !backupsAllowed(subflows) {
		return nil
	}
	return pick(true)
}

// RoundRobin cycles through subflows with open windows, ignoring RTT. It
// exists as the classic comparison scheduler (Paasch et al., CSWS'14).
type RoundRobin struct {
	last int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow {
	n := len(subflows)
	if n == 0 {
		return nil
	}
	pick := func(backup bool) *tcp.Subflow {
		for i := 1; i <= n; i++ {
			sf := subflows[(r.last+i)%n]
			if !usable(sf, backup, want) {
				continue
			}
			r.last = (r.last + i) % n
			return sf
		}
		return nil
	}
	if sf := pick(false); sf != nil {
		return sf
	}
	if !backupsAllowed(subflows) {
		return nil
	}
	return pick(true)
}
