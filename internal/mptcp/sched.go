package mptcp

import (
	"time"

	"repro/internal/tcp"
)

// Scheduler decides which established subflow carries the next chunk of
// data. The kernel's default — and the one all the paper's experiments run
// — prefers the lowest-RTT subflow whose congestion window is open; backup
// subflows are used only when no regular subflow is usable (RFC 6824
// backup semantics).
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Pick returns the subflow to send on, or nil if none can take data
	// now. want is the chunk size the connection would like to place.
	Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow
}

// LowestRTT is the default Linux MPTCP scheduler: among subflows with an
// open congestion window, pick the one with the smallest smoothed RTT.
// Non-backup subflows always win over backup subflows.
type LowestRTT struct{}

// Name implements Scheduler.
func (LowestRTT) Name() string { return "lowest-rtt" }

// Pick implements Scheduler.
func (LowestRTT) Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow {
	pick := func(backup bool) *tcp.Subflow {
		var best *tcp.Subflow
		var bestRTT time.Duration
		for _, sf := range subflows {
			// The window must fit the whole chunk: allowing sub-MSS
			// crumbs fragments the stream into tiny segments (half the
			// link then carries headers), which no real stack does.
			if sf.Backup() != backup || !sf.Established() || sf.AvailableCwnd() < want {
				continue
			}
			rtt := sf.SRTT()
			if best == nil || rtt < bestRTT {
				best, bestRTT = sf, rtt
			}
		}
		return best
	}
	if sf := pick(false); sf != nil {
		return sf
	}
	// Backup subflows carry data only when no regular subflow can. That
	// includes the case where regular subflows exist but are all dead —
	// but NOT the case where they are merely cwnd-limited and alive:
	// if any regular subflow is established we wait for it.
	for _, sf := range subflows {
		if !sf.Backup() && sf.Established() {
			return nil
		}
	}
	return pick(true)
}

// RoundRobin cycles through subflows with open windows, ignoring RTT. It
// exists as the classic comparison scheduler (Paasch et al., CSWS'14).
type RoundRobin struct {
	last int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow {
	n := len(subflows)
	if n == 0 {
		return nil
	}
	pick := func(backup bool) *tcp.Subflow {
		for i := 1; i <= n; i++ {
			sf := subflows[(r.last+i)%n]
			if sf.Backup() != backup || !sf.Established() || sf.AvailableCwnd() < want {
				continue
			}
			r.last = (r.last + i) % n
			return sf
		}
		return nil
	}
	if sf := pick(false); sf != nil {
		return sf
	}
	for _, sf := range subflows {
		if !sf.Backup() && sf.Established() {
			return nil
		}
	}
	return pick(true)
}
