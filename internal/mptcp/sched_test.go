package mptcp

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/seg"
	"repro/internal/tcp"
)

// stub builds a subflow pinned to the given scheduler-visible state, with
// a distinct port so failures identify the subflow.
func stub(port uint16, backup, established bool, srtt time.Duration, window int) *tcp.Subflow {
	return tcp.NewStubSubflow(tcp.StubState{
		Tuple:       seg.FourTuple{SrcPort: port},
		Backup:      backup,
		Established: established,
		SRTT:        srtt,
		Window:      window,
	})
}

// TestSchedulerBackupSemantics drives every registered scheduler through
// the RFC 6824 backup-priority scenarios documented in sched.go: a backup
// subflow may carry data only when no regular subflow is established —
// cwnd-limited-but-alive regular subflows block the backups.
func TestSchedulerBackupSemantics(t *testing.T) {
	const want = 1380
	regOpen := func() *tcp.Subflow { return stub(1, false, true, 10*time.Millisecond, 1<<20) }
	regStarved := func() *tcp.Subflow { return stub(2, false, true, 10*time.Millisecond, 0) }
	regDead := func() *tcp.Subflow { return stub(3, false, false, 10*time.Millisecond, 1<<20) }
	bakOpen := func() *tcp.Subflow { return stub(4, true, true, 5*time.Millisecond, 1<<20) }

	cases := []struct {
		name     string
		subflows func() []*tcp.Subflow
		// wantPort is the SrcPort of the subflow that must be picked;
		// 0 means Pick must return nil.
		wantPort uint16
	}{
		{
			name:     "regular open beats lower-RTT backup",
			subflows: func() []*tcp.Subflow { return []*tcp.Subflow{bakOpen(), regOpen()} },
			wantPort: 1,
		},
		{
			name:     "cwnd-limited regular still blocks backup",
			subflows: func() []*tcp.Subflow { return []*tcp.Subflow{regStarved(), bakOpen()} },
			wantPort: 0,
		},
		{
			name:     "backup usable once regulars are dead",
			subflows: func() []*tcp.Subflow { return []*tcp.Subflow{regDead(), bakOpen()} },
			wantPort: 4,
		},
		{
			name:     "only backups",
			subflows: func() []*tcp.Subflow { return []*tcp.Subflow{bakOpen()} },
			wantPort: 4,
		},
		{
			name:     "nothing usable",
			subflows: func() []*tcp.Subflow { return []*tcp.Subflow{regDead()} },
			wantPort: 0,
		},
	}

	for _, schedName := range SchedulerNames() {
		factory, err := LookupScheduler(schedName)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			t.Run(schedName+"/"+tc.name, func(t *testing.T) {
				// A fresh scheduler and rng per case: stateful schedulers
				// (round-robin, weighted-rtt) must not leak state across
				// cases, and randomized ones are probed repeatedly.
				for trial := 0; trial < 50; trial++ {
					s := factory(rand.New(rand.NewSource(int64(trial))))
					sf := s.Pick(tc.subflows(), want)
					var got uint16
					if sf != nil {
						got = sf.Tuple().SrcPort
					}
					if got != tc.wantPort {
						t.Fatalf("trial %d: picked port %d, want %d", trial, got, tc.wantPort)
					}
				}
			})
		}
	}
}

// TestRedundantPickAll checks the multi-pick contract: every usable
// subflow is returned lowest-RTT first, and backups never appear while a
// regular subflow is established.
func TestRedundantPickAll(t *testing.T) {
	slow := stub(1, false, true, 80*time.Millisecond, 1<<20)
	fast := stub(2, false, true, 10*time.Millisecond, 1<<20)
	starved := stub(3, false, true, time.Millisecond, 0)
	bak := stub(4, true, true, time.Millisecond, 1<<20)

	got := (&Redundant{}).PickAll([]*tcp.Subflow{slow, fast, starved, bak}, 1380)
	if len(got) != 2 || got[0] != fast || got[1] != slow {
		t.Fatalf("PickAll returned %d subflows in wrong order", len(got))
	}

	// With every regular subflow gone, all usable backups are returned.
	got = (&Redundant{}).PickAll([]*tcp.Subflow{stub(5, false, false, 0, 1<<20), bak}, 1380)
	if len(got) != 1 || got[0] != bak {
		t.Fatalf("backup fallback broken: got %d subflows", len(got))
	}
}

// TestWeightedRTTBias samples the weighted-rtt scheduler many times: the
// 10 ms subflow must attract roughly 10x the picks of the 100 ms one
// (weights are 1/SRTT), and the draw sequence must be deterministic for a
// fixed rng seed.
func TestWeightedRTTBias(t *testing.T) {
	fast := stub(1, false, true, 10*time.Millisecond, 1<<20)
	slow := stub(2, false, true, 100*time.Millisecond, 1<<20)
	subflows := []*tcp.Subflow{slow, fast}

	run := func(seed int64) (fastN int, seq []uint16) {
		w := NewWeightedRTT(rand.New(rand.NewSource(seed)))
		for i := 0; i < 2000; i++ {
			sf := w.Pick(subflows, 1380)
			if sf == nil {
				t.Fatal("no pick with open windows")
			}
			seq = append(seq, sf.Tuple().SrcPort)
			if sf == fast {
				fastN++
			}
		}
		return fastN, seq
	}
	fastN, seq1 := run(7)
	// Expected share 10/11 ≈ 0.909; allow generous sampling noise.
	if share := float64(fastN) / 2000; share < 0.85 || share > 0.97 {
		t.Fatalf("fast subflow share %.3f, want ≈0.91", share)
	}
	_, seq2 := run(7)
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("pick %d differs across identically-seeded runs", i)
		}
	}
}

// TestSchedulerRegistry covers the registry surface: the built-ins are
// present, the empty name resolves to the default, unknown names fail
// with the known set in the message, and duplicates panic.
func TestSchedulerRegistry(t *testing.T) {
	names := SchedulerNames()
	for _, want := range []string{"lowest-rtt", "round-robin", "redundant", "weighted-rtt"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in %q missing from registry %v", want, names)
		}
	}
	f, err := LookupScheduler("")
	if err != nil {
		t.Fatal(err)
	}
	if s := f(rand.New(rand.NewSource(1))); s.Name() != "lowest-rtt" {
		t.Fatalf("empty name resolved to %q", s.Name())
	}
	if _, err := LookupScheduler("no-such-sched"); err == nil {
		t.Fatal("unknown scheduler did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterScheduler("lowest-rtt", func(*rand.Rand) Scheduler { return LowestRTT{} })
}

// TestRedundantEndToEnd runs a real two-path transfer under the redundant
// scheduler: the stream must arrive exactly once and the second subflow
// must have carried duplicate copies.
func TestRedundantEndToEnd(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 91, p0, p1, Config{Scheduler: "redundant"})
	r.net.Sim.Run()
	if _, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false); err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	const total = 4 << 20
	r.client.Write(total)
	r.net.Sim.RunFor(time.Minute)
	if r.rcvTotal != total {
		t.Fatalf("received %d / %d", r.rcvTotal, total)
	}
	st := r.client.Stats()
	if st.BytesDuplicated == 0 {
		t.Fatal("redundant scheduler duplicated nothing across two open subflows")
	}
	if st.BytesScheduled != total {
		t.Fatalf("first-time scheduling accounted %d bytes, want %d", st.BytesScheduled, total)
	}
}

// TestWeightedRTTEndToEnd completes a transfer under weighted-rtt on
// asymmetric paths — the probabilistic policy must still drain the stream.
func TestWeightedRTTEndToEnd(t *testing.T) {
	r := newRig(t, 92,
		netem.LinkConfig{RateBps: 20e6, Delay: 5 * time.Millisecond},
		netem.LinkConfig{RateBps: 20e6, Delay: 40 * time.Millisecond},
		Config{Scheduler: "weighted-rtt"})
	r.net.Sim.Run()
	if _, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false); err != nil {
		t.Fatal(err)
	}
	r.net.Sim.Run()
	const total = 8 << 20
	r.client.Write(total)
	r.net.Sim.RunFor(time.Minute)
	if r.rcvTotal != total {
		t.Fatalf("received %d / %d", r.rcvTotal, total)
	}
	// Both subflows should have carried a share (weights keep the slow
	// path warm, unlike lowest-rtt).
	a := r.client.Subflows()[0].Info().Stats.BytesSent
	b := r.client.Subflows()[1].Info().Stats.BytesSent
	if a == 0 || b == 0 {
		t.Fatalf("weighted-rtt starved a path: %d / %d bytes", a, b)
	}
}
