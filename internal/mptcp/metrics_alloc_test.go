package mptcp

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/tcp"
	"repro/internal/testutil"
)

// meteredConfig binds every connection- and subflow-level metric handle
// to slot 0 of a fresh single-slot registry — the densest instrumentation
// a real run ever attaches.
func meteredConfig(reg *metrics.Registry) Config {
	return Config{
		Metrics: Metrics{
			SchedPicks:     reg.HistogramLinear("mptcp_sched_picks", 8, 0),
			ReinjectBytes:  reg.Counter("mptcp_reinject_bytes", 0),
			DupBytes:       reg.Counter("mptcp_dup_bytes", 0),
			ReassemblyOOHW: reg.Gauge("mptcp_reassembly_oo_hw", 0),
		},
		TCP: tcp.Config{Metrics: tcp.Metrics{
			Retrans:     reg.Counter("tcp_retrans_segs", 0),
			FastRetrans: reg.Counter("tcp_fast_retrans", 0),
			RTOTimeouts: reg.Counter("tcp_rto_timeouts", 0),
		}},
	}
}

// TestMeteredDataPathAllocFree pins the metrics tentpole: with every
// metric handle bound on both endpoints, the steady-state seg→tcp→netem
// data path (write → schedule → transmit → deliver → ack) still performs
// zero heap allocations per operation. Handle binding happens at
// endpoint construction; after warm-up, recording is a plain add into a
// preallocated per-shard slot.
func TestMeteredDataPathAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	reg := metrics.New(1)
	p0, p1 := fastPaths()
	r := newRig(t, 1, p0, p1, meteredConfig(reg))
	r.net.Sim.Run()
	if !r.client.Established() {
		t.Fatal("handshake failed")
	}
	// Warm every pool on the path (segments, packets, chunks, events).
	for i := 0; i < 1024; i++ {
		r.client.Write(1380)
		r.net.Sim.RunFor(20 * time.Millisecond)
	}
	before := r.rcvTotal
	avg := testing.AllocsPerRun(2000, func() {
		r.client.Write(1380)
		r.net.Sim.RunFor(20 * time.Millisecond)
	})
	if r.rcvTotal <= before {
		t.Fatal("no data was delivered during the measurement")
	}
	if m := reg.Snapshot().Get("mptcp_sched_picks"); m == nil || m.Value == 0 {
		t.Fatal("scheduler picks were not recorded; the path is not instrumented")
	}
	if avg > 0.05 {
		t.Fatalf("metered data path allocates %.2f allocs/op, want 0", avg)
	}
}

// TestMeteredRunMatchesUnmetered pins the observer property: the same
// seed with and without metric handles delivers byte-identical
// connection outcomes — recording never perturbs the simulation.
func TestMeteredRunMatchesUnmetered(t *testing.T) {
	run := func(cfg Config) (uint64, ConnStats) {
		p0, p1 := fastPaths()
		r := newRig(t, 42, p0, p1, cfg)
		r.net.Sim.Run()
		r.net.Path[0].AB.SetLoss(0.2)
		r.client.Write(1 << 20)
		r.client.Close()
		r.net.Sim.RunFor(2 * time.Minute)
		return r.rcvTotal, r.client.Stats()
	}
	plainRcv, plainStats := run(Config{})
	reg := metrics.New(1)
	metRcv, metStats := run(meteredConfig(reg))
	if plainRcv != metRcv || plainStats != metStats {
		t.Fatalf("metered run diverged from unmetered: rcv %d vs %d, stats %+v vs %+v",
			plainRcv, metRcv, plainStats, metStats)
	}
	if m := reg.Snapshot().Get("tcp_retrans_segs"); m == nil || m.Value == 0 {
		t.Fatal("lossy metered run recorded no retransmissions")
	}
}
