package mptcp

import (
	"net/netip"
	"time"

	"repro/internal/tcp"
)

// PathManager is the in-kernel path-manager interface — the "red interface"
// of the paper's Figure 1. The kernel (here: Endpoint/Connection) calls
// these hooks; implementations decide when subflows are created and
// destroyed using the command methods on Connection (OpenSubflow,
// CloseSubflow, SetBackup, GetInfo via Info()).
//
// Three peers sit behind this interface, exactly as in the paper:
// pm.FullMesh and pm.NDiffPorts (the two strategies shipped in the Linux
// kernel) and core.NetlinkPM, which forwards every hook as a Netlink event
// to a userspace subflow controller.
type PathManager interface {
	// Name identifies the path manager in experiment output.
	Name() string

	// ConnCreated fires when a connection comes into existence (SYN sent
	// on the client, SYN received on the server).
	ConnCreated(c *Connection)
	// ConnEstablished fires when the MP_CAPABLE handshake completes.
	ConnEstablished(c *Connection)
	// ConnClosed fires when the connection is fully gone.
	ConnClosed(c *Connection)

	// SubflowEstablished fires when any subflow (initial or joined,
	// locally or remotely initiated) completes its handshake.
	SubflowEstablished(c *Connection, sf *tcp.Subflow)
	// SubflowClosed fires when a subflow dies; reason is the errno the
	// paper's sub_closed event carries.
	SubflowClosed(c *Connection, sf *tcp.Subflow, reason tcp.Errno)

	// AddrAnnounced fires when the peer advertises an address (ADD_ADDR).
	AddrAnnounced(c *Connection, id uint8, addr netip.Addr, port uint16)
	// AddrRemoved fires when the peer withdraws an address (REMOVE_ADDR).
	AddrRemoved(c *Connection, id uint8)

	// Timeout fires on every subflow retransmission-timer expiry, with
	// the backed-off RTO now in force — the paper's timeout event.
	Timeout(c *Connection, sf *tcp.Subflow, rto time.Duration, backoffs int)

	// LocalAddrUp / LocalAddrDown fire on host interface transitions
	// (the paper's new_local_addr / del_local_addr events).
	LocalAddrUp(addr netip.Addr)
	LocalAddrDown(addr netip.Addr)
}

// NopPM is a PathManager that does nothing: connections keep only the
// subflows their peers create. It is the "default" baseline and a
// convenient embedding for managers that care about few hooks.
type NopPM struct{}

// Name implements PathManager.
func (NopPM) Name() string { return "default" }

// ConnCreated implements PathManager.
func (NopPM) ConnCreated(*Connection) {}

// ConnEstablished implements PathManager.
func (NopPM) ConnEstablished(*Connection) {}

// ConnClosed implements PathManager.
func (NopPM) ConnClosed(*Connection) {}

// SubflowEstablished implements PathManager.
func (NopPM) SubflowEstablished(*Connection, *tcp.Subflow) {}

// SubflowClosed implements PathManager.
func (NopPM) SubflowClosed(*Connection, *tcp.Subflow, tcp.Errno) {}

// AddrAnnounced implements PathManager.
func (NopPM) AddrAnnounced(*Connection, uint8, netip.Addr, uint16) {}

// AddrRemoved implements PathManager.
func (NopPM) AddrRemoved(*Connection, uint8) {}

// Timeout implements PathManager.
func (NopPM) Timeout(*Connection, *tcp.Subflow, time.Duration, int) {}

// LocalAddrUp implements PathManager.
func (NopPM) LocalAddrUp(netip.Addr) {}

// LocalAddrDown implements PathManager.
func (NopPM) LocalAddrDown(netip.Addr) {}
