package mptcp

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// SchedulerFactory builds a fresh per-connection scheduler. rng is the
// owning simulation's deterministic random source; randomized schedulers
// must draw from it (and only it) so runs stay reproducible per seed.
type SchedulerFactory func(rng *rand.Rand) Scheduler

var schedRegistry = struct {
	sync.RWMutex
	factories map[string]SchedulerFactory
	descs     map[string]string
}{factories: make(map[string]SchedulerFactory), descs: make(map[string]string)}

// RegisterScheduler makes a scheduler available by name to endpoint
// configuration, cmd/mpexp -sched, and the schedsweep experiment. It
// panics on an empty name or a duplicate registration — both are
// programming errors, caught at init time.
func RegisterScheduler(name string, f SchedulerFactory) {
	RegisterSchedulerDesc(name, "", f)
}

// RegisterSchedulerDesc registers a scheduler with a one-line description
// for listings (`mpexp list`).
func RegisterSchedulerDesc(name, desc string, f SchedulerFactory) {
	if name == "" || f == nil {
		panic("mptcp: RegisterScheduler with empty name or nil factory")
	}
	schedRegistry.Lock()
	defer schedRegistry.Unlock()
	if _, dup := schedRegistry.factories[name]; dup {
		panic(fmt.Sprintf("mptcp: scheduler %q registered twice", name))
	}
	schedRegistry.factories[name] = f
	schedRegistry.descs[name] = desc
}

// SchedulerInfo describes a registered scheduler for listings.
type SchedulerInfo struct {
	Name string
	Desc string
}

// Schedulers lists every registered scheduler with its description,
// sorted by name.
func Schedulers() []SchedulerInfo {
	schedRegistry.RLock()
	defer schedRegistry.RUnlock()
	out := make([]SchedulerInfo, 0, len(schedRegistry.factories))
	for _, n := range schedulerNamesLocked() {
		out = append(out, SchedulerInfo{Name: n, Desc: schedRegistry.descs[n]})
	}
	return out
}

// LookupScheduler returns the factory registered under name. The empty
// name resolves to the kernel default, lowest-rtt.
func LookupScheduler(name string) (SchedulerFactory, error) {
	if name == "" {
		name = "lowest-rtt"
	}
	schedRegistry.RLock()
	defer schedRegistry.RUnlock()
	f, ok := schedRegistry.factories[name]
	if !ok {
		return nil, fmt.Errorf("mptcp: unknown scheduler %q (registered: %s)",
			name, strings.Join(schedulerNamesLocked(), ", "))
	}
	return f, nil
}

// SchedulerNames lists every registered scheduler, sorted.
func SchedulerNames() []string {
	schedRegistry.RLock()
	defer schedRegistry.RUnlock()
	return schedulerNamesLocked()
}

func schedulerNamesLocked() []string {
	names := make([]string, 0, len(schedRegistry.factories))
	for n := range schedRegistry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterSchedulerDesc("lowest-rtt",
		"kernel default: pick the established subflow with the lowest smoothed RTT",
		func(*rand.Rand) Scheduler { return LowestRTT{} })
	RegisterSchedulerDesc("round-robin",
		"classic alternative: rotate through the usable subflows",
		func(*rand.Rand) Scheduler { return &RoundRobin{} })
	RegisterSchedulerDesc("redundant",
		"latency-optimal bound: duplicate every segment on every usable subflow",
		func(*rand.Rand) Scheduler { return &Redundant{} })
	RegisterSchedulerDesc("weighted-rtt",
		"probabilistic middle ground: weight subflow choice by inverse RTT",
		func(rng *rand.Rand) Scheduler { return &WeightedRTT{rng: rng} })
}
