package mptcp

import (
	"math/rand"
	"time"

	"repro/internal/tcp"
)

// WeightedRTT picks among usable subflows at random with probability
// inversely proportional to each subflow's smoothed RTT — a probabilistic
// middle ground between lowest-rtt (which starves slow paths and never
// refreshes their RTT estimate) and round-robin (which ignores path
// quality entirely). Randomness comes exclusively from the simulation's
// seeded source, so runs remain deterministic per seed.
type WeightedRTT struct {
	rng *rand.Rand
	buf []*tcp.Subflow // per-connection candidate scratch (Pick is hot)
}

// NewWeightedRTT builds the scheduler around a deterministic source.
func NewWeightedRTT(rng *rand.Rand) *WeightedRTT { return &WeightedRTT{rng: rng} }

// Name implements Scheduler.
func (*WeightedRTT) Name() string { return "weighted-rtt" }

// minWeightRTT floors the SRTT used for weighting: a subflow with no RTT
// sample yet (SRTT 0) would otherwise get infinite weight and starve
// every measured path.
const minWeightRTT = time.Millisecond

// Pick implements Scheduler.
func (w *WeightedRTT) Pick(subflows []*tcp.Subflow, want int) *tcp.Subflow {
	pick := func(backup bool) *tcp.Subflow {
		candidates := w.buf[:0]
		total := 0.0
		for _, sf := range subflows {
			if usable(sf, backup, want) {
				candidates = append(candidates, sf)
				total += w.weight(sf)
			}
		}
		w.buf = candidates[:0]
		switch len(candidates) {
		case 0:
			return nil
		case 1:
			return candidates[0]
		}
		r := w.rng.Float64() * total
		for _, sf := range candidates {
			r -= w.weight(sf)
			if r < 0 {
				return sf
			}
		}
		return candidates[len(candidates)-1] // float round-off
	}
	if sf := pick(false); sf != nil {
		return sf
	}
	if !backupsAllowed(subflows) {
		return nil
	}
	return pick(true)
}

func (w *WeightedRTT) weight(sf *tcp.Subflow) float64 {
	rtt := sf.SRTT()
	if rtt < minWeightRTT {
		rtt = minWeightRTT
	}
	return 1 / rtt.Seconds()
}
