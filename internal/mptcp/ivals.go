// Package mptcp implements the Multipath TCP connection layer on top of
// internal/tcp subflows: data-level sequencing via DSS mappings, receiver
// reassembly across subflows, packet scheduling (lowest-RTT by default, as
// in the Linux kernel), reinjection of timed-out data onto other subflows,
// backup-flag semantics (MP_PRIO), address advertisement (ADD_ADDR /
// REMOVE_ADDR), and the in-kernel path-manager interface of the paper's
// Figure 1 that internal/pm (full-mesh, ndiffports) and internal/core (the
// Netlink path manager — the paper's contribution) plug into.
package mptcp

// ivalSet64 is a set of disjoint, sorted half-open intervals over a
// 64-bit relative sequence space (no wraparound: data streams here are far
// below 2^63 bytes). It backs both the receiver's reassembly state and the
// sender's reinjection queue.
type ivalSet64 struct {
	ivs []ival64
}

type ival64 struct{ lo, hi uint64 } // [lo, hi)

// add unions [lo,hi) into the set and reports whether any byte was new.
func (s *ivalSet64) add(lo, hi uint64) bool {
	if lo >= hi {
		return false
	}
	merged := ival64{lo, hi}
	isNew := true
	out := s.ivs[:0]
	var rest []ival64
	for _, iv := range s.ivs {
		switch {
		case iv.hi < merged.lo: // strictly before (not even adjacent)
			out = append(out, iv)
		case merged.hi < iv.lo: // strictly after
			rest = append(rest, iv)
		default: // overlap or adjacency: absorb
			if iv.lo <= merged.lo && merged.hi <= iv.hi {
				isNew = false
			}
			if iv.lo < merged.lo {
				merged.lo = iv.lo
			}
			if iv.hi > merged.hi {
				merged.hi = iv.hi
			}
		}
	}
	out = append(out, merged)
	out = append(out, rest...)
	s.ivs = out
	return isNew
}

// remove deletes [lo,hi) from the set.
func (s *ivalSet64) remove(lo, hi uint64) {
	if lo >= hi {
		return
	}
	var out []ival64
	for _, iv := range s.ivs {
		if iv.hi <= lo || hi <= iv.lo {
			out = append(out, iv)
			continue
		}
		if iv.lo < lo {
			out = append(out, ival64{iv.lo, lo})
		}
		if hi < iv.hi {
			out = append(out, ival64{hi, iv.hi})
		}
	}
	s.ivs = out
}

// first returns the lowest interval, if any.
func (s *ivalSet64) first() (ival64, bool) {
	if len(s.ivs) == 0 {
		return ival64{}, false
	}
	return s.ivs[0], true
}

// contains reports whether the full range [lo,hi) is in the set.
func (s *ivalSet64) contains(lo, hi uint64) bool {
	for _, iv := range s.ivs {
		if iv.lo <= lo && hi <= iv.hi {
			return true
		}
	}
	return false
}

// empty reports whether the set has no intervals.
func (s *ivalSet64) empty() bool { return len(s.ivs) == 0 }

// bytes sums the total length covered.
func (s *ivalSet64) bytes() uint64 {
	var n uint64
	for _, iv := range s.ivs {
		n += iv.hi - iv.lo
	}
	return n
}

// reassembly tracks the receiver's in-order frontier plus out-of-order
// islands in relative data-sequence space.
type reassembly struct {
	nxt uint64 // next expected relative data sequence number
	ooo ivalSet64
}

// receive folds [lo,hi) in; it reports whether the in-order frontier moved.
func (r *reassembly) receive(lo, hi uint64) bool {
	before := r.nxt
	if hi <= r.nxt {
		return false
	}
	if lo <= r.nxt {
		r.nxt = hi
	} else {
		r.ooo.add(lo, hi)
	}
	// Drain out-of-order islands that became contiguous.
	for {
		iv, ok := r.ooo.first()
		if !ok || iv.lo > r.nxt {
			break
		}
		if iv.hi > r.nxt {
			r.nxt = iv.hi
		}
		r.ooo.remove(iv.lo, iv.hi)
	}
	return r.nxt != before
}
