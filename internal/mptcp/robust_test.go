package mptcp

import (
	"testing"
	"time"

	"repro/internal/tcp"
)

// TestDataFINSurvivesSubflowDeath: the DATA_FIN is scheduled like any other
// mapping; if its carrier subflow dies, the close must still complete via
// reinjection on the surviving subflow.
func TestDataFINSurvivesSubflowDeath(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 40, p0, p1, Config{TCP: tcp.Config{MaxBackoffs: 3}})
	r.net.Sim.Run()
	r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	r.net.Sim.Run()
	r.client.Write(100_000)
	r.client.Close()
	// Cut path 0 while the close drains.
	r.net.Path[0].SetLoss(1.0)
	r.net.Sim.Run()
	if !r.peerFin {
		t.Fatal("DATA_FIN lost with its subflow")
	}
	if r.rcvTotal != 100_000 {
		t.Fatalf("received %d", r.rcvTotal)
	}
	if !r.client.Closed() || !r.server.Closed() {
		t.Fatal("close did not complete after subflow death")
	}
}

// TestLIACongestionAvoidanceCoupling verifies RFC 6356's core property at
// the controller level: in congestion avoidance, the combined increase of
// two equal-RTT coupled subflows per window of ACKs stays at roughly ONE
// MSS (a single TCP's aggressiveness), where two independent Renos gain
// two.
func TestLIACongestionAvoidanceCoupling(t *testing.T) {
	const mss = 1000
	g := newCoupledGroup(mss, 10)
	a := g.newCong(mss, 10).(*liaCong)
	b := g.newCong(mss, 10).(*liaCong)
	rtt := func() time.Duration { return 50 * time.Millisecond }
	a.srtt, b.srtt = rtt, rtt
	// Force congestion-avoidance at 30 kB windows.
	for _, lc := range []*liaCong{a, b} {
		lc.cwnd = 30 * mss
		lc.ssthresh = lc.cwnd / 2
	}
	before := a.Cwnd() + b.Cwnd()
	// One full window of ACKs on each subflow.
	for i := 0; i < 30; i++ {
		a.OnAck(mss, a.Cwnd())
		b.OnAck(mss, b.Cwnd())
	}
	growth := a.Cwnd() + b.Cwnd() - before
	// Two Renos would add ≈ 2*mss; coupling must keep it ≈ 1*mss.
	if growth > mss+mss/4 {
		t.Fatalf("coupled growth %dB per RTT, want ≈ %dB (one MSS)", growth, mss)
	}
	if growth < mss/4 {
		t.Fatalf("coupled growth %dB per RTT: starved", growth)
	}
	// Loss responses stay per-subflow.
	a.OnDupAckLoss(30 * mss)
	if a.Cwnd() != 15*mss {
		t.Fatalf("halving wrong: %d", a.Cwnd())
	}
	if b.Cwnd() < 30*mss {
		t.Fatalf("peer subflow punished for a's loss: %d", b.Cwnd())
	}
	a.OnRTO(15 * mss)
	if a.Cwnd() != mss {
		t.Fatalf("RTO collapse wrong: %d", a.Cwnd())
	}
}

// TestManyConnectionsOneEndpoint: a path manager serves every connection of
// the endpoint ("manage the connections established by several
// applications").
func TestManyConnectionsOneEndpoint(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 42, p0, p1, Config{})
	var accepted int
	r.sep.Listen(81, func(c *Connection) { accepted++ })
	r.sep.Listen(82, func(c *Connection) { accepted++ })
	for _, port := range []uint16{81, 82, 81, 82, 81} {
		if _, err := r.cep.Connect(r.net.ClientAddrs[0], r.net.ServerAddr, port, ConnCallbacks{}); err != nil {
			t.Fatal(err)
		}
	}
	r.net.Sim.Run()
	if accepted != 5 {
		t.Fatalf("accepted %d, want 5", accepted)
	}
	// +1 for the rig's own connection on :80.
	if got := len(r.cep.Conns()); got != 6 {
		t.Fatalf("client endpoint tracks %d conns", got)
	}
	if r.cpm.created != 6 || r.cpm.estab != 6 {
		t.Fatalf("PM events: created=%d estab=%d", r.cpm.created, r.cpm.estab)
	}
}

// TestDuplicateJoinTupleRejected: opening the same 4-tuple twice must fail
// cleanly instead of corrupting the demux table.
func TestDuplicateJoinTupleRejected(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 43, p0, p1, Config{})
	r.net.Sim.Run()
	sf, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 45000, r.net.ServerAddr, 80, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 45000, r.net.ServerAddr, 80, false); err == nil {
		t.Fatal("duplicate tuple accepted")
	}
	r.net.Sim.Run()
	if !sf.Established() {
		t.Fatal("original subflow harmed by the duplicate attempt")
	}
}

// TestJoinBeforeEstablishRejected: OpenSubflow before the MP_CAPABLE
// handshake completes must fail (no keys to authenticate the join yet).
func TestJoinBeforeEstablishRejected(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 44, p0, p1, Config{})
	// No Run(): the connection is still in SYN_SENT.
	if _, err := r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false); err == nil {
		t.Fatal("join accepted before establishment")
	}
}

// TestReinjectionHeadOnlyOnTimeout: an RTO reinjects only the head-of-line
// mapping, not the whole queue — the §4.3 pathology depends on it.
func TestReinjectionHeadOnlyOnTimeout(t *testing.T) {
	p0, p1 := fastPaths()
	r := newRig(t, 45, p0, p1, Config{TCP: tcp.Config{MSS: 1000}})
	r.net.Sim.Run()
	r.client.OpenSubflow(r.net.ClientAddrs[1], 0, r.net.ServerAddr, 80, false)
	r.net.Sim.Run()
	r.client.Write(1 << 20)
	r.net.Sim.RunFor(20 * time.Millisecond)
	r.net.Path[0].SetLoss(1.0) // black-hole the primary mid-transfer
	r.net.Sim.RunFor(2 * time.Second)
	// Only ~1 chunk per RTO expiry may have been reinjected while the
	// subflow lives (death reinjets wholesale, but MaxBackoffs=15 default
	// keeps it alive here).
	re := r.client.Stats().BytesReinjected
	timeouts := uint64(r.cpm.timeouts)
	if re == 0 {
		t.Fatal("no reinjection at all")
	}
	if re > (timeouts+2)*1000 {
		t.Fatalf("reinjected %d bytes over %d timeouts: more than head-only", re, timeouts)
	}
}
