package mptcp

import (
	"time"

	"repro/internal/tcp"
)

// coupledGroup implements RFC 6356 LIA (Linked Increases Algorithm) coupled
// congestion control across the subflows of one connection. Slow start and
// loss responses stay per-subflow Reno; only the congestion-avoidance
// increase is coupled through the alpha factor, which caps the aggregate
// aggressiveness at that of a single TCP flow on the best path.
type coupledGroup struct {
	mss     int
	iw      int
	members []*liaCong
}

func newCoupledGroup(mss, initialWindowSegs int) *coupledGroup {
	if initialWindowSegs <= 0 {
		initialWindowSegs = 10
	}
	return &coupledGroup{mss: mss, iw: initialWindowSegs}
}

// newCong is installed as tcp.Config.NewCong for the connection's subflows.
func (g *coupledGroup) newCong(mss, iw int) tcp.Cong {
	lc := &liaCong{
		group:    g,
		mss:      mss,
		cwnd:     mss * iw,
		ssthresh: 1 << 30,
	}
	g.members = append(g.members, lc)
	return lc
}

// bind attaches the subflow whose RTT the newest member should read.
// (Congestion controllers are constructed inside tcp.NewSubflow, before the
// subflow pointer exists, so the backref is wired here.)
func (g *coupledGroup) bind(sf *tcp.Subflow) {
	for _, m := range g.members {
		if m.srtt == nil {
			m.srtt = sf.SRTT
			m.sf = sf
			return
		}
	}
}

// unbind drops a dead subflow's controller from the group.
func (g *coupledGroup) unbind(sf *tcp.Subflow) {
	for i, m := range g.members {
		if m.sf == sf {
			g.members = append(g.members[:i], g.members[i+1:]...)
			return
		}
	}
}

// alpha computes the LIA aggressiveness factor:
//
//	alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2
//
// using only members with an RTT estimate.
func (g *coupledGroup) alpha() (alpha float64, totalCwnd int) {
	var maxTerm, sumTerm float64
	for _, m := range g.members {
		totalCwnd += m.cwnd
		if m.srtt == nil {
			continue
		}
		rtt := m.srtt().Seconds()
		if rtt <= 0 {
			rtt = 0.001
		}
		t := float64(m.cwnd) / (rtt * rtt)
		if t > maxTerm {
			maxTerm = t
		}
		sumTerm += float64(m.cwnd) / rtt
	}
	if sumTerm == 0 {
		return 1, totalCwnd
	}
	return float64(totalCwnd) * maxTerm / (sumTerm * sumTerm), totalCwnd
}

// liaCong is one subflow's view of the coupled controller.
type liaCong struct {
	group    *coupledGroup
	sf       *tcp.Subflow
	srtt     func() time.Duration
	mss      int
	cwnd     int
	ssthresh int
	frac     float64 // fractional cwnd growth accumulator
}

// Cwnd implements tcp.Cong.
func (l *liaCong) Cwnd() int { return l.cwnd }

// SSThresh implements tcp.Cong.
func (l *liaCong) SSThresh() int { return l.ssthresh }

// InSlowStart implements tcp.Cong.
func (l *liaCong) InSlowStart() bool { return l.cwnd < l.ssthresh }

// OnAck implements tcp.Cong.
func (l *liaCong) OnAck(acked, flight int) {
	if acked <= 0 {
		return
	}
	if l.InSlowStart() {
		l.cwnd += acked
		if l.cwnd > l.ssthresh {
			l.cwnd = l.ssthresh
		}
		return
	}
	alpha, totalCwnd := l.group.alpha()
	if totalCwnd <= 0 {
		totalCwnd = l.cwnd
	}
	// RFC 6356: increase per ack is
	// min(alpha * acked * mss / cwnd_total, acked * mss / cwnd_i).
	coupledInc := alpha * float64(acked) * float64(l.mss) / float64(totalCwnd)
	renoInc := float64(acked) * float64(l.mss) / float64(l.cwnd)
	inc := coupledInc
	if renoInc < inc {
		inc = renoInc
	}
	l.frac += inc
	if l.frac >= 1 {
		whole := int(l.frac)
		l.cwnd += whole
		l.frac -= float64(whole)
	}
}

// OnDupAckLoss implements tcp.Cong.
func (l *liaCong) OnDupAckLoss(flight int) {
	l.ssthresh = maxInt(flight/2, 2*l.mss)
	l.cwnd = l.ssthresh
	l.frac = 0
}

// OnRTO implements tcp.Cong.
func (l *liaCong) OnRTO(flight int) {
	l.ssthresh = maxInt(flight/2, 2*l.mss)
	l.cwnd = l.mss
	l.frac = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
