package controller

import (
	"net/netip"

	"repro/internal/core"
	"repro/internal/nlmsg"
	"repro/internal/seg"
)

// NDiffPorts is the §4.5 controller: a userspace clone of the kernel
// ndiffports path manager. It creates N-1 extra subflows over the initial
// address pair as soon as the connection is established. The paper uses it
// to measure the cost of moving the control plane to userspace: the delay
// between the SYN carrying MP_CAPABLE and the SYN carrying MP_JOIN grows
// by ≈23 µs on average compared to the in-kernel manager (Fig. 3).
type NDiffPorts struct {
	// N is the total subflow count per connection.
	N int

	lib   core.Lib
	conns map[uint32]*ndpState
	Stats NDiffPortsStats
}

// NDiffPortsStats counts controller activity.
type NDiffPortsStats struct {
	SubflowsRequested uint64
}

type ndpState struct {
	local  netip.Addr
	remote netip.AddrPort
}

// NewNDiffPorts builds the controller.
func NewNDiffPorts(n int) *NDiffPorts {
	return &NDiffPorts{N: n, conns: make(map[uint32]*ndpState)}
}

// Name implements Controller.
func (p *NDiffPorts) Name() string { return "user-ndiffports" }

// Attach implements Controller. It needs only two events.
func (p *NDiffPorts) Attach(lib core.Lib) {
	p.lib = lib
	lib.Register(core.Callbacks{
		Created:     p.onCreated,
		Established: p.onEstablished,
		Closed:      p.onClosed,
	}, nil)
}

// Detach implements Controller: ndiffports acts only on establishment, so
// dropping connection state is enough.
func (p *NDiffPorts) Detach() {
	p.conns = make(map[uint32]*ndpState)
}

func (p *NDiffPorts) onCreated(ev *nlmsg.Event) {
	p.conns[ev.Token] = &ndpState{
		local:  ev.Tuple.SrcIP,
		remote: netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort),
	}
}

func (p *NDiffPorts) onEstablished(ev *nlmsg.Event) {
	st := p.conns[ev.Token]
	if st == nil {
		return
	}
	for i := 1; i < p.N; i++ {
		p.Stats.SubflowsRequested++
		p.lib.CreateSubflow(ev.Token, seg.FourTuple{
			SrcIP: st.local, SrcPort: 0,
			DstIP: st.remote.Addr(), DstPort: st.remote.Port(),
		}, false, nil)
	}
}

func (p *NDiffPorts) onClosed(ev *nlmsg.Event) { delete(p.conns, ev.Token) }
