package controller

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ecmpRig builds the §4.4 fabric (4 × 8 Mbps paths, 10/20/30/40 ms) with
// the refresh controller on the client.
func ecmpRig(t *testing.T, seed int64, hashSeed uint64, ctl Controller) (*topo.ECMP, *mptcp.Endpoint, *mptcp.Endpoint) {
	t.Helper()
	paths := []netem.LinkConfig{
		{RateBps: 8e6, Delay: 10 * time.Millisecond},
		{RateBps: 8e6, Delay: 20 * time.Millisecond},
		{RateBps: 8e6, Delay: 30 * time.Millisecond},
		{RateBps: 8e6, Delay: 40 * time.Millisecond},
	}
	n := topo.NewECMP(sim.New(seed), paths, hashSeed)
	tr := core.NewSimTransport(n.Sim)
	pm := core.NewNetlinkPM(n.Sim, tr)
	lib := core.NewLibrary(tr, core.SimClock{S: n.Sim}, 1)
	ctl.Attach(lib)
	cep := mptcp.NewEndpoint(n.Client, mptcp.Config{}, pm)
	sep := mptcp.NewEndpoint(n.Server, mptcp.Config{}, nil)
	n.Sim.RunFor(time.Millisecond)
	return n, cep, sep
}

// pathsCovered counts how many distinct ECMP paths the connection's live
// subflows currently hash onto.
func pathsCovered(n *topo.ECMP, c *mptcp.Connection) int {
	seen := map[int]bool{}
	for _, sf := range c.Subflows() {
		if sf.Established() {
			tp := sf.Tuple()
			seen[n.PathIndexOf(tp.SrcPort, tp.DstPort)] = true
		}
	}
	return len(seen)
}

func TestRefreshConvergesToAllPaths(t *testing.T) {
	// Try several hash seeds; in each, the refresh controller must reach
	// full 4-path coverage well before a 100 MB transfer would finish,
	// even when the initial 5 random ports collide.
	for _, hashSeed := range []uint64{1, 2, 3} {
		ctl := NewRefresh(5)
		n, cep, sep := ecmpRig(t, int64(hashSeed)*100, hashSeed, ctl)
		sink := app.NewSink(n.Sim, 100<<20, nil)
		var server *mptcp.Connection
		sep.Listen(80, func(c *mptcp.Connection) {
			server = c
			c.SetCallbacks(sink.Callbacks())
		})
		src := app.NewSource(n.Sim, 100<<20, false)
		client, err := cep.Connect(n.ClientAddr, n.ServerAddr, 80, src.Callbacks())
		if err != nil {
			t.Fatal(err)
		}
		_ = server
		// Track the best coverage reached over the run: the paper claims
		// the controller "tends to use the 4 available paths", not that
		// coverage is ever-monotone (a refresh can transiently collide).
		best := 0
		for n.Sim.Now() < 60*sim.Second {
			n.Sim.RunFor(time.Second)
			if got := pathsCovered(n, client); got > best {
				best = got
			}
		}
		if best < 4 {
			t.Fatalf("seed %d: refresh peaked at %d/4 paths in 60s (refreshes=%d)",
				hashSeed, best, ctl.Stats.Refreshes)
		}
		if len(client.Subflows()) != 5 {
			t.Fatalf("seed %d: fleet size = %d, want 5", hashSeed, len(client.Subflows()))
		}
	}
}

func TestRefreshReplacesSlowestOnly(t *testing.T) {
	ctl := NewRefresh(5)
	n, cep, sep := ecmpRig(t, 42, 7, ctl)
	sink := app.NewSink(n.Sim, 100<<20, nil)
	sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := app.NewSource(n.Sim, 100<<20, false)
	client, _ := cep.Connect(n.ClientAddr, n.ServerAddr, 80, src.Callbacks())
	n.Sim.RunUntil(10 * sim.Second)
	// After a couple of polls the controller has replaced at most a few
	// subflows — it never tears the whole fleet down at once.
	if ctl.Stats.Polls < 2 {
		t.Fatalf("polls = %d", ctl.Stats.Polls)
	}
	if ctl.Stats.Refreshes > ctl.Stats.Polls {
		t.Fatalf("refreshes %d > polls %d: replacing more than one per poll",
			ctl.Stats.Refreshes, ctl.Stats.Polls)
	}
	if len(client.Subflows()) < 4 {
		t.Fatalf("fleet shrank to %d", len(client.Subflows()))
	}
}
