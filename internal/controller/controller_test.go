package controller

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// ctlRig is a two-path world where the client endpoint runs the Netlink PM
// with the given controller attached over a simulated transport.
type ctlRig struct {
	net    *topo.TwoPath
	lib    *core.Library
	cep    *mptcp.Endpoint
	sep    *mptcp.Endpoint
	client *mptcp.Connection
	server *mptcp.Connection
}

func newCtlRig(t *testing.T, seed int64, p0, p1 netem.LinkConfig, ctl Controller, tcpCfg tcp.Config) *ctlRig {
	t.Helper()
	r := &ctlRig{}
	r.net = topo.NewTwoPath(sim.New(seed), p0, p1)
	tr := core.NewSimTransport(r.net.Sim)
	pm := core.NewNetlinkPM(r.net.Sim, tr)
	r.lib = core.NewLibrary(tr, core.SimClock{S: r.net.Sim}, 1)
	ctl.Attach(r.lib)
	r.cep = mptcp.NewEndpoint(r.net.Client, mptcp.Config{TCP: tcpCfg}, pm)
	r.sep = mptcp.NewEndpoint(r.net.Server, mptcp.Config{TCP: tcpCfg}, nil)
	// Let the subscription cross the transport before any connection.
	r.net.Sim.RunFor(time.Millisecond)
	return r
}

func (r *ctlRig) listen(accept func(*mptcp.Connection)) {
	r.sep.Listen(80, func(c *mptcp.Connection) {
		r.server = c
		if accept != nil {
			accept(c)
		}
	})
}

func (r *ctlRig) connect(t *testing.T, cb mptcp.ConnCallbacks) {
	t.Helper()
	var err error
	r.client, err = r.cep.Connect(r.net.ClientAddrs[0], r.net.ServerAddr, 80, cb)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserFullMeshBuildsMesh(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	ctl := NewFullMesh(netip2(topo.ClientAddr1, topo.ClientAddr2))
	r := newCtlRig(t, 1, p, p, ctl, tcp.Config{})
	r.listen(nil)
	r.connect(t, mptcp.ConnCallbacks{})
	r.net.Sim.Run()
	if got := len(r.client.Subflows()); got != 2 {
		t.Fatalf("mesh = %d subflows, want 2", got)
	}
	if ctl.Stats.SubflowsCreated != 1 {
		t.Fatalf("controller created %d subflows, want exactly 1 (initial excluded)", ctl.Stats.SubflowsCreated)
	}
}

func TestUserFullMeshReestablishesAfterRST(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	ctl := NewFullMesh(netip2(topo.ClientAddr1, topo.ClientAddr2))
	r := newCtlRig(t, 2, p, p, ctl, tcp.Config{})
	r.listen(nil)
	r.connect(t, mptcp.ConnCallbacks{})
	r.net.Sim.Run()
	// A middlebox-style RST kills one subflow from the server side.
	victim := r.server.Subflows()[1]
	r.server.CloseSubflow(victim, true)
	r.net.Sim.RunFor(200 * time.Millisecond)
	if len(r.client.Subflows()) != 1 {
		t.Fatalf("subflows right after RST = %d, want 1", len(r.client.Subflows()))
	}
	// After RetryAfterRST (1s) the controller re-establishes it.
	r.net.Sim.RunFor(2 * time.Second)
	if len(r.client.Subflows()) != 2 {
		t.Fatalf("subflows after retry window = %d, want 2", len(r.client.Subflows()))
	}
	if ctl.Stats.Reestablishments != 1 {
		t.Fatalf("reestablishments = %d", ctl.Stats.Reestablishments)
	}
	if ctl.Stats.RetriesByErrno[104] != 1 { // ECONNRESET
		t.Fatalf("retries by errno = %v", ctl.Stats.RetriesByErrno)
	}
}

func TestUserFullMeshInterfaceFlap(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 10 * time.Millisecond}
	ctl := NewFullMesh(netip2(topo.ClientAddr1, topo.ClientAddr2))
	r := newCtlRig(t, 3, p, p, ctl, tcp.Config{})
	r.listen(nil)
	r.connect(t, mptcp.ConnCallbacks{})
	r.net.Sim.Run()
	r.net.Client.SetIfaceUp(r.net.ClientAddrs[1], false)
	r.net.Sim.RunFor(500 * time.Millisecond)
	if len(r.client.Subflows()) != 1 {
		t.Fatalf("subflows after if-down = %d, want 1", len(r.client.Subflows()))
	}
	if ctl.Stats.SubflowsDismissed != 1 {
		t.Fatalf("dismissed = %d", ctl.Stats.SubflowsDismissed)
	}
	r.net.Client.SetIfaceUp(r.net.ClientAddrs[1], true)
	r.net.Sim.RunFor(500 * time.Millisecond)
	if len(r.client.Subflows()) != 2 {
		t.Fatalf("subflows after if-up = %d, want 2", len(r.client.Subflows()))
	}
}

func TestBackupSwitchesOnRTOThreshold(t *testing.T) {
	// The Fig. 2a scenario: transfer starts on the primary; after 1s the
	// primary's loss jumps to 30%; the controller must close it once the
	// RTO exceeds 1s and continue on the backup path.
	p0 := netem.LinkConfig{RateBps: 8e6, Delay: 15 * time.Millisecond}
	p1 := netem.LinkConfig{RateBps: 8e6, Delay: 15 * time.Millisecond}
	ctl := NewBackup(topo.ClientAddr2)
	r := newCtlRig(t, 4, p0, p1, ctl, tcp.Config{})
	sink := app.NewSink(r.net.Sim, 10<<20, nil)
	r.listen(func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := app.NewSource(r.net.Sim, 10<<20, false)
	r.connect(t, src.Callbacks())
	r.net.Sim.Schedule(sim.Second, "loss-up", func() { r.net.Path[0].SetLoss(0.30) })
	r.net.Sim.RunUntil(60 * sim.Second)

	if ctl.Stats.Switches != 1 {
		t.Fatalf("switches = %d, want 1", ctl.Stats.Switches)
	}
	// Only the backup-path subflow remains, and the transfer completed.
	if len(r.client.Subflows()) != 1 {
		t.Fatalf("subflows = %d", len(r.client.Subflows()))
	}
	if got := r.client.Subflows()[0].Tuple().SrcIP; got != topo.ClientAddr2 {
		t.Fatalf("surviving subflow on %v, want backup addr", got)
	}
	if !sink.Done {
		t.Fatalf("transfer incomplete: %d bytes", sink.Received)
	}
	// The kernel alone would need ~12 minutes; the controller must act
	// within seconds of the loss starting.
	if sink.CompletedAt > 60*sim.Second {
		t.Fatalf("completion at %v", sink.CompletedAt)
	}
}

func TestBackupHandlesOutrightDeath(t *testing.T) {
	p := netem.LinkConfig{RateBps: 8e6, Delay: 15 * time.Millisecond}
	ctl := NewBackup(topo.ClientAddr2)
	r := newCtlRig(t, 5, p, p, ctl, tcp.Config{MaxBackoffs: 2})
	sink := app.NewSink(r.net.Sim, 1<<20, nil)
	r.listen(func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	src := app.NewSource(r.net.Sim, 1<<20, false)
	r.connect(t, src.Callbacks())
	r.net.Sim.RunFor(100 * time.Millisecond)
	r.net.Path[0].SetUp(false) // hard interface cut, primary dies fast
	r.net.Sim.RunUntil(30 * sim.Second)
	if ctl.Stats.Switches != 1 {
		t.Fatalf("switches = %d", ctl.Stats.Switches)
	}
	if !sink.Done {
		t.Fatalf("transfer incomplete after failover: %d", sink.Received)
	}
}

func TestStreamOpensSecondSubflowUnderLoss(t *testing.T) {
	// §4.3: 2×5 Mbps paths, 64 KB block per second, 30% loss on the
	// initial path. The smart-stream controller must detect the stalled
	// block at the 500 ms probe and open the second subflow.
	p := netem.LinkConfig{RateBps: 5e6, Delay: 10 * time.Millisecond}
	ctl := NewStream(topo.ClientAddr2)
	r := newCtlRig(t, 6, p, p, ctl, tcp.Config{})
	bsink := app.NewBlockSink(r.net.Sim, 64<<10)
	r.listen(func(c *mptcp.Connection) { c.SetCallbacks(bsink.Callbacks()) })
	streamer := app.NewBlockStreamer(r.net.Sim, time.Second, 64<<10, 30)
	r.connect(t, streamer.Callbacks())
	r.net.Sim.Schedule(sim.Second, "loss-up", func() { r.net.Path[0].SetLoss(0.30) })
	r.net.Sim.RunUntil(40 * sim.Second)

	if ctl.Stats.SecondOpened == 0 {
		t.Fatal("controller never opened the second subflow")
	}
	if len(bsink.CompletedAt) < 28 {
		t.Fatalf("only %d/30 blocks delivered", len(bsink.CompletedAt))
	}
	// Late blocks (after adaptation) must be delivered promptly: check
	// the 90th-percentile-ish delay of the second half.
	half := bsink.CompletedAt[15:]
	bad := 0
	for k, at := range half {
		sent := streamer.StartedAt.Add(time.Duration(k+15) * time.Second)
		if time.Duration(at-sent) > 2*time.Second {
			bad++
		}
	}
	if bad > len(half)/4 {
		t.Fatalf("%d/%d post-adaptation blocks exceeded 2s", bad, len(half))
	}
}

func TestStreamStaysQuietOnCleanPath(t *testing.T) {
	// "if the initial subflow is fast enough to support the stream no
	// additional subflow is established."
	p := netem.LinkConfig{RateBps: 5e6, Delay: 10 * time.Millisecond}
	ctl := NewStream(topo.ClientAddr2)
	r := newCtlRig(t, 7, p, p, ctl, tcp.Config{})
	bsink := app.NewBlockSink(r.net.Sim, 64<<10)
	r.listen(func(c *mptcp.Connection) { c.SetCallbacks(bsink.Callbacks()) })
	streamer := app.NewBlockStreamer(r.net.Sim, time.Second, 64<<10, 10)
	r.connect(t, streamer.Callbacks())
	r.net.Sim.RunUntil(15 * sim.Second)
	if ctl.Stats.SecondOpened != 0 {
		t.Fatal("controller opened a second subflow on a clean path")
	}
	if len(r.client.Subflows()) != 1 {
		t.Fatalf("subflows = %d", len(r.client.Subflows()))
	}
	if len(bsink.CompletedAt) != 10 {
		t.Fatalf("blocks = %d", len(bsink.CompletedAt))
	}
}

func TestNDiffPortsUserCreatesSubflows(t *testing.T) {
	p := netem.LinkConfig{RateBps: 50e6, Delay: 5 * time.Millisecond}
	ctl := NewNDiffPorts(3)
	r := newCtlRig(t, 8, p, p, ctl, tcp.Config{})
	r.listen(nil)
	r.connect(t, mptcp.ConnCallbacks{})
	r.net.Sim.Run()
	if got := len(r.client.Subflows()); got != 3 {
		t.Fatalf("subflows = %d, want 3", got)
	}
	// All joins left after the initial SYN; the gap is RTT plus the
	// netlink round trip — microseconds of extra delay, not milliseconds.
	var initial, join *tcp.Subflow
	for _, sf := range r.client.Subflows() {
		if sf.Tuple() == r.client.InitialTuple() {
			initial = sf
		} else if join == nil {
			join = sf
		}
	}
	gap := time.Duration(join.SynSentAt() - initial.SynSentAt())
	rtt := 10 * time.Millisecond
	if gap < rtt {
		t.Fatalf("join before handshake completed: gap=%v", gap)
	}
	if gap > rtt+time.Millisecond {
		t.Fatalf("netlink overhead too large: gap=%v", gap)
	}
}

// netip2 builds the local-address slice (keeps call sites short).
func netip2(a, b netip.Addr) []netip.Addr { return []netip.Addr{a, b} }
