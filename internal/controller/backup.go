package controller

import (
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/nlmsg"
	"repro/internal/seg"
)

// Backup is the §4.2 controller: smarter backup subflows for mobile hosts.
//
// The RFC 6824 backup flag only helps once the primary subflow *fails*,
// which with a flaky-but-not-dead radio takes the kernel 15 RTO doublings
// (≈12 minutes) to declare. This controller instead:
//
//   - does NOT pre-establish the backup subflow (Multipath TCP supports
//     break-before-make), saving energy and radio resources on the backup
//     interface;
//   - listens to timeout events; when the reported (backed-off) RTO of the
//     primary exceeds Threshold, it declares the subflow underperforming,
//     removes it, and creates a subflow over the backup interface to
//     continue the transfer.
type Backup struct {
	// Threshold is the RTO value above which the primary is considered
	// dead (the paper uses 1 s; Fig. 2a shows the switch at that point).
	Threshold time.Duration
	// BackupAddr is the local address of the backup interface.
	BackupAddr netip.Addr

	lib   core.Lib
	conns map[uint32]*backupState
	Stats BackupStats
}

// BackupStats counts controller activity.
type BackupStats struct {
	Switches uint64 // primary→backup switchovers
}

type backupState struct {
	primary  seg.FourTuple
	remote   netip.AddrPort
	switched bool
}

// NewBackup builds the controller with the paper's 1-second threshold.
func NewBackup(backupAddr netip.Addr) *Backup {
	return &Backup{
		Threshold:  time.Second,
		BackupAddr: backupAddr,
		conns:      make(map[uint32]*backupState),
	}
}

// Name implements Controller.
func (b *Backup) Name() string { return "smart-backup" }

// Attach implements Controller. It subscribes only to what it needs:
// connection lifecycle, timeout events, and subflow closures.
func (b *Backup) Attach(lib core.Lib) {
	b.lib = lib
	lib.Register(core.Callbacks{
		Created:   b.onCreated,
		Closed:    b.onClosed,
		Timeout:   b.onTimeout,
		SubClosed: b.onSubClosed,
	}, nil)
}

// Detach implements Controller: the backup policy keeps no timers, so
// dropping connection state is enough.
func (b *Backup) Detach() {
	b.conns = make(map[uint32]*backupState)
}

func (b *Backup) onCreated(ev *nlmsg.Event) {
	b.conns[ev.Token] = &backupState{
		primary: ev.Tuple,
		remote:  netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort),
	}
}

func (b *Backup) onClosed(ev *nlmsg.Event) { delete(b.conns, ev.Token) }

// onTimeout implements the paper's policy: "When a retransmission timer
// expires, it checks the current value of the timer. If the timer becomes
// larger than a configured threshold, the subflow is considered to be
// underperforming. The controller then closes the underperforming subflow
// and creates a subflow over the backup interface."
func (b *Backup) onTimeout(ev *nlmsg.Event) {
	st := b.conns[ev.Token]
	if st == nil || st.switched || ev.RTO <= b.Threshold {
		return
	}
	if ev.Tuple.SrcIP == b.BackupAddr {
		return // the backup itself is struggling; nothing better to do
	}
	st.switched = true
	b.Stats.Switches++
	b.lib.RemoveSubflow(ev.Token, ev.Tuple, nil)
	b.lib.CreateSubflow(ev.Token, seg.FourTuple{
		SrcIP: b.BackupAddr, SrcPort: 0,
		DstIP: st.remote.Addr(), DstPort: st.remote.Port(),
	}, false, nil)
}

// onSubClosed covers the primary dying outright (RST, kernel gave up)
// before any timeout crossed the threshold.
func (b *Backup) onSubClosed(ev *nlmsg.Event) {
	st := b.conns[ev.Token]
	if st == nil || st.switched || ev.Tuple.SrcIP == b.BackupAddr {
		return
	}
	st.switched = true
	b.Stats.Switches++
	b.lib.CreateSubflow(ev.Token, seg.FourTuple{
		SrcIP: b.BackupAddr, SrcPort: 0,
		DstIP: st.remote.Addr(), DstPort: st.remote.Port(),
	}, false, nil)
}
