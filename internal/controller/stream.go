package controller

import (
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/nlmsg"
	"repro/internal/seg"
)

// Stream is the §4.3 controller: it supports an application that writes
// one fixed-size block per period and expects each block delivered within
// the period.
//
// Policy (verbatim from the paper): 500 ms after each block start it
// extracts snd_una from the kernel and measures transfer progress; if
// fewer than half the block's bytes have been acknowledged it considers
// the current subflow underperforming and opens a subflow on the other
// interface. Independently, any subflow whose RTO exceeds RTOLimit is
// closed immediately — this is what removes the long-tail blocking the
// default stack suffers (Fig. 2b).
type Stream struct {
	// Period is the block cadence (1 s in the paper).
	Period time.Duration
	// BlockSize is the bytes per block (64 KB in the paper).
	BlockSize uint64
	// CheckAfter is the intra-block probe point (500 ms in the paper).
	CheckAfter time.Duration
	// MinProgress is the snd_una progress required at the probe point
	// (32 KB in the paper).
	MinProgress uint64
	// RTOLimit closes any subflow whose backed-off RTO exceeds it (1 s).
	RTOLimit time.Duration
	// SecondAddr is the local address of the other interface.
	SecondAddr netip.Addr

	lib   core.Lib
	conns map[uint32]*streamState
	Stats StreamStats
}

// StreamStats counts controller activity.
type StreamStats struct {
	Probes         uint64
	SecondOpened   uint64
	SubflowsKilled uint64
}

type streamState struct {
	remote    netip.AddrPort
	startAt   time.Duration // establishment time on the controller clock
	opened    bool          // second subflow requested
	nSubflows int
	stopProbe func()
	closed    bool
}

// NewStream builds the controller with the paper's parameters for a 64 KB
// block per second.
func NewStream(secondAddr netip.Addr) *Stream {
	return &Stream{
		Period:      time.Second,
		BlockSize:   64 << 10,
		CheckAfter:  500 * time.Millisecond,
		MinProgress: 32 << 10,
		RTOLimit:    time.Second,
		SecondAddr:  secondAddr,
		conns:       make(map[uint32]*streamState),
	}
}

// Name implements Controller.
func (s *Stream) Name() string { return "smart-stream" }

// Attach implements Controller.
func (s *Stream) Attach(lib core.Lib) {
	s.lib = lib
	lib.Register(core.Callbacks{
		Created:        s.onCreated,
		Established:    s.onEstablished,
		Closed:         s.onClosed,
		SubEstablished: s.onSubEstablished,
		SubClosed:      s.onSubClosed,
		Timeout:        s.onTimeout,
	}, nil)
}

// Detach implements Controller: stop every armed probe and forget all
// connections. In-flight GetInfo replies see closed state and do nothing.
func (s *Stream) Detach() {
	for _, st := range s.conns {
		st.closed = true
		if st.stopProbe != nil {
			st.stopProbe()
		}
	}
	s.conns = make(map[uint32]*streamState)
}

func (s *Stream) onCreated(ev *nlmsg.Event) {
	s.conns[ev.Token] = &streamState{
		remote: netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort),
	}
}

func (s *Stream) onEstablished(ev *nlmsg.Event) {
	st := s.conns[ev.Token]
	if st == nil {
		return
	}
	st.startAt = s.lib.Clock().Now()
	s.scheduleProbe(ev.Token, st, 0)
}

func (s *Stream) onClosed(ev *nlmsg.Event) {
	if st := s.conns[ev.Token]; st != nil {
		st.closed = true
		if st.stopProbe != nil {
			st.stopProbe()
		}
	}
	delete(s.conns, ev.Token)
}

func (s *Stream) onSubEstablished(ev *nlmsg.Event) {
	if st := s.conns[ev.Token]; st != nil {
		st.nSubflows++
	}
}

func (s *Stream) onSubClosed(ev *nlmsg.Event) {
	if st := s.conns[ev.Token]; st != nil {
		st.nSubflows--
	}
}

// scheduleProbe arms the probe for block k at startAt + k*Period +
// CheckAfter.
func (s *Stream) scheduleProbe(token uint32, st *streamState, block uint64) {
	due := st.startAt + time.Duration(block)*s.Period + s.CheckAfter
	delay := due - s.lib.Clock().Now()
	if delay < 0 {
		delay = 0
	}
	st.stopProbe = s.lib.After(delay, func() { s.probe(token, st, block) })
}

// probe implements the mid-block check: expected base is block*BlockSize
// because the application writes one block per period.
func (s *Stream) probe(token uint32, st *streamState, block uint64) {
	if st.closed {
		return
	}
	s.Stats.Probes++
	s.lib.GetInfo(token, func(info *nlmsg.ConnInfo) {
		if info == nil || st.closed {
			return
		}
		base := block * s.BlockSize
		// The app writes one block per period; progress can only be
		// expected for bytes it actually wrote. If the stream paused or
		// ended there is nothing to monitor this period.
		var written uint64
		if info.AppNxt > base {
			written = info.AppNxt - base
		}
		required := s.MinProgress
		if written < required {
			required = written
		}
		var progress uint64
		if info.SndUna > base {
			progress = info.SndUna - base
		}
		if written > 0 && progress < required && !st.opened {
			st.opened = true
			s.Stats.SecondOpened++
			s.lib.CreateSubflow(token, seg.FourTuple{
				SrcIP: s.SecondAddr, SrcPort: 0,
				DstIP: st.remote.Addr(), DstPort: st.remote.Port(),
			}, false, nil)
		}
		s.scheduleProbe(token, st, block+1)
	})
}

// onTimeout closes any subflow whose RTO grew past the limit, provided the
// connection keeps at least one other subflow (or we have already asked
// for one).
func (s *Stream) onTimeout(ev *nlmsg.Event) {
	st := s.conns[ev.Token]
	if st == nil || st.closed || ev.RTO <= s.RTOLimit {
		return
	}
	if st.nSubflows <= 1 && !st.opened {
		// Killing the only subflow would strand the connection; open the
		// second one instead — the kill will happen on the next timeout.
		st.opened = true
		s.Stats.SecondOpened++
		s.lib.CreateSubflow(ev.Token, seg.FourTuple{
			SrcIP: s.SecondAddr, SrcPort: 0,
			DstIP: st.remote.Addr(), DstPort: st.remote.Port(),
		}, false, nil)
		return
	}
	if st.nSubflows > 1 {
		s.Stats.SubflowsKilled++
		s.lib.RemoveSubflow(ev.Token, ev.Tuple, nil)
	}
}
