// Package controller implements the paper's sample subflow controllers
// (§4) — userspace policies written against the PM library (core.Library),
// never touching Netlink bytes or kernel state directly:
//
//   - FullMesh (§4.1): a userspace reimplementation of the kernel
//     full-mesh path manager, extended with error-aware re-establishment of
//     failed subflows for long-lived connections behind NATs/firewalls
//     (≈800 LoC of C in the paper);
//   - Backup (§4.2): break-before-make backup handling — the backup
//     subflow is created only when the primary's retransmission timer
//     exceeds a threshold;
//   - Stream (§4.3): block-streaming support — probes transfer progress
//     mid-block via snd_una and opens/kills subflows to keep block
//     latency bounded;
//   - Refresh (§4.4): ECMP exploitation — opens n subflows on random
//     source ports and periodically replaces the one with the lowest
//     pacing_rate (230 LoC of C in the paper);
//   - NDiffPorts (§4.5): a userspace clone of the kernel ndiffports
//     manager, used to measure the Netlink crossing cost of Fig. 3.
package controller

import (
	"repro/internal/core"
)

// Controller is a subflow-management policy. Attach registers its event
// callbacks (and hence its kernel-side subscription) on the library —
// either the real *core.Library (one policy per host, the paper's split
// deployment) or a per-connection view handed out by internal/smapp.
// Detach cancels every pending timer and drops connection state; after
// Detach the controller takes no further actions, so a live connection
// can be handed to a replacement policy (smapp.Stack.SwitchPolicy).
type Controller interface {
	Name() string
	Attach(lib core.Lib)
	Detach()
}
