package controller

import (
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/nlmsg"
	"repro/internal/seg"
	"repro/internal/tcp"
)

// Refresh is the §4.4 controller: smarter exploitation of flow-based load
// balancing. When the connection starts it opens N subflows with random
// source ports so ECMP spreads them over the available paths. Every
// Interval it queries the pacing_rate of each subflow, removes the one
// with the lowest rate and immediately creates a replacement on a fresh
// random port. Two subflows hashed onto the same path share its capacity
// and therefore show roughly half the pacing_rate of a subflow alone on a
// path — so the refresh loop drains collisions and converges to covering
// all paths ("a very simple heuristic", 230 LoC of C in the paper).
type Refresh struct {
	// N is the number of concurrent subflows (5 in Fig. 2c).
	N int
	// Interval is the refresh period (2.5 s in the paper).
	Interval time.Duration
	// MinLifetime protects just-created subflows from being judged before
	// their pacing_rate means anything (one refresh interval).
	MinLifetime time.Duration

	lib   core.Lib
	conns map[uint32]*refreshState
	Stats RefreshStats
}

// RefreshStats counts controller activity.
type RefreshStats struct {
	Refreshes uint64 // subflow replacements performed
	Polls     uint64
}

type refreshState struct {
	remote   netip.AddrPort
	initial  seg.FourTuple
	born     map[seg.FourTuple]time.Duration // creation time per live subflow
	stopTick func()
	closed   bool
}

// NewRefresh builds the controller with the paper's parameters.
func NewRefresh(n int) *Refresh {
	return &Refresh{
		N:           n,
		Interval:    2500 * time.Millisecond,
		MinLifetime: 2500 * time.Millisecond,
		conns:       make(map[uint32]*refreshState),
	}
}

// Name implements Controller.
func (r *Refresh) Name() string { return "refresh" }

// Attach implements Controller.
func (r *Refresh) Attach(lib core.Lib) {
	r.lib = lib
	lib.Register(core.Callbacks{
		Created:        r.onCreated,
		Established:    r.onEstablished,
		Closed:         r.onClosed,
		SubEstablished: r.onSubEstablished,
		SubClosed:      r.onSubClosed,
	}, nil)
}

// Detach implements Controller: stop every refresh ticker and forget all
// connections. In-flight GetInfo replies see closed state and do nothing.
func (r *Refresh) Detach() {
	for _, st := range r.conns {
		st.closed = true
		if st.stopTick != nil {
			st.stopTick()
		}
	}
	r.conns = make(map[uint32]*refreshState)
}

func (r *Refresh) onCreated(ev *nlmsg.Event) {
	r.conns[ev.Token] = &refreshState{
		remote:  netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort),
		initial: ev.Tuple,
		born:    make(map[seg.FourTuple]time.Duration),
	}
}

func (r *Refresh) onEstablished(ev *nlmsg.Event) {
	st := r.conns[ev.Token]
	if st == nil {
		return
	}
	for i := 1; i < r.N; i++ {
		r.create(ev.Token, st)
	}
	r.tick(ev.Token, st)
}

func (r *Refresh) onClosed(ev *nlmsg.Event) {
	if st := r.conns[ev.Token]; st != nil {
		st.closed = true
		if st.stopTick != nil {
			st.stopTick()
		}
	}
	delete(r.conns, ev.Token)
}

func (r *Refresh) onSubEstablished(ev *nlmsg.Event) {
	if st := r.conns[ev.Token]; st != nil {
		st.born[ev.Tuple] = r.lib.Clock().Now()
	}
}

func (r *Refresh) onSubClosed(ev *nlmsg.Event) {
	if st := r.conns[ev.Token]; st != nil {
		delete(st.born, ev.Tuple)
	}
}

func (r *Refresh) create(token uint32, st *refreshState) {
	// Source port 0 → the kernel draws a fresh random ephemeral port,
	// which is what re-rolls the ECMP dice.
	r.lib.CreateSubflow(token, seg.FourTuple{
		SrcIP: st.initial.SrcIP, SrcPort: 0,
		DstIP: st.remote.Addr(), DstPort: st.remote.Port(),
	}, false, nil)
}

func (r *Refresh) tick(token uint32, st *refreshState) {
	st.stopTick = r.lib.After(r.Interval, func() {
		if st.closed {
			return
		}
		r.poll(token, st)
		r.tick(token, st)
	})
}

// poll compares pacing_rates and replaces the slowest subflow.
func (r *Refresh) poll(token uint32, st *refreshState) {
	r.Stats.Polls++
	r.lib.GetInfo(token, func(info *nlmsg.ConnInfo) {
		if info == nil || st.closed {
			return
		}
		now := r.lib.Clock().Now()
		var worst *nlmsg.SubflowInfo
		established := 0
		for i := range info.Subflows {
			sf := &info.Subflows[i]
			if sf.State != uint32(tcp.StateEstablished) {
				continue
			}
			established++
			if born, ok := st.born[sf.Tuple]; ok && now-born < r.MinLifetime {
				continue // too young to judge
			}
			if worst == nil || sf.PacingRate < worst.PacingRate {
				worst = sf
			}
		}
		// Keep the fleet at N: replace the slowest mature subflow.
		if worst == nil || established < 2 {
			return
		}
		r.Stats.Refreshes++
		r.lib.RemoveSubflow(token, worst.Tuple, nil)
		r.create(token, st)
	})
}
