package controller

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/nlmsg"
	"repro/internal/seg"
)

// FullMesh is the §4.1 controller: it reimplements the kernel full-mesh
// path manager in userspace and adds what the kernel one lacks — smart
// re-establishment of failed subflows. When a subflow dies it inspects the
// error condition and retries after an error-specific delay: quickly after
// a RST (a middlebox dropped state we can immediately rebuild), more
// patiently after a timeout, and slower still when the network was
// unreachable. This keeps long-lived connections (ssh, chat, push
// notifications) alive through aggressive NAT/firewall idle timeouts
// without blind periodic keepalives.
type FullMesh struct {
	// RetryAfterRST is the re-establishment delay after ECONNRESET.
	RetryAfterRST time.Duration
	// RetryAfterTimeout is the delay after ETIMEDOUT.
	RetryAfterTimeout time.Duration
	// RetryAfterUnreach is the delay after ENETUNREACH / ICMP errors.
	RetryAfterUnreach time.Duration
	// LocalAddrs seeds the set of local interface addresses (kept current
	// afterwards via new_local_addr / del_local_addr events).
	LocalAddrs []netip.Addr

	lib   core.Lib
	local map[netip.Addr]bool
	conns map[uint32]*meshConn
	Stats FullMeshStats
}

// FullMeshStats counts controller activity.
type FullMeshStats struct {
	SubflowsCreated   uint64
	Reestablishments  uint64
	RetriesByErrno    map[uint32]uint64
	SubflowsDismissed uint64 // removed because their interface went away
}

type meshConn struct {
	token uint32
	// remotes is kept as an ordered list (initial destination first,
	// announcements in arrival order): meshing iterates it, and a map
	// here would issue create-subflow commands in a different order each
	// run, breaking per-seed determinism.
	remotes []netip.AddrPort
	// live subflows by (local addr, remote addrport); the source port is
	// deliberately not part of the key — re-established subflows use
	// fresh ports.
	live    map[meshKey]seg.FourTuple
	pending map[meshKey]func() // scheduled retries, cancellable
	closed  bool
}

// hasRemote reports whether the remote is already part of the mesh.
func (mc *meshConn) hasRemote(r netip.AddrPort) bool {
	for _, have := range mc.remotes {
		if have == r {
			return true
		}
	}
	return false
}

type meshKey struct {
	local  netip.Addr
	remote netip.AddrPort
}

// NewFullMesh builds the controller with the paper's retry behaviour.
func NewFullMesh(localAddrs []netip.Addr) *FullMesh {
	return &FullMesh{
		RetryAfterRST:     time.Second,
		RetryAfterTimeout: 3 * time.Second,
		RetryAfterUnreach: 5 * time.Second,
		LocalAddrs:        localAddrs,
		local:             make(map[netip.Addr]bool),
		conns:             make(map[uint32]*meshConn),
		Stats:             FullMeshStats{RetriesByErrno: make(map[uint32]uint64)},
	}
}

// Name implements Controller.
func (f *FullMesh) Name() string { return "user-fullmesh" }

// Attach implements Controller: it listens to every event of §3.
func (f *FullMesh) Attach(lib core.Lib) {
	f.lib = lib
	for _, a := range f.LocalAddrs {
		f.local[a] = true
	}
	lib.Register(core.Callbacks{
		Created:        f.onCreated,
		Established:    f.onEstablished,
		Closed:         f.onClosed,
		SubEstablished: f.onSubEstablished,
		SubClosed:      f.onSubClosed,
		AddAddr:        f.onAddAddr,
		RemAddr:        f.onRemAddr,
		LocalAddrUp:    f.onLocalUp,
		LocalAddrDown:  f.onLocalDown,
	}, nil)
}

// Detach implements Controller: cancel every scheduled retry and forget
// all connections, so the controller never acts again. (Cancellation has
// no observable side effects, so map order is harmless here.)
func (f *FullMesh) Detach() {
	for _, mc := range f.conns {
		mc.closed = true
		for _, cancel := range mc.pending {
			cancel()
		}
		mc.pending = make(map[meshKey]func())
	}
	f.conns = make(map[uint32]*meshConn)
}

// tokensInOrder lists the connection tokens sorted, so event fan-outs
// act on connections in the same order every run.
func (f *FullMesh) tokensInOrder() []uint32 {
	tokens := make([]uint32, 0, len(f.conns))
	for t := range f.conns {
		tokens = append(tokens, t)
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	return tokens
}

func (f *FullMesh) onCreated(ev *nlmsg.Event) {
	remote := netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort)
	mc := &meshConn{
		token:   ev.Token,
		remotes: []netip.AddrPort{remote},
		live:    make(map[meshKey]seg.FourTuple),
		pending: make(map[meshKey]func()),
	}
	// The created event carries the initial subflow's 4-tuple; mark it
	// live so the mesh does not duplicate it.
	mc.live[meshKey{ev.Tuple.SrcIP, remote}] = ev.Tuple
	f.conns[ev.Token] = mc
}

func (f *FullMesh) onEstablished(ev *nlmsg.Event) { f.mesh(f.conns[ev.Token]) }

func (f *FullMesh) onClosed(ev *nlmsg.Event) {
	if mc := f.conns[ev.Token]; mc != nil {
		mc.closed = true
		for _, cancel := range mc.pending {
			cancel()
		}
	}
	delete(f.conns, ev.Token)
}

func (f *FullMesh) onSubEstablished(ev *nlmsg.Event) {
	mc := f.conns[ev.Token]
	if mc == nil {
		return
	}
	key := meshKey{ev.Tuple.SrcIP, netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort)}
	mc.live[key] = ev.Tuple
}

// onSubClosed is the heart of §4.1: analyse the error condition and
// schedule a re-establishment with an error-specific timeout.
func (f *FullMesh) onSubClosed(ev *nlmsg.Event) {
	mc := f.conns[ev.Token]
	if mc == nil || mc.closed {
		return
	}
	key := meshKey{ev.Tuple.SrcIP, netip.AddrPortFrom(ev.Tuple.DstIP, ev.Tuple.DstPort)}
	delete(mc.live, key)
	if !f.local[key.local] {
		return // interface is gone; LocalAddrUp will rebuild later
	}
	var delay time.Duration
	switch ev.Errno {
	case uint32(104): // ECONNRESET — middlebox dropped state; rebuild fast
		delay = f.RetryAfterRST
	case uint32(110): // ETIMEDOUT
		delay = f.RetryAfterTimeout
	case uint32(101), uint32(111): // ENETUNREACH / ECONNREFUSED
		delay = f.RetryAfterUnreach
	default:
		delay = f.RetryAfterTimeout
	}
	f.Stats.RetriesByErrno[ev.Errno]++
	f.scheduleRetry(mc, key, delay)
}

func (f *FullMesh) scheduleRetry(mc *meshConn, key meshKey, delay time.Duration) {
	if _, dup := mc.pending[key]; dup {
		return
	}
	mc.pending[key] = f.lib.After(delay, func() {
		delete(mc.pending, key)
		if mc.closed || !f.local[key.local] {
			return
		}
		if _, alive := mc.live[key]; alive {
			return
		}
		f.Stats.Reestablishments++
		f.create(mc, key)
	})
}

func (f *FullMesh) create(mc *meshConn, key meshKey) {
	ft := seg.FourTuple{SrcIP: key.local, DstIP: key.remote.Addr(), SrcPort: 0, DstPort: key.remote.Port()}
	f.Stats.SubflowsCreated++
	f.lib.CreateSubflow(mc.token, ft, false, func(errno uint32) {
		if errno != 0 && !mc.closed {
			// Creation failed (e.g. interface flapped again): back off.
			f.scheduleRetry(mc, key, f.RetryAfterUnreach)
		}
	})
}

func (f *FullMesh) onAddAddr(ev *nlmsg.Event) {
	mc := f.conns[ev.Token]
	if mc == nil {
		return
	}
	port := ev.Port
	if port == 0 {
		// Join on the connection's original port when none was announced
		// (remotes[0] is always the initial destination).
		port = mc.remotes[0].Port()
	}
	if r := netip.AddrPortFrom(ev.Addr, port); !mc.hasRemote(r) {
		mc.remotes = append(mc.remotes, r)
	}
	f.mesh(mc)
}

func (f *FullMesh) onRemAddr(ev *nlmsg.Event) {
	// Address IDs arrive without the address; a production controller
	// would keep an ID→addr map. We conservatively leave existing
	// subflows alone (the peer will RST them if truly gone).
}

func (f *FullMesh) onLocalUp(ev *nlmsg.Event) {
	f.local[ev.Addr] = true
	for _, token := range f.tokensInOrder() {
		f.mesh(f.conns[token])
	}
}

func (f *FullMesh) onLocalDown(ev *nlmsg.Event) {
	delete(f.local, ev.Addr)
	for _, token := range f.tokensInOrder() {
		mc := f.conns[token]
		// Dismiss the lost interface's subflows in a sorted order: the
		// remove commands race down the Netlink transport, and map
		// order here would reorder them across runs.
		var keys []meshKey
		for key := range mc.live {
			if key.local == ev.Addr {
				keys = append(keys, key)
			}
		}
		sortMeshKeys(keys)
		for _, key := range keys {
			ft := mc.live[key]
			delete(mc.live, key)
			f.Stats.SubflowsDismissed++
			f.lib.RemoveSubflow(mc.token, ft, nil)
		}
		// Cancel any retry scheduled for the lost interface (cancel
		// order is unobservable; no sort needed).
		for key, cancel := range mc.pending {
			if key.local == ev.Addr {
				cancel()
				delete(mc.pending, key)
			}
		}
	}
}

// mesh creates any missing local×remote subflow. Local addresses are
// walked in sorted order and remotes in announcement order, so the
// create commands (and the random ports they draw) are issued in the
// same order every run.
func (f *FullMesh) mesh(mc *meshConn) {
	if mc == nil || mc.closed {
		return
	}
	locals := make([]netip.Addr, 0, len(f.local))
	for laddr := range f.local {
		locals = append(locals, laddr)
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i].Less(locals[j]) })
	for _, laddr := range locals {
		for _, remote := range mc.remotes {
			key := meshKey{laddr, remote}
			if _, alive := mc.live[key]; alive {
				continue
			}
			if _, pending := mc.pending[key]; pending {
				continue
			}
			f.create(mc, key)
		}
	}
}

// sortMeshKeys orders keys by (local, remote) address and port.
func sortMeshKeys(keys []meshKey) {
	sort.Slice(keys, func(i, j int) bool {
		if c := keys[i].local.Compare(keys[j].local); c != 0 {
			return c < 0
		}
		if c := keys[i].remote.Addr().Compare(keys[j].remote.Addr()); c != 0 {
			return c < 0
		}
		return keys[i].remote.Port() < keys[j].remote.Port()
	})
}
