// Package nlmsg implements the Netlink message format the paper's path
// manager speaks between kernel and userspace: the 16-byte nlmsghdr, a
// generic-netlink-style family header, and type-length-value attributes
// padded to 4-byte alignment (RFC 3549; Linux include/uapi/linux/netlink.h).
//
// The same bytes cross both transports in internal/core: the simulated
// latency pipe used in experiments and the real socket pipe used by
// cmd/smappd. Everything here is pure encoding — no I/O.
package nlmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Cmd enumerates the messages of the MPTCP path-manager Netlink family:
// the events §3 of the paper describes (kernel→user) and the commands
// (user→kernel).
type Cmd uint8

// Events (kernel → userspace).
const (
	// EvCreated: a Multipath TCP connection came into existence. Carries
	// the token and the initial subflow's 4-tuple.
	EvCreated Cmd = 1 + iota
	// EvEstablished: the MP_CAPABLE three-way handshake succeeded.
	EvEstablished
	// EvClosed: the connection terminated.
	EvClosed
	// EvSubEstablished: a subflow finished its handshake.
	EvSubEstablished
	// EvSubClosed: a subflow died; carries an errno reason.
	EvSubClosed
	// EvAddAddr: the peer announced an address.
	EvAddAddr
	// EvRemAddr: the peer withdrew an address.
	EvRemAddr
	// EvTimeout: a retransmission timer expired; carries the backed-off
	// RTO and the consecutive-backoff count.
	EvTimeout
	// EvLocalAddrUp / EvLocalAddrDown: a local interface changed state.
	EvLocalAddrUp
	EvLocalAddrDown
)

// Commands (userspace → kernel).
const (
	// CmdSubscribe sets the controller's event mask.
	CmdSubscribe Cmd = 32 + iota
	// CmdCreateSubflow opens a subflow from an arbitrary 4-tuple.
	CmdCreateSubflow
	// CmdRemoveSubflow removes any established subflow.
	CmdRemoveSubflow
	// CmdSetBackup changes a subflow's backup priority (MP_PRIO).
	CmdSetBackup
	// CmdGetInfo retrieves TCP_INFO-like state for a connection and all
	// its subflows.
	CmdGetInfo
	// CmdAnnounceAddr advertises a local address to the peer (ADD_ADDR).
	CmdAnnounceAddr
)

// Replies (kernel → userspace, solicited).
const (
	// ReplyAck acknowledges a command; AttrErrno reports the result.
	ReplyAck Cmd = 64 + iota
	// ReplyInfo answers CmdGetInfo.
	ReplyInfo
)

// String names the command.
func (c Cmd) String() string {
	switch c {
	case EvCreated:
		return "created"
	case EvEstablished:
		return "estab"
	case EvClosed:
		return "closed"
	case EvSubEstablished:
		return "sub_estab"
	case EvSubClosed:
		return "sub_closed"
	case EvAddAddr:
		return "add_addr"
	case EvRemAddr:
		return "rem_addr"
	case EvTimeout:
		return "timeout"
	case EvLocalAddrUp:
		return "new_local_addr"
	case EvLocalAddrDown:
		return "del_local_addr"
	case CmdSubscribe:
		return "subscribe"
	case CmdCreateSubflow:
		return "create_subflow"
	case CmdRemoveSubflow:
		return "remove_subflow"
	case CmdSetBackup:
		return "set_backup"
	case CmdGetInfo:
		return "get_info"
	case CmdAnnounceAddr:
		return "announce_addr"
	case ReplyAck:
		return "ack"
	case ReplyInfo:
		return "info"
	}
	return fmt.Sprintf("cmd(%d)", uint8(c))
}

// EventMask selects which events a controller receives ("the subflow
// controller receives only notifications for events it registered to").
type EventMask uint32

// MaskOf builds a mask from event commands.
func MaskOf(evs ...Cmd) EventMask {
	var m EventMask
	for _, e := range evs {
		m |= 1 << uint(e)
	}
	return m
}

// MaskAll subscribes to every event.
const MaskAll EventMask = 1<<32 - 1

// Has reports whether the mask includes an event.
func (m EventMask) Has(e Cmd) bool { return m&(1<<uint(e)) != 0 }

// AttrType enumerates attribute TLV types.
type AttrType uint16

// Attribute types.
const (
	AttrToken      AttrType = 1 + iota // u32 connection token
	AttrLocalAddr                      // 4 or 16 raw bytes
	AttrRemoteAddr                     // 4 or 16 raw bytes
	AttrLocalPort                      // u16
	AttrRemotePort                     // u16
	AttrAddrID                         // u8
	AttrAddr                           // announced address, 4/16 bytes
	AttrPort                           // u16
	AttrBackup                         // u8 flag
	AttrErrno                          // u32
	AttrRTO                            // u64 nanoseconds
	AttrBackoffs                       // u32
	AttrEventMask                      // u32
	AttrTimestamp                      // u64 virtual nanoseconds
	AttrSubflow                        // nested subflow info
	AttrConn                           // nested connection info
	AttrState                          // u32 subflow TCP state
	AttrCwnd                           // u32 bytes
	AttrSRTT                           // u64 nanoseconds
	AttrPacingRate                     // u64 bytes/second
	AttrSndUna                         // u64
	AttrAppNxt                         // u64
	AttrRcvBytes                       // u64
	AttrFlight                         // u32
)

// Attr is one type-length-value attribute. Nested attributes store their
// children marshalled in Data.
type Attr struct {
	Type AttrType
	Data []byte
}

// Message is one Netlink message of the MPTCP-PM family.
type Message struct {
	Cmd   Cmd
	Seq   uint32 // request/reply correlation
	Pid   uint32 // controller port id
	Attrs []Attr
	// scratch is the inline attribute storage UnmarshalInto borrows, so
	// decoding a reused Message never heap-allocates for the common case.
	// Every event and command fits (max 8 attrs: a timeout with a tuple);
	// only info replies spill past it.
	scratch [msgInlineAttrs]Attr
}

// msgInlineAttrs sizes Message's inline scratch (see Message.scratch).
const msgInlineAttrs = 8

const (
	nlHdrLen   = 16 // struct nlmsghdr
	genlHdrLen = 4  // cmd, version, reserved
	nlAlign    = 4
	// familyType is the nlmsghdr type for this family (as if allocated by
	// genl family registration).
	familyType = 0x1b
	version    = 1
)

func align(n int) int { return (n + nlAlign - 1) &^ (nlAlign - 1) }

// Marshal encodes the message with real Netlink framing.
func (m *Message) Marshal() []byte {
	size := nlHdrLen + genlHdrLen
	for _, a := range m.Attrs {
		size += align(4 + len(a.Data))
	}
	buf := make([]byte, size)
	le := binary.LittleEndian // netlink is host-endian; we fix LE
	le.PutUint32(buf[0:], uint32(size))
	le.PutUint16(buf[4:], familyType)
	le.PutUint16(buf[6:], 0) // flags
	le.PutUint32(buf[8:], m.Seq)
	le.PutUint32(buf[12:], m.Pid)
	buf[16] = uint8(m.Cmd)
	buf[17] = version
	off := nlHdrLen + genlHdrLen
	for _, a := range m.Attrs {
		le.PutUint16(buf[off:], uint16(4+len(a.Data)))
		le.PutUint16(buf[off+2:], uint16(a.Type))
		copy(buf[off+4:], a.Data)
		off += align(4 + len(a.Data))
	}
	return buf
}

// Unmarshal decodes one message. It returns the message and the number of
// bytes consumed (messages may be concatenated in a stream).
func Unmarshal(b []byte) (*Message, int, error) {
	if len(b) < nlHdrLen+genlHdrLen {
		return nil, 0, errors.New("nlmsg: truncated header")
	}
	le := binary.LittleEndian
	total := int(le.Uint32(b[0:]))
	if total < nlHdrLen+genlHdrLen || total > len(b) {
		return nil, 0, fmt.Errorf("nlmsg: bad length %d (have %d)", total, len(b))
	}
	if le.Uint16(b[4:]) != familyType {
		return nil, 0, fmt.Errorf("nlmsg: unknown family type %#x", le.Uint16(b[4:]))
	}
	m := &Message{
		Seq: le.Uint32(b[8:]),
		Pid: le.Uint32(b[12:]),
		Cmd: Cmd(b[16]),
	}
	attrs, err := UnmarshalAttrs(b[nlHdrLen+genlHdrLen : total])
	if err != nil {
		return nil, 0, err
	}
	m.Attrs = attrs
	return m, total, nil
}

// UnmarshalAttrs parses a TLV attribute block (also used for nesting).
func UnmarshalAttrs(b []byte) ([]Attr, error) {
	var attrs []Attr
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, errors.New("nlmsg: truncated attribute")
		}
		le := binary.LittleEndian
		alen := int(le.Uint16(b[0:]))
		atype := AttrType(le.Uint16(b[2:]))
		if alen < 4 || alen > len(b) {
			return nil, fmt.Errorf("nlmsg: bad attribute length %d", alen)
		}
		data := make([]byte, alen-4)
		copy(data, b[4:alen])
		attrs = append(attrs, Attr{Type: atype, Data: data})
		adv := align(alen)
		if adv > len(b) {
			adv = len(b)
		}
		b = b[adv:]
	}
	return attrs, nil
}

// MarshalAttrs encodes a TLV attribute block (for nesting).
func MarshalAttrs(attrs []Attr) []byte {
	size := 0
	for _, a := range attrs {
		size += align(4 + len(a.Data))
	}
	buf := make([]byte, size)
	le := binary.LittleEndian
	off := 0
	for _, a := range attrs {
		le.PutUint16(buf[off:], uint16(4+len(a.Data)))
		le.PutUint16(buf[off+2:], uint16(a.Type))
		copy(buf[off+4:], a.Data)
		off += align(4 + len(a.Data))
	}
	return buf
}

// --- Attribute constructors ---

// U8 builds a one-byte attribute.
func U8(t AttrType, v uint8) Attr { return Attr{Type: t, Data: []byte{v}} }

// U16 builds a two-byte attribute.
func U16(t AttrType, v uint16) Attr {
	d := make([]byte, 2)
	binary.LittleEndian.PutUint16(d, v)
	return Attr{Type: t, Data: d}
}

// U32 builds a four-byte attribute.
func U32(t AttrType, v uint32) Attr {
	d := make([]byte, 4)
	binary.LittleEndian.PutUint32(d, v)
	return Attr{Type: t, Data: d}
}

// U64 builds an eight-byte attribute.
func U64(t AttrType, v uint64) Attr {
	d := make([]byte, 8)
	binary.LittleEndian.PutUint64(d, v)
	return Attr{Type: t, Data: d}
}

// Address builds an IP address attribute (4 or 16 raw bytes).
func Address(t AttrType, a netip.Addr) Attr { return Attr{Type: t, Data: a.AsSlice()} }

// Nested builds a nested attribute from children.
func Nested(t AttrType, children []Attr) Attr {
	return Attr{Type: t, Data: MarshalAttrs(children)}
}

// --- Attribute accessors ---

// ErrTruncated reports an attribute shorter than its type requires.
var ErrTruncated = errors.New("nlmsg: attribute too short")

// AsU8 decodes a one-byte attribute.
func (a Attr) AsU8() (uint8, error) {
	if len(a.Data) < 1 {
		return 0, ErrTruncated
	}
	return a.Data[0], nil
}

// AsU16 decodes a two-byte attribute.
func (a Attr) AsU16() (uint16, error) {
	if len(a.Data) < 2 {
		return 0, ErrTruncated
	}
	return binary.LittleEndian.Uint16(a.Data), nil
}

// AsU32 decodes a four-byte attribute.
func (a Attr) AsU32() (uint32, error) {
	if len(a.Data) < 4 {
		return 0, ErrTruncated
	}
	return binary.LittleEndian.Uint32(a.Data), nil
}

// AsU64 decodes an eight-byte attribute.
func (a Attr) AsU64() (uint64, error) {
	if len(a.Data) < 8 {
		return 0, ErrTruncated
	}
	return binary.LittleEndian.Uint64(a.Data), nil
}

// AsAddr decodes an address attribute.
func (a Attr) AsAddr() (netip.Addr, error) {
	addr, ok := netip.AddrFromSlice(a.Data)
	if !ok {
		return netip.Addr{}, fmt.Errorf("nlmsg: bad address length %d", len(a.Data))
	}
	return addr, nil
}

// AsNested decodes a nested attribute block.
func (a Attr) AsNested() ([]Attr, error) { return UnmarshalAttrs(a.Data) }

// Get finds the first attribute of a type.
func Get(attrs []Attr, t AttrType) (Attr, bool) {
	for _, a := range attrs {
		if a.Type == t {
			return a, true
		}
	}
	return Attr{}, false
}
