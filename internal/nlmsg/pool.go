package nlmsg

import "sync"

// Pool recycles wire buffers for the append-style codec. A buffer's
// lifecycle is: Get → AppendMarshal one or more messages into it → hand
// it to a transport Send (which owns it from that point) → the transport
// calls Put once the receive callback has returned. Between Get and Put
// the holder has exclusive use; after Put the bytes may be scribbled by
// the next Get, so nothing parsed in place from the buffer (Message attr
// Data views) may outlive it.
//
// A mutex free-list is deliberate instead of sync.Pool: storing a []byte
// in a sync.Pool boxes the slice header on every Put, which would defeat
// the zero-allocation steady state. Control-plane message rates (tens of
// thousands of events per simulated second) make an uncontended mutex
// negligible.
type Pool struct {
	mu   sync.Mutex
	free [][]byte
	gets uint64
	puts uint64
	news uint64
}

// PoolStats is a snapshot of pool traffic; News counts Gets that missed
// the free list. In steady state News stays flat while Gets climbs.
type PoolStats struct {
	Gets, Puts, News uint64
}

const (
	// wireBufCap sizes fresh buffers: roomy enough for a coalesced
	// multi-event frame (an event is ≤ ~80 bytes on the wire) so steady
	// state never grows a pooled buffer.
	wireBufCap = 2048
	// poolMaxFree caps the free list; beyond it Put drops the buffer for
	// the GC rather than hoard an arbitrarily deep stack.
	poolMaxFree = 256
	// poolMaxKeep rejects oversized buffers (huge info replies) so one
	// outlier doesn't pin memory in the free list forever.
	poolMaxKeep = 1 << 16
)

// Get returns an empty buffer with capacity for a typical frame. The
// caller owns it until it is handed to a transport or returned with Put.
func (p *Pool) Get() []byte {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b[:0]
	}
	p.news++
	p.mu.Unlock()
	return make([]byte, 0, wireBufCap)
}

// Put recycles a buffer. The caller must not touch b afterwards — any
// attr views parsed from it are dead. Buffers that never came from Get
// are accepted too (the socket read path hands its frames here).
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 || cap(b) > poolMaxKeep {
		return
	}
	p.mu.Lock()
	p.puts++
	if len(p.free) < poolMaxFree {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}

// Stats snapshots pool traffic counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Gets: p.gets, Puts: p.puts, News: p.news}
}

// Wire is the shared wire-buffer pool used by the simulated and socket
// transports and by everything that marshals control-plane messages.
var Wire = &Pool{}
