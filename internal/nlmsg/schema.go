package nlmsg

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/seg"
)

// Event is the decoded form of any kernel→user event message. Fields are
// populated according to Kind (see the Ev* documentation).
type Event struct {
	Kind     Cmd
	At       time.Duration // virtual timestamp of the event
	Token    uint32
	Tuple    seg.FourTuple // subflow events: the subflow's 4-tuple
	HasTuple bool
	Errno    uint32 // sub_closed reason
	AddrID   uint8
	Addr     netip.Addr // add_addr / local addr events
	Port     uint16
	RTO      time.Duration // timeout event: backed-off RTO now in force
	Backoffs uint32
	Backup   bool
}

// tupleAttrs encodes a 4-tuple as attributes.
func tupleAttrs(ft seg.FourTuple) []Attr {
	return []Attr{
		Address(AttrLocalAddr, ft.SrcIP),
		Address(AttrRemoteAddr, ft.DstIP),
		U16(AttrLocalPort, ft.SrcPort),
		U16(AttrRemotePort, ft.DstPort),
	}
}

func tupleFromAttrs(attrs []Attr) (seg.FourTuple, bool) {
	var ft seg.FourTuple
	la, ok1 := Get(attrs, AttrLocalAddr)
	ra, ok2 := Get(attrs, AttrRemoteAddr)
	lp, ok3 := Get(attrs, AttrLocalPort)
	rp, ok4 := Get(attrs, AttrRemotePort)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return ft, false
	}
	var err error
	if ft.SrcIP, err = la.AsAddr(); err != nil {
		return ft, false
	}
	if ft.DstIP, err = ra.AsAddr(); err != nil {
		return ft, false
	}
	sp, err := lp.AsU16()
	if err != nil {
		return ft, false
	}
	dp, err := rp.AsU16()
	if err != nil {
		return ft, false
	}
	ft.SrcPort, ft.DstPort = sp, dp
	return ft, true
}

// Marshal encodes the event as a Netlink message.
func (e *Event) Marshal(seq, pid uint32) []byte {
	m := Message{Cmd: e.Kind, Seq: seq, Pid: pid}
	m.Attrs = append(m.Attrs, U64(AttrTimestamp, uint64(e.At)))
	if e.Token != 0 {
		m.Attrs = append(m.Attrs, U32(AttrToken, e.Token))
	}
	if e.HasTuple {
		m.Attrs = append(m.Attrs, tupleAttrs(e.Tuple)...)
	}
	switch e.Kind {
	case EvSubClosed:
		m.Attrs = append(m.Attrs, U32(AttrErrno, e.Errno))
	case EvAddAddr:
		m.Attrs = append(m.Attrs, U8(AttrAddrID, e.AddrID), Address(AttrAddr, e.Addr), U16(AttrPort, e.Port))
	case EvRemAddr:
		m.Attrs = append(m.Attrs, U8(AttrAddrID, e.AddrID))
	case EvTimeout:
		m.Attrs = append(m.Attrs, U64(AttrRTO, uint64(e.RTO)), U32(AttrBackoffs, e.Backoffs))
	case EvLocalAddrUp, EvLocalAddrDown:
		m.Attrs = append(m.Attrs, Address(AttrAddr, e.Addr))
	}
	return m.Marshal()
}

// ParseEvent decodes an event message.
func ParseEvent(m *Message) (*Event, error) {
	e := &Event{}
	if err := ParseEventInto(m, e); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseEventInto decodes an event message into a caller-owned Event,
// allocation-free. The result is fully self-contained (Event holds no
// slices), so it stays valid after m's attr views are recycled.
func ParseEventInto(m *Message, e *Event) error {
	*e = Event{Kind: m.Cmd}
	if a, ok := Get(m.Attrs, AttrTimestamp); ok {
		v, err := a.AsU64()
		if err != nil {
			return err
		}
		e.At = time.Duration(v)
	}
	if a, ok := Get(m.Attrs, AttrToken); ok {
		v, err := a.AsU32()
		if err != nil {
			return err
		}
		e.Token = v
	}
	if ft, ok := tupleFromAttrs(m.Attrs); ok {
		e.Tuple = ft
		e.HasTuple = true
	}
	if a, ok := Get(m.Attrs, AttrErrno); ok {
		v, err := a.AsU32()
		if err != nil {
			return err
		}
		e.Errno = v
	}
	if a, ok := Get(m.Attrs, AttrAddrID); ok {
		v, err := a.AsU8()
		if err != nil {
			return err
		}
		e.AddrID = v
	}
	if a, ok := Get(m.Attrs, AttrAddr); ok {
		v, err := a.AsAddr()
		if err != nil {
			return err
		}
		e.Addr = v
	}
	if a, ok := Get(m.Attrs, AttrPort); ok {
		v, err := a.AsU16()
		if err != nil {
			return err
		}
		e.Port = v
	}
	if a, ok := Get(m.Attrs, AttrRTO); ok {
		v, err := a.AsU64()
		if err != nil {
			return err
		}
		e.RTO = time.Duration(v)
	}
	if a, ok := Get(m.Attrs, AttrBackoffs); ok {
		v, err := a.AsU32()
		if err != nil {
			return err
		}
		e.Backoffs = v
	}
	return nil
}

// Command is the decoded form of any user→kernel command.
type Command struct {
	Kind   Cmd
	Seq    uint32
	Pid    uint32
	Token  uint32
	Tuple  seg.FourTuple // create/remove/set-backup target
	Backup bool
	Mask   EventMask
	Addr   netip.Addr // announce_addr
	Port   uint16
}

// Marshal encodes the command.
func (c *Command) Marshal() []byte {
	m := Message{Cmd: c.Kind, Seq: c.Seq, Pid: c.Pid}
	if c.Token != 0 {
		m.Attrs = append(m.Attrs, U32(AttrToken, c.Token))
	}
	switch c.Kind {
	case CmdSubscribe:
		m.Attrs = append(m.Attrs, U32(AttrEventMask, uint32(c.Mask)))
	case CmdCreateSubflow:
		m.Attrs = append(m.Attrs, tupleAttrs(c.Tuple)...)
		b := uint8(0)
		if c.Backup {
			b = 1
		}
		m.Attrs = append(m.Attrs, U8(AttrBackup, b))
	case CmdRemoveSubflow:
		m.Attrs = append(m.Attrs, tupleAttrs(c.Tuple)...)
	case CmdSetBackup:
		m.Attrs = append(m.Attrs, tupleAttrs(c.Tuple)...)
		b := uint8(0)
		if c.Backup {
			b = 1
		}
		m.Attrs = append(m.Attrs, U8(AttrBackup, b))
	case CmdAnnounceAddr:
		m.Attrs = append(m.Attrs, Address(AttrAddr, c.Addr), U16(AttrPort, c.Port))
	}
	return m.Marshal()
}

// ParseCommand decodes a command message.
func ParseCommand(m *Message) (*Command, error) {
	c := &Command{}
	if err := ParseCommandInto(m, c); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseCommandInto decodes a command message into a caller-owned Command,
// allocation-free. Like ParseEventInto, the result holds no views into
// the wire buffer.
func ParseCommandInto(m *Message, c *Command) error {
	*c = Command{Kind: m.Cmd, Seq: m.Seq, Pid: m.Pid}
	if a, ok := Get(m.Attrs, AttrToken); ok {
		v, err := a.AsU32()
		if err != nil {
			return err
		}
		c.Token = v
	}
	if ft, ok := tupleFromAttrs(m.Attrs); ok {
		c.Tuple = ft
	}
	if a, ok := Get(m.Attrs, AttrBackup); ok {
		v, err := a.AsU8()
		if err != nil {
			return err
		}
		c.Backup = v != 0
	}
	if a, ok := Get(m.Attrs, AttrEventMask); ok {
		v, err := a.AsU32()
		if err != nil {
			return err
		}
		c.Mask = EventMask(v)
	}
	if a, ok := Get(m.Attrs, AttrAddr); ok {
		v, err := a.AsAddr()
		if err != nil {
			return err
		}
		c.Addr = v
	}
	if a, ok := Get(m.Attrs, AttrPort); ok {
		v, err := a.AsU16()
		if err != nil {
			return err
		}
		c.Port = v
	}
	return nil
}

// SubflowInfo is the per-subflow slice of a ReplyInfo (a TCP_INFO subset).
type SubflowInfo struct {
	Tuple      seg.FourTuple
	State      uint32
	Backup     bool
	Cwnd       uint32
	SRTT       time.Duration
	RTO        time.Duration
	Backoffs   uint32
	PacingRate uint64 // bytes per second
	Flight     uint32
}

// ConnInfo is the connection-level slice of a ReplyInfo.
type ConnInfo struct {
	Token    uint32
	SndUna   uint64
	AppNxt   uint64
	RcvBytes uint64
	Subflows []SubflowInfo
}

// MarshalInfo encodes a get-info reply.
func MarshalInfo(info *ConnInfo, seq, pid uint32) []byte {
	m := Message{Cmd: ReplyInfo, Seq: seq, Pid: pid}
	m.Attrs = append(m.Attrs,
		U32(AttrToken, info.Token),
		U64(AttrSndUna, info.SndUna),
		U64(AttrAppNxt, info.AppNxt),
		U64(AttrRcvBytes, info.RcvBytes),
	)
	for _, sf := range info.Subflows {
		children := tupleAttrs(sf.Tuple)
		b := uint8(0)
		if sf.Backup {
			b = 1
		}
		children = append(children,
			U32(AttrState, sf.State),
			U8(AttrBackup, b),
			U32(AttrCwnd, sf.Cwnd),
			U64(AttrSRTT, uint64(sf.SRTT)),
			U64(AttrRTO, uint64(sf.RTO)),
			U32(AttrBackoffs, sf.Backoffs),
			U64(AttrPacingRate, sf.PacingRate),
			U32(AttrFlight, sf.Flight),
		)
		m.Attrs = append(m.Attrs, Nested(AttrSubflow, children))
	}
	return m.Marshal()
}

// ParseInfo decodes a get-info reply.
func ParseInfo(m *Message) (*ConnInfo, error) {
	if m.Cmd != ReplyInfo {
		return nil, fmt.Errorf("nlmsg: %v is not an info reply", m.Cmd)
	}
	info := &ConnInfo{}
	for _, a := range m.Attrs {
		var err error
		switch a.Type {
		case AttrToken:
			info.Token, err = a.AsU32()
		case AttrSndUna:
			info.SndUna, err = a.AsU64()
		case AttrAppNxt:
			info.AppNxt, err = a.AsU64()
		case AttrRcvBytes:
			info.RcvBytes, err = a.AsU64()
		case AttrSubflow:
			var children []Attr
			children, err = a.AsNested()
			if err != nil {
				break
			}
			var sf SubflowInfo
			sf, err = parseSubflowInfo(children)
			if err != nil {
				break
			}
			info.Subflows = append(info.Subflows, sf)
		}
		if err != nil {
			return nil, err
		}
	}
	return info, nil
}

func parseSubflowInfo(attrs []Attr) (SubflowInfo, error) {
	var sf SubflowInfo
	ft, ok := tupleFromAttrs(attrs)
	if !ok {
		return sf, fmt.Errorf("nlmsg: subflow info without tuple")
	}
	sf.Tuple = ft
	for _, a := range attrs {
		var err error
		switch a.Type {
		case AttrState:
			sf.State, err = a.AsU32()
		case AttrBackup:
			var v uint8
			v, err = a.AsU8()
			sf.Backup = v != 0
		case AttrCwnd:
			sf.Cwnd, err = a.AsU32()
		case AttrSRTT:
			var v uint64
			v, err = a.AsU64()
			sf.SRTT = time.Duration(v)
		case AttrRTO:
			var v uint64
			v, err = a.AsU64()
			sf.RTO = time.Duration(v)
		case AttrBackoffs:
			sf.Backoffs, err = a.AsU32()
		case AttrPacingRate:
			sf.PacingRate, err = a.AsU64()
		case AttrFlight:
			sf.Flight, err = a.AsU32()
		}
		if err != nil {
			return sf, err
		}
	}
	return sf, nil
}

// MarshalAck encodes a command acknowledgement carrying an errno (0 = ok).
func MarshalAck(errno uint32, seq, pid uint32) []byte {
	m := Message{Cmd: ReplyAck, Seq: seq, Pid: pid,
		Attrs: []Attr{U32(AttrErrno, errno)}}
	return m.Marshal()
}

// ParseAck decodes an acknowledgement, returning its errno.
func ParseAck(m *Message) (uint32, error) {
	if m.Cmd != ReplyAck {
		return 0, fmt.Errorf("nlmsg: %v is not an ack", m.Cmd)
	}
	a, ok := Get(m.Attrs, AttrErrno)
	if !ok {
		return 0, fmt.Errorf("nlmsg: ack without errno")
	}
	return a.AsU32()
}
