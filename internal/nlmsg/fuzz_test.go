package nlmsg

import (
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// fuzzSeeds marshals one exemplar of every message the family speaks —
// all ten events, all six commands, the ack and the info reply — so the
// fuzzer starts from each wire shape the facade now hides from callers.
func fuzzSeeds() [][]byte {
	addr := netip.MustParseAddr("192.0.2.9")
	var seeds [][]byte
	events := []*Event{
		{Kind: EvCreated, At: time.Second, Token: 1, Tuple: testTuple, HasTuple: true},
		{Kind: EvEstablished, Token: 2, Tuple: testTuple, HasTuple: true},
		{Kind: EvClosed, Token: 3},
		{Kind: EvSubEstablished, Token: 4, Tuple: testTuple, HasTuple: true},
		{Kind: EvSubClosed, Token: 5, Tuple: testTuple, HasTuple: true, Errno: 110},
		{Kind: EvAddAddr, Token: 6, AddrID: 2, Addr: addr, Port: 443},
		{Kind: EvRemAddr, Token: 7, AddrID: 2},
		{Kind: EvTimeout, Token: 8, Tuple: testTuple, HasTuple: true, RTO: 3200 * time.Millisecond, Backoffs: 4},
		{Kind: EvLocalAddrUp, Addr: addr},
		{Kind: EvLocalAddrDown, Addr: addr},
	}
	for _, e := range events {
		seeds = append(seeds, e.Marshal(9, 1))
	}
	commands := []*Command{
		{Kind: CmdSubscribe, Seq: 1, Pid: 5, Mask: MaskOf(EvTimeout, EvSubClosed)},
		{Kind: CmdCreateSubflow, Seq: 2, Token: 99, Tuple: testTuple, Backup: true},
		{Kind: CmdRemoveSubflow, Seq: 3, Token: 99, Tuple: testTuple},
		{Kind: CmdSetBackup, Seq: 4, Token: 99, Tuple: testTuple, Backup: false},
		{Kind: CmdGetInfo, Seq: 5, Token: 99},
		{Kind: CmdAnnounceAddr, Seq: 6, Token: 99, Addr: addr, Port: 80},
	}
	for _, c := range commands {
		seeds = append(seeds, c.Marshal())
	}
	seeds = append(seeds, MarshalAck(110, 5, 2))
	seeds = append(seeds, MarshalInfo(&ConnInfo{
		Token: 0xabc, SndUna: 1 << 40, AppNxt: 1<<40 + 5000, RcvBytes: 12345,
		Subflows: []SubflowInfo{{
			Tuple: testTuple, State: 3, Cwnd: 14800,
			SRTT: 20 * time.Millisecond, RTO: 220 * time.Millisecond,
			PacingRate: 1_000_000, Flight: 2800,
		}},
	}, 77, 3))
	return seeds
}

// FuzzNlmsgRoundTrip hammers the wire format the facade hides: Unmarshal
// must never panic on arbitrary bytes, every accepted message must
// re-marshal into a message that decodes back identical (idempotent round
// trip), and the typed parsers must stay panic-free with re-encodable
// output.
func FuzzNlmsgRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Unmarshal(b)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if n < nlHdrLen+genlHdrLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Accepted input must survive a marshal/unmarshal cycle exactly:
		// attribute padding is the only thing allowed to normalise away.
		b2 := m.Marshal()
		m2, n2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-marshalled message rejected: %v", err)
		}
		if n2 != len(b2) {
			t.Fatalf("re-marshal consumed %d of %d bytes", n2, len(b2))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", m, m2)
		}
		// Typed views: never panic; whatever they accept must re-encode
		// into a parseable message.
		if ev, err := ParseEvent(m); err == nil {
			if _, _, err := Unmarshal(ev.Marshal(m.Seq, m.Pid)); err != nil {
				t.Fatalf("re-encoded event rejected: %v", err)
			}
		}
		if c, err := ParseCommand(m); err == nil {
			if _, _, err := Unmarshal(c.Marshal()); err != nil {
				t.Fatalf("re-encoded command rejected: %v", err)
			}
		}
		if info, err := ParseInfo(m); err == nil {
			if _, _, err := Unmarshal(MarshalInfo(info, m.Seq, m.Pid)); err != nil {
				t.Fatalf("re-encoded info rejected: %v", err)
			}
		}
		_, _ = ParseAck(m)
	})
}
