package nlmsg

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// exemplarEvents returns one exemplar of all ten events, covering every
// attribute each kind can carry. Shared by the fuzz seeds and the pooled
// codec equivalence/alloc tests.
func exemplarEvents() []*Event {
	addr := netip.MustParseAddr("192.0.2.9")
	return []*Event{
		{Kind: EvCreated, At: time.Second, Token: 1, Tuple: testTuple, HasTuple: true},
		{Kind: EvEstablished, Token: 2, Tuple: testTuple, HasTuple: true},
		{Kind: EvClosed, Token: 3},
		{Kind: EvSubEstablished, Token: 4, Tuple: testTuple, HasTuple: true},
		{Kind: EvSubClosed, Token: 5, Tuple: testTuple, HasTuple: true, Errno: 110},
		{Kind: EvAddAddr, Token: 6, AddrID: 2, Addr: addr, Port: 443},
		{Kind: EvRemAddr, Token: 7, AddrID: 2},
		{Kind: EvTimeout, Token: 8, Tuple: testTuple, HasTuple: true, RTO: 3200 * time.Millisecond, Backoffs: 4},
		{Kind: EvLocalAddrUp, Addr: addr},
		{Kind: EvLocalAddrDown, Addr: addr},
	}
}

// exemplarCommands returns one exemplar of all six commands.
func exemplarCommands() []*Command {
	addr := netip.MustParseAddr("192.0.2.9")
	return []*Command{
		{Kind: CmdSubscribe, Seq: 1, Pid: 5, Mask: MaskOf(EvTimeout, EvSubClosed)},
		{Kind: CmdCreateSubflow, Seq: 2, Token: 99, Tuple: testTuple, Backup: true},
		{Kind: CmdRemoveSubflow, Seq: 3, Token: 99, Tuple: testTuple},
		{Kind: CmdSetBackup, Seq: 4, Token: 99, Tuple: testTuple, Backup: false},
		{Kind: CmdGetInfo, Seq: 5, Token: 99},
		{Kind: CmdAnnounceAddr, Seq: 6, Token: 99, Addr: addr, Port: 80},
	}
}

// fuzzSeeds marshals one exemplar of every message the family speaks —
// all ten events, all six commands, the ack and the info reply — so the
// fuzzer starts from each wire shape the facade now hides from callers.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, e := range exemplarEvents() {
		seeds = append(seeds, e.Marshal(9, 1))
	}
	for _, c := range exemplarCommands() {
		seeds = append(seeds, c.Marshal())
	}
	seeds = append(seeds, MarshalAck(110, 5, 2))
	seeds = append(seeds, MarshalInfo(&ConnInfo{
		Token: 0xabc, SndUna: 1 << 40, AppNxt: 1<<40 + 5000, RcvBytes: 12345,
		Subflows: []SubflowInfo{{
			Tuple: testTuple, State: 3, Cwnd: 14800,
			SRTT: 20 * time.Millisecond, RTO: 220 * time.Millisecond,
			PacingRate: 1_000_000, Flight: 2800,
		}},
	}, 77, 3))
	return seeds
}

// FuzzNlmsgRoundTrip hammers the wire format the facade hides: Unmarshal
// must never panic on arbitrary bytes, every accepted message must
// re-marshal into a message that decodes back identical (idempotent round
// trip), and the typed parsers must stay panic-free with re-encodable
// output.
func FuzzNlmsgRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Unmarshal(b)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		if n < nlHdrLen+genlHdrLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Accepted input must survive a marshal/unmarshal cycle exactly:
		// attribute padding is the only thing allowed to normalise away.
		b2 := m.Marshal()
		m2, n2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-marshalled message rejected: %v", err)
		}
		if n2 != len(b2) {
			t.Fatalf("re-marshal consumed %d of %d bytes", n2, len(b2))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", m, m2)
		}
		// Typed views: never panic; whatever they accept must re-encode
		// into a parseable message.
		if ev, err := ParseEvent(m); err == nil {
			if _, _, err := Unmarshal(ev.Marshal(m.Seq, m.Pid)); err != nil {
				t.Fatalf("re-encoded event rejected: %v", err)
			}
		}
		if c, err := ParseCommand(m); err == nil {
			if _, _, err := Unmarshal(c.Marshal()); err != nil {
				t.Fatalf("re-encoded command rejected: %v", err)
			}
		}
		if info, err := ParseInfo(m); err == nil {
			if _, _, err := Unmarshal(MarshalInfo(info, m.Seq, m.Pid)); err != nil {
				t.Fatalf("re-encoded info rejected: %v", err)
			}
		}
		_, _ = ParseAck(m)

		// Pooled codec cross-check: UnmarshalInto must accept exactly what
		// Unmarshal accepts, consume the same bytes, and see the same attrs.
		var mi Message
		ni, err := UnmarshalInto(b, &mi)
		if err != nil {
			t.Fatalf("UnmarshalInto rejected input Unmarshal accepted: %v", err)
		}
		if ni != n {
			t.Fatalf("UnmarshalInto consumed %d bytes, Unmarshal %d", ni, n)
		}
		if mi.Cmd != m.Cmd || mi.Seq != m.Seq || mi.Pid != m.Pid || len(mi.Attrs) != len(m.Attrs) {
			t.Fatalf("UnmarshalInto header/attr-count mismatch:\n in=%+v\nout=%+v", m, &mi)
		}
		for i := range mi.Attrs {
			if mi.Attrs[i].Type != m.Attrs[i].Type || !bytes.Equal(mi.Attrs[i].Data, m.Attrs[i].Data) {
				t.Fatalf("attr %d differs: legacy %+v pooled %+v", i, m.Attrs[i], mi.Attrs[i])
			}
		}
		// Typed in-place parsers must agree with the allocating ones, and
		// the append codec must reproduce the legacy bytes.
		if ev, err := ParseEvent(m); err == nil {
			var e2 Event
			if err := ParseEventInto(&mi, &e2); err != nil {
				t.Fatalf("ParseEventInto rejected what ParseEvent accepted: %v", err)
			}
			if e2 != *ev {
				t.Fatalf("event mismatch:\nlegacy %+v\npooled %+v", ev, &e2)
			}
			if got, want := ev.AppendMarshal(nil, m.Seq, m.Pid), ev.Marshal(m.Seq, m.Pid); !bytes.Equal(got, want) {
				t.Fatalf("event AppendMarshal differs from Marshal:\n got %x\nwant %x", got, want)
			}
		}
		if c, err := ParseCommand(m); err == nil {
			var c2 Command
			if err := ParseCommandInto(&mi, &c2); err != nil {
				t.Fatalf("ParseCommandInto rejected what ParseCommand accepted: %v", err)
			}
			if c2 != *c {
				t.Fatalf("command mismatch:\nlegacy %+v\npooled %+v", c, &c2)
			}
			if got, want := c.AppendMarshal(nil), c.Marshal(); !bytes.Equal(got, want) {
				t.Fatalf("command AppendMarshal differs from Marshal:\n got %x\nwant %x", got, want)
			}
		}
		// Aliasing: events/commands decoded from a pooled buffer must stay
		// intact after the buffer is recycled and scribbled, because they
		// are value types with no views into the wire bytes.
		pb := append(Wire.Get(), b...)
		var mp Message
		if _, err := UnmarshalInto(pb, &mp); err == nil {
			var e1 Event
			var c1 Command
			evOK := ParseEventInto(&mp, &e1) == nil
			cmdOK := ParseCommandInto(&mp, &c1) == nil
			Wire.Put(pb)
			scr := Wire.Get() // most likely the buffer just recycled
			scr = scr[:cap(scr)]
			for i := range scr {
				scr[i] = 0xa5
			}
			// m's attrs were copied out by the legacy Unmarshal above, so
			// they are immune to the scribble: any divergence now means the
			// in-place parse left a view into the recycled buffer.
			if evOK {
				if ev, err := ParseEvent(m); err == nil && e1 != *ev {
					t.Fatalf("event aliased recycled buffer:\npooled %+v\nlegacy %+v", &e1, ev)
				}
			}
			if cmdOK {
				if c, err := ParseCommand(m); err == nil && c1 != *c {
					t.Fatalf("command aliased recycled buffer:\npooled %+v\nlegacy %+v", &c1, c)
				}
			}
			Wire.Put(scr[:0])
		} else {
			Wire.Put(pb)
		}
	})
}
