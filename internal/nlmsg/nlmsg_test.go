package nlmsg

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/seg"
)

var testTuple = seg.FourTuple{
	SrcIP:   netip.MustParseAddr("10.1.0.1"),
	DstIP:   netip.MustParseAddr("10.99.0.1"),
	SrcPort: 45000,
	DstPort: 80,
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Cmd: EvTimeout, Seq: 42, Pid: 7,
		Attrs: []Attr{
			U32(AttrToken, 0xdeadbeef),
			U64(AttrRTO, uint64(2*time.Second)),
			U8(AttrAddrID, 3),
			U16(AttrPort, 8080),
		},
	}
	b := m.Marshal()
	got, n, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, got)
	}
}

func TestMessageStream(t *testing.T) {
	// Several messages concatenated, as read from a socket buffer.
	var buf []byte
	for i := 0; i < 5; i++ {
		m := &Message{Cmd: EvCreated, Seq: uint32(i), Attrs: []Attr{U32(AttrToken, uint32(i))}}
		buf = append(buf, m.Marshal()...)
	}
	count := 0
	for len(buf) > 0 {
		m, n, err := Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != uint32(count) {
			t.Fatalf("message %d has seq %d", count, m.Seq)
		}
		buf = buf[n:]
		count++
	}
	if count != 5 {
		t.Fatalf("parsed %d messages", count)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	m := (&Message{Cmd: EvClosed}).Marshal()
	m[0] = 200 // length beyond buffer
	if _, _, err := Unmarshal(m); err == nil {
		t.Fatal("bad length accepted")
	}
	m2 := (&Message{Cmd: EvClosed}).Marshal()
	m2[4] = 0xFF // wrong family
	if _, _, err := Unmarshal(m2); err == nil {
		t.Fatal("wrong family accepted")
	}
}

func TestAttrAccessorErrors(t *testing.T) {
	a := Attr{Type: AttrToken, Data: []byte{1}}
	if _, err := a.AsU32(); err == nil {
		t.Fatal("short u32 accepted")
	}
	if _, err := a.AsU64(); err == nil {
		t.Fatal("short u64 accepted")
	}
	bad := Attr{Type: AttrAddr, Data: []byte{1, 2, 3}}
	if _, err := bad.AsAddr(); err == nil {
		t.Fatal("3-byte address accepted")
	}
}

func TestEventRoundTripAllKinds(t *testing.T) {
	addr := netip.MustParseAddr("192.0.2.9")
	events := []*Event{
		{Kind: EvCreated, At: time.Second, Token: 1, Tuple: testTuple, HasTuple: true},
		{Kind: EvEstablished, Token: 2, Tuple: testTuple, HasTuple: true},
		{Kind: EvClosed, Token: 3},
		{Kind: EvSubEstablished, Token: 4, Tuple: testTuple, HasTuple: true},
		{Kind: EvSubClosed, Token: 5, Tuple: testTuple, HasTuple: true, Errno: 110},
		{Kind: EvAddAddr, Token: 6, AddrID: 2, Addr: addr, Port: 443},
		{Kind: EvRemAddr, Token: 7, AddrID: 2},
		{Kind: EvTimeout, Token: 8, Tuple: testTuple, HasTuple: true, RTO: 3200 * time.Millisecond, Backoffs: 4},
		{Kind: EvLocalAddrUp, Addr: addr},
		{Kind: EvLocalAddrDown, Addr: addr},
	}
	for _, e := range events {
		b := e.Marshal(9, 1)
		m, _, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%v: %v", e.Kind, err)
		}
		got, err := ParseEvent(m)
		if err != nil {
			t.Fatalf("%v: %v", e.Kind, err)
		}
		if got.Kind != e.Kind || got.Token != e.Token || got.Errno != e.Errno ||
			got.RTO != e.RTO || got.Backoffs != e.Backoffs || got.AddrID != e.AddrID ||
			got.Port != e.Port || got.At != e.At {
			t.Fatalf("%v mismatch:\n in=%+v\nout=%+v", e.Kind, e, got)
		}
		if e.HasTuple && got.Tuple != e.Tuple {
			t.Fatalf("%v tuple mismatch", e.Kind)
		}
		if e.Addr.IsValid() && got.Addr != e.Addr {
			t.Fatalf("%v addr mismatch", e.Kind)
		}
	}
}

func TestCommandRoundTrip(t *testing.T) {
	cmds := []*Command{
		{Kind: CmdSubscribe, Seq: 1, Pid: 5, Mask: MaskOf(EvTimeout, EvSubClosed)},
		{Kind: CmdCreateSubflow, Seq: 2, Token: 99, Tuple: testTuple, Backup: true},
		{Kind: CmdRemoveSubflow, Seq: 3, Token: 99, Tuple: testTuple},
		{Kind: CmdSetBackup, Seq: 4, Token: 99, Tuple: testTuple, Backup: false},
		{Kind: CmdGetInfo, Seq: 5, Token: 99},
		{Kind: CmdAnnounceAddr, Seq: 6, Token: 99, Addr: netip.MustParseAddr("10.2.0.1"), Port: 80},
	}
	for _, c := range cmds {
		b := c.Marshal()
		m, _, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%v: %v", c.Kind, err)
		}
		got, err := ParseCommand(m)
		if err != nil {
			t.Fatalf("%v: %v", c.Kind, err)
		}
		if got.Kind != c.Kind || got.Seq != c.Seq || got.Token != c.Token ||
			got.Backup != c.Backup || got.Mask != c.Mask || got.Port != c.Port {
			t.Fatalf("%v mismatch:\n in=%+v\nout=%+v", c.Kind, c, got)
		}
	}
}

func TestInfoReplyRoundTrip(t *testing.T) {
	info := &ConnInfo{
		Token:    0xabc,
		SndUna:   1 << 40,
		AppNxt:   1<<40 + 5000,
		RcvBytes: 12345,
		Subflows: []SubflowInfo{
			{Tuple: testTuple, State: 3, Backup: false, Cwnd: 14800,
				SRTT: 20 * time.Millisecond, RTO: 220 * time.Millisecond,
				PacingRate: 1_000_000, Flight: 2800},
			{Tuple: testTuple.Reverse(), State: 3, Backup: true, Cwnd: 2760,
				SRTT: 45 * time.Millisecond, RTO: time.Second, Backoffs: 2,
				PacingRate: 60_000, Flight: 0},
		},
	}
	b := MarshalInfo(info, 77, 3)
	m, _, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 77 {
		t.Fatalf("seq = %d", m.Seq)
	}
	got, err := ParseInfo(m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(info, got) {
		t.Fatalf("mismatch:\n in=%+v\nout=%+v", info, got)
	}
}

func TestAckRoundTrip(t *testing.T) {
	b := MarshalAck(110, 5, 2)
	m, _, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	errno, err := ParseAck(m)
	if err != nil || errno != 110 {
		t.Fatalf("errno=%d err=%v", errno, err)
	}
	if _, err := ParseAck(&Message{Cmd: EvClosed}); err == nil {
		t.Fatal("non-ack parsed as ack")
	}
}

func TestEventMask(t *testing.T) {
	m := MaskOf(EvTimeout, EvSubClosed)
	if !m.Has(EvTimeout) || !m.Has(EvSubClosed) {
		t.Fatal("mask lost events")
	}
	if m.Has(EvCreated) {
		t.Fatal("mask has extra events")
	}
	if !MaskAll.Has(EvLocalAddrDown) {
		t.Fatal("MaskAll incomplete")
	}
}

func TestCmdString(t *testing.T) {
	if EvTimeout.String() != "timeout" || CmdCreateSubflow.String() != "create_subflow" {
		t.Fatal("names wrong")
	}
	if Cmd(250).String() == "" {
		t.Fatal("unknown cmd empty")
	}
}

// Property: Unmarshal never panics on arbitrary bytes.
func TestQuickUnmarshalRobust(t *testing.T) {
	f := func(b []byte) bool {
		m, _, err := Unmarshal(b)
		if err != nil {
			return true
		}
		_, _ = ParseEvent(m)
		_, _ = ParseCommand(m)
		_, _ = ParseInfo(m)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// Property: attribute blocks round-trip through MarshalAttrs/UnmarshalAttrs.
func TestQuickAttrsRoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		var attrs []Attr
		for i, v := range vals {
			attrs = append(attrs, U32(AttrType(i%24+1), v))
		}
		got, err := UnmarshalAttrs(MarshalAttrs(attrs))
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(attrs, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(32))}); err != nil {
		t.Fatal(err)
	}
}
