// Append-style marshalling and in-place unmarshalling: the pooled fast
// path of the codec. The allocating API in nlmsg.go/schema.go stays as
// the independent reference implementation; TestAppendMarshalMatchesLegacy
// and FuzzNlmsgRoundTrip pin the two byte-identical, so the wire format
// is defined twice and cross-checked rather than defined once and trusted.
package nlmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/seg"
)

// appendAttrHdr appends the 4-byte TLV header for an n-byte payload.
func appendAttrHdr(dst []byte, t AttrType, n int) []byte {
	return append(dst, byte(4+n), byte((4+n)>>8), byte(t), byte(t>>8))
}

func appendU8Attr(dst []byte, t AttrType, v uint8) []byte {
	dst = appendAttrHdr(dst, t, 1)
	return append(dst, v, 0, 0, 0) // 3 bytes pad to nlAlign
}

func appendU16Attr(dst []byte, t AttrType, v uint16) []byte {
	dst = appendAttrHdr(dst, t, 2)
	return append(dst, byte(v), byte(v>>8), 0, 0)
}

func appendU32Attr(dst []byte, t AttrType, v uint32) []byte {
	dst = appendAttrHdr(dst, t, 4)
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64Attr(dst []byte, t AttrType, v uint64) []byte {
	dst = appendAttrHdr(dst, t, 8)
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendAddrAttr writes an address payload (4 or 16 raw bytes, or empty
// for the zero Addr — the same bytes Address's AsSlice produces) without
// AsSlice's heap allocation.
func appendAddrAttr(dst []byte, t AttrType, a netip.Addr) []byte {
	switch {
	case !a.IsValid():
		return appendAttrHdr(dst, t, 0)
	case a.Is4():
		v := a.As4()
		dst = appendAttrHdr(dst, t, 4)
		return append(dst, v[:]...)
	default:
		v := a.As16()
		dst = appendAttrHdr(dst, t, 16)
		return append(dst, v[:]...)
	}
}

func appendTupleAttrs(dst []byte, ft seg.FourTuple) []byte {
	dst = appendAddrAttr(dst, AttrLocalAddr, ft.SrcIP)
	dst = appendAddrAttr(dst, AttrRemoteAddr, ft.DstIP)
	dst = appendU16Attr(dst, AttrLocalPort, ft.SrcPort)
	return appendU16Attr(dst, AttrRemotePort, ft.DstPort)
}

// appendHdr reserves the nlmsghdr + genl header at the end of dst and
// returns its offset; finishHdr patches the total-length field once the
// attributes are in. Messages appended back to back form a valid
// multi-message frame (netlink messages are self-delimiting).
func appendHdr(dst []byte, cmd Cmd, seq, pid uint32) ([]byte, int) {
	start := len(dst)
	dst = append(dst,
		0, 0, 0, 0, // total length, patched by finishHdr
		familyType&0xff, familyType>>8, 0, 0, // type, flags
		byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24),
		byte(pid), byte(pid>>8), byte(pid>>16), byte(pid>>24),
		byte(cmd), version, 0, 0)
	return dst, start
}

func finishHdr(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst
}

// AppendMarshal appends the event's wire encoding to dst and returns the
// extended slice. The bytes are identical to Marshal(seq, pid); dst is
// typically a Pool buffer already carrying earlier messages of a frame.
func (e *Event) AppendMarshal(dst []byte, seq, pid uint32) []byte {
	dst, start := appendHdr(dst, e.Kind, seq, pid)
	dst = appendU64Attr(dst, AttrTimestamp, uint64(e.At))
	if e.Token != 0 {
		dst = appendU32Attr(dst, AttrToken, e.Token)
	}
	if e.HasTuple {
		dst = appendTupleAttrs(dst, e.Tuple)
	}
	switch e.Kind {
	case EvSubClosed:
		dst = appendU32Attr(dst, AttrErrno, e.Errno)
	case EvAddAddr:
		dst = appendU8Attr(dst, AttrAddrID, e.AddrID)
		dst = appendAddrAttr(dst, AttrAddr, e.Addr)
		dst = appendU16Attr(dst, AttrPort, e.Port)
	case EvRemAddr:
		dst = appendU8Attr(dst, AttrAddrID, e.AddrID)
	case EvTimeout:
		dst = appendU64Attr(dst, AttrRTO, uint64(e.RTO))
		dst = appendU32Attr(dst, AttrBackoffs, e.Backoffs)
	case EvLocalAddrUp, EvLocalAddrDown:
		dst = appendAddrAttr(dst, AttrAddr, e.Addr)
	}
	return finishHdr(dst, start)
}

// AppendMarshal appends the command's wire encoding to dst, byte-identical
// to Marshal.
func (c *Command) AppendMarshal(dst []byte) []byte {
	dst, start := appendHdr(dst, c.Kind, c.Seq, c.Pid)
	if c.Token != 0 {
		dst = appendU32Attr(dst, AttrToken, c.Token)
	}
	switch c.Kind {
	case CmdSubscribe:
		dst = appendU32Attr(dst, AttrEventMask, uint32(c.Mask))
	case CmdCreateSubflow:
		dst = appendTupleAttrs(dst, c.Tuple)
		b := uint8(0)
		if c.Backup {
			b = 1
		}
		dst = appendU8Attr(dst, AttrBackup, b)
	case CmdRemoveSubflow:
		dst = appendTupleAttrs(dst, c.Tuple)
	case CmdSetBackup:
		dst = appendTupleAttrs(dst, c.Tuple)
		b := uint8(0)
		if c.Backup {
			b = 1
		}
		dst = appendU8Attr(dst, AttrBackup, b)
	case CmdAnnounceAddr:
		dst = appendAddrAttr(dst, AttrAddr, c.Addr)
		dst = appendU16Attr(dst, AttrPort, c.Port)
	}
	return finishHdr(dst, start)
}

// AppendAck appends a command acknowledgement, byte-identical to
// MarshalAck.
func AppendAck(dst []byte, errno, seq, pid uint32) []byte {
	dst, start := appendHdr(dst, ReplyAck, seq, pid)
	dst = appendU32Attr(dst, AttrErrno, errno)
	return finishHdr(dst, start)
}

// UnmarshalInto decodes one message in place and returns the bytes
// consumed. Attr Data slices alias b directly — zero copies — so they
// are only valid while the caller holds b; once b goes back to a Pool
// the views are dead. Inline scratch covers every event and command
// (≤ msgInlineAttrs attributes); larger messages (info replies) spill
// their attr slice to the heap.
func UnmarshalInto(b []byte, m *Message) (int, error) {
	if len(b) < nlHdrLen+genlHdrLen {
		return 0, errors.New("nlmsg: truncated header")
	}
	le := binary.LittleEndian
	total := int(le.Uint32(b[0:]))
	if total < nlHdrLen+genlHdrLen || total > len(b) {
		return 0, fmt.Errorf("nlmsg: bad length %d (have %d)", total, len(b))
	}
	if le.Uint16(b[4:]) != familyType {
		return 0, fmt.Errorf("nlmsg: unknown family type %#x", le.Uint16(b[4:]))
	}
	m.Seq = le.Uint32(b[8:])
	m.Pid = le.Uint32(b[12:])
	m.Cmd = Cmd(b[16])
	m.Attrs = m.scratch[:0]
	rest := b[nlHdrLen+genlHdrLen : total]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return 0, errors.New("nlmsg: truncated attribute")
		}
		alen := int(le.Uint16(rest[0:]))
		atype := AttrType(le.Uint16(rest[2:]))
		if alen < 4 || alen > len(rest) {
			return 0, fmt.Errorf("nlmsg: bad attribute length %d", alen)
		}
		m.Attrs = append(m.Attrs, Attr{Type: atype, Data: rest[4:alen:alen]})
		adv := align(alen)
		if adv > len(rest) {
			adv = len(rest)
		}
		rest = rest[adv:]
	}
	return total, nil
}
