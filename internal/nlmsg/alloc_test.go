package nlmsg

import (
	"bytes"
	"testing"
)

// TestAppendMarshalMatchesLegacy pins the pooled append codec
// byte-identical to the independent allocating implementation for one
// exemplar of every message kind. The two encoders are deliberately
// separate code paths: this test is what keeps them the same wire format.
func TestAppendMarshalMatchesLegacy(t *testing.T) {
	for _, e := range exemplarEvents() {
		got := e.AppendMarshal(nil, 9, 1)
		want := e.Marshal(9, 1)
		if !bytes.Equal(got, want) {
			t.Errorf("%v: AppendMarshal differs from Marshal:\n got %x\nwant %x", e.Kind, got, want)
		}
	}
	for _, c := range exemplarCommands() {
		got := c.AppendMarshal(nil)
		want := c.Marshal()
		if !bytes.Equal(got, want) {
			t.Errorf("%v: AppendMarshal differs from Marshal:\n got %x\nwant %x", c.Kind, got, want)
		}
	}
	if got, want := AppendAck(nil, 110, 5, 2), MarshalAck(110, 5, 2); !bytes.Equal(got, want) {
		t.Errorf("AppendAck differs from MarshalAck:\n got %x\nwant %x", got, want)
	}
}

// TestMultiMessageFrame appends every exemplar event into one pooled
// buffer and walks it back out with UnmarshalInto: netlink messages are
// self-delimiting, so a coalesced frame must decode into exactly the
// events that went in, in order.
func TestMultiMessageFrame(t *testing.T) {
	evs := exemplarEvents()
	buf := Wire.Get()
	defer Wire.Put(buf)
	for _, e := range evs {
		buf = e.AppendMarshal(buf, 3, 9)
	}
	var m Message
	var e Event
	i, off := 0, 0
	for off < len(buf) {
		n, err := UnmarshalInto(buf[off:], &m)
		if err != nil {
			t.Fatalf("message %d at offset %d: %v", i, off, err)
		}
		if err := ParseEventInto(&m, &e); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if i >= len(evs) {
			t.Fatalf("frame decoded more than %d messages", len(evs))
		}
		if e != *evs[i] {
			t.Fatalf("message %d round trip mismatch:\n in=%+v\nout=%+v", i, evs[i], &e)
		}
		off += n
		i++
	}
	if i != len(evs) {
		t.Fatalf("frame decoded %d of %d messages", i, len(evs))
	}
}

// TestPooledRoundTripAllocFree pins the steady-state control-plane hot
// loop — marshal into a reused buffer, unmarshal in place, parse into a
// reused Event/Command — at exactly zero allocations per iteration.
func TestPooledRoundTripAllocFree(t *testing.T) {
	evs := exemplarEvents()
	cmds := exemplarCommands()
	var m Message
	var e Event
	var c Command
	buf := Wire.Get()
	defer func() { Wire.Put(buf) }()
	avg := testing.AllocsPerRun(100, func() {
		for _, src := range evs {
			buf = src.AppendMarshal(buf[:0], 7, 1)
			n, err := UnmarshalInto(buf, &m)
			if err != nil || n != len(buf) {
				t.Fatalf("%v: unmarshal consumed %d of %d: %v", src.Kind, n, len(buf), err)
			}
			if err := ParseEventInto(&m, &e); err != nil {
				t.Fatalf("%v: %v", src.Kind, err)
			}
			if e != *src {
				t.Fatalf("%v: round trip mismatch", src.Kind)
			}
		}
		for _, src := range cmds {
			buf = src.AppendMarshal(buf[:0])
			n, err := UnmarshalInto(buf, &m)
			if err != nil || n != len(buf) {
				t.Fatalf("%v: unmarshal consumed %d of %d: %v", src.Kind, n, len(buf), err)
			}
			if err := ParseCommandInto(&m, &c); err != nil {
				t.Fatalf("%v: %v", src.Kind, err)
			}
			if c != *src {
				t.Fatalf("%v: round trip mismatch", src.Kind)
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state pooled round trip allocates %.1f/op, want 0", avg)
	}
}

// TestPoolRecycles pins the Get→Put cycle itself at zero steady-state
// allocations and checks the traffic counters move the right way.
func TestPoolRecycles(t *testing.T) {
	p := &Pool{}
	avg := testing.AllocsPerRun(100, func() {
		b := p.Get()
		b = append(b, 1, 2, 3)
		p.Put(b)
	})
	if avg != 0 {
		t.Fatalf("pooled Get/Put allocates %.1f/op, want 0", avg)
	}
	st := p.Stats()
	if st.Gets < 100 || st.Puts < 100 {
		t.Fatalf("counters did not move: %+v", st)
	}
	if st.News > 1 {
		t.Fatalf("steady state minted %d fresh buffers, want ≤ 1: %+v", st.News, st)
	}
	// Oversized buffers must not be hoarded.
	p.Put(make([]byte, 0, poolMaxKeep+1))
	if b := p.Get(); cap(b) > poolMaxKeep {
		t.Fatalf("pool kept an oversized buffer (cap %d)", cap(b))
	}
}
