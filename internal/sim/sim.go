// Package sim provides a deterministic discrete-event simulation engine.
//
// All higher layers of this repository (network emulation, the TCP and
// Multipath TCP stacks, the subflow controllers) are driven by a single
// virtual clock owned by a Simulator. Events are callbacks scheduled at
// absolute virtual times; the simulator repeatedly pops the earliest event
// and runs it. Runs are fully deterministic for a given seed, which makes
// every experiment in this repository reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It intentionally mirrors time.Duration semantics so the two
// interoperate cheaply.
type Time int64

// Common time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// Duration converts a virtual timestamp into a time.Duration from t=0.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the timestamp as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time like a time.Duration.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Event is a scheduled callback. Holding the *Event returned by Schedule
// allows cancellation.
//
// Events come in three flavours, distinguished so the steady-state data
// path never allocates:
//   - classic events (Schedule/After): heap-allocated, handle escapes to
//     the caller, never recycled;
//   - pooled events (ScheduleArg): drawn from the simulator's free list
//     and recycled immediately after firing — no handle, no cancellation;
//   - owned events (Timer/Ticker): embedded in their owner and re-armed
//     in place for the owner's whole lifetime.
type Event struct {
	when Time
	ent  uint64 // owning entity ordinal (0 on a bare Simulator)
	seq  uint64 // tie-break: FIFO among equal (when, ent)
	fn   func()
	idx  int // heap index, -1 once removed
	name string

	argFn  func(any) // pooled events: preallocated callback
	arg    any       // pooled events: per-event state (a pointer, no boxing)
	pooled bool      // recycle onto the free list after firing
	owned  bool      // fn survives firing (Timer/Ticker re-arm in place)
}

// When reports the virtual time this event fires at.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.idx < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

// Less orders events by the total key (when, ent, seq). On a bare
// Simulator every event has ent 0, so the order degenerates to the classic
// (when, seq) FIFO. Under a sharded World the entity ordinal and per-entity
// sequence make the key independent of how entities fold onto shards,
// which is what keeps sharded runs bit-identical at any shard count.
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	if h[i].ent != h[j].ent {
		return h[i].ent < h[j].ent
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event queue.
// It is not safe for concurrent use: the entire simulation is single
// threaded by design, which is what makes it deterministic.
type Simulator struct {
	now       Time
	queue     eventHeap
	nextSeq   uint64
	rng       *rand.Rand
	stopped   bool
	free      []*Event // recycled pooled events (ScheduleArg)
	processed uint64

	// Pooled-event free-list traffic. Single-writer (the loop's own
	// goroutine), harvested between runs via EventPoolStats.
	evGets uint64 // pooled events drawn (free list or fresh)
	evPuts uint64 // pooled events recycled after firing
	evNews uint64 // draws that missed the free list
}

// maxFreeEvents bounds the pooled-event free list; beyond this the burst
// is returned to the garbage collector.
const maxFreeEvents = 1 << 14

// New returns a simulator whose random source is seeded with seed.
// The same seed always yields the same run.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Processed counts events executed since construction.
func (s *Simulator) Processed() uint64 { return s.processed }

// EventPoolStats snapshots the pooled-event free-list counters: events
// drawn, events recycled, and draws that had to heap-allocate. Gets-News
// is the number of reuses.
func (s *Simulator) EventPoolStats() (gets, puts, news uint64) {
	return s.evGets, s.evPuts, s.evNews
}

// Rand exposes the simulation's deterministic random source. All model
// randomness (loss draws, jitter, port selection) must come from here.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at absolute virtual time when. Scheduling in the past
// (before Now) panics: it always indicates a model bug.
func (s *Simulator) Schedule(when Time, name string, fn func()) *Event {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, when, s.now))
	}
	e := &Event{when: when, seq: s.nextSeq, fn: fn, name: name}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// After runs fn d after the current time.
func (s *Simulator) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now.Add(d), name, fn)
}

// ScheduleArg is the allocation-free Schedule variant for the data path:
// fn must be a preallocated func value and any per-event state rides in
// arg (pass a pointer so boxing into the interface does not allocate).
// The backing Event comes from a free list and is recycled right after
// firing, so no handle is returned and the event cannot be cancelled.
func (s *Simulator) ScheduleArg(when Time, name string, fn func(any), arg any) {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, when, s.now))
	}
	var e *Event
	s.evGets++
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		s.evNews++
		e = &Event{pooled: true}
	}
	e.when, e.seq, e.name, e.argFn, e.arg = when, s.nextSeq, name, fn, arg
	s.nextSeq++
	heap.Push(&s.queue, e)
}

// AfterArg is ScheduleArg relative to the current time.
func (s *Simulator) AfterArg(d time.Duration, name string, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	s.ScheduleArg(s.now.Add(d), name, fn, arg)
}

// scheduleArgKeyed pushes a pooled event with a caller-provided ordering
// key. Per-entity clocks and the cross-shard mailbox route through here so
// the (when, ent, seq) key is computed by the sender, making the total
// order independent of which shard the event lands on.
func (s *Simulator) scheduleArgKeyed(when Time, ent, seqn uint64, name string, fn func(any), arg any) {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, when, s.now))
	}
	var e *Event
	s.evGets++
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		s.evNews++
		e = &Event{pooled: true}
	}
	e.when, e.ent, e.seq, e.name, e.argFn, e.arg = when, ent, seqn, name, fn, arg
	heap.Push(&s.queue, e)
}

// rearmOwned (re)schedules a caller-owned event (sim.Timer / Ticker): if
// pending it moves in place via heap.Fix, otherwise it is pushed afresh.
// The event's fn survives firing, so one Event serves its owner's whole
// lifetime without allocation.
func (s *Simulator) rearmOwned(e *Event, when Time) {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", e.name, when, s.now))
	}
	e.when = when
	e.seq = s.nextSeq
	s.nextSeq++
	if e.idx >= 0 {
		heap.Fix(&s.queue, e.idx)
		return
	}
	heap.Push(&s.queue, e)
}

// cancelOwned removes a pending owned event without clearing its fn.
func (s *Simulator) cancelOwned(e *Event) {
	if e.idx < 0 {
		return
	}
	heap.Remove(&s.queue, e.idx)
	e.idx = -1
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op, so callers may cancel unconditionally.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&s.queue, e.idx)
	e.idx = -1
	e.fn = nil
}

// Reschedule cancels e (if pending) and schedules fn at when, returning the
// new event. It is the common pattern for restarting timers.
func (s *Simulator) Reschedule(e *Event, when Time, name string, fn func()) *Event {
	s.Cancel(e)
	return s.Schedule(when, name, fn)
}

// Pending reports the number of events still queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Stop makes Run/RunUntil return after the currently executing event.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the earliest event. It reports false when the queue is empty.
func (s *Simulator) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.when < s.now {
		panic("sim: time went backwards")
	}
	s.now = e.when
	s.processed++
	switch {
	case e.argFn != nil:
		fn, arg := e.argFn, e.arg
		e.argFn, e.arg = nil, nil
		fn(arg)
		if e.pooled && len(s.free) < maxFreeEvents {
			s.evPuts++
			s.free = append(s.free, e)
		}
	case e.owned:
		// fn is preserved: the owner re-arms this very event.
		if e.fn != nil {
			e.fn()
		}
	default:
		fn := e.fn
		e.fn = nil
		if fn != nil {
			fn()
		}
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if it is later than the last event executed).
func (s *Simulator) RunUntil(deadline Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 || s.queue[0].when > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the clock by d, executing everything due in the window.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// runWindow executes queued events up to limit — strictly below it when
// inclusive is false, through it when true — then parks the clock at
// limit. It is the shard-side worker for World's conservative windows;
// unlike RunUntil it ignores Stop, because only the World may end a
// sharded run.
func (s *Simulator) runWindow(limit Time, inclusive bool) {
	for len(s.queue) > 0 {
		top := s.queue[0].when
		if top > limit || (!inclusive && top == limit) {
			break
		}
		s.step()
	}
	if s.now < limit {
		s.now = limit
	}
}

// The bare Simulator is also the trivial sharded world: every entity
// shares its single event loop and random stream, SendTo degenerates to a
// local pooled push, and global events are ordinary events. This keeps the
// direct-simulator call sites (unit tests, examples, single-shard runs)
// byte-for-byte identical to the pre-sharding engine.

// Derive returns the simulator itself: on a single loop all entities share
// one identity and one random stream.
func (s *Simulator) Derive(name string) Clock { return s }

// SendTo schedules a pooled event onto dst's loop; on a bare Simulator
// src and dst always share the loop.
func (s *Simulator) SendTo(dst Clock, when Time, name string, fn func(any), arg any) {
	s.ScheduleArg(when, name, fn, arg)
}

// HostClock implements Fabric: every group maps to the single loop.
func (s *Simulator) HostClock(group int, name string) Clock { return s }

// ScheduleGlobal implements Runner: with one loop a global event needs no
// barrier and is a plain Schedule.
func (s *Simulator) ScheduleGlobal(when Time, name string, fn func()) {
	s.Schedule(when, name, fn)
}

func (s *Simulator) loop() (*Simulator, int) { return s, 0 }
func (s *Simulator) world() *World           { return nil }
