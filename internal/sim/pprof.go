package sim

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// profileLabels gates pprof shard labelling of the phase goroutines.
// Process-wide (not per-World) so a CLI flag can arm it before any world
// exists; the label cost is only paid while enabled.
var profileLabels atomic.Bool

// SetProfileLabels enables runtime/pprof labelling of shard goroutines:
// while on, every barrier window executes under a shard=<i> label, so
// CPU profiles of a sharded run attribute samples per shard. Off by
// default (labelling allocates a label set per window).
func SetProfileLabels(on bool) { profileLabels.Store(on) }

// pprofDo runs fn under a shard=<i> profiler label.
func pprofDo(i int, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(i)), func(context.Context) { fn() })
}
