package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Clock is the scheduling surface every simulated entity (host, link,
// protocol stack, application) programs against. A Clock is bound to one
// event loop: the whole-simulation loop of a bare *Simulator, or one shard
// of a *World. Entities never touch the loop directly, which is what lets
// the same stack code run single-threaded or sharded.
//
// The interface has unexported methods on purpose: only the sim package
// implements it (*Simulator and the per-entity clocks a World issues), so
// the loop internals — owned-event re-arming, cross-shard posting — stay
// inside the package.
type Clock interface {
	// Now reports the current virtual time of the clock's event loop.
	Now() Time
	// Rand is the clock's deterministic random stream. A bare Simulator
	// has one shared stream; a World gives every entity its own, so draws
	// do not depend on how entities interleave across shards.
	Rand() *rand.Rand
	// Schedule runs fn at absolute virtual time when (see Simulator.Schedule).
	Schedule(when Time, name string, fn func()) *Event
	// After runs fn d after the current time.
	After(d time.Duration, name string, fn func()) *Event
	// ScheduleArg is the allocation-free Schedule variant (see
	// Simulator.ScheduleArg).
	ScheduleArg(when Time, name string, fn func(any), arg any)
	// AfterArg is ScheduleArg relative to the current time.
	AfterArg(d time.Duration, name string, fn func(any), arg any)
	// Cancel removes a pending event scheduled through this clock.
	Cancel(e *Event)
	// Reschedule cancels e (if pending) and schedules fn at when.
	Reschedule(e *Event, when Time, name string, fn func()) *Event
	// SendTo schedules a pooled event onto dst's event loop, ordered by
	// THIS clock's identity. It is the one legal way to schedule work for
	// an entity that may live on another shard (netem links use it for
	// packet delivery); when src and dst share a loop it degenerates to
	// ScheduleArg. The destination timestamp must be at least one
	// cross-shard lookahead in the future, which link propagation delays
	// guarantee by construction.
	SendTo(dst Clock, when Time, name string, fn func(any), arg any)
	// Derive creates a sibling clock on the same event loop with its own
	// identity and random stream — links derive theirs from the source
	// node's clock. On a bare Simulator it returns the simulator itself.
	Derive(name string) Clock

	rearmOwned(e *Event, when Time)
	cancelOwned(e *Event)
	loop() (*Simulator, int)
	world() *World
}

// Fabric hands out per-entity clocks during topology construction. Hosts
// in the same group share a shard; the fabric maps groups to shards. A
// bare *Simulator is the trivial fabric (everything on one loop), so
// existing single-simulator call sites build unchanged.
type Fabric interface {
	// HostClock returns the clock for a host in the given placement
	// group. Groups are stable topology-level labels; the fabric decides
	// how they fold onto shards.
	HostClock(group int, name string) Clock
}

// Runner drives a whole simulation from the outside: the scenario engine
// and workloads only ever need this view. Both *Simulator and *World
// implement it.
type Runner interface {
	Fabric
	// Now reports the committed virtual time: every event at or before it
	// has executed.
	Now() Time
	// RunUntil executes events with timestamps <= deadline, then advances
	// the clock to deadline.
	RunUntil(deadline Time)
	// RunFor advances the clock by d.
	RunFor(d time.Duration)
	// Processed counts events executed since construction.
	Processed() uint64
	// ScheduleGlobal schedules fn at when with a whole-simulation barrier:
	// fn runs after every event at or before when, with all shards paused,
	// so it may touch state owned by any shard (loss steps, interface
	// flaps). On a bare Simulator it is a plain Schedule.
	ScheduleGlobal(when Time, name string, fn func())
}

// WorldOf reports the sharded world a clock belongs to, or nil for a bare
// *Simulator. netem uses it to register cross-shard link crossings.
func WorldOf(c Clock) *World { return c.world() }

// ShardIndex reports which shard's event loop a clock schedules on (0 on
// a bare *Simulator). The metrics layer uses it to hand each host's
// stack the storage slot its shard owns, keeping every metric slot
// single-writer.
func ShardIndex(c Clock) int {
	_, sh := c.loop()
	return sh
}

// splitmix64 is the SplitMix64 mixer — cheap, full-period, and good
// enough to decorrelate per-entity seeds derived from one run seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// entitySeed derives entity ent's RNG seed from the run seed. Ordinals
// are assigned in build order, which does not depend on the shard count,
// so the per-entity streams are identical at any sharding.
func entitySeed(seed int64, ent uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) + ent))
}

// entityClock is the per-entity Clock a World issues. Events it schedules
// are ordered by (when, ent, seq): ent is the entity's build ordinal and
// seq its private counter, so the total event order — and therefore every
// simulated result — is independent of how entities fold onto shards.
type entityClock struct {
	w     *World
	sh    *Simulator
	shard int
	ent   uint64
	seq   uint64
	rng   *rand.Rand
	name  string
}

func (c *entityClock) next() uint64 {
	n := c.seq
	c.seq++
	return n
}

func (c *entityClock) Now() Time        { return c.sh.now }
func (c *entityClock) Rand() *rand.Rand { return c.rng }

func (c *entityClock) Schedule(when Time, name string, fn func()) *Event {
	if when < c.sh.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, when, c.sh.now))
	}
	e := &Event{when: when, ent: c.ent, seq: c.next(), fn: fn, name: name}
	heap.Push(&c.sh.queue, e)
	return e
}

func (c *entityClock) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.Schedule(c.sh.now.Add(d), name, fn)
}

func (c *entityClock) ScheduleArg(when Time, name string, fn func(any), arg any) {
	c.sh.scheduleArgKeyed(when, c.ent, c.next(), name, fn, arg)
}

func (c *entityClock) AfterArg(d time.Duration, name string, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	c.ScheduleArg(c.sh.now.Add(d), name, fn, arg)
}

func (c *entityClock) Cancel(e *Event) { c.sh.Cancel(e) }

func (c *entityClock) Reschedule(e *Event, when Time, name string, fn func()) *Event {
	c.Cancel(e)
	return c.Schedule(when, name, fn)
}

func (c *entityClock) SendTo(dst Clock, when Time, name string, fn func(any), arg any) {
	_, dshard := dst.loop()
	if dshard == c.shard {
		c.sh.scheduleArgKeyed(when, c.ent, c.next(), name, fn, arg)
		return
	}
	c.w.post(dshard, crossMsg{when: when, ent: c.ent, seq: c.next(), name: name, fn: fn, arg: arg})
}

func (c *entityClock) Derive(name string) Clock { return c.w.deriveClock(c.shard, name) }

func (c *entityClock) rearmOwned(e *Event, when Time) {
	if when < c.sh.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", e.name, when, c.sh.now))
	}
	e.when = when
	e.ent = c.ent
	e.seq = c.next()
	if e.idx >= 0 {
		heap.Fix(&c.sh.queue, e.idx)
		return
	}
	heap.Push(&c.sh.queue, e)
}

func (c *entityClock) cancelOwned(e *Event)    { c.sh.cancelOwned(e) }
func (c *entityClock) loop() (*Simulator, int) { return c.sh, c.shard }
func (c *entityClock) world() *World           { return c.w }
