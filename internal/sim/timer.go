package sim

import "time"

// Timer is a restartable one-shot timer bound to a Simulator, analogous to
// time.Timer but in virtual time. The zero value is not usable; create
// timers with NewTimer.
type Timer struct {
	sim  *Simulator
	ev   *Event
	name string
	fn   func()
}

// NewTimer returns a stopped timer that runs fn when it fires.
func NewTimer(s *Simulator, name string, fn func()) *Timer {
	return &Timer{sim: s, name: name, fn: fn}
}

// Reset (re)arms the timer to fire d from now, replacing any pending firing.
func (t *Timer) Reset(d time.Duration) {
	t.sim.Cancel(t.ev)
	t.ev = t.sim.After(d, t.name, t.fn)
}

// ResetAt (re)arms the timer to fire at absolute time when.
func (t *Timer) ResetAt(when Time) {
	t.sim.Cancel(t.ev)
	t.ev = t.sim.Schedule(when, t.name, t.fn)
}

// Stop cancels any pending firing.
func (t *Timer) Stop() {
	t.sim.Cancel(t.ev)
	t.ev = nil
}

// Armed reports whether the timer currently has a pending firing.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// Deadline reports when the timer will fire; valid only if Armed.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return -1
	}
	return t.ev.When()
}

// Ticker repeatedly invokes a callback at a fixed virtual-time period until
// stopped, analogous to time.Ticker.
type Ticker struct {
	sim    *Simulator
	period time.Duration
	ev     *Event
	name   string
	fn     func()
}

// NewTicker starts a ticker whose first tick is one period from now.
func NewTicker(s *Simulator, period time.Duration, name string, fn func()) *Ticker {
	t := &Ticker{sim: s, period: period, name: name, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.sim.After(t.period, t.name, func() {
		t.schedule()
		t.fn()
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.sim.Cancel(t.ev) }
