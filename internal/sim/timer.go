package sim

import "time"

// Timer is a restartable one-shot timer bound to a Clock, analogous to
// time.Timer but in virtual time. The zero value is not usable; create
// timers with NewTimer.
//
// A Timer owns one Event for its whole lifetime and re-arms it in place,
// so Reset/Stop never allocate — the retransmission and pacing timers of
// every subflow run on this path.
type Timer struct {
	clock Clock
	ev    Event
}

// NewTimer returns a stopped timer that runs fn when it fires.
func NewTimer(c Clock, name string, fn func()) *Timer {
	t := &Timer{clock: c}
	t.ev = Event{idx: -1, name: name, fn: fn, owned: true}
	return t
}

// Reset (re)arms the timer to fire d from now, replacing any pending firing.
func (t *Timer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.clock.rearmOwned(&t.ev, t.clock.Now().Add(d))
}

// ResetAt (re)arms the timer to fire at absolute time when.
func (t *Timer) ResetAt(when Time) {
	t.clock.rearmOwned(&t.ev, when)
}

// Stop cancels any pending firing.
func (t *Timer) Stop() {
	t.clock.cancelOwned(&t.ev)
}

// Armed reports whether the timer currently has a pending firing.
func (t *Timer) Armed() bool { return t.ev.idx >= 0 }

// Deadline reports when the timer will fire; valid only if Armed.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return -1
	}
	return t.ev.when
}

// Ticker repeatedly invokes a callback at a fixed virtual-time period until
// stopped, analogous to time.Ticker. Like Timer, it owns and re-arms a
// single Event, so steady-state ticking does not allocate.
type Ticker struct {
	clock  Clock
	period time.Duration
	ev     Event
}

// NewTicker starts a ticker whose first tick is one period from now.
func NewTicker(c Clock, period time.Duration, name string, fn func()) *Ticker {
	if period < 0 {
		period = 0
	}
	t := &Ticker{clock: c, period: period}
	t.ev = Event{idx: -1, name: name, owned: true}
	t.ev.fn = func() {
		// Re-arm before running fn, mirroring the pre-pool behaviour where
		// the next tick was scheduled ahead of the callback.
		t.clock.rearmOwned(&t.ev, t.clock.Now().Add(t.period))
		fn()
	}
	t.clock.rearmOwned(&t.ev, c.Now().Add(period))
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() { t.clock.cancelOwned(&t.ev) }
