package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"
)

// pingPongTrace runs a two-entity ping-pong over a simulated cross-shard
// link and records the observable history: event times, per-entity random
// draws, timer firings, and a mid-run global intervention. Each entity
// appends only to its own log (shared mutable state between shards is
// exactly what the simulation model forbids); the logs are merged
// deterministically afterwards. The history must not depend on the shard
// count.
func pingPongTrace(t *testing.T, seed int64, shards int) []string {
	t.Helper()
	w := NewWorld(seed, shards)
	ca := w.HostClock(0, "a")
	cb := w.HostClock(1, "b")
	const delay = time.Millisecond
	w.Crossing("ab", ca, cb, delay)
	w.Crossing("ba", cb, ca, delay)
	if err := w.Finalize(); err != nil {
		t.Fatalf("Finalize(%d shards): %v", shards, err)
	}

	// Pre-populate the map so shard goroutines only read it; each entity
	// writes through its own slice pointer.
	logs := map[string]*[]string{"a": {}, "b": {}, "global": {}}
	record := func(c Clock, who, what string) {
		*logs[who] = append(*logs[who], fmt.Sprintf("%v %s %s r=%d", c.Now(), who, what, c.Rand().Intn(1000)))
	}

	dropped := false // written only at the global barrier, read by later windows
	var send func(from, to Clock, fromName, toName string, hop int)
	send = func(from, to Clock, fromName, toName string, hop int) {
		if hop > 20 || dropped {
			return
		}
		from.SendTo(to, from.Now().Add(delay), "pong", func(any) {
			record(to, toName, fmt.Sprintf("recv hop=%d", hop))
			send(to, from, toName, fromName, hop+1)
		}, nil)
	}

	// Two interleaved ping-pong chains plus a local ticker on each side.
	send(ca, cb, "a", "b", 0)
	send(cb, ca, "b", "a", 0)
	ta := NewTicker(ca, 3*time.Millisecond, "tick.a", func() { record(ca, "a", "tick") })
	tb := NewTicker(cb, 5*time.Millisecond, "tick.b", func() { record(cb, "b", "tick") })
	defer ta.Stop()
	defer tb.Stop()

	// A global intervention mid-run: cuts the chains after every event at
	// 8ms has executed, whatever the sharding.
	w.ScheduleGlobal(Time(8*Millisecond), "cut", func() {
		dropped = true
		record(ca, "global", "cut")
	})

	w.RunFor(12 * time.Millisecond)
	w.RunFor(12 * time.Millisecond) // second leg: resuming mid-history must also be stable

	var names []string
	for k := range logs {
		names = append(names, k)
	}
	sort.Strings(names)
	var out []string
	for _, k := range names {
		out = append(out, *logs[k]...)
	}
	out = append(out, fmt.Sprintf("end now=%v processed=%d", w.Now(), w.Processed()))
	return out
}

func TestWorldShardCountInvariance(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		want := pingPongTrace(t, seed, 1)
		for _, n := range []int{2, 3, 8} {
			got := pingPongTrace(t, seed, n)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: %d-shard history diverges from 1-shard\n 1: %v\n%2d: %v", seed, n, want, n, got)
			}
		}
	}
}

func TestWorldSingleShardMatchesBareSimulatorSemantics(t *testing.T) {
	w := NewWorld(7, 1)
	c := w.HostClock(0, "only")
	var order []int
	c.Schedule(Time(Millisecond), "a", func() { order = append(order, 1) })
	c.Schedule(Time(Millisecond), "b", func() { order = append(order, 2) })
	c.After(2*time.Millisecond, "c", func() { order = append(order, 3) })
	w.RunFor(5 * time.Millisecond)
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Fatalf("order = %v", order)
	}
	if w.Now() != Time(5*Millisecond) {
		t.Fatalf("Now = %v", w.Now())
	}
}

func TestWorldFinalizeRejectsUnpartitionable(t *testing.T) {
	w := NewWorld(1, 4)
	w.HostClock(0, "a")
	w.HostClock(4, "b") // folds onto shard 0 too
	if err := w.Finalize(); err == nil {
		t.Fatal("want partition error when all entities share one shard")
	}
}

func TestWorldFinalizeRejectsZeroDelayCrossing(t *testing.T) {
	w := NewWorld(1, 2)
	a := w.HostClock(0, "a")
	b := w.HostClock(1, "b")
	w.Crossing("wire", a, b, 0)
	if err := w.Finalize(); err == nil {
		t.Fatal("want error for zero-delay cross-shard link")
	}
}

func TestWorldGlobalEventBarrier(t *testing.T) {
	// A global at time g must observe every shard event with when <= g,
	// including ones at exactly g delivered from another shard's entity.
	// Each counter is owned by one entity; only the global reads both.
	for _, n := range []int{1, 2, 4} {
		w := NewWorld(3, n)
		a := w.HostClock(0, "a")
		b := w.HostClock(1, "b")
		w.Crossing("ab", a, b, time.Millisecond)
		countA, countB := 0, 0
		a.Schedule(Time(2*Millisecond), "ea", func() { countA++ })
		b.Schedule(Time(2*Millisecond), "eb", func() { countB++ })
		a.SendTo(b, Time(2*Millisecond), "x", func(any) { countB++ }, nil)
		sawAtBarrier := -1
		w.ScheduleGlobal(Time(2*Millisecond), "g", func() { sawAtBarrier = countA + countB })
		w.RunFor(3 * time.Millisecond)
		if sawAtBarrier != 3 {
			t.Fatalf("shards=%d: global saw %d of 3 events at its own timestamp", n, sawAtBarrier)
		}
	}
}

func TestWorldRejectsClockCreationWhileRunning(t *testing.T) {
	w := NewWorld(1, 2)
	a := w.HostClock(0, "a")
	w.HostClock(1, "b")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic when deriving a clock mid-run")
		}
	}()
	a.Schedule(Time(Millisecond), "bad", func() { a.Derive("nested") })
	w.RunFor(2 * time.Millisecond)
}
