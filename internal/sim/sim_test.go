package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*Millisecond, "c", func() { got = append(got, 3) })
	s.Schedule(10*Millisecond, "a", func() { got = append(got, 1) })
	s.Schedule(20*Millisecond, "b", func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Second, "e", func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(Second, "x", func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	// Double-cancel must be a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelInterleaved(t *testing.T) {
	s := New(1)
	var got []string
	var e2 *Event
	s.Schedule(10, "a", func() {
		got = append(got, "a")
		s.Cancel(e2)
	})
	e2 = s.Schedule(20, "b", func() { got = append(got, "b") })
	s.Schedule(30, "c", func() { got = append(got, "c") })
	s.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("got %v, want [a c]", got)
	}
}

func TestSchedulingFromWithinEvent(t *testing.T) {
	s := New(1)
	var times []Time
	s.Schedule(10, "outer", func() {
		s.After(5*time.Nanosecond, "inner", func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("inner event at %v, want [15]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(100, "x", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(50, "past", func() {})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, w := range []Time{10, 20, 30, 40} {
		w := w
		s.Schedule(w, "e", func() { fired = append(fired, w) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("Now = %v, want 25", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunFor(3 * time.Second)
	if s.Now() != 3*Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i), "e", func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop ignored)", count)
	}
	s.Run() // resume
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var vals []int64
		var rec func()
		rec = func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) < 50 {
				s.After(time.Duration(s.Rand().Intn(100)+1)*time.Microsecond, "r", rec)
			}
		}
		s.After(time.Microsecond, "r", rec)
		s.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with identical seed diverge at %d: %d != %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestTimerResetStop(t *testing.T) {
	s := New(1)
	count := 0
	tm := NewTimer(s, "t", func() { count++ })
	tm.Reset(10 * time.Millisecond)
	tm.Reset(20 * time.Millisecond) // replaces, not adds
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if tm.Deadline() != 20*Millisecond {
		t.Fatalf("deadline = %v, want 20ms", tm.Deadline())
	}
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
	tm.Reset(5 * time.Millisecond)
	tm.Stop()
	s.Run()
	if count != 1 {
		t.Fatalf("stopped timer fired, count = %d", count)
	}
	if tm.Deadline() != -1 {
		t.Fatalf("stopped timer has deadline %v", tm.Deadline())
	}
}

func TestTimerResetAt(t *testing.T) {
	s := New(1)
	var at Time = -1
	tm := NewTimer(s, "t", func() { at = s.Now() })
	tm.ResetAt(77 * Microsecond)
	s.Run()
	if at != 77*Microsecond {
		t.Fatalf("fired at %v, want 77µs", at)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(s, 100*time.Millisecond, "tick", func() {
		ticks = append(ticks, s.Now())
		if len(ticks) == 5 {
			tk.Stop()
		}
	})
	s.RunUntil(10 * Second)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, want := range []Time{100, 200, 300, 400, 500} {
		if ticks[i] != want*Millisecond {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want*Millisecond)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
	if Second.Add(500*time.Millisecond) != 1500*Millisecond {
		t.Fatal("Add wrong")
	}
	if Second.String() != "1s" {
		t.Fatalf("String = %q", Second.String())
	}
	if Second.Duration() != time.Second {
		t.Fatal("Duration wrong")
	}
}

// Property: for any batch of events with arbitrary non-negative offsets,
// execution order is sorted by time, ties broken FIFO, and the final clock
// equals the max timestamp.
func TestQuickOrderingProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		s := New(7)
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		var max Time
		for i, off := range offsets {
			w := Time(off)
			if w > max {
				max = w
			}
			i := i
			s.Schedule(w, "q", func() { fired = append(fired, rec{s.Now(), i}) })
		}
		s.Run()
		if s.Now() != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].when < fired[i-1].when {
				return false
			}
			if fired[i].when == fired[i-1].when && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement to fire.
func TestQuickCancelProperty(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		s := New(3)
		events := make([]*Event, count)
		firedCount := 0
		for i := 0; i < count; i++ {
			events[i] = s.Schedule(Time(i+1), "q", func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(events[i])
				cancelled++
			}
		}
		s.Run()
		return firedCount == count-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
