package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// World is the sharded simulation driver: N independent event loops
// (shards), each owning the entities of one or more host groups, advanced
// in lockstep windows bounded by the conservative lookahead — the smallest
// propagation delay of any link that crosses shards.
//
// Within a window [t0, t1) every shard runs its own queue on its own
// goroutine. A message sent at time t travels a cross-shard link with
// delay >= lookahead, so it arrives at t + delay >= t0 + lookahead >= t1:
// always in a future window, never in the one being executed. Cross-shard
// sends are therefore posted to a per-destination mailbox and folded into
// the destination queue at the next window barrier, with the (when, ent,
// seq) ordering key computed on the sending side. Because that key is a
// total order derived from build-order entity ordinals — not from shard
// layout — a World run is bit-identical to a single-shard run of the same
// seed, at any shard count.
type World struct {
	seed    int64
	shards  []*Simulator
	inMu    []sync.Mutex
	inbox   [][]crossMsg
	spare   [][]crossMsg
	nextEnt uint64
	used    map[int]bool // shards that own at least one entity

	// lookahead is the min propagation delay over cross-shard links;
	// 0 means no crossings (shards are independent or there is one shard).
	lookahead Time

	now      Time
	running  bool
	buildErr error

	globals globalHeap
	gseq    uint64
	gdone   uint64

	// Execution counters (see RuntimeStats): how the span was carved into
	// windows, how often the shards synchronised, and how much of each
	// barrier each shard spent waiting for the slowest one. All are
	// touched only on the controller goroutine except crossSends (under
	// the destination mailbox lock) and busyScratch (each shard writes
	// its own index between barriers).
	windowsInterior uint64
	windowsBoundary uint64
	windowsIdle     uint64
	barriers        uint64
	crossSends      []uint64 // per destination shard
	timing          bool
	waitNs          []uint64 // per shard, cumulative barrier wait
	busyNs          []uint64 // per shard, cumulative in-window execution
	busyScratch     []int64
}

// crossMsg is a pooled event in flight between shards: the sender computes
// the full ordering key, the receiver replays it through its free list.
type crossMsg struct {
	when     Time
	ent, seq uint64
	name     string
	fn       func(any)
	arg      any
}

// maxTime is the idle sentinel for nextEventTime.
const maxTime = Time(1<<63 - 1)

type globalEvent struct {
	when Time
	seq  uint64
	name string
	fn   func()
}

type globalHeap []globalEvent

func (h globalHeap) Len() int { return len(h) }
func (h globalHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h globalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *globalHeap) Push(x any)   { *h = append(*h, x.(globalEvent)) }
func (h *globalHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = globalEvent{}
	*h = old[:n-1]
	return e
}

// NewWorld creates a sharded world for the given seed. nshards < 1 is
// treated as 1. Shard counts larger than the number of populated groups
// are legal; Finalize rejects layouts where more than one shard was
// requested but the topology folded onto a single shard.
func NewWorld(seed int64, nshards int) *World {
	if nshards < 1 {
		nshards = 1
	}
	w := &World{
		seed:       seed,
		shards:     make([]*Simulator, nshards),
		inMu:       make([]sync.Mutex, nshards),
		inbox:      make([][]crossMsg, nshards),
		spare:      make([][]crossMsg, nshards),
		used:       make(map[int]bool),
		crossSends: make([]uint64, nshards),
	}
	for i := range w.shards {
		w.shards[i] = New(entitySeed(seed, uint64(i)^0xD1B54A32D192ED03))
	}
	return w
}

// Shards reports the number of shard event loops.
func (w *World) Shards() int { return len(w.shards) }

// Now reports the committed global horizon: every event at or before it
// has executed on every shard.
func (w *World) Now() Time { return w.now }

// Processed counts events executed across all shards plus global events.
func (w *World) Processed() uint64 {
	n := w.gdone
	for _, s := range w.shards {
		n += s.processed
	}
	return n
}

// HostClock implements Fabric: hosts in group g land on shard g mod N, so
// distinct groups spread across shards while the assignment stays stable
// for any N. Clocks must be created while the world is paused (topology
// build time or between runs).
func (w *World) HostClock(group int, name string) Clock {
	n := len(w.shards)
	shard := ((group % n) + n) % n
	return w.deriveClock(shard, name)
}

func (w *World) deriveClock(shard int, name string) *entityClock {
	if w.running {
		panic("sim: clocks must be created while the world is paused")
	}
	w.nextEnt++
	w.used[shard] = true
	return &entityClock{
		w:     w,
		sh:    w.shards[shard],
		shard: shard,
		ent:   w.nextEnt,
		rng:   rand.New(rand.NewSource(entitySeed(w.seed, w.nextEnt))),
		name:  name,
	}
}

// Crossing records a link from one clock's shard to another's, carrying
// the link's propagation delay. netem calls it for every link at build
// time; crossings within one shard are ignored. A zero-delay crossing has
// no lookahead and cannot be simulated conservatively, so it poisons the
// world and surfaces from Finalize.
func (w *World) Crossing(name string, from, to Clock, delay time.Duration) {
	_, fs := from.loop()
	_, ts := to.loop()
	if fs == ts {
		return
	}
	if delay <= 0 {
		if w.buildErr == nil {
			w.buildErr = fmt.Errorf("sim: link %q crosses shards with zero propagation delay", name)
		}
		return
	}
	if w.lookahead == 0 || Time(delay) < w.lookahead {
		w.lookahead = Time(delay)
	}
}

// Finalize validates the built topology against the shard layout. It
// returns an error when more than one shard was requested but the
// topology cannot be partitioned (every entity landed on one shard), or
// when a cross-shard link has zero delay. Call it after topology
// construction and before the first Run.
func (w *World) Finalize() error {
	if w.buildErr != nil {
		return w.buildErr
	}
	if len(w.shards) > 1 && len(w.used) < 2 {
		return fmt.Errorf("sim: topology cannot be partitioned across %d shards (all entities share one shard)", len(w.shards))
	}
	return nil
}

// ScheduleGlobal schedules fn to run at when on the controller goroutine
// with every shard parked at a barrier, after all events at or before
// when on every shard. Global events may touch state owned by any shard;
// scenario-level interventions (loss steps, interface flaps) run here.
func (w *World) ScheduleGlobal(when Time, name string, fn func()) {
	if when < w.now {
		panic(fmt.Sprintf("sim: scheduling global %q at %v before now %v", name, when, w.now))
	}
	heap.Push(&w.globals, globalEvent{when: when, seq: w.gseq, name: name, fn: fn})
	w.gseq++
}

// post enqueues a cross-shard message for the destination shard. It is the
// only World state touched from shard goroutines, hence the mutex.
func (w *World) post(shard int, m crossMsg) {
	w.inMu[shard].Lock()
	w.crossSends[shard]++
	w.inbox[shard] = append(w.inbox[shard], m)
	w.inMu[shard].Unlock()
}

// drain folds shard i's mailbox into its event queue. It runs on shard
// i's goroutine at the start of a window, when no sender is active, but
// takes the mailbox lock anyway to pair with post's barrier.
func (w *World) drain(i int) {
	w.inMu[i].Lock()
	msgs := w.inbox[i]
	w.inbox[i] = w.spare[i][:0]
	w.inMu[i].Unlock()
	sh := w.shards[i]
	for k := range msgs {
		m := &msgs[k]
		if m.when < sh.now {
			panic(fmt.Sprintf("sim: cross-shard lookahead violated: %q at %v arrived with shard at %v", m.name, m.when, sh.now))
		}
		sh.scheduleArgKeyed(m.when, m.ent, m.seq, m.name, m.fn, m.arg)
		*m = crossMsg{}
	}
	w.spare[i] = msgs[:0]
}

// phase drains mailboxes and runs every shard up to limit (exclusive or
// inclusive), one goroutine per shard. Panics on shard goroutines are
// captured and re-raised on the controller.
func (w *World) phase(limit Time, inclusive bool) {
	if len(w.shards) == 1 {
		w.drain(0)
		w.shards[0].runWindow(limit, inclusive)
		return
	}
	w.barriers++
	timing := w.timing
	labels := profileLabels.Load()
	var t0 time.Time
	if timing {
		if w.busyScratch == nil {
			w.busyScratch = make([]int64, len(w.shards))
			w.waitNs = make([]uint64, len(w.shards))
			w.busyNs = make([]uint64, len(w.shards))
		}
		t0 = time.Now()
	}
	var wg sync.WaitGroup
	var pmu sync.Mutex
	var pval any
	for i := range w.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
				}
			}()
			run := func() {
				var b0 time.Time
				if timing {
					b0 = time.Now()
				}
				w.drain(i)
				w.shards[i].runWindow(limit, inclusive)
				if timing {
					w.busyScratch[i] = time.Since(b0).Nanoseconds()
				}
			}
			if labels {
				pprofDo(i, run)
			} else {
				run()
			}
		}(i)
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
	if timing {
		span := time.Since(t0).Nanoseconds()
		for i := range w.shards {
			busy := w.busyScratch[i]
			w.busyNs[i] += uint64(busy)
			if d := span - busy; d > 0 {
				w.waitNs[i] += uint64(d)
			}
		}
	}
}

// nextEventTime reports the earliest pending event time across every
// shard queue and every mailbox, or maxTime when the world is idle. It
// runs on the controller with all shards parked, so peeking the heaps is
// safe; the mailbox locks pair with post's barrier.
func (w *World) nextEventTime() Time {
	next := maxTime
	for i, sh := range w.shards {
		if len(sh.queue) > 0 && sh.queue[0].when < next {
			next = sh.queue[0].when
		}
		w.inMu[i].Lock()
		for k := range w.inbox[i] {
			if w.inbox[i][k].when < next {
				next = w.inbox[i][k].when
			}
		}
		w.inMu[i].Unlock()
	}
	return next
}

// RunUntil advances the world to deadline. The loop carves the span into
// conservative windows; the stretch ending at a global event or at the
// deadline itself runs in two phases — strictly below the boundary, then
// a barrier to exchange boundary messages, then inclusively through it —
// so that events exactly at an inclusive boundary still see every
// cross-shard message timestamped at it.
//
// A window may safely extend to E + lookahead, where E is the earliest
// pending event anywhere: no shard executes anything before E, so no
// cross-shard message is sent before E, so none arrives before
// E + lookahead. Window placement therefore tracks where the events are —
// sparse stretches take one window each instead of one per lookahead,
// and a fully idle world jumps straight to the boundary. Windowing never
// affects results (events execute in (when, ent, seq) order regardless
// of how the span is carved), only how often the shards synchronise.
func (w *World) RunUntil(deadline Time) {
	if deadline < w.now {
		return
	}
	w.running = true
	defer func() { w.running = false }()
	for {
		limit := deadline
		if len(w.globals) > 0 && w.globals[0].when < limit {
			limit = w.globals[0].when
		}
		idle := false
		if len(w.shards) > 1 {
			next := w.nextEventTime()
			if next < w.now {
				next = w.now
			}
			if w.lookahead > 0 && next < limit && limit-next > w.lookahead {
				// Interior window: half-open [now, next+lookahead).
				// Arrivals land at >= next+lookahead, in a later window.
				t1 := next + w.lookahead
				w.windowsInterior++
				w.phase(t1, false)
				w.now = t1
				continue
			}
			idle = next > limit
		}
		// Boundary stretch ending at limit (a global event or the
		// deadline): run below it, then through it inclusively. Messages
		// posted below limit arrive at >= limit (the interior loop above
		// guarantees limit-next <= lookahead here) and are drained before
		// the inclusive pass; messages posted at exactly limit arrive at
		// > limit and stay queued for the next call. When nothing is
		// pending at or before limit, just park the shard clocks — the
		// two phases would be empty.
		if idle {
			w.windowsIdle++
			for _, sh := range w.shards {
				if sh.now < limit {
					sh.now = limit
				}
			}
		} else {
			w.windowsBoundary++
			w.phase(limit, false)
			w.phase(limit, true)
		}
		w.now = limit
		for len(w.globals) > 0 && w.globals[0].when <= limit {
			g := heap.Pop(&w.globals).(globalEvent)
			w.gdone++
			g.fn()
		}
		if limit >= deadline {
			break
		}
	}
}

// RunFor advances the world by d.
func (w *World) RunFor(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w.RunUntil(w.now.Add(d))
}

// RuntimeStats snapshots the world's execution counters: window carving,
// barrier synchronisation, per-shard event and cross-shard-send counts,
// per-shard barrier timing (zero unless EnableBarrierTiming), and the
// pooled-event free-list traffic of every shard loop. Call it with the
// world parked (between RunUntil calls).
type RuntimeStats struct {
	// Window carving of the simulated span (how RunUntil synchronised,
	// not what the model did): interior lookahead stretches, boundary
	// two-phase windows, and idle jumps.
	WindowsInterior uint64
	WindowsBoundary uint64
	WindowsIdle     uint64
	// Barriers counts shard synchronisation points (phase executions on
	// a multi-shard world).
	Barriers uint64
	// Globals counts executed global (all-shards-parked) events.
	Globals uint64
	// ShardEvents is the per-shard executed event count.
	ShardEvents []uint64
	// CrossSends is the count of cross-shard messages by DESTINATION
	// shard.
	CrossSends []uint64
	// BarrierWaitNs and BusyNs split each shard's wall-clock time inside
	// barriers into waiting-for-the-slowest-shard and executing-events.
	// Populated only when EnableBarrierTiming was on.
	BarrierWaitNs []uint64
	BusyNs        []uint64
	// Pooled-event free-list traffic per shard loop.
	EventPoolGets []uint64
	EventPoolPuts []uint64
	EventPoolNews []uint64
}

// RuntimeStats implements the snapshot described on the type.
func (w *World) RuntimeStats() RuntimeStats {
	n := len(w.shards)
	st := RuntimeStats{
		WindowsInterior: w.windowsInterior,
		WindowsBoundary: w.windowsBoundary,
		WindowsIdle:     w.windowsIdle,
		Barriers:        w.barriers,
		Globals:         w.gdone,
		ShardEvents:     make([]uint64, n),
		CrossSends:      append([]uint64(nil), w.crossSends...),
		EventPoolGets:   make([]uint64, n),
		EventPoolPuts:   make([]uint64, n),
		EventPoolNews:   make([]uint64, n),
	}
	for i, sh := range w.shards {
		st.ShardEvents[i] = sh.processed
		st.EventPoolGets[i], st.EventPoolPuts[i], st.EventPoolNews[i] = sh.EventPoolStats()
	}
	if w.waitNs != nil {
		st.BarrierWaitNs = append([]uint64(nil), w.waitNs...)
		st.BusyNs = append([]uint64(nil), w.busyNs...)
	}
	return st
}

// EnableBarrierTiming turns on per-shard wall-clock measurement of every
// barrier (two time.Now calls per shard per window). Off by default so
// untimed runs pay nothing; metrics-enabled runs switch it on.
func (w *World) EnableBarrierTiming(on bool) { w.timing = on }
