package sim

import (
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestScheduleArgAllocFree pins the event free list: pooled events are
// recycled after firing, so a steady stream of ScheduleArg events costs
// no heap allocation once warm.
func TestScheduleArgAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	s := New(1)
	n := 0
	fn := func(any) { n++ }
	tick := func() {
		s.ScheduleArg(s.Now().Add(time.Microsecond), "tick", fn, nil)
		s.RunFor(time.Millisecond)
	}
	for i := 0; i < 64; i++ {
		tick()
	}
	avg := testing.AllocsPerRun(2000, tick)
	if n < 64 {
		t.Fatal("events did not fire")
	}
	if avg > 0.05 {
		t.Fatalf("pooled event schedule/fire allocates %.2f allocs/op, want 0", avg)
	}
}

// TestTimerResetAllocFree pins the owned-event re-arm path: a Timer reuses
// one Event for its whole lifetime, so Reset/fire cycles do not allocate
// (the subflow RTO and pacing timers run this path per segment).
func TestTimerResetAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	s := New(1)
	fired := 0
	tm := NewTimer(s, "t", func() { fired++ })
	cycle := func() {
		tm.Reset(time.Microsecond)
		tm.Reset(2 * time.Microsecond) // re-arm while pending (heap.Fix path)
		s.RunFor(time.Millisecond)
	}
	for i := 0; i < 16; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(2000, cycle)
	if fired < 16 {
		t.Fatal("timer did not fire")
	}
	if avg > 0.05 {
		t.Fatalf("timer reset/fire allocates %.2f allocs/op, want 0", avg)
	}
}

// TestScheduleArgOrdering checks pooled events share the same global FIFO
// tie-break as classic events: equal timestamps fire in schedule order.
func TestScheduleArgOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(10, "a", func() { got = append(got, 1) })
	s.ScheduleArg(10, "b", func(any) { got = append(got, 2) }, nil)
	s.Schedule(10, "c", func() { got = append(got, 3) })
	s.ScheduleArg(5, "d", func(any) { got = append(got, 0) }, nil)
	s.Run()
	for i, v := range got {
		if i != v {
			t.Fatalf("fire order %v, want [0 1 2 3]", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("fired %d events, want 4", len(got))
	}
}

// TestScheduleArgPassesArg checks the per-event state pointer round-trips.
func TestScheduleArgPassesArg(t *testing.T) {
	s := New(1)
	type box struct{ v int }
	b := &box{7}
	var seen *box
	s.ScheduleArg(1, "x", func(a any) { seen = a.(*box) }, b)
	s.Run()
	if seen != b {
		t.Fatal("arg did not round-trip through the pooled event")
	}
}

// TestTimerStopWhilePending re-checks Stop/Armed semantics on the
// owned-event implementation.
func TestTimerStopWhilePending(t *testing.T) {
	s := New(1)
	fired := false
	tm := NewTimer(s, "t", func() { fired = true })
	tm.Reset(time.Millisecond)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	s.RunFor(10 * time.Millisecond)
	if fired {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(time.Millisecond)
	s.RunFor(10 * time.Millisecond)
	if !fired {
		t.Fatal("re-armed timer did not fire")
	}
}
