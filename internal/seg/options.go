package seg

import (
	"fmt"
	"net/netip"
)

// Subtype identifies an MPTCP option subtype (RFC 6824 §3).
type Subtype uint8

// MPTCP option subtypes.
const (
	SubMPCapable  Subtype = 0x0
	SubMPJoin     Subtype = 0x1
	SubDSS        Subtype = 0x2
	SubAddAddr    Subtype = 0x3
	SubRemoveAddr Subtype = 0x4
	SubMPPrio     Subtype = 0x5
	SubMPFail     Subtype = 0x6
	SubFastClose  Subtype = 0x7
)

// String names the subtype.
func (s Subtype) String() string {
	switch s {
	case SubMPCapable:
		return "MP_CAPABLE"
	case SubMPJoin:
		return "MP_JOIN"
	case SubDSS:
		return "DSS"
	case SubAddAddr:
		return "ADD_ADDR"
	case SubRemoveAddr:
		return "REMOVE_ADDR"
	case SubMPPrio:
		return "MP_PRIO"
	case SubMPFail:
		return "MP_FAIL"
	case SubFastClose:
		return "MP_FASTCLOSE"
	}
	return fmt.Sprintf("MPTCP(0x%x)", uint8(s))
}

// Option is one TCP option carried by a segment: the MPTCP options (kind
// 30) plus classic SACK (kind 5). Each implementation knows its wire
// length and encoding.
type Option interface {
	Subtype() Subtype
	kind() uint8
	wireLen() int
	encode(b []byte) // b has wireLen() bytes; b[0]/b[1] prefilled with kind/len
	clone() Option
	fmt.Stringer
}

// SubSACK is the pseudo-subtype under which the classic TCP SACK option is
// addressable via Segment.Option (real SACK has no MPTCP subtype; 0xE is
// outside the RFC 6824 range).
const SubSACK Subtype = 0xE

// SackBlock is one selective-acknowledgement range [Lo, Hi).
type SackBlock struct {
	Lo, Hi uint32
}

// SACK is the classic TCP selective acknowledgement option (kind 5,
// RFC 2018), carrying up to 4 out-of-order ranges the receiver holds. The
// subflow engine needs it for efficient burst-loss recovery, like the
// Linux stack the paper's experiments ran on.
type SACK struct {
	Blocks []SackBlock
}

// Subtype implements Option.
func (*SACK) Subtype() Subtype { return SubSACK }

func (*SACK) kind() uint8 { return optKindSACK }

func (o *SACK) wireLen() int { return 2 + 8*len(o.Blocks) }

func (o *SACK) encode(b []byte) {
	off := 2
	for _, blk := range o.Blocks {
		be32put(b[off:], blk.Lo)
		be32put(b[off+4:], blk.Hi)
		off += 8
	}
}

func (o *SACK) clone() Option {
	return &SACK{Blocks: append([]SackBlock(nil), o.Blocks...)}
}

// String implements fmt.Stringer.
func (o *SACK) String() string { return fmt.Sprintf("SACK%v", o.Blocks) }

// MPCapable is the MP_CAPABLE option (subtype 0). On a SYN it carries the
// sender's key; on the SYN+ACK the receiver's key; on the third ACK both.
type MPCapable struct {
	Version     uint8
	ChecksumReq bool // "A" flag
	SenderKey   uint64
	ReceiverKey uint64 // present only on the third ACK
	HasReceiver bool
}

// Subtype implements Option.
func (*MPCapable) Subtype() Subtype { return SubMPCapable }

func (*MPCapable) kind() uint8 { return optKindMPTCP }

func (o *MPCapable) wireLen() int {
	if o.HasReceiver {
		return 20
	}
	return 12
}

func (o *MPCapable) encode(b []byte) {
	b[2] = byte(SubMPCapable)<<4 | (o.Version & 0xf)
	var flags uint8 = 0x01 // "H": HMAC-SHA1 crypto algorithm
	if o.ChecksumReq {
		flags |= 0x80
	}
	b[3] = flags
	be64put(b[4:], o.SenderKey)
	if o.HasReceiver {
		be64put(b[12:], o.ReceiverKey)
	}
}

func (o *MPCapable) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *MPCapable) String() string {
	if o.HasReceiver {
		return fmt.Sprintf("MP_CAPABLE(kA=%x,kB=%x)", o.SenderKey, o.ReceiverKey)
	}
	return fmt.Sprintf("MP_CAPABLE(k=%x)", o.SenderKey)
}

// MPJoin is the MP_JOIN option (subtype 1). Its shape differs on the SYN
// (token+nonce), SYN+ACK (truncated HMAC+nonce) and third ACK (full HMAC).
type MPJoin struct {
	Backup bool // "B" flag: request this subflow be treated as backup
	AddrID uint8

	// SYN form.
	Token uint32
	Nonce uint32

	// SYN+ACK form.
	TruncHMAC uint64

	// Third-ACK form.
	FullHMAC [20]byte

	// Form disambiguates the three encodings (the real protocol infers it
	// from the TCP flags and option length; we keep it explicit and verify
	// consistency when unmarshalling).
	Form JoinForm
}

// JoinForm selects which of the three MP_JOIN encodings is present.
type JoinForm uint8

// The three MP_JOIN message forms.
const (
	JoinSYN JoinForm = iota
	JoinSYNACK
	JoinACK
)

// Subtype implements Option.
func (*MPJoin) Subtype() Subtype { return SubMPJoin }

func (*MPJoin) kind() uint8 { return optKindMPTCP }

func (o *MPJoin) wireLen() int {
	switch o.Form {
	case JoinSYN:
		return 12
	case JoinSYNACK:
		return 16
	default:
		return 24
	}
}

func (o *MPJoin) encode(b []byte) {
	var flags uint8
	if o.Backup {
		flags = 0x01
	}
	b[2] = byte(SubMPJoin)<<4 | flags
	b[3] = o.AddrID
	switch o.Form {
	case JoinSYN:
		be32put(b[4:], o.Token)
		be32put(b[8:], o.Nonce)
	case JoinSYNACK:
		be64put(b[4:], o.TruncHMAC)
		be32put(b[12:], o.Nonce)
	case JoinACK:
		copy(b[4:], o.FullHMAC[:])
	}
}

func (o *MPJoin) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *MPJoin) String() string {
	switch o.Form {
	case JoinSYN:
		return fmt.Sprintf("MP_JOIN(tok=%x,id=%d,backup=%v)", o.Token, o.AddrID, o.Backup)
	case JoinSYNACK:
		return fmt.Sprintf("MP_JOIN(hmac=%x,id=%d)", o.TruncHMAC, o.AddrID)
	default:
		return "MP_JOIN(ack)"
	}
}

// DSS is the Data Sequence Signal option (subtype 2). It carries the
// connection-level acknowledgement and/or the mapping from subflow sequence
// space to data sequence space. This reproduction always uses 8-byte data
// sequence numbers and data ACKs (the "m"/"a" flags clear means 8 bytes per
// our encoding choice below).
type DSS struct {
	HasDataAck bool
	DataAck    uint64

	HasMap     bool
	DataSeq    uint64
	SubflowSeq uint32 // relative to the subflow's initial sequence number
	MapLen     uint16
	DataFIN    bool
}

// Subtype implements Option.
func (*DSS) Subtype() Subtype { return SubDSS }

func (*DSS) kind() uint8 { return optKindMPTCP }

func (o *DSS) wireLen() int {
	n := 4
	if o.HasDataAck {
		n += 8
	}
	if o.HasMap {
		n += 8 + 4 + 2 + 2 // DSN + subflow seq + len + zero checksum
	}
	return n
}

func (o *DSS) encode(b []byte) {
	b[2] = byte(SubDSS) << 4
	var flags uint8
	if o.DataFIN {
		flags |= 0x10 // F
	}
	if o.HasMap {
		flags |= 0x04 | 0x08 // M + m(8-byte DSN)
	}
	if o.HasDataAck {
		flags |= 0x01 | 0x02 // A + a(8-byte ack)
	}
	b[3] = flags
	off := 4
	if o.HasDataAck {
		be64put(b[off:], o.DataAck)
		off += 8
	}
	if o.HasMap {
		be64put(b[off:], o.DataSeq)
		be32put(b[off+8:], o.SubflowSeq)
		be16put(b[off+12:], o.MapLen)
		be16put(b[off+14:], 0) // checksum unused (we do not negotiate it)
	}
}

func (o *DSS) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *DSS) String() string {
	s := "DSS("
	if o.HasDataAck {
		s += fmt.Sprintf("ack=%d ", o.DataAck)
	}
	if o.HasMap {
		s += fmt.Sprintf("map=%d+%d@%d ", o.DataSeq, o.MapLen, o.SubflowSeq)
	}
	if o.DataFIN {
		s += "FIN "
	}
	return s[:len(s)-1] + ")"
}

// AddAddr is the ADD_ADDR option (subtype 3): the sender announces an
// additional address (and optionally port) the peer may join to.
type AddAddr struct {
	AddrID  uint8
	Addr    netip.Addr
	Port    uint16 // 0 means not announced
	HasPort bool
}

// Subtype implements Option.
func (*AddAddr) Subtype() Subtype { return SubAddAddr }

func (*AddAddr) kind() uint8 { return optKindMPTCP }

func (o *AddAddr) wireLen() int {
	n := 4
	if o.Addr.Is4() {
		n += 4
	} else {
		n += 16
	}
	if o.HasPort {
		n += 2
	}
	return n
}

func (o *AddAddr) encode(b []byte) {
	ipver := uint8(6)
	if o.Addr.Is4() {
		ipver = 4
	}
	b[2] = byte(SubAddAddr)<<4 | ipver
	b[3] = o.AddrID
	raw := o.Addr.AsSlice()
	copy(b[4:], raw)
	if o.HasPort {
		be16put(b[4+len(raw):], o.Port)
	}
}

func (o *AddAddr) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *AddAddr) String() string {
	if o.HasPort {
		return fmt.Sprintf("ADD_ADDR(%d,%s:%d)", o.AddrID, o.Addr, o.Port)
	}
	return fmt.Sprintf("ADD_ADDR(%d,%s)", o.AddrID, o.Addr)
}

// RemoveAddr is the REMOVE_ADDR option (subtype 4).
type RemoveAddr struct {
	AddrIDs []uint8
}

// Subtype implements Option.
func (*RemoveAddr) Subtype() Subtype { return SubRemoveAddr }

func (*RemoveAddr) kind() uint8 { return optKindMPTCP }

func (o *RemoveAddr) wireLen() int { return 3 + len(o.AddrIDs) }

func (o *RemoveAddr) encode(b []byte) {
	b[2] = byte(SubRemoveAddr) << 4
	copy(b[3:], o.AddrIDs)
}

func (o *RemoveAddr) clone() Option {
	c := &RemoveAddr{AddrIDs: append([]uint8(nil), o.AddrIDs...)}
	return c
}

// String implements fmt.Stringer.
func (o *RemoveAddr) String() string { return fmt.Sprintf("REMOVE_ADDR(%v)", o.AddrIDs) }

// MPPrio is the MP_PRIO option (subtype 5): dynamically change a subflow's
// backup priority, optionally for another subflow identified by address ID.
type MPPrio struct {
	Backup    bool
	AddrID    uint8
	HasAddrID bool
}

// Subtype implements Option.
func (*MPPrio) Subtype() Subtype { return SubMPPrio }

func (*MPPrio) kind() uint8 { return optKindMPTCP }

func (o *MPPrio) wireLen() int {
	if o.HasAddrID {
		return 4
	}
	return 3
}

func (o *MPPrio) encode(b []byte) {
	var flags uint8
	if o.Backup {
		flags = 0x01
	}
	b[2] = byte(SubMPPrio)<<4 | flags
	if o.HasAddrID {
		b[3] = o.AddrID
	}
}

func (o *MPPrio) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *MPPrio) String() string { return fmt.Sprintf("MP_PRIO(backup=%v)", o.Backup) }

// MPFail is the MP_FAIL option (subtype 6), sent on checksum failure.
type MPFail struct {
	DataSeq uint64
}

// Subtype implements Option.
func (*MPFail) Subtype() Subtype { return SubMPFail }

func (*MPFail) kind() uint8 { return optKindMPTCP }

func (o *MPFail) wireLen() int { return 12 }

func (o *MPFail) encode(b []byte) {
	b[2] = byte(SubMPFail) << 4
	b[3] = 0
	be64put(b[4:], o.DataSeq)
}

func (o *MPFail) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *MPFail) String() string { return fmt.Sprintf("MP_FAIL(dsn=%d)", o.DataSeq) }

// FastClose is the MP_FASTCLOSE option (subtype 7): abruptly close the whole
// connection, proving knowledge of the peer's key.
type FastClose struct {
	ReceiverKey uint64
}

// Subtype implements Option.
func (*FastClose) Subtype() Subtype { return SubFastClose }

func (*FastClose) kind() uint8 { return optKindMPTCP }

func (o *FastClose) wireLen() int { return 12 }

func (o *FastClose) encode(b []byte) {
	b[2] = byte(SubFastClose) << 4
	b[3] = 0
	be64put(b[4:], o.ReceiverKey)
}

func (o *FastClose) clone() Option { c := *o; return &c }

// String implements fmt.Stringer.
func (o *FastClose) String() string { return fmt.Sprintf("MP_FASTCLOSE(k=%x)", o.ReceiverKey) }
