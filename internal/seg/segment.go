// Package seg models TCP segments and the Multipath TCP options defined by
// RFC 6824 (MP_CAPABLE, MP_JOIN, DSS, ADD_ADDR, REMOVE_ADDR, MP_PRIO,
// MP_FAIL, MP_FASTCLOSE).
//
// Segments have two representations, in the style of gopacket's layered
// decode: an in-memory struct used by the simulator (cheap, no allocation of
// payload bytes — data is carried as a length plus a data-sequence mapping),
// and a faithful binary wire form produced by Marshal and consumed by
// Unmarshal. The wire form is what crosses the socket transport in
// cmd/smappd and what all round-trip property tests exercise.
package seg

import (
	"fmt"
	"net/netip"
	"strings"
)

// Flags is the TCP flag byte (we model the six classical flags).
type Flags uint8

// TCP header flags.
const (
	FIN Flags = 1 << 0
	SYN Flags = 1 << 1
	RST Flags = 1 << 2
	PSH Flags = 1 << 3
	ACK Flags = 1 << 4
	URG Flags = 1 << 5
)

// String renders the flag set like "SYN|ACK".
func (f Flags) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Flags
		name string
	}{{SYN, "SYN"}, {ACK, "ACK"}, {FIN, "FIN"}, {RST, "RST"}, {PSH, "PSH"}, {URG, "URG"}} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// FourTuple identifies a TCP subflow. It is the unit the paper's subflow
// controller manipulates: subflows are created from and removed by an
// arbitrary 4-tuple.
type FourTuple struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the tuple as seen from the other end.
func (ft FourTuple) Reverse() FourTuple {
	return FourTuple{SrcIP: ft.DstIP, DstIP: ft.SrcIP, SrcPort: ft.DstPort, DstPort: ft.SrcPort}
}

// String renders "src:port->dst:port".
func (ft FourTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", ft.SrcIP, ft.SrcPort, ft.DstIP, ft.DstPort)
}

// Segment is one TCP segment, possibly carrying MPTCP options.
//
// PayloadLen is the number of application bytes carried; the simulator does
// not materialise payload bytes (contents are tracked by data-sequence
// ranges), but Marshal emits PayloadLen zero bytes so wire size is honest.
type Segment struct {
	Tuple      FourTuple
	Seq        uint32 // subflow-level sequence number of first payload byte
	Ack        uint32 // subflow-level cumulative acknowledgement (valid if ACK set)
	Flags      Flags
	Window     uint32 // receive window in bytes (already scaled)
	PayloadLen int
	Options    []Option
}

// SeqEnd reports the subflow sequence number after this segment: Seq plus
// payload, plus one if SYN or FIN consume sequence space.
func (s *Segment) SeqEnd() uint32 {
	end := s.Seq + uint32(s.PayloadLen)
	if s.Flags&SYN != 0 {
		end++
	}
	if s.Flags&FIN != 0 {
		end++
	}
	return end
}

// Is reports whether all flags in mask are set.
func (s *Segment) Is(mask Flags) bool { return s.Flags&mask == mask }

// Option returns the first MPTCP option with the given subtype, or nil.
func (s *Segment) Option(sub Subtype) Option {
	for _, o := range s.Options {
		if o.Subtype() == sub {
			return o
		}
	}
	return nil
}

// MPCapable returns the segment's MP_CAPABLE option, if any.
func (s *Segment) MPCapable() *MPCapable {
	if o := s.Option(SubMPCapable); o != nil {
		return o.(*MPCapable)
	}
	return nil
}

// MPJoin returns the segment's MP_JOIN option, if any.
func (s *Segment) MPJoin() *MPJoin {
	if o := s.Option(SubMPJoin); o != nil {
		return o.(*MPJoin)
	}
	return nil
}

// DSS returns the segment's DSS option, if any.
func (s *Segment) DSS() *DSS {
	if o := s.Option(SubDSS); o != nil {
		return o.(*DSS)
	}
	return nil
}

// SACK returns the segment's selective-acknowledgement option, if any.
func (s *Segment) SACK() *SACK {
	if o := s.Option(SubSACK); o != nil {
		return o.(*SACK)
	}
	return nil
}

// WireSize reports the on-the-wire TCP size in bytes: the 20-byte base
// header, options padded to a multiple of 4, and the payload.
func (s *Segment) WireSize() int {
	opt := 0
	for _, o := range s.Options {
		opt += o.wireLen()
	}
	opt = (opt + 3) &^ 3
	return headerLen + opt + s.PayloadLen
}

// Clone returns a deep copy (options are copied too). The simulator never
// shares segment structs across hosts, mirroring the copy a real network
// performs.
func (s *Segment) Clone() *Segment {
	c := *s
	if len(s.Options) > 0 {
		c.Options = make([]Option, len(s.Options))
		for i, o := range s.Options {
			c.Options[i] = o.clone()
		}
	}
	return &c
}

// String renders a compact human-readable summary, used by traces.
func (s *Segment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] seq=%d ack=%d len=%d", s.Tuple, s.Flags, s.Seq, s.Ack, s.PayloadLen)
	for _, o := range s.Options {
		fmt.Fprintf(&b, " %s", o)
	}
	return b.String()
}
