// Package seg models TCP segments and the Multipath TCP options defined by
// RFC 6824 (MP_CAPABLE, MP_JOIN, DSS, ADD_ADDR, REMOVE_ADDR, MP_PRIO,
// MP_FAIL, MP_FASTCLOSE).
//
// Segments have two representations, in the style of gopacket's layered
// decode: an in-memory struct used by the simulator (cheap, no allocation of
// payload bytes — data is carried as a length plus a data-sequence mapping),
// and a faithful binary wire form produced by Marshal and consumed by
// Unmarshal. The wire form is what crosses the socket transport in
// cmd/smappd and what all round-trip property tests exercise.
package seg

import (
	"fmt"
	"net/netip"
	"strings"
)

// Flags is the TCP flag byte (we model the six classical flags).
type Flags uint8

// TCP header flags.
const (
	FIN Flags = 1 << 0
	SYN Flags = 1 << 1
	RST Flags = 1 << 2
	PSH Flags = 1 << 3
	ACK Flags = 1 << 4
	URG Flags = 1 << 5
)

// String renders the flag set like "SYN|ACK".
func (f Flags) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Flags
		name string
	}{{SYN, "SYN"}, {ACK, "ACK"}, {FIN, "FIN"}, {RST, "RST"}, {PSH, "PSH"}, {URG, "URG"}} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// FourTuple identifies a TCP subflow. It is the unit the paper's subflow
// controller manipulates: subflows are created from and removed by an
// arbitrary 4-tuple.
type FourTuple struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
}

// Reverse returns the tuple as seen from the other end.
func (ft FourTuple) Reverse() FourTuple {
	return FourTuple{SrcIP: ft.DstIP, DstIP: ft.SrcIP, SrcPort: ft.DstPort, DstPort: ft.SrcPort}
}

// String renders "src:port->dst:port".
func (ft FourTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", ft.SrcIP, ft.SrcPort, ft.DstIP, ft.DstPort)
}

// Segment is one TCP segment, possibly carrying MPTCP options.
//
// PayloadLen is the number of application bytes carried; the simulator does
// not materialise payload bytes (contents are tracked by data-sequence
// ranges), but Marshal emits PayloadLen zero bytes so wire size is honest.
//
// Segments carry inline storage for the options of the hot data path (one
// DSS, one SACK, up to four option slots), claimed via ScratchDSS /
// ScratchSACK, so building, cloning and in-place unmarshalling a typical
// segment performs no heap allocation. A segment whose scratch options are
// in use must not be copied by value (the internal pointers would alias);
// use Clone or CopyFrom.
type Segment struct {
	Tuple      FourTuple
	Seq        uint32 // subflow-level sequence number of first payload byte
	Ack        uint32 // subflow-level cumulative acknowledgement (valid if ACK set)
	Flags      Flags
	Window     uint32 // receive window in bytes (already scaled)
	PayloadLen int
	Options    []Option

	optBack [4]Option // inline backing array for Options
	dss     DSS       // inline storage claimed by ScratchDSS
	sack    SACK      // inline storage claimed by ScratchSACK
}

// Reset returns the segment to its zero state while retaining its inline
// option capacity, making it safe to reuse via a Pool: no field of a
// previous life survives.
func (s *Segment) Reset() {
	s.Tuple = FourTuple{}
	s.Seq, s.Ack, s.Window = 0, 0, 0
	s.Flags = 0
	s.PayloadLen = 0
	for i := range s.optBack {
		s.optBack[i] = nil
	}
	s.Options = s.optBack[:0]
	s.dss = DSS{}
	s.sack.Blocks = s.sack.Blocks[:0]
}

// ScratchDSS zeroes the segment's inline DSS option, appends it to
// Options and returns it for the caller to fill — the allocation-free way
// to attach the per-segment DSS. Valid once per segment lifetime (until
// the next Reset).
func (s *Segment) ScratchDSS() *DSS {
	s.dss = DSS{}
	if s.Options == nil {
		s.Options = s.optBack[:0]
	}
	s.Options = append(s.Options, &s.dss)
	return &s.dss
}

// ScratchSACK empties and appends the segment's inline SACK option,
// retaining the block capacity of previous lives. Valid once per segment
// lifetime (until the next Reset).
func (s *Segment) ScratchSACK() *SACK {
	s.sack.Blocks = s.sack.Blocks[:0]
	if s.Options == nil {
		s.Options = s.optBack[:0]
	}
	s.Options = append(s.Options, &s.sack)
	return &s.sack
}

// CopyFrom deep-copies src into s, reusing s's inline option storage: the
// first DSS and first SACK of src land in s's scratch options, so copying
// a data segment does not allocate. s is Reset first.
func (s *Segment) CopyFrom(src *Segment) {
	s.Reset()
	s.Tuple = src.Tuple
	s.Seq, s.Ack = src.Seq, src.Ack
	s.Flags = src.Flags
	s.Window = src.Window
	s.PayloadLen = src.PayloadLen
	usedDSS, usedSACK := false, false
	for _, o := range src.Options {
		switch o := o.(type) {
		case *DSS:
			if !usedDSS {
				usedDSS = true
				*s.ScratchDSS() = *o
				continue
			}
		case *SACK:
			if !usedSACK {
				usedSACK = true
				sk := s.ScratchSACK()
				sk.Blocks = append(sk.Blocks, o.Blocks...)
				continue
			}
		}
		s.Options = append(s.Options, o.clone())
	}
}

// SeqEnd reports the subflow sequence number after this segment: Seq plus
// payload, plus one if SYN or FIN consume sequence space.
func (s *Segment) SeqEnd() uint32 {
	end := s.Seq + uint32(s.PayloadLen)
	if s.Flags&SYN != 0 {
		end++
	}
	if s.Flags&FIN != 0 {
		end++
	}
	return end
}

// Is reports whether all flags in mask are set.
func (s *Segment) Is(mask Flags) bool { return s.Flags&mask == mask }

// Option returns the first MPTCP option with the given subtype, or nil.
func (s *Segment) Option(sub Subtype) Option {
	for _, o := range s.Options {
		if o.Subtype() == sub {
			return o
		}
	}
	return nil
}

// MPCapable returns the segment's MP_CAPABLE option, if any.
func (s *Segment) MPCapable() *MPCapable {
	if o := s.Option(SubMPCapable); o != nil {
		return o.(*MPCapable)
	}
	return nil
}

// MPJoin returns the segment's MP_JOIN option, if any.
func (s *Segment) MPJoin() *MPJoin {
	if o := s.Option(SubMPJoin); o != nil {
		return o.(*MPJoin)
	}
	return nil
}

// DSS returns the segment's DSS option, if any.
func (s *Segment) DSS() *DSS {
	if o := s.Option(SubDSS); o != nil {
		return o.(*DSS)
	}
	return nil
}

// SACK returns the segment's selective-acknowledgement option, if any.
func (s *Segment) SACK() *SACK {
	if o := s.Option(SubSACK); o != nil {
		return o.(*SACK)
	}
	return nil
}

// WireSize reports the on-the-wire TCP size in bytes: the 20-byte base
// header, options padded to a multiple of 4, and the payload.
func (s *Segment) WireSize() int {
	opt := 0
	for _, o := range s.Options {
		opt += o.wireLen()
	}
	opt = (opt + 3) &^ 3
	return headerLen + opt + s.PayloadLen
}

// Clone returns a deep copy (options are copied too) drawn from the
// shared segment pool. The simulator never shares segment structs across
// hosts, mirroring the copy a real network performs; ownership of the
// clone transfers to the caller.
func (s *Segment) Clone() *Segment {
	return Shared.Clone(s)
}

// Equal reports semantic equality: header fields and options compare by
// value, regardless of whether inline scratch or heap storage backs them.
func (s *Segment) Equal(o *Segment) bool {
	if s.Tuple != o.Tuple || s.Seq != o.Seq || s.Ack != o.Ack || s.Flags != o.Flags ||
		s.Window != o.Window || s.PayloadLen != o.PayloadLen || len(s.Options) != len(o.Options) {
		return false
	}
	for i := range s.Options {
		if !optionEqual(s.Options[i], o.Options[i]) {
			return false
		}
	}
	return true
}

// optionEqual compares two options by value.
func optionEqual(a, b Option) bool {
	switch a := a.(type) {
	case *DSS:
		b, ok := b.(*DSS)
		return ok && *a == *b
	case *SACK:
		b, ok := b.(*SACK)
		if !ok || len(a.Blocks) != len(b.Blocks) {
			return false
		}
		for i := range a.Blocks {
			if a.Blocks[i] != b.Blocks[i] {
				return false
			}
		}
		return true
	case *MPCapable:
		b, ok := b.(*MPCapable)
		return ok && *a == *b
	case *MPJoin:
		b, ok := b.(*MPJoin)
		return ok && *a == *b
	case *AddAddr:
		b, ok := b.(*AddAddr)
		return ok && *a == *b
	case *RemoveAddr:
		b, ok := b.(*RemoveAddr)
		if !ok || len(a.AddrIDs) != len(b.AddrIDs) {
			return false
		}
		for i := range a.AddrIDs {
			if a.AddrIDs[i] != b.AddrIDs[i] {
				return false
			}
		}
		return true
	case *MPPrio:
		b, ok := b.(*MPPrio)
		return ok && *a == *b
	case *MPFail:
		b, ok := b.(*MPFail)
		return ok && *a == *b
	case *FastClose:
		b, ok := b.(*FastClose)
		return ok && *a == *b
	}
	return false
}

// String renders a compact human-readable summary, used by traces.
func (s *Segment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] seq=%d ack=%d len=%d", s.Tuple, s.Flags, s.Seq, s.Ack, s.PayloadLen)
	for _, o := range s.Options {
		fmt.Fprintf(&b, " %s", o)
	}
	return b.String()
}
