package seg

import (
	"testing"

	"repro/internal/testutil"
)

// segForAlloc builds a typical data segment (DSS with map + data ack) the
// way the subflow hot path does: pooled shell, scratch DSS.
func segForAlloc() *Segment {
	s := Shared.Get()
	s.Tuple = tuple()
	s.Seq, s.Ack = 1000, 2000
	s.Flags = ACK | PSH
	s.Window = 4 << 20
	s.PayloadLen = 1380
	d := s.ScratchDSS()
	d.HasDataAck, d.DataAck = true, 1<<40
	d.HasMap, d.DataSeq, d.SubflowSeq, d.MapLen = true, 1<<41, 77, 1380
	return s
}

func TestPoolResetClears(t *testing.T) {
	s := segForAlloc()
	sk := s.ScratchSACK()
	sk.Blocks = append(sk.Blocks, SackBlock{Lo: 1, Hi: 2})
	Shared.Put(s)
	g := Shared.Get()
	defer Shared.Put(g)
	// g may or may not be the same object (sync.Pool), but any pooled
	// segment must come out pristine.
	if g.Seq != 0 || g.Ack != 0 || g.Flags != 0 || g.Window != 0 || g.PayloadLen != 0 {
		t.Fatalf("pooled segment not reset: %+v", g)
	}
	if len(g.Options) != 0 {
		t.Fatalf("pooled segment kept %d options", len(g.Options))
	}
	if g.Tuple != (FourTuple{}) {
		t.Fatalf("pooled segment kept tuple %v", g.Tuple)
	}
}

func TestPooledBuildAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	// Warm the pool.
	for i := 0; i < 64; i++ {
		Shared.Put(segForAlloc())
	}
	avg := testing.AllocsPerRun(2000, func() {
		Shared.Put(segForAlloc())
	})
	if avg > 0.05 {
		t.Fatalf("pooled segment build allocates %.2f allocs/op, want ~0", avg)
	}
}

func TestPooledCloneAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	src := segForAlloc()
	defer Shared.Put(src)
	sk := src.ScratchSACK()
	sk.Blocks = append(sk.Blocks, SackBlock{Lo: 10, Hi: 20}, SackBlock{Lo: 30, Hi: 40})
	for i := 0; i < 64; i++ {
		Shared.Put(Shared.Clone(src))
	}
	avg := testing.AllocsPerRun(2000, func() {
		c := Shared.Clone(src)
		if !c.Equal(src) {
			t.Fatal("pooled clone differs from source")
		}
		Shared.Put(c)
	})
	if avg > 0.05 {
		t.Fatalf("pooled clone allocates %.2f allocs/op, want ~0", avg)
	}
}

func TestAppendWireAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	s := segForAlloc()
	defer Shared.Put(s)
	buf := make([]byte, 0, 4096)
	avg := testing.AllocsPerRun(2000, func() {
		var err error
		buf, err = s.AppendWire(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.05 {
		t.Fatalf("AppendWire into a reused buffer allocates %.2f allocs/op, want 0", avg)
	}
}

func TestUnmarshalIntoAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc counts differ under -race instrumentation")
	}
	src := segForAlloc()
	defer Shared.Put(src)
	sk := src.ScratchSACK()
	sk.Blocks = append(sk.Blocks, SackBlock{Lo: 5, Hi: 9})
	wire, err := src.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dst := Shared.Get()
	defer Shared.Put(dst)
	// Warm dst's scratch SACK capacity, then measure.
	if err := UnmarshalInto(dst, wire, src.Tuple.SrcIP, src.Tuple.DstIP); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(src) {
		t.Fatalf("in-place unmarshal mismatch:\n in=%v\nout=%v", src, dst)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := UnmarshalInto(dst, wire, src.Tuple.SrcIP, src.Tuple.DstIP); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.05 {
		t.Fatalf("UnmarshalInto allocates %.2f allocs/op, want 0", avg)
	}
}

func TestAppendWireMatchesMarshal(t *testing.T) {
	s := segForAlloc()
	defer Shared.Put(s)
	a, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AppendWire([]byte{0xff, 0xee})
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:2]) != "\xff\xee" {
		t.Fatal("AppendWire clobbered the destination prefix")
	}
	if string(a) != string(b[2:]) {
		t.Fatal("AppendWire wire image differs from Marshal")
	}
}
