package seg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// headerLen is the length of the base TCP header without options.
const headerLen = 20

// TCP option kinds understood by this codec.
const (
	optKindEOL   = 0
	optKindNOP   = 1
	optKindSACK  = 5  // RFC 2018 selective acknowledgement
	optKindMPTCP = 30 // RFC 6824 Multipath TCP
)

// windowShift is the fixed window-scale factor the codec assumes, as if a
// WScale of 8 had been negotiated on the SYN. The struct carries the scaled
// window in bytes; the wire carries window>>windowShift.
const windowShift = 8

func be16put(b []byte, v uint16) { binary.BigEndian.PutUint16(b, v) }
func be32put(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }
func be64put(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Marshal encodes the segment to its TCP wire form (base header, MPTCP
// options padded to 32-bit alignment, then PayloadLen zero bytes standing in
// for application data). IP addresses are not part of the TCP wire image;
// the caller provides them out of band on Unmarshal.
func (s *Segment) Marshal() ([]byte, error) {
	return s.AppendWire(nil)
}

// AppendWire appends the segment's TCP wire image to dst and returns the
// extended slice — the allocation-free marshal for callers that reuse a
// buffer across segments (append-style, like encoding/binary.Append).
func (s *Segment) AppendWire(dst []byte) ([]byte, error) {
	optLen := 0
	for _, o := range s.Options {
		optLen += o.wireLen()
	}
	padded := (optLen + 3) &^ 3
	if headerLen+padded > 60 {
		return nil, fmt.Errorf("seg: options too long (%d bytes, max 40)", padded)
	}
	base := len(dst)
	dst = append(dst, make([]byte, headerLen+padded+s.PayloadLen)...)
	buf := dst[base:]
	be16put(buf[0:], s.Tuple.SrcPort)
	be16put(buf[2:], s.Tuple.DstPort)
	be32put(buf[4:], s.Seq)
	be32put(buf[8:], s.Ack)
	buf[12] = uint8((headerLen+padded)/4) << 4
	buf[13] = uint8(s.Flags)
	w := s.Window >> windowShift
	if w > 0xffff {
		w = 0xffff
	}
	be16put(buf[14:], uint16(w))
	// Checksum (buf[16:18]) and urgent pointer stay zero: the simulator's
	// links do not corrupt packets, and we do not negotiate DSS checksums.
	off := headerLen
	for _, o := range s.Options {
		n := o.wireLen()
		buf[off] = o.kind()
		buf[off+1] = uint8(n)
		o.encode(buf[off : off+n])
		off += n
	}
	for off < headerLen+padded {
		buf[off] = optKindNOP
		off++
	}
	return dst, nil
}

// Unmarshal decodes a TCP wire image produced by Marshal (or any TCP segment
// restricted to NOP/EOL/MPTCP options). src and dst carry the IP addresses
// from the enclosing IP header.
func Unmarshal(b []byte, src, dst netip.Addr) (*Segment, error) {
	s := &Segment{}
	if err := UnmarshalInto(s, b, src, dst); err != nil {
		return nil, err
	}
	return s, nil
}

// UnmarshalInto decodes a TCP wire image into s in place. s is Reset
// first and its inline option storage is reused — the first DSS and first
// SACK decode without allocating — so a pooled segment can be refilled
// from the wire with no per-segment heap work. On error s is left in an
// undefined (but Reset-able) state.
func UnmarshalInto(s *Segment, b []byte, src, dst netip.Addr) error {
	if len(b) < headerLen {
		return errors.New("seg: truncated header")
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < headerLen || dataOff > len(b) {
		return fmt.Errorf("seg: bad data offset %d", dataOff)
	}
	s.Reset()
	s.Tuple = FourTuple{
		SrcIP:   src,
		DstIP:   dst,
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
	}
	s.Seq = binary.BigEndian.Uint32(b[4:])
	s.Ack = binary.BigEndian.Uint32(b[8:])
	s.Flags = Flags(b[13])
	s.Window = uint32(binary.BigEndian.Uint16(b[14:])) << windowShift
	s.PayloadLen = len(b) - dataOff
	usedDSS, usedSACK := false, false
	opts := b[headerLen:dataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case optKindEOL:
			opts = nil
			continue
		case optKindNOP:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return errors.New("seg: truncated option")
		}
		n := int(opts[1])
		if n < 2 || n > len(opts) {
			return fmt.Errorf("seg: bad option length %d", n)
		}
		switch opts[0] {
		case optKindMPTCP:
			if n >= 3 && Subtype(opts[2]>>4) == SubDSS && !usedDSS {
				usedDSS = true
				if err := decodeDSSInto(s.ScratchDSS(), opts[:n]); err != nil {
					return err
				}
			} else {
				o, err := decodeOption(opts[:n])
				if err != nil {
					return err
				}
				s.Options = append(s.Options, o)
			}
		case optKindSACK:
			if !usedSACK {
				usedSACK = true
				if err := decodeSACKInto(s.ScratchSACK(), opts[:n]); err != nil {
					return err
				}
			} else {
				o := &SACK{}
				if err := decodeSACKInto(o, opts[:n]); err != nil {
					return err
				}
				s.Options = append(s.Options, o)
			}
		}
		opts = opts[n:]
	}
	return nil
}

// decodeSACKInto parses a classic SACK option (kind/len already validated)
// into o, reusing o's block capacity.
func decodeSACKInto(o *SACK, b []byte) error {
	if (len(b)-2)%8 != 0 {
		return fmt.Errorf("seg: SACK bad length %d", len(b))
	}
	for off := 2; off < len(b); off += 8 {
		o.Blocks = append(o.Blocks, SackBlock{
			Lo: binary.BigEndian.Uint32(b[off:]),
			Hi: binary.BigEndian.Uint32(b[off+4:]),
		})
	}
	return nil
}

// decodeDSSInto parses a DSS option (kind/len already validated) into d.
func decodeDSSInto(d *DSS, b []byte) error {
	if len(b) < 4 {
		return errors.New("seg: DSS too short")
	}
	flags := b[3]
	d.DataFIN = flags&0x10 != 0
	d.HasDataAck = flags&0x01 != 0
	d.HasMap = flags&0x04 != 0
	off := 4
	if d.HasDataAck {
		if flags&0x02 == 0 {
			return errors.New("seg: DSS 4-byte data ack unsupported")
		}
		if len(b) < off+8 {
			return errors.New("seg: DSS truncated data ack")
		}
		d.DataAck = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	if d.HasMap {
		if flags&0x08 == 0 {
			return errors.New("seg: DSS 4-byte DSN unsupported")
		}
		if len(b) < off+16 {
			return errors.New("seg: DSS truncated mapping")
		}
		d.DataSeq = binary.BigEndian.Uint64(b[off:])
		d.SubflowSeq = binary.BigEndian.Uint32(b[off+8:])
		d.MapLen = binary.BigEndian.Uint16(b[off+12:])
		off += 16
	}
	if len(b) != off {
		return fmt.Errorf("seg: DSS bad length %d (want %d)", len(b), off)
	}
	return nil
}

// decodeOption parses one MPTCP option (kind/len already validated).
func decodeOption(b []byte) (Option, error) {
	if len(b) < 3 {
		return nil, errors.New("seg: MPTCP option too short")
	}
	sub := Subtype(b[2] >> 4)
	switch sub {
	case SubMPCapable:
		switch len(b) {
		case 12:
			return &MPCapable{
				Version:     b[2] & 0xf,
				ChecksumReq: b[3]&0x80 != 0,
				SenderKey:   binary.BigEndian.Uint64(b[4:]),
			}, nil
		case 20:
			return &MPCapable{
				Version:     b[2] & 0xf,
				ChecksumReq: b[3]&0x80 != 0,
				SenderKey:   binary.BigEndian.Uint64(b[4:]),
				ReceiverKey: binary.BigEndian.Uint64(b[12:]),
				HasReceiver: true,
			}, nil
		}
		return nil, fmt.Errorf("seg: MP_CAPABLE bad length %d", len(b))

	case SubMPJoin:
		j := &MPJoin{Backup: b[2]&0x01 != 0, AddrID: b[3]}
		switch len(b) {
		case 12:
			j.Form = JoinSYN
			j.Token = binary.BigEndian.Uint32(b[4:])
			j.Nonce = binary.BigEndian.Uint32(b[8:])
		case 16:
			j.Form = JoinSYNACK
			j.TruncHMAC = binary.BigEndian.Uint64(b[4:])
			j.Nonce = binary.BigEndian.Uint32(b[12:])
		case 24:
			j.Form = JoinACK
			copy(j.FullHMAC[:], b[4:])
		default:
			return nil, fmt.Errorf("seg: MP_JOIN bad length %d", len(b))
		}
		return j, nil

	case SubDSS:
		d := &DSS{}
		if err := decodeDSSInto(d, b); err != nil {
			return nil, err
		}
		return d, nil

	case SubAddAddr:
		ipver := b[2] & 0xf
		a := &AddAddr{AddrID: b[3]}
		var alen int
		switch ipver {
		case 4:
			alen = 4
		case 6:
			alen = 16
		default:
			return nil, fmt.Errorf("seg: ADD_ADDR bad ipver %d", ipver)
		}
		if len(b) < 4+alen {
			return nil, errors.New("seg: ADD_ADDR truncated")
		}
		addr, ok := netip.AddrFromSlice(b[4 : 4+alen])
		if !ok {
			return nil, errors.New("seg: ADD_ADDR bad address")
		}
		a.Addr = addr
		switch len(b) {
		case 4 + alen:
		case 4 + alen + 2:
			a.HasPort = true
			a.Port = binary.BigEndian.Uint16(b[4+alen:])
		default:
			return nil, fmt.Errorf("seg: ADD_ADDR bad length %d", len(b))
		}
		return a, nil

	case SubRemoveAddr:
		return &RemoveAddr{AddrIDs: append([]uint8(nil), b[3:]...)}, nil

	case SubMPPrio:
		p := &MPPrio{Backup: b[2]&0x01 != 0}
		switch len(b) {
		case 3:
		case 4:
			p.HasAddrID = true
			p.AddrID = b[3]
		default:
			return nil, fmt.Errorf("seg: MP_PRIO bad length %d", len(b))
		}
		return p, nil

	case SubMPFail:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_FAIL bad length %d", len(b))
		}
		return &MPFail{DataSeq: binary.BigEndian.Uint64(b[4:])}, nil

	case SubFastClose:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_FASTCLOSE bad length %d", len(b))
		}
		return &FastClose{ReceiverKey: binary.BigEndian.Uint64(b[4:])}, nil
	}
	return nil, fmt.Errorf("seg: unknown MPTCP subtype %d", sub)
}
