package seg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// headerLen is the length of the base TCP header without options.
const headerLen = 20

// TCP option kinds understood by this codec.
const (
	optKindEOL   = 0
	optKindNOP   = 1
	optKindSACK  = 5  // RFC 2018 selective acknowledgement
	optKindMPTCP = 30 // RFC 6824 Multipath TCP
)

// windowShift is the fixed window-scale factor the codec assumes, as if a
// WScale of 8 had been negotiated on the SYN. The struct carries the scaled
// window in bytes; the wire carries window>>windowShift.
const windowShift = 8

func be16put(b []byte, v uint16) { binary.BigEndian.PutUint16(b, v) }
func be32put(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }
func be64put(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Marshal encodes the segment to its TCP wire form (base header, MPTCP
// options padded to 32-bit alignment, then PayloadLen zero bytes standing in
// for application data). IP addresses are not part of the TCP wire image;
// the caller provides them out of band on Unmarshal.
func (s *Segment) Marshal() ([]byte, error) {
	optLen := 0
	for _, o := range s.Options {
		optLen += o.wireLen()
	}
	padded := (optLen + 3) &^ 3
	if headerLen+padded > 60 {
		return nil, fmt.Errorf("seg: options too long (%d bytes, max 40)", padded)
	}
	buf := make([]byte, headerLen+padded+s.PayloadLen)
	be16put(buf[0:], s.Tuple.SrcPort)
	be16put(buf[2:], s.Tuple.DstPort)
	be32put(buf[4:], s.Seq)
	be32put(buf[8:], s.Ack)
	buf[12] = uint8((headerLen+padded)/4) << 4
	buf[13] = uint8(s.Flags)
	w := s.Window >> windowShift
	if w > 0xffff {
		w = 0xffff
	}
	be16put(buf[14:], uint16(w))
	// Checksum (buf[16:18]) and urgent pointer stay zero: the simulator's
	// links do not corrupt packets, and we do not negotiate DSS checksums.
	off := headerLen
	for _, o := range s.Options {
		n := o.wireLen()
		buf[off] = o.kind()
		buf[off+1] = uint8(n)
		o.encode(buf[off : off+n])
		off += n
	}
	for off < headerLen+padded {
		buf[off] = optKindNOP
		off++
	}
	return buf, nil
}

// Unmarshal decodes a TCP wire image produced by Marshal (or any TCP segment
// restricted to NOP/EOL/MPTCP options). src and dst carry the IP addresses
// from the enclosing IP header.
func Unmarshal(b []byte, src, dst netip.Addr) (*Segment, error) {
	if len(b) < headerLen {
		return nil, errors.New("seg: truncated header")
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < headerLen || dataOff > len(b) {
		return nil, fmt.Errorf("seg: bad data offset %d", dataOff)
	}
	s := &Segment{
		Tuple: FourTuple{
			SrcIP:   src,
			DstIP:   dst,
			SrcPort: binary.BigEndian.Uint16(b[0:]),
			DstPort: binary.BigEndian.Uint16(b[2:]),
		},
		Seq:        binary.BigEndian.Uint32(b[4:]),
		Ack:        binary.BigEndian.Uint32(b[8:]),
		Flags:      Flags(b[13]),
		Window:     uint32(binary.BigEndian.Uint16(b[14:])) << windowShift,
		PayloadLen: len(b) - dataOff,
	}
	opts := b[headerLen:dataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case optKindEOL:
			opts = nil
			continue
		case optKindNOP:
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return nil, errors.New("seg: truncated option")
		}
		n := int(opts[1])
		if n < 2 || n > len(opts) {
			return nil, fmt.Errorf("seg: bad option length %d", n)
		}
		switch opts[0] {
		case optKindMPTCP:
			o, err := decodeOption(opts[:n])
			if err != nil {
				return nil, err
			}
			s.Options = append(s.Options, o)
		case optKindSACK:
			o, err := decodeSACK(opts[:n])
			if err != nil {
				return nil, err
			}
			s.Options = append(s.Options, o)
		}
		opts = opts[n:]
	}
	return s, nil
}

// decodeSACK parses a classic SACK option (kind/len already validated).
func decodeSACK(b []byte) (Option, error) {
	if (len(b)-2)%8 != 0 {
		return nil, fmt.Errorf("seg: SACK bad length %d", len(b))
	}
	o := &SACK{}
	for off := 2; off < len(b); off += 8 {
		o.Blocks = append(o.Blocks, SackBlock{
			Lo: binary.BigEndian.Uint32(b[off:]),
			Hi: binary.BigEndian.Uint32(b[off+4:]),
		})
	}
	return o, nil
}

// decodeOption parses one MPTCP option (kind/len already validated).
func decodeOption(b []byte) (Option, error) {
	if len(b) < 3 {
		return nil, errors.New("seg: MPTCP option too short")
	}
	sub := Subtype(b[2] >> 4)
	switch sub {
	case SubMPCapable:
		switch len(b) {
		case 12:
			return &MPCapable{
				Version:     b[2] & 0xf,
				ChecksumReq: b[3]&0x80 != 0,
				SenderKey:   binary.BigEndian.Uint64(b[4:]),
			}, nil
		case 20:
			return &MPCapable{
				Version:     b[2] & 0xf,
				ChecksumReq: b[3]&0x80 != 0,
				SenderKey:   binary.BigEndian.Uint64(b[4:]),
				ReceiverKey: binary.BigEndian.Uint64(b[12:]),
				HasReceiver: true,
			}, nil
		}
		return nil, fmt.Errorf("seg: MP_CAPABLE bad length %d", len(b))

	case SubMPJoin:
		j := &MPJoin{Backup: b[2]&0x01 != 0, AddrID: b[3]}
		switch len(b) {
		case 12:
			j.Form = JoinSYN
			j.Token = binary.BigEndian.Uint32(b[4:])
			j.Nonce = binary.BigEndian.Uint32(b[8:])
		case 16:
			j.Form = JoinSYNACK
			j.TruncHMAC = binary.BigEndian.Uint64(b[4:])
			j.Nonce = binary.BigEndian.Uint32(b[12:])
		case 24:
			j.Form = JoinACK
			copy(j.FullHMAC[:], b[4:])
		default:
			return nil, fmt.Errorf("seg: MP_JOIN bad length %d", len(b))
		}
		return j, nil

	case SubDSS:
		d := &DSS{}
		flags := b[3]
		d.DataFIN = flags&0x10 != 0
		d.HasDataAck = flags&0x01 != 0
		d.HasMap = flags&0x04 != 0
		off := 4
		if d.HasDataAck {
			if flags&0x02 == 0 {
				return nil, errors.New("seg: DSS 4-byte data ack unsupported")
			}
			if len(b) < off+8 {
				return nil, errors.New("seg: DSS truncated data ack")
			}
			d.DataAck = binary.BigEndian.Uint64(b[off:])
			off += 8
		}
		if d.HasMap {
			if flags&0x08 == 0 {
				return nil, errors.New("seg: DSS 4-byte DSN unsupported")
			}
			if len(b) < off+16 {
				return nil, errors.New("seg: DSS truncated mapping")
			}
			d.DataSeq = binary.BigEndian.Uint64(b[off:])
			d.SubflowSeq = binary.BigEndian.Uint32(b[off+8:])
			d.MapLen = binary.BigEndian.Uint16(b[off+12:])
			off += 16
		}
		if len(b) != off {
			return nil, fmt.Errorf("seg: DSS bad length %d (want %d)", len(b), off)
		}
		return d, nil

	case SubAddAddr:
		ipver := b[2] & 0xf
		a := &AddAddr{AddrID: b[3]}
		var alen int
		switch ipver {
		case 4:
			alen = 4
		case 6:
			alen = 16
		default:
			return nil, fmt.Errorf("seg: ADD_ADDR bad ipver %d", ipver)
		}
		if len(b) < 4+alen {
			return nil, errors.New("seg: ADD_ADDR truncated")
		}
		addr, ok := netip.AddrFromSlice(b[4 : 4+alen])
		if !ok {
			return nil, errors.New("seg: ADD_ADDR bad address")
		}
		a.Addr = addr
		switch len(b) {
		case 4 + alen:
		case 4 + alen + 2:
			a.HasPort = true
			a.Port = binary.BigEndian.Uint16(b[4+alen:])
		default:
			return nil, fmt.Errorf("seg: ADD_ADDR bad length %d", len(b))
		}
		return a, nil

	case SubRemoveAddr:
		return &RemoveAddr{AddrIDs: append([]uint8(nil), b[3:]...)}, nil

	case SubMPPrio:
		p := &MPPrio{Backup: b[2]&0x01 != 0}
		switch len(b) {
		case 3:
		case 4:
			p.HasAddrID = true
			p.AddrID = b[3]
		default:
			return nil, fmt.Errorf("seg: MP_PRIO bad length %d", len(b))
		}
		return p, nil

	case SubMPFail:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_FAIL bad length %d", len(b))
		}
		return &MPFail{DataSeq: binary.BigEndian.Uint64(b[4:])}, nil

	case SubFastClose:
		if len(b) != 12 {
			return nil, fmt.Errorf("seg: MP_FASTCLOSE bad length %d", len(b))
		}
		return &FastClose{ReceiverKey: binary.BigEndian.Uint64(b[4:])}, nil
	}
	return nil, fmt.Errorf("seg: unknown MPTCP subtype %d", sub)
}
