package seg

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	ipA = netip.MustParseAddr("10.0.0.1")
	ipB = netip.MustParseAddr("10.0.1.2")
	ip6 = netip.MustParseAddr("2001:db8::7")
)

func tuple() FourTuple {
	return FourTuple{SrcIP: ipA, DstIP: ipB, SrcPort: 43211, DstPort: 80}
}

func roundTrip(t *testing.T, s *Segment) *Segment {
	t.Helper()
	b, err := s.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(b) != s.WireSize() {
		t.Fatalf("wire size %d != WireSize %d", len(b), s.WireSize())
	}
	got, err := Unmarshal(b, s.Tuple.SrcIP, s.Tuple.DstIP)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return got
}

func TestRoundTripPlain(t *testing.T) {
	s := &Segment{Tuple: tuple(), Seq: 1000, Ack: 2000, Flags: ACK | PSH, Window: 65536, PayloadLen: 1400}
	got := roundTrip(t, s)
	if !s.Equal(got) {
		t.Fatalf("round trip mismatch:\n in=%v\nout=%v", s, got)
	}
}

func TestRoundTripMPCapableSYN(t *testing.T) {
	s := &Segment{Tuple: tuple(), Seq: 7, Flags: SYN, Window: 29184,
		Options: []Option{&MPCapable{Version: 0, SenderKey: 0xdeadbeefcafef00d}}}
	got := roundTrip(t, s)
	if !s.Equal(got) {
		t.Fatalf("mismatch:\n in=%v\nout=%v", s, got)
	}
}

func TestRoundTripMPCapableThirdACK(t *testing.T) {
	s := &Segment{Tuple: tuple(), Seq: 8, Ack: 100, Flags: ACK, Window: 512,
		Options: []Option{&MPCapable{SenderKey: 1, ReceiverKey: 2, HasReceiver: true, ChecksumReq: true}}}
	got := roundTrip(t, s)
	if !s.Equal(got) {
		t.Fatalf("mismatch:\n in=%v\nout=%v", s, got)
	}
}

func TestRoundTripMPJoinForms(t *testing.T) {
	cases := []*MPJoin{
		{Form: JoinSYN, Token: 0xaabbccdd, Nonce: 42, AddrID: 3, Backup: true},
		{Form: JoinSYNACK, TruncHMAC: 0x1122334455667788, Nonce: 7, AddrID: 1},
		{Form: JoinACK, FullHMAC: [20]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}},
	}
	flagSets := []Flags{SYN, SYN | ACK, ACK}
	for i, j := range cases {
		s := &Segment{Tuple: tuple(), Flags: flagSets[i], Window: 256, Options: []Option{j}}
		got := roundTrip(t, s)
		if !s.Equal(got) {
			t.Fatalf("form %d mismatch:\n in=%v\nout=%v", j.Form, s, got)
		}
	}
}

func TestRoundTripDSSVariants(t *testing.T) {
	cases := []*DSS{
		{HasDataAck: true, DataAck: 1 << 40},
		{HasMap: true, DataSeq: 99, SubflowSeq: 5, MapLen: 1400},
		{HasDataAck: true, DataAck: 12, HasMap: true, DataSeq: 34, SubflowSeq: 56, MapLen: 78},
		{HasDataAck: true, DataAck: 3, DataFIN: true, HasMap: true, DataSeq: 9, MapLen: 1},
	}
	for _, d := range cases {
		s := &Segment{Tuple: tuple(), Flags: ACK, Window: 1 << 16, PayloadLen: int(d.MapLen), Options: []Option{d}}
		got := roundTrip(t, s)
		if !s.Equal(got) {
			t.Fatalf("DSS mismatch:\n in=%v\nout=%v", s, got)
		}
	}
}

func TestRoundTripAddrOptions(t *testing.T) {
	opts := []Option{
		&AddAddr{AddrID: 2, Addr: ipB},
		&AddAddr{AddrID: 3, Addr: ipB, Port: 8080, HasPort: true},
		&AddAddr{AddrID: 4, Addr: ip6},
		&RemoveAddr{AddrIDs: []uint8{1, 2, 3}},
		&MPPrio{Backup: true},
		&MPPrio{Backup: false, HasAddrID: true, AddrID: 9},
		&MPFail{DataSeq: 1 << 50},
		&FastClose{ReceiverKey: 0xfeed},
	}
	for _, o := range opts {
		s := &Segment{Tuple: tuple(), Flags: ACK, Window: 256, Options: []Option{o}}
		got := roundTrip(t, s)
		if !s.Equal(got) {
			t.Fatalf("%s mismatch:\n in=%v\nout=%v", o.Subtype(), s, got)
		}
	}
}

func TestMultipleOptions(t *testing.T) {
	s := &Segment{Tuple: tuple(), Flags: ACK, Window: 2560, PayloadLen: 100,
		Options: []Option{
			&DSS{HasDataAck: true, DataAck: 5, HasMap: true, DataSeq: 6, MapLen: 100},
			&MPPrio{Backup: true},
		}}
	got := roundTrip(t, s)
	if !s.Equal(got) {
		t.Fatalf("mismatch:\n in=%v\nout=%v", s, got)
	}
	if got.DSS() == nil || got.Option(SubMPPrio) == nil {
		t.Fatal("option accessors failed")
	}
	if got.MPCapable() != nil || got.MPJoin() != nil {
		t.Fatal("absent options reported present")
	}
}

func TestOptionsTooLong(t *testing.T) {
	s := &Segment{Tuple: tuple(),
		Options: []Option{
			&DSS{HasDataAck: true, HasMap: true},
			&MPJoin{Form: JoinACK},
		}} // 28 + 24 = 52 > 40
	if _, err := s.Marshal(); err == nil {
		t.Fatal("expected options-too-long error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}, ipA, ipB); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Bad data offset.
	b := make([]byte, 20)
	b[12] = 1 << 4 // dataOff = 4 < 20
	if _, err := Unmarshal(b, ipA, ipB); err == nil {
		t.Fatal("bad data offset accepted")
	}
	// Truncated option.
	s := &Segment{Tuple: tuple(), Flags: SYN, Options: []Option{&MPCapable{SenderKey: 1}}}
	wire, _ := s.Marshal()
	wire[21] = 40 // option length beyond buffer
	if _, err := Unmarshal(wire, ipA, ipB); err == nil {
		t.Fatal("bad option length accepted")
	}
}

func TestSeqEnd(t *testing.T) {
	cases := []struct {
		s    Segment
		want uint32
	}{
		{Segment{Seq: 10, PayloadLen: 5}, 15},
		{Segment{Seq: 10, Flags: SYN}, 11},
		{Segment{Seq: 10, Flags: FIN, PayloadLen: 3}, 14},
		{Segment{Seq: 10, Flags: SYN | FIN}, 12},
	}
	for _, c := range cases {
		if got := c.s.SeqEnd(); got != c.want {
			t.Fatalf("SeqEnd(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestFourTupleReverse(t *testing.T) {
	ft := tuple()
	r := ft.Reverse()
	if r.SrcIP != ft.DstIP || r.DstPort != ft.SrcPort {
		t.Fatalf("Reverse wrong: %v", r)
	}
	if r.Reverse() != ft {
		t.Fatal("double reverse not identity")
	}
}

func TestFlagsString(t *testing.T) {
	if (SYN | ACK).String() != "SYN|ACK" {
		t.Fatalf("got %q", (SYN | ACK).String())
	}
	if Flags(0).String() != "none" {
		t.Fatalf("got %q", Flags(0).String())
	}
}

func TestClone(t *testing.T) {
	s := &Segment{Tuple: tuple(), Flags: ACK,
		Options: []Option{&RemoveAddr{AddrIDs: []uint8{1, 2}}}}
	c := s.Clone()
	c.Options[0].(*RemoveAddr).AddrIDs[0] = 99
	if s.Options[0].(*RemoveAddr).AddrIDs[0] == 99 {
		t.Fatal("Clone shares option state")
	}
}

func TestTokenAndIDSN(t *testing.T) {
	// Determinism and distinctness; plus the RFC property that token and
	// IDSN come from disjoint parts of the same digest.
	k := uint64(0x0102030405060708)
	if Token(k) != Token(k) {
		t.Fatal("Token not deterministic")
	}
	if IDSN(k) != IDSN(k) {
		t.Fatal("IDSN not deterministic")
	}
	if Token(k) == Token(k+1) {
		t.Fatal("distinct keys gave equal tokens (SHA-1 collision?!)")
	}
}

func TestJoinHMACAgreement(t *testing.T) {
	// Host A authenticating to B and B verifying must agree when each uses
	// (ownKey, peerKey, ownNonce, peerNonce) with the initiator's ordering.
	keyA, keyB := uint64(111), uint64(222)
	nonceA, nonceB := uint32(333), uint32(444)
	// B sends the SYN+ACK HMAC keyed (keyB, keyA) over (nonceB, nonceA).
	fromB := TruncatedJoinHMAC(keyB, keyA, nonceB, nonceA)
	verifyAtA := TruncatedJoinHMAC(keyB, keyA, nonceB, nonceA)
	if fromB != verifyAtA {
		t.Fatal("HMAC disagreement")
	}
	// Ordering matters: swapped keys must not verify.
	if fromB == TruncatedJoinHMAC(keyA, keyB, nonceB, nonceA) {
		t.Fatal("HMAC insensitive to key order")
	}
	full := JoinHMAC(keyA, keyB, nonceA, nonceB)
	if full == [20]byte{} {
		t.Fatal("zero HMAC")
	}
}

func TestNewKeyDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		k := NewKey(rng)
		if seen[k] {
			t.Fatal("duplicate key in 1000 draws")
		}
		seen[k] = true
	}
}

// Property: any segment built from generator-driven fields survives a
// marshal/unmarshal round trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seq, ack uint32, win uint16, pay uint16, flags uint8,
		key uint64, dack, dseq uint64, ssn uint32, mlen uint16, which uint8) bool {
		s := &Segment{
			Tuple:      tuple(),
			Seq:        seq,
			Ack:        ack,
			Flags:      Flags(flags & 0x3f),
			Window:     uint32(win) << windowShift,
			PayloadLen: int(pay % 2000),
		}
		switch which % 5 {
		case 0:
			s.Options = []Option{&MPCapable{SenderKey: key}}
		case 1:
			s.Options = []Option{&MPJoin{Form: JoinSYN, Token: uint32(key), Nonce: ssn}}
		case 2:
			s.Options = []Option{&DSS{HasDataAck: true, DataAck: dack, HasMap: true, DataSeq: dseq, SubflowSeq: ssn, MapLen: mlen}}
		case 3:
			s.Options = []Option{&AddAddr{AddrID: uint8(key), Addr: ipB, Port: uint16(dack), HasPort: true}}
		case 4:
			s.Options = []Option{&DSS{HasDataAck: true, DataAck: dack}}
		}
		b, err := s.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b, s.Tuple.SrcIP, s.Tuple.DstIP)
		if err != nil {
			return false
		}
		return s.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary bytes; it either errors or
// yields a segment that re-marshals.
func TestQuickUnmarshalRobust(t *testing.T) {
	f := func(b []byte) bool {
		s, err := Unmarshal(b, ipA, ipB)
		if err != nil {
			return true
		}
		_, err = s.Marshal()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}
