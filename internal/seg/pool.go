package seg

import (
	"sync"
	"sync/atomic"
)

// Pool recycles Segments so the simulator's data path runs without heap
// allocation in steady state. It is safe for concurrent use (the
// multi-seed runner drives many independent simulations at once), built
// on sync.Pool's per-P lock-free caches.
//
// Ownership rules (see DESIGN.md "Segment ownership"): a segment obtained
// from Get is exclusively owned by the caller until handed off — to a
// netem link via a Packet, or back via Put. After the hand-off the
// previous owner must not touch it. Put fully Resets the segment, so
// pooling can never leak one run's bytes into another: a pooled run is
// bit-for-bit identical to an unpooled one.
type Pool struct {
	p sync.Pool

	gets atomic.Uint64
	puts atomic.Uint64
	news atomic.Uint64
}

// PoolStats is a snapshot of pool traffic. Gets-News is the number of
// reuses; a warm steady state has News ≈ 0.
type PoolStats struct {
	Gets uint64 // segments handed out
	Puts uint64 // segments retired
	News uint64 // segments freshly heap-allocated
}

// NewPool returns an empty segment pool.
func NewPool() *Pool {
	p := &Pool{}
	p.p.New = func() any {
		p.news.Add(1)
		s := &Segment{}
		s.Reset()
		return s
	}
	return p
}

// Shared is the process-wide segment pool used by the simulator's data
// path (tcp, mptcp, netem). Independent simulations may share it freely:
// segments carry no cross-run state once Reset.
var Shared = NewPool()

// Get returns a fully reset segment owned by the caller.
func (p *Pool) Get() *Segment {
	p.gets.Add(1)
	return p.p.Get().(*Segment)
}

// Put retires a segment. The caller must hold exclusive ownership and
// must not use s afterwards. Put(nil) is a no-op.
func (p *Pool) Put(s *Segment) {
	if s == nil {
		return
	}
	s.Reset()
	p.puts.Add(1)
	p.p.Put(s)
}

// Clone returns a pooled deep copy of s. Cloning a typical data segment
// (DSS and/or SACK options) reuses the destination's inline option
// storage and does not allocate.
func (p *Pool) Clone(s *Segment) *Segment {
	c := p.Get()
	c.CopyFrom(s)
	return c
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Gets: p.gets.Load(), Puts: p.puts.Load(), News: p.news.Load()}
}
