package seg

import (
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"math/rand"
)

// Token derives the 32-bit connection token from a key: the most significant
// 32 bits of SHA-1(key) (RFC 6824 §3.2). A host receiving an MP_JOIN uses
// the token to look up the Multipath TCP connection the subflow joins.
func Token(key uint64) uint32 {
	var kb [8]byte
	binary.BigEndian.PutUint64(kb[:], key)
	sum := sha1.Sum(kb[:])
	return binary.BigEndian.Uint32(sum[0:4])
}

// IDSN derives the initial data sequence number from a key: the least
// significant 64 bits of SHA-1(key) (RFC 6824 §3.2).
func IDSN(key uint64) uint64 {
	var kb [8]byte
	binary.BigEndian.PutUint64(kb[:], key)
	sum := sha1.Sum(kb[:])
	return binary.BigEndian.Uint64(sum[12:20])
}

// JoinHMAC computes the MP_JOIN authentication HMAC-SHA1 over the two
// nonces, keyed by the concatenation of the local and remote keys
// (RFC 6824 §3.2). senderFirst orders the key material: the initiator of
// the message puts its own key first.
func JoinHMAC(localKey, remoteKey uint64, localNonce, remoteNonce uint32) [20]byte {
	var key [16]byte
	binary.BigEndian.PutUint64(key[0:], localKey)
	binary.BigEndian.PutUint64(key[8:], remoteKey)
	var msg [8]byte
	binary.BigEndian.PutUint32(msg[0:], localNonce)
	binary.BigEndian.PutUint32(msg[4:], remoteNonce)
	mac := hmac.New(sha1.New, key[:])
	mac.Write(msg[:])
	var out [20]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// TruncatedJoinHMAC returns the leftmost 64 bits of the join HMAC, the form
// carried in the MP_JOIN SYN+ACK.
func TruncatedJoinHMAC(localKey, remoteKey uint64, localNonce, remoteNonce uint32) uint64 {
	h := JoinHMAC(localKey, remoteKey, localNonce, remoteNonce)
	return binary.BigEndian.Uint64(h[0:8])
}

// NewKey draws a random 64-bit MPTCP key from the given source (the
// simulation's deterministic RNG in practice).
func NewKey(rng *rand.Rand) uint64 {
	// Uint64 composed from two Int63 draws so any seeded source works.
	return uint64(rng.Int63())<<1 ^ uint64(rng.Int63())
}
