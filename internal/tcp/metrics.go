package tcp

import "repro/internal/metrics"

// Metrics bundles the live metric handles a subflow records into. The
// zero value (all-nil handles) disables recording at the cost of one
// branch per event — the same contract as trace.Rec — so the struct can
// ride in Config unconditionally. Each handle must be bound to the slot
// of the shard the subflow's host runs on (metrics slots are
// single-writer; see internal/metrics).
type Metrics struct {
	Retrans     *metrics.Counter // retransmitted segments, RTO- and handshake-driven
	FastRetrans *metrics.Counter // fast-retransmit / SACK-recovery episodes
	RTOTimeouts *metrics.Counter // retransmission-timer expirations
}
