package tcp

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
)

// mockOwner records every Owner callback.
type mockOwner struct {
	established int
	newBytes    int
	ackedBytes  int
	timeouts    []time.Duration
	backoffs    []int
	closed      bool
	closeReason Errno
	reject      map[Stage]bool
	dataAck     uint64
	hasDataAck  bool
	onTimeout   func(sf *Subflow, rto time.Duration, n int)
}

func (o *mockOwner) HandshakeOptions(sf *Subflow, st Stage) []seg.Option { return nil }
func (o *mockOwner) HandshakeAccept(sf *Subflow, s *seg.Segment, st Stage) Verdict {
	if o.reject[st] {
		return Reject
	}
	return Accept
}
func (o *mockOwner) OnEstablished(sf *Subflow) { o.established++ }
func (o *mockOwner) OnSegment(sf *Subflow, s *seg.Segment, hasNew bool) {
	if hasNew {
		o.newBytes += s.PayloadLen
	}
}
func (o *mockOwner) CurrentDataAck() (uint64, bool) { return o.dataAck, o.hasDataAck }
func (o *mockOwner) OnAckAdvance(sf *Subflow, acked []*Chunk) {
	for _, c := range acked {
		o.ackedBytes += c.Len
	}
}
func (o *mockOwner) OnTimeout(sf *Subflow, rto time.Duration, n int) {
	o.timeouts = append(o.timeouts, rto)
	o.backoffs = append(o.backoffs, n)
	if o.onTimeout != nil {
		o.onTimeout(sf, rto, n)
	}
}
func (o *mockOwner) OnClosed(sf *Subflow, reason Errno) {
	o.closed = true
	o.closeReason = reason
}

// pair wires two subflows through a fixed-delay lossy pipe.
type pair struct {
	s        *sim.Simulator
	a, b     *Subflow
	oa, ob   *mockOwner
	delay    time.Duration
	dropAtoB func(*seg.Segment) bool
	dropBtoA func(*seg.Segment) bool
}

func newPair(t *testing.T, seed int64, delay time.Duration, cfg Config) *pair {
	t.Helper()
	p := &pair{s: sim.New(seed), delay: delay, oa: &mockOwner{}, ob: &mockOwner{}}
	tup := seg.FourTuple{
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("10.0.1.1"),
		SrcPort: 40000, DstPort: 80,
	}
	p.a = NewSubflow(p.s, cfg, tup, func(sg *seg.Segment) {
		if p.dropAtoB != nil && p.dropAtoB(sg) {
			return
		}
		c := sg.Clone()
		p.s.After(p.delay, "wire->b", func() { p.b.HandleSegment(c) })
	}, p.oa)
	p.b = NewSubflow(p.s, cfg, tup.Reverse(), func(sg *seg.Segment) {
		if p.dropBtoA != nil && p.dropBtoA(sg) {
			return
		}
		c := sg.Clone()
		p.s.After(p.delay, "wire->a", func() { p.a.HandleSegment(c) })
	}, p.ob)
	return p
}

func TestHandshake(t *testing.T) {
	p := newPair(t, 1, 10*time.Millisecond, Config{})
	p.a.Connect()
	if p.a.SynSentAt() != 0 {
		t.Fatalf("SynSentAt = %v", p.a.SynSentAt())
	}
	p.s.Run()
	if p.oa.established != 1 || p.ob.established != 1 {
		t.Fatalf("established a=%d b=%d, want 1/1", p.oa.established, p.ob.established)
	}
	if p.a.State() != StateEstablished || p.b.State() != StateEstablished {
		t.Fatalf("states %v/%v", p.a.State(), p.b.State())
	}
	// Client establishes after one RTT (20 ms); server after 1.5 RTT.
	if p.a.EstablishedAt() != 20*sim.Millisecond {
		t.Fatalf("client established at %v, want 20ms", p.a.EstablishedAt())
	}
	if p.b.EstablishedAt() != 30*sim.Millisecond {
		t.Fatalf("server established at %v, want 30ms", p.b.EstablishedAt())
	}
}

func TestHandshakeSynLoss(t *testing.T) {
	p := newPair(t, 2, 10*time.Millisecond, Config{})
	dropped := false
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.Is(seg.SYN) && !dropped {
			dropped = true
			return true
		}
		return false
	}
	p.a.Connect()
	p.s.Run()
	if p.oa.established != 1 || p.ob.established != 1 {
		t.Fatal("handshake did not recover from SYN loss")
	}
	// SYN retransmitted after InitialRTO: established ≈ 1s + RTT.
	if p.a.EstablishedAt() < sim.Second || p.a.EstablishedAt() > sim.Second+100*sim.Millisecond {
		t.Fatalf("established at %v, want ≈1.02s", p.a.EstablishedAt())
	}
}

func TestHandshakeRefusedByOwner(t *testing.T) {
	p := newPair(t, 3, time.Millisecond, Config{})
	p.ob.reject = map[Stage]bool{StageSYN: true}
	p.a.Connect()
	p.s.Run()
	if !p.oa.closed || p.oa.closeReason != ECONNREFUSED {
		t.Fatalf("client close = %v/%v, want refused", p.oa.closed, p.oa.closeReason)
	}
	if p.oa.established != 0 {
		t.Fatal("refused handshake established")
	}
}

func TestHandshakeSynRetriesExhausted(t *testing.T) {
	p := newPair(t, 4, time.Millisecond, Config{SynRetries: 3})
	p.dropAtoB = func(s *seg.Segment) bool { return true }
	p.a.Connect()
	p.s.Run()
	if !p.oa.closed || p.oa.closeReason != ETIMEDOUT {
		t.Fatalf("reason = %v, want ETIMEDOUT", p.oa.closeReason)
	}
	// 3 retries: 1s + 2s + 4s then death at +8s ≈ 15s total.
	if p.s.Now() < 14*sim.Second || p.s.Now() > 16*sim.Second {
		t.Fatalf("death at %v, want ≈15s", p.s.Now())
	}
}

// push sends n bytes in MSS-sized chunks starting at dataSeq.
func push(sf *Subflow, dataSeq uint64, n int) uint64 {
	for n > 0 {
		l := sf.MSS()
		if n < l {
			l = n
		}
		sf.Push(dataSeq, l, false)
		dataSeq += uint64(l)
		n -= l
	}
	return dataSeq
}

func TestBulkTransfer(t *testing.T) {
	p := newPair(t, 5, 10*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	const total = 200_000
	push(p.a, 0, total)
	p.s.Run()
	if p.ob.newBytes != total {
		t.Fatalf("receiver got %d bytes, want %d", p.ob.newBytes, total)
	}
	if p.oa.ackedBytes != total {
		t.Fatalf("sender saw %d acked, want %d", p.oa.ackedBytes, total)
	}
	if p.a.Flight() != 0 || p.a.QueuedUnsent() != 0 {
		t.Fatal("sender queues not drained")
	}
	// RTT estimate should be ≈ 20 ms.
	if srtt := p.a.SRTT(); srtt < 19*time.Millisecond || srtt > 30*time.Millisecond {
		t.Fatalf("srtt = %v, want ≈20ms", srtt)
	}
	if p.a.Info().Stats.Timeouts != 0 {
		t.Fatal("lossless transfer hit RTO")
	}
}

func TestCwndLimitsFlight(t *testing.T) {
	p := newPair(t, 6, 50*time.Millisecond, Config{InitialWindow: 2, MSS: 1000})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 50_000)
	// Immediately after pushing, flight must respect the 2-segment window.
	if f := p.a.Flight(); f > 2000 {
		t.Fatalf("flight = %d exceeds initial cwnd", f)
	}
	p.s.Run()
	if p.ob.newBytes != 50_000 {
		t.Fatalf("got %d", p.ob.newBytes)
	}
}

func TestFastRetransmit(t *testing.T) {
	p := newPair(t, 7, 10*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	// Drop exactly one data segment, early in the stream.
	droppedSeq := uint32(0)
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.PayloadLen > 0 && droppedSeq == 0 && s.Seq != 0 {
			droppedSeq = s.Seq
			return true
		}
		return false
	}
	push(p.a, 0, 100_000)
	p.s.Run()
	if p.ob.newBytes != 100_000 {
		t.Fatalf("receiver got %d, want all data", p.ob.newBytes)
	}
	st := p.a.Info().Stats
	if st.FastRetrans == 0 {
		t.Fatal("loss was not repaired by fast retransmit")
	}
	if st.Timeouts != 0 {
		t.Fatalf("single loss needed %d RTOs; dupack path broken", st.Timeouts)
	}
}

func TestRTOAndBackoffDoubling(t *testing.T) {
	p := newPair(t, 8, 10*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	// Black-hole the forward path after the handshake.
	blackhole := true
	p.dropAtoB = func(s *seg.Segment) bool { return blackhole }
	push(p.a, 0, 5000)
	p.s.RunFor(10 * time.Second)
	if len(p.oa.timeouts) < 3 {
		t.Fatalf("only %d timeout events in 10s", len(p.oa.timeouts))
	}
	// Each successive timeout reports a (weakly) doubled RTO.
	for i := 1; i < len(p.oa.timeouts); i++ {
		if p.oa.timeouts[i] < p.oa.timeouts[i-1] {
			t.Fatalf("RTO not monotonic under backoff: %v", p.oa.timeouts)
		}
	}
	if p.oa.backoffs[0] != 1 || p.oa.backoffs[1] != 2 {
		t.Fatalf("backoff counts = %v", p.oa.backoffs)
	}
	// Heal the path: transfer completes and backoff resets.
	blackhole = false
	p.s.Run()
	if p.ob.newBytes != 5000 {
		t.Fatalf("got %d after heal", p.ob.newBytes)
	}
	if p.a.Backoffs() != 0 {
		t.Fatalf("backoffs = %d after progress, want 0", p.a.Backoffs())
	}
}

func TestSubflowDeathAfterMaxBackoffs(t *testing.T) {
	p := newPair(t, 9, 10*time.Millisecond, Config{MaxBackoffs: 4})
	p.a.Connect()
	p.s.Run()
	p.dropAtoB = func(s *seg.Segment) bool { return true }
	push(p.a, 0, 2000)
	p.s.Run()
	if !p.oa.closed || p.oa.closeReason != ETIMEDOUT {
		t.Fatalf("closed=%v reason=%v, want ETIMEDOUT", p.oa.closed, p.oa.closeReason)
	}
	if got := len(p.oa.timeouts); got != 5 {
		t.Fatalf("timeout events = %d, want MaxBackoffs+1", got)
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t, 10, 5*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	p.a.Abort(ECONNABORTED)
	p.s.Run()
	if p.oa.closeReason != ECONNABORTED {
		t.Fatalf("local reason = %v", p.oa.closeReason)
	}
	if !p.ob.closed || p.ob.closeReason != ECONNRESET {
		t.Fatalf("peer reason = %v, want ECONNRESET", p.ob.closeReason)
	}
}

func TestGracefulClose(t *testing.T) {
	p := newPair(t, 11, 5*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 10_000)
	p.a.Close()
	p.s.Run()
	if p.ob.newBytes != 10_000 {
		t.Fatal("data lost across close")
	}
	// Peer closes too once it has seen the FIN.
	p.b.Close()
	p.s.Run()
	if !p.oa.closed || p.oa.closeReason != Ok {
		t.Fatalf("a close reason = %v/%v", p.oa.closed, p.oa.closeReason)
	}
	if !p.ob.closed || p.ob.closeReason != Ok {
		t.Fatalf("b close reason = %v/%v", p.ob.closed, p.ob.closeReason)
	}
}

func TestCloseDrainsQueueFirst(t *testing.T) {
	p := newPair(t, 12, 5*time.Millisecond, Config{InitialWindow: 2, MSS: 1000})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 20_000) // much more than the initial window
	p.a.Close()
	p.s.Run()
	if p.ob.newBytes != 20_000 {
		t.Fatalf("close truncated the stream: %d", p.ob.newBytes)
	}
}

func TestTimeoutEventExposesCurrentRTO(t *testing.T) {
	// The §4.2 controller keys off the reported RTO value crossing a
	// threshold; verify reported values grow past 1s under sustained loss.
	p := newPair(t, 13, 10*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	p.dropAtoB = func(s *seg.Segment) bool { return true }
	push(p.a, 0, 3000)
	var crossed sim.Time
	p.oa.onTimeout = func(sf *Subflow, rto time.Duration, n int) {
		if rto > time.Second && crossed == 0 {
			crossed = p.s.Now()
		}
	}
	p.s.RunFor(20 * time.Second)
	if crossed == 0 {
		t.Fatal("RTO never crossed 1s under black-hole loss")
	}
	if crossed > 5*sim.Second {
		t.Fatalf("RTO crossed 1s only at %v; backoff too slow", crossed)
	}
}

func TestDataAckCarriedOnSegments(t *testing.T) {
	p := newPair(t, 14, 5*time.Millisecond, Config{})
	p.ob.hasDataAck = true
	p.ob.dataAck = 777
	p.a.Connect()
	p.s.Run()
	var sawDataAck bool
	p.dropBtoA = func(s *seg.Segment) bool {
		if d := s.DSS(); d != nil && d.HasDataAck && d.DataAck == 777 {
			sawDataAck = true
		}
		return false
	}
	push(p.a, 0, 5000)
	p.s.Run()
	if !sawDataAck {
		t.Fatal("receiver ACKs never carried the owner's DATA_ACK")
	}
}

func TestDSSMappingOnWire(t *testing.T) {
	p := newPair(t, 15, 5*time.Millisecond, Config{MSS: 1000})
	p.a.Connect()
	p.s.Run()
	maps := map[uint64]uint16{}
	p.dropAtoB = func(s *seg.Segment) bool {
		if d := s.DSS(); d != nil && d.HasMap {
			maps[d.DataSeq] = d.MapLen
		}
		return false
	}
	push(p.a, 5000, 2500)
	p.s.Run()
	if maps[5000] != 1000 || maps[6000] != 1000 || maps[7000] != 500 {
		t.Fatalf("DSS mappings = %v", maps)
	}
}

func TestPacingRateTracksThroughput(t *testing.T) {
	p := newPair(t, 16, 20*time.Millisecond, Config{MSS: 1000})
	if p.a.PacingRate() != 0 {
		t.Fatal("pacing rate nonzero before any RTT sample")
	}
	p.a.Connect()
	p.s.Run()
	// The SYN/SYN+ACK exchange provides the first RTT sample (≈40 ms).
	if srtt := p.a.SRTT(); srtt < 39*time.Millisecond || srtt > 45*time.Millisecond {
		t.Fatalf("handshake RTT sample = %v, want ≈40ms", srtt)
	}
	if p.a.PacingRate() <= 0 {
		t.Fatal("pacing rate zero after handshake sample")
	}
	push(p.a, 0, 500_000)
	p.s.Run()
	// cwnd grew across the transfer; pacing rate must reflect cwnd/srtt.
	info := p.a.Info()
	wantMin := float64(info.Cwnd) / info.SRTT.Seconds()
	if info.PacingRate < wantMin {
		t.Fatalf("pacing %f < cwnd/srtt %f", info.PacingRate, wantMin)
	}
}

func TestInfoSnapshot(t *testing.T) {
	p := newPair(t, 17, 5*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 10_000)
	p.s.Run()
	in := p.a.Info()
	if in.State != StateEstablished {
		t.Fatalf("state %v", in.State)
	}
	if in.Stats.BytesAcked != 10_000 {
		t.Fatalf("BytesAcked = %d", in.Stats.BytesAcked)
	}
	if in.SndUna != in.SndNxt {
		t.Fatal("drained subflow has una != nxt")
	}
	if in.RTO < MinRTO {
		t.Fatalf("RTO = %v below floor", in.RTO)
	}
	if in.Backup {
		t.Fatal("default backup flag set")
	}
	p.a.SetBackup(true)
	if !p.a.Info().Backup {
		t.Fatal("SetBackup not reflected")
	}
}

func TestReorderingToleratedWithoutRetransmit(t *testing.T) {
	// Swap two adjacent data segments; cumulative ACKs plus the 3-dupack
	// threshold must absorb a single reordering without spurious loss.
	p := newPair(t, 18, 10*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	var held *seg.Segment
	swapped := false
	p.dropAtoB = func(s *seg.Segment) bool {
		if !swapped && s.PayloadLen > 0 {
			if held == nil {
				held = s.Clone()
				return true // hold the first data segment briefly
			}
			swapped = true
			h := held
			p.s.After(time.Millisecond, "release-held", func() {
				p.s.After(10*time.Millisecond, "wire->b", func() { p.b.HandleSegment(h) })
			})
		}
		return false
	}
	push(p.a, 0, 50_000)
	p.s.Run()
	if p.ob.newBytes != 50_000 {
		t.Fatalf("got %d", p.ob.newBytes)
	}
	if st := p.a.Info().Stats; st.FastRetrans != 0 && st.Timeouts != 0 {
		t.Fatalf("reordering triggered retransmits: %+v", st)
	}
}
