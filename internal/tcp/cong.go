package tcp

// Cong is the congestion-control interface a subflow drives. Implementations
// own the congestion window; the subflow reports ACK, dup-ACK-loss and RTO
// events and asks for the current window when deciding whether to transmit.
//
// The stock implementation is Reno (what the paper's Mininet experiments
// run per subflow); internal/mptcp adds the coupled LIA controller that
// shares state across the subflows of a connection.
type Cong interface {
	// Cwnd reports the congestion window in bytes.
	Cwnd() int
	// SSThresh reports the slow-start threshold in bytes.
	SSThresh() int
	// InSlowStart reports whether the controller is in slow start.
	InSlowStart() bool
	// OnAck processes acked bytes of new data; flight is the bytes in
	// flight before the ACK.
	OnAck(acked, flight int)
	// OnDupAckLoss processes a fast-retransmit loss event.
	OnDupAckLoss(flight int)
	// OnRTO processes a retransmission timeout.
	OnRTO(flight int)
}

// Reno is classic NewReno-style congestion control: slow start doubling,
// AIMD congestion avoidance, halving on fast retransmit, collapse to one
// MSS on RTO.
type Reno struct {
	mss      int
	cwnd     int
	ssthresh int
	caAccum  int // fractional cwnd growth accumulator for congestion avoidance
}

// NewReno returns a Reno controller with the given MSS and initial window
// (in segments; Linux uses 10).
func NewReno(mss, initialWindowSegs int) *Reno {
	if initialWindowSegs <= 0 {
		initialWindowSegs = 10
	}
	return &Reno{
		mss:      mss,
		cwnd:     mss * initialWindowSegs,
		ssthresh: 1 << 30, // "infinite" until the first loss
	}
}

// Cwnd implements Cong.
func (r *Reno) Cwnd() int { return r.cwnd }

// SSThresh implements Cong.
func (r *Reno) SSThresh() int { return r.ssthresh }

// InSlowStart implements Cong.
func (r *Reno) InSlowStart() bool { return r.cwnd < r.ssthresh }

// OnAck implements Cong.
func (r *Reno) OnAck(acked, flight int) {
	if acked <= 0 {
		return
	}
	if r.InSlowStart() {
		r.cwnd += acked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	// Congestion avoidance: one MSS per cwnd of acked bytes.
	r.caAccum += acked * r.mss
	if grow := r.caAccum / r.cwnd; grow > 0 {
		r.cwnd += grow
		r.caAccum -= grow * r.cwnd // approximation; keeps growth ≈ mss/RTT
	}
}

// OnDupAckLoss implements Cong: multiplicative decrease.
func (r *Reno) OnDupAckLoss(flight int) {
	r.ssthresh = max(flight/2, 2*r.mss)
	r.cwnd = r.ssthresh
	r.caAccum = 0
}

// OnRTO implements Cong: collapse to one segment.
func (r *Reno) OnRTO(flight int) {
	r.ssthresh = max(flight/2, 2*r.mss)
	r.cwnd = r.mss
	r.caAccum = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
