package tcp

import (
	"testing"
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
)

// TestSACKRepairsBurstWithoutRTO drops a burst of consecutive segments;
// SACK-based recovery must repair all of them without a retransmission
// timeout (the pre-SACK engine needed one RTO per lost retransmission).
func TestSACKRepairsBurstWithoutRTO(t *testing.T) {
	p := newPair(t, 30, 10*time.Millisecond, Config{MSS: 1000})
	p.a.Connect()
	p.s.Run()
	dropped := 0
	arm := false
	p.dropAtoB = func(s *seg.Segment) bool {
		if arm && s.PayloadLen > 0 && dropped < 8 {
			dropped++
			return true
		}
		return false
	}
	push(p.a, 0, 100_000)
	p.s.RunFor(25 * time.Millisecond) // let some data land first
	arm = true
	p.s.Run()
	if p.ob.newBytes != 100_000 {
		t.Fatalf("receiver got %d", p.ob.newBytes)
	}
	if dropped != 8 {
		t.Fatalf("dropped %d, want 8", dropped)
	}
	st := p.a.Info().Stats
	if st.Timeouts != 0 {
		t.Fatalf("burst needed %d RTOs; SACK recovery broken", st.Timeouts)
	}
	if st.FastRetrans == 0 {
		t.Fatal("no recovery episode recorded")
	}
}

// TestSACKNoSpuriousRetransmits verifies a lossless transfer retransmits
// nothing even with SACK processing active.
func TestSACKNoSpuriousRetransmits(t *testing.T) {
	p := newPair(t, 31, 25*time.Millisecond, Config{})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 2_000_000)
	p.s.Run()
	st := p.a.Info().Stats
	if st.BytesRetrans != 0 || st.FastRetrans != 0 || st.Timeouts != 0 {
		t.Fatalf("spurious recovery on clean path: %+v", st)
	}
}

// TestSACKSingleHalvingPerEpisode: one loss burst must halve the window
// once, not once per SACK-carrying ACK.
func TestSACKSingleHalvingPerEpisode(t *testing.T) {
	p := newPair(t, 32, 10*time.Millisecond, Config{MSS: 1000})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 80_000) // one initial window's worth of growth
	p.s.Run()
	dropN := 0
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.PayloadLen > 0 && dropN < 3 {
			dropN++
			return true
		}
		return false
	}
	push(p.a, 80_000, 80_000)
	p.s.Run()
	if p.ob.newBytes != 160_000 {
		t.Fatalf("got %d", p.ob.newBytes)
	}
	if fr := p.a.Info().Stats.FastRetrans; fr != 1 {
		t.Fatalf("recovery episodes = %d, want 1 (single burst)", fr)
	}
}

// TestSACKOptionOnWire: receiver ACKs carry SACK blocks for buffered
// out-of-order data.
func TestSACKOptionOnWire(t *testing.T) {
	p := newPair(t, 33, 10*time.Millisecond, Config{MSS: 1000})
	p.a.Connect()
	p.s.Run()
	first := true
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.PayloadLen > 0 && first {
			first = false
			return true
		}
		return false
	}
	sawSACK := false
	p.dropBtoA = func(s *seg.Segment) bool {
		if sk := s.SACK(); sk != nil && len(sk.Blocks) > 0 {
			if sk.Blocks[0].Lo >= sk.Blocks[0].Hi {
				t.Fatalf("degenerate SACK block %+v", sk.Blocks[0])
			}
			sawSACK = true
		}
		return false
	}
	push(p.a, 0, 50_000)
	p.s.Run()
	if !sawSACK {
		t.Fatal("no SACK blocks on the wire despite a hole")
	}
}

// TestPacingSpacesTransmissions: with pacing enabled, segments leave with
// gaps ≈ segment/pacing_rate instead of back-to-back bursts.
func TestPacingSpacesTransmissions(t *testing.T) {
	var times []sim.Time
	p := newPair(t, 34, 20*time.Millisecond, Config{MSS: 1000})
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.PayloadLen > 0 {
			times = append(times, p.s.Now())
		}
		return false
	}
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 1_000_000)
	p.s.Run()
	if p.ob.newBytes != 1_000_000 {
		t.Fatalf("got %d", p.ob.newBytes)
	}
	// Beyond the initial window, consecutive sends must not be simultaneous.
	spaced := 0
	for i := 11; i < len(times); i++ {
		if times[i] > times[i-1] {
			spaced++
		}
	}
	if float64(spaced) < 0.8*float64(len(times)-11) {
		t.Fatalf("only %d/%d post-IW sends were paced", spaced, len(times)-11)
	}
}

// TestNoPacingAblation: with NoPacing the whole window leaves in one burst.
func TestNoPacingAblation(t *testing.T) {
	var times []sim.Time
	p := newPair(t, 35, 20*time.Millisecond, Config{MSS: 1000, InitialWindow: 20, NoPacing: true})
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.PayloadLen > 0 {
			times = append(times, p.s.Now())
		}
		return false
	}
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 20_000)
	p.s.Run()
	if len(times) < 20 {
		t.Fatalf("sent %d segments", len(times))
	}
	for i := 1; i < 20; i++ {
		if times[i] != times[0] {
			t.Fatalf("unpaced initial window not a burst: %v vs %v", times[i], times[0])
		}
	}
}

// TestPeerWindowLimitsSender: a tiny advertised receive window caps the
// flight regardless of cwnd.
func TestPeerWindowLimitsSender(t *testing.T) {
	p := newPair(t, 36, 10*time.Millisecond, Config{MSS: 1000, RcvWnd: 4096})
	p.a.Connect()
	p.s.Run()
	push(p.a, 0, 100_000)
	if f := p.a.Flight(); f > 4096 {
		t.Fatalf("flight %d exceeds the peer's 4096-byte window", f)
	}
	p.s.Run()
	if p.ob.newBytes != 100_000 {
		t.Fatalf("got %d", p.ob.newBytes)
	}
}

// TestRTOFiresDespiteContinuousSending: the retransmission timer must not
// be pushed forward by ongoing transmissions (RFC 6298 rule 5.1); a head-
// of-line hole whose retransmission is lost must still trigger the RTO.
func TestRTOFiresDespiteContinuousSending(t *testing.T) {
	p := newPair(t, 37, 10*time.Millisecond, Config{MSS: 1000})
	p.a.Connect()
	p.s.Run()
	// Drop the first data segment AND its retransmission; everything else
	// passes. Recovery then requires the RTO path.
	headDrops := 0
	var headSeq uint32
	p.dropAtoB = func(s *seg.Segment) bool {
		if s.PayloadLen == 0 {
			return false
		}
		if headDrops == 0 {
			headSeq = s.Seq
			headDrops++
			return true
		}
		if s.Seq == headSeq && headDrops < 2 {
			headDrops++
			return true
		}
		return false
	}
	push(p.a, 0, 200_000)
	p.s.Run()
	if p.ob.newBytes != 200_000 {
		t.Fatalf("got %d", p.ob.newBytes)
	}
	if p.a.Info().Stats.Timeouts == 0 {
		t.Fatal("lost retransmission was never repaired by RTO")
	}
}

// TestSackedChunksNeverRetransmit: markAllLost after an RTO must skip
// SACKed chunks (they were delivered; resending them wastes the window).
func TestSackedChunksNeverRetransmit(t *testing.T) {
	q := sendQueue{}
	a := &Chunk{SubSeq: 0, Len: 100, sent: true}
	b := &Chunk{SubSeq: 100, Len: 100, sent: true, sacked: true}
	c := &Chunk{SubSeq: 200, Len: 100, sent: true}
	q.push(a)
	q.push(b)
	q.push(c)
	q.markAllLost()
	if b.lost {
		t.Fatal("SACKed chunk marked lost")
	}
	if !a.lost || !c.lost {
		t.Fatal("unSACKed chunks not marked")
	}
	if q.nextToSend() != a {
		t.Fatal("retransmission order wrong")
	}
	a.lost = false
	a.sent = true
	if q.nextToSend() != c {
		t.Fatal("SACKed chunk offered for retransmission")
	}
}

func TestApplySACKBounds(t *testing.T) {
	q := sendQueue{}
	for i := 0; i < 5; i++ {
		q.push(&Chunk{SubSeq: uint32(i * 100), Len: 100, sent: i < 4}) // last unsent
	}
	high, newly := q.applySACK([]sackRange{{lo: 100, hi: 300}})
	if len(newly) != 2 {
		t.Fatalf("newly = %d, want chunks 1,2", len(newly))
	}
	if high != 300 {
		t.Fatalf("high = %d", high)
	}
	// Partial coverage does not SACK a chunk.
	_, newly = q.applySACK([]sackRange{{lo: 300, hi: 350}})
	if len(newly) != 0 {
		t.Fatal("partially covered chunk SACKed")
	}
	// Unsent chunks are never SACKed (data the peer cannot have).
	_, newly = q.applySACK([]sackRange{{lo: 400, hi: 500}})
	if len(newly) != 0 {
		t.Fatal("unsent chunk SACKed")
	}
}

func TestMarkSACKHolesThreshold(t *testing.T) {
	q := sendQueue{}
	for i := 0; i < 6; i++ {
		q.push(&Chunk{SubSeq: uint32(i * 100), Len: 100, sent: true})
	}
	q.applySACK([]sackRange{{lo: 500, hi: 600}})
	// Threshold 200: only chunks ending ≤ 400 qualify (0..3).
	if !q.markSACKHoles(600, 200) {
		t.Fatal("no holes marked")
	}
	marked := 0
	for _, c := range q.all() {
		if c.lost {
			marked++
		}
	}
	if marked != 4 {
		t.Fatalf("marked %d holes, want 4", marked)
	}
	// Re-marking is idempotent and retransmitted chunks are exempt.
	for _, c := range q.all() {
		if c.lost {
			c.lost = false
			c.rexmits = 1
		}
	}
	if q.markSACKHoles(600, 200) {
		t.Fatal("re-marked retransmitted holes")
	}
}
