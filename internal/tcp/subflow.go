package tcp

import (
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// State is the subflow TCP state (a pragmatic subset of RFC 793).
type State int

// Subflow states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait // we sent FIN, waiting for it to be acked and/or peer FIN
	StateDead    // terminal; OnClosed has fired
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN_SENT"
	case StateSynRcvd:
		return "SYN_RCVD"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateDead:
		return "DEAD"
	}
	return "?"
}

// Stage identifies the handshake message being built or inspected.
type Stage int

// Handshake stages.
const (
	StageSYN Stage = iota
	StageSYNACK
	StageACK
)

// Output transmits a segment onto the network (the MPTCP endpoint wires
// this to the owning netem host). Ownership of the segment transfers to
// the callee: the subflow never touches a segment after handing it off,
// so the network may retire it to the segment pool once consumed.
type Output func(*seg.Segment)

// Verdict is the owner's decision about a handshake segment.
type Verdict int

// Handshake verdicts.
const (
	// Accept lets the handshake proceed.
	Accept Verdict = iota
	// Reject aborts the subflow with a RST (authentication failure).
	Reject
	// Ignore drops the segment without state change; the peer's
	// retransmissions will retry the handshake step.
	Ignore
)

// Owner is the Multipath TCP connection a subflow belongs to. It supplies
// handshake options (MP_CAPABLE / MP_JOIN material), validates the peer's,
// consumes inbound segments (DSS processing, ADD_ADDR, ...), supplies the
// connection-level data ACK for outbound segments, and learns about ACK
// progress, retransmission timeouts and subflow death — the raw material
// for the paper's path-manager events.
type Owner interface {
	// HandshakeOptions returns the MPTCP options to attach at a stage.
	HandshakeOptions(sf *Subflow, st Stage) []seg.Option
	// HandshakeAccept validates the peer's handshake segment.
	HandshakeAccept(sf *Subflow, s *seg.Segment, st Stage) Verdict
	// OnEstablished fires once the three-way handshake completes.
	OnEstablished(sf *Subflow)
	// OnSegment delivers every inbound segment once established;
	// hasNewData reports whether the payload contained new subflow bytes.
	// The segment (and its options) is only on loan for the duration of
	// the call: the delivering endpoint retires it to the pool afterwards,
	// so implementations must copy anything they keep.
	OnSegment(sf *Subflow, s *seg.Segment, hasNewData bool)
	// CurrentDataAck supplies the connection-level DATA_ACK for outbound
	// segments; ok=false omits it.
	CurrentDataAck() (uint64, bool)
	// OnAckAdvance fires when the cumulative ACK moved (window opened);
	// acked lists the chunks now fully acknowledged at subflow level.
	// The chunks are recycled when the call returns — read, don't retain.
	OnAckAdvance(sf *Subflow, acked []*Chunk)
	// OnTimeout fires on every retransmission timer expiry with the
	// *backed-off* RTO now in force and the consecutive-backoff count.
	OnTimeout(sf *Subflow, rto time.Duration, backoffs int)
	// OnClosed fires exactly once when the subflow dies; reason is Ok for
	// a graceful close.
	OnClosed(sf *Subflow, reason Errno)
}

// Config tunes a subflow. The zero value is usable: defaults mirror Linux.
type Config struct {
	MSS           int    // payload bytes per segment (default 1380)
	InitialWindow int    // initial cwnd in segments (default 10)
	RcvWnd        uint32 // advertised receive window bytes (default 4 MiB)
	MaxBackoffs   int    // consecutive RTO backoffs before death (default 15)
	SynRetries    int    // SYN (or SYN+ACK) retransmissions before death (default 6)
	NoPacing      bool   // disable sk_pacing_rate-style send pacing (ablation)
	NewCong       func(mss, initialWindowSegs int) Cong
	Metrics       Metrics // live metric handles; zero value records nothing
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1380
	}
	if c.InitialWindow == 0 {
		c.InitialWindow = 10
	}
	if c.RcvWnd == 0 {
		c.RcvWnd = 4 << 20
	}
	if c.MaxBackoffs == 0 {
		c.MaxBackoffs = 15
	}
	if c.SynRetries == 0 {
		c.SynRetries = 6
	}
	if c.NewCong == nil {
		c.NewCong = func(mss, iw int) Cong { return NewReno(mss, iw) }
	}
	return c
}

// Stats counts subflow activity (a subset of what TCP_INFO exposes).
type Stats struct {
	SegsSent     uint64
	SegsRcvd     uint64
	BytesSent    uint64 // payload bytes, first transmissions only
	BytesRetrans uint64
	BytesAcked   uint64
	Retrans      uint64 // retransmitted segments (RTO-driven)
	FastRetrans  uint64
	Timeouts     uint64 // RTO expirations
}

// Subflow is one TCP subflow of a Multipath TCP connection.
type Subflow struct {
	sim    sim.Clock
	cfg    Config
	out    Output
	owner  Owner
	tuple  seg.FourTuple
	backup bool

	// Address IDs used in MP_JOIN / ADD_ADDR bookkeeping.
	LocalAddrID  uint8
	RemoteAddrID uint8

	state State

	iss, irs uint32 // initial send / receive sequence numbers
	sndUna   uint32
	sndNxt   uint32
	rcv      rcvQueue
	peerWnd  uint32

	sq        sendQueue
	pushNxt   uint32 // next subflow sequence number to assign to pushed data
	cc        Cong
	rtt       *RTTEstimator
	rtoTimer  *sim.Timer
	synTimer  *sim.Timer
	paceTimer *sim.Timer
	backoffs  int
	dupAcks   int

	// SACK-based loss recovery (RFC 2018 / RFC 6675).
	inRecovery    bool
	recoveryPoint uint32
	highSacked    uint32

	synRexmits int
	synSentAt  sim.Time
	estabAt    sim.Time

	closing  bool // local Close requested
	finSent  bool
	finSeq   uint32
	finAcked bool
	finRcvd  bool
	lastSYN  *seg.Segment // retained for handshake retransmission
	stats    Stats

	sackScratch []sackRange // reused per-ACK SACK block buffer

	// Trace recording (nil shard = tracing off; every hook is a
	// nil-guarded store into a preallocated ring, never an allocation).
	tsh *trace.Shard
	tid uint32
}

// NewSubflow creates a subflow bound to tuple. It starts closed; call
// Connect for the active side or HandleSegment with the peer's SYN for the
// passive side.
func NewSubflow(c sim.Clock, cfg Config, tuple seg.FourTuple, out Output, owner Owner) *Subflow {
	cfg = cfg.withDefaults()
	sf := &Subflow{
		sim:     c,
		cfg:     cfg,
		out:     out,
		owner:   owner,
		tuple:   tuple,
		rtt:     NewRTTEstimator(),
		cc:      cfg.NewCong(cfg.MSS, cfg.InitialWindow),
		peerWnd: cfg.RcvWnd,
	}
	sf.rtoTimer = sim.NewTimer(c, "tcp.rto:"+tuple.String(), sf.onRTO)
	sf.synTimer = sim.NewTimer(c, "tcp.syn-rto:"+tuple.String(), sf.onSynTimeout)
	sf.paceTimer = sim.NewTimer(c, "tcp.pace:"+tuple.String(), sf.sendLoop)
	return sf
}

// Accessors.

// Tuple reports the subflow's 4-tuple.
func (sf *Subflow) Tuple() seg.FourTuple { return sf.tuple }

// SetTrace binds the subflow to a trace shard under the given entity
// id. The owner (the MPTCP connection) registers the entity and calls
// this at subflow creation; a nil shard leaves tracing off.
func (sf *Subflow) SetTrace(sh *trace.Shard, id uint32) {
	sf.tsh = sh
	sf.tid = id
}

// TraceID reports the subflow's trace entity id (0 = untraced).
func (sf *Subflow) TraceID() uint32 { return sf.tid }

// traceCC records the congestion state (SRTT, flight, cwnd) after an
// update — the raw material of the analyzer's RTT/cwnd time series.
func (sf *Subflow) traceCC() {
	if sf.tsh == nil {
		return
	}
	sf.tsh.Rec(sf.sim.Now(), trace.KCC, sf.tid,
		uint64(sf.rtt.SRTT()), uint32(sf.sq.flight()), uint64(sf.cc.Cwnd()), 0)
}

// State reports the current TCP state.
func (sf *Subflow) State() State { return sf.state }

// Backup reports the subflow's backup priority flag.
func (sf *Subflow) Backup() bool { return sf.backup }

// SetBackup sets the local view of the backup flag (MP_PRIO handling and
// join options are the owner's business).
func (sf *Subflow) SetBackup(b bool) { sf.backup = b }

// MSS reports the configured segment payload size.
func (sf *Subflow) MSS() int { return sf.cfg.MSS }

// SndUna reports the lowest unacknowledged subflow sequence number.
func (sf *Subflow) SndUna() uint32 { return sf.sndUna }

// SynSentAt reports when the SYN was first transmitted (Fig. 3 measures
// from this instant).
func (sf *Subflow) SynSentAt() sim.Time { return sf.synSentAt }

// EstablishedAt reports when the handshake completed (zero until then).
func (sf *Subflow) EstablishedAt() sim.Time { return sf.estabAt }

// Established reports whether data can flow.
func (sf *Subflow) Established() bool {
	return sf.state == StateEstablished || sf.state == StateFinWait
}

// SRTT exposes the smoothed RTT estimate.
func (sf *Subflow) SRTT() time.Duration { return sf.rtt.SRTT() }

// CurrentRTO reports the retransmission timeout now in force, including
// exponential backoff — the value the paper's timeout event reports.
func (sf *Subflow) CurrentRTO() time.Duration {
	return BackoffRTO(sf.rtt.RTO(), sf.backoffs)
}

// Backoffs reports the consecutive RTO backoff count.
func (sf *Subflow) Backoffs() int { return sf.backoffs }

// Flight reports bytes in flight (sent, unacked, not marked lost).
func (sf *Subflow) Flight() int { return sf.sq.flight() }

// QueuedUnsent reports payload bytes pushed but never transmitted.
func (sf *Subflow) QueuedUnsent() int { return sf.sq.unsentBytes() }

// AvailableCwnd reports how many further payload bytes the scheduler may
// push right now without overrunning the congestion or peer window.
func (sf *Subflow) AvailableCwnd() int {
	if !sf.Established() || sf.closing {
		return 0
	}
	wnd := sf.cc.Cwnd()
	if int(sf.peerWnd) < wnd {
		wnd = int(sf.peerWnd)
	}
	used := sf.sq.flight() + sf.sq.unsentBytes()
	if used >= wnd {
		return 0
	}
	return wnd - used
}

// UnackedChunks lists the chunks not yet acknowledged at subflow level, in
// sequence order. The MPTCP connection uses it to reinject data elsewhere.
func (sf *Subflow) UnackedChunks() []*Chunk { return sf.sq.all() }

// PacingRate estimates the subflow's sending rate in bytes/second the way
// Linux computes sk_pacing_rate: cwnd/srtt scaled by 2 in slow start and
// 1.2 in congestion avoidance. Zero before the first RTT sample.
func (sf *Subflow) PacingRate() float64 {
	srtt := sf.rtt.SRTT()
	if srtt <= 0 {
		return 0
	}
	factor := 1.2
	if sf.cc.InSlowStart() {
		factor = 2.0
	}
	return factor * float64(sf.cc.Cwnd()) / srtt.Seconds()
}

// Info returns a TCP_INFO-style snapshot (what the paper's get-info command
// retrieves from the kernel).
func (sf *Subflow) Info() Info {
	return Info{
		Tuple:         sf.tuple,
		State:         sf.state,
		Backup:        sf.backup,
		SndUna:        sf.sndUna,
		SndNxt:        sf.sndNxt,
		RcvNxt:        sf.rcv.nxt,
		Cwnd:          sf.cc.Cwnd(),
		SSThresh:      sf.cc.SSThresh(),
		SRTT:          sf.rtt.SRTT(),
		RTTVar:        sf.rtt.RTTVar(),
		RTO:           sf.CurrentRTO(),
		Backoffs:      sf.backoffs,
		PacingRate:    sf.PacingRate(),
		Flight:        sf.Flight(),
		QueuedUnsent:  sf.QueuedUnsent(),
		EstablishedAt: sf.estabAt,
		Stats:         sf.stats,
	}
}

// --- Active/passive open ---

// Connect starts the active handshake, transmitting a SYN carrying the
// owner's options (MP_CAPABLE for an initial subflow, MP_JOIN otherwise).
func (sf *Subflow) Connect() {
	if sf.state != StateClosed {
		return
	}
	sf.iss = uint32(sf.sim.Rand().Int63())
	sf.sndUna = sf.iss
	sf.sndNxt = sf.iss + 1
	sf.state = StateSynSent
	sf.synSentAt = sf.sim.Now()
	syn := &seg.Segment{
		Tuple:   sf.tuple,
		Seq:     sf.iss,
		Flags:   seg.SYN,
		Window:  sf.cfg.RcvWnd,
		Options: sf.owner.HandshakeOptions(sf, StageSYN),
	}
	sf.lastSYN = syn
	sf.transmitCopy(syn)
	sf.armSynTimer()
}

// handleSYN performs the passive open for an inbound SYN.
func (sf *Subflow) handleSYN(s *seg.Segment) {
	switch sf.owner.HandshakeAccept(sf, s, StageSYN) {
	case Reject:
		sf.sendRST(s)
		sf.die(ECONNREFUSED)
		return
	case Ignore:
		return
	}
	sf.synSentAt = sf.sim.Now()
	sf.irs = s.Seq
	sf.rcv.nxt = s.Seq + 1
	sf.peerWnd = s.Window
	sf.iss = uint32(sf.sim.Rand().Int63())
	sf.sndUna = sf.iss
	sf.sndNxt = sf.iss + 1
	sf.state = StateSynRcvd
	synack := &seg.Segment{
		Tuple:   sf.tuple,
		Seq:     sf.iss,
		Ack:     sf.rcv.nxt,
		Flags:   seg.SYN | seg.ACK,
		Window:  sf.cfg.RcvWnd,
		Options: sf.owner.HandshakeOptions(sf, StageSYNACK),
	}
	sf.lastSYN = synack
	sf.transmitCopy(synack)
	sf.armSynTimer()
}

func (sf *Subflow) armSynTimer() {
	d := InitialRTO
	for i := 0; i < sf.synRexmits; i++ {
		d *= 2
	}
	sf.synTimer.Reset(d)
}

func (sf *Subflow) onSynTimeout() {
	if sf.state != StateSynSent && sf.state != StateSynRcvd {
		return
	}
	sf.synRexmits++
	if sf.synRexmits > sf.cfg.SynRetries {
		sf.die(ETIMEDOUT)
		return
	}
	sf.stats.Retrans++
	sf.cfg.Metrics.Retrans.Inc()
	sf.transmitCopy(sf.lastSYN)
	sf.armSynTimer()
}

// --- Data path ---

// Push queues ln payload bytes covering connection data sequence dataSeq
// and transmits as the window allows. dataFIN marks the mapping that
// carries the connection-level FIN. It returns the chunk for bookkeeping;
// the chunk stays owned by the subflow and is recycled once acked, so
// callers must not retain it past the next ack/close callback.
func (sf *Subflow) Push(dataSeq uint64, ln int, dataFIN bool) *Chunk {
	c := newChunk(sf.pushNxt, ln, dataSeq, dataFIN)
	sf.pushNxt += uint32(ln)
	sf.sq.push(c)
	sf.trySend()
	return c
}

// trySend transmits whatever the congestion and peer windows allow,
// retransmitting lost chunks first. Transmissions are paced at the
// sk_pacing_rate estimate (unless Config.NoPacing), which is what keeps
// the stack from dumping window-sized bursts into drop-tail queues — the
// behaviour of Linux since the pacing work the paper cites [4].
func (sf *Subflow) trySend() {
	if !sf.Established() {
		return
	}
	if sf.paceTimer.Armed() {
		// The pacer owns the transmit loop until its next tick.
		sf.armRTO()
		return
	}
	sf.sendLoop()
}

// sendLoop is the (possibly pacer-resumed) transmit loop.
func (sf *Subflow) sendLoop() {
	if !sf.Established() {
		return
	}
	for {
		c := sf.sq.nextToSend()
		if c == nil {
			break
		}
		wnd := sf.cc.Cwnd()
		if int(sf.peerWnd) < wnd {
			wnd = int(sf.peerWnd)
		}
		flight := sf.sq.flight()
		if flight > 0 && flight+c.Len > wnd {
			break
		}
		sf.sendChunk(c)
		if gap, ok := sf.paceGap(c.Len); ok {
			sf.paceTimer.Reset(gap)
			break
		}
	}
	sf.maybeSendFIN()
	sf.armRTO()
}

// paceGap computes the inter-segment spacing for the pacer; ok is false
// when pacing is off or no rate estimate exists yet (initial-window burst).
func (sf *Subflow) paceGap(segLen int) (time.Duration, bool) {
	if sf.cfg.NoPacing {
		return 0, false
	}
	rate := sf.PacingRate()
	if rate <= 0 {
		return 0, false
	}
	gap := time.Duration(float64(segLen) / rate * float64(time.Second))
	if gap < time.Microsecond {
		return 0, false
	}
	const maxGap = 100 * time.Millisecond // keep collapsed-cwnd senders alive
	if gap > maxGap {
		gap = maxGap
	}
	return gap, true
}

func (sf *Subflow) sendChunk(c *Chunk) {
	retrans := c.sent
	if retrans {
		c.rexmits++
		c.lost = false
		sf.stats.Retrans++
		sf.stats.BytesRetrans += uint64(c.Len)
		sf.cfg.Metrics.Retrans.Inc()
	} else {
		c.sent = true
		if end := c.SubSeq + uint32(c.Len); seqLT(sf.sndNxt, end) {
			sf.sndNxt = end
		}
		sf.stats.BytesSent += uint64(c.Len)
	}
	c.sentAt = sf.sim.Now()
	if sf.tsh != nil {
		var fl uint8
		if retrans {
			fl = trace.FRetrans
		}
		sf.tsh.Rec(c.sentAt, trace.KSend, sf.tid, uint64(c.SubSeq), uint32(c.Len), c.DataSeq, fl)
	}
	s := seg.Shared.Get()
	s.Tuple = sf.tuple
	s.Seq = c.SubSeq
	s.Ack = sf.rcv.nxt
	s.Flags = seg.ACK | seg.PSH
	s.Window = sf.cfg.RcvWnd
	s.PayloadLen = c.Len
	dss := s.ScratchDSS()
	dss.HasMap = true
	dss.DataSeq = c.DataSeq
	dss.SubflowSeq = c.SubSeq - (sf.iss + 1)
	dss.MapLen = uint16(c.Len)
	dss.DataFIN = c.DataFIN
	if ack, ok := sf.owner.CurrentDataAck(); ok {
		dss.HasDataAck = true
		dss.DataAck = ack
	}
	sf.transmit(s)
}

func (sf *Subflow) maybeSendFIN() {
	if !sf.closing || sf.finSent || !sf.sq.empty() || sf.state != StateEstablished && sf.state != StateFinWait {
		return
	}
	sf.finSent = true
	sf.finSeq = sf.sndNxt
	sf.sndNxt++
	sf.state = StateFinWait
	fin := seg.Shared.Get()
	fin.Tuple = sf.tuple
	fin.Seq = sf.finSeq
	fin.Ack = sf.rcv.nxt
	fin.Flags = seg.FIN | seg.ACK
	fin.Window = sf.cfg.RcvWnd
	sf.transmit(fin)
}

// SendDSSAck emits a pure ACK carrying the current connection-level
// DATA_ACK (used by the connection to acknowledge data-level progress and
// to duplicate data ACKs after reinjection).
func (sf *Subflow) SendDSSAck() {
	if !sf.Established() {
		return
	}
	sf.sendAck()
}

func (sf *Subflow) sendAck() {
	s := seg.Shared.Get()
	s.Tuple = sf.tuple
	s.Seq = sf.sndNxt
	s.Ack = sf.rcv.nxt
	s.Flags = seg.ACK
	s.Window = sf.cfg.RcvWnd
	if ack, ok := sf.owner.CurrentDataAck(); ok {
		d := s.ScratchDSS()
		d.HasDataAck = true
		d.DataAck = ack
	}
	// Report out-of-order data so the sender can repair loss bursts
	// without collapsing to an RTO (three blocks fit alongside the DSS).
	if blocks := sf.rcv.sackBlocks(3); len(blocks) > 0 {
		sk := s.ScratchSACK()
		for _, b := range blocks {
			sk.Blocks = append(sk.Blocks, seg.SackBlock{Lo: b.lo, Hi: b.hi})
		}
	}
	sf.transmit(s)
}

// SendOptions emits a pure ACK carrying arbitrary MPTCP options (ADD_ADDR,
// MP_PRIO, REMOVE_ADDR announcements ride on these). Ownership of the
// options transfers to the network.
func (sf *Subflow) SendOptions(opts ...seg.Option) {
	if !sf.Established() {
		return
	}
	s := seg.Shared.Get()
	s.Tuple = sf.tuple
	s.Seq = sf.sndNxt
	s.Ack = sf.rcv.nxt
	s.Flags = seg.ACK
	s.Window = sf.cfg.RcvWnd
	s.Options = append(s.Options, opts...)
	sf.transmit(s)
}

// transmit hands s to the network, transferring ownership: the subflow
// must not touch s afterwards (the receiving endpoint retires it to the
// segment pool once handled).
func (sf *Subflow) transmit(s *seg.Segment) {
	sf.stats.SegsSent++
	sf.out(s)
}

// transmitCopy transmits a pooled clone of a segment the subflow retains
// (the handshake segments kept for retransmission).
func (sf *Subflow) transmitCopy(s *seg.Segment) {
	sf.transmit(s.Clone())
}

// --- Close paths ---

// Close requests a graceful close: queued data drains, then a FIN.
func (sf *Subflow) Close() {
	if sf.state == StateDead || sf.closing {
		return
	}
	sf.closing = true
	sf.trySend()
}

// Abort sends a RST to the peer and kills the subflow immediately with the
// given reason (ECONNABORTED for path-manager-initiated removal).
func (sf *Subflow) Abort(reason Errno) {
	if sf.state == StateDead {
		return
	}
	if sf.state == StateEstablished || sf.state == StateFinWait || sf.state == StateSynRcvd {
		rst := seg.Shared.Get()
		rst.Tuple = sf.tuple
		rst.Seq = sf.sndNxt
		rst.Ack = sf.rcv.nxt
		rst.Flags = seg.RST | seg.ACK
		sf.transmit(rst)
	}
	sf.die(reason)
}

func (sf *Subflow) sendRST(cause *seg.Segment) {
	rst := seg.Shared.Get()
	rst.Tuple = cause.Tuple.Reverse()
	rst.Seq = cause.Ack
	rst.Ack = cause.SeqEnd()
	rst.Flags = seg.RST | seg.ACK
	sf.transmit(rst)
}

func (sf *Subflow) die(reason Errno) {
	if sf.state == StateDead {
		return
	}
	sf.state = StateDead
	sf.rtoTimer.Stop()
	sf.synTimer.Stop()
	sf.paceTimer.Stop()
	sf.owner.OnClosed(sf, reason)
	// The owner has reinjected whatever it wanted (OnClosed reads
	// UnackedChunks); the remaining queue can be recycled now.
	putChunks(sf.sq.chunks)
	sf.sq.chunks = nil
}

// --- Inbound ---

// HandleSegment processes one inbound segment (the endpoint demultiplexes
// by 4-tuple and calls this).
func (sf *Subflow) HandleSegment(s *seg.Segment) {
	sf.stats.SegsRcvd++
	if sf.tsh != nil {
		sf.tsh.Rec(sf.sim.Now(), trace.KRecv, sf.tid, uint64(s.Seq), uint32(s.PayloadLen), uint64(s.Ack), 0)
	}
	switch sf.state {
	case StateClosed:
		if s.Is(seg.SYN) && !s.Is(seg.ACK) {
			sf.handleSYN(s)
		}
	case StateSynSent:
		sf.handleSynSent(s)
	case StateSynRcvd:
		sf.handleSynRcvd(s)
	case StateEstablished, StateFinWait:
		sf.handleEstablished(s)
	case StateDead:
		// Late segments to a dead subflow get a RST so the peer cleans up.
		if !s.Is(seg.RST) {
			sf.sendRST(s)
		}
	}
}

func (sf *Subflow) handleSynSent(s *seg.Segment) {
	if s.Is(seg.RST) {
		sf.die(ECONNREFUSED)
		return
	}
	if !s.Is(seg.SYN|seg.ACK) || s.Ack != sf.sndNxt {
		return
	}
	switch sf.owner.HandshakeAccept(sf, s, StageSYNACK) {
	case Reject:
		sf.sendRST(s)
		sf.die(ECONNREFUSED)
		return
	case Ignore:
		return
	}
	sf.irs = s.Seq
	sf.rcv.nxt = s.Seq + 1
	sf.sndUna = s.Ack
	sf.peerWnd = s.Window
	if sf.synRexmits == 0 {
		// The SYN↔SYN+ACK exchange is a clean RTT sample (Karn holds).
		sf.rtt.Sample(time.Duration(sf.sim.Now() - sf.synSentAt))
	}
	// Third handshake ACK, carrying stage-ACK options (both keys for
	// MP_CAPABLE, the full HMAC for MP_JOIN). It must be transmitted
	// before OnEstablished runs: a path manager may react by opening a
	// join, and that SYN must not overtake this ACK on the wire.
	ack := seg.Shared.Get()
	ack.Tuple = sf.tuple
	ack.Seq = sf.sndNxt
	ack.Ack = sf.rcv.nxt
	ack.Flags = seg.ACK
	ack.Window = sf.cfg.RcvWnd
	ack.Options = append(ack.Options, sf.owner.HandshakeOptions(sf, StageACK)...)
	sf.transmit(ack)
	sf.becomeEstablished()
}

func (sf *Subflow) handleSynRcvd(s *seg.Segment) {
	if s.Is(seg.RST) {
		sf.die(ECONNRESET)
		return
	}
	if s.Is(seg.SYN) && !s.Is(seg.ACK) {
		// Duplicate SYN: retransmit our SYN+ACK.
		sf.stats.Retrans++
		sf.cfg.Metrics.Retrans.Inc()
		sf.transmitCopy(sf.lastSYN)
		return
	}
	if !s.Is(seg.ACK) || s.Ack != sf.sndNxt {
		return
	}
	switch sf.owner.HandshakeAccept(sf, s, StageACK) {
	case Reject:
		sf.sendRST(s)
		sf.die(ECONNREFUSED)
		return
	case Ignore:
		return
	}
	sf.sndUna = s.Ack
	sf.peerWnd = s.Window
	if sf.synRexmits == 0 {
		sf.rtt.Sample(time.Duration(sf.sim.Now() - sf.synSentAt))
	}
	sf.becomeEstablished()
	if s.PayloadLen > 0 || len(s.Options) > 0 {
		sf.handleEstablished(s)
	}
}

func (sf *Subflow) becomeEstablished() {
	sf.state = StateEstablished
	sf.estabAt = sf.sim.Now()
	sf.synRexmits = 0
	sf.synTimer.Stop()
	sf.pushNxt = sf.sndNxt
	sf.traceCC() // first RTT sample (handshake) and the initial window
	sf.owner.OnEstablished(sf)
	sf.trySend()
}

func (sf *Subflow) handleEstablished(s *seg.Segment) {
	if s.Is(seg.RST) {
		sf.die(ECONNRESET)
		return
	}
	if s.Is(seg.SYN | seg.ACK) {
		// Duplicate SYN+ACK: our third handshake ACK was lost. Re-send it
		// (with its stage-ACK options) so the passive side can establish.
		ack := seg.Shared.Get()
		ack.Tuple = sf.tuple
		ack.Seq = sf.sndNxt
		ack.Ack = sf.rcv.nxt
		ack.Flags = seg.ACK
		ack.Window = sf.cfg.RcvWnd
		ack.Options = append(ack.Options, sf.owner.HandshakeOptions(sf, StageACK)...)
		sf.stats.Retrans++
		sf.cfg.Metrics.Retrans.Inc()
		sf.transmit(ack)
		return
	}
	if s.Is(seg.ACK) {
		sf.processAck(s)
		if sf.state == StateDead {
			return
		}
	}
	hasNew := false
	if s.PayloadLen > 0 {
		hasNew = sf.rcv.receive(s.Seq, s.PayloadLen)
	}
	if s.Is(seg.FIN) {
		finSeq := s.Seq + uint32(s.PayloadLen)
		if finSeq == sf.rcv.nxt {
			sf.rcv.nxt++
			sf.finRcvd = true
		}
	}
	sf.owner.OnSegment(sf, s, hasNew)
	if sf.state == StateDead {
		return
	}
	if s.PayloadLen > 0 || s.Is(seg.FIN) {
		sf.sendAck()
	}
	sf.checkCloseComplete()
}

func (sf *Subflow) processAck(s *seg.Segment) {
	sf.peerWnd = s.Window
	sf.processSACK(s)
	switch {
	case seqLT(sf.sndUna, s.Ack) && seqLEQ(s.Ack, sf.sndNxt):
		flightBefore := sf.sq.flight()
		acked := sf.sq.ackThrough(s.Ack)
		payloadAcked := 0
		for _, c := range acked {
			payloadAcked += c.Len
			// Chunks SACKed earlier were timed at SACK arrival; timing
			// them again here would fold in queue-wait, not path RTT.
			if c.rexmits == 0 && !c.sacked {
				sf.rtt.Sample(time.Duration(sf.sim.Now() - c.sentAt))
			}
		}
		sf.stats.BytesAcked += uint64(payloadAcked)
		sf.sndUna = s.Ack
		sf.dupAcks = 0
		sf.backoffs = 0 // forward progress resets the exponential backoff
		if sf.inRecovery && seqLEQ(sf.recoveryPoint, s.Ack) {
			sf.inRecovery = false
		}
		if sf.finSent && seqLT(sf.finSeq, s.Ack) {
			sf.finAcked = true
		}
		sf.cc.OnAck(payloadAcked, flightBefore)
		sf.traceCC()
		sf.restartRTO()
		sf.trySend()
		sf.owner.OnAckAdvance(sf, acked)
		sf.checkCloseComplete()
		// The acked chunks' lifecycle ends here: nothing retains them past
		// the OnAckAdvance callback, so they go back to the pool.
		putChunks(acked)
	case s.Ack == sf.sndUna && sf.sq.flight() > 0 && s.PayloadLen == 0 && !s.Is(seg.SYN) && !s.Is(seg.FIN):
		sf.dupAcks++
		if sf.dupAcks == 3 && !sf.inRecovery {
			sf.fastRetransmit()
		}
	}
}

// processSACK folds the segment's SACK blocks into the send queue, infers
// holes (RFC 6675: a chunk trailing the highest SACKed byte by three
// segments is lost), and enters loss recovery at most once per window.
func (sf *Subflow) processSACK(s *seg.Segment) {
	sk := s.SACK()
	if sk == nil || len(sk.Blocks) == 0 {
		return
	}
	blocks := sf.sackScratch[:0]
	for _, b := range sk.Blocks {
		blocks = append(blocks, sackRange{lo: b.Lo, hi: b.Hi})
	}
	sf.sackScratch = blocks[:0]
	high, newly := sf.sq.applySACK(blocks)
	if len(newly) == 0 {
		return
	}
	for _, c := range newly {
		if c.rexmits == 0 {
			// A fresh SACK is a clean delivery timestamp: sample RTT now,
			// not when the cumulative ACK finally sweeps past.
			sf.rtt.Sample(time.Duration(sf.sim.Now() - c.sentAt))
		}
	}
	if seqLT(sf.highSacked, high) {
		sf.highSacked = high
	}
	if sf.sq.markSACKHoles(sf.highSacked, 2*sf.cfg.MSS) && !sf.inRecovery {
		sf.inRecovery = true
		sf.recoveryPoint = sf.sndNxt
		sf.stats.FastRetrans++
		sf.cfg.Metrics.FastRetrans.Inc()
		// ssthresh halves the window outstanding at loss detection, NOT
		// the post-SACK pipe (which the loss episode already shrank).
		sf.cc.OnDupAckLoss(sf.outstanding())
		sf.traceCC()
	}
	// SACKed bytes left the pipe: retransmit holes / send new data.
	sf.trySend()
}

// outstanding estimates the bytes between the cumulative ACK and the send
// frontier — the RFC 5681 FlightSize used for ssthresh computation.
func (sf *Subflow) outstanding() int {
	return int(sf.sndNxt - sf.sndUna)
}

func (sf *Subflow) fastRetransmit() {
	if sf.sq.empty() {
		return
	}
	sf.stats.FastRetrans++
	sf.cfg.Metrics.FastRetrans.Inc()
	sf.inRecovery = true
	sf.recoveryPoint = sf.sndNxt
	sf.cc.OnDupAckLoss(sf.outstanding())
	sf.traceCC()
	front := sf.sq.front()
	if front.sent && !front.sacked {
		// The lost segment is retransmitted immediately, outside the
		// usual window check (it replaces bytes already counted).
		front.lost = true
		sf.sendChunk(front)
	}
	sf.armRTO()
}

func (sf *Subflow) checkCloseComplete() {
	if sf.state == StateFinWait && sf.finAcked && sf.finRcvd {
		sf.die(Ok)
	}
}

// --- RTO ---

// armRTO starts the retransmission timer if data is outstanding and it is
// not already running (RFC 6298 rule 5.1: starting is not restarting — a
// sender transmitting continuously must still let the timer expire for the
// stuck head-of-line byte).
func (sf *Subflow) armRTO() {
	if !sf.hasOutstanding() {
		sf.rtoTimer.Stop()
		return
	}
	if !sf.rtoTimer.Armed() {
		sf.rtoTimer.Reset(sf.CurrentRTO())
	}
}

// restartRTO re-arms the timer from now (on cumulative-ACK progress, RFC
// 6298 rule 5.3).
func (sf *Subflow) restartRTO() {
	if !sf.hasOutstanding() {
		sf.rtoTimer.Stop()
		return
	}
	sf.rtoTimer.Reset(sf.CurrentRTO())
}

func (sf *Subflow) hasOutstanding() bool {
	return sf.sq.flight() > 0 || len(sf.sq.all()) > 0 || (sf.finSent && !sf.finAcked)
}

func (sf *Subflow) onRTO() {
	if !sf.Established() {
		return
	}
	sf.stats.Timeouts++
	sf.cfg.Metrics.RTOTimeouts.Inc()
	sf.backoffs++
	sf.sq.markAllLost()
	sf.cc.OnRTO(sf.outstanding())
	sf.traceCC()
	sf.dupAcks = 0
	sf.inRecovery = false // the RTO supersedes any SACK recovery episode
	rto := sf.CurrentRTO()
	sf.owner.OnTimeout(sf, rto, sf.backoffs)
	if sf.state == StateDead {
		return // the owner (path manager) may have removed us
	}
	if sf.backoffs > sf.cfg.MaxBackoffs {
		sf.die(ETIMEDOUT)
		return
	}
	// Go-back-N: retransmit from snd_una; FIN-only case retransmits FIN.
	if sf.sq.nextToSend() == nil && sf.finSent && !sf.finAcked {
		fin := seg.Shared.Get()
		fin.Tuple = sf.tuple
		fin.Seq = sf.finSeq
		fin.Ack = sf.rcv.nxt
		fin.Flags = seg.FIN | seg.ACK
		fin.Window = sf.cfg.RcvWnd
		sf.stats.Retrans++
		sf.cfg.Metrics.Retrans.Inc()
		sf.transmit(fin)
		sf.restartRTO()
		return
	}
	sf.trySend()
}
