package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRcvQueueInOrder(t *testing.T) {
	r := rcvQueue{nxt: 100}
	if !r.receive(100, 50) {
		t.Fatal("in-order data not new")
	}
	if r.nxt != 150 {
		t.Fatalf("nxt = %d, want 150", r.nxt)
	}
	if r.receive(100, 50) {
		t.Fatal("duplicate counted as new")
	}
	if r.nxt != 150 {
		t.Fatalf("nxt moved on duplicate: %d", r.nxt)
	}
}

func TestRcvQueueOutOfOrder(t *testing.T) {
	r := rcvQueue{nxt: 0}
	if !r.receive(100, 50) { // gap
		t.Fatal("ooo data not new")
	}
	if r.nxt != 0 {
		t.Fatalf("nxt advanced over a gap: %d", r.nxt)
	}
	if !r.receive(0, 100) { // fill the gap
		t.Fatal("gap fill not new")
	}
	if r.nxt != 150 {
		t.Fatalf("nxt = %d, want 150 after merge", r.nxt)
	}
	if len(r.ooo) != 0 {
		t.Fatalf("ooo not drained: %v", r.ooo)
	}
}

func TestRcvQueueMergeAdjacent(t *testing.T) {
	r := rcvQueue{nxt: 0}
	r.receive(200, 100)
	r.receive(100, 100) // adjacent, below
	r.receive(400, 50)  // separate island
	if len(r.ooo) != 2 {
		t.Fatalf("ooo = %v, want 2 islands", r.ooo)
	}
	r.receive(0, 100)
	if r.nxt != 300 {
		t.Fatalf("nxt = %d, want 300", r.nxt)
	}
	r.receive(300, 100)
	if r.nxt != 450 {
		t.Fatalf("nxt = %d, want 450", r.nxt)
	}
}

func TestRcvQueueOverlap(t *testing.T) {
	r := rcvQueue{nxt: 0}
	r.receive(50, 100)
	if r.receive(60, 50) { // fully covered
		t.Fatal("covered range reported new")
	}
	if !r.receive(100, 100) { // partial overlap extends
		t.Fatal("extending range not new")
	}
	r.receive(0, 50)
	if r.nxt != 200 {
		t.Fatalf("nxt = %d, want 200", r.nxt)
	}
}

func TestRcvQueueWraparound(t *testing.T) {
	start := uint32(0xFFFFFF00)
	r := rcvQueue{nxt: start}
	r.receive(start, 0x200) // crosses zero
	if r.nxt != 0x100 {
		t.Fatalf("nxt = %#x, want 0x100", r.nxt)
	}
}

// Property: delivering a random permutation of contiguous blocks always
// ends with nxt at the end and no out-of-order residue.
func TestQuickRcvQueuePermutation(t *testing.T) {
	f := func(seed int64, nBlocks uint8) bool {
		n := int(nBlocks%20) + 1
		rng := rand.New(rand.NewSource(seed))
		r := rcvQueue{nxt: 1000}
		order := rng.Perm(n)
		for _, i := range order {
			r.receive(1000+uint32(i*100), 100)
		}
		return r.nxt == 1000+uint32(n*100) && len(r.ooo) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestSendQueueAckThrough(t *testing.T) {
	q := sendQueue{}
	for i := 0; i < 5; i++ {
		q.push(&Chunk{SubSeq: uint32(i * 100), Len: 100, sent: true})
	}
	acked := q.ackThrough(250) // covers chunks 0,1 fully; chunk 2 partially
	if len(acked) != 2 {
		t.Fatalf("acked %d chunks, want 2", len(acked))
	}
	if q.len() != 3 {
		t.Fatalf("remaining %d, want 3", q.len())
	}
	acked = q.ackThrough(500)
	if len(acked) != 3 || !q.empty() {
		t.Fatalf("acked %d, remaining %d", len(acked), q.len())
	}
}

func TestSendQueueFlightAndLost(t *testing.T) {
	q := sendQueue{}
	a := &Chunk{SubSeq: 0, Len: 100, sent: true}
	b := &Chunk{SubSeq: 100, Len: 100, sent: true}
	c := &Chunk{SubSeq: 200, Len: 100}
	q.push(a)
	q.push(b)
	q.push(c)
	if q.flight() != 200 {
		t.Fatalf("flight = %d, want 200", q.flight())
	}
	if q.unsentBytes() != 100 {
		t.Fatalf("unsent = %d, want 100", q.unsentBytes())
	}
	if q.nextToSend() != c {
		t.Fatal("nextToSend should be the unsent chunk")
	}
	q.markAllLost()
	if q.flight() != 0 {
		t.Fatalf("flight after markAllLost = %d", q.flight())
	}
	if q.nextToSend() != a {
		t.Fatal("go-back-N should restart at the front")
	}
}

func TestSeqCompare(t *testing.T) {
	if !seqLT(0xFFFFFFFF, 1) {
		t.Fatal("wraparound compare broken")
	}
	if seqLT(1, 0xFFFFFFFF) {
		t.Fatal("wraparound compare inverted")
	}
	if !seqLEQ(5, 5) || seqLT(5, 5) {
		t.Fatal("equality cases broken")
	}
}
