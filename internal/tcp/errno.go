package tcp

import "fmt"

// Errno mirrors the standard errno values the paper's sub_closed event
// carries to describe why a subflow went away (§3: "an error code (based
// on standard errno) that indicates the reason for the removal").
type Errno int

// Errno values (numerically equal to Linux's).
const (
	Ok           Errno = 0
	ENETUNREACH  Errno = 101 // network unreachable (no usable local interface)
	ECONNABORTED Errno = 103 // closed locally by the path manager
	ECONNRESET   Errno = 104 // RST received from the peer or a middlebox
	ECONNREFUSED Errno = 111 // SYN answered by RST
	ETIMEDOUT    Errno = 110 // excessive retransmission timeouts
)

// Error implements error.
func (e Errno) Error() string {
	switch e {
	case Ok:
		return "ok"
	case ENETUNREACH:
		return "ENETUNREACH"
	case ECONNABORTED:
		return "ECONNABORTED"
	case ECONNRESET:
		return "ECONNRESET"
	case ECONNREFUSED:
		return "ECONNREFUSED"
	case ETIMEDOUT:
		return "ETIMEDOUT"
	}
	return fmt.Sprintf("errno(%d)", int(e))
}
