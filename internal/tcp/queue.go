package tcp

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Sequence-space arithmetic (RFC 793 modular comparisons).

func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// Chunk is one scheduled unit of payload in the subflow's send queue. It
// carries its Multipath TCP data-sequence mapping so the owning connection
// can reinject the same data on another subflow when this one times out.
type Chunk struct {
	SubSeq  uint32 // subflow sequence number of the first byte
	Len     int
	DataSeq uint64 // connection-level data sequence of the first byte
	DataFIN bool   // the mapping carries the connection-level FIN

	sent    bool
	lost    bool // marked for retransmission (RTO, dupacks or SACK holes)
	sacked  bool // selectively acknowledged (delivered, awaiting cumack)
	rexmits int
	sentAt  sim.Time
}

// Rexmits reports how many times the chunk has been retransmitted.
func (c *Chunk) Rexmits() int { return c.rexmits }

// chunkPool recycles chunks so the scheduling hot path (one chunk per MSS
// of payload) does not allocate in steady state. sync.Pool keeps it safe
// under the concurrent multi-seed runner.
var chunkPool = sync.Pool{New: func() any {
	chunkPoolNews.Add(1)
	return new(Chunk)
}}

// Chunk pool traffic, process-wide like the pool itself. Atomics keep
// them safe under the concurrent multi-seed runner without adding
// allocation to the scheduling path.
var chunkPoolGets, chunkPoolPuts, chunkPoolNews atomic.Uint64

// ChunkPoolStats snapshots the chunk pool counters: chunks handed out,
// chunks retired, and Gets that heap-allocated (News is GC-dependent, so
// treat it as a wall-clock-class value).
func ChunkPoolStats() (gets, puts, news uint64) {
	return chunkPoolGets.Load(), chunkPoolPuts.Load(), chunkPoolNews.Load()
}

// newChunk draws a chunk from the pool, fully reinitialised.
func newChunk(subSeq uint32, ln int, dataSeq uint64, dataFIN bool) *Chunk {
	chunkPoolGets.Add(1)
	c := chunkPool.Get().(*Chunk)
	*c = Chunk{SubSeq: subSeq, Len: ln, DataSeq: dataSeq, DataFIN: dataFIN}
	return c
}

// putChunks retires chunks whose lifecycle ended: cumulatively acked, or
// still queued on a subflow that died (after the owner reinjected them).
// Callers must not touch the chunks afterwards.
func putChunks(cs []*Chunk) {
	chunkPoolPuts.Add(uint64(len(cs)))
	for _, c := range cs {
		*c = Chunk{}
		chunkPool.Put(c)
	}
}

// sendQueue is the subflow's ordered list of chunks between sndUna and the
// tail of scheduled data. It doubles as the retransmission queue: acked
// chunks are popped from the front.
type sendQueue struct {
	chunks []*Chunk
	acked  []*Chunk // reused ackThrough result buffer
}

func (q *sendQueue) push(c *Chunk) { q.chunks = append(q.chunks, c) }
func (q *sendQueue) empty() bool   { return len(q.chunks) == 0 }
func (q *sendQueue) len() int      { return len(q.chunks) }
func (q *sendQueue) all() []*Chunk { return q.chunks }
func (q *sendQueue) front() *Chunk { return q.chunks[0] }

// ackThrough removes chunks fully covered by the cumulative ack and returns
// them (for RTT sampling and data-level bookkeeping). The returned slice is
// a per-queue scratch reused by the next call: survivors are compacted to
// the front of the same backing array instead of re-slicing past them, so
// the push/ack steady state never erodes capacity and never reallocates —
// the send queue's share of the 0 allocs/op data path.
func (q *sendQueue) ackThrough(ack uint32) []*Chunk {
	i := 0
	for i < len(q.chunks) {
		c := q.chunks[i]
		if seqLEQ(c.SubSeq+uint32(c.Len), ack) {
			i++
		} else {
			break
		}
	}
	if i == 0 {
		return nil
	}
	q.acked = append(q.acked[:0], q.chunks[:i]...)
	n := copy(q.chunks, q.chunks[i:])
	for j := n; j < len(q.chunks); j++ {
		q.chunks[j] = nil // drop references to chunks headed for the pool
	}
	q.chunks = q.chunks[:n]
	return q.acked
}

// nextToSend returns the first chunk needing (re)transmission: lost chunks
// first (they hold the lowest sequence numbers), then never-sent chunks.
// SACKed chunks never retransmit.
func (q *sendQueue) nextToSend() *Chunk {
	for _, c := range q.chunks {
		if c.sacked {
			continue
		}
		if !c.sent || c.lost {
			return c
		}
	}
	return nil
}

// flight sums the bytes of chunks sent, unacked, not SACKed and not marked
// lost (the RFC 6675 "pipe" estimate).
func (q *sendQueue) flight() int {
	n := 0
	for _, c := range q.chunks {
		if c.sent && !c.lost && !c.sacked {
			n += c.Len
		}
	}
	return n
}

// markAllLost flags every sent, un-SACKed chunk for retransmission (after
// an RTO).
func (q *sendQueue) markAllLost() {
	for _, c := range q.chunks {
		if c.sent && !c.sacked {
			c.lost = true
		}
	}
}

// applySACK marks chunks covered by the blocks as delivered. It returns the
// highest sequence number newly SACKed and the newly SACKed chunks (for RTT
// sampling); ok is false if nothing new was covered.
func (q *sendQueue) applySACK(blocks []sackRange) (high uint32, newly []*Chunk) {
	for _, c := range q.chunks {
		if c.sacked || !c.sent {
			continue
		}
		end := c.SubSeq + uint32(c.Len)
		for _, b := range blocks {
			if seqLEQ(b.lo, c.SubSeq) && seqLEQ(end, b.hi) {
				c.sacked = true
				c.lost = false
				newly = append(newly, c)
				if seqLT(high, end) {
					high = end
				}
				break
			}
		}
	}
	return high, newly
}

// markSACKHoles implements the RFC 6675 loss inference: a sent, un-SACKed
// chunk whose end lags the highest SACKed sequence by at least dupThresh
// segments is deemed lost. A chunk is inferred lost at most once per
// transmission (rexmits guards re-marking a hole whose retransmission is
// still in flight — without it every ACK would re-mark every hole and the
// sender would melt down in spurious retransmissions; losses OF
// retransmissions are left to the RTO, as in pre-RACK Linux). It reports
// whether any chunk was newly marked.
func (q *sendQueue) markSACKHoles(highSacked uint32, threshBytes int) bool {
	marked := false
	for _, c := range q.chunks {
		if !c.sent || c.sacked || c.lost || c.rexmits > 0 {
			continue
		}
		if seqLEQ(c.SubSeq+uint32(c.Len)+uint32(threshBytes), highSacked) {
			c.lost = true
			marked = true
		}
	}
	return marked
}

// sackRange is a half-open SACK interval in subflow sequence space.
type sackRange struct{ lo, hi uint32 }

// unsentBytes sums bytes never transmitted.
func (q *sendQueue) unsentBytes() int {
	n := 0
	for _, c := range q.chunks {
		if !c.sent {
			n += c.Len
		}
	}
	return n
}

// rcvQueue tracks the receive side of a subflow: the next expected in-order
// sequence number and the set of out-of-order intervals already received,
// so cumulative ACKs (and therefore duplicate ACKs) are generated exactly
// like a real TCP receiver.
type rcvQueue struct {
	nxt uint32 // next expected sequence number
	ooo []ival // disjoint, sorted out-of-order intervals above nxt
}

type ival struct{ lo, hi uint32 } // [lo, hi)

// receive folds [seq, seq+n) into the receive state and reports whether any
// byte of it was new.
func (r *rcvQueue) receive(seq uint32, n int) bool {
	if n == 0 {
		return false
	}
	end := seq + uint32(n)
	if seqLEQ(end, r.nxt) {
		return false // entirely duplicate
	}
	isNew := false
	if seqLEQ(seq, r.nxt) {
		// Extends the in-order prefix.
		r.nxt = end
		isNew = true
	} else {
		isNew = r.insertOOO(seq, end)
	}
	// Merge any out-of-order intervals now contiguous with nxt.
	changed := true
	for changed {
		changed = false
		for i, iv := range r.ooo {
			if seqLEQ(iv.lo, r.nxt) {
				if seqLT(r.nxt, iv.hi) {
					r.nxt = iv.hi
				}
				r.ooo = append(r.ooo[:i], r.ooo[i+1:]...)
				changed = true
				break
			}
		}
	}
	return isNew
}

// sackBlocks returns up to max out-of-order intervals for the receiver's
// SACK option.
func (r *rcvQueue) sackBlocks(max int) []ival {
	if len(r.ooo) <= max {
		return r.ooo
	}
	return r.ooo[:max]
}

// insertOOO adds [lo,hi) to the out-of-order set, merging overlaps, and
// reports whether any byte was new.
func (r *rcvQueue) insertOOO(lo, hi uint32) bool {
	for _, iv := range r.ooo {
		if seqLEQ(iv.lo, lo) && seqLEQ(hi, iv.hi) {
			return false // fully covered already
		}
	}
	merged := ival{lo, hi}
	out := r.ooo[:0]
	for _, iv := range r.ooo {
		if seqLT(merged.hi, iv.lo) || seqLT(iv.hi, merged.lo) {
			out = append(out, iv) // disjoint
			continue
		}
		if seqLT(iv.lo, merged.lo) {
			merged.lo = iv.lo
		}
		if seqLT(merged.hi, iv.hi) {
			merged.hi = iv.hi
		}
	}
	// Keep sorted by lo.
	inserted := false
	final := make([]ival, 0, len(out)+1)
	for _, iv := range out {
		if !inserted && seqLT(merged.lo, iv.lo) {
			final = append(final, merged)
			inserted = true
		}
		final = append(final, iv)
	}
	if !inserted {
		final = append(final, merged)
	}
	r.ooo = final
	return true
}
