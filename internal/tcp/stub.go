package tcp

import (
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
)

// StubState pins the scheduler-visible state of a stub subflow.
type StubState struct {
	Tuple       seg.FourTuple
	Backup      bool
	Established bool
	SRTT        time.Duration // 0 leaves the estimator sample-free
	Window      int           // AvailableCwnd result while established
}

// NewStubSubflow returns a detached subflow whose scheduler-visible
// accessors (Established, Backup, SRTT, AvailableCwnd) report exactly st
// and never change. It is wired to a throwaway simulator and no owner, so
// only those read-only accessors are meaningful — scheduler unit tests
// use it to pin subflow states that are awkward to reach through a real
// handshake (see internal/mptcp's scheduler tests).
func NewStubSubflow(st StubState) *Subflow {
	sf := NewSubflow(sim.New(0), Config{
		// A congestion window far above any test's peer window, so
		// st.Window is the binding term of AvailableCwnd.
		InitialWindow: 1 << 20,
	}, st.Tuple, func(*seg.Segment) {}, nil)
	if st.Established {
		sf.state = StateEstablished
	}
	sf.backup = st.Backup
	sf.peerWnd = uint32(st.Window)
	if st.SRTT > 0 {
		sf.rtt.Sample(st.SRTT) // the first sample sets SRTT exactly
	}
	return sf
}
