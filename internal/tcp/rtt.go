// Package tcp implements the subflow-level TCP engine the Multipath TCP
// stack in internal/mptcp is built on: connection establishment, reliable
// delivery with cumulative ACKs and fast retransmit, RFC 6298 RTT
// estimation and retransmission timeouts with exponential backoff (and the
// Linux behaviour of killing a subflow after a configurable number of
// consecutive backoffs), pluggable congestion control, and the pacing-rate
// estimate recent Linux kernels expose (the signal §4.4's refresh
// controller polls).
//
// The engine is event driven on a sim.Simulator virtual clock and emits
// segments through an Output; it never blocks.
package tcp

import (
	"time"
)

// RTT tracking constants per RFC 6298 and the Linux implementation.
const (
	// MinRTO matches Linux TCP_RTO_MIN (200 ms).
	MinRTO = 200 * time.Millisecond
	// MaxRTO matches Linux TCP_RTO_MAX (120 s).
	MaxRTO = 120 * time.Second
	// InitialRTO matches Linux TCP_TIMEOUT_INIT (1 s).
	InitialRTO = time.Second
)

// RTTEstimator implements the RFC 6298 smoothed RTT / RTT variance
// estimator with Linux's clamping rules.
type RTTEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration
	seen   bool
}

// NewRTTEstimator returns an estimator whose RTO starts at InitialRTO.
func NewRTTEstimator() *RTTEstimator {
	return &RTTEstimator{rto: InitialRTO}
}

// Sample feeds one RTT measurement (from a segment that was not
// retransmitted, per Karn's algorithm — the caller enforces that).
func (e *RTTEstimator) Sample(rtt time.Duration) {
	if rtt <= 0 {
		rtt = time.Microsecond
	}
	if !e.seen {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.seen = true
	} else {
		// RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
		//           srtt   = 7/8 srtt   + 1/8 rtt
		diff := e.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + rtt) / 8
	}
	rto := e.srtt + 4*e.rttvar
	e.rto = clampRTO(rto)
}

// Reset forgets all samples (used by eMPTCP-style tricks and tests).
func (e *RTTEstimator) Reset() {
	*e = RTTEstimator{rto: InitialRTO}
}

// SRTT reports the smoothed RTT (0 before the first sample).
func (e *RTTEstimator) SRTT() time.Duration { return e.srtt }

// RTTVar reports the RTT variance estimate.
func (e *RTTEstimator) RTTVar() time.Duration { return e.rttvar }

// RTO reports the base retransmission timeout (before backoff).
func (e *RTTEstimator) RTO() time.Duration { return e.rto }

// HasSample reports whether at least one measurement has been taken.
func (e *RTTEstimator) HasSample() bool { return e.seen }

func clampRTO(rto time.Duration) time.Duration {
	if rto < MinRTO {
		return MinRTO
	}
	if rto > MaxRTO {
		return MaxRTO
	}
	return rto
}

// BackoffRTO applies n exponential-backoff doublings to a base RTO,
// saturating at MaxRTO.
func BackoffRTO(base time.Duration, n int) time.Duration {
	rto := base
	for i := 0; i < n; i++ {
		rto *= 2
		if rto >= MaxRTO {
			return MaxRTO
		}
	}
	return rto
}
