package tcp

import (
	"time"

	"repro/internal/seg"
	"repro/internal/sim"
)

// Info is a TCP_INFO-style snapshot of one subflow. The paper's get-info
// command ("equivalent to the utilisation of the TCP_INFO socket option on
// Linux") returns exactly this; the smart-stream controller reads snd_una
// from it and the refresh controller reads PacingRate.
type Info struct {
	Tuple  seg.FourTuple
	State  State
	Backup bool

	SndUna uint32
	SndNxt uint32
	RcvNxt uint32

	Cwnd     int
	SSThresh int

	SRTT     time.Duration
	RTTVar   time.Duration
	RTO      time.Duration // current, including exponential backoff
	Backoffs int

	PacingRate   float64 // bytes per second
	Flight       int
	QueuedUnsent int

	EstablishedAt sim.Time
	Stats         Stats
}
