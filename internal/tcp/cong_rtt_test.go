package tcp

import (
	"testing"
	"time"
)

func TestRenoSlowStart(t *testing.T) {
	r := NewReno(1000, 10)
	if r.Cwnd() != 10000 {
		t.Fatalf("initial cwnd = %d, want 10000", r.Cwnd())
	}
	if !r.InSlowStart() {
		t.Fatal("should start in slow start")
	}
	r.OnAck(10000, 10000) // a full window acked
	if r.Cwnd() != 20000 {
		t.Fatalf("cwnd after full-window ack = %d, want 20000 (doubling)", r.Cwnd())
	}
}

func TestRenoCongestionAvoidance(t *testing.T) {
	r := NewReno(1000, 10)
	r.OnDupAckLoss(20000) // ssthresh = 10000, cwnd = 10000 → now in CA
	if r.InSlowStart() {
		t.Fatal("should be in congestion avoidance after loss")
	}
	start := r.Cwnd()
	r.OnAck(start, start) // one full window of acks
	growth := r.Cwnd() - start
	if growth < 500 || growth > 2000 {
		t.Fatalf("CA growth per RTT = %d, want ≈ 1 MSS (1000)", growth)
	}
}

func TestRenoLossAndRTO(t *testing.T) {
	r := NewReno(1000, 10)
	r.OnDupAckLoss(8000)
	if r.Cwnd() != 4000 || r.SSThresh() != 4000 {
		t.Fatalf("after dupack loss: cwnd=%d ssthresh=%d, want 4000/4000", r.Cwnd(), r.SSThresh())
	}
	r.OnRTO(4000)
	if r.Cwnd() != 1000 {
		t.Fatalf("after RTO: cwnd=%d, want 1 MSS", r.Cwnd())
	}
	if r.SSThresh() != 2000 {
		t.Fatalf("after RTO: ssthresh=%d, want 2000", r.SSThresh())
	}
	// Floor: ssthresh never below 2 MSS.
	r.OnRTO(0)
	if r.SSThresh() != 2000 {
		t.Fatalf("ssthresh floor broken: %d", r.SSThresh())
	}
}

func TestRenoZeroAckIgnored(t *testing.T) {
	r := NewReno(1000, 10)
	before := r.Cwnd()
	r.OnAck(0, 5000)
	if r.Cwnd() != before {
		t.Fatal("zero-byte ack changed cwnd")
	}
}

func TestRTTEstimatorFirstSample(t *testing.T) {
	e := NewRTTEstimator()
	if e.RTO() != InitialRTO {
		t.Fatalf("initial RTO = %v, want 1s", e.RTO())
	}
	if e.HasSample() {
		t.Fatal("HasSample before any sample")
	}
	e.Sample(100 * time.Millisecond)
	if e.SRTT() != 100*time.Millisecond {
		t.Fatalf("srtt = %v, want 100ms", e.SRTT())
	}
	if e.RTTVar() != 50*time.Millisecond {
		t.Fatalf("rttvar = %v, want srtt/2", e.RTTVar())
	}
	// RTO = srtt + 4*rttvar = 300ms.
	if e.RTO() != 300*time.Millisecond {
		t.Fatalf("rto = %v, want 300ms", e.RTO())
	}
}

func TestRTTEstimatorConvergence(t *testing.T) {
	e := NewRTTEstimator()
	for i := 0; i < 100; i++ {
		e.Sample(50 * time.Millisecond)
	}
	if d := e.SRTT() - 50*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("srtt did not converge: %v", e.SRTT())
	}
	// With zero variance the RTO clamps to the 200ms floor.
	if e.RTO() != MinRTO {
		t.Fatalf("rto = %v, want MinRTO", e.RTO())
	}
}

func TestRTTEstimatorSpike(t *testing.T) {
	e := NewRTTEstimator()
	for i := 0; i < 50; i++ {
		e.Sample(20 * time.Millisecond)
	}
	before := e.RTO()
	e.Sample(500 * time.Millisecond) // spike inflates var and srtt
	if e.RTO() <= before {
		t.Fatalf("RTO did not grow after RTT spike: %v -> %v", before, e.RTO())
	}
}

func TestRTTEstimatorClampAndReset(t *testing.T) {
	e := NewRTTEstimator()
	e.Sample(200 * time.Second)
	if e.RTO() != MaxRTO {
		t.Fatalf("rto = %v, want MaxRTO clamp", e.RTO())
	}
	e.Reset()
	if e.HasSample() || e.RTO() != InitialRTO {
		t.Fatal("Reset incomplete")
	}
	e.Sample(0) // nonpositive samples guarded
	if e.SRTT() <= 0 {
		t.Fatal("zero sample broke estimator")
	}
}

func TestBackoffRTO(t *testing.T) {
	if got := BackoffRTO(time.Second, 0); got != time.Second {
		t.Fatalf("0 backoffs: %v", got)
	}
	if got := BackoffRTO(time.Second, 3); got != 8*time.Second {
		t.Fatalf("3 backoffs: %v, want 8s", got)
	}
	if got := BackoffRTO(time.Second, 30); got != MaxRTO {
		t.Fatalf("30 backoffs: %v, want MaxRTO", got)
	}
	// The paper's §4.2 scenario: 15 doublings of a 200ms RTO saturate at
	// MaxRTO; the cumulative wait before subflow death is minutes.
	total := time.Duration(0)
	for n := 0; n <= 15; n++ {
		total += BackoffRTO(MinRTO, n)
	}
	if total < 10*time.Minute || total > 20*time.Minute {
		t.Fatalf("cumulative backoff wait = %v, want ≈ 12-15 min", total)
	}
}
