// Package workspace is the on-disk experiment workspace behind
// `mpexp init/run/diff`: a `.mpexp/` directory holding authored scenario
// manifests and one directory per executed run (or per sweep cell), each
// with the machine-readable result, the rendered report, the trace file
// when enabled, and a snapshot of the resolved manifest — plus a
// generated top-level index of everything that ran. Sweep outputs stop
// vanishing into stdout: every run is a durable, diffable artifact.
//
// Layout:
//
//	.mpexp/
//	  README.md            # generated orientation file
//	  manifests/           # authored scenario manifests (committable)
//	  index.json           # generated index of all runs
//	  runs/
//	    <name>-NNN/        # one directory per `mpexp run`/`sweep`
//	      manifest.json    # resolved manifest snapshot (what actually ran)
//	      report.txt       # rendered report (aggregate for multi-seed)
//	      result.json      # stats result (single-seed runs)
//	      summary.json     # cross-seed scalar summary (multi-seed runs)
//	      trace            # binary event trace (when enabled)
//	      metrics.json     # runtime metrics snapshot (when enabled)
//	      cells/<cell>/    # sweeps: result/report/summary/trace per cell
//
// Run directories are append-only: a new run of the same manifest gets
// the next ordinal (<name>-001, <name>-002, ...), so `mpexp diff` can
// compare any two of them.
package workspace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// DirName is the workspace directory a parent directory holds.
const DirName = ".mpexp"

// Filenames within a run (or cell) directory.
const (
	ManifestFile = "manifest.json"
	ResultFile   = "result.json"
	SummaryFile  = "summary.json"
	ReportFile   = "report.txt"
	TraceFile    = "trace"
	MetricsFile  = "metrics.json"
	IndexFile    = "index.json"
	cellsDir     = "cells"
	runsDir      = "runs"
	manifestsDir = "manifests"
)

// Workspace is an opened .mpexp directory.
type Workspace struct {
	// Root is the .mpexp directory itself.
	Root string
}

// Init creates a workspace under parent (parent/.mpexp) and seeds it
// with the README, the manifests/ and runs/ directories, an example
// manifest, and an empty index. Initialising where a workspace already
// exists is an error — a workspace is data, never silently overwritten.
func Init(parent string) (*Workspace, error) {
	root := filepath.Join(parent, DirName)
	if _, err := os.Stat(root); err == nil {
		return nil, fmt.Errorf("workspace: %s already exists", root)
	}
	for _, dir := range []string{root, filepath.Join(root, manifestsDir), filepath.Join(root, runsDir)} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("workspace: %w", err)
		}
	}
	if err := os.WriteFile(filepath.Join(root, "README.md"), []byte(readme), 0o644); err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	if err := os.WriteFile(filepath.Join(root, manifestsDir, "example-fig2a.json"),
		[]byte(exampleManifest), 0o644); err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	ws := &Workspace{Root: root}
	if err := ws.WriteIndex(); err != nil {
		return nil, err
	}
	return ws, nil
}

// Open resolves an existing workspace from dir: dir may be the .mpexp
// directory itself or the directory containing it.
func Open(dir string) (*Workspace, error) {
	root := dir
	if filepath.Base(root) != DirName {
		root = filepath.Join(dir, DirName)
	}
	fi, err := os.Stat(root)
	if err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("workspace: no %s directory at %s (create one with `mpexp init`)", DirName, dir)
	}
	return &Workspace{Root: root}, nil
}

// Discover opens the workspace of the current directory if one exists;
// it returns (nil, nil) when there is none — running outside a workspace
// is not an error, results just stay on stdout.
func Discover(dir string) (*Workspace, error) {
	root := filepath.Join(dir, DirName)
	if fi, err := os.Stat(root); err != nil || !fi.IsDir() {
		return nil, nil
	}
	return &Workspace{Root: root}, nil
}

// ManifestDir returns the authored-manifests directory.
func (ws *Workspace) ManifestDir() string { return filepath.Join(ws.Root, manifestsDir) }

// RunDir resolves a run id ("fig2a-001") to its directory.
func (ws *Workspace) RunDir(id string) string { return filepath.Join(ws.Root, runsDir, id) }

// createRunDir allocates the next ordinal run directory for name.
func (ws *Workspace) createRunDir(name string) (id, dir string, err error) {
	name = sanitizeName(name)
	for n := 1; n < 10000; n++ {
		id = fmt.Sprintf("%s-%03d", name, n)
		dir = ws.RunDir(id)
		err = os.Mkdir(dir, 0o755)
		if err == nil {
			return id, dir, nil
		}
		if !os.IsExist(err) {
			return "", "", fmt.Errorf("workspace: %w", err)
		}
	}
	return "", "", fmt.Errorf("workspace: no free run ordinal for %q", name)
}

// sanitizeName makes a run name safe as a directory component, the same
// character set scenario cell ids use.
func sanitizeName(name string) string {
	if name == "" {
		return "run"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '-'
	}, name)
}

// RunInfo describes one completed workspace run.
type RunInfo struct {
	ID  string // run identifier (directory base name)
	Dir string // absolute run directory
	// OK is false when any seed of any cell failed; artifacts are still
	// written for the seeds that succeeded.
	OK bool
}

// RunOptions tune execution; the zero value works.
type RunOptions struct {
	// Parallel bounds concurrent seeds per run/cell (0 = GOMAXPROCS).
	Parallel int
	// Echo, when non-nil, receives the rendered report as it would have
	// printed without a workspace (the CLI passes os.Stdout).
	Echo func(report string)
	// Progress, when non-nil, receives one line per finished seed/cell.
	Progress func(line string)
}

func (opt RunOptions) echo(report string) {
	if opt.Echo != nil {
		opt.Echo(report)
	}
}

func (opt RunOptions) progress(format string, args ...any) {
	if opt.Progress != nil {
		opt.Progress(fmt.Sprintf(format, args...))
	}
}

// Run executes a manifest into a fresh run directory: validates it
// against the live scenario registry (the same Build path `-set` flags
// take), snapshots the resolved manifest, runs the scenario (or every
// sweep cell), and writes result.json/summary.json, report.txt, and the
// trace file per run or cell, then regenerates the workspace index.
func (ws *Workspace) Run(m *scenario.Manifest, opt RunOptions) (*RunInfo, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	snapshot, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	id, dir, err := ws.createRunDir(m.RunName())
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), snapshot, 0o644); err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	info := &RunInfo{ID: id, Dir: dir}
	if m.Sweep == nil {
		info.OK, err = ws.runSingle(m, dir, opt)
	} else {
		info.OK, err = ws.runSweep(m, dir, opt)
	}
	if err != nil {
		return nil, err
	}
	if err := ws.WriteIndex(); err != nil {
		return nil, err
	}
	return info, nil
}

// runSingle executes a non-sweep manifest into dir.
func (ws *Workspace) runSingle(m *scenario.Manifest, dir string, opt RunOptions) (bool, error) {
	p := m.BuildParams()
	traceFile := m.TraceFile
	if m.Trace && traceFile == "" {
		traceFile = filepath.Join(dir, TraceFile)
	}
	m.TraceParams(p, traceFile)
	metricsFile := m.MetricsFile
	if m.Metrics && metricsFile == "" {
		metricsFile = filepath.Join(dir, MetricsFile)
	}
	m.MetricsParams(p, metricsFile)
	job := scenario.Job(m.Scenario, p)
	if m.EffectiveSeeds() == 1 {
		res, err := runSeed(job, m.BaseSeed())
		if err != nil {
			return false, fmt.Errorf("%s: %w", m.RunName(), err)
		}
		opt.echo(res.Report)
		return true, writeResult(dir, res)
	}
	multi := runner.Run(m.RunName(), runner.Config{
		Seeds:    m.EffectiveSeeds(),
		BaseSeed: m.BaseSeed(),
		Parallel: opt.Parallel,
		OnDone: func(sr runner.SeedResult) {
			opt.progress("[seed %d done]", sr.Seed)
		},
	}, job)
	report := multi.Report()
	opt.echo(report)
	if err := writeReport(dir, report); err != nil {
		return false, err
	}
	if err := writeSummary(dir, m.RunName(), multi); err != nil {
		return false, err
	}
	return len(multi.Failed()) == 0, nil
}

// runSweep executes a sweep manifest: one cells/<cellID>/ directory per
// cell, each holding the same artifact set as a single run, plus the
// top-level sweep report.
func (ws *Workspace) runSweep(m *scenario.Manifest, dir string, opt RunOptions) (bool, error) {
	cfg := m.SweepConfig(opt.Parallel)
	cfg.OnCell = func(c *scenario.Cell) {
		opt.progress("[cell %s done]", c.Label)
	}
	var mkdirErr error
	cellFile := func(cellID, base string) string {
		cdir := filepath.Join(dir, cellsDir, cellID)
		if err := os.MkdirAll(cdir, 0o755); err != nil && mkdirErr == nil {
			mkdirErr = err
		}
		return filepath.Join(cdir, base)
	}
	if m.Trace {
		// One trace per cell, inside the cell's directory. The cell dirs
		// are created here — during sweep validation, before anything
		// simulates — so the trace writer finds them in place.
		cfg.TraceFile = func(cellID string) string { return cellFile(cellID, TraceFile) }
	}
	if m.Metrics {
		cfg.MetricsFile = func(cellID string) string { return cellFile(cellID, MetricsFile) }
	}
	sr, err := scenario.Sweep(cfg)
	if err != nil {
		return false, err
	}
	if mkdirErr != nil {
		return false, fmt.Errorf("workspace: %w", mkdirErr)
	}
	report := sr.Report()
	opt.echo(report)
	if err := writeReport(dir, report); err != nil {
		return false, err
	}
	ok := true
	for _, c := range sr.Cells {
		cdir := filepath.Join(dir, cellsDir, c.ID)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return false, fmt.Errorf("workspace: %w", err)
		}
		if len(c.Multi.Failed()) > 0 {
			ok = false
		}
		if cfg.Seeds <= 1 {
			sr0 := c.Multi.PerSeed[0]
			if sr0.Err != nil {
				// Record the failure where the result would have been.
				if err := writeReport(cdir, fmt.Sprintf("FAILED: %v\n", sr0.Err)); err != nil {
					return false, err
				}
				continue
			}
			if err := writeResult(cdir, sr0.Result); err != nil {
				return false, err
			}
			continue
		}
		if err := writeReport(cdir, c.Multi.Report()); err != nil {
			return false, err
		}
		if err := writeSummary(cdir, cfg.Scenario+" "+c.Label, c.Multi); err != nil {
			return false, err
		}
	}
	return ok, nil
}

// runSeed executes one seed, converting a scenario panic into an error.
func runSeed(job func(seed int64) *stats.Result, seed int64) (res *stats.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("seed %d panicked: %v", seed, r)
		}
	}()
	return job(seed), nil
}

// writeResult stores a single-seed result: result.json + report.txt.
func writeResult(dir string, res *stats.Result) error {
	buf, err := res.Data().Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, ResultFile), buf, 0o644); err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	return writeReport(dir, res.Report)
}

func writeReport(dir, report string) error {
	if err := os.WriteFile(filepath.Join(dir, ReportFile), []byte(report), 0o644); err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	return nil
}

// writeSummary stores a multi-seed aggregate: summary.json.
func writeSummary(dir, name string, m *runner.Multi) error {
	d := &stats.SummaryData{
		Name:     name,
		Seeds:    m.Config.Seeds,
		BaseSeed: m.Config.BaseSeed,
		Failed:   len(m.Failed()),
		Wall:     m.WallKeys(),
	}
	if sum := m.ScalarSummary(); len(sum) > 0 {
		d.Scalars = make(map[string]stats.ScalarStats, len(sum))
		for k, s := range sum {
			d.Scalars[k] = stats.SummarizeScalar(s)
		}
	}
	buf, err := d.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, SummaryFile), buf, 0o644); err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	return nil
}

// IndexEntry is one run in the workspace index.
type IndexEntry struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Name     string `json:"name"`
	Kind     string `json:"kind"` // "run" or "sweep"
	Seeds    int    `json:"seeds"`
	Cells    int    `json:"cells,omitempty"` // sweep cell count
	Trace    bool   `json:"trace,omitempty"`
	Metrics  bool   `json:"metrics,omitempty"`
}

// Index is the generated top-level index.json: every run directory,
// sorted by id — the workspace's discoverable table of contents, like
// dbharness's generated context tree.
type Index struct {
	Runs []IndexEntry `json:"runs"`
}

// ReadIndex loads the current index.
func (ws *Workspace) ReadIndex() (*Index, error) {
	buf, err := os.ReadFile(filepath.Join(ws.Root, IndexFile))
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	idx := &Index{}
	if err := json.Unmarshal(buf, idx); err != nil {
		return nil, fmt.Errorf("workspace: index: %w", err)
	}
	return idx, nil
}

// WriteIndex regenerates index.json by scanning the run directories:
// each run's snapshot manifest supplies its scenario/seeds/kind, and the
// cells/ directory its cell count. Runs whose manifest is unreadable are
// indexed by id alone rather than aborting the scan.
func (ws *Workspace) WriteIndex() error {
	idx := &Index{Runs: []IndexEntry{}}
	entries, err := os.ReadDir(filepath.Join(ws.Root, runsDir))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("workspace: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		ie := IndexEntry{ID: e.Name(), Kind: "run", Seeds: 1}
		dir := ws.RunDir(e.Name())
		if m, err := scenario.LoadManifest(filepath.Join(dir, ManifestFile)); err == nil {
			ie.Scenario = m.Scenario
			ie.Name = m.RunName()
			ie.Seeds = m.EffectiveSeeds()
			ie.Trace = m.Trace
			ie.Metrics = m.Metrics
			if m.Sweep != nil {
				ie.Kind = "sweep"
				ie.Cells = countDirs(filepath.Join(dir, cellsDir))
			}
		}
		idx.Runs = append(idx.Runs, ie)
	}
	sort.Slice(idx.Runs, func(i, j int) bool { return idx.Runs[i].ID < idx.Runs[j].ID })
	buf, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("workspace: index: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(filepath.Join(ws.Root, IndexFile), buf, 0o644); err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	return nil
}

func countDirs(dir string) int {
	n := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// CellDirs lists the cell directories of a sweep run directory, sorted.
func CellDirs(runDir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(runDir, cellsDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

const readme = `# .mpexp — experiment workspace

This directory is managed by the mpexp CLI.

## Structure

` + "```" + `
.mpexp/
  README.md          # this file
  manifests/         # authored scenario manifests (commit these)
  index.json         # generated index of all runs (do not edit)
  runs/
    <name>-NNN/      # one directory per run; NNN increments per name
      manifest.json  # resolved manifest snapshot (what actually ran)
      report.txt     # rendered report
      result.json    # machine-readable result (single-seed runs)
      summary.json   # cross-seed scalar summary (multi-seed runs)
      trace          # binary event trace (when enabled)
      metrics.json   # runtime metrics snapshot (when enabled)
      cells/<cell>/  # sweeps: the same artifact set per sweep cell
` + "```" + `

## Commands

- mpexp init                 — create this directory
- mpexp run <manifest.json>  — run a manifest; artifacts land under runs/
- mpexp run <scenario> ...   — flag-driven runs are captured here too
- mpexp diff <runA> <runB>   — compare two runs scalar-by-scalar
- mpexp report runs/<id>/trace — analyse a recorded trace

Manifests are validated against the live scenario registry; see
` + "`mpexp list -json`" + ` for every scenario and its typed parameters.
`

const exampleManifest = `{
  "scenario": "fig2a",
  "params": {
    "smoke": true
  },
  "seed": 1,
  "trace": true
}
`
