package workspace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	_ "repro/internal/experiments" // register fig2a & friends
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workspace"
)

func fig2aManifest() *scenario.Manifest {
	return &scenario.Manifest{
		Scenario: "fig2a",
		Params:   map[string]string{"smoke": "true", "loss": "0.30"},
		Seed:     1,
	}
}

func mustInit(t *testing.T) *workspace.Workspace {
	t.Helper()
	ws, err := workspace.Init(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func mustRun(t *testing.T, ws *workspace.Workspace, m *scenario.Manifest) *workspace.RunInfo {
	t.Helper()
	info, err := ws.Run(m, workspace.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.OK {
		t.Fatalf("run %s reported failure", info.ID)
	}
	return info
}

// The acceptance criterion: a fig2a manifest run stores the exact bytes
// the flag path (`mpexp run fig2a -set smoke=true -set loss=0.30`)
// computes — same registry, same validation, same seed, same encoding.
func TestManifestRunMatchesFlagPath(t *testing.T) {
	ws := mustInit(t)
	info := mustRun(t, ws, fig2aManifest())

	// The flag path: ParseSets -> Job -> encode, no workspace involved.
	p, err := scenario.ParseSets([]string{"smoke=true", "loss=0.30"})
	if err != nil {
		t.Fatal(err)
	}
	res := scenario.Job("fig2a", p)(1)
	want, err := res.Data().Encode()
	if err != nil {
		t.Fatal(err)
	}

	got, err := os.ReadFile(filepath.Join(info.Dir, workspace.ResultFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest run result.json differs from flag-path encoding\nmanifest: %d bytes\nflags:    %d bytes",
			len(got), len(want))
	}
}

func TestRunArtifactsAndIndex(t *testing.T) {
	ws := mustInit(t)
	info := mustRun(t, ws, fig2aManifest())
	if info.ID != "fig2a-001" {
		t.Fatalf("first run id = %q, want fig2a-001", info.ID)
	}
	for _, f := range []string{workspace.ManifestFile, workspace.ResultFile, workspace.ReportFile} {
		if _, err := os.Stat(filepath.Join(info.Dir, f)); err != nil {
			t.Errorf("run dir missing %s: %v", f, err)
		}
	}
	// The stored manifest is the resolved snapshot, reloadable as-is.
	m2, err := scenario.LoadManifest(filepath.Join(info.Dir, workspace.ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Scenario != "fig2a" || m2.Seed != 1 || m2.Params["loss"] != "0.30" {
		t.Fatalf("snapshot did not round-trip: %+v", m2)
	}
	idx, err := ws.ReadIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Runs) != 1 || idx.Runs[0].ID != "fig2a-001" || idx.Runs[0].Scenario != "fig2a" {
		t.Fatalf("index = %+v", idx.Runs)
	}
	// A second run gets the next ordinal and both land in the index.
	if info2 := mustRun(t, ws, fig2aManifest()); info2.ID != "fig2a-002" {
		t.Fatalf("second run id = %q", info2.ID)
	}
	if idx, err = ws.ReadIndex(); err != nil || len(idx.Runs) != 2 {
		t.Fatalf("index after second run: %v %v", idx, err)
	}
}

// Two same-seed runs of a deterministic scenario must diff clean at
// tolerance 0 — the workspace's core regression statement.
func TestDiffSelfClean(t *testing.T) {
	ws := mustInit(t)
	a := mustRun(t, ws, fig2aManifest())
	b := mustRun(t, ws, fig2aManifest())
	rep, err := workspace.DiffRuns(a.Dir, b.Dir, workspace.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("same-seed diff not clean:\n%s", rep)
	}
	if rep.Compared == 0 {
		t.Fatal("diff compared nothing — the gate is vacuous")
	}
}

// A perturbed scalar must be caught at tolerance 0 and forgiven within a
// relative tolerance that covers the perturbation.
func TestDiffCatchesPerturbation(t *testing.T) {
	ws := mustInit(t)
	a := mustRun(t, ws, fig2aManifest())
	b := mustRun(t, ws, fig2aManifest())

	path := filepath.Join(b.Dir, workspace.ResultFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Nudge one simulation scalar by 1% and write the result back.
	d, err := stats.DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Skip the keys the result itself tags as wall-clock — the same
	// tag-driven exclusion the diff applies.
	wall := make(map[string]bool, len(d.Wall))
	for _, k := range d.Wall {
		wall[k] = true
	}
	nudged := false
	for k, v := range d.Scalars {
		if v == 0 || wall[k] {
			continue
		}
		d.Scalars[k] = v * 1.01
		nudged = true
		break
	}
	if !nudged {
		t.Fatal("no perturbable scalar in fig2a result")
	}
	if buf, err = d.Encode(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := workspace.DiffRuns(a.Dir, b.Dir, workspace.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("tolerance 0 missed a perturbed scalar")
	}
	rep, err = workspace.DiffRuns(a.Dir, b.Dir, workspace.DiffOptions{RelTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("rel tolerance 0.05 still flags a 1%% nudge:\n%s", rep)
	}
}

func TestSweepRunCellsAndDiff(t *testing.T) {
	m := &scenario.Manifest{
		Name:     "sweep-test",
		Scenario: "fig2a",
		Params:   map[string]string{"smoke": "true"},
		Seed:     1,
		Sweep: &scenario.ManifestSweep{
			Vary: []scenario.ManifestAxis{{Key: "loss", Values: []string{"0.1", "0.3"}}},
		},
	}
	ws := mustInit(t)
	a := mustRun(t, ws, m)
	b := mustRun(t, ws, m)

	cells, err := workspace.CellDirs(a.Dir)
	if err != nil {
		t.Fatal(err)
	}
	want := m.CellIDs()
	if len(cells) != len(want) {
		t.Fatalf("cells = %v, want ids %v", cells, want)
	}
	for _, c := range cells {
		if _, err := os.Stat(filepath.Join(a.Dir, "cells", c, workspace.ResultFile)); err != nil {
			t.Errorf("cell %s missing result.json: %v", c, err)
		}
	}

	rep, err := workspace.DiffRuns(a.Dir, b.Dir, workspace.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("same-seed sweep diff not clean:\n%s", rep)
	}

	// Removing a cell from one side is a reported difference, not an error.
	if err := os.RemoveAll(filepath.Join(b.Dir, "cells", cells[0])); err != nil {
		t.Fatal(err)
	}
	rep, err = workspace.DiffRuns(a.Dir, b.Dir, workspace.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || !strings.Contains(rep.String(), "only in") {
		t.Fatalf("missing cell not flagged:\n%s", rep)
	}
}

func TestInitOpenDiscover(t *testing.T) {
	parent := t.TempDir()
	ws, err := workspace.Init(parent)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workspace.Init(parent); err == nil {
		t.Fatal("second Init in the same directory must fail")
	}
	got, err := workspace.Discover(parent)
	if err != nil || got == nil || got.Root != ws.Root {
		t.Fatalf("Discover = %v, %v; want root %s", got, err, ws.Root)
	}
	// Discovery is deliberately cwd-only — a nested directory does NOT
	// inherit the parent's workspace (runs land where you stand).
	nested := filepath.Join(parent, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	if got, err = workspace.Discover(nested); err != nil || got != nil {
		t.Fatalf("Discover from nested dir = %v, %v; want nil, nil", got, err)
	}
	// No workspace in an isolated temp dir either: nil, nil.
	if got, err = workspace.Discover(t.TempDir()); err != nil || got != nil {
		t.Fatalf("Discover without workspace = %v, %v; want nil, nil", got, err)
	}
	if _, err := workspace.Open(filepath.Join(parent, "nope")); err == nil {
		t.Fatal("Open on a missing directory must fail")
	}
}
