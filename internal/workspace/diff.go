package workspace

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// This file implements `mpexp diff`: comparing two run directories
// scalar-by-scalar (and table-by-table, and per sweep cell) with a
// configurable relative tolerance. Two same-seed runs of a deterministic
// scenario must diff clean at tolerance 0 — that is the workspace's
// regression gate: any drift is either a code change or a determinism
// bug, and both deserve a nonzero exit.

// DiffOptions tune the comparison.
type DiffOptions struct {
	// RelTol is the relative tolerance: values a and b are equal when
	// |a-b| <= RelTol * max(|a|, |b|). Zero means exact equality — the
	// right default for same-seed determinism checks.
	RelTol float64
}

// wallSet collects the scalar keys either side tagged as wall-clock
// (stats.Result.MarkWallClock → the "wall_clock" list in result.json /
// summary.json). Those measure host speed, not simulation output, so
// they legitimately differ between two identical runs and the diff
// skips them — cmd/benchgate owns their regression thresholds instead.
// The exclusion is tag-driven: emitters opt out explicitly rather than
// by a naming convention.
type wallSet map[string]bool

func wallKeys(lists ...[]string) wallSet {
	w := wallSet{}
	for _, keys := range lists {
		for _, k := range keys {
			w[k] = true
		}
	}
	return w
}

// DiffReport is the outcome of one comparison.
type DiffReport struct {
	// Lines describe every difference, in deterministic order.
	Lines []string
	// Compared counts the values examined (scalars, table cells, summary
	// stats) across both runs.
	Compared int
}

// Clean reports whether the two runs matched within tolerance.
func (d *DiffReport) Clean() bool { return len(d.Lines) == 0 }

func (d *DiffReport) addf(format string, args ...any) {
	d.Lines = append(d.Lines, fmt.Sprintf(format, args...))
}

// String renders the report: one line per difference, or the all-clear.
func (d *DiffReport) String() string {
	if d.Clean() {
		return fmt.Sprintf("identical within tolerance (%d values compared)\n", d.Compared)
	}
	return fmt.Sprintf("%d difference(s) over %d values:\n  %s\n",
		len(d.Lines), d.Compared, strings.Join(d.Lines, "\n  "))
}

// DiffRuns compares two run directories (as produced by Workspace.Run):
// their result.json or summary.json, and — for sweeps — every cell
// directory pairwise, flagging cells present on only one side.
func DiffRuns(dirA, dirB string, opt DiffOptions) (*DiffReport, error) {
	for _, dir := range []string{dirA, dirB} {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("workspace: %s is not a run directory", dir)
		}
	}
	d := &DiffReport{}
	if err := diffDir(d, dirA, dirB, "", opt); err != nil {
		return nil, err
	}
	cellsA, err := CellDirs(dirA)
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	cellsB, err := CellDirs(dirB)
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	for _, cell := range unionSorted(cellsA, cellsB) {
		inA, inB := contains(cellsA, cell), contains(cellsB, cell)
		if !inA || !inB {
			d.addf("cell %s: only in %s", cell, pick(inA, dirA, dirB))
			continue
		}
		prefix := "cell " + cell + ": "
		if err := diffDir(d, filepath.Join(dirA, cellsDir, cell),
			filepath.Join(dirB, cellsDir, cell), prefix, opt); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// diffDir compares one directory level: result.json against result.json,
// summary.json against summary.json, mixed shapes are themselves a
// difference (one run was single-seed, the other multi-seed).
func diffDir(d *DiffReport, dirA, dirB, prefix string, opt DiffOptions) error {
	resA, errA := loadResult(dirA)
	resB, errB := loadResult(dirB)
	sumA, serrA := loadSummary(dirA)
	sumB, serrB := loadSummary(dirB)
	for _, err := range []error{errA, errB, serrA, serrB} {
		if err != nil {
			return err
		}
	}
	switch {
	case resA != nil && resB != nil:
		diffResults(d, resA, resB, prefix, opt)
	case sumA != nil && sumB != nil:
		diffSummaries(d, sumA, sumB, prefix, opt)
	case resA == nil && resB == nil && sumA == nil && sumB == nil:
		// A sweep's top level has only report.txt — nothing numeric here.
	default:
		d.addf("%sresult shapes differ (%s vs %s)", prefix, shape(resA, sumA), shape(resB, sumB))
	}
	return diffMetrics(d, dirA, dirB, prefix, opt)
}

// diffMetrics compares the metrics.json snapshots of two run (or cell)
// directories metric-by-metric. Metrics tagged wall-clock at record time
// (barrier waits, pool misses) are skipped — the tag travels in the
// file, so the exclusion needs no name list here. Everything else must
// match within tolerance: a deterministic scenario diffs clean at 0.
func diffMetrics(d *DiffReport, dirA, dirB, prefix string, opt DiffOptions) error {
	ma, err := loadMetrics(dirA)
	if err != nil {
		return err
	}
	mb, err := loadMetrics(dirB)
	if err != nil {
		return err
	}
	switch {
	case ma == nil && mb == nil:
		return nil
	case ma == nil || mb == nil:
		d.addf("%smetrics.json: only in %s", prefix, pick(ma != nil, "A", "B"))
		return nil
	}
	ca, cb := ma.Canonical(), mb.Canonical()
	for _, name := range unionMetricNames(ca, cb) {
		a, b := ca.Get(name), cb.Get(name)
		if a == nil || b == nil {
			d.addf("%smetric %s: only in %s", prefix, name, pick(a != nil, "A", "B"))
			continue
		}
		d.Compared++
		if !closeEnough(float64(a.Value), float64(b.Value), opt.RelTol) {
			d.addf("%smetric %s: %d -> %d (rel %.3g)", prefix, name,
				a.Value, b.Value, relDelta(float64(a.Value), float64(b.Value)))
		}
	}
	return nil
}

func loadMetrics(dir string) (*metrics.Snapshot, error) {
	buf, err := os.ReadFile(filepath.Join(dir, MetricsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	s, err := metrics.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("workspace: %s: %w", dir, err)
	}
	return s, nil
}

func unionMetricNames(a, b *metrics.Snapshot) []string {
	seen := map[string]bool{}
	for i := range a.Metrics {
		seen[a.Metrics[i].Name] = true
	}
	for i := range b.Metrics {
		seen[b.Metrics[i].Name] = true
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func shape(res *stats.ResultData, sum *stats.SummaryData) string {
	switch {
	case res != nil:
		return "result.json"
	case sum != nil:
		return "summary.json"
	}
	return "no result"
}

func loadResult(dir string) (*stats.ResultData, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ResultFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	d, err := stats.DecodeResult(buf)
	if err != nil {
		return nil, fmt.Errorf("workspace: %s: %w", dir, err)
	}
	return d, nil
}

func loadSummary(dir string) (*stats.SummaryData, error) {
	buf, err := os.ReadFile(filepath.Join(dir, SummaryFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err)
	}
	d, err := stats.DecodeSummary(buf)
	if err != nil {
		return nil, fmt.Errorf("workspace: %s: %w", dir, err)
	}
	return d, nil
}

// diffResults compares two single-seed results: every scalar key, every
// table cell. Samples and series are deliberately NOT value-compared —
// their headline statistics already surface as scalars — but a changed
// observation count is reported, since it means the runs took different
// paths.
func diffResults(d *DiffReport, a, b *stats.ResultData, prefix string, opt DiffOptions) {
	wall := wallKeys(a.Wall, b.Wall)
	for _, k := range unionKeys(a.Scalars, b.Scalars) {
		if wall[k] {
			continue
		}
		va, inA := a.Scalars[k]
		vb, inB := b.Scalars[k]
		if !inA || !inB {
			d.addf("%sscalar %s: only in %s", prefix, k, pick(inA, "A", "B"))
			continue
		}
		d.Compared++
		if !closeEnough(va, vb, opt.RelTol) {
			d.addf("%sscalar %s: %v -> %v (rel %.3g)", prefix, k, va, vb, relDelta(va, vb))
		}
	}
	for _, k := range unionKeys(a.Samples, b.Samples) {
		sa, inA := a.Samples[k]
		sb, inB := b.Samples[k]
		if !inA || !inB {
			d.addf("%ssample %s: only in %s", prefix, k, pick(inA, "A", "B"))
			continue
		}
		d.Compared++
		if len(sa) != len(sb) {
			d.addf("%ssample %s: %d observations -> %d", prefix, k, len(sa), len(sb))
		}
	}
	for _, name := range unionKeys(a.Tables, b.Tables) {
		ta, inA := a.Tables[name]
		tb, inB := b.Tables[name]
		if !inA || !inB {
			d.addf("%stable %s: only in %s", prefix, name, pick(inA, "A", "B"))
			continue
		}
		diffTables(d, ta, tb, prefix+"table "+name+" ", wall, opt)
	}
}

// diffTables compares two tables row-key by row-key, column by column;
// columns named by a wall-clock-tagged key are skipped like scalars.
func diffTables(d *DiffReport, a, b *stats.Table, prefix string, wall wallSet, opt DiffOptions) {
	if strings.Join(a.Columns, ",") != strings.Join(b.Columns, ",") {
		d.addf("%scolumns differ: [%s] vs [%s]", prefix,
			strings.Join(a.Columns, " "), strings.Join(b.Columns, " "))
		return
	}
	for _, key := range unionSorted(a.Keys, b.Keys) {
		ra, inA := a.Row(key)
		rb, inB := b.Row(key)
		if !inA || !inB {
			d.addf("%srow %s: only in %s", prefix, key, pick(inA, "A", "B"))
			continue
		}
		for ci, col := range a.Columns {
			if wall[col] {
				continue
			}
			d.Compared++
			if !closeEnough(ra[ci], rb[ci], opt.RelTol) {
				d.addf("%srow %s col %s: %v -> %v (rel %.3g)",
					prefix, key, col, ra[ci], rb[ci], relDelta(ra[ci], rb[ci]))
			}
		}
	}
}

// diffSummaries compares two multi-seed aggregates stat-by-stat.
func diffSummaries(d *DiffReport, a, b *stats.SummaryData, prefix string, opt DiffOptions) {
	if a.Seeds != b.Seeds {
		d.addf("%sseeds differ: %d vs %d", prefix, a.Seeds, b.Seeds)
	}
	if a.Failed != b.Failed {
		d.addf("%sfailed seeds differ: %d vs %d", prefix, a.Failed, b.Failed)
	}
	wall := wallKeys(a.Wall, b.Wall)
	for _, k := range unionKeys(a.Scalars, b.Scalars) {
		if wall[k] {
			continue
		}
		sa, inA := a.Scalars[k]
		sb, inB := b.Scalars[k]
		if !inA || !inB {
			d.addf("%sscalar %s: only in %s", prefix, k, pick(inA, "A", "B"))
			continue
		}
		for _, st := range []struct {
			name string
			a, b float64
		}{
			{"mean", sa.Mean, sb.Mean},
			{"median", sa.Median, sb.Median},
			{"p90", sa.P90, sb.P90},
			{"min", sa.Min, sb.Min},
			{"max", sa.Max, sb.Max},
		} {
			d.Compared++
			if !closeEnough(st.a, st.b, opt.RelTol) {
				d.addf("%sscalar %s %s: %v -> %v (rel %.3g)",
					prefix, k, st.name, st.a, st.b, relDelta(st.a, st.b))
			}
		}
	}
}

// closeEnough implements the relative-tolerance equality: exact when
// tol == 0, |a-b| <= tol*max(|a|,|b|) otherwise.
func closeEnough(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if tol <= 0 {
		return false
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func relDelta(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unionSorted(a, b []string) []string {
	seen := map[string]bool{}
	for _, k := range a {
		seen[k] = true
	}
	for _, k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func pick(inA bool, a, b string) string {
	if inA {
		return a
	}
	return b
}
