package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/scenario"
)

// TestGoldenShardInvariance is the sharded simulator's headline
// determinism guarantee: the byte-pinned seed-1 golden reports reproduce
// EXACTLY at every shard count. The scenarios cover the two-path,
// ECMP, and NAT topologies — cross-shard traffic in both directions,
// global events (loss steps, interface flaps), timers, and per-entity
// randomness — so any layout-dependent event ordering or RNG draw shows
// up as a byte diff here.
func TestGoldenShardInvariance(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		params map[string]string
	}{
		// Parameters reproduce exactly the configurations the golden
		// tests in determinism_test.go pin.
		{name: "fig2a", golden: "fig2a_seed1"},
		{name: "fig2c", golden: "fig2c_seed1", params: map[string]string{"trials": "3", "mb": "25"}},
		{name: "longlived", golden: "longlived_seed1"},
	}
	for _, tc := range cases {
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden+".golden"))
		if err != nil {
			t.Fatalf("missing golden file: %v", err)
		}
		for _, shards := range []int{1, 2, 8} {
			t.Run(tc.name+"/shards="+strconv.Itoa(shards), func(t *testing.T) {
				vals := map[string]string{"shards": strconv.Itoa(shards)}
				for k, v := range tc.params {
					vals[k] = v
				}
				sp, err := scenario.Build(tc.name, scenario.NewParams(vals))
				if err != nil {
					t.Fatal(err)
				}
				got := scenario.Execute(sp, 1).Report
				if got != string(want) {
					t.Errorf("report at %d shards diverged from the golden bytes\n--- got ---\n%s\n--- want ---\n%s",
						shards, got, want)
				}
			})
		}
	}
}
