package experiments

import (
	"fmt"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/scenario"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// Fig2bConfig parameterises the §4.3 smart-streaming experiment.
type Fig2bConfig struct {
	Seed       int64
	Sched      string        // registered scheduler name; "" = lowest-rtt
	Policy     string        // registered controller for the smart curve (paper: stream)
	LossLevels []float64     // loss ratios for the full-mesh baseline curves
	SmartLoss  float64       // loss ratio for the Smart Stream curve (paper: invariant in 10-40%)
	Blocks     int           // blocks per run
	Period     time.Duration // 1 s
	BlockSize  int           // 64 KB
	LossAt     time.Duration // loss starts after this settle time
	ProbeAt    time.Duration // controller's intra-block probe point (default 500 ms)
}

// DefaultFig2b returns the paper's parameters: 2×5 Mbps / 10 ms paths,
// 64 KB per second, losses 10–40 %.
func DefaultFig2b() Fig2bConfig {
	return Fig2bConfig{
		Seed:       1,
		Policy:     "stream",
		LossLevels: []float64{0.10, 0.20, 0.30, 0.40},
		SmartLoss:  0.30,
		Blocks:     120,
		Period:     time.Second,
		BlockSize:  64 << 10,
		LossAt:     time.Second,
	}
}

func init() {
	scenario.Register("fig2b",
		"smart streaming (§4.3): CDFs of 64 KB block completion times, full-mesh per loss level vs the stream controller",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultFig2b()
			cfg.Sched = p.Str("sched", cfg.Sched)
			cfg.Policy = p.Str("policy", cfg.Policy)
			cfg.LossLevels = p.Floats("loss_levels", cfg.LossLevels)
			cfg.SmartLoss = p.Float("loss", cfg.SmartLoss)
			cfg.Blocks = p.Int("blocks", cfg.Blocks)
			cfg.Period = p.Duration("period", cfg.Period)
			cfg.BlockSize = p.Int("block_size", cfg.BlockSize)
			cfg.ProbeAt = p.Duration("probe_at", cfg.ProbeAt)
			if p.Bool("smoke", false) {
				cfg.Blocks = 10
				cfg.LossLevels = []float64{0.30}
			}
			return fig2bSpec(cfg), nil
		})
	scenario.RegisterParams("fig2b",
		scenario.ParamDoc{Key: "loss_levels", Type: "list", Default: "0.10,0.20,0.30,0.40", Desc: "loss ratios of the full-mesh baseline curves"},
		scenario.ParamDoc{Key: "loss", Type: "float", Default: "0.30", Desc: "loss ratio of the smart-stream curve"},
		scenario.ParamDoc{Key: "blocks", Type: "int", Default: "120", Desc: "blocks per curve"},
		scenario.ParamDoc{Key: "period", Type: "duration", Default: "1s", Desc: "block emission period"},
		scenario.ParamDoc{Key: "block_size", Type: "int", Default: "65536", Desc: "bytes per block"},
		scenario.ParamDoc{Key: "probe_at", Type: "duration", Desc: "when the stream controller probes the second path (0 = immediately)"},
	)
}

// streamRun declares one §4.3 streaming session: the two-path topology,
// the block-streaming workload, loss on the primary path from LossAt on,
// and the per-block delays collected under the given curve name. The
// empty policy runs the in-kernel full-mesh baseline. fig2b, ctlsweep,
// and schedsweep all sweep the policy space through this one run shape.
func streamRun(cfg Fig2bConfig, loss float64, policy, curve string) *scenario.RunSpec {
	p := netem.LinkConfig{RateBps: 5e6, Delay: 10 * time.Millisecond}
	wl := &scenario.BlockStream{Period: cfg.Period, BlockSize: cfg.BlockSize, Blocks: cfg.Blocks}
	var kernelPM func() mptcp.PathManager
	if policy == "" {
		kernelPM = func() mptcp.PathManager { return pm.NewFullMesh() }
	}
	// Observe long enough for stragglers (RTO tails can reach minutes on
	// the unmanaged stack).
	horizon := time.Duration(cfg.Blocks)*cfg.Period + 3*time.Minute
	return &scenario.RunSpec{
		Label:    curve,
		Topology: scenario.TwoPath{P0: p, P1: p},
		Workload: wl,
		Sched:    cfg.Sched,
		Policy:   policy,
		PolicyCfg: smapp.ControllerConfig{
			Subflows:  2,
			Period:    cfg.Period,
			BlockSize: cfg.BlockSize,
			Probe:     cfg.ProbeAt,
		},
		KernelPM: kernelPM,
		Settle:   time.Millisecond,
		Events:   []scenario.Event{scenario.SetLossAt(cfg.LossAt, "path0", loss)},
		Stop:     scenario.Stop{Horizon: horizon},
		Probes: []scenario.Probe{
			{Name: curve, Collect: func(rt *scenario.Run) {
				rt.Result.Samples[curve] = wl.Delays(horizon)
			}},
		},
	}
}

// fig2bSpec declares the streaming experiment: one curve per loss level
// under the default full-mesh path manager, plus the Smart Stream
// controller curve, rendered as the paper's CDF of block completion
// times.
func fig2bSpec(cfg Fig2bConfig) *scenario.Spec {
	var runs []*scenario.RunSpec
	var names []string
	for _, loss := range cfg.LossLevels {
		name := fmt.Sprintf("fullmesh %.0f%% loss", loss*100)
		names = append(names, name)
		runs = append(runs, streamRun(cfg, loss, "", name))
	}
	names = append(names, "smart stream")
	runs = append(runs, streamRun(cfg, cfg.SmartLoss, cfg.Policy, "smart stream"))

	return &scenario.Spec{
		Name:  "fig2b",
		Title: "Fig. 2b — smarter streaming (§4.3)",
		Desc: fmt.Sprintf("2 x 5 Mbps, 10 ms paths; %d B block every %v; %d blocks per curve",
			cfg.BlockSize, cfg.Period, cfg.Blocks),
		Runs: runs,
		Render: func(res *stats.Result, runs []*scenario.Run) {
			res.Section("CDF of block completion time (seconds)")
			res.RenderCDFs(names...)

			res.Section("summary")
			res.Printf("%-22s %8s %8s %8s %8s\n", "curve", "median", "p90", "p99", "max")
			for _, n := range names {
				s := res.Samples[n]
				res.Printf("%-22s %7.2fs %7.2fs %7.2fs %7.2fs\n",
					n, s.Median(), s.Quantile(0.9), s.Quantile(0.99), s.Max())
			}
			smart := res.Samples["smart stream"]
			res.Scalars["smart_p90_s"] = smart.Quantile(0.9)
			if worst, ok := res.Samples[fmt.Sprintf("fullmesh %.0f%% loss", cfg.SmartLoss*100)]; ok {
				res.Scalars["fullmesh_same_loss_p90_s"] = worst.Quantile(0.9)
			}
		},
	}
}

// Fig2b runs the streaming experiment (see fig2bSpec).
func Fig2b(cfg Fig2bConfig) *Result {
	return scenario.Execute(fig2bSpec(cfg), cfg.Seed)
}
