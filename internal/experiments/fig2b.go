package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/topo"
)

// Fig2bConfig parameterises the §4.3 smart-streaming experiment.
type Fig2bConfig struct {
	Seed       int64
	Sched      string        // registered scheduler name; "" = lowest-rtt
	Policy     string        // registered controller for the smart curve (paper: stream)
	LossLevels []float64     // loss ratios for the full-mesh baseline curves
	SmartLoss  float64       // loss ratio for the Smart Stream curve (paper: invariant in 10-40%)
	Blocks     int           // blocks per run
	Period     time.Duration // 1 s
	BlockSize  int           // 64 KB
	LossAt     time.Duration // loss starts after this settle time
	ProbeAt    time.Duration // controller's intra-block probe point (default 500 ms)
}

// DefaultFig2b returns the paper's parameters: 2×5 Mbps / 10 ms paths,
// 64 KB per second, losses 10–40 %.
func DefaultFig2b() Fig2bConfig {
	return Fig2bConfig{
		Seed:       1,
		Policy:     "stream",
		LossLevels: []float64{0.10, 0.20, 0.30, 0.40},
		SmartLoss:  0.30,
		Blocks:     120,
		Period:     time.Second,
		BlockSize:  64 << 10,
		LossAt:     time.Second,
	}
}

// Fig2b runs the streaming experiment and produces the paper's CDF of
// block completion times: one curve per loss level under the default
// full-mesh path manager, plus the Smart Stream controller curve.
func Fig2b(cfg Fig2bConfig) *Result {
	res := newResult("fig2b")
	res.Report = header("Fig. 2b — smarter streaming (§4.3)",
		fmt.Sprintf("2 x 5 Mbps, 10 ms paths; %d B block every %v; %d blocks per curve",
			cfg.BlockSize, cfg.Period, cfg.Blocks))

	for _, loss := range cfg.LossLevels {
		name := fmt.Sprintf("fullmesh %.0f%% loss", loss*100)
		delays := fig2bRun(cfg, loss, "")
		res.Samples[name] = delays
	}
	smart := fig2bRun(cfg, cfg.SmartLoss, cfg.Policy)
	res.Samples["smart stream"] = smart

	res.section("CDF of block completion time (seconds)")
	names := make([]string, 0, len(res.Samples))
	for n := range res.Samples {
		names = append(names, n)
	}
	res.renderCDFs(names...)

	res.section("summary")
	res.printf("%-22s %8s %8s %8s %8s\n", "curve", "median", "p90", "p99", "max")
	for _, n := range names {
		s := res.Samples[n]
		res.printf("%-22s %7.2fs %7.2fs %7.2fs %7.2fs\n",
			n, s.Median(), s.Quantile(0.9), s.Quantile(0.99), s.Max())
	}
	res.Scalars["smart_p90_s"] = smart.Quantile(0.9)
	if worst, ok := res.Samples[fmt.Sprintf("fullmesh %.0f%% loss", cfg.SmartLoss*100)]; ok {
		res.Scalars["fullmesh_same_loss_p90_s"] = worst.Quantile(0.9)
	}
	return res
}

// fig2bRun runs one streaming session under the named controller policy
// ("" = the in-kernel full-mesh baseline) and returns the block delays in
// seconds. The ctlsweep experiment reuses it to sweep the policy space.
func fig2bRun(cfg Fig2bConfig, loss float64, policy string) *sample {
	p := netem.LinkConfig{RateBps: 5e6, Delay: 10 * time.Millisecond}
	net := topo.NewTwoPath(sim.New(cfg.Seed), p, p)

	scfg := smapp.Config{MPTCP: mptcp.Config{Scheduler: cfg.Sched}}
	if policy == "" {
		scfg.KernelPM = pm.NewFullMesh()
	}
	st := smapp.New(net.Client, scfg)
	sep := mptcp.NewEndpoint(net.Server, mptcp.Config{Scheduler: cfg.Sched}, nil)
	bsink := app.NewBlockSink(net.Sim, cfg.BlockSize)
	sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(bsink.Callbacks()) })
	net.Sim.RunFor(time.Millisecond)

	streamer := app.NewBlockStreamer(net.Sim, cfg.Period, cfg.BlockSize, cfg.Blocks)
	pcfg := smapp.ControllerConfig{
		Addrs:     net.ClientAddrs[:],
		Subflows:  2,
		Period:    cfg.Period,
		BlockSize: cfg.BlockSize,
		Probe:     cfg.ProbeAt,
	}
	if _, err := st.Dial(net.ClientAddrs[0], net.ServerAddr, 80, policy, pcfg, streamer.Callbacks()); err != nil {
		panic(err)
	}
	// Loss applies to the data direction (client→server), like a netem
	// qdisc on the client's egress interface in the paper's Mininet setup.
	net.Sim.Schedule(sim.Time(cfg.LossAt), "degrade", func() {
		net.Path[0].AB.SetLoss(loss)
	})
	// Observe long enough for stragglers (RTO tails can reach minutes on
	// the unmanaged stack).
	horizon := time.Duration(cfg.Blocks)*cfg.Period + 3*time.Minute
	net.Sim.RunUntil(sim.Time(horizon))

	delays := &sample{}
	for k, at := range bsink.CompletedAt {
		sent := streamer.StartedAt.Add(time.Duration(k) * cfg.Period)
		delays.Add(time.Duration(at - sent).Seconds())
	}
	// Blocks never delivered within the horizon count as the horizon —
	// they are the long tail the paper describes.
	for k := len(bsink.CompletedAt); k < cfg.Blocks; k++ {
		sent := streamer.StartedAt.Add(time.Duration(k) * cfg.Period)
		delays.Add((sim.Time(horizon) - sent).Seconds())
	}
	return delays
}
