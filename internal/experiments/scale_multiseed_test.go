// External test package: internal/runner imports experiments, so the
// multi-seed scale test lives outside the experiments package to avoid an
// import cycle.
package experiments_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// TestScaleMultiSeed runs the scale experiment across seeds on the
// concurrent multi-seed runner — under `make race` (CI) this is the race
// gate for the pooled segment/chunk/event lifecycle, whose sync.Pools are
// the only state shared between worker goroutines.
func TestScaleMultiSeed(t *testing.T) {
	small := func(seed int64) experiments.ScaleConfig {
		cfg := experiments.DefaultScale()
		cfg.Seed = seed
		cfg.Conns = 4
		cfg.BytesPerConn = 128 << 10
		cfg.Schedulers = []string{"lowest-rtt"}
		return cfg
	}
	m := runner.Run("scale", runner.Config{Seeds: 4, BaseSeed: 1, Parallel: 4},
		func(seed int64) *experiments.Result {
			return experiments.Scale(small(seed))
		})
	if failed := m.Failed(); len(failed) != 0 {
		t.Fatalf("seed %d failed: %v", failed[0].Seed, failed[0].Err)
	}
	sum, ok := m.ScalarSummary()["lowest-rtt/kernel_completed"]
	if !ok || sum.Mean() != 4 {
		t.Fatalf("expected every seed to complete 4 connections (summary: %+v)", m.ScalarSummary())
	}
}
