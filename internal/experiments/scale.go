package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/app"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/sim"
	"repro/internal/smapp"
)

// ScaleConfig parameterises the stress workload: N concurrent Multipath
// TCP connections × M subflows each, streaming simultaneously through one
// shared bottleneck, swept over packet schedulers and subflow controllers.
type ScaleConfig struct {
	Seed         int64
	Conns        int           // concurrent connections, one client host each
	Subflows     int           // interfaces per client (→ subflows via full-mesh)
	BytesPerConn int           // payload each client streams at t≈0
	Schedulers   []string      // swept packet schedulers; empty = lowest-rtt, round-robin
	Controllers  []string      // swept policies; empty = [kernel]; "kernel" = in-kernel full-mesh
	AccessBps    float64       // per-interface access rate
	Bottleneck   float64       // shared bottleneck rate
	Delay        time.Duration // one-way access-path delay
	Horizon      time.Duration // simulation cutoff
}

// KernelController names the in-kernel full-mesh baseline cell of the
// controller sweep (no userspace control plane at all).
const KernelController = "kernel"

// DefaultScale returns a bench-sized stress scenario: 16 clients × 2
// subflows pushing 1 MB each through a 200 Mbps bottleneck.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Seed:         1,
		Conns:        16,
		Subflows:     2,
		BytesPerConn: 1 << 20,
		AccessBps:    50e6,
		Bottleneck:   200e6,
		Delay:        10 * time.Millisecond,
		Horizon:      2 * time.Minute,
	}
}

// scaleCell is the outcome of one (scheduler, controller) sweep cell.
type scaleCell struct {
	sched, ctl string
	completed  int
	medianS    float64
	p90S       float64
	goodputMbs float64 // delivered payload bits/s over the busy interval
	pkts       uint64  // packets delivered end to end (both directions)
	drops      uint64  // queue drops at the bottleneck
	events     uint64  // simulator events processed
	wall       time.Duration
}

// Scale runs the stress matrix. Simulated results (completions, goodput,
// drops) are deterministic per seed; the wall-clock throughput scalars
// (segs_per_wall_s, events_per_wall_s) measure the host executing the
// simulation and feed the performance trajectory in the bench artifact.
func Scale(cfg ScaleConfig) *Result {
	scheds := cfg.Schedulers
	if len(scheds) == 0 {
		scheds = []string{"lowest-rtt", "round-robin"}
	}
	ctls := cfg.Controllers
	if len(ctls) == 0 {
		ctls = []string{KernelController}
	}
	for _, name := range scheds {
		if _, err := mptcp.LookupScheduler(name); err != nil {
			panic(err)
		}
	}
	for _, name := range ctls {
		if name == KernelController {
			continue
		}
		if _, err := smapp.LookupController(name); err != nil {
			panic(err)
		}
	}

	res := newResult("scale")
	res.Report = header("Scale stress — pooled data path under concurrent load",
		fmt.Sprintf("%d conns x %d subflows, %d KB each; access %.0f Mbps, bottleneck %.0f Mbps, %v delay",
			cfg.Conns, cfg.Subflows, cfg.BytesPerConn>>10, cfg.AccessBps/1e6, cfg.Bottleneck/1e6, cfg.Delay))

	var cells []scaleCell
	var totalPkts, totalEvents uint64
	var totalWall time.Duration
	for _, sched := range scheds {
		for _, ctl := range ctls {
			cell := scaleRun(cfg, sched, ctl)
			cells = append(cells, cell)
			totalPkts += cell.pkts
			totalEvents += cell.events
			totalWall += cell.wall
			key := sched + "/" + ctl
			res.Scalars[key+"_completed"] = float64(cell.completed)
			res.Scalars[key+"_median_s"] = cell.medianS
			res.Scalars[key+"_p90_s"] = cell.p90S
			res.Scalars[key+"_goodput_mbps"] = cell.goodputMbs
			res.Scalars[key+"_bottleneck_drops"] = float64(cell.drops)
			s := res.sample(key + " completion (s)")
			s.Add(cell.medianS)
		}
	}

	res.section("sweep matrix")
	res.printf("%-14s %-10s %5s %9s %9s %9s %9s %7s\n",
		"scheduler", "controller", "done", "median", "p90", "goodput", "pkts", "drops")
	for _, c := range cells {
		res.printf("%-14s %-10s %3d/%-2d %8.2fs %8.2fs %6.1fMb/s %9d %7d\n",
			c.sched, c.ctl, c.completed, cfg.Conns, c.medianS, c.p90S, c.goodputMbs, c.pkts, c.drops)
	}

	res.section("host throughput (wall clock)")
	wallS := totalWall.Seconds()
	if wallS > 0 {
		res.Scalars["segs_per_wall_s"] = float64(totalPkts) / wallS
		res.Scalars["events_per_wall_s"] = float64(totalEvents) / wallS
		res.printf("delivered %d packets / processed %d events in %v: %.0f segs/s, %.0f events/s\n",
			totalPkts, totalEvents, totalWall.Round(time.Millisecond),
			float64(totalPkts)/wallS, float64(totalEvents)/wallS)
	}
	return res
}

// scaleRun executes one sweep cell on a fresh simulation.
func scaleRun(cfg ScaleConfig, sched, ctl string) scaleCell {
	start := time.Now()
	s := sim.New(cfg.Seed)

	server := netem.NewHost(s, "server")
	agg := netem.NewRouter(s, "agg", uint64(cfg.Seed))
	serverAddr := netip.AddrFrom4([4]byte{10, 255, 0, 1})
	trunk := netem.NewDuplex(s, "bottleneck", agg, server, netem.LinkConfig{
		RateBps: cfg.Bottleneck, Delay: 500 * time.Microsecond,
	})
	server.AddIface("eth0", serverAddr, trunk.BA)
	agg.AddRoute(serverAddr, trunk.AB)

	// One multihomed client host per connection, every interface on its
	// own access link into the shared aggregation router.
	type client struct {
		host  *netem.Host
		addrs []netip.Addr
		src   *app.Source
	}
	clients := make([]client, cfg.Conns)
	access := netem.LinkConfig{RateBps: cfg.AccessBps, Delay: cfg.Delay}
	clientIdx := make(map[netip.Addr]int, cfg.Conns)
	for i := range clients {
		h := netem.NewHost(s, fmt.Sprintf("c%d", i))
		cl := client{host: h}
		for j := 0; j < cfg.Subflows; j++ {
			addr := netip.AddrFrom4([4]byte{10, byte(1 + i/200), byte(1 + i%200), byte(1 + j)})
			d := netem.NewDuplex(s, fmt.Sprintf("acc%d.%d", i, j), h, agg, access)
			h.AddIface(fmt.Sprintf("if%d", j), addr, d.AB)
			agg.AddRoute(addr, d.BA)
			cl.addrs = append(cl.addrs, addr)
		}
		clientIdx[cl.addrs[0]] = i
		cl.src = app.NewSource(s, cfg.BytesPerConn, true)
		clients[i] = cl
	}

	// Server stack: plain endpoint; one sink per accepted connection,
	// matched back to its client by the initial subflow's address.
	sep := mptcp.NewEndpoint(server, mptcp.Config{Scheduler: sched}, nil)
	completedAt := make([]sim.Time, cfg.Conns)
	for i := range completedAt {
		completedAt[i] = -1
	}
	sep.Listen(80, func(c *mptcp.Connection) {
		idx, ok := clientIdx[c.InitialTuple().DstIP]
		if !ok {
			return
		}
		sink := app.NewSink(s, uint64(cfg.BytesPerConn), nil)
		sink.OnComplete = func() { completedAt[idx] = s.Now() }
		c.SetCallbacks(sink.Callbacks())
	})

	// Client stacks dial with a tiny stagger (10 µs apart) so the SYN
	// burst is concurrent but not pathologically phase-locked.
	dialAt := make([]sim.Time, cfg.Conns)
	for i := range clients {
		cl := clients[i]
		at := sim.Millisecond + sim.Time(i)*10*sim.Microsecond
		dialAt[i] = at
		switch ctl {
		case KernelController:
			ep := mptcp.NewEndpoint(cl.host, mptcp.Config{Scheduler: sched}, pm.NewFullMesh())
			s.Schedule(at, "scale.dial", func() {
				if _, err := ep.Connect(cl.addrs[0], serverAddr, 80, cl.src.Callbacks()); err != nil {
					panic(err)
				}
			})
		default:
			st := smapp.New(cl.host, smapp.Config{MPTCP: mptcp.Config{Scheduler: sched}})
			pcfg := smapp.ControllerConfig{Addrs: cl.addrs, Subflows: cfg.Subflows}
			s.Schedule(at, "scale.dial", func() {
				if _, err := st.Dial(cl.addrs[0], serverAddr, 80, ctl, pcfg, cl.src.Callbacks()); err != nil {
					panic(err)
				}
			})
		}
	}

	s.RunUntil(sim.Time(cfg.Horizon))

	cell := scaleCell{sched: sched, ctl: ctl}
	delays := &sample{}
	var lastDone sim.Time
	var delivered uint64
	for i, at := range completedAt {
		if at < 0 {
			continue
		}
		cell.completed++
		delays.Add(time.Duration(at - dialAt[i]).Seconds())
		if at > lastDone {
			lastDone = at
		}
		delivered += uint64(cfg.BytesPerConn)
	}
	if delays.N() > 0 {
		cell.medianS = delays.Median()
		cell.p90S = delays.Quantile(0.9)
	}
	if lastDone > 0 {
		cell.goodputMbs = float64(delivered*8) / lastDone.Seconds() / 1e6
	}
	cell.pkts = server.Stats.Delivered
	for _, cl := range clients {
		cell.pkts += cl.host.Stats.Delivered
	}
	cell.drops = trunk.AB.Stats.DropQueue + trunk.BA.Stats.DropQueue
	cell.events = s.Processed
	cell.wall = time.Since(start)
	return cell
}
