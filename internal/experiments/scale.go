package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// ScaleConfig parameterises the stress workload: N concurrent Multipath
// TCP connections × M subflows each, streaming simultaneously through one
// shared bottleneck, swept over packet schedulers and subflow controllers.
type ScaleConfig struct {
	Seed         int64
	Conns        int           // concurrent connections, one client host each
	Subflows     int           // interfaces per client (→ subflows via full-mesh)
	Servers      int           // server hosts behind the aggregation, dialed round-robin (0 = 1)
	BytesPerConn int           // payload each client streams at t≈0
	Schedulers   []string      // swept packet schedulers; empty = lowest-rtt, round-robin
	Controllers  []string      // swept policies; empty = [kernel]; "kernel" = in-kernel full-mesh
	AccessBps    float64       // per-interface access rate
	Bottleneck   float64       // shared bottleneck rate
	Delay        time.Duration // one-way access-path delay
	Horizon      time.Duration // simulation cutoff
}

// KernelController names the in-kernel full-mesh baseline cell of the
// controller sweep (no userspace control plane at all).
const KernelController = scenario.KernelPolicy

// DefaultScale returns a bench-sized stress scenario: 16 clients × 2
// subflows pushing 1 MB each through a 200 Mbps bottleneck.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Seed:         1,
		Conns:        16,
		Subflows:     2,
		BytesPerConn: 1 << 20,
		AccessBps:    50e6,
		Bottleneck:   200e6,
		Delay:        10 * time.Millisecond,
		Horizon:      2 * time.Minute,
	}
}

func init() {
	scenario.Register("scale",
		"scale stress: N conns × M subflows through a shared bottleneck, swept over schedulers × controllers",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultScale()
			cfg.Conns = p.Int("conns", cfg.Conns)
			cfg.Subflows = p.Int("subflows", cfg.Subflows)
			cfg.Servers = p.Int("servers", cfg.Servers)
			cfg.BytesPerConn = p.Int("kb", cfg.BytesPerConn>>10) << 10
			if s := p.Str("sched", ""); s != "" {
				cfg.Schedulers = []string{s} // sweep a single scheduler
			}
			cfg.Schedulers = p.Strings("schedulers", cfg.Schedulers)
			if c := p.Str("policy", ""); c != "" {
				cfg.Controllers = []string{c}
			}
			cfg.Controllers = p.Strings("controllers", cfg.Controllers)
			if p.Bool("smoke", false) {
				cfg.Conns = 4
				cfg.BytesPerConn = 128 << 10
				cfg.Schedulers = []string{"lowest-rtt"}
			}
			wall := p.Bool("wall", true)
			sp, err := scaleSpec(cfg, wall)
			if err != nil {
				return nil, err
			}
			return sp, nil
		})
	scenario.RegisterParams("scale",
		scenario.ParamDoc{Key: "conns", Type: "int", Default: "16", Desc: "concurrent connections (one client host each)"},
		scenario.ParamDoc{Key: "subflows", Type: "int", Default: "2", Desc: "interfaces (→ subflows) per client"},
		scenario.ParamDoc{Key: "servers", Type: "int", Default: "1", Desc: "server hosts, dialed round-robin"},
		scenario.ParamDoc{Key: "kb", Type: "int", Default: "1024", Desc: "payload per connection in KB"},
		scenario.ParamDoc{Key: "schedulers", Type: "list", Desc: "swept packet schedulers (default: every registered one)"},
		scenario.ParamDoc{Key: "controllers", Type: "list", Desc: "swept subflow controllers (default: kernel + every registered one)"},
		scenario.ParamDoc{Key: "wall", Type: "bool", Default: "true", Desc: "include wall-clock throughput scalars"},
	)
}

// scaleCell is the outcome of one (scheduler, controller) sweep cell.
type scaleCell struct {
	sched, ctl string
	completed  int
	medianS    float64
	p90S       float64
	goodputMbs float64 // delivered payload bits/s over the busy interval
	pkts       uint64  // packets delivered end to end (both directions)
	drops      uint64  // queue drops at the bottleneck
	events     uint64  // simulator events processed
	wall       time.Duration
}

// scaleSpec declares the stress matrix: one fan-out run per (scheduler,
// controller) cell on a fresh star topology. Simulated results
// (completions, goodput, drops) are deterministic per seed; the
// wall-clock throughput scalars (segs_per_wall_s, events_per_wall_s)
// measure the host executing the simulation and feed the performance
// trajectory in the bench artifact. wall=false suppresses the wall-clock
// report section (it would break report determinism checks).
func scaleSpec(cfg ScaleConfig, wall bool) (*scenario.Spec, error) {
	scheds := cfg.Schedulers
	if len(scheds) == 0 {
		scheds = []string{"lowest-rtt", "round-robin"}
	}
	ctls := cfg.Controllers
	if len(ctls) == 0 {
		ctls = []string{KernelController}
	}
	for _, name := range scheds {
		if _, err := mptcp.LookupScheduler(name); err != nil {
			return nil, err
		}
	}
	for _, name := range ctls {
		if name == KernelController {
			continue
		}
		if _, err := smapp.LookupController(name); err != nil {
			return nil, err
		}
	}

	star := scenario.Star{
		Clients: cfg.Conns,
		Ifaces:  cfg.Subflows,
		Servers: cfg.Servers,
		Access:  netem.LinkConfig{RateBps: cfg.AccessBps, Delay: cfg.Delay},
		Bottleneck: netem.LinkConfig{
			RateBps: cfg.Bottleneck, Delay: 500 * time.Microsecond,
		},
	}
	var runs []*scenario.RunSpec
	for _, sched := range scheds {
		for _, ctl := range ctls {
			runs = append(runs, &scenario.RunSpec{
				Label:     sched + "/" + ctl,
				Topology:  star,
				Workload:  &scenario.FanOut{Bytes: cfg.BytesPerConn},
				Sched:     sched,
				Policy:    ctl,
				PolicyCfg: smapp.ControllerConfig{Subflows: cfg.Subflows},
				Stop:      scenario.Stop{Horizon: cfg.Horizon},
			})
		}
	}

	return &scenario.Spec{
		Name:  "scale",
		Title: "Scale stress — pooled data path under concurrent load",
		Desc: fmt.Sprintf("%d conns x %d subflows, %d KB each; access %.0f Mbps, bottleneck %.0f Mbps, %v delay",
			cfg.Conns, cfg.Subflows, cfg.BytesPerConn>>10, cfg.AccessBps/1e6, cfg.Bottleneck/1e6, cfg.Delay),
		Runs: runs,
		Render: func(res *stats.Result, runs []*scenario.Run) {
			var cells []scaleCell
			var totalPkts, totalEvents uint64
			var totalWall time.Duration
			for _, rt := range runs {
				cell := scaleCellOf(cfg, rt)
				cells = append(cells, cell)
				totalPkts += cell.pkts
				totalEvents += cell.events
				totalWall += cell.wall
				key := cell.sched + "/" + cell.ctl
				res.Scalars[key+"_completed"] = float64(cell.completed)
				res.Scalars[key+"_median_s"] = cell.medianS
				res.Scalars[key+"_p90_s"] = cell.p90S
				res.Scalars[key+"_goodput_mbps"] = cell.goodputMbs
				res.Scalars[key+"_bottleneck_drops"] = float64(cell.drops)
				s := res.Sample(key + " completion (s)")
				s.Add(cell.medianS)
			}

			res.Section("sweep matrix")
			res.Printf("%-14s %-10s %5s %9s %9s %9s %9s %7s\n",
				"scheduler", "controller", "done", "median", "p90", "goodput", "pkts", "drops")
			for _, c := range cells {
				res.Printf("%-14s %-10s %3d/%-2d %8.2fs %8.2fs %6.1fMb/s %9d %7d\n",
					c.sched, c.ctl, c.completed, cfg.Conns, c.medianS, c.p90S, c.goodputMbs, c.pkts, c.drops)
			}

			wallS := totalWall.Seconds()
			if wallS > 0 {
				res.Scalars["segs_per_wall_s"] = float64(totalPkts) / wallS
				res.Scalars["events_per_wall_s"] = float64(totalEvents) / wallS
				// Host throughput measures the machine, not the model:
				// tag it so `mpexp diff` skips it instead of relying on
				// the name (benchgate owns its regression thresholds).
				res.MarkWallClock("segs_per_wall_s", "events_per_wall_s")
			}
			if wall && wallS > 0 {
				res.Section("host throughput (wall clock)")
				res.Printf("delivered %d packets / processed %d events in %v: %.0f segs/s, %.0f events/s\n",
					totalPkts, totalEvents, totalWall.Round(time.Millisecond),
					float64(totalPkts)/wallS, float64(totalEvents)/wallS)
			}
		},
	}, nil
}

// scaleCellOf reduces one fan-out run to its sweep-matrix row.
func scaleCellOf(cfg ScaleConfig, rt *scenario.Run) scaleCell {
	wl := rt.Spec.Workload.(*scenario.FanOut)
	cell := scaleCell{sched: rt.Spec.Sched, ctl: rt.Spec.Policy}
	delays := &sample{}
	var lastDone sim.Time
	var delivered uint64
	for i, at := range wl.CompletedAt {
		if at < 0 {
			continue
		}
		cell.completed++
		delays.Add(time.Duration(at - wl.DialAt[i]).Seconds())
		if at > lastDone {
			lastDone = at
		}
		delivered += uint64(cfg.BytesPerConn)
	}
	if delays.N() > 0 {
		cell.medianS = delays.Median()
		cell.p90S = delays.Quantile(0.9)
	}
	if lastDone > 0 {
		cell.goodputMbs = float64(delivered*8) / lastDone.Seconds() / 1e6
	}
	for _, srv := range rt.Net.Servers {
		cell.pkts += srv.Stats.Delivered
	}
	for _, cl := range rt.Net.Clients {
		cell.pkts += cl.Host.Stats.Delivered
	}
	for name, d := range rt.Net.Links {
		if strings.HasPrefix(name, "bottleneck") {
			cell.drops += d.AB.Stats.DropQueue + d.BA.Stats.DropQueue
		}
	}
	cell.events = rt.Sim.Processed()
	cell.wall = rt.Wall
	return cell
}

// Scale runs the stress matrix (see scaleSpec).
func Scale(cfg ScaleConfig) *Result {
	sp, err := scaleSpec(cfg, true)
	if err != nil {
		panic(err)
	}
	return scenario.Execute(sp, cfg.Seed)
}
