package experiments

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// CtlSweepConfig parameterises the controller-sweep experiment.
type CtlSweepConfig struct {
	Seed        int64
	Sched       string        // packet scheduler for every run
	Controllers []string      // registered policy names; empty sweeps every one
	Loss        float64       // loss ratio on the primary path
	Blocks      int           // blocks per controller run
	Period      time.Duration // one block per period
	BlockSize   int
	LossAt      time.Duration // loss starts after this settle time
}

// DefaultCtlSweep sweeps every registered controller over the §4.3
// streaming workload at 30 % loss.
func DefaultCtlSweep() CtlSweepConfig {
	return CtlSweepConfig{
		Seed:      1,
		Loss:      0.30,
		Blocks:    120,
		Period:    time.Second,
		BlockSize: 64 << 10,
		LossAt:    time.Second,
	}
}

func init() {
	scenario.Register("ctlsweep",
		"controller sweep: the §4.3 streaming workload once per registered subflow controller, plus the plain stack",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultCtlSweep()
			cfg.Sched = p.Str("sched", cfg.Sched)
			if c := p.Str("policy", ""); c != "" {
				cfg.Controllers = []string{c} // sweep a single policy
			}
			cfg.Controllers = p.Strings("controllers", cfg.Controllers)
			cfg.Loss = p.Float("loss", cfg.Loss)
			cfg.Blocks = p.Int("blocks", cfg.Blocks)
			if p.Bool("smoke", false) {
				cfg.Blocks = 10
			}
			return ctlSweepSpec(cfg)
		})
	scenario.RegisterParams("ctlsweep",
		scenario.ParamDoc{Key: "controllers", Type: "list", Desc: "swept subflow controllers (default: every registered one + plain)"},
		scenario.ParamDoc{Key: "loss", Type: "float", Default: "0.30", Desc: "primary-path loss ratio"},
		scenario.ParamDoc{Key: "blocks", Type: "int", Default: "120", Desc: "blocks per controller"},
	)
}

// ctlSweepSpec declares the controller-space analogue of schedsweep: the
// paper's streaming workload once per registered subflow controller —
// every policy selected purely by registry name through the smapp facade
// — plus the nil-policy plain stack, comparing the block-completion-time
// distributions. The sweep makes the policy/workload fit visible: stream
// is built for this workload, backup and fullmesh recover more slowly,
// and refresh/ndiffports — whose extra subflows all share the lossy
// primary interface — actively hurt, spreading blocks across many
// RTO-prone subflows.
func ctlSweepSpec(cfg CtlSweepConfig) (*scenario.Spec, error) {
	ctls := cfg.Controllers
	if len(ctls) == 0 {
		ctls = smapp.ControllerNames()
	}
	for _, name := range ctls {
		if _, err := smapp.LookupController(name); err != nil {
			return nil, err
		}
	}

	streamCfg := Fig2bConfig{
		Sched:     cfg.Sched,
		Blocks:    cfg.Blocks,
		Period:    cfg.Period,
		BlockSize: cfg.BlockSize,
		LossAt:    cfg.LossAt,
	}
	curves := append(append([]string(nil), ctls...), "none")
	var runs []*scenario.RunSpec
	for _, name := range curves {
		policy := name
		if name == "none" {
			policy = "" // the nil-policy plain stack as the reference curve
		}
		runs = append(runs, streamRun(streamCfg, cfg.Loss, policy, name))
	}

	return &scenario.Spec{
		Name:  "ctlsweep",
		Title: "Controller sweep — §4.3 streaming workload per subflow controller",
		Desc: fmt.Sprintf("2 x 5 Mbps, 10 ms paths; %d B block every %v; %d blocks; %.0f%% loss",
			cfg.BlockSize, cfg.Period, cfg.Blocks, cfg.Loss*100),
		Runs: runs,
		Render: func(res *stats.Result, _ []*scenario.Run) {
			res.Section("CDF of block completion time (seconds) per controller")
			res.RenderCDFs(curves...)

			res.Section("summary")
			res.Printf("%-12s %8s %8s %8s %8s\n", "controller", "median", "p90", "p99", "max")
			for _, name := range curves {
				s := res.Samples[name]
				res.Printf("%-12s %7.2fs %7.2fs %7.2fs %7.2fs\n",
					name, s.Median(), s.Quantile(0.9), s.Quantile(0.99), s.Max())
				res.Scalars[name+"_median_s"] = s.Median()
				res.Scalars[name+"_p90_s"] = s.Quantile(0.9)
			}
		},
	}, nil
}

// CtlSweep runs the controller sweep (see ctlSweepSpec).
func CtlSweep(cfg CtlSweepConfig) *Result {
	sp, err := ctlSweepSpec(cfg)
	if err != nil {
		panic(err)
	}
	return scenario.Execute(sp, cfg.Seed)
}
