package experiments

import (
	"strings"
	"testing"
)

// smallScale keeps the stress matrix test-sized.
func smallScale(seed int64) ScaleConfig {
	cfg := DefaultScale()
	cfg.Seed = seed
	cfg.Conns = 4
	cfg.BytesPerConn = 128 << 10
	cfg.Schedulers = []string{"lowest-rtt"}
	return cfg
}

func TestScaleKernelCellCompletes(t *testing.T) {
	r := Scale(smallScale(1))
	if got := r.Scalars["lowest-rtt/kernel_completed"]; got != 4 {
		t.Fatalf("completed %v of 4 connections\n%s", got, r.Report)
	}
	if r.Scalars["lowest-rtt/kernel_goodput_mbps"] <= 0 {
		t.Fatalf("no goodput recorded\n%s", r.Report)
	}
}

// TestScaleControllerCell drives the sweep through the smapp facade: the
// userspace full-mesh policy must also finish every transfer.
func TestScaleControllerCell(t *testing.T) {
	cfg := smallScale(1)
	cfg.Controllers = []string{KernelController, "fullmesh"}
	r := Scale(cfg)
	for _, key := range []string{"lowest-rtt/kernel_completed", "lowest-rtt/fullmesh_completed"} {
		if got := r.Scalars[key]; got != 4 {
			t.Fatalf("%s = %v, want 4\n%s", key, got, r.Report)
		}
	}
}

// TestScaleDeterministicPerSeed checks the pooled data path stays
// reproducible under concurrency stress: every simulated scalar of two
// same-seed runs must agree exactly (wall-clock scalars excluded — they
// measure the host, not the model).
func TestScaleDeterministicPerSeed(t *testing.T) {
	a := Scale(smallScale(3))
	b := Scale(smallScale(3))
	for k, v := range a.Scalars {
		if strings.HasSuffix(k, "_wall_s") {
			continue
		}
		if b.Scalars[k] != v {
			t.Fatalf("scalar %s diverged between same-seed runs: %v vs %v", k, v, b.Scalars[k])
		}
	}
}
