package experiments

import (
	"fmt"
	"time"

	"repro/internal/mptcp"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// SchedSweepConfig parameterises the scheduler-sweep experiment.
type SchedSweepConfig struct {
	Seed       int64
	Schedulers []string      // registered names; empty sweeps every one
	Loss       float64       // loss ratio on the primary path
	Blocks     int           // blocks per scheduler run
	Period     time.Duration // one block per period
	BlockSize  int
	LossAt     time.Duration // loss starts after this settle time
}

// DefaultSchedSweep sweeps every registered scheduler over the §4.3
// streaming workload at 30 % loss.
func DefaultSchedSweep() SchedSweepConfig {
	return SchedSweepConfig{
		Seed:      1,
		Loss:      0.30,
		Blocks:    120,
		Period:    time.Second,
		BlockSize: 64 << 10,
		LossAt:    time.Second,
	}
}

func init() {
	scenario.Register("schedsweep",
		"scheduler sweep: the §4.3 streaming workload once per registered packet scheduler",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultSchedSweep()
			// The scheduler sweep has no controller dimension; the policy
			// param is consumed and ignored so blanket overrides
			// (`mpexp all -controller X`) pass through, as the old CLI did.
			p.Str("policy", "")
			if s := p.Str("sched", ""); s != "" {
				cfg.Schedulers = []string{s} // sweep a single policy
			}
			cfg.Schedulers = p.Strings("schedulers", cfg.Schedulers)
			cfg.Loss = p.Float("loss", cfg.Loss)
			cfg.Blocks = p.Int("blocks", cfg.Blocks)
			if p.Bool("smoke", false) {
				cfg.Blocks = 10
			}
			return schedSweepSpec(cfg)
		})
	scenario.RegisterParams("schedsweep",
		scenario.ParamDoc{Key: "schedulers", Type: "list", Desc: "swept packet schedulers (default: every registered one)"},
		scenario.ParamDoc{Key: "loss", Type: "float", Default: "0.30", Desc: "primary-path loss ratio"},
		scenario.ParamDoc{Key: "blocks", Type: "int", Default: "120", Desc: "blocks per scheduler"},
	)
}

// schedSweepSpec declares the sweep: the paper's streaming workload (two
// 5 Mbps / 10 ms paths, one 64 KB block per second, full-mesh path
// manager) once per scheduler, comparing the block-completion-time
// distributions. This is the sweep the scheduler-comparison literature
// (Paasch et al., CSWS'14) performs across policies: lowest-rtt is the
// kernel default, round-robin the classic alternative, redundant the
// latency-optimal bound, and weighted-rtt the probabilistic middle
// ground.
func schedSweepSpec(cfg SchedSweepConfig) (*scenario.Spec, error) {
	scheds := cfg.Schedulers
	if len(scheds) == 0 {
		scheds = mptcp.SchedulerNames()
	}
	for _, name := range scheds {
		if _, err := mptcp.LookupScheduler(name); err != nil {
			return nil, err
		}
	}

	var runs []*scenario.RunSpec
	for _, name := range scheds {
		streamCfg := Fig2bConfig{
			Sched:     name,
			Blocks:    cfg.Blocks,
			Period:    cfg.Period,
			BlockSize: cfg.BlockSize,
			LossAt:    cfg.LossAt,
		}
		runs = append(runs, streamRun(streamCfg, cfg.Loss, "", name))
	}

	return &scenario.Spec{
		Name:  "schedsweep",
		Title: "Scheduler sweep — §4.3 streaming workload per scheduler",
		Desc: fmt.Sprintf("2 x 5 Mbps, 10 ms paths; %d B block every %v; %d blocks; %.0f%% loss; full-mesh PM",
			cfg.BlockSize, cfg.Period, cfg.Blocks, cfg.Loss*100),
		Runs: runs,
		Render: func(res *stats.Result, _ []*scenario.Run) {
			res.Section("CDF of block completion time (seconds) per scheduler")
			res.RenderCDFs(scheds...)

			res.Section("summary")
			res.Printf("%-14s %8s %8s %8s %8s\n", "scheduler", "median", "p90", "p99", "max")
			for _, name := range scheds {
				s := res.Samples[name]
				res.Printf("%-14s %7.2fs %7.2fs %7.2fs %7.2fs\n",
					name, s.Median(), s.Quantile(0.9), s.Quantile(0.99), s.Max())
				res.Scalars[name+"_median_s"] = s.Median()
				res.Scalars[name+"_p90_s"] = s.Quantile(0.9)
			}
		},
	}, nil
}

// SchedSweep runs the scheduler sweep (see schedSweepSpec).
func SchedSweep(cfg SchedSweepConfig) *Result {
	sp, err := schedSweepSpec(cfg)
	if err != nil {
		panic(err)
	}
	return scenario.Execute(sp, cfg.Seed)
}
