package experiments

import (
	"fmt"
	"time"

	"repro/internal/mptcp"
)

// SchedSweepConfig parameterises the scheduler-sweep experiment.
type SchedSweepConfig struct {
	Seed       int64
	Schedulers []string      // registered names; empty sweeps every one
	Loss       float64       // loss ratio on the primary path
	Blocks     int           // blocks per scheduler run
	Period     time.Duration // one block per period
	BlockSize  int
	LossAt     time.Duration // loss starts after this settle time
}

// DefaultSchedSweep sweeps every registered scheduler over the §4.3
// streaming workload at 30 % loss.
func DefaultSchedSweep() SchedSweepConfig {
	return SchedSweepConfig{
		Seed:      1,
		Loss:      0.30,
		Blocks:    120,
		Period:    time.Second,
		BlockSize: 64 << 10,
		LossAt:    time.Second,
	}
}

// SchedSweep runs the paper's streaming workload (two 5 Mbps / 10 ms
// paths, one 64 KB block per second, full-mesh path manager) once per
// scheduler and compares the block-completion-time distributions. This is
// the sweep the scheduler-comparison literature (Paasch et al., CSWS'14)
// performs across policies: lowest-rtt is the kernel default, round-robin
// the classic alternative, redundant the latency-optimal bound, and
// weighted-rtt the probabilistic middle ground.
func SchedSweep(cfg SchedSweepConfig) *Result {
	scheds := cfg.Schedulers
	if len(scheds) == 0 {
		scheds = mptcp.SchedulerNames()
	}
	for _, name := range scheds {
		if _, err := mptcp.LookupScheduler(name); err != nil {
			panic(err)
		}
	}

	res := newResult("schedsweep")
	res.Report = header("Scheduler sweep — §4.3 streaming workload per scheduler",
		fmt.Sprintf("2 x 5 Mbps, 10 ms paths; %d B block every %v; %d blocks; %.0f%% loss; full-mesh PM",
			cfg.BlockSize, cfg.Period, cfg.Blocks, cfg.Loss*100))

	streamCfg := Fig2bConfig{
		Seed:      cfg.Seed,
		Blocks:    cfg.Blocks,
		Period:    cfg.Period,
		BlockSize: cfg.BlockSize,
		LossAt:    cfg.LossAt,
	}
	for _, name := range scheds {
		streamCfg.Sched = name
		res.Samples[name] = fig2bRun(streamCfg, cfg.Loss, "")
	}

	res.section("CDF of block completion time (seconds) per scheduler")
	res.renderCDFs(scheds...)

	res.section("summary")
	res.printf("%-14s %8s %8s %8s %8s\n", "scheduler", "median", "p90", "p99", "max")
	for _, name := range scheds {
		s := res.Samples[name]
		res.printf("%-14s %7.2fs %7.2fs %7.2fs %7.2fs\n",
			name, s.Median(), s.Quantile(0.9), s.Quantile(0.99), s.Max())
		res.Scalars[name+"_median_s"] = s.Median()
		res.Scalars[name+"_p90_s"] = s.Quantile(0.9)
	}
	return res
}
