package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// Fig3Config parameterises the §4.5 path-manager-cost experiment.
type Fig3Config struct {
	Seed     int64
	Sched    string // registered scheduler name; "" = lowest-rtt
	Policy   string // registered controller for the userspace variant (paper: ndiffports)
	Requests int    // consecutive HTTP/1.0-style GETs (paper: 1000)
	RespSize int    // 512 KB in the paper
	Stressed bool   // model the CPU-stressed client of §4.5
}

// DefaultFig3 returns the paper's parameters.
func DefaultFig3() Fig3Config {
	return Fig3Config{Seed: 1, Policy: "ndiffports", Requests: 1000, RespSize: 512 << 10}
}

// Fig3 measures the delay between the SYN carrying MP_CAPABLE and the SYN
// carrying MP_JOIN for the in-kernel ndiffports path manager vs the
// userspace one behind Netlink. The paper reports the userspace manager
// adding ≈23 µs on average (< 37 µs under CPU stress).
func Fig3(cfg Fig3Config) *Result {
	res := newResult("fig3")
	stress := ""
	if cfg.Stressed {
		stress = " (CPU-stressed client)"
	}
	res.Report = header("Fig. 3 — kernel vs userspace path manager (§4.5)",
		fmt.Sprintf("1 Gbps direct link; %d consecutive %d KB GETs%s",
			cfg.Requests, cfg.RespSize>>10, stress))

	kernel := fig3Run(cfg, false)
	user := fig3Run(cfg, true)
	res.Samples["kernel"] = kernel
	res.Samples["userspace"] = user

	res.section("CDF of delay between MP_CAPABLE SYN and MP_JOIN SYN (ms)")
	res.renderCDFs("kernel", "userspace")

	res.section("summary")
	res.printf("%-10s %10s %10s %10s\n", "variant", "mean", "median", "p95")
	for _, n := range []string{"kernel", "userspace"} {
		s := res.Samples[n]
		res.printf("%-10s %9.3fms %9.3fms %9.3fms\n",
			n, s.Mean(), s.Median(), s.Quantile(0.95))
	}
	deltaUS := (user.Mean() - kernel.Mean()) * 1000
	res.printf("\nuserspace penalty: %.1f µs on average (paper: ≈23 µs, <37 µs stressed)\n", deltaUS)
	res.Scalars["kernel_mean_ms"] = kernel.Mean()
	res.Scalars["user_mean_ms"] = user.Mean()
	res.Scalars["delta_us"] = deltaUS
	return res
}

// fig3Run performs the GET loop against one variant and returns the
// CAPA→JOIN delays in milliseconds.
func fig3Run(cfg Fig3Config, userspace bool) *sample {
	net := topo.NewDirect(sim.New(cfg.Seed), netem.LinkConfig{
		RateBps: 1e9, Delay: 20 * time.Microsecond,
	})
	// Host processing jitter: the dominant term of the sub-millisecond
	// delays in the paper's lab measurement.
	net.Client.SetProcDelay(procDelayModel(net.Sim.Rand(), 40*time.Microsecond, 30*time.Microsecond))
	net.Server.SetProcDelay(procDelayModel(net.Sim.Rand(), 50*time.Microsecond, 40*time.Microsecond))

	scfg := smapp.Config{MPTCP: mptcp.Config{Scheduler: cfg.Sched}, Stressed: cfg.Stressed}
	policy := ""
	if userspace {
		policy = cfg.Policy
	} else {
		scfg.KernelPM = pm.NewNDiffPorts(2)
	}
	st := smapp.New(net.Client, scfg)
	sep := mptcp.NewEndpoint(net.Server, mptcp.Config{Scheduler: cfg.Sched}, nil)
	srv := app.NewReqRespServer(200, cfg.RespSize)
	sep.Listen(80, srv.Accept)
	net.Sim.RunFor(time.Millisecond)

	delays := &sample{}
	for i := 0; i < cfg.Requests; i++ {
		var conn *mptcp.Connection
		respDone := false
		conn, err := st.Dial(net.ClientAddr, net.ServerAddr, 80, policy, smapp.ControllerConfig{Subflows: 2}, mptcp.ConnCallbacks{
			OnEstablished: func(c *mptcp.Connection) { c.Write(200) },
			OnData: func(c *mptcp.Connection, total uint64) {
				if total >= uint64(cfg.RespSize) {
					respDone = true
				}
			},
			OnPeerClose: func(c *mptcp.Connection) { c.Close() },
		})
		if err != nil {
			panic(err)
		}
		// Sample the CAPA→JOIN delay as soon as the join subflow exists
		// (the connection tears down right after the response).
		sampled := false
		for i := 0; i < 1000 && !sampled && !conn.Closed(); i++ {
			net.Sim.RunFor(100 * time.Microsecond)
			if len(conn.Subflows()) >= 2 {
				if d, ok := capaJoinDelay(conn); ok {
					delays.Add(d.Seconds() * 1000) // ms
					sampled = true
				}
			}
		}
		// Run the request to completion (HTTP/1.0: one conn per GET).
		for !respDone && !conn.Closed() {
			net.Sim.RunFor(10 * time.Millisecond)
		}
		conn.Abort()
		net.Sim.RunFor(time.Millisecond)
	}
	return delays
}

// capaJoinDelay extracts the SYN(MP_CAPABLE)→SYN(MP_JOIN) delay from the
// connection's subflows.
func capaJoinDelay(c *mptcp.Connection) (time.Duration, bool) {
	var initial, join *tcp.Subflow
	for _, sf := range c.Subflows() {
		if sf.Tuple() == c.InitialTuple() {
			initial = sf
		} else if join == nil || sf.SynSentAt() < join.SynSentAt() {
			join = sf
		}
	}
	if initial == nil || join == nil {
		return 0, false
	}
	return time.Duration(join.SynSentAt() - initial.SynSentAt()), true
}
