package experiments

import (
	"fmt"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/scenario"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// Fig3Config parameterises the §4.5 path-manager-cost experiment.
type Fig3Config struct {
	Seed     int64
	Sched    string // registered scheduler name; "" = lowest-rtt
	Policy   string // registered controller for the userspace variant (paper: ndiffports)
	Requests int    // consecutive HTTP/1.0-style GETs (paper: 1000)
	RespSize int    // 512 KB in the paper
	Stressed bool   // model the CPU-stressed client of §4.5
}

// DefaultFig3 returns the paper's parameters.
func DefaultFig3() Fig3Config {
	return Fig3Config{Seed: 1, Policy: "ndiffports", Requests: 1000, RespSize: 512 << 10}
}

func init() {
	scenario.Register("fig3",
		"path-manager cost (§4.5): CDFs of the MP_CAPABLE→MP_JOIN SYN delay, kernel vs userspace manager",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultFig3()
			cfg.Sched = p.Str("sched", cfg.Sched)
			cfg.Policy = p.Str("policy", cfg.Policy)
			cfg.Requests = p.Int("requests", cfg.Requests)
			cfg.RespSize = p.Int("resp_kb", cfg.RespSize>>10) << 10
			cfg.Stressed = p.Bool("stressed", cfg.Stressed)
			if p.Bool("smoke", false) {
				cfg.Requests = 25
			}
			return fig3Spec(cfg), nil
		})
	scenario.RegisterParams("fig3",
		scenario.ParamDoc{Key: "requests", Type: "int", Default: "1000", Desc: "consecutive GETs"},
		scenario.ParamDoc{Key: "resp_kb", Type: "int", Default: "512", Desc: "response size in KB"},
		scenario.ParamDoc{Key: "stressed", Type: "bool", Default: "false", Desc: "model the CPU-stressed client"},
	)
}

// fig3Run declares one GET-loop variant on the direct lab link: the
// userspace variant manages subflows through the Netlink control plane,
// the kernel variant through the in-kernel ndiffports path manager. The
// request/response workload drives the simulation itself and samples the
// delay between the SYN carrying MP_CAPABLE and the SYN carrying MP_JOIN
// per request.
func fig3Run(cfg Fig3Config, userspace bool) (*scenario.RunSpec, *scenario.ReqResp) {
	policy := ""
	variant := "kernel"
	var kernelPM func() mptcp.PathManager
	if userspace {
		policy = cfg.Policy
		variant = "userspace"
	} else {
		kernelPM = func() mptcp.PathManager { return pm.NewNDiffPorts(2) }
	}
	wl := &scenario.ReqResp{Requests: cfg.Requests, ReqSize: 200, RespSize: cfg.RespSize}
	run := &scenario.RunSpec{
		Label: variant,
		Topology: scenario.Direct{
			Link: netem.LinkConfig{RateBps: 1e9, Delay: 20 * time.Microsecond},
			// Host processing jitter: the dominant term of the
			// sub-millisecond delays in the paper's lab measurement.
			ClientProc: scenario.Proc{Base: 40 * time.Microsecond, Jitter: 30 * time.Microsecond},
			ServerProc: scenario.Proc{Base: 50 * time.Microsecond, Jitter: 40 * time.Microsecond},
		},
		Workload:  wl,
		Sched:     cfg.Sched,
		Policy:    policy,
		PolicyCfg: smapp.ControllerConfig{Subflows: 2},
		KernelPM:  kernelPM,
		Stressed:  cfg.Stressed,
		Settle:    time.Millisecond,
		Probes: []scenario.Probe{
			{Name: variant, Collect: func(rt *scenario.Run) {
				rt.Result.Samples[variant] = wl.Delays
			}},
		},
		// The workload drives the simulation; no Stop condition.
	}
	return run, wl
}

// fig3Spec declares the experiment: the kernel and userspace variants
// back to back, rendered as the paper's CDF. The paper reports the
// userspace manager adding ≈23 µs on average (< 37 µs under CPU stress).
func fig3Spec(cfg Fig3Config) *scenario.Spec {
	stress := ""
	if cfg.Stressed {
		stress = " (CPU-stressed client)"
	}
	kernelRun, _ := fig3Run(cfg, false)
	userRun, _ := fig3Run(cfg, true)
	return &scenario.Spec{
		Name:  "fig3",
		Title: "Fig. 3 — kernel vs userspace path manager (§4.5)",
		Desc: fmt.Sprintf("1 Gbps direct link; %d consecutive %d KB GETs%s",
			cfg.Requests, cfg.RespSize>>10, stress),
		Runs: []*scenario.RunSpec{kernelRun, userRun},
		Render: func(res *stats.Result, runs []*scenario.Run) {
			kernel := res.Samples["kernel"]
			user := res.Samples["userspace"]
			res.Section("CDF of delay between MP_CAPABLE SYN and MP_JOIN SYN (ms)")
			res.RenderCDFs("kernel", "userspace")

			res.Section("summary")
			res.Printf("%-10s %10s %10s %10s\n", "variant", "mean", "median", "p95")
			for _, n := range []string{"kernel", "userspace"} {
				s := res.Samples[n]
				res.Printf("%-10s %9.3fms %9.3fms %9.3fms\n",
					n, s.Mean(), s.Median(), s.Quantile(0.95))
			}
			deltaUS := (user.Mean() - kernel.Mean()) * 1000
			res.Printf("\nuserspace penalty: %.1f µs on average (paper: ≈23 µs, <37 µs stressed)\n", deltaUS)
			res.Scalars["kernel_mean_ms"] = kernel.Mean()
			res.Scalars["user_mean_ms"] = user.Mean()
			res.Scalars["delta_us"] = deltaUS
		},
	}
}

// Fig3 runs the path-manager-cost experiment (see fig3Spec).
func Fig3(cfg Fig3Config) *Result {
	return scenario.Execute(fig3Spec(cfg), cfg.Seed)
}
