package experiments

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// LongLivedConfig parameterises the §4.1 long-lived-connection experiment.
type LongLivedConfig struct {
	Seed        int64
	Sched       string        // registered scheduler name; "" = lowest-rtt
	Policy      string        // registered controller; "" = the plain stack (nil policy)
	NATTimeout  time.Duration // middlebox idle timeout (deployed boxes: a few hundred seconds)
	Expiry      netem.ExpiryPolicy
	MsgInterval time.Duration // application message cadence (sparser than the NAT timeout)
	Messages    int
	MsgSize     int
	FlapAt      time.Duration // one interface outage, 0 disables
	FlapFor     time.Duration
}

// DefaultLongLived returns a scenario with a 180 s NAT timeout and a chat
// message every 10 minutes — the keepalive battle of §4.1.
func DefaultLongLived() LongLivedConfig {
	return LongLivedConfig{
		Seed:        1,
		Policy:      "fullmesh",
		NATTimeout:  180 * time.Second,
		Expiry:      netem.ExpiryRST,
		MsgInterval: 10 * time.Minute,
		Messages:    12,
		MsgSize:     2000,
		FlapAt:      25 * time.Minute,
		FlapFor:     2 * time.Minute,
	}
}

func init() {
	scenario.Register("longlived",
		"long-lived connections (§4.1): chat through a NAT with idle timeouts, smart full-mesh vs plain stack",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultLongLived()
			cfg.Sched = p.Str("sched", cfg.Sched)
			cfg.Policy = p.Str("policy", cfg.Policy)
			if p.Bool("plain", false) {
				cfg.Policy = "" // the nil policy: same stack, no controller
			}
			cfg.NATTimeout = p.Duration("nat_timeout", cfg.NATTimeout)
			cfg.MsgInterval = p.Duration("interval", cfg.MsgInterval)
			cfg.Messages = p.Int("messages", cfg.Messages)
			cfg.MsgSize = p.Int("msg_size", cfg.MsgSize)
			cfg.FlapAt = p.Duration("flap_at", cfg.FlapAt)
			cfg.FlapFor = p.Duration("flap_for", cfg.FlapFor)
			if p.Bool("smoke", false) {
				cfg.Messages = 4
				cfg.FlapAt = 15 * time.Minute
			}
			return longLivedSpec(cfg), nil
		})
	scenario.RegisterParams("longlived",
		scenario.ParamDoc{Key: "plain", Type: "bool", Default: "false", Desc: "run the nil policy (plain-stack baseline)"},
		scenario.ParamDoc{Key: "nat_timeout", Type: "duration", Default: "3m0s", Desc: "NAT idle-entry expiry"},
		scenario.ParamDoc{Key: "interval", Type: "duration", Default: "10m0s", Desc: "message interval"},
		scenario.ParamDoc{Key: "messages", Type: "int", Default: "12", Desc: "messages per direction"},
		scenario.ParamDoc{Key: "msg_size", Type: "int", Default: "2000", Desc: "bytes per message"},
		scenario.ParamDoc{Key: "flap_at", Type: "duration", Default: "25m0s", Desc: "when the primary interface flaps"},
		scenario.ParamDoc{Key: "flap_for", Type: "duration", Default: "2m0s", Desc: "flap outage length"},
	)
}

// longLivedSpec declares the §4.1 scenario: a chat-style connection
// through a NAT that expires idle state, with an optional interface
// outage. With the smart full-mesh controller, failed subflows are
// re-established with error-specific backoff and every message is
// eventually delivered; the plain stack loses its only subflow at the
// first expiry and stalls.
func longLivedSpec(cfg LongLivedConfig) *scenario.Spec {
	mode := fmt.Sprintf("userspace %q controller", cfg.Policy)
	if cfg.Policy == "" {
		mode = "plain stack (nil policy)"
	}

	p := netem.LinkConfig{RateBps: 20e6, Delay: 20 * time.Millisecond}
	wl := &scenario.OnOff{Interval: cfg.MsgInterval, Count: cfg.Messages, Size: cfg.MsgSize}

	var events []scenario.Event
	if cfg.FlapAt > 0 {
		events = scenario.FlapIface(cfg.FlapAt, cfg.FlapFor, 0)
	}
	horizon := cfg.MsgInterval*time.Duration(cfg.Messages+1) + 5*time.Minute

	run := &scenario.RunSpec{
		Label:    "longlived",
		Topology: scenario.NATPath{P0: p, P1: p, Idle: cfg.NATTimeout, Expiry: cfg.Expiry},
		Workload: wl,
		Sched:    cfg.Sched,
		Policy:   cfg.Policy,
		Settle:   time.Millisecond,
		Events:   events,
		Stop:     scenario.Stop{Horizon: horizon},
	}

	return &scenario.Spec{
		Name:  "longlived",
		Title: "§4.1 — smarter long-lived connections",
		Desc: fmt.Sprintf("NAT idle timeout %v (%s on expiry); message every %v; %s",
			cfg.NATTimeout, expiryName(cfg.Expiry), cfg.MsgInterval, mode),
		Runs: []*scenario.RunSpec{run},
		Render: func(res *stats.Result, runs []*scenario.Run) {
			rt := runs[0]
			delivered := len(wl.Arrivals)
			lat := res.Sample("message delivery latency (s)")
			for i, at := range wl.Arrivals {
				if i < len(wl.SendTimes) {
					lat.Add(time.Duration(at - wl.SendTimes[i]).Seconds())
				}
			}
			res.Scalars["messages_sent"] = float64(len(wl.SendTimes))
			res.Scalars["messages_delivered"] = float64(delivered)
			ctl, _ := rt.Stack.Controller(rt.Conn).(*controller.FullMesh)
			if ctl != nil {
				res.Scalars["reestablishments"] = float64(ctl.Stats.Reestablishments)
				res.Scalars["dismissed"] = float64(ctl.Stats.SubflowsDismissed)
			}
			res.Scalars["nat_expiries"] = float64(rt.Net.NAT.Stats.Expired)
			res.Scalars["live_subflows_at_end"] = float64(len(rt.Conn.Subflows()))

			res.Section("results")
			res.Printf("messages delivered: %d / %d\n", delivered, len(wl.SendTimes))
			if lat.N() > 0 {
				res.Printf("delivery latency: %s\n", lat.Summary("s"))
			}
			res.Printf("NAT state expiries hit: %d; RSTs injected: %d\n",
				rt.Net.NAT.Stats.Expired, rt.Net.NAT.Stats.RSTInjected)
			if ctl != nil {
				res.Printf("controller re-establishments: %d (by errno: %v); dismissed on if-down: %d\n",
					ctl.Stats.Reestablishments, ctl.Stats.RetriesByErrno, ctl.Stats.SubflowsDismissed)
			}
			res.Printf("live subflows at end: %d\n", len(rt.Conn.Subflows()))
		},
	}
}

// LongLived runs the §4.1 scenario (see longLivedSpec).
func LongLived(cfg LongLivedConfig) *Result {
	return scenario.Execute(longLivedSpec(cfg), cfg.Seed)
}

func expiryName(p netem.ExpiryPolicy) string {
	if p == netem.ExpiryRST {
		return "RST"
	}
	return "drop"
}
