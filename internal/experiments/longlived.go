package experiments

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/topo"
)

// LongLivedConfig parameterises the §4.1 long-lived-connection experiment.
type LongLivedConfig struct {
	Seed        int64
	Sched       string        // registered scheduler name; "" = lowest-rtt
	Policy      string        // registered controller; "" = the plain stack (nil policy)
	NATTimeout  time.Duration // middlebox idle timeout (deployed boxes: a few hundred seconds)
	Expiry      netem.ExpiryPolicy
	MsgInterval time.Duration // application message cadence (sparser than the NAT timeout)
	Messages    int
	MsgSize     int
	FlapAt      time.Duration // one interface outage, 0 disables
	FlapFor     time.Duration
}

// DefaultLongLived returns a scenario with a 180 s NAT timeout and a chat
// message every 10 minutes — the keepalive battle of §4.1.
func DefaultLongLived() LongLivedConfig {
	return LongLivedConfig{
		Seed:        1,
		Policy:      "fullmesh",
		NATTimeout:  180 * time.Second,
		Expiry:      netem.ExpiryRST,
		MsgInterval: 10 * time.Minute,
		Messages:    12,
		MsgSize:     2000,
		FlapAt:      25 * time.Minute,
		FlapFor:     2 * time.Minute,
	}
}

// LongLived runs the §4.1 scenario: a chat-style connection through a NAT
// that expires idle state, with occasional interface outages. With the
// smart full-mesh controller, failed subflows are re-established with
// error-specific backoff and every message is eventually delivered; the
// plain stack loses its only subflow at the first expiry and stalls.
func LongLived(cfg LongLivedConfig) *Result {
	res := newResult("longlived")
	mode := fmt.Sprintf("userspace %q controller", cfg.Policy)
	if cfg.Policy == "" {
		mode = "plain stack (nil policy)"
	}
	res.Report = header("§4.1 — smarter long-lived connections",
		fmt.Sprintf("NAT idle timeout %v (%s on expiry); message every %v; %s",
			cfg.NATTimeout, expiryName(cfg.Expiry), cfg.MsgInterval, mode))

	p := netem.LinkConfig{RateBps: 20e6, Delay: 20 * time.Millisecond}
	net := topo.NewNATPath(sim.New(cfg.Seed), p, p, cfg.NATTimeout, cfg.Expiry)

	st := smapp.New(net.Client, smapp.Config{MPTCP: mptcp.Config{Scheduler: cfg.Sched}})
	sep := mptcp.NewEndpoint(net.Server, mptcp.Config{Scheduler: cfg.Sched}, nil)

	// Receiver records the arrival time of each message boundary.
	var arrivals []sim.Time
	msgBytes := uint64(cfg.MsgSize)
	sep.Listen(80, func(c *mptcp.Connection) {
		c.SetCallbacks(mptcp.ConnCallbacks{
			OnData: func(_ *mptcp.Connection, total uint64) {
				for uint64(len(arrivals)+1)*msgBytes <= total {
					arrivals = append(arrivals, net.Sim.Now())
				}
			},
		})
	})
	net.Sim.RunFor(time.Millisecond)

	var sendTimes []sim.Time
	conn, err := st.Dial(net.ClientAddrs[0], net.ServerAddr, 80, cfg.Policy,
		smapp.ControllerConfig{Addrs: net.ClientAddrs[:]}, mptcp.ConnCallbacks{})
	if err != nil {
		panic(err)
	}
	for i := 0; i < cfg.Messages; i++ {
		at := sim.Time(cfg.MsgInterval) * sim.Time(i+1)
		net.Sim.Schedule(at, "chat.msg", func() {
			sendTimes = append(sendTimes, net.Sim.Now())
			conn.Write(cfg.MsgSize)
		})
	}
	if cfg.FlapAt > 0 {
		net.Sim.Schedule(sim.Time(cfg.FlapAt), "if.down", func() {
			net.Client.SetIfaceUp(net.ClientAddrs[0], false)
		})
		net.Sim.Schedule(sim.Time(cfg.FlapAt+cfg.FlapFor), "if.up", func() {
			net.Client.SetIfaceUp(net.ClientAddrs[0], true)
		})
	}
	horizon := sim.Time(cfg.MsgInterval)*sim.Time(cfg.Messages+1) + 5*sim.Minute
	net.Sim.RunUntil(horizon)

	delivered := len(arrivals)
	lat := res.sample("message delivery latency (s)")
	for i, at := range arrivals {
		if i < len(sendTimes) {
			lat.Add(time.Duration(at - sendTimes[i]).Seconds())
		}
	}
	res.Scalars["messages_sent"] = float64(len(sendTimes))
	res.Scalars["messages_delivered"] = float64(delivered)
	ctl, _ := st.Controller(conn).(*controller.FullMesh)
	if ctl != nil {
		res.Scalars["reestablishments"] = float64(ctl.Stats.Reestablishments)
		res.Scalars["dismissed"] = float64(ctl.Stats.SubflowsDismissed)
	}
	res.Scalars["nat_expiries"] = float64(net.NAT.Stats.Expired)
	res.Scalars["live_subflows_at_end"] = float64(len(conn.Subflows()))

	res.section("results")
	res.printf("messages delivered: %d / %d\n", delivered, len(sendTimes))
	if lat.N() > 0 {
		res.printf("delivery latency: %s\n", lat.Summary("s"))
	}
	res.printf("NAT state expiries hit: %d; RSTs injected: %d\n",
		net.NAT.Stats.Expired, net.NAT.Stats.RSTInjected)
	if ctl != nil {
		res.printf("controller re-establishments: %d (by errno: %v); dismissed on if-down: %d\n",
			ctl.Stats.Reestablishments, ctl.Stats.RetriesByErrno, ctl.Stats.SubflowsDismissed)
	}
	res.printf("live subflows at end: %d\n", len(conn.Subflows()))
	return res
}

func expiryName(p netem.ExpiryPolicy) string {
	if p == netem.ExpiryRST {
		return "RST"
	}
	return "drop"
}
