package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/app"
	"repro/internal/core"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/nlmsg"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// CtlStressConfig parameterises the control-plane stress scenario: N
// long-lived connections × M subflows with a fullmesh controller attached
// to each, while per-client interface flaps churn the subflow set. The
// measurement is policy-decision latency — the delay from a kernel event
// being emitted to the controller's resulting command being applied back
// in the kernel — under the immediate and the coalesced delivery modes.
type CtlStressConfig struct {
	Seed         int64
	Conns        int           // concurrent connections, one client host each
	Subflows     int           // interfaces per client (≥2; iface 1 is flapped)
	Servers      int           // server hosts, dialed round-robin (0 = 1)
	BytesPerConn int           // initial payload (the connection stays open after)
	FlapEvery    time.Duration // per-client churn period
	FlapDown     time.Duration // outage length within each period
	Window       time.Duration // coalescing flush window of the coalesced cell
	Queue        int           // pending-event queue bound (≤0 = core default)
	AccessBps    float64       // per-interface access rate
	Bottleneck   float64       // shared bottleneck rate
	Delay        time.Duration // one-way access-path delay
	Horizon      time.Duration // simulation cutoff
}

// DefaultCtlStress returns the bench-sized control-plane stress run: 8
// clients flapping their second interface every 150 ms for 2 s.
func DefaultCtlStress() CtlStressConfig {
	return CtlStressConfig{
		Seed:         1,
		Conns:        8,
		Subflows:     2,
		BytesPerConn: 64 << 10,
		FlapEvery:    150 * time.Millisecond,
		FlapDown:     60 * time.Millisecond,
		Window:       200 * time.Microsecond,
		AccessBps:    50e6,
		Bottleneck:   200e6,
		Delay:        10 * time.Millisecond,
		Horizon:      2 * time.Second,
	}
}

func init() {
	scenario.Register("ctlstress",
		"control-plane stress: flap-driven subflow churn under a fullmesh controller, measuring event→command decision latency",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultCtlStress()
			// Smoke shrinks the defaults first, so an explicit -set still
			// wins (the shard smoke cell runs `-smoke -set conns=8`).
			if p.Bool("smoke", false) {
				cfg.Conns = 4
				cfg.BytesPerConn = 32 << 10
				cfg.Horizon = time.Second
			}
			cfg.Conns = p.Int("conns", cfg.Conns)
			cfg.Subflows = p.Int("subflows", cfg.Subflows)
			cfg.Servers = p.Int("servers", cfg.Servers)
			cfg.BytesPerConn = p.Int("kb", cfg.BytesPerConn>>10) << 10
			cfg.FlapEvery = p.Duration("flap_every", cfg.FlapEvery)
			cfg.FlapDown = p.Duration("flap_down", cfg.FlapDown)
			cfg.Window = p.Duration("window", cfg.Window)
			cfg.Queue = p.Int("queue", cfg.Queue)
			return ctlStressSpec(cfg)
		})
	scenario.RegisterParams("ctlstress",
		scenario.ParamDoc{Key: "conns", Type: "int", Default: "8", Desc: "concurrent connections, one client host each"},
		scenario.ParamDoc{Key: "subflows", Type: "int", Default: "2", Desc: "interfaces per client, >= 2; iface 1 is flapped"},
		scenario.ParamDoc{Key: "kb", Type: "int", Default: "64", Desc: "initial payload per connection in KB"},
		scenario.ParamDoc{Key: "flap_every", Type: "duration", Default: "150ms", Desc: "per-client churn period"},
		scenario.ParamDoc{Key: "flap_down", Type: "duration", Default: "60ms", Desc: "outage length within each period"},
		scenario.ParamDoc{Key: "window", Type: "duration", Default: "200µs", Desc: "coalescing flush window of the coalesced cell"},
		scenario.ParamDoc{Key: "queue", Type: "int", Default: "128", Desc: "pending-event queue bound, drop-oldest overflow"},
		scenario.ParamDoc{Key: "servers", Type: "int", Default: "1", Desc: "server hosts, dialed round-robin"},
	)
}

// ctlStressSpec declares two runs of the same churn workload on fresh star
// topologies: "immediate" delivers one frame per event (the legacy path);
// "coalesced" batches events per flush window into pooled multi-message
// frames. Every scalar is simulated — no wall-clock output — so the run is
// byte-identical at any shard count.
func ctlStressSpec(cfg CtlStressConfig) (*scenario.Spec, error) {
	if cfg.Subflows < 2 {
		return nil, fmt.Errorf("ctlstress: need subflows >= 2 (iface 1 is flapped), got %d", cfg.Subflows)
	}
	star := scenario.Star{
		Clients: cfg.Conns,
		Ifaces:  cfg.Subflows,
		Servers: cfg.Servers,
		Access:  netem.LinkConfig{RateBps: cfg.AccessBps, Delay: cfg.Delay},
		Bottleneck: netem.LinkConfig{
			RateBps: cfg.Bottleneck, Delay: 500 * time.Microsecond,
		},
	}
	// Per-client flap schedule: client i's second interface goes down at
	// 50ms + i*7ms and then every FlapEvery, each outage FlapDown long.
	// The 7 ms stagger keeps the flap bursts from phase-locking across
	// clients while staying deterministic.
	var events []scenario.Event
	for i := 0; i < cfg.Conns; i++ {
		start := 50*time.Millisecond + time.Duration(i)*7*time.Millisecond
		for at := start; at+cfg.FlapDown < cfg.Horizon; at += cfg.FlapEvery {
			events = append(events, scenario.FlapClientIface(at, cfg.FlapDown, i, 1)...)
		}
	}

	windows := []struct {
		label  string
		window time.Duration
	}{{"immediate", 0}}
	if cfg.Window > 0 {
		windows = append(windows, struct {
			label  string
			window time.Duration
		}{"coalesced", cfg.Window})
	}
	var runs []*scenario.RunSpec
	for _, w := range windows {
		runs = append(runs, &scenario.RunSpec{
			Label:     w.label,
			Topology:  star,
			Workload:  &ctlStressLoad{Bytes: cfg.BytesPerConn, Window: w.window, Queue: cfg.Queue},
			Policy:    "fullmesh",
			PolicyCfg: smapp.ControllerConfig{Subflows: cfg.Subflows},
			Events:    events,
			Stop:      scenario.Stop{Horizon: cfg.Horizon},
		})
	}

	return &scenario.Spec{
		Name:  "ctlstress",
		Title: "Control-plane stress — decision latency under subflow churn",
		Desc: fmt.Sprintf("%d conns x %d subflows, flap every %v (down %v); coalescing window %v",
			cfg.Conns, cfg.Subflows, cfg.FlapEvery, cfg.FlapDown, cfg.Window),
		Runs: runs,
		Render: func(res *stats.Result, runs []*scenario.Run) {
			res.Section("decision latency (event emitted -> command applied)")
			res.Printf("%-10s %6s %9s %9s %8s %9s %9s %7s %7s %7s %5s\n",
				"mode", "n", "p50", "p99", "frames", "events", "coalesce", "drops", "flush", "cmds", "qhw")
			for _, rt := range runs {
				wl := rt.Spec.Workload.(*ctlStressLoad)
				lat := &sample{}
				var frames, commands uint64
				for _, tp := range wl.taps {
					lat.Add(tp.samples...)
					frames += tp.frames
					commands += tp.commands
				}
				var ctl smapp.CtlStats
				for _, st := range wl.stacks {
					ctl.EventsSent += st.PM.EventsSent
					ctl.EventsCoalesced += st.PM.EventsCoalesced
					ctl.EventsDropped += st.PM.EventsDropped
					ctl.Flushes += st.PM.Flushes
					// Queue high-water is a depth, not a count: the worst
					// backlog any one client's queue reached.
					if st.PM.QueueHighWater > ctl.QueueHW {
						ctl.QueueHW = st.PM.QueueHighWater
					}
				}
				var p50, p99 float64
				if lat.N() > 0 {
					p50 = lat.Quantile(0.5)
					p99 = lat.Quantile(0.99)
				}
				key := rt.Spec.Label
				res.Scalars[key+"_decision_p50_us"] = p50
				res.Scalars[key+"_decision_p99_us"] = p99
				res.Scalars[key+"_decision_n"] = float64(lat.N())
				res.Scalars[key+"_event_frames"] = float64(frames)
				res.Scalars[key+"_events_sent"] = float64(ctl.EventsSent)
				res.Scalars[key+"_events_coalesced"] = float64(ctl.EventsCoalesced)
				res.Scalars[key+"_events_dropped"] = float64(ctl.EventsDropped)
				res.Scalars[key+"_flushes"] = float64(ctl.Flushes)
				res.Scalars[key+"_ctl_queue_hw"] = float64(ctl.QueueHW)
				res.Printf("%-10s %6d %7.1fus %7.1fus %8d %9d %9d %7d %7d %7d %5d\n",
					key, lat.N(), p50, p99, frames, ctl.EventsSent,
					ctl.EventsCoalesced, ctl.EventsDropped, ctl.Flushes, commands, ctl.QueueHW)
				// The headline scalars track the coalesced cell when it
				// exists (the last run), the immediate cell otherwise.
				res.Scalars["decision_p50_us"] = p50
				res.Scalars["decision_p99_us"] = p99
				res.Scalars["decision_n"] = float64(lat.N())
				res.Scalars["events_coalesced"] = float64(ctl.EventsCoalesced)
				res.Scalars["events_dropped"] = float64(ctl.EventsDropped)
				res.Scalars["ctl_queue_hw"] = float64(ctl.QueueHW)
			}
		},
	}, nil
}

// CtlStress runs the control-plane stress scenario (see ctlStressSpec).
func CtlStress(cfg CtlStressConfig) *Result {
	sp, err := ctlStressSpec(cfg)
	if err != nil {
		panic(err)
	}
	return scenario.Execute(sp, cfg.Seed)
}

// ctlStressLoad is the churn workload: every client dials once through its
// own smapp stack with the run's policy bound and streams Bytes without
// closing, so the connection (and its controller) outlives the transfer
// and keeps reacting to interface flaps for the whole horizon. Each
// client's Netlink transport is tap-wrapped to timestamp stimulus events
// and the controller commands they provoke.
type ctlStressLoad struct {
	Bytes  int
	Window time.Duration // smapp.Config.CtlFlush (0 = immediate delivery)
	Queue  int           // smapp.Config.CtlQueue

	stacks []*smapp.Stack
	taps   []*ctlTap
}

// OwnsStacks implements scenario.StackOwner.
func (w *ctlStressLoad) OwnsStacks() {}

// Describe implements scenario.Workload.
func (w *ctlStressLoad) Describe() string {
	return fmt.Sprintf("subflow churn, %d KB per client, flush window %v", w.Bytes>>10, w.Window)
}

// Server implements scenario.Workload: one sink per accepted connection
// (the fan-out pattern), each on its own server's clock for shard safety.
func (w *ctlStressLoad) Server(rt *scenario.Run) {
	clientIdx := make(map[netip.Addr]int, len(rt.Net.Clients))
	for i, cl := range rt.Net.Clients {
		clientIdx[cl.Addrs[0]] = i
	}
	for si, ep := range rt.ServerEps {
		sclk := rt.Net.Servers[si].Clock()
		ep.Listen(rt.Port(), func(c *mptcp.Connection) {
			if _, ok := clientIdx[c.InitialTuple().DstIP]; !ok {
				return
			}
			c.SetCallbacks(app.NewSink(sclk, uint64(w.Bytes), nil).Callbacks())
		})
	}
}

// Client implements scenario.Workload: per client, build a tap-wrapped
// simulated Netlink transport on the client's own clock (its shard), a
// smapp stack with the run's coalescing window applied, and dial with the
// run's policy bound.
func (w *ctlStressLoad) Client(rt *scenario.Run) {
	w.stacks = make([]*smapp.Stack, len(rt.Net.Clients))
	w.taps = make([]*ctlTap, len(rt.Net.Clients))
	for i := range rt.Net.Clients {
		cl := rt.Net.Clients[i]
		cclk := cl.Host.Clock()
		tap := &ctlTap{clk: cclk}
		base := core.NewSimTransport(cclk)
		tr := &core.Transport{
			ToUser:   &tapPipe{inner: base.ToUser, onSend: tap.eventFrame},
			ToKernel: &tapPipe{inner: base.ToKernel, onRecv: tap.commandFrame},
		}
		csh := rt.TraceShard(cl.Host.Name())
		st := smapp.New(cl.Host, smapp.Config{
			MPTCP: mptcp.Config{
				Scheduler: rt.Spec.Sched,
				Trace:     csh,
				Metrics:   rt.MPTCPMetrics(cclk),
				TCP:       tcp.Config{Metrics: rt.TCPMetrics(cclk)},
			},
			Transport:  tr,
			CtlFlush:   w.Window,
			CtlQueue:   w.Queue,
			Trace:      csh,
			CtlMetrics: rt.CtlMetrics(cclk),
		})
		w.stacks[i] = st
		w.taps[i] = tap
		src := app.NewSource(cclk, w.Bytes, false)
		dst := rt.Net.ServerAddrs[i%len(rt.Net.ServerAddrs)]
		pcfg := rt.Spec.PolicyCfg
		if len(pcfg.Addrs) == 0 {
			pcfg.Addrs = cl.Addrs
		}
		at := sim.Millisecond + sim.Time(i)*10*sim.Microsecond
		cclk.Schedule(at, "ctlstress.dial", func() {
			if _, err := st.Dial(cl.Addrs[0], dst, rt.Port(), rt.Spec.Policy, pcfg, src.Callbacks()); err != nil {
				panic(err)
			}
		})
	}
}

// ctlTap observes one client's Netlink frames in both directions and turns
// them into decision-latency samples: a stimulus event (established, a
// subflow loss, an interface transition) stamps lastStim with the event's
// emission time — Event.At is set when the kernel emits, before any
// coalescing queue delay — and each subsequent policy command applied in
// the kernel samples now−lastStim. Frames are parsed in place with reused
// scratch (the tap runs synchronously inside Send/receive, inside the
// pipe's ownership window), so the hot path stays allocation-free apart
// from the sample slice.
type ctlTap struct {
	clk sim.Clock

	msg nlmsg.Message
	ev  nlmsg.Event
	cmd nlmsg.Command

	lastStim time.Duration
	hasStim  bool
	samples  []float64 // event→command latency, µs
	frames   uint64    // kernel→user event frames (coalescing merges these)
	commands uint64    // policy commands applied (create/remove/backup)
}

// eventFrame taps kernel→user frames at Send time.
func (t *ctlTap) eventFrame(b []byte) {
	t.frames++
	for off := 0; off < len(b); {
		n, err := nlmsg.UnmarshalInto(b[off:], &t.msg)
		if err != nil {
			return
		}
		off += n
		if t.msg.Cmd == nlmsg.ReplyAck || t.msg.Cmd == nlmsg.ReplyInfo {
			continue
		}
		if nlmsg.ParseEventInto(&t.msg, &t.ev) != nil {
			continue
		}
		switch t.ev.Kind {
		case nlmsg.EvEstablished, nlmsg.EvSubClosed, nlmsg.EvLocalAddrUp, nlmsg.EvLocalAddrDown:
			t.lastStim, t.hasStim = t.ev.At, true
		}
	}
}

// commandFrame taps user→kernel frames at delivery time — the moment the
// kernel applies the command.
func (t *ctlTap) commandFrame(b []byte) {
	for off := 0; off < len(b); {
		n, err := nlmsg.UnmarshalInto(b[off:], &t.msg)
		if err != nil {
			return
		}
		off += n
		if nlmsg.ParseCommandInto(&t.msg, &t.cmd) != nil {
			continue
		}
		switch t.cmd.Kind {
		case nlmsg.CmdCreateSubflow, nlmsg.CmdRemoveSubflow, nlmsg.CmdSetBackup:
			t.commands++
			if t.hasStim {
				d := time.Duration(t.clk.Now()) - t.lastStim
				t.samples = append(t.samples, float64(d)/float64(time.Microsecond))
			}
		}
	}
}

// tapPipe wraps a core.Pipe with observation hooks on either end. The
// hooks run inside the pipe's buffer-ownership window (onSend before the
// frame is handed over, onRecv before the real receiver), so they may
// parse the frame in place but must not retain it.
type tapPipe struct {
	inner  core.Pipe
	onSend func([]byte)
	onRecv func([]byte)
}

// Send implements core.Pipe.
func (p *tapPipe) Send(b []byte) {
	if p.onSend != nil {
		p.onSend(b)
	}
	p.inner.Send(b)
}

// SetReceiver implements core.Pipe.
func (p *tapPipe) SetReceiver(fn func(b []byte)) {
	if p.onRecv == nil {
		p.inner.SetReceiver(fn)
		return
	}
	p.inner.SetReceiver(func(b []byte) {
		p.onRecv(b)
		fn(b)
	})
}
