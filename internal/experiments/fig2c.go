package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/sim"
	"repro/internal/smapp"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// Fig2cConfig parameterises the §4.4 ECMP experiment.
type Fig2cConfig struct {
	Seed      int64
	Sched     string // registered scheduler name; "" = lowest-rtt
	Policy    string // registered controller for the smart variant (paper: refresh)
	Trials    int    // independent runs per variant (different hash seeds/ports)
	FileBytes int    // 100 MB in the paper
	Subflows  int    // 5 in the paper
	Paths     int    // 4 in the paper
}

// DefaultFig2c returns the paper's parameters: 100 MB over 5 subflows on a
// 4-path 8 Mbps fabric with 10/20/30/40 ms delays.
func DefaultFig2c() Fig2cConfig {
	return Fig2cConfig{Seed: 1, Policy: "refresh", Trials: 20, FileBytes: 100 << 20, Subflows: 5, Paths: 4}
}

// Fig2c runs the load-balancing experiment: CDF of the 100 MB completion
// time for the in-kernel ndiffports manager vs the userspace refresh
// controller. The paper reports ndiffports clustering around 28/37/55 s
// (5 subflows hashed onto 4/3/2 distinct paths) while refresh converges to
// all four paths; bounds are 27.8 s (four paths) and 111.7 s (one path).
func Fig2c(cfg Fig2cConfig) *Result {
	res := newResult("fig2c")
	res.Report = header("Fig. 2c — smarter exploitation of flow-based LB (§4.4)",
		fmt.Sprintf("%d MB file, %d subflows over %d ECMP paths (8 Mbps; 10/20/30/40 ms); %d trials",
			cfg.FileBytes>>20, cfg.Subflows, cfg.Paths, cfg.Trials))

	ndiff := res.sample("ndiffports")
	refresh := res.sample("refresh")
	ndiffPaths := res.sample("ndiffports paths used")
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)*1000
		tN, pathsN := fig2cRun(cfg, seed, uint64(seed), false)
		ndiff.Add(tN)
		ndiffPaths.Add(float64(pathsN))
		tR, _ := fig2cRun(cfg, seed, uint64(seed), true)
		refresh.Add(tR)
	}

	res.section("CDF of completion time (seconds)")
	res.renderCDFs("ndiffports", "refresh")

	res.section("summary")
	res.printf("%-12s %8s %8s %8s %8s\n", "variant", "min", "median", "p90", "max")
	for _, n := range []string{"ndiffports", "refresh"} {
		s := res.Samples[n]
		res.printf("%-12s %7.1fs %7.1fs %7.1fs %7.1fs\n",
			n, s.Min(), s.Median(), s.Quantile(0.9), s.Max())
	}
	res.printf("\ndistinct paths used by ndiffports: mean %.2f (refresh converges to %d)\n",
		ndiffPaths.Mean(), cfg.Paths)
	res.printf("reference bounds: best (all %d paths) ≈ %.1fs, worst (1 path) ≈ %.1fs\n",
		cfg.Paths,
		float64(cfg.FileBytes*8)/(float64(cfg.Paths)*8e6),
		float64(cfg.FileBytes*8)/8e6)
	res.Scalars["ndiffports_median_s"] = ndiff.Median()
	res.Scalars["refresh_median_s"] = refresh.Median()
	res.Scalars["refresh_max_s"] = refresh.Max()
	return res
}

// fig2cRun transfers the file once and returns (completion seconds,
// distinct paths used at steady state).
func fig2cRun(cfg Fig2cConfig, seed int64, hashSeed uint64, refresh bool) (float64, int) {
	var paths []netem.LinkConfig
	for i := 0; i < cfg.Paths; i++ {
		paths = append(paths, netem.LinkConfig{
			RateBps: 8e6,
			Delay:   time.Duration(10*(i+1)) * time.Millisecond,
		})
	}
	net := topo.NewECMP(sim.New(seed), paths, hashSeed)

	scfg := smapp.Config{MPTCP: mptcp.Config{Scheduler: cfg.Sched}}
	policy := ""
	if refresh {
		policy = cfg.Policy
	} else {
		scfg.KernelPM = pm.NewNDiffPorts(cfg.Subflows)
	}
	st := smapp.New(net.Client, scfg)
	sep := mptcp.NewEndpoint(net.Server, mptcp.Config{Scheduler: cfg.Sched}, nil)
	var done sim.Time = -1
	sink := app.NewSink(net.Sim, uint64(cfg.FileBytes), nil)
	sink.OnComplete = func() { done = net.Sim.Now() }
	var client *mptcp.Connection
	sep.Listen(80, func(c *mptcp.Connection) { c.SetCallbacks(sink.Callbacks()) })
	net.Sim.RunFor(time.Millisecond)

	src := app.NewSource(net.Sim, cfg.FileBytes, false)
	client, err := st.Dial(net.ClientAddr, net.ServerAddr, 80, policy,
		smapp.ControllerConfig{Subflows: cfg.Subflows}, src.Callbacks())
	if err != nil {
		panic(err)
	}
	// Worst case is single-path (~105 s for 100 MB); generous horizon.
	horizon := sim.Time(float64(cfg.FileBytes*8)/8e6*1.5) * sim.Second
	for net.Sim.Now() < horizon && done < 0 {
		net.Sim.RunFor(time.Second)
	}
	used := map[int]bool{}
	for _, sfi := range st.Info(client).Subflows {
		if sfi.State == tcp.StateEstablished && sfi.Stats.BytesSent > 0 {
			used[net.PathIndexOf(sfi.Tuple.SrcPort, sfi.Tuple.DstPort)] = true
		}
	}
	if done < 0 {
		done = horizon
	}
	return done.Seconds(), len(used)
}
