package experiments

import (
	"fmt"
	"time"

	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/pm"
	"repro/internal/scenario"
	"repro/internal/smapp"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// Fig2cConfig parameterises the §4.4 ECMP experiment.
type Fig2cConfig struct {
	Seed      int64
	Sched     string // registered scheduler name; "" = lowest-rtt
	Policy    string // registered controller for the smart variant (paper: refresh)
	Trials    int    // independent runs per variant (different hash seeds/ports)
	FileBytes int    // 100 MB in the paper
	Subflows  int    // 5 in the paper
	Paths     int    // 4 in the paper
}

// DefaultFig2c returns the paper's parameters: 100 MB over 5 subflows on a
// 4-path 8 Mbps fabric with 10/20/30/40 ms delays.
func DefaultFig2c() Fig2cConfig {
	return Fig2cConfig{Seed: 1, Policy: "refresh", Trials: 20, FileBytes: 100 << 20, Subflows: 5, Paths: 4}
}

func init() {
	scenario.Register("fig2c",
		"ECMP load balancing (§4.4): 100 MB completion CDFs, in-kernel ndiffports vs the refresh controller",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultFig2c()
			cfg.Sched = p.Str("sched", cfg.Sched)
			cfg.Policy = p.Str("policy", cfg.Policy)
			cfg.Trials = p.Int("trials", cfg.Trials)
			cfg.FileBytes = p.Int("mb", cfg.FileBytes>>20) << 20
			cfg.Subflows = p.Int("subflows", cfg.Subflows)
			cfg.Paths = p.Int("paths", cfg.Paths)
			if p.Bool("smoke", false) {
				cfg.Trials = 2
				cfg.FileBytes = 10 << 20
			}
			return fig2cSpec(cfg), nil
		})
	scenario.RegisterParams("fig2c",
		scenario.ParamDoc{Key: "trials", Type: "int", Default: "20", Desc: "trials per variant"},
		scenario.ParamDoc{Key: "mb", Type: "int", Default: "100", Desc: "file size in MB"},
		scenario.ParamDoc{Key: "subflows", Type: "int", Default: "5", Desc: "subflows per connection"},
		scenario.ParamDoc{Key: "paths", Type: "int", Default: "4", Desc: "ECMP paths in the fabric"},
	)
}

// fig2cRun declares one file transfer over the ECMP fabric: the refresh
// variant runs the userspace controller, the baseline the in-kernel
// ndiffports path manager. Each trial offsets its seed by 1000 so the
// fabric hash and source ports draw independent randomness, and both
// variants of a trial share that seed.
func fig2cRun(cfg Fig2cConfig, trial int, refresh bool) *scenario.RunSpec {
	var paths []netem.LinkConfig
	for i := 0; i < cfg.Paths; i++ {
		paths = append(paths, netem.LinkConfig{
			RateBps: 8e6,
			Delay:   time.Duration(10*(i+1)) * time.Millisecond,
		})
	}
	policy := ""
	variant := "ndiffports"
	var kernelPM func() mptcp.PathManager
	if refresh {
		policy = cfg.Policy
		variant = "refresh"
	} else {
		kernelPM = func() mptcp.PathManager { return pm.NewNDiffPorts(cfg.Subflows) }
	}
	wl := &scenario.Bulk{Bytes: cfg.FileBytes}
	// Worst case is single-path (~105 s for 100 MB); generous horizon.
	horizon := time.Duration(float64(cfg.FileBytes*8)/8e6*1.5) * time.Second

	probes := []scenario.Probe{
		scenario.SampleInto(variant, func(rt *scenario.Run, s *stats.Sample) {
			// A transfer the horizon cut off counts as the horizon.
			done := horizon.Seconds()
			if wl.Sink.Done {
				done = wl.Sink.CompletedAt.Seconds()
			}
			s.Add(done)
		}),
	}
	if !refresh {
		probes = append(probes, scenario.SampleInto("ndiffports paths used",
			func(rt *scenario.Run, s *stats.Sample) {
				used := map[int]bool{}
				for _, sfi := range rt.Stack.Info(rt.Conn).Subflows {
					if sfi.State == tcp.StateEstablished && sfi.Stats.BytesSent > 0 {
						used[rt.Net.PathIndex(sfi.Tuple.SrcPort, sfi.Tuple.DstPort)] = true
					}
				}
				s.Add(float64(len(used)))
			}))
	}

	return &scenario.RunSpec{
		Label:      fmt.Sprintf("%s trial %d", variant, trial),
		SeedOffset: int64(trial) * 1000,
		Topology:   scenario.ECMP{Paths: paths},
		Workload:   wl,
		Sched:      cfg.Sched,
		Policy:     policy,
		PolicyCfg:  smapp.ControllerConfig{Subflows: cfg.Subflows},
		KernelPM:   kernelPM,
		Settle:     time.Millisecond,
		Probes:     probes,
		Stop: scenario.Stop{
			Horizon: horizon,
			Poll:    time.Second,
			Until:   wl.Done,
		},
	}
}

// fig2cSpec declares the load-balancing experiment: per trial, one
// ndiffports and one refresh transfer (sharing the trial seed), rendered
// as the paper's CDF of the 100 MB completion time. The paper reports
// ndiffports clustering around 28/37/55 s (5 subflows hashed onto 4/3/2
// distinct paths) while refresh converges to all four paths; bounds are
// 27.8 s (four paths) and 111.7 s (one path).
func fig2cSpec(cfg Fig2cConfig) *scenario.Spec {
	var runs []*scenario.RunSpec
	for trial := 0; trial < cfg.Trials; trial++ {
		runs = append(runs, fig2cRun(cfg, trial, false), fig2cRun(cfg, trial, true))
	}
	return &scenario.Spec{
		Name:  "fig2c",
		Title: "Fig. 2c — smarter exploitation of flow-based LB (§4.4)",
		Desc: fmt.Sprintf("%d MB file, %d subflows over %d ECMP paths (8 Mbps; 10/20/30/40 ms); %d trials",
			cfg.FileBytes>>20, cfg.Subflows, cfg.Paths, cfg.Trials),
		Runs: runs,
		Render: func(res *stats.Result, runs []*scenario.Run) {
			ndiff := res.Sample("ndiffports")
			refresh := res.Sample("refresh")
			res.Section("CDF of completion time (seconds)")
			res.RenderCDFs("ndiffports", "refresh")

			res.Section("summary")
			res.Printf("%-12s %8s %8s %8s %8s\n", "variant", "min", "median", "p90", "max")
			for _, n := range []string{"ndiffports", "refresh"} {
				s := res.Samples[n]
				res.Printf("%-12s %7.1fs %7.1fs %7.1fs %7.1fs\n",
					n, s.Min(), s.Median(), s.Quantile(0.9), s.Max())
			}
			res.Printf("\ndistinct paths used by ndiffports: mean %.2f (refresh converges to %d)\n",
				res.Sample("ndiffports paths used").Mean(), cfg.Paths)
			res.Printf("reference bounds: best (all %d paths) ≈ %.1fs, worst (1 path) ≈ %.1fs\n",
				cfg.Paths,
				float64(cfg.FileBytes*8)/(float64(cfg.Paths)*8e6),
				float64(cfg.FileBytes*8)/8e6)
			res.Scalars["ndiffports_median_s"] = ndiff.Median()
			res.Scalars["refresh_median_s"] = refresh.Median()
			res.Scalars["refresh_max_s"] = refresh.Max()
		},
	}
}

// Fig2c runs the load-balancing experiment (see fig2cSpec).
func Fig2c(cfg Fig2cConfig) *Result {
	return scenario.Execute(fig2cSpec(cfg), cfg.Seed)
}
