package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mptcp"
	"repro/internal/smapp"
)

// These tests assert the SHAPE of the paper's §4 results on scaled-down
// configurations: who wins, by roughly what factor, where the crossovers
// fall — not absolute testbed numbers.

func TestFig2aSmartSwitchesFast(t *testing.T) {
	cfg := DefaultFig2a()
	r := Fig2a(cfg)
	delay := r.Scalars["switch_delay_s"]
	if delay <= 0 {
		t.Fatal("backup never used")
	}
	// The controller must react within a few seconds of the degradation
	// (the paper's trace shows ≈1 s with a 1 s RTO threshold).
	if delay > 5 {
		t.Fatalf("switch delay %.2fs, want seconds", delay)
	}
	if r.Scalars["switches"] != 1 {
		t.Fatalf("switches = %v", r.Scalars["switches"])
	}
	// The trace must show primary data before the switch and backup after.
	if len(r.Series) != 2 || len(r.Series[0].T) == 0 || len(r.Series[1].T) == 0 {
		t.Fatalf("trace series incomplete")
	}
	if r.Series[0].T[0] >= r.Series[1].T[0] {
		t.Fatal("backup carried data before the primary")
	}
}

func TestFig2aBaselineTakesMinutes(t *testing.T) {
	cfg := DefaultFig2a()
	cfg.Baseline = true
	cfg.LossRatio = 1.0 // radio blackout
	r := Fig2a(cfg)
	first := r.Scalars["backup_first_data_s"]
	// The kernel needs its RTO backoff budget (≈15 doublings) before the
	// pre-established backup carries data: minutes, not seconds. The
	// paper reports ≈12 min; Linux's retry budget computes to ≈15 min.
	if first < 300 || first > 1800 {
		t.Fatalf("kernel baseline switched at %.0fs, want minutes", first)
	}
}

func TestFig2bShape(t *testing.T) {
	cfg := DefaultFig2b()
	// Full-length stream (the default 120 blocks): shorter runs sample
	// too little of the loss tail for the 4x growth assertion to be
	// stable across RNG layouts.
	cfg.LossLevels = []float64{0.10, 0.40}
	r := Fig2b(cfg)
	smart := r.Samples["smart stream"]
	low := r.Samples["fullmesh 10% loss"]
	high := r.Samples["fullmesh 40% loss"]
	// The unmanaged tail grows sharply with loss.
	if high.Quantile(0.95) < 4*low.Quantile(0.95) {
		t.Fatalf("fullmesh tail did not grow with loss: p95 %.2fs vs %.2fs",
			low.Quantile(0.95), high.Quantile(0.95))
	}
	// Smart stream (at 30% loss) stays bounded: every block within a few
	// seconds, far below the unmanaged 40% tail.
	if smart.Max() > 5 {
		t.Fatalf("smart stream max delay %.2fs", smart.Max())
	}
	if smart.Quantile(0.9) > 1 {
		t.Fatalf("smart stream p90 %.2fs, want sub-second", smart.Quantile(0.9))
	}
}

func TestFig2bSmartLossInvariance(t *testing.T) {
	// "our controller provides almost the same CDF of the block delays
	// for packet loss ratios in the 10-40% range."
	var p90s []float64
	for _, loss := range []float64{0.10, 0.40} {
		cfg := DefaultFig2b()
		cfg.Blocks = 50
		cfg.LossLevels = nil
		cfg.SmartLoss = loss
		r := Fig2b(cfg)
		p90s = append(p90s, r.Samples["smart stream"].Quantile(0.9))
	}
	if p90s[1] > 4*p90s[0]+1 {
		t.Fatalf("smart stream not loss-invariant: p90 %.2fs @10%% vs %.2fs @40%%", p90s[0], p90s[1])
	}
}

func TestFig2cShape(t *testing.T) {
	cfg := DefaultFig2c()
	cfg.Trials = 5
	// Scaled to 50 MB: completion scales linearly with size, and the
	// refresh controller needs a handful of 2.5 s polling rounds to
	// converge, so very small files would mask its advantage.
	cfg.FileBytes = 50 << 20
	r := Fig2c(cfg)
	nd := r.Samples["ndiffports"]
	rf := r.Samples["refresh"]
	// Refresh must win on median (it converges towards all four paths).
	if rf.Median() > nd.Median() {
		t.Fatalf("refresh median %.1fs not better than ndiffports %.1fs", rf.Median(), nd.Median())
	}
	// Both stay within the single-path worst bound.
	worst := float64(cfg.FileBytes*8) / 8e6
	if nd.Max() > worst*1.2 || rf.Max() > worst*1.2 {
		t.Fatalf("completion beyond the one-path bound: nd=%.1fs rf=%.1fs worst=%.1fs",
			nd.Max(), rf.Max(), worst)
	}
	// ndiffports leaves paths unused on average (that is its problem).
	if r.Samples["ndiffports paths used"].Mean() > 3.9 {
		t.Fatalf("ndiffports used %.2f paths on average; no headroom for refresh to win",
			r.Samples["ndiffports paths used"].Mean())
	}
}

func TestFig3Shape(t *testing.T) {
	cfg := DefaultFig3()
	cfg.Requests = 150
	r := Fig3(cfg)
	k := r.Samples["kernel"]
	u := r.Samples["userspace"]
	if k.N() < 140 || u.N() < 140 {
		t.Fatalf("samples: kernel=%d user=%d", k.N(), u.N())
	}
	// Both managers react in well under a millisecond.
	if k.Median() > 1.0 || u.Median() > 1.0 {
		t.Fatalf("medians: %.3f / %.3f ms", k.Median(), u.Median())
	}
	// The userspace penalty is tens of microseconds — present but small.
	delta := r.Scalars["delta_us"]
	if delta < 5 || delta > 60 {
		t.Fatalf("userspace penalty %.1f µs, want ≈10-40µs", delta)
	}
	// Under CPU stress the penalty grows but stays bounded (paper: <37µs
	// on their hardware; our stressed model roughly doubles the base).
	cfg.Stressed = true
	rs := Fig3(cfg)
	if rs.Scalars["delta_us"] < delta-10 {
		t.Fatalf("stress did not increase the penalty: %.1f vs %.1f µs",
			rs.Scalars["delta_us"], delta)
	}
	if rs.Scalars["delta_us"] > 100 {
		t.Fatalf("stressed penalty %.1f µs too large", rs.Scalars["delta_us"])
	}
}

func TestLongLivedSmartVsPlain(t *testing.T) {
	cfg := DefaultLongLived()
	cfg.Messages = 6
	smart := LongLived(cfg)
	if smart.Scalars["messages_delivered"] != smart.Scalars["messages_sent"] {
		t.Fatalf("smart controller lost messages: %+v", smart.Scalars)
	}
	if smart.Scalars["reestablishments"] == 0 {
		t.Fatal("no re-establishments despite NAT expiries")
	}
	if smart.Scalars["live_subflows_at_end"] == 0 {
		t.Fatal("no live subflows at the end")
	}
	cfg.Policy = "" // the nil policy: same stack, no controller
	plain := LongLived(cfg)
	if plain.Scalars["messages_delivered"] >= plain.Scalars["messages_sent"] {
		t.Fatal("plain stack should lose messages once NAT state expires")
	}
}

func TestReportsRenderable(t *testing.T) {
	// Every report must include its section headers and summaries.
	cfg2b := DefaultFig2b()
	cfg2b.Blocks = 10
	cfg2b.LossLevels = []float64{0.10}
	r := Fig2b(cfg2b)
	for _, want := range []string{"Fig. 2b", "CDF", "summary", "smart stream"} {
		if !strings.Contains(r.Report, want) {
			t.Fatalf("report missing %q:\n%s", want, r.Report)
		}
	}
	cfg3 := DefaultFig3()
	cfg3.Requests = 10
	if !strings.Contains(Fig3(cfg3).Report, "userspace penalty") {
		t.Fatal("fig3 report incomplete")
	}
}

func TestSchedSweepCoversAllSchedulers(t *testing.T) {
	cfg := DefaultSchedSweep()
	cfg.Blocks = 10
	r := SchedSweep(cfg)
	names := mptcp.SchedulerNames()
	if len(names) < 4 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		s, ok := r.Samples[name]
		if !ok {
			t.Fatalf("scheduler %q missing from samples", name)
		}
		if s.N() != cfg.Blocks {
			t.Fatalf("scheduler %q: %d blocks sampled, want %d", name, s.N(), cfg.Blocks)
		}
		if _, ok := r.Scalars[name+"_p90_s"]; !ok {
			t.Fatalf("scheduler %q missing p90 scalar", name)
		}
		if !strings.Contains(r.Report, name) {
			t.Fatalf("report missing scheduler %q", name)
		}
	}
}

func TestCtlSweepCoversAllControllers(t *testing.T) {
	cfg := DefaultCtlSweep()
	cfg.Blocks = 10
	r := CtlSweep(cfg)
	names := smapp.ControllerNames()
	if len(names) < 5 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range append(names, "none") {
		s, ok := r.Samples[name]
		if !ok {
			t.Fatalf("controller %q missing from samples", name)
		}
		if s.N() != cfg.Blocks {
			t.Fatalf("controller %q: %d blocks sampled, want %d", name, s.N(), cfg.Blocks)
		}
		if _, ok := r.Scalars[name+"_p90_s"]; !ok {
			t.Fatalf("controller %q missing p90 scalar", name)
		}
		if !strings.Contains(r.Report, name) {
			t.Fatalf("report missing controller %q", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultFig2a()
	a := Fig2a(cfg)
	b := Fig2a(cfg)
	if a.Scalars["switch_delay_s"] != b.Scalars["switch_delay_s"] {
		t.Fatal("identical seeds diverged")
	}
	cfg.Seed = 2
	c := Fig2a(cfg)
	if a.Scalars["switch_delay_s"] == c.Scalars["switch_delay_s"] {
		t.Log("note: different seeds produced identical switch delay (possible but unusual)")
	}
	_ = c
}

func TestFig2aThresholdMonotonicity(t *testing.T) {
	// A larger RTO threshold cannot make the switch happen earlier. An
	// aggressive 500 ms threshold may even trip on slow-start congestion
	// BEFORE the radio degrades — a false positive worth documenting.
	cfg := DefaultFig2a()
	cfg.Duration = 120 * time.Second // give the 2s threshold time to trip
	cfg.LossRatio = 0.5              // frequent backoff chains
	var at []float64
	for _, th := range []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second} {
		cfg.Threshold = th
		r := Fig2a(cfg)
		if r.Scalars["switches"] != 1 {
			t.Fatalf("threshold %v: switches = %v", th, r.Scalars["switches"])
		}
		at = append(at, r.Scalars["backup_first_data_s"])
	}
	for i := 1; i < len(at); i++ {
		if at[i]+0.25 < at[i-1] {
			t.Fatalf("switch times not monotone in threshold: %v", at)
		}
	}
}
