package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// runTraced builds a registered scenario with tracing to a temp file,
// executes it at seed 1, and returns the report plus the parsed trace.
func runTraced(t *testing.T, name string, params map[string]string) (report string, data *trace.Data) {
	t.Helper()
	file := filepath.Join(t.TempDir(), name+".trace")
	p := scenario.NewParams(params)
	p.Set("trace", file)
	sp, err := scenario.Build(name, p)
	if err != nil {
		t.Fatal(err)
	}
	res := scenario.Execute(sp, 1)
	d, err := trace.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	return res.Report, d
}

// TestFig2aGoldenSeed1Traced pins the observer property end to end: the
// fig2a seed-1 report with tracing enabled must stay byte-identical to
// the pre-trace golden — recording must not perturb the simulation —
// and the derived `mpexp report` output is itself golden-pinned.
func TestFig2aGoldenSeed1Traced(t *testing.T) {
	report, d := runTraced(t, "fig2a", nil)
	checkGolden(t, "fig2a_seed1", report)
	checkGolden(t, "fig2a_trace_report_seed1", trace.Analyze(d).Report())
}

// TestScaleTraceReport drives the acceptance criterion on the scale
// scenario: the analysis of a traced (smoke-sized) scale run must carry
// per-subflow byte splits, reinjection accounting, and RTT/cwnd series,
// and both exports must succeed.
func TestScaleTraceReport(t *testing.T) {
	_, d := runTraced(t, "scale", map[string]string{"smoke": "true"})
	a := trace.Analyze(d)

	carrying := 0
	rttSeries := 0
	for _, c := range a.Conns {
		for _, f := range c.Flows {
			if f.Bytes > 0 {
				carrying++
			}
			if len(f.RTT) > 0 && len(f.Cwnd) > 0 {
				rttSeries++
			}
		}
	}
	// 4 smoke clients × 2 interfaces: at least the four initial
	// subflows must carry data and have congestion series.
	if carrying < 4 || rttSeries < 4 {
		t.Fatalf("scale trace analysis too thin: %d flows with bytes, %d with rtt/cwnd series", carrying, rttSeries)
	}
	rep := a.Report()
	for _, want := range []string{"subflow byte split", "rtt/cwnd", "== links =="} {
		if !strings.Contains(rep, want) {
			t.Fatalf("scale report lacks %q:\n%s", want, rep)
		}
	}

	dir := t.TempDir()
	if err := a.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"flows.csv", "links.csv", "seq.csv", "cc.csv", "handovers.csv", "policy.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing CSV export: %v", err)
		}
	}
	var sb strings.Builder
	if err := a.JSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"conns\"") {
		t.Fatal("JSON export lacks conns")
	}
}

// TestTraceReportRepeatable guards the report golden the same way
// TestGoldenRunsAreRepeatable guards the figure goldens: two traced
// runs at the same seed must produce byte-identical analysis reports.
func TestTraceReportRepeatable(t *testing.T) {
	_, d1 := runTraced(t, "fig2a", nil)
	_, d2 := runTraced(t, "fig2a", nil)
	r1, r2 := trace.Analyze(d1).Report(), trace.Analyze(d2).Report()
	if r1 != r2 {
		t.Fatalf("two traced fig2a runs at seed 1 disagree:\n--- first ---\n%s\n--- second ---\n%s", r1, r2)
	}
}
