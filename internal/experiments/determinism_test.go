package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden files under testdata/ pin the byte-for-byte report output of
// the cheap deterministic experiments at seed 1, as produced by the
// sharded engine (sim.World with per-entity RNG streams and the
// (when, ent, seq) event order — they were regenerated once when that
// engine landed). Nothing else may change a single simulated byte, and
// TestGoldenShardInvariance additionally demands the exact same bytes at
// shard counts {1, 2, 8}. Regenerate (only when an intentional model
// change occurs) with:
//
//	go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite the determinism golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	p := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: report diverged from the pre-pool golden output\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestFig2aGoldenSeed1(t *testing.T) {
	cfg := DefaultFig2a()
	cfg.Seed = 1
	checkGolden(t, "fig2a_seed1", Fig2a(cfg).Report)
}

func TestLongLivedGoldenSeed1(t *testing.T) {
	cfg := DefaultLongLived()
	cfg.Seed = 1
	checkGolden(t, "longlived_seed1", LongLived(cfg).Report)
}

// The fig2b/fig2c goldens pin the post-scenario-refactor output on
// test-sized configurations (the defaults would take minutes): any later
// change to the scenario engine's phase ordering, the stream/bulk
// workloads, or the ECMP topology that shifts a single simulated byte
// shows up here.

func TestFig2bGoldenSeed1(t *testing.T) {
	cfg := DefaultFig2b()
	cfg.Seed = 1
	cfg.Blocks = 40
	checkGolden(t, "fig2b_seed1", Fig2b(cfg).Report)
}

func TestFig2cGoldenSeed1(t *testing.T) {
	cfg := DefaultFig2c()
	cfg.Seed = 1
	cfg.Trials = 3
	cfg.FileBytes = 25 << 20
	checkGolden(t, "fig2c_seed1", Fig2c(cfg).Report)
}

// TestGoldenRunsAreRepeatable guards the golden tests themselves: two
// fresh runs at the same seed must agree before comparing to disk, so a
// golden failure always means divergence, never flakiness.
func TestGoldenRunsAreRepeatable(t *testing.T) {
	cfg := DefaultFig2a()
	cfg.Seed = 7
	a := Fig2a(cfg).Report
	b := Fig2a(cfg).Report
	if a != b {
		t.Fatal("two fig2a runs at the same seed disagree")
	}
}
