// Package experiments reproduces every figure of the paper's evaluation:
//
//   - Fig. 2a (§4.2): smart backup — data-sequence trace showing the
//     controller switching to the backup path when the RTO exceeds 1 s,
//     plus the in-kernel baseline that needs ~15 RTO backoffs (minutes);
//   - Fig. 2b (§4.3): smart streaming — CDFs of 64 KB block completion
//     times under 10–40 % loss, default full-mesh vs the smart-stream
//     controller;
//   - Fig. 2c (§4.4): refresh vs ndiffports — CDFs of 100 MB completion
//     times over a 4-path ECMP fabric;
//   - Fig. 3 (§4.5): kernel vs userspace path manager — CDFs of the delay
//     between the MP_CAPABLE SYN and the MP_JOIN SYN;
//   - §4.1 (no figure): long-lived connections through a NAT with idle
//     timeouts, userspace full-mesh controller vs the plain stack.
//
// Beyond the paper, the scale experiment stresses the pooled data path:
// N concurrent connections × M subflows through a shared bottleneck,
// swept over schedulers and controllers (see scale.go).
//
// Every experiment is expressed as a declarative scenario spec (see
// internal/scenario) registered under its figure name, so cmd/mpexp can
// run it generically (`mpexp run fig2a -set loss=0.4`) and sweeps can
// cross it with any scheduler or controller. The FigX(cfg) functions are
// typed front doors over the same specs: they build the spec from a
// config struct and execute it, so tests and benchmarks keep a stable
// Go-level API.
//
// Every experiment is deterministic given its seed and returns both a
// human-readable report and the raw samples/series, so the bench harness
// and cmd/mpexp share one implementation.
package experiments

import (
	// The fleet corpus registers its "fleet"/"fleetsweep" scenarios at
	// init; importing it here puts them on every surface that iterates
	// the registry — mpexp run/sweep/list/all, the smoke targets, and
	// TestEveryScenarioDeterministic.
	_ "repro/internal/fleet"
	"repro/internal/stats"
)

// Result is the outcome of one experiment run. It is an alias for the
// shared stats.Result so the runner, the scenario engine, and the
// experiments all exchange one type.
type Result = stats.Result

// sample aliases stats.Sample for brevity inside this package.
type sample = stats.Sample
