// Package experiments reproduces every figure of the paper's evaluation:
//
//   - Fig. 2a (§4.2): smart backup — data-sequence trace showing the
//     controller switching to the backup path when the RTO exceeds 1 s,
//     plus the in-kernel baseline that needs ~15 RTO backoffs (minutes);
//   - Fig. 2b (§4.3): smart streaming — CDFs of 64 KB block completion
//     times under 10–40 % loss, default full-mesh vs the smart-stream
//     controller;
//   - Fig. 2c (§4.4): refresh vs ndiffports — CDFs of 100 MB completion
//     times over a 4-path ECMP fabric;
//   - Fig. 3 (§4.5): kernel vs userspace path manager — CDFs of the delay
//     between the MP_CAPABLE SYN and the MP_JOIN SYN;
//   - §4.1 (no figure): long-lived connections through a NAT with idle
//     timeouts, userspace full-mesh controller vs the plain stack.
//
// Beyond the paper, the scale experiment stresses the pooled data path:
// N concurrent connections × M subflows through a shared bottleneck,
// swept over schedulers and controllers (see scale.go).
//
// Every experiment is deterministic given its seed and returns both a
// human-readable report and the raw samples/series, so the bench harness
// and cmd/mpexp share one implementation.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/stats"
)

// sample aliases stats.Sample for brevity inside this package.
type sample = stats.Sample

// Result is the outcome of one experiment run.
type Result struct {
	Name    string
	Report  string                   // human-readable text (tables, CDFs)
	Samples map[string]*stats.Sample // raw distributions keyed by curve name
	Series  []*stats.Series          // time series (Fig. 2a)
	Scalars map[string]float64       // headline numbers for quick checks
}

func newResult(name string) *Result {
	return &Result{
		Name:    name,
		Samples: make(map[string]*stats.Sample),
		Scalars: make(map[string]float64),
	}
}

func (r *Result) sample(name string) *stats.Sample {
	s, ok := r.Samples[name]
	if !ok {
		s = &stats.Sample{}
		r.Samples[name] = s
	}
	return s
}

func (r *Result) printf(format string, args ...any) {
	r.Report += fmt.Sprintf(format, args...)
}

func (r *Result) section(title string) {
	r.printf("\n== %s ==\n", title)
}

func (r *Result) renderCDFs(names ...string) {
	sub := make(map[string]*stats.Sample)
	for _, n := range names {
		if s, ok := r.Samples[n]; ok {
			sub[n] = s
		}
	}
	r.Report += stats.RenderCDFs(64, 16, sub)
}

// procDelayModel models per-packet host processing jitter for the Fig. 3
// lab hosts: a fixed base cost plus exponential jitter.
func procDelayModel(rng *rand.Rand, base, jitterMean time.Duration) func() time.Duration {
	return func() time.Duration {
		return base + time.Duration(rng.ExpFloat64()*float64(jitterMean))
	}
}

func header(name, desc string) string {
	line := strings.Repeat("=", len(name)+4)
	return fmt.Sprintf("%s\n  %s\n%s\n%s\n", line, name, line, desc)
}
