package experiments

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestEveryScenarioDeterministic runs every registered scenario twice at
// the same seed (smoke-sized) and demands byte-identical reports and
// scalar-identical results — the contract that makes golden tests, the
// multi-seed runner, and CI comparisons meaningful. Wall-clock scalars
// measure the host, not the model, and are excluded; scale's wall-clock
// report section is disabled via its wall=false parameter.
func TestEveryScenarioDeterministic(t *testing.T) {
	names := scenario.Names()
	if len(names) < 8 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			params := func() *scenario.Params {
				p := scenario.NewParams(map[string]string{"smoke": "true"})
				if name == "scale" {
					p.Set("wall", "false")
				}
				return p
			}
			once := func() *Result {
				sp, err := scenario.Build(name, params())
				if err != nil {
					t.Fatal(err)
				}
				return scenario.Execute(sp, 5)
			}
			a, b := once(), once()
			if a.Report != b.Report {
				t.Fatalf("same-seed reports diverged\n--- first ---\n%s\n--- second ---\n%s", a.Report, b.Report)
			}
			if len(a.Scalars) == 0 {
				t.Fatal("scenario produced no scalars")
			}
			for k, v := range a.Scalars {
				if strings.HasSuffix(k, "_wall_s") {
					continue // host wall-clock, not simulated
				}
				if b.Scalars[k] != v {
					t.Fatalf("scalar %s diverged between same-seed runs: %v vs %v", k, v, b.Scalars[k])
				}
			}
		})
	}
}
