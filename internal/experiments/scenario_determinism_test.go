package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestEveryScenarioDeterministic runs every registered scenario at the
// same seed (smoke-sized) — twice on the default single loop, then once
// per shard count in {1, 2, 8} — and demands byte-identical reports and
// scalar-identical results across ALL of them: the contract that makes
// golden tests, the multi-seed runner, CI comparisons, and the sharded
// simulator's speedups meaningful. Wall-clock scalars measure the host,
// not the model, and are excluded; scale's wall-clock report section is
// disabled via its wall=false parameter.
func TestEveryScenarioDeterministic(t *testing.T) {
	names := scenario.Names()
	if len(names) < 8 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			once := func(shards int) *Result {
				p := scenario.NewParams(map[string]string{"smoke": "true"})
				if name == "scale" {
					p.Set("wall", "false")
				}
				if shards > 0 {
					p.Set("shards", strconv.Itoa(shards))
				}
				sp, err := scenario.Build(name, p)
				if err != nil {
					t.Fatal(err)
				}
				return scenario.Execute(sp, 5)
			}
			check := func(label string, a, b *Result) {
				t.Helper()
				if a.Report != b.Report {
					t.Fatalf("%s: same-seed reports diverged\n--- first ---\n%s\n--- second ---\n%s", label, a.Report, b.Report)
				}
				for k, v := range a.Scalars {
					if strings.HasSuffix(k, "_wall_s") {
						continue // host wall-clock, not simulated
					}
					if b.Scalars[k] != v {
						t.Fatalf("%s: scalar %s diverged between same-seed runs: %v vs %v", label, k, v, b.Scalars[k])
					}
				}
			}
			a := once(0)
			if len(a.Scalars) == 0 {
				t.Fatal("scenario produced no scalars")
			}
			check("repeat", a, once(0))
			for _, shards := range []int{1, 2, 8} {
				check(fmt.Sprintf("shards=%d", shards), a, once(shards))
			}
		})
	}
}
