package experiments

import (
	"fmt"
	"time"

	"repro/internal/controller"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/scenario"
	"repro/internal/smapp"
	"repro/internal/stats"
)

// Fig2aConfig parameterises the §4.2 smart-backup experiment.
type Fig2aConfig struct {
	Seed      int64
	Sched     string        // registered scheduler name; "" = lowest-rtt
	Policy    string        // registered controller for the smart mode (paper: backup)
	LossRatio float64       // loss on the primary path after LossAt (paper: 0.30)
	LossAt    time.Duration // when the radio degrades (paper: 1 s)
	Threshold time.Duration // controller's RTO threshold (paper: 1 s)
	Duration  time.Duration // observation window for the trace (paper plots 4 s)
	Baseline  bool          // run the in-kernel pre-established-backup baseline instead
}

// DefaultFig2a returns the paper's parameters.
func DefaultFig2a() Fig2aConfig {
	return Fig2aConfig{
		Seed:      1,
		Policy:    "backup",
		LossRatio: 0.30,
		LossAt:    time.Second,
		Threshold: time.Second,
		Duration:  8 * time.Second,
	}
}

func init() {
	scenario.Register("fig2a",
		"smart backup (§4.2): RTO-triggered switch to the backup path vs the in-kernel baseline",
		func(p *scenario.Params) (*scenario.Spec, error) {
			cfg := DefaultFig2a()
			cfg.Sched = p.Str("sched", cfg.Sched)
			cfg.Policy = p.Str("policy", cfg.Policy)
			cfg.Baseline = p.Bool("baseline", false)
			if cfg.Baseline {
				cfg.LossRatio = 1.0 // radio blackout, as the kernel baseline is measured
			}
			cfg.LossRatio = p.Float("loss", cfg.LossRatio)
			cfg.LossAt = p.Duration("loss_at", cfg.LossAt)
			cfg.Threshold = p.Duration("threshold", cfg.Threshold)
			cfg.Duration = p.Duration("duration", cfg.Duration)
			if p.Bool("smoke", false) {
				cfg.Duration = 4 * time.Second
			}
			return fig2aSpec(cfg), nil
		})
	scenario.RegisterParams("fig2a",
		scenario.ParamDoc{Key: "baseline", Type: "bool", Default: "false", Desc: "run the in-kernel pre-established-backup baseline (implies loss=1.0)"},
		scenario.ParamDoc{Key: "loss", Type: "float", Default: "0.30", Desc: "primary-path loss ratio after loss_at"},
		scenario.ParamDoc{Key: "loss_at", Type: "duration", Default: "1s", Desc: "when the primary path degrades"},
		scenario.ParamDoc{Key: "threshold", Type: "duration", Default: "1s", Desc: "RTO threshold that triggers the backup subflow"},
		scenario.ParamDoc{Key: "duration", Type: "duration", Default: "8s", Desc: "observation window"},
	)
}

// fig2aSpec declares the smart-backup experiment: a bulk transfer over
// the two-path topology whose primary degrades at LossAt. With the smart
// controller the backup subflow is created only when the primary's RTO
// crosses the threshold; the push-trace probe records the data sequence
// numbers carried per subflow over time (the paper's green/red trace).
// With Baseline the backup subflow is pre-established with the RFC 6824
// backup flag on a plain kernel stack, and the kernel alone decides —
// which takes ~15 RTO backoffs (minutes).
func fig2aSpec(cfg Fig2aConfig) *scenario.Spec {
	mode := fmt.Sprintf("smart controller (userspace %q policy)", cfg.Policy)
	policy := cfg.Policy
	var kernelPM func() mptcp.PathManager
	horizon := cfg.Duration
	if cfg.Baseline {
		mode = "in-kernel baseline (pre-established backup flag)"
		policy = ""
		kernelPM = func() mptcp.PathManager { return mptcp.NopPM{} }
		// The kernel baseline needs to ride out up to 15 RTO backoffs.
		horizon = 30 * time.Minute
	}

	p := netem.LinkConfig{RateBps: 5e6, Delay: 15 * time.Millisecond}
	trace := scenario.NewPushTrace(1)
	wl := &scenario.Bulk{Bytes: 64 << 20, SinkExpect: 1 << 40} // unbounded; we observe a window

	events := []scenario.Event{scenario.SetLossAt(cfg.LossAt, "path0", cfg.LossRatio)}
	if cfg.Baseline {
		// Pre-establish the backup subflow with the backup flag, as the
		// kernel-only deployment would (after the handshake finished).
		// As a scheduled event this fires at t=200ms, 1 ms earlier than
		// the pre-scenario code (which ran 200 ms past the settle): the
		// baseline variant is not byte-pinned, and its minutes-scale RTO
		// shape is insensitive to the shift.
		pre := scenario.Event{At: 200 * time.Millisecond, Name: "fig2a.preestablish",
			Do: func(rt *scenario.Run) {
				ep := rt.Net.Client()
				if _, err := rt.Conn.OpenSubflow(ep.Addrs[1], 0, rt.Net.ServerAddr, 80, true); err != nil {
					panic(err)
				}
			}}
		events = append([]scenario.Event{pre}, events...)
	}

	run := &scenario.RunSpec{
		Label:     "fig2a",
		Topology:  scenario.TwoPath{P0: p, P1: p},
		Workload:  wl,
		Sched:     cfg.Sched,
		Policy:    policy,
		PolicyCfg: smapp.ControllerConfig{Threshold: cfg.Threshold},
		KernelPM:  kernelPM,
		Settle:    time.Millisecond,
		Events:    events,
		Probes: []scenario.Probe{
			trace.Probe(),
			{Name: "fig2a.scalars", Collect: func(rt *scenario.Run) {
				res := rt.Result
				res.Scalars["loss_at_s"] = cfg.LossAt.Seconds()
				if trace.FirstBackup >= 0 {
					res.Scalars["backup_first_data_s"] = trace.FirstBackup.Seconds()
					res.Scalars["switch_delay_s"] = trace.FirstBackup.Seconds() - cfg.LossAt.Seconds()
				} else {
					res.Scalars["backup_first_data_s"] = -1
				}
				if ctl, ok := rt.Stack.Controller(rt.Conn).(*controller.Backup); ok {
					res.Scalars["switches"] = float64(ctl.Stats.Switches)
				}
				res.Scalars["rcv_bytes"] = float64(wl.Sink.Received)
			}},
		},
		// Stop as soon as the backup carries data (plus a tail for the
		// trace).
		Stop: scenario.Stop{
			Horizon: horizon,
			Poll:    100 * time.Millisecond,
			Until:   func(*scenario.Run) bool { return trace.FirstBackup >= 0 },
			Tail:    2 * time.Second,
		},
	}

	return &scenario.Spec{
		Name:  "fig2a",
		Title: "Fig. 2a — smarter backup (§4.2)",
		Desc: fmt.Sprintf("mode: %s\nprimary loss -> %.0f%% at %v; RTO threshold %v",
			mode, cfg.LossRatio*100, cfg.LossAt, cfg.Threshold),
		Runs: []*scenario.RunSpec{run},
		Render: func(res *stats.Result, runs []*scenario.Run) {
			res.Section("data sequence progress per subflow")
			res.Printf("%-10s %14s %14s\n", "subflow", "first push (s)", "last seq (B)")
			for _, ser := range res.Series {
				if len(ser.T) == 0 {
					res.Printf("%-10s %14s %14s\n", ser.Name, "-", "-")
					continue
				}
				res.Printf("%-10s %14.3f %14.0f\n", ser.Name, ser.T[0], ser.Y[len(ser.Y)-1])
			}
			res.Section("headline")
			if trace.FirstBackup >= 0 {
				res.Printf("primary degraded at t=%.2fs; backup subflow first carried data at t=%.2fs (%.2fs later)\n",
					cfg.LossAt.Seconds(), trace.FirstBackup.Seconds(),
					trace.FirstBackup.Seconds()-cfg.LossAt.Seconds())
			} else {
				res.Printf("backup never carried data within %v\n", cfg.Duration)
			}
			res.Printf("receiver got %.2f MB in the observation window\n", float64(wl.Sink.Received)/1e6)
		},
	}
}

// Fig2a runs the smart-backup experiment (see fig2aSpec).
func Fig2a(cfg Fig2aConfig) *Result {
	return scenario.Execute(fig2aSpec(cfg), cfg.Seed)
}
